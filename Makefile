# Development targets for the logpopt repository.

GO ?= go

.PHONY: all check build test race bench bench-json bench-gate bench-scale trace-smoke report-smoke report-diff-smoke servd-smoke fuzz conform conform-logtime vet fmt examples reproduce clean

all: build test

# The default gate: build, vet, the full suite, and the race detector.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark results (BENCH_3.json): wall time plus the
# solver/sim effort counters the benchmarks report via b.ReportMetric
# (nodes/op, prunes/op, memohits/op, events/op, events/sec, peak_rss_bytes,
# req/sec, p99_us land in each entry's "extra"). The scale sweep (P up to
# 1e6) runs in a second invocation with a fixed iteration count so the
# million-processor benchmarks bound the suite's wall time instead of
# filling a benchtime. The serving benchmarks run without -benchmem: HTTP
# allocation counts are scheduler-dependent, and the exact-allocs gate
# would trip on noise — req/sec and p99_us are their gated metrics.
bench-json:
	{ $(GO) test -bench='Portfolio|Memoized|Sweep|SimReplay|Construct' -benchmem -run=^$$ \
		./internal/continuous/ ./internal/bench/ ./internal/sim/ ; \
	  $(GO) test -bench='Servd' -run=^$$ ./internal/bench/ ; \
	  $(GO) test -bench='Scale' -benchtime 2x -benchmem -run=^$$ ./internal/bench/ ; } \
		| $(GO) run ./cmd/benchjson > BENCH_3.json
	@cat BENCH_3.json

# Regression gate: rerun the bench-json suite and diff it against the last
# committed baseline (BENCH_3.json) with cmd/benchdiff. Local runs hard-fail
# on any metric past its threshold; on CI (the CI env var is set) the gate
# only warns, because shared runners are too noisy for wall-time thresholds.
# The scale metrics gate direction-aware: events/sec on drops, peak RSS on
# growth, both with generous fractions since they ride on wall time.
bench-gate:
	{ $(GO) test -bench='Portfolio|Memoized|Sweep|SimReplay|Construct' -benchmem -run=^$$ \
		./internal/continuous/ ./internal/bench/ ./internal/sim/ ; \
	  $(GO) test -bench='Servd' -run=^$$ ./internal/bench/ ; \
	  $(GO) test -bench='Scale' -benchtime 2x -benchmem -run=^$$ ./internal/bench/ ; } \
		| $(GO) run ./cmd/benchjson > BENCH_gate.json
	$(GO) run ./cmd/benchdiff $(if $(CI),,-strict) \
		-extra 'events/sec=0.25,peak_rss_bytes=0.25,req/sec=0.5,p99_us=0.5' \
		BENCH_3.json BENCH_gate.json
	@rm -f BENCH_gate.json

# Scale smoke: the P=1e5 tier of the million-processor benchmarks under the
# race detector, one iteration each. This is the cheap standing proof that
# the sharded flight queue and the chunked worker pool stay data-race-free
# at a size where every shard and every worker is busy.
bench-scale:
	$(GO) test -race -bench='Scale.*/P100000$$' -benchtime 1x -benchmem -run=^$$ \
		./internal/bench/

# Smoke-test the observability layer: compile a schedule with -trace on and
# assert the emitted file is non-empty, Perfetto-loadable trace JSON.
trace-smoke:
	$(GO) run ./cmd/logpsched -op kitem -P 10 -L 3 -k 8 -trace trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck trace-smoke.json
	@rm -f trace-smoke.json

# Smoke-test the run-report artifact chain: compile a schedule with -report
# on and round-trip the emitted JSON through the strict schema checker.
report-smoke:
	$(GO) run ./cmd/logpsched -op broadcast -P 512 -report report-smoke.json > /dev/null
	$(GO) run ./cmd/logpsched -op summation -P 8 -L 5 -o 2 -g 4 -t 28 -report report-smoke-sum.json > /dev/null
	$(GO) run ./cmd/reportcheck report-smoke.json report-smoke-sum.json
	@rm -f report-smoke.json report-smoke-sum.json

# Smoke-test the run store and differ end to end: archive the same
# deterministic run twice, assert reportdiff sees byte-identical outcomes
# (exit 0), then perturb the second artifact's violation count in place and
# assert the gate trips (non-zero exit). The store directory survives on
# failure so CI can upload it as an artifact.
report-diff-smoke:
	rm -rf report-diff-store
	$(GO) run ./cmd/logpsched -op broadcast -P 64 -runstore report-diff-store > /dev/null
	$(GO) run ./cmd/logpsched -op broadcast -P 64 -runstore report-diff-store > /dev/null
	$(GO) run ./cmd/reportdiff report-diff-store
	find report-diff-store -name run-000002.json \
		-exec sed -i 's/"violations": 0/"violations": 7/' {} +
	! $(GO) run ./cmd/reportdiff report-diff-store
	@rm -rf report-diff-store

# Smoke-test the scheduling service end to end: build the daemon, boot it on
# an ephemeral port, wait for /readyz, fire 32 concurrent identical cold
# requests and assert the singleflight collapsed them into exactly one solver
# run, check the RED series landed on /metrics, diff `logpsched -remote`
# against a local solve byte-for-byte, then SIGTERM and require a clean exit.
servd-smoke:
	$(GO) build -o servd-smoke-bin ./cmd/logpservd
	$(GO) build -o servd-smoke-sched ./cmd/logpsched
	$(GO) run ./cmd/servdsmoke -bin ./servd-smoke-bin -sched ./servd-smoke-sched
	@rm -f servd-smoke-bin servd-smoke-sched

# Short fuzzing pass over the schedule validator and the conformance harness.
fuzz:
	$(GO) test -fuzz=FuzzValidate -fuzztime=30s ./internal/schedule/
	$(GO) test -fuzz=FuzzValidatorConsistency -fuzztime=30s ./internal/schedule/
	$(GO) test -fuzz=FuzzConform -fuzztime=30s ./internal/conform/
	$(GO) test -fuzz=FuzzCausal -fuzztime=30s ./internal/obs/causal/

# Differential conformance: replay paper constructors and 500 random seeds on
# the simulator (strict/buffered), the goroutine runtime (strict/buffered),
# and the validator, and diff the results.
conform:
	$(GO) run ./cmd/logpconform -seeds 500

# Constructor differential: diff the search-free logtime constructor against
# the heap search, event for event, over the standard machine sweep (paper
# machines, awkward P counts, beyond-2^31 latency), replaying agreed
# schedules through all five backends. A fast corpus rides along.
conform-logtime:
	$(GO) run ./cmd/logpconform -logtime -seeds 100

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mpi-collectives
	$(GO) run ./examples/allreduce-stencil
	$(GO) run ./examples/streaming-pipeline
	$(GO) run ./examples/distributed-sum

# Regenerate every paper figure and theorem table (EXPERIMENTS.md's source).
reproduce:
	$(GO) run ./cmd/logpbench -all

clean:
	$(GO) clean ./...
