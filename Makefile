# Development targets for the logpopt repository.

GO ?= go

.PHONY: all check build test race bench bench-json fuzz conform vet fmt examples reproduce clean

all: build test

# The default gate: build, vet, the full suite, and the race detector.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark results (BENCH_1.json).
bench-json:
	$(GO) test -bench='Portfolio|Memoized|Sweep|SimReplay' -benchmem -run=^$$ \
		./internal/continuous/ ./internal/bench/ ./internal/sim/ \
		| $(GO) run ./cmd/benchjson > BENCH_1.json
	@cat BENCH_1.json

# Short fuzzing pass over the schedule validator and the conformance harness.
fuzz:
	$(GO) test -fuzz=FuzzValidate -fuzztime=30s ./internal/schedule/
	$(GO) test -fuzz=FuzzValidatorConsistency -fuzztime=30s ./internal/schedule/
	$(GO) test -fuzz=FuzzConform -fuzztime=30s ./internal/conform/

# Differential conformance: replay paper constructors and 500 random seeds on
# the simulator (strict/buffered), the goroutine runtime (strict/buffered),
# and the validator, and diff the results.
conform:
	$(GO) run ./cmd/logpconform -seeds 500

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

# Run every example once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mpi-collectives
	$(GO) run ./examples/allreduce-stencil
	$(GO) run ./examples/streaming-pipeline
	$(GO) run ./examples/distributed-sum

# Regenerate every paper figure and theorem table (EXPERIMENTS.md's source).
reproduce:
	$(GO) run ./cmd/logpbench -all

clean:
	$(GO) clean ./...
