// Benchmarks: one per paper figure and table. Each benchmark regenerates
// the corresponding artifact (schedule construction + verification), so
// `go test -bench=. -benchmem` measures the cost of reproducing the paper's
// entire evaluation. The printed artifacts themselves come from
// cmd/logpbench and are recorded in EXPERIMENTS.md.
package logpopt_test

import (
	"testing"

	logpopt "logpopt"
	"logpopt/internal/bench"
)

// BenchmarkFigure1 regenerates Figure 1 (optimal tree + activity chart,
// P=8, L=6, o=2, g=4).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Continuous regenerates Figure 2 (T9, block-cyclic words
// and the complete 8-item schedule for L=3, P-1=9).
func BenchmarkFigure2Continuous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Digraph regenerates Figure 3 (block transmission digraph,
// L=3, P-1=41).
func BenchmarkFigure3Digraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4BlockTable regenerates Figure 4 (size-7 block reception
// table, L=5, k=16).
func BenchmarkFigure4BlockTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Buffered regenerates Figure 5 (14-item broadcast, L=3,
// P-1=13, finish 24).
func BenchmarkFigure5Buffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Summation regenerates Figure 6 (optimal summation,
// t=28, P=8, L=5, g=4, o=2).
func BenchmarkFigure6Summation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPt sweeps Theorem 2.2's table (P(t) = f_t).
func BenchmarkPt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.Theorem22(10, 24)
	}
}

// BenchmarkSingleItemSchedule measures optimal single-item schedule
// construction + validation on a 1024-processor postal machine.
func BenchmarkSingleItemSchedule(b *testing.B) {
	m := logpopt.Postal(1024, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := logpopt.BroadcastSchedule(m, 0)
		if vs := logpopt.ValidateBroadcastSchedule(s, logpopt.BroadcastOrigins(0)); len(vs) != 0 {
			b.Fatal(vs[0])
		}
	}
}

// BenchmarkKItem regenerates the Theorem 3.1/3.6/3.8 comparison table.
func BenchmarkKItem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.KItemTable()
	}
}

// BenchmarkKItemOptimalSchedule measures the optimal k-item route alone
// (L=3, P-1=P(11)=41, k=32).
func BenchmarkKItemOptimalSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := logpopt.KItemOptimal(3, 11, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContinuous regenerates the Theorem 3.3/3.4 solvability table
// (small sweep).
func BenchmarkContinuous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.ContinuousTable(1)
	}
}

// BenchmarkContinuousSolveLarge solves one large continuous instance
// (L=3, t=20, P-1=1278) through the inductive composition.
func BenchmarkContinuousSolveLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, err := logpopt.NewContinuous(3, 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Solve(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllToAll regenerates the Section 4.1 bound table.
func BenchmarkAllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.AllToAllTable()
	}
}

// BenchmarkCombine regenerates the Theorem 4.1 table.
func BenchmarkCombine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.CombineTable(5)
	}
}

// BenchmarkCombineRun measures one 233-processor all-reduce execution
// (L=2, T=12).
func BenchmarkCombineRun(b *testing.B) {
	p := 233 // f_12 for L=2
	vals := make([]int, p)
	for i := range vals {
		vals[i] = i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := logpopt.CombineRun(2, 12, vals, func(a, c int) int { return a + c }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummation regenerates the Lemma 5.1 table.
func BenchmarkSummation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.SummationTable()
	}
}

// BenchmarkSummationExecute measures plan construction + execution of a
// 175-operand summation on Figure 6's machine with deadline 40.
func BenchmarkSummationExecute(b *testing.B) {
	m := logpopt.ProfilePaperFig6
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl, err := logpopt.BuildSummation(m, 40)
		if err != nil {
			b.Fatal(err)
		}
		ops := make([]int, pl.N)
		for j := range ops {
			ops[j] = j
		}
		if _, err := logpopt.ExecuteSummation(pl, ops, func(a, c int) int { return a + c }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines regenerates the baseline comparison tables.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.SingleItemTable()
		_ = bench.KItemBaselineTable()
		_ = bench.ReduceVsCombineTable()
	}
}

// BenchmarkSimulator measures the discrete-event simulator replaying a
// 256-processor optimal broadcast.
func BenchmarkSimulator(b *testing.B) {
	m := logpopt.MustMachine(256, 6, 2, 4)
	s := logpopt.BroadcastSchedule(m, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rep := logpopt.SimRun(s, logpopt.SimStrict, logpopt.BroadcastOrigins(0))
		if len(rep.Violations) != 0 {
			b.Fatal(rep.Violations[0])
		}
	}
}

// BenchmarkGoroutineRuntime measures the goroutine-per-processor runtime
// replaying a 64-processor optimal broadcast.
func BenchmarkGoroutineRuntime(b *testing.B) {
	m := logpopt.MustMachine(64, 6, 2, 4)
	s := logpopt.BroadcastSchedule(m, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt, err := logpopt.NewRuntime(m, logpopt.RTStrict, logpopt.ScheduleHandlers(s))
		if err != nil {
			b.Fatal(err)
		}
		rt.Run(logpopt.RuntimeHorizon(s))
		if vs := rt.Violations(); len(vs) != 0 {
			b.Fatal(vs)
		}
	}
}
