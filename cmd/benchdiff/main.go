// Command benchdiff compares two benchmark result files produced by
// cmd/benchjson and reports per-metric deltas:
//
//	benchdiff [-ns 0.10] [-bytes 0.10] [-allocs 0] [-strict] [-v] old.json new.json
//
// A metric counts as a regression when its fractional increase exceeds the
// metric's threshold (-ns/-bytes/-allocs; negative disables a metric). By
// default benchdiff only warns — it prints the regressions and exits 0, so
// noisy CI runners don't block merges. With -strict it exits 1 when any
// regression is found; `make bench-gate` passes -strict for local runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"logpopt/internal/benchcmp"
)

func main() {
	ns := flag.Float64("ns", benchcmp.DefaultThresholds.NsPerOp,
		"allowed fractional ns/op increase (0.10 = +10%); negative disables")
	bytesOp := flag.Float64("bytes", benchcmp.DefaultThresholds.BytesOp,
		"allowed fractional B/op increase; negative disables")
	allocs := flag.Float64("allocs", benchcmp.DefaultThresholds.AllocsOp,
		"allowed fractional allocs/op increase (0 = exact); negative disables")
	strict := flag.Bool("strict", false, "exit 1 when any regression is found")
	verbose := flag.Bool("v", false, "list every compared metric, not only regressions")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] old.json new.json\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := benchcmp.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := benchcmp.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rep := benchcmp.Compare(old, cur, benchcmp.Thresholds{
		NsPerOp: *ns, BytesOp: *bytesOp, AllocsOp: *allocs,
	})
	rep.Write(os.Stdout, *verbose)
	if rep.Regressions > 0 {
		if *strict {
			os.Exit(1)
		}
		fmt.Println("benchdiff: warn-only mode; rerun with -strict to fail on regressions")
	}
}
