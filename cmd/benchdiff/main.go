// Command benchdiff compares two benchmark result files produced by
// cmd/benchjson and reports per-metric deltas:
//
//	benchdiff [-ns 0.10] [-bytes 0.10] [-allocs 0] [-strict] [-v] old.json new.json
//	benchdiff -extra 'events/sec=0.15,peak_rss_bytes=0.10' old.json new.json
//
// A metric counts as a regression when its fractional change for the worse
// exceeds the metric's threshold (-ns/-bytes/-allocs; negative disables a
// metric). -extra gates metrics benchmarks reported via b.ReportMetric,
// keyed by unit: units ending in /sec or /s are rates where a DROP beyond
// the threshold regresses; anything else regresses when it grows, like
// ns/op. Extra metrics not named in -extra are compared and printed but
// never gate. By default benchdiff only warns — it prints the regressions
// and exits 0, so noisy CI runners don't block merges. With -strict it exits
// 1 when any regression is found; `make bench-gate` passes -strict for local
// runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"logpopt/internal/benchcmp"
)

// parseExtra turns "events/sec=0.15,peak_rss_bytes=0.10" into a threshold
// map. Units may themselves contain '/', so only the last '=' of each
// comma-separated entry splits unit from fraction.
func parseExtra(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		i := strings.LastIndex(entry, "=")
		if i <= 0 {
			return nil, fmt.Errorf("bad -extra entry %q (want unit=fraction)", entry)
		}
		v, err := strconv.ParseFloat(entry[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -extra threshold in %q: %v", entry, err)
		}
		out[entry[:i]] = v
	}
	return out, nil
}

func main() {
	ns := flag.Float64("ns", benchcmp.DefaultThresholds.NsPerOp,
		"allowed fractional ns/op increase (0.10 = +10%); negative disables")
	bytesOp := flag.Float64("bytes", benchcmp.DefaultThresholds.BytesOp,
		"allowed fractional B/op increase; negative disables")
	allocs := flag.Float64("allocs", benchcmp.DefaultThresholds.AllocsOp,
		"allowed fractional allocs/op increase (0 = exact); negative disables")
	extra := flag.String("extra", "",
		"comma-separated unit=fraction thresholds for extra metrics, e.g. 'events/sec=0.15,peak_rss_bytes=0.10'; /sec units gate on drops, others on growth")
	strict := flag.Bool("strict", false, "exit 1 when any regression is found")
	verbose := flag.Bool("v", false, "list every compared metric, not only regressions")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] old.json new.json\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := benchcmp.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := benchcmp.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	extraTh, err := parseExtra(*extra)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	rep := benchcmp.Compare(old, cur, benchcmp.Thresholds{
		NsPerOp: *ns, BytesOp: *bytesOp, AllocsOp: *allocs, Extra: extraTh,
	})
	rep.Write(os.Stdout, *verbose)
	if rep.Regressions > 0 {
		if *strict {
			os.Exit(1)
		}
		fmt.Println("benchdiff: warn-only mode; rerun with -strict to fail on regressions")
	}
}
