// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a JSON array on stdout, one object per benchmark result:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_1.json
//
// Each object carries the benchmark name (with the -N GOMAXPROCS suffix
// stripped into its own field), iteration count, ns/op, the total measured
// wall time in seconds (iterations x ns/op), and — when -benchmem was on —
// B/op and allocs/op. Any other (value, unit) pair a benchmark reported via
// b.ReportMetric (nodes/op, memohits/op, events/sec, peak_rss_bytes, ...)
// lands verbatim in the "extra" map. Lines that are not benchmark results
// are ignored, so the full `go test` output can be piped in unfiltered.
//
// GOMAXPROCS handling: go test appends "-N" to a result's name only when it
// ran with GOMAXPROCS=N != 1, and benchmark names themselves may end in
// "-<digits>" (sub-benchmark cases), so a bare LastIndex strip misattributes
// those digits as a processor count and records parallel runs under the
// serial default. benchjson therefore only strips a trailing "-N" when N
// matches the GOMAXPROCS the `go test` run actually used — its own
// runtime.GOMAXPROCS, overridable with -gomaxprocs when converting output
// recorded elsewhere.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	WallS      float64            `json:"wall_s"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// parseLine converts one benchmark result line. procs is the GOMAXPROCS the
// run used: a trailing "-procs" on the name is the framework's suffix and is
// stripped; any other trailing "-<digits>" belongs to the benchmark's own
// name (a sub-benchmark case) and is kept, with the run recorded as serial —
// go test only omits the suffix when GOMAXPROCS was 1.
func parseLine(line string, procs int) (result, bool) {
	var r result
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return r, false
	}
	name := fields[0]
	r.GoMaxProcs = 1
	if suffix := fmt.Sprintf("-%d", procs); procs != 1 && strings.HasSuffix(name, suffix) {
		r.GoMaxProcs = procs
		name = strings.TrimSuffix(name, suffix)
	}
	r.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return r, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs: ns/op, B/op, allocs/op.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	r.WallS = float64(r.Iterations) * r.NsPerOp / 1e9
	return r, r.NsPerOp > 0
}

func main() {
	procs := flag.Int("gomaxprocs", runtime.GOMAXPROCS(0),
		"GOMAXPROCS the benchmark run used (the \"-N\" name suffix go test appends); defaults to this process's value, override when converting output recorded on another machine")
	flag.Parse()
	var results []result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if r, ok := parseLine(line, *procs); ok {
			r.Package = pkg
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []result{} // emit [], not null, when nothing matched
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
