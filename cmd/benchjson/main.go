// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a JSON array on stdout, one object per benchmark result:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_1.json
//
// Each object carries the benchmark name (with the -N GOMAXPROCS suffix
// stripped into its own field), iteration count, ns/op, the total measured
// wall time in seconds (iterations x ns/op), and — when -benchmem was on —
// B/op and allocs/op. Any other (value, unit) pair a benchmark reported via
// b.ReportMetric (nodes/op, memohits/op, events/op, ...) lands verbatim in
// the "extra" map. Lines that are not benchmark results are ignored, so the
// full `go test` output can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	WallS      float64            `json:"wall_s"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

func parseLine(line string) (result, bool) {
	var r result
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return r, false
	}
	name := fields[0]
	r.GoMaxProcs = 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			r.GoMaxProcs = n
			name = name[:i]
		}
	}
	r.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return r, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs: ns/op, B/op, allocs/op.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	r.WallS = float64(r.Iterations) * r.NsPerOp / 1e9
	return r, r.NsPerOp > 0
}

func main() {
	var results []result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if r, ok := parseLine(line); ok {
			r.Package = pkg
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []result{} // emit [], not null, when nothing matched
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
