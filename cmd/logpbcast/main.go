// Command logpbcast builds and prints optimal LogP broadcast artifacts:
// the broadcast tree, the event schedule, a Gantt activity chart, and the
// closed-form quantities B(P) and P(t).
//
// Usage:
//
//	logpbcast -P 8 -L 6 -o 2 -g 4            # tree + gantt (Figure 1)
//	logpbcast -P 64 -L 6 -o 2 -g 4 -quiet    # numbers only
//	logpbcast -P 10 -L 3 -postal -k 8        # optimal k-item broadcast
//	logpbcast -L 3 -postal -t 11             # P(t) and the tree for it
package main

import (
	"flag"
	"fmt"
	"os"

	logpopt "logpopt"
)

func main() {
	var (
		p      = flag.Int("P", 8, "number of processors")
		l      = flag.Int64("L", 6, "latency")
		o      = flag.Int64("o", 2, "overhead")
		g      = flag.Int64("g", 4, "gap")
		postal = flag.Bool("postal", false, "postal model (forces o=0, g=1)")
		k      = flag.Int("k", 1, "number of items (k>1 requires -postal and P-1 = P(t))")
		t      = flag.Int64("t", -1, "report P(t) for this time bound instead of broadcasting")
		quiet  = flag.Bool("quiet", false, "print only the headline numbers")
		svg    = flag.Bool("svg", false, "emit an SVG timeline instead of the ASCII chart")
		dot    = flag.Bool("dot", false, "emit the broadcast tree as GraphViz and exit")
	)
	flag.Parse()

	var m logpopt.Machine
	if *postal {
		m = logpopt.Postal(*p, *l)
	} else {
		var err error
		m, err = logpopt.NewMachine(*p, *l, *o, *g)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *t >= 0 {
		fmt.Printf("%v: P(%d) = %d\n", m, *t, logpopt.Reachable(m, *t, 0))
		return
	}

	if *k > 1 {
		if !*postal {
			fmt.Fprintln(os.Stderr, "k-item broadcast requires -postal")
			os.Exit(2)
		}
		seq := logpopt.NewSeq(int(*l))
		tt := seq.InvF(int64(*p - 1))
		if seq.F(tt) != int64(*p-1) {
			fmt.Fprintf(os.Stderr, "P-1 = %d is not of the form P(t); nearest: P-1 = %d (t=%d)\n",
				*p-1, seq.F(tt), tt)
			os.Exit(2)
		}
		bounds := logpopt.KItemBoundsFor(int(*l), *p, int64(*k))
		_, s, err := logpopt.KItemOptimal(int(*l), tt, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%v: k=%d  lower bound %d, single-sending bound %d, achieved %d\n",
			m, *k, bounds.Lower, bounds.SingleSending, s.LastRecv())
		if !*quiet {
			fmt.Println()
			fmt.Println(logpopt.ReceptionTable(s))
		}
		return
	}

	fmt.Printf("%v: B(P) = %d\n", m, logpopt.BroadcastTime(m, m.P))
	if *quiet {
		return
	}
	tree := logpopt.OptimalBroadcastTree(m, m.P)
	if *dot {
		fmt.Print(tree.DOT("broadcast"))
		return
	}
	s := logpopt.BroadcastSchedule(m, 0)
	if vs := logpopt.ValidateBroadcastSchedule(s, logpopt.BroadcastOrigins(0)); len(vs) != 0 {
		fmt.Fprintln(os.Stderr, "internal error:", vs[0])
		os.Exit(1)
	}
	if *svg {
		fmt.Print(logpopt.TimelineSVG(s))
		return
	}
	fmt.Println("\nOptimal broadcast tree (node @availability):")
	fmt.Print(tree.String())
	fmt.Println("\nActivity:")
	fmt.Print(logpopt.Gantt(s))
}
