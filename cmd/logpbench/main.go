// Command logpbench regenerates the paper's figures and verifies its
// theorems, printing the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	logpbench -exp F1        # one experiment (F1..F6, T22, T31, T33, T41a, T41b, L51, CMP)
//	logpbench -all           # everything
//	logpbench -list          # list experiment ids
//	logpbench -parallel N    # cap the worker pool at N (default GOMAXPROCS);
//	                         # output is byte-identical for every N
//	logpbench -all -trace run.json -metrics
//	                         # record per-experiment wall spans and solver
//	                         # portfolio races as a Chrome/Perfetto trace,
//	                         # and print the metrics snapshot to stderr
//	logpbench -all -serve :8080
//	                         # expose live telemetry while running: /metrics
//	                         # (Prometheus text), /debug/pprof/, /traces/
package main

import (
	"flag"
	"fmt"
	"os"

	"logpopt/internal/bench"
	"logpopt/internal/cliutil"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/par"
)

type experiment struct {
	id, desc string
	run      func() (string, error)
}

func experiments() []experiment {
	tbl := func(f func() *bench.Table) func() (string, error) {
		return func() (string, error) { return f().String(), nil }
	}
	return []experiment{
		{"F1", "Figure 1: optimal broadcast tree + activity, P=8 L=6 o=2 g=4", bench.Figure1},
		{"F2", "Figure 2: T9, block-cyclic words, 8-item schedule (L=3, P-1=9)", bench.Figure2},
		{"F3", "Figure 3: block transmission digraph (L=3, P-1=41)", bench.Figure3},
		{"F4", "Figure 4: size-7 block reception table (L=5, k=16)", bench.Figure4},
		{"F5", "Figure 5: 14-item broadcast, L=3, P-1=13, finish 24", bench.Figure5},
		{"F6", "Figure 6: optimal summation, t=28, P=8, L=5 g=4 o=2", bench.Figure6},
		{"T22", "Theorem 2.2: P(t) = f_t sweep", tbl(func() *bench.Table { return bench.Theorem22(10, 24) })},
		{"T31", "Theorems 3.1/3.6/3.8: k-item bounds vs schedulers", tbl(bench.KItemTable)},
		{"T31X", "Theorem 3.1 tightness by exhaustive search (tiny instances)", tbl(bench.TightnessTable)},
		{"T33", "Theorems 3.3/3.4: continuous broadcast solvability per (L,t)", tbl(func() *bench.Table { return bench.ContinuousTable(2) })},
		{"GEN", "Beyond the paper: general-P block-cyclic solvability", tbl(func() *bench.Table { return bench.GeneralPTable(60) })},
		{"T41a", "Section 4.1: all-to-all bound", tbl(bench.AllToAllTable)},
		{"T41b", "Theorem 4.1: combining broadcast", tbl(func() *bench.Table { return bench.CombineTable(5) })},
		{"L51", "Lemma 5.1: summation capacity and execution", tbl(bench.SummationTable)},
		{"EXT", "Extensions: scatter/gather/prefix scan", tbl(bench.ExtensionsTable)},
		{"CTOR", "Constructors: heap search vs logtime counting, identical trees across P", tbl(bench.ConstructionTable)},
		{"CMP", "Baselines: optimal vs binomial/binary/flat/linear, k-item, combining", func() (string, error) {
			out := bench.SingleItemTable().String() + "\n" +
				bench.KItemBaselineTable().String() + "\n" +
				bench.ReduceVsCombineTable().String()
			return out, nil
		}},
	}
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		parallel = flag.Int("parallel", par.Limit(),
			"worker-pool width for solver portfolios and table sweeps (default GOMAXPROCS); results are identical for any value")
		ctor = flag.String("constructor", "auto",
			"broadcast-tree constructor for every experiment: auto, search, or logtime (auto: logtime at P >= 512); output is identical for all three")
		traceOut  = flag.String("trace", "", cliutil.TraceUsage)
		reportOut = flag.String("report", "", cliutil.ReportUsage+"; the report covers the paper's canonical broadcast (P=8 L=6 o=2 g=4) and annotates how many experiments ran")
		storeDir  = flag.String("runstore", "", cliutil.RunstoreUsage)
		metrics   = flag.Bool("metrics", false, cliutil.MetricsUsage)
		serveOn   = flag.String("serve", "", cliutil.ServeUsage)
	)
	flag.Parse()
	par.SetLimit(*parallel)
	if err := bench.SetConstructor(*ctor); err != nil {
		fmt.Fprintf(os.Stderr, "logpbench: %v\n", err)
		os.Exit(1)
	}

	// pid 5 carries one wall-clock span per experiment; pid 4 carries the
	// solver portfolio races those experiments trigger.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		tracer.NameProcess(5, "experiments (wall µs)")
		tracer.NameProcess(4, "solver portfolio (wall µs)")
		par.SetTracer(tracer, 4)
	}
	srv, err := cliutil.StartServe("logpbench", *serveOn, tracer, *storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logpbench: %v\n", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}
	ran := 0
	runTraced := func(e experiment) (string, error) {
		ran++
		if tracer == nil {
			return e.run()
		}
		start := tracer.Now()
		out, err := e.run()
		tracer.Span(5, 0, e.id, start, tracer.Now()-start, obs.A("desc", e.desc))
		return out, err
	}
	finish := func() {
		if tracer != nil {
			if err := cliutil.WriteTrace("logpbench", tracer, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "logpbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *reportOut != "" || *storeDir != "" {
			// The bench report is a fixed reference point: the paper's
			// canonical Figure 1 broadcast, replayed and summarized the
			// same way on every commit so artifacts diff cleanly, with the
			// sweep's extent recorded alongside.
			m := logp.MustNew(8, 6, 2, 4)
			s := core.BroadcastSchedule(m, 0)
			r := cliutil.BuildReport("logpbench", "broadcast", s, core.Origins(0),
				core.OptimalTree(m, m.P).MaxLabel(), nil)
			r.Extra = map[string]any{"experiments": ran}
			if *reportOut != "" {
				if err := cliutil.WriteReport("logpbench", r, *reportOut); err != nil {
					fmt.Fprintf(os.Stderr, "logpbench: %v\n", err)
					os.Exit(1)
				}
			}
			if *storeDir != "" {
				if err := cliutil.Archive("logpbench", *storeDir, r); err != nil {
					fmt.Fprintf(os.Stderr, "logpbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *metrics {
			fmt.Fprint(os.Stderr, obs.Default.Snapshot())
		}
	}
	exps := experiments()
	switch {
	case *list:
		for _, e := range exps {
			fmt.Printf("%-5s %s\n", e.id, e.desc)
		}
	case *all:
		for _, e := range exps {
			fmt.Printf("### %s: %s\n\n", e.id, e.desc)
			out, err := runTraced(e)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
				os.Exit(1)
			}
			fmt.Println(out)
		}
		finish()
	case *exp != "":
		for _, e := range exps {
			if e.id == *exp {
				out, err := runTraced(e)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
					os.Exit(1)
				}
				fmt.Println(out)
				finish()
				return
			}
		}
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
