// Command logpconform runs the differential conformance harness: every case
// — the paper's schedule constructors plus seeded random schedules — is
// replayed on the strict and buffered simulator, the strict and buffered
// goroutine runtime, and the analytic validator, and the results are diffed
// under the backend-equivalence contract. Diverging cases are shrunk to a
// minimal reproduction and printed.
//
// Usage:
//
//	logpconform [-seeds N] [-start S] [-paper=false] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"logpopt/internal/conform"
)

func main() {
	seeds := flag.Int("seeds", 500, "number of random seeds to check")
	start := flag.Int64("start", 0, "first random seed")
	paper := flag.Bool("paper", true, "also check every paper schedule constructor")
	verbose := flag.Bool("v", false, "print every case as it is checked")
	flag.Parse()

	ck := conform.NewChecker()
	checked, diverged := 0, 0

	runCase := func(c conform.Case) {
		checked++
		diffs := ck.Check(c)
		if *verbose {
			status := "ok"
			if len(diffs) > 0 {
				status = "DIVERGED"
			}
			fmt.Printf("%-32s %d events  %s\n", c.Name, len(c.S.Events), status)
		}
		if len(diffs) == 0 {
			return
		}
		diverged++
		fmt.Printf("DIVERGENCE in %s (%d events on %v):\n", c.Name, len(c.S.Events), c.S.M)
		for _, d := range diffs {
			fmt.Printf("  %s\n", d)
		}
		min := conform.Shrink(c, ck.Diverges)
		fmt.Printf("  shrunk to %d events on %v:\n", len(min.S.Events), min.S.M)
		for _, ev := range min.S.Events {
			fmt.Printf("    %+v\n", ev)
		}
		for _, d := range ck.Check(min) {
			fmt.Printf("  shrunk divergence: %s\n", d)
		}
	}

	if *paper {
		for _, c := range conform.PaperCases() {
			runCase(c)
		}
	}
	for seed := *start; seed < *start+int64(*seeds); seed++ {
		runCase(conform.Generate(seed))
	}

	if diverged > 0 {
		fmt.Printf("%d of %d cases diverged\n", diverged, checked)
		os.Exit(1)
	}
	fmt.Printf("%d cases conform across all backends\n", checked)
}
