// Command logpconform runs the differential conformance harness: every case
// — the paper's schedule constructors plus seeded random schedules — is
// replayed on the strict and buffered simulator, the strict and buffered
// goroutine runtime, and the analytic validator, and the results are diffed
// under the backend-equivalence contract. Diverging cases are shrunk to a
// minimal reproduction and printed.
//
// Usage:
//
//	logpconform [-seeds N] [-start S] [-paper=false] [-logtime] [-scale 64,1024,100000] [-v]
//	logpconform -trace run.json -metrics -dumpdir conform-traces
//
// -logtime additionally diffs the two schedule constructors — the heap
// search and the search-free internal/logtime counting construction —
// structurally (event for event) over the standard machine sweep, replaying
// the agreed schedules through all five backends.
//
// -scale adds large-P broadcast and reduction cases at the given processor
// counts — the sizes where the simulator's sharded flight queue and the
// runtime's worker pool engage — on top of the paper and random corpora.
//
// On divergence, the minimal shrunk case is automatically replayed once per
// backend with a flight recorder attached and the per-backend Chrome traces
// are written under -dumpdir, so the disagreement can be inspected on a
// Perfetto timeline. -trace records every backend replay of the whole run
// into one file; -metrics prints the counter/histogram snapshot to stderr;
// -metricsout writes the snapshot in Prometheus text format to a file (CI
// uploads it as an artifact when the harness finds a divergence); -serve
// exposes /metrics, /debug/pprof/, and /traces/ over HTTP while the sweep
// runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"logpopt/internal/cliutil"
	"logpopt/internal/conform"
	"logpopt/internal/obs"
)

func main() {
	seeds := flag.Int("seeds", 500, "number of random seeds to check")
	start := flag.Int64("start", 0, "first random seed")
	paper := flag.Bool("paper", true, "also check every paper schedule constructor")
	logtime := flag.Bool("logtime", false, "diff the search-free logtime constructor against the heap search over the standard machine sweep")
	scale := flag.String("scale", "", "comma-separated processor counts for large-P scale cases, e.g. 64,1024,100000 (default: off)")
	verbose := flag.Bool("v", false, "print every case as it is checked")
	traceOut := flag.String("trace", "", cliutil.TraceUsage)
	metrics := flag.Bool("metrics", false, cliutil.MetricsUsage)
	metricsOut := flag.String("metricsout", "", "write the metrics snapshot in Prometheus text format to `file` before exiting (default: off)")
	reportOut := flag.String("report", "", cliutil.ReportUsage+"; on divergence the report covers the first shrunk failing case, otherwise the canonical paper broadcast, with the sweep's case counts annotated")
	storeDir := flag.String("runstore", "", cliutil.RunstoreUsage)
	serveOn := flag.String("serve", "", cliutil.ServeUsage)
	dumpdir := flag.String("dumpdir", "conform-traces", "directory for per-backend trace dumps of shrunk diverging cases")
	flag.Parse()

	ck := conform.NewChecker()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ck.SetTracer(tracer)
	}
	srv, err := cliutil.StartServe("logpconform", *serveOn, tracer, *storeDir)
	if err != nil {
		fail(err)
	}
	if srv != nil {
		defer srv.Close()
	}
	checked, diverged := 0, 0
	var firstBad *conform.Case

	runCase := func(c conform.Case) {
		checked++
		diffs := ck.Check(c)
		if *verbose {
			status := "ok"
			if len(diffs) > 0 {
				status = "DIVERGED"
			}
			fmt.Printf("%-32s %d events  %s\n", c.Name, len(c.S.Events), status)
		}
		if len(diffs) == 0 {
			return
		}
		diverged++
		fmt.Printf("DIVERGENCE in %s (%d events on %v):\n", c.Name, len(c.S.Events), c.S.M)
		for _, d := range diffs {
			fmt.Printf("  %s\n", d)
		}
		min := conform.Shrink(c, ck.Diverges)
		if firstBad == nil {
			firstBad = &min
		}
		fmt.Printf("  shrunk to %d events on %v:\n", len(min.S.Events), min.S.M)
		for _, ev := range min.S.Events {
			fmt.Printf("    %+v\n", ev)
		}
		for _, d := range ck.Check(min) {
			fmt.Printf("  shrunk divergence: %s\n", d)
		}
		paths, err := conform.DumpTraces(min, *dumpdir, min.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logpconform: trace dump failed: %v\n", err)
		}
		for _, p := range paths {
			fmt.Printf("  trace dumped: %s\n", p)
		}
	}

	if *paper {
		for _, c := range conform.PaperCases() {
			runCase(c)
		}
	}
	if *logtime {
		for _, mc := range conform.ConstructorMachines() {
			checked++
			diffs := ck.CheckConstructors(mc.M, mc.SumT)
			if *verbose {
				status := "ok"
				if len(diffs) > 0 {
					status = "DIVERGED"
				}
				fmt.Printf("constructors/%-24v %s\n", mc.M, status)
			}
			if len(diffs) > 0 {
				diverged++
				fmt.Printf("CONSTRUCTOR DIVERGENCE on %v (summation t=%d):\n", mc.M, mc.SumT)
				for _, d := range diffs {
					fmt.Printf("  %s\n", d)
				}
			}
		}
	}
	if *scale != "" {
		var ps []int
		for _, f := range strings.Split(*scale, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p < 2 {
				fail(fmt.Errorf("bad -scale entry %q (want processor counts >= 2)", f))
			}
			ps = append(ps, p)
		}
		for _, c := range conform.ScaleCases(ps...) {
			runCase(c)
		}
	}
	for seed := *start; seed < *start+int64(*seeds); seed++ {
		runCase(conform.Generate(seed))
	}

	if tracer != nil {
		if err := cliutil.WriteTrace("logpconform", tracer, *traceOut); err != nil {
			fail(err)
		}
	}
	if *metrics {
		fmt.Fprint(os.Stderr, obs.Default.Snapshot())
	}
	if *metricsOut != "" {
		if err := cliutil.WriteMetricsFile(*metricsOut); err != nil {
			fail(err)
		}
	}
	if *reportOut != "" || *storeDir != "" {
		// On a clean sweep the report pins the canonical paper broadcast;
		// on divergence it describes the first shrunk failing case, so the
		// CI artifact carries the reproduction's machine and violation
		// profile next to its trace dumps.
		c := conform.PaperCases()[0]
		op := "conform/" + c.Name
		if firstBad != nil {
			c, op = *firstBad, "diverged/"+firstBad.Name
		}
		r := cliutil.BuildReport("logpconform", op, c.S, c.Origins, -1, nil)
		r.Extra = map[string]any{"cases_checked": checked, "cases_diverged": diverged}
		if *reportOut != "" {
			if err := cliutil.WriteReport("logpconform", r, *reportOut); err != nil {
				fail(err)
			}
		}
		if *storeDir != "" {
			if err := cliutil.Archive("logpconform", *storeDir, r); err != nil {
				fail(err)
			}
		}
	}
	if diverged > 0 {
		fmt.Printf("%d of %d cases diverged\n", diverged, checked)
		os.Exit(1)
	}
	fmt.Printf("%d cases conform across all backends\n", checked)
}

func fail(err error) { cliutil.Fail("logpconform", err) }
