// Command logpcont explores continuous broadcast (Section 3 of the paper):
// it builds the block-cyclic processor assignment for a postal machine,
// prints the blocks and their words, emits the k-item reception table, the
// block transmission digraph, and optionally GraphViz output.
//
// Usage:
//
//	logpcont -L 3 -t 7 -k 8          # the paper's running example / Figure 2
//	logpcont -L 3 -p 12 -k 6         # general P (beyond the paper)
//	logpcont -L 2 -t 6               # Theorem 3.5's L=2 construction
//	logpcont -L 3 -t 11 -dot         # Figure 3's digraph as GraphViz
package main

import (
	"flag"
	"fmt"
	"os"

	logpopt "logpopt"
)

func main() {
	var (
		l     = flag.Int("L", 3, "postal latency")
		t     = flag.Int("t", -1, "horizon: P-1 = P(t)")
		p     = flag.Int("p", -1, "non-source processor count (general instance; overrides -t)")
		k     = flag.Int("k", 8, "items to schedule")
		dot   = flag.Bool("dot", false, "print the block digraph as GraphViz instead of tables")
		quiet = flag.Bool("quiet", false, "headline numbers only")
	)
	flag.Parse()

	var (
		inst *logpopt.ContinuousInstance
		err  error
	)
	switch {
	case *p > 0:
		inst, _, err = logpopt.ContinuousSolveGeneral(*l, *p, *k)
	case *t >= 0 && *l == 2:
		inst, err = logpopt.ContinuousL2(*t)
	case *t >= 0:
		inst, _, err = logpopt.ContinuousSolveAndSchedule(*l, *t, *k)
	default:
		fmt.Fprintln(os.Stderr, "need -t or -p")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a, err := inst.Assign()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := a.KItemSchedule(*k)
	worst, err := logpopt.VerifyContinuousDelay(s, *k, inst.Delay())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("postal L=%d, %d subscribers, horizon %d: per-item delay %d (worst measured %d), k=%d finishes at %d\n",
		inst.L, inst.P, inst.T, inst.Delay(), worst, *k, s.LastRecv())
	if *quiet {
		return
	}
	if *dot {
		fmt.Print(logpopt.DeriveBlockDigraph(a).DOT("blocks"))
		return
	}
	fmt.Println("\nblocks and words (delays):")
	for _, b := range inst.Blocks {
		fmt.Printf("  size %-3d delay %-3d word %v\n", b.Size, b.Delay, b.Word)
	}
	fmt.Printf("  receive-only delay %d\n", inst.RecvOnlyDelay)
	g := logpopt.DeriveBlockDigraph(a)
	fmt.Println("\nblock transmission digraph:")
	fmt.Print(g.String())
	fmt.Println("\nreception table (items 1-based):")
	fmt.Print(logpopt.ReceptionTable(s))
}
