// Command logpsched compiles a named collective operation for a LogP
// machine into a schedule, emitted as versioned JSON on stdout (or rendered
// as text with -render). It makes the library's schedules consumable from
// other languages and tools.
//
// Usage:
//
//	logpsched -op broadcast -P 64 -L 6 -o 2 -g 4 > bcast.json
//	logpsched -op kitem -P 10 -L 3 -k 8 -render table
//	logpsched -op scan -P 9 -L 3 -render svg > scan.svg
//	logpsched -op kitem -P 10 -L 3 -k 8 -trace out.json -metrics
//
// -trace writes a Chrome trace-event file (open in Perfetto or
// chrome://tracing) covering the solver portfolio and a simulated replay of
// the compiled schedule; -metrics prints the counter/histogram snapshot to
// stderr.
//
// Operations: broadcast, alltoall, personalized, scatter, gather, reduce,
// scan, kitem (postal only), continuous (postal only).
package main

import (
	"flag"
	"fmt"
	"os"

	logpopt "logpopt"
	"logpopt/internal/conform"
	"logpopt/internal/obs"
	"logpopt/internal/par"
	"logpopt/internal/sim"
)

func main() {
	var (
		op       = flag.String("op", "broadcast", "collective to compile (see doc)")
		p        = flag.Int("P", 8, "number of processors")
		l        = flag.Int64("L", 6, "latency")
		o        = flag.Int64("o", 2, "overhead")
		g        = flag.Int64("g", 4, "gap")
		postal   = flag.Bool("postal", false, "postal model (forces o=0, g=1)")
		k        = flag.Int("k", 1, "items for kitem/alltoall/continuous")
		render   = flag.String("render", "json", "output: json, gantt, table, svg")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace (solver portfolio + simulated replay) to this file")
		metrics  = flag.Bool("metrics", false, "print the metrics snapshot to stderr before exiting")
	)
	flag.Parse()

	// The tracer sees two time bases on separate process tracks: wall-clock
	// microseconds for the solver portfolio (pid 4) and virtual LogP cycles
	// for the simulated replay (the simulator's default pid).
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		tracer.NameProcess(4, "solver portfolio (wall µs)")
		par.SetTracer(tracer, 4)
	}
	if *metrics {
		defer func() { fmt.Fprint(os.Stderr, obs.Default.Snapshot()) }()
	}

	var m logpopt.Machine
	var err error
	if *postal || *op == "kitem" || *op == "continuous" {
		m = logpopt.Postal(*p, *l)
	} else {
		m, err = logpopt.NewMachine(*p, *l, *o, *g)
		if err != nil {
			fail(err)
		}
	}

	var s *logpopt.Schedule
	switch *op {
	case "broadcast":
		s = logpopt.BroadcastSchedule(m, 0)
	case "alltoall":
		s = logpopt.AllToAllSchedule(m, *k)
	case "personalized":
		s = logpopt.PersonalizedSchedule(m)
	case "scatter":
		s = logpopt.ScatterSchedule(m)
	case "gather":
		s = logpopt.GatherSchedule(m)
	case "reduce":
		s = logpopt.ReduceSchedule(m, m.P)
	case "scan":
		s = logpopt.ScanSchedule(m, m.P)
	case "kitem":
		_, s, err = logpopt.KItemOptimalGeneral(m.L, m.P, *k)
		if err != nil {
			fail(fmt.Errorf("%w (try the greedy scheduler in the library for this instance)", err))
		}
	case "continuous":
		_, s, err = logpopt.ContinuousSolveGeneral(int(m.L), m.P-1, *k)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}

	if tracer != nil {
		// Replay the compiled schedule on the strict simulator purely to
		// record its flight: per-processor send/recv spans in virtual LogP
		// cycles. Origins are derived generically — each item enters at its
		// first sender at time zero — which can only make more items
		// available, never fewer, so the replay is violation-free whenever
		// the schedule is.
		eng := sim.New(s.M, sim.Strict)
		eng.Tracer = tracer
		eng.Replay(s, conform.DerivedOrigins(s))
		if err := tracer.WriteFile(*traceOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "logpsched: trace written to %s (%d events)\n", *traceOut, tracer.Len())
	}

	switch *render {
	case "json":
		if err := s.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	case "gantt":
		fmt.Print(logpopt.Gantt(s))
	case "table":
		fmt.Print(logpopt.ReceptionTable(s))
	case "svg":
		fmt.Print(logpopt.TimelineSVG(s))
	default:
		fail(fmt.Errorf("unknown render %q", *render))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "logpsched:", err)
	os.Exit(1)
}
