// Command logpsched compiles a named collective operation for a LogP
// machine into a schedule, emitted as versioned JSON on stdout (or rendered
// as text with -render). It makes the library's schedules consumable from
// other languages and tools.
//
// Usage:
//
//	logpsched -op broadcast -P 64 -L 6 -o 2 -g 4 > bcast.json
//	logpsched -op kitem -P 10 -L 3 -k 8 -render table
//	logpsched -op scan -P 9 -L 3 -render svg > scan.svg
//	logpsched -op kitem -P 10 -L 3 -k 8 -trace out.json -metrics
//	logpsched -op broadcast -explain
//	logpsched -op linear -explain -render svg > chain.svg
//
// -explain replaces the schedule output with a causal critical-path report:
// the chain of events that determines the finish time, each with its
// binding LogP constraint and slack, the per-component breakdown
// (L/o/g/compute/origin/wait), and the gap to the operation's closed-form
// lower bound attributed to the constraint classes that ate it. Combined
// with -render svg, the SVG timeline goes to stdout with the critical path
// outlined in red and the report moves to stderr.
//
// -trace writes a Chrome trace-event file (open in Perfetto or
// chrome://tracing) covering the solver portfolio and a simulated replay of
// the compiled schedule; -metrics prints the counter/histogram snapshot to
// stderr.
//
// Operations: broadcast, alltoall, personalized, scatter, gather, reduce,
// scan, kitem (postal only), continuous (postal only), summation (requires
// -t deadline), and the broadcast baselines linear, flat, binary, binomial.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	logpopt "logpopt"
	"logpopt/internal/baseline"
	"logpopt/internal/cliutil"
	"logpopt/internal/conform"
	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/causal"
	"logpopt/internal/par"
	"logpopt/internal/sim"
	"logpopt/internal/trace"
)

func main() {
	var (
		op       = flag.String("op", "broadcast", "collective to compile (see doc)")
		p        = flag.Int("P", 8, "number of processors")
		l        = flag.Int64("L", 6, "latency")
		o        = flag.Int64("o", 2, "overhead")
		g        = flag.Int64("g", 4, "gap")
		postal   = flag.Bool("postal", false, "postal model (forces o=0, g=1)")
		k        = flag.Int("k", 1, "items for kitem/alltoall/continuous")
		deadline = flag.Int64("t", 0, "deadline for -op summation (cycles)")
		render   = flag.String("render", "json", "output: json, gantt, table, svg")
		explain  = flag.Bool("explain", false, "print a causal critical-path report instead of the schedule (with -render svg: highlighted SVG on stdout, report on stderr)")
		traceOut = flag.String("trace", "", cliutil.TraceUsage)
		metrics  = flag.Bool("metrics", false, cliutil.MetricsUsage)
	)
	flag.Parse()

	// The tracer sees two time bases on separate process tracks: wall-clock
	// microseconds for the solver portfolio (pid 4) and virtual LogP cycles
	// for the simulated replay (the simulator's default pid). Events stream
	// incrementally to the output file, so even million-processor replays
	// never hold the span backlog in memory.
	var tracer *obs.Tracer
	var closeTrace func() error
	if *traceOut != "" {
		var terr error
		tracer, closeTrace, terr = cliutil.StreamTrace("logpsched", *traceOut)
		if terr != nil {
			fail(terr)
		}
		tracer.NameProcess(4, "solver portfolio (wall µs)")
		par.SetTracer(tracer, 4)
	}
	if *metrics {
		defer func() { fmt.Fprint(os.Stderr, obs.Default.Snapshot()) }()
	}

	var m logpopt.Machine
	var err error
	if *postal || *op == "kitem" || *op == "continuous" {
		m = logpopt.Postal(*p, *l)
	} else {
		m, err = logpopt.NewMachine(*p, *l, *o, *g)
		if err != nil {
			fail(err)
		}
	}

	// bound is the op's closed-form lower bound (-1: none known); ref is its
	// reference breakdown for gap attribution (nil: proportional to achieved).
	var s *logpopt.Schedule
	bound := logp.Time(-1)
	var ref *causal.Breakdown
	optimalBroadcastRef := func() *causal.Breakdown {
		r := causal.Analyze(logpopt.BroadcastSchedule(m, 0), logpopt.BroadcastOrigins(0)).Achieved
		return &r
	}
	switch *op {
	case "broadcast":
		s = logpopt.BroadcastSchedule(m, 0)
		bound = logpopt.BroadcastTime(m, m.P)
	case "linear", "flat", "binary", "binomial":
		var tr *logpopt.Tree
		switch *op {
		case "linear":
			tr = logpopt.LinearTree(m, m.P)
		case "flat":
			tr = logpopt.FlatTree(m, m.P)
		case "binary":
			tr = logpopt.BinaryTree(m, m.P)
		case "binomial":
			tr = logpopt.BinomialTree(m, m.P)
		}
		s, err = baseline.Schedule(tr, 0)
		if err != nil {
			fail(err)
		}
		bound = logpopt.BroadcastTime(m, m.P)
		ref = optimalBroadcastRef()
	case "alltoall":
		s = logpopt.AllToAllSchedule(m, *k)
		bound = logpopt.AllToAllLowerBound(m, *k)
	case "personalized":
		s = logpopt.PersonalizedSchedule(m)
		bound = logpopt.AllToAllLowerBound(m, 1)
	case "scatter":
		s = logpopt.ScatterSchedule(m)
		bound = logpopt.ScatterLowerBound(m)
	case "gather":
		s = logpopt.GatherSchedule(m)
		bound = logpopt.ScatterLowerBound(m)
	case "reduce":
		s = logpopt.ReduceSchedule(m, m.P)
		bound = logpopt.BroadcastTime(m, m.P)
	case "scan":
		s = logpopt.ScanSchedule(m, m.P)
		bound = logpopt.BroadcastTime(m, m.P) // one sweep is unavoidable
	case "kitem":
		_, s, err = logpopt.KItemOptimalGeneral(m.L, m.P, *k)
		if err != nil {
			fail(fmt.Errorf("%w (try the greedy scheduler in the library for this instance)", err))
		}
		bound = logp.Time(logpopt.KItemBoundsFor(int(m.L), m.P, int64(*k)).SingleSending)
	case "continuous":
		var inst *logpopt.ContinuousInstance
		inst, s, err = logpopt.ContinuousSolveGeneral(int(m.L), m.P-1, *k)
		if err != nil {
			fail(err)
		}
		bound = logp.Time(inst.Delay() + *k - 1)
	case "summation":
		if *deadline <= 0 {
			fail(errors.New("summation requires -t <deadline> (e.g. -t 28 for Figure 6)"))
		}
		var pl *logpopt.SummationPlan
		pl, err = logpopt.BuildSummation(m, logp.Time(*deadline))
		if err != nil {
			fail(err)
		}
		s = pl.Schedule()
		bound = logp.Time(*deadline)
	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}

	if tracer != nil {
		// Replay the compiled schedule on the strict simulator purely to
		// record its flight: per-processor send/recv spans in virtual LogP
		// cycles. Origins are derived generically — each item enters at its
		// first sender at time zero — which can only make more items
		// available, never fewer, so the replay is violation-free whenever
		// the schedule is.
		eng := sim.New(s.M, sim.Strict)
		eng.Tracer = tracer
		eng.Replay(s, conform.DerivedOrigins(s))
		if err := closeTrace(); err != nil {
			fail(err)
		}
	}

	if *explain {
		rep := causal.Analyze(s, conform.DerivedOrigins(s))
		if bound >= 0 {
			r := rep.Achieved.Scaled(bound)
			if ref != nil {
				r = *ref
			}
			if err := rep.SetBound(bound, r); err != nil {
				fail(err)
			}
		}
		if *render == "svg" {
			fmt.Print(trace.SVGHighlight(s, rep.CriticalSet()))
			fmt.Fprint(os.Stderr, rep.String())
		} else {
			fmt.Print(rep.String())
		}
		return
	}

	switch *render {
	case "json":
		if err := s.WriteJSON(os.Stdout); err != nil {
			fail(cliutil.WriteError("schedule JSON", "stdout", err))
		}
	case "gantt":
		fmt.Print(logpopt.Gantt(s))
	case "table":
		fmt.Print(logpopt.ReceptionTable(s))
	case "svg":
		fmt.Print(logpopt.TimelineSVG(s))
	default:
		fail(fmt.Errorf("unknown render %q", *render))
	}
}

func fail(err error) { cliutil.Fail("logpsched", err) }
