// Command logpsched compiles a named collective operation for a LogP
// machine into a schedule, emitted as versioned JSON on stdout (or rendered
// as text with -render). It makes the library's schedules consumable from
// other languages and tools.
//
// Usage:
//
//	logpsched -op broadcast -P 64 -L 6 -o 2 -g 4 > bcast.json
//	logpsched -op kitem -P 10 -L 3 -k 8 -render table
//	logpsched -op scan -P 9 -L 3 -render svg > scan.svg
//	logpsched -op kitem -P 10 -L 3 -k 8 -trace out.json -metrics
//	logpsched -op broadcast -P 64 -runstore runs/   # archive for reportdiff
//	logpsched -op broadcast -explain
//	logpsched -op broadcast -P 100000 -constructor logtime > big.json
//	logpsched -op linear -explain -render svg > chain.svg
//	logpsched -op broadcast -P 64 -remote http://127.0.0.1:8080 > bcast.json
//
// -remote turns the tool into a thin client of a running logpservd: the
// schedule is fetched from the service (which runs the identical compile
// layer behind a cache) instead of solved locally, and with -render json the
// service's bytes are emitted verbatim — byte-identical to a local solve.
// -explain, -trace, -report, and -runstore need a local solve and are
// rejected alongside -remote.
//
// -explain replaces the schedule output with a causal critical-path report:
// the chain of events that determines the finish time, each with its
// binding LogP constraint and slack, the per-component breakdown
// (L/o/g/compute/origin/wait), and the gap to the operation's closed-form
// lower bound attributed to the constraint classes that ate it. Combined
// with -render svg, the SVG timeline goes to stdout with the critical path
// outlined in red and the report moves to stderr.
//
// -constructor picks how the optimal broadcast tree behind broadcast,
// reduce, scan, and summation is built: "search" is the heap search,
// "logtime" the search-free counting construction (internal/logtime), and
// "auto" (the default) switches to logtime at P >= 512. Both emit the
// identical schedule; the flag only decides who does the work.
//
// -trace writes a Chrome trace-event file (open in Perfetto or
// chrome://tracing) covering the solver portfolio and a simulated replay of
// the compiled schedule; -metrics prints the counter/histogram snapshot to
// stderr.
//
// Operations: broadcast, alltoall, personalized, scatter, gather, reduce,
// scan, kitem (postal only), continuous (postal only), summation (requires
// -t deadline), and the broadcast baselines linear, flat, binary, binomial.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"

	logpopt "logpopt"
	"logpopt/internal/cliutil"
	"logpopt/internal/conform"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/obs"
	"logpopt/internal/obs/causal"
	"logpopt/internal/par"
	"logpopt/internal/schedule"
	"logpopt/internal/serve/sched"
	"logpopt/internal/sim"
	"logpopt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		cliutil.Fail("logpsched", err)
	}
}

// run is the whole tool behind a testable seam: parse args, compile the
// requested schedule, and write it (or its causal report) to stdout. Every
// failure returns an error instead of exiting, so tests can drive the full
// flag-validation surface in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("logpsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		op        = fs.String("op", "broadcast", "collective to compile (see doc)")
		p         = fs.Int("P", 8, "number of processors")
		l         = fs.Int64("L", 6, "latency")
		o         = fs.Int64("o", 2, "overhead")
		g         = fs.Int64("g", 4, "gap")
		postal    = fs.Bool("postal", false, "postal model (forces o=0, g=1)")
		k         = fs.Int("k", 1, "items for kitem/alltoall/continuous")
		deadline  = fs.Int64("t", 0, "deadline for -op summation (cycles)")
		ctor      = fs.String("constructor", "auto", "broadcast-tree constructor: auto, search, or logtime (auto: logtime at P >= 512)")
		render    = fs.String("render", "json", "output: json, gantt, table, svg")
		explain   = fs.Bool("explain", false, "print a causal critical-path report instead of the schedule (with -render svg: highlighted SVG on stdout, report on stderr)")
		traceOut  = fs.String("trace", "", cliutil.TraceUsage)
		sample    = fs.Int64("tracesample", 1, "with -trace: keep replay spans for a seeded 1-in-N sample of processors; rank 0, the critical path, and the engine track are always kept, and counter graphs are thinned by the same factor. 1 keeps everything")
		reportOut = fs.String("report", "", cliutil.ReportUsage)
		storeDir  = fs.String("runstore", "", cliutil.RunstoreUsage)
		metrics   = fs.Bool("metrics", false, cliutil.MetricsUsage)
		remote    = fs.String("remote", "", cliutil.RemoteUsage)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := cliutil.Machine(*p, *l, *o, *g, *postal || *op == "kitem" || *op == "continuous")
	if err != nil {
		return err
	}
	if *sample < 1 {
		return fmt.Errorf("-tracesample must be at least 1, got %d", *sample)
	}
	if !sched.KnownOp(*op) {
		return fmt.Errorf("unknown op %q (want one of %v)", *op, sched.Ops)
	}
	switch *op {
	case "kitem", "alltoall", "continuous":
		if *k < 1 {
			return fmt.Errorf("-k must be at least 1, got %d", *k)
		}
	}
	if *op == "summation" && *deadline <= 0 {
		return errors.New("summation requires -t <deadline> (e.g. -t 28 for Figure 6)")
	}

	if *remote != "" {
		if *explain || *traceOut != "" || *reportOut != "" || *storeDir != "" {
			return errors.New("-remote fetches schedules only; -explain, -trace, -report, and -runstore need a local solve (or use the service's /v1/explain)")
		}
		return runRemote(*remote, *op, *ctor, m, *k, logp.Time(*deadline), *render, stdout)
	}

	tb, ctorName, err := logtime.Select(*ctor, m.P)
	if err != nil {
		return err
	}

	// The tracer sees two time bases on separate process tracks: wall-clock
	// microseconds for the solver portfolio (pid 4) and virtual LogP cycles
	// for the simulated replay (the simulator's default pid). Events stream
	// incrementally to the output file, so even million-processor replays
	// never hold the span backlog in memory.
	var tracer *obs.Tracer
	var closeTrace func() error
	if *traceOut != "" {
		var terr error
		tracer, closeTrace, terr = cliutil.StreamTrace("logpsched", *traceOut)
		if terr != nil {
			return terr
		}
		tracer.NameProcess(4, "solver portfolio (wall µs)")
		par.SetTracer(tracer, 4)
	}
	if *metrics {
		defer func() { fmt.Fprint(stderr, obs.Default.Snapshot()) }()
	}

	// The compile layer (internal/serve/sched) is the single source of truth
	// for "what schedule answers (op, machine, k, t)" — cmd/logpservd runs
	// the same code behind its cache, which is what makes -remote answers
	// diffable against local ones byte for byte.
	c, err := sched.Compile(m, *op, *k, logp.Time(*deadline), tb)
	if err != nil {
		return err
	}
	s, bound := c.S, c.Bound

	// The causal analysis feeds three consumers — the sampler's keep set,
	// the run report's breakdown, and -explain — so it is computed at most
	// once and shared.
	var crep *causal.Report
	analyze := func() *causal.Report {
		if crep == nil {
			crep = causal.Analyze(s, conform.DerivedOrigins(s))
		}
		return crep
	}

	if tracer != nil {
		// Replay the compiled schedule on the strict simulator purely to
		// record its flight: per-processor send/recv spans in virtual LogP
		// cycles. Origins are derived generically — each item enters at its
		// first sender at time zero — which can only make more items
		// available, never fewer, so the replay is violation-free whenever
		// the schedule is.
		if *sample > 1 {
			// Bound the trace: keep rank 0, every processor on the causal
			// critical path, the engine's violation track, and a
			// deterministic 1-in-N sample of the rest.
			keep := []int{s.M.P}
			for pr := range analyze().CriticalProcs() {
				keep = append(keep, pr)
			}
			tracer.SetSampler(sim.DefaultTracePID, obs.NewSampler(uint64(*sample), 1, keep...))
		}
		eng := sim.New(s.M, sim.Strict)
		eng.Tracer = tracer
		eng.Replay(s, conform.DerivedOrigins(s))
		if err := closeTrace(); err != nil {
			return err
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(stderr, "logpsched: trace sampling kept %d of %d events\n",
				tracer.Len(), tracer.Len()+int(n))
		}
	}

	if *reportOut != "" || *storeDir != "" {
		r := cliutil.BuildReport("logpsched", *op, s, conform.DerivedOrigins(s), bound, analyze())
		r.Constructor = ctorName
		if *reportOut != "" {
			if err := cliutil.WriteReport("logpsched", r, *reportOut); err != nil {
				return err
			}
		}
		if *storeDir != "" {
			if err := cliutil.Archive("logpsched", *storeDir, r); err != nil {
				return err
			}
		}
	}

	if *explain {
		rep := analyze()
		if err := sched.ApplyBound(rep, c, m, tb); err != nil {
			return err
		}
		if *render == "svg" {
			fmt.Fprint(stdout, trace.SVGHighlight(s, rep.CriticalSet()))
			fmt.Fprint(stderr, rep.String())
		} else {
			fmt.Fprint(stdout, rep.String())
		}
		return nil
	}

	return renderSchedule(s, *render, stdout)
}

// renderSchedule writes s in the requested rendering — shared by the local
// and -remote paths so both present schedules identically.
func renderSchedule(s *logpopt.Schedule, render string, stdout io.Writer) error {
	switch render {
	case "json":
		if err := s.WriteJSON(stdout); err != nil {
			return cliutil.WriteError("schedule JSON", "stdout", err)
		}
	case "gantt":
		fmt.Fprint(stdout, logpopt.Gantt(s))
	case "table":
		fmt.Fprint(stdout, logpopt.ReceptionTable(s))
	case "svg":
		fmt.Fprint(stdout, logpopt.TimelineSVG(s))
	default:
		return fmt.Errorf("unknown render %q (want json, gantt, table, or svg)", render)
	}
	return nil
}

// runRemote is the thin-client mode: ask a running logpservd for the
// schedule instead of solving locally. The service runs the identical
// compile layer and serves the exact bytes its schedule.WriteJSON produced,
// so `-remote -render json` output is byte-identical to a local solve —
// which the servd smoke test diffs to prove the service is honest. Other
// renders parse the fetched schedule and render locally.
func runRemote(base, op, ctor string, m logp.Machine, k int, deadline logp.Time, render string, stdout io.Writer) error {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("-remote %q is not an absolute URL (want e.g. http://127.0.0.1:8080)", base)
	}
	q := url.Values{
		"op":     {op},
		"p":      {strconv.Itoa(m.P)},
		"l":      {strconv.FormatInt(int64(m.L), 10)},
		"o":      {strconv.FormatInt(int64(m.O), 10)},
		"g":      {strconv.FormatInt(int64(m.G), 10)},
		"format": {"schedule"},
	}
	if ctor != "" && ctor != "auto" {
		q.Set("constructor", ctor)
	}
	if k != 1 {
		q.Set("k", strconv.Itoa(k))
	}
	if deadline != 0 {
		q.Set("t", strconv.FormatInt(int64(deadline), 10))
	}
	u = u.JoinPath("/v1/schedule")
	u.RawQuery = q.Encode()

	resp, err := http.Get(u.String())
	if err != nil {
		return fmt.Errorf("remote schedule: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("remote schedule: %s: %s", resp.Status, string(msg))
	}
	if render == "json" {
		// Verbatim copy: the service's bytes ARE the deliverable.
		if _, err := io.Copy(stdout, resp.Body); err != nil {
			return cliutil.WriteError("schedule JSON", "stdout", err)
		}
		return nil
	}
	s, err := schedule.ReadJSON(resp.Body)
	if err != nil {
		return fmt.Errorf("remote schedule did not parse: %w", err)
	}
	return renderSchedule(s, render, stdout)
}
