// Command logpsched compiles a named collective operation for a LogP
// machine into a schedule, emitted as versioned JSON on stdout (or rendered
// as text with -render). It makes the library's schedules consumable from
// other languages and tools.
//
// Usage:
//
//	logpsched -op broadcast -P 64 -L 6 -o 2 -g 4 > bcast.json
//	logpsched -op kitem -P 10 -L 3 -k 8 -render table
//	logpsched -op scan -P 9 -L 3 -render svg > scan.svg
//	logpsched -op kitem -P 10 -L 3 -k 8 -trace out.json -metrics
//	logpsched -op broadcast -P 64 -runstore runs/   # archive for reportdiff
//	logpsched -op broadcast -explain
//	logpsched -op broadcast -P 100000 -constructor logtime > big.json
//	logpsched -op linear -explain -render svg > chain.svg
//
// -explain replaces the schedule output with a causal critical-path report:
// the chain of events that determines the finish time, each with its
// binding LogP constraint and slack, the per-component breakdown
// (L/o/g/compute/origin/wait), and the gap to the operation's closed-form
// lower bound attributed to the constraint classes that ate it. Combined
// with -render svg, the SVG timeline goes to stdout with the critical path
// outlined in red and the report moves to stderr.
//
// -constructor picks how the optimal broadcast tree behind broadcast,
// reduce, scan, and summation is built: "search" is the heap search,
// "logtime" the search-free counting construction (internal/logtime), and
// "auto" (the default) switches to logtime at P >= 512. Both emit the
// identical schedule; the flag only decides who does the work.
//
// -trace writes a Chrome trace-event file (open in Perfetto or
// chrome://tracing) covering the solver portfolio and a simulated replay of
// the compiled schedule; -metrics prints the counter/histogram snapshot to
// stderr.
//
// Operations: broadcast, alltoall, personalized, scatter, gather, reduce,
// scan, kitem (postal only), continuous (postal only), summation (requires
// -t deadline), and the broadcast baselines linear, flat, binary, binomial.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	logpopt "logpopt"
	"logpopt/internal/baseline"
	"logpopt/internal/cliutil"
	"logpopt/internal/combine"
	"logpopt/internal/conform"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/obs"
	"logpopt/internal/obs/causal"
	"logpopt/internal/par"
	"logpopt/internal/sim"
	"logpopt/internal/summation"
	"logpopt/internal/trace"
)

// ops lists every operation -op accepts, for the unknown-op error.
var ops = []string{
	"broadcast", "linear", "flat", "binary", "binomial",
	"alltoall", "personalized", "scatter", "gather",
	"reduce", "scan", "kitem", "continuous", "summation",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		cliutil.Fail("logpsched", err)
	}
}

// run is the whole tool behind a testable seam: parse args, compile the
// requested schedule, and write it (or its causal report) to stdout. Every
// failure returns an error instead of exiting, so tests can drive the full
// flag-validation surface in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("logpsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		op        = fs.String("op", "broadcast", "collective to compile (see doc)")
		p         = fs.Int("P", 8, "number of processors")
		l         = fs.Int64("L", 6, "latency")
		o         = fs.Int64("o", 2, "overhead")
		g         = fs.Int64("g", 4, "gap")
		postal    = fs.Bool("postal", false, "postal model (forces o=0, g=1)")
		k         = fs.Int("k", 1, "items for kitem/alltoall/continuous")
		deadline  = fs.Int64("t", 0, "deadline for -op summation (cycles)")
		ctor      = fs.String("constructor", "auto", "broadcast-tree constructor: auto, search, or logtime (auto: logtime at P >= 512)")
		render    = fs.String("render", "json", "output: json, gantt, table, svg")
		explain   = fs.Bool("explain", false, "print a causal critical-path report instead of the schedule (with -render svg: highlighted SVG on stdout, report on stderr)")
		traceOut  = fs.String("trace", "", cliutil.TraceUsage)
		sample    = fs.Int64("tracesample", 1, "with -trace: keep replay spans for a seeded 1-in-N sample of processors; rank 0, the critical path, and the engine track are always kept, and counter graphs are thinned by the same factor. 1 keeps everything")
		reportOut = fs.String("report", "", cliutil.ReportUsage)
		storeDir  = fs.String("runstore", "", cliutil.RunstoreUsage)
		metrics   = fs.Bool("metrics", false, cliutil.MetricsUsage)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := cliutil.Machine(*p, *l, *o, *g, *postal || *op == "kitem" || *op == "continuous")
	if err != nil {
		return err
	}
	if *sample < 1 {
		return fmt.Errorf("-tracesample must be at least 1, got %d", *sample)
	}
	tb, ctorName, err := logtime.Select(*ctor, m.P)
	if err != nil {
		return err
	}
	switch *op {
	case "kitem", "alltoall", "continuous":
		if *k < 1 {
			return fmt.Errorf("-k must be at least 1, got %d", *k)
		}
	}

	// The tracer sees two time bases on separate process tracks: wall-clock
	// microseconds for the solver portfolio (pid 4) and virtual LogP cycles
	// for the simulated replay (the simulator's default pid). Events stream
	// incrementally to the output file, so even million-processor replays
	// never hold the span backlog in memory.
	var tracer *obs.Tracer
	var closeTrace func() error
	if *traceOut != "" {
		var terr error
		tracer, closeTrace, terr = cliutil.StreamTrace("logpsched", *traceOut)
		if terr != nil {
			return terr
		}
		tracer.NameProcess(4, "solver portfolio (wall µs)")
		par.SetTracer(tracer, 4)
	}
	if *metrics {
		defer func() { fmt.Fprint(stderr, obs.Default.Snapshot()) }()
	}

	// bound is the op's closed-form lower bound (-1: none known); ref is its
	// reference breakdown for gap attribution (nil: proportional to achieved).
	var s *logpopt.Schedule
	bound := logp.Time(-1)
	var ref *causal.Breakdown
	// The ß(P) tree behind broadcast/reduce/scan/summation comes from the
	// selected constructor; its max label IS the optimal broadcast time, so
	// no second search is ever run just for the bound.
	optimalBroadcastRef := func() *causal.Breakdown {
		opt, terr := core.TreeSchedule(tb(m, m.P), 0, nil, 0)
		if terr != nil {
			return nil
		}
		r := causal.Analyze(opt, logpopt.BroadcastOrigins(0)).Achieved
		return &r
	}
	switch *op {
	case "broadcast":
		tr := tb(m, m.P)
		s, err = core.TreeSchedule(tr, 0, nil, 0)
		if err != nil {
			return err
		}
		bound = tr.MaxLabel()
	case "linear", "flat", "binary", "binomial":
		var tr *logpopt.Tree
		switch *op {
		case "linear":
			tr = logpopt.LinearTree(m, m.P)
		case "flat":
			tr = logpopt.FlatTree(m, m.P)
		case "binary":
			tr = logpopt.BinaryTree(m, m.P)
		case "binomial":
			tr = logpopt.BinomialTree(m, m.P)
		}
		s, err = baseline.Schedule(tr, 0)
		if err != nil {
			return err
		}
		bound = tb(m, m.P).MaxLabel()
		ref = optimalBroadcastRef()
	case "alltoall":
		s = logpopt.AllToAllSchedule(m, *k)
		bound = logpopt.AllToAllLowerBound(m, *k)
	case "personalized":
		s = logpopt.PersonalizedSchedule(m)
		bound = logpopt.AllToAllLowerBound(m, 1)
	case "scatter":
		s = logpopt.ScatterSchedule(m)
		bound = logpopt.ScatterLowerBound(m)
	case "gather":
		s = logpopt.GatherSchedule(m)
		bound = logpopt.ScatterLowerBound(m)
	case "reduce":
		tr := tb(m, m.P)
		s = combine.ReduceScheduleWith(m, m.P, func(logp.Machine, int) *core.Tree { return tr })
		bound = tr.MaxLabel()
	case "scan":
		tr := tb(m, m.P)
		s = combine.ScanScheduleWith(m, m.P, func(logp.Machine, int) *core.Tree { return tr })
		bound = tr.MaxLabel() // one sweep is unavoidable
	case "kitem":
		_, s, err = logpopt.KItemOptimalGeneral(m.L, m.P, *k)
		if err != nil {
			return fmt.Errorf("%w (try the greedy scheduler in the library for this instance)", err)
		}
		bound = logp.Time(logpopt.KItemBoundsFor(int(m.L), m.P, int64(*k)).SingleSending)
	case "continuous":
		var inst *logpopt.ContinuousInstance
		inst, s, err = logpopt.ContinuousSolveGeneral(int(m.L), m.P-1, *k)
		if err != nil {
			return err
		}
		bound = logp.Time(inst.Delay() + *k - 1)
	case "summation":
		if *deadline <= 0 {
			return errors.New("summation requires -t <deadline> (e.g. -t 28 for Figure 6)")
		}
		var pl *logpopt.SummationPlan
		pl, err = summation.BuildWith(m, logp.Time(*deadline), tb)
		if err != nil {
			return err
		}
		s = pl.Schedule()
		bound = logp.Time(*deadline)
	default:
		return fmt.Errorf("unknown op %q (want one of %v)", *op, ops)
	}

	// The causal analysis feeds three consumers — the sampler's keep set,
	// the run report's breakdown, and -explain — so it is computed at most
	// once and shared.
	var crep *causal.Report
	analyze := func() *causal.Report {
		if crep == nil {
			crep = causal.Analyze(s, conform.DerivedOrigins(s))
		}
		return crep
	}

	if tracer != nil {
		// Replay the compiled schedule on the strict simulator purely to
		// record its flight: per-processor send/recv spans in virtual LogP
		// cycles. Origins are derived generically — each item enters at its
		// first sender at time zero — which can only make more items
		// available, never fewer, so the replay is violation-free whenever
		// the schedule is.
		if *sample > 1 {
			// Bound the trace: keep rank 0, every processor on the causal
			// critical path, the engine's violation track, and a
			// deterministic 1-in-N sample of the rest.
			keep := []int{s.M.P}
			for pr := range analyze().CriticalProcs() {
				keep = append(keep, pr)
			}
			tracer.SetSampler(sim.DefaultTracePID, obs.NewSampler(uint64(*sample), 1, keep...))
		}
		eng := sim.New(s.M, sim.Strict)
		eng.Tracer = tracer
		eng.Replay(s, conform.DerivedOrigins(s))
		if err := closeTrace(); err != nil {
			return err
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Fprintf(stderr, "logpsched: trace sampling kept %d of %d events\n",
				tracer.Len(), tracer.Len()+int(n))
		}
	}

	if *reportOut != "" || *storeDir != "" {
		r := cliutil.BuildReport("logpsched", *op, s, conform.DerivedOrigins(s), bound, analyze())
		r.Constructor = ctorName
		if *reportOut != "" {
			if err := cliutil.WriteReport("logpsched", r, *reportOut); err != nil {
				return err
			}
		}
		if *storeDir != "" {
			if err := cliutil.Archive("logpsched", *storeDir, r); err != nil {
				return err
			}
		}
	}

	if *explain {
		rep := analyze()
		if bound >= 0 {
			r := rep.Achieved.Scaled(bound)
			if ref != nil {
				r = *ref
			}
			if err := rep.SetBound(bound, r); err != nil {
				return err
			}
		}
		if *render == "svg" {
			fmt.Fprint(stdout, trace.SVGHighlight(s, rep.CriticalSet()))
			fmt.Fprint(stderr, rep.String())
		} else {
			fmt.Fprint(stdout, rep.String())
		}
		return nil
	}

	switch *render {
	case "json":
		if err := s.WriteJSON(stdout); err != nil {
			return cliutil.WriteError("schedule JSON", "stdout", err)
		}
	case "gantt":
		fmt.Fprint(stdout, logpopt.Gantt(s))
	case "table":
		fmt.Fprint(stdout, logpopt.ReceptionTable(s))
	case "svg":
		fmt.Fprint(stdout, logpopt.TimelineSVG(s))
	default:
		return fmt.Errorf("unknown render %q (want json, gantt, table, or svg)", *render)
	}
	return nil
}
