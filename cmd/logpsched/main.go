// Command logpsched compiles a named collective operation for a LogP
// machine into a schedule, emitted as versioned JSON on stdout (or rendered
// as text with -render). It makes the library's schedules consumable from
// other languages and tools.
//
// Usage:
//
//	logpsched -op broadcast -P 64 -L 6 -o 2 -g 4 > bcast.json
//	logpsched -op kitem -P 10 -L 3 -k 8 -render table
//	logpsched -op scan -P 9 -L 3 -render svg > scan.svg
//
// Operations: broadcast, alltoall, personalized, scatter, gather, reduce,
// scan, kitem (postal only), continuous (postal only).
package main

import (
	"flag"
	"fmt"
	"os"

	logpopt "logpopt"
)

func main() {
	var (
		op     = flag.String("op", "broadcast", "collective to compile (see doc)")
		p      = flag.Int("P", 8, "number of processors")
		l      = flag.Int64("L", 6, "latency")
		o      = flag.Int64("o", 2, "overhead")
		g      = flag.Int64("g", 4, "gap")
		postal = flag.Bool("postal", false, "postal model (forces o=0, g=1)")
		k      = flag.Int("k", 1, "items for kitem/alltoall/continuous")
		render = flag.String("render", "json", "output: json, gantt, table, svg")
	)
	flag.Parse()

	var m logpopt.Machine
	var err error
	if *postal || *op == "kitem" || *op == "continuous" {
		m = logpopt.Postal(*p, *l)
	} else {
		m, err = logpopt.NewMachine(*p, *l, *o, *g)
		if err != nil {
			fail(err)
		}
	}

	var s *logpopt.Schedule
	switch *op {
	case "broadcast":
		s = logpopt.BroadcastSchedule(m, 0)
	case "alltoall":
		s = logpopt.AllToAllSchedule(m, *k)
	case "personalized":
		s = logpopt.PersonalizedSchedule(m)
	case "scatter":
		s = logpopt.ScatterSchedule(m)
	case "gather":
		s = logpopt.GatherSchedule(m)
	case "reduce":
		s = logpopt.ReduceSchedule(m, m.P)
	case "scan":
		s = logpopt.ScanSchedule(m, m.P)
	case "kitem":
		_, s, err = logpopt.KItemOptimalGeneral(m.L, m.P, *k)
		if err != nil {
			fail(fmt.Errorf("%w (try the greedy scheduler in the library for this instance)", err))
		}
	case "continuous":
		_, s, err = logpopt.ContinuousSolveGeneral(int(m.L), m.P-1, *k)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}

	switch *render {
	case "json":
		if err := s.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	case "gantt":
		fmt.Print(logpopt.Gantt(s))
	case "table":
		fmt.Print(logpopt.ReceptionTable(s))
	case "svg":
		fmt.Print(logpopt.TimelineSVG(s))
	default:
		fail(fmt.Errorf("unknown render %q", *render))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "logpsched:", err)
	os.Exit(1)
}
