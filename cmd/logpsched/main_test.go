package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	logpopt "logpopt"
	"logpopt/internal/baseline"
	"logpopt/internal/combine"
	"logpopt/internal/conform"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

// exec drives run() in-process and returns (stdout, err).
func exec(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

// TestRejectsBadFlags pins the flag-validation contract: every malformed
// invocation must fail with a message naming the offending flag, never
// panic or emit a schedule.
func TestRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"zero P", []string{"-P", "0"}, "-P"},
		{"negative P", []string{"-P", "-3"}, "-P"},
		{"postal zero P", []string{"-postal", "-P", "0"}, "-P"},
		{"zero L", []string{"-L", "0"}, "-L"},
		{"negative L", []string{"-L", "-2"}, "-L"},
		{"negative o", []string{"-o", "-1"}, "-o"},
		{"zero g", []string{"-g", "0"}, "-g"},
		{"unknown op", []string{"-op", "sideways"}, `unknown op "sideways"`},
		{"unknown constructor", []string{"-constructor", "psychic"}, "unknown constructor"},
		{"unknown render", []string{"-render", "hologram"}, "unknown render"},
		{"zero tracesample", []string{"-tracesample", "0"}, "-tracesample"},
		{"negative tracesample", []string{"-tracesample", "-3"}, "-tracesample"},
		{"zero k", []string{"-op", "alltoall", "-k", "0"}, "-k"},
		{"kitem zero k", []string{"-op", "kitem", "-P", "4", "-L", "3", "-k", "0"}, "-k"},
		{"summation without t", []string{"-op", "summation", "-L", "6", "-o", "2", "-g", "4"}, "-t"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted; stdout %q", tc.args, out)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
			if out != "" {
				t.Fatalf("args %v: error case wrote output %q", tc.args, out)
			}
		})
	}
}

// TestConstructorsEmitIdenticalSchedules pins the -constructor contract:
// search and logtime produce byte-identical JSON for every tree-backed op,
// and auto accepts both sides of the threshold.
func TestConstructorsEmitIdenticalSchedules(t *testing.T) {
	for _, op := range []string{"broadcast", "reduce", "scan", "summation"} {
		args := []string{"-op", op, "-P", "63", "-L", "6", "-o", "2", "-g", "4"}
		if op == "summation" {
			args = append(args, "-t", "40")
		}
		search, err := exec(t, append(args, "-constructor", "search")...)
		if err != nil {
			t.Fatalf("%s search: %v", op, err)
		}
		lt, err := exec(t, append(args, "-constructor", "logtime")...)
		if err != nil {
			t.Fatalf("%s logtime: %v", op, err)
		}
		if search != lt {
			t.Fatalf("%s: search and logtime JSON differ", op)
		}
		if search == "" {
			t.Fatalf("%s: empty schedule output", op)
		}
	}
}

// TestDegenerateCLI pins the P=1 and P=2 behavior end to end: a P=1
// broadcast is a valid empty schedule, P=2 has exactly one exchange.
func TestDegenerateCLI(t *testing.T) {
	out, err := exec(t, "-op", "broadcast", "-P", "1", "-render", "table")
	if err != nil {
		t.Fatalf("P=1: %v", err)
	}
	if strings.Contains(out, "->") {
		t.Fatalf("P=1 broadcast communicates:\n%s", out)
	}
	out, err = exec(t, "-op", "broadcast", "-P", "2", "-L", "6", "-o", "2", "-g", "4", "-explain")
	if err != nil {
		t.Fatalf("P=2: %v", err)
	}
	if !strings.Contains(out, "finish 10") || !strings.Contains(out, "gap 0") {
		t.Fatalf("P=2 explain: want finish o+L+o=10 with gap 0, got:\n%s", out)
	}
}

// TestExplainGapZero is the acceptance check that the logtime-built
// broadcast meets its own bound exactly above the auto threshold.
func TestExplainGapZero(t *testing.T) {
	out, err := exec(t, "-op", "broadcast", "-P", "1000", "-explain")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gap 0") {
		t.Fatalf("logtime-built broadcast misses its bound:\n%s", out)
	}
}

// TestRunstoreArchives: -runstore files the run in the persistent store,
// and a second identical run appends under the same key with the same
// certified outcome — the precondition for reportdiff exiting clean.
func TestRunstoreArchives(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	for i := 0; i < 2; i++ {
		if _, err := exec(t, "-op", "broadcast", "-P", "48", "-runstore", dir); err != nil {
			t.Fatal(err)
		}
	}
	s, err := runstore.Open(dir)
	if err != nil {
		t.Fatalf("store does not re-open: %v", err)
	}
	keys := s.Keys()
	if len(keys) != 1 {
		t.Fatalf("want one key, got %v", keys)
	}
	h := s.History(keys[0])
	if len(h) != 2 {
		t.Fatalf("want two archived runs, got %d", len(h))
	}
	if h[0].Finish != h[1].Finish || h[0].Violations != 0 || h[1].Violations != 0 {
		t.Fatalf("deterministic runs differ in the index: %+v", h)
	}
}

// TestReportMatchesSim is the -report acceptance check: the emitted
// artifact round-trips the strict schema reader, its finish equals what a
// direct simulated replay of the same schedule produces, and the causal
// breakdown sums to that finish.
func TestReportMatchesSim(t *testing.T) {
	for _, op := range []string{"broadcast", "reduce", "scatter", "binomial"} {
		path := filepath.Join(t.TempDir(), op+".json")
		if _, err := exec(t, "-op", op, "-P", "48", "-report", path); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		r, err := report.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: report does not round-trip: %v", op, err)
		}

		// Recompute the schedule and replay it independently.
		m := logp.MustNew(48, 6, 2, 4)
		var s *schedule.Schedule
		switch op {
		case "broadcast":
			s = core.BroadcastSchedule(m, 0)
		case "reduce":
			s = combine.ReduceSchedule(m, m.P)
		case "scatter":
			s = logpopt.ScatterSchedule(m)
		case "binomial":
			var berr error
			s, berr = baseline.Schedule(logpopt.BinomialTree(m, m.P), 0)
			if berr != nil {
				t.Fatal(berr)
			}
		}
		simRep := sim.New(m, sim.Strict).Replay(s, conform.DerivedOrigins(s))
		if r.Finish != int64(simRep.Finish) {
			t.Fatalf("%s: report finish %d, sim finish %d", op, r.Finish, simRep.Finish)
		}
		if r.Breakdown == nil || r.Breakdown.Total() != r.Finish {
			t.Fatalf("%s: breakdown does not sum to finish: %+v", op, r.Breakdown)
		}
		if r.Violations != 0 {
			t.Fatalf("%s: clean schedule reported %d violations", op, r.Violations)
		}
		if len(r.Timeseries) == 0 {
			t.Fatalf("%s: report has no time series summaries", op)
		}
	}
}
