package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"logpopt/internal/obs"
	"logpopt/internal/serve/sched"
)

// remoteServer boots an in-process sched.API over HTTP — the same handler
// set cmd/logpservd mounts — and returns its base URL.
func remoteServer(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	a := sched.NewAPI(sched.Options{Cache: sched.NewCache(2, 0, reg), Registry: reg})
	a.SetReady(true)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestRemoteByteIdentical: the thin-client contract — `-remote -render json`
// must emit exactly the bytes a local solve emits, for every op kind
// (tree-built, closed-form, postal, deadline-driven).
func TestRemoteByteIdentical(t *testing.T) {
	url := remoteServer(t)
	cases := [][]string{
		{"-op", "broadcast", "-P", "16", "-L", "6", "-o", "2", "-g", "4"},
		{"-op", "binomial", "-P", "9", "-L", "5", "-o", "1", "-g", "3"},
		{"-op", "alltoall", "-P", "6", "-L", "6", "-o", "2", "-g", "4", "-k", "2"},
		{"-op", "kitem", "-P", "10", "-L", "3", "-k", "8"},
		{"-op", "summation", "-P", "8", "-L", "6", "-o", "2", "-g", "4", "-t", "28"},
		{"-op", "broadcast", "-P", "600", "-constructor", "logtime"},
	}
	for _, args := range cases {
		local, err := exec(t, args...)
		if err != nil {
			t.Fatalf("local %v: %v", args, err)
		}
		remote, err := exec(t, append(args, "-remote", url)...)
		if err != nil {
			t.Fatalf("remote %v: %v", args, err)
		}
		if local != remote {
			t.Fatalf("%v: remote output differs from local\nlocal  %d bytes\nremote %d bytes", args, len(local), len(remote))
		}
	}
}

// TestRemoteNonJSONRenders: other renders parse the fetched schedule and
// render locally, matching the local pipeline.
func TestRemoteNonJSONRenders(t *testing.T) {
	url := remoteServer(t)
	for _, render := range []string{"gantt", "table", "svg"} {
		local, err := exec(t, "-op", "broadcast", "-P", "8", "-render", render)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := exec(t, "-op", "broadcast", "-P", "8", "-render", render, "-remote", url)
		if err != nil {
			t.Fatal(err)
		}
		if local != remote {
			t.Fatalf("render %s differs between local and remote", render)
		}
	}
}

// TestRemoteRejections: modes that need a local solve refuse -remote, bad
// URLs fail with a flag-shaped message, and server-side errors surface.
func TestRemoteRejections(t *testing.T) {
	url := remoteServer(t)
	for _, args := range [][]string{
		{"-remote", url, "-explain"},
		{"-remote", url, "-trace", "/tmp/x.json"},
		{"-remote", url, "-report", "/tmp/x.json"},
		{"-remote", url, "-runstore", "/tmp/rs"},
	} {
		if _, err := exec(t, args...); err == nil || !strings.Contains(err.Error(), "-remote") {
			t.Errorf("%v: err = %v, want -remote rejection", args, err)
		}
	}
	if _, err := exec(t, "-remote", "not-a-url"); err == nil || !strings.Contains(err.Error(), "-remote") {
		t.Errorf("bad url: err = %v", err)
	}
	// Flag validation still happens client-side before any request.
	if _, err := exec(t, "-remote", url, "-op", "sideways"); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op with -remote: err = %v", err)
	}
	// A server-side solve failure maps to a readable client error.
	if _, err := exec(t, "-remote", url, "-op", "continuous", "-P", "2", "-L", "1", "-k", "2"); err == nil || !strings.Contains(err.Error(), "remote schedule") {
		t.Errorf("server error: err = %v", err)
	}
}
