// Command logpservd is the always-on scheduling service: the library's
// optimal-schedule constructors behind an observable HTTP/JSON API. It
// answers /v1/schedule from a sharded, memory-bounded cache with singleflight
// coalescing (N concurrent identical cold requests run the solver exactly
// once), fans /v1/batch sweeps through the shared worker pool, and explains
// any answer's critical path at /v1/explain — while exposing everything an
// operator needs to trust it: per-endpoint-per-op RED metrics on /metrics,
// request-scoped spans in a Perfetto trace, structured request logs with a
// slow-request escalation, and live introspection at /debug/inflight and
// /debug/cache.
//
// Usage:
//
//	logpservd                                  # serve on 127.0.0.1:8080
//	logpservd -addr :0 -addrfile servd.addr    # ephemeral port, address to file
//	logpservd -shards 32 -cache-bytes 1073741824
//	logpservd -trace servd-trace.json -tracesample 16
//	logpservd -constructor logtime -slow 250ms
//
//	curl 'http://127.0.0.1:8080/v1/schedule?op=broadcast&p=100000'
//	curl 'http://127.0.0.1:8080/v1/explain?op=binomial&p=64'
//	curl http://127.0.0.1:8080/debug/cache
//
// The scheduling endpoints share one listener, one routing table, and one
// graceful shutdown with the telemetry surface (/metrics, /debug/pprof/,
// /traces/live, /timeseries, /dashboard): the API mounts into the same
// internal/obs/serve server every other tool uses for -serve. SIGINT or
// SIGTERM drains in-flight requests before exiting. /readyz flips to 200
// only after the warmup solves, so load balancers never route to a cold
// process.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logpopt/internal/cliutil"
	"logpopt/internal/obs"
	"logpopt/internal/obs/serve"
	"logpopt/internal/serve/sched"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, stop); err != nil {
		cliutil.Fail("logpservd", err)
	}
}

// run is the whole daemon behind a testable seam: parse flags, assemble the
// service, serve until stop delivers, shut down gracefully. Tests drive it
// with their own channel instead of process signals.
func run(args []string, stderr io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("logpservd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen `address` (:0 picks a free port)")
		addrFile   = fs.String("addrfile", "", "write the bound address to `file` once listening (for scripts using -addr :0)")
		shards     = fs.Int("shards", 16, "schedule-cache shards (lock domains)")
		cacheBytes = fs.Int64("cache-bytes", 256<<20, "schedule-cache budget in bytes of serialized schedules (0 = unbounded)")
		ctor       = fs.String("constructor", "auto", "default broadcast-tree constructor for requests that don't name one: auto, search, or logtime (auto: logtime at P >= 512)")
		slow       = fs.Duration("slow", 500*time.Millisecond, "log requests at or above this duration as warnings (0 disables)")
		traceOut   = fs.String("trace", "", cliutil.TraceUsage)
		sample     = fs.Int64("tracesample", 1, "with -trace: keep request spans for a seeded 1-in-N sample of requests; counter graphs thin by the same factor. 1 keeps everything")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if *cacheBytes < 0 {
		return fmt.Errorf("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *sample < 1 {
		return fmt.Errorf("-tracesample must be at least 1, got %d", *sample)
	}
	// Vet -constructor before anything boots: a typo should fail fast, not
	// surface as a 400 on the first request.
	if _, err := sched.Canonicalize(sched.Request{Op: "broadcast", P: 8, L: 6, O: 2, G: 4, K: 1}, *ctor); err != nil {
		return fmt.Errorf("-constructor: %w", err)
	}

	// Request spans stream straight to the trace file, sampled at the
	// request level, so a day of production traffic stays a bounded file.
	var tracer *obs.Tracer
	closeTrace := func() error { return nil }
	if *traceOut != "" {
		var err error
		tracer, closeTrace, err = cliutil.StreamTrace("logpservd", *traceOut)
		if err != nil {
			return err
		}
		if *sample > 1 {
			tracer.SetSampler(sched.TracePID, obs.NewSampler(uint64(*sample), 1))
		}
	}

	logger := slog.New(slog.NewTextHandler(stderr, nil))
	api := sched.NewAPI(sched.Options{
		Cache:       sched.NewCache(*shards, *cacheBytes, obs.Default),
		Constructor: *ctor,
		Registry:    obs.Default,
		Tracer:      tracer,
		Log:         logger,
		Slow:        *slow,
	})

	// One server for both surfaces: the scheduling API mounts into the
	// telemetry server, so /v1/* sits beside /metrics and /debug/pprof/ and
	// everything drains through the same graceful shutdown.
	srv := serve.New(obs.Default)
	if tracer != nil {
		if err := srv.AddTracer("live", tracer); err != nil {
			return err
		}
	}
	ts := cliutil.StandardCollector()
	srv.SetTimeseries(ts)
	srv.OnClose(ts.Start(time.Second))
	for _, rt := range api.Routes() {
		if err := srv.Mount(rt.Pattern, rt.Handler, rt.Desc); err != nil {
			return err
		}
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		closeTrace() //nolint:errcheck // the listen error is the one to report
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			srv.Close()  //nolint:errcheck
			closeTrace() //nolint:errcheck
			return cliutil.WriteError("bound address", *addrFile, err)
		}
	}
	logger.Info("listening", "addr", bound, "shards", *shards,
		"cache_bytes", *cacheBytes, "constructor", *ctor)

	// Warm both solver paths (heap search for small P, the counting
	// construction for large) before declaring readiness; the warmup answers
	// also seed the cache.
	if err := warmup(api); err != nil {
		srv.Close()  //nolint:errcheck
		closeTrace() //nolint:errcheck
		return fmt.Errorf("warmup solve: %w", err)
	}
	api.SetReady(true)
	logger.Info("ready", "addr", bound)

	sig := <-stop
	logger.Info("shutting down", "signal", fmt.Sprint(sig))
	api.SetReady(false)
	if err := srv.Close(); err != nil {
		closeTrace() //nolint:errcheck
		return err
	}
	return closeTrace()
}

// warmup solves one small and one large broadcast through the cache, so the
// search and counting constructors are both exercised (and their answers
// cached) before /readyz goes green.
func warmup(api *sched.API) error {
	for _, p := range []int{64, 4096} {
		req := sched.Request{Op: "broadcast", P: p, L: 6, O: 2, G: 4, K: 1}
		if _, err := api.Warm(req); err != nil {
			return err
		}
	}
	return nil
}
