package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs run() in a goroutine on an ephemeral port, waits for the
// bound address to land in the addrfile, and returns the base URL, the stop
// channel, and a channel carrying run's return value.
func startDaemon(t *testing.T, extraArgs ...string) (string, chan os.Signal, chan error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "servd.addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addrfile", addrFile}, extraArgs...)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, io.Discard, stop) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), stop, done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before binding: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetch GETs url and returns (status, body).
func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonEndToEnd boots the daemon over a loopback listener and walks the
// whole serving surface: readiness after warmup, a schedule answer (a cache
// hit, since warmup seeded P=64), merged telemetry endpoints, the index's
// mounted-route listing, and a clean SIGTERM shutdown.
func TestDaemonEndToEnd(t *testing.T) {
	base, stop, done := startDaemon(t)

	// Warmup ran before the addrfile test proceeds past /readyz, so poll
	// until ready flips (warmup happens after listening).
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := fetch(t, base+"/readyz")
		if code == http.StatusOK {
			if !strings.Contains(body, "ready") {
				t.Fatalf("/readyz body = %q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never went 200 (last: %d %q)", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, body := fetch(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Warmup solved broadcast P=64 on the default machine: this is a hit.
	code, body := fetch(t, base+"/v1/schedule?op=broadcast&p=64")
	if code != http.StatusOK {
		t.Fatalf("/v1/schedule = %d %s", code, body)
	}
	if !strings.Contains(body, `"cache":"hit"`) {
		t.Fatalf("warmup-seeded request was not a cache hit: %s", clipBody(body))
	}

	// The metrics surface carries the servd series and the process preamble.
	code, metrics := fetch(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"logp_build_info",
		"logp_process_uptime_seconds",
		"logpopt_servd_http_schedule_requests_total",
		"logpopt_servd_cache_hits_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// The index lists the mounted scheduling routes beside the built-ins.
	if code, index := fetch(t, base+"/"); code != http.StatusOK ||
		!strings.Contains(index, "mounted:") || !strings.Contains(index, "/v1/schedule") {
		t.Fatalf("index = %d %q", code, index)
	}

	if code, body := fetch(t, base+"/debug/cache"); code != http.StatusOK ||
		!strings.Contains(body, `"shards"`) {
		t.Fatalf("/debug/cache = %d %q", code, clipBody(body))
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s of SIGTERM")
	}
}

// TestDaemonTrace: with -trace, request spans land in the trace file after
// shutdown closes it.
func TestDaemonTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	base, stop, done := startDaemon(t, "-trace", traceFile, "-tracesample", "1")

	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := fetch(t, base+"/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := fetch(t, base+"/v1/schedule?op=binomial&p=16"); code != http.StatusOK {
		t.Fatalf("schedule = %d", code)
	}

	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"schedule"`)) {
		t.Fatalf("trace file has no schedule span (%d bytes)", len(b))
	}
	if !bytes.Contains(b, []byte("logpservd requests")) {
		t.Fatal("trace file missing the request process name")
	}
}

// TestDaemonFlagValidation: bad flags fail fast with flag-shaped messages,
// before any listener binds.
func TestDaemonFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-shards", "0"}, "-shards"},
		{[]string{"-cache-bytes", "-1"}, "-cache-bytes"},
		{[]string{"-tracesample", "0"}, "-tracesample"},
		{[]string{"-constructor", "sideways"}, "unknown constructor"},
	}
	for _, tc := range cases {
		stop := make(chan os.Signal, 1)
		err := run(tc.args, io.Discard, stop)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// clipBody keeps failure messages readable when a body embeds a schedule.
func clipBody(s string) string {
	if len(s) > 300 {
		return fmt.Sprintf("%s… (%d bytes)", s[:300], len(s))
	}
	return s
}
