// Command logpsum builds and runs optimal LogP summation schedules
// (Section 5 of the paper).
//
// Usage:
//
//	logpsum -P 8 -L 5 -o 2 -g 4 -t 28     # Figure 6: plan + chart + run
//	logpsum -P 64 -L 6 -o 2 -g 4 -n 5000  # minimum time to sum n operands
package main

import (
	"flag"
	"fmt"
	"os"

	logpopt "logpopt"
)

func main() {
	var (
		p     = flag.Int("P", 8, "number of processors")
		l     = flag.Int64("L", 5, "latency")
		o     = flag.Int64("o", 2, "overhead")
		g     = flag.Int64("g", 4, "gap")
		t     = flag.Int64("t", 28, "deadline (cycles)")
		n     = flag.Int64("n", 0, "if > 0, find the minimum time to sum n operands instead")
		quiet = flag.Bool("quiet", false, "print only the headline numbers")
	)
	flag.Parse()
	m, err := logpopt.NewMachine(*p, *l, *o, *g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *n > 0 {
		tt := logpopt.SummationTimeFor(m, *n)
		cap, tr := logpopt.SummationCapacity(m, tt)
		fmt.Printf("%v: summing %d operands takes %d cycles (capacity %d on %d processors)\n",
			m, *n, tt, cap, tr.P())
		return
	}

	cap, _ := logpopt.SummationCapacity(m, *t)
	pl, err := logpopt.BuildSummation(m, *t)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%v: n(%d) = %d operands on %d processors\n", m, *t, cap, pl.Tree.P())

	// Execute with 1..n and check against the closed form.
	ops := make([]int64, pl.N)
	var want int64
	for i := range ops {
		ops[i] = int64(i + 1)
		want += ops[i]
	}
	got, err := logpopt.ExecuteSummation(pl, ops, func(a, b int64) int64 { return a + b })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	status := "ok"
	if got != want {
		status = "MISMATCH"
	}
	fmt.Printf("executed: sum(1..%d) = %d (%s)\n", pl.N, got, status)
	if *quiet {
		return
	}
	fmt.Println("\nComputation schedule (+ add, R/r receive, S/s send):")
	fmt.Print(logpopt.Gantt(pl.Schedule()))
	fmt.Println("\nCommunication tree (reversed optimal broadcast on L+1):")
	fmt.Print(pl.Tree.String())
}
