// Command reportcheck validates logpopt run-report JSON files: each named
// file must strictly decode against the current report schema (unknown
// fields rejected) and pass the internal consistency checks — gap equals
// finish minus bound, the causal breakdown sums to the finish, quantiles
// are ordered, series aggregates are coherent. It is the assertion behind
// `make report-smoke` and exits nonzero on the first failure.
//
// Usage:
//
//	reportcheck run.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"logpopt/internal/obs/report"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: reportcheck report.json [report.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		r, err := report.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reportcheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		bound := "no closed-form bound"
		if r.Bound >= 0 {
			bound = fmt.Sprintf("bound %d (gap %d)", r.Bound, r.Gap)
		}
		fmt.Printf("%s: %s %s P=%d finish %d, %s, %d series, %d violations\n",
			path, r.Tool, r.Op, r.Machine.P, r.Finish, bound, len(r.Timeseries), r.Violations)
	}
}
