// Command reportdiff compares run reports (internal/obs/report) and gates
// on drift, the report sibling of cmd/benchdiff. It accepts three argument
// shapes:
//
//	reportdiff old.json new.json     compare two report files
//	reportdiff storeA/ storeB/      compare the latest run of every key
//	                                shared by two run stores (-runstore dirs)
//	reportdiff store/               compare each key's latest run against
//	                                its predecessor within one store
//
// Exit status: 0 when nothing gates (identical runs exit 0 with an empty
// verdict), 1 when any gated field drifts beyond its threshold, 2 on usage
// or I/O errors. The per-field thresholds are fractional and adjustable:
//
//	reportdiff -finish 0.05 -quantile -1 old.json new.json
//
// A negative threshold disables that gate (the delta is still reported with
// -v). A key present in the old store but absent from the new one gates —
// lost coverage can hide a regression; a key only in the new store is
// reported but does not gate.
//
// Usage:
//
//	logpsched -op broadcast -P 64 -runstore runs/
//	logpsched -op broadcast -P 64 -runstore runs/
//	reportdiff runs/                 # exit 0: deterministic, identical
//	reportdiff -json runs/ | jq .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"logpopt/internal/obs/diff"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
)

func main() {
	gated, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reportdiff: %v\n", err)
		os.Exit(2)
	}
	if gated {
		os.Exit(1)
	}
}

// run executes one comparison and reports whether anything gated. Usage and
// I/O problems come back as errors (exit 2); drift is the boolean (exit 1).
func run(args []string, stdout, stderr io.Writer) (bool, error) {
	fs := flag.NewFlagSet("reportdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		finish     = fs.Float64("finish", diff.Default.Finish, "fractional threshold on the finish time (negative: report only)")
		gap        = fs.Float64("gap", diff.Default.Gap, "fractional threshold on the gap to the closed-form bound")
		breakdown  = fs.Float64("breakdown", diff.Default.Breakdown, "fractional threshold on each causal-breakdown component")
		quantile   = fs.Float64("quantile", diff.Default.Quantile, "fractional threshold on each port-stat quantile rung")
		violations = fs.Float64("violations", diff.Default.Violations, "fractional threshold on the violation count (0: exact)")
		verbose    = fs.Bool("v", false, "list non-gated drift too, not just gated fields")
		jsonOut    = fs.Bool("json", false, "emit the verdicts as one JSON array instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	th := diff.Thresholds{
		Finish:     *finish,
		Gap:        *gap,
		Breakdown:  *breakdown,
		Quantile:   *quantile,
		Violations: *violations,
	}

	var verdicts []*diff.Verdict
	switch pos := fs.Args(); len(pos) {
	case 1:
		if !isDir(pos[0]) {
			return false, fmt.Errorf("%s is not a run store directory (one argument means: diff each key's latest run against its predecessor)", pos[0])
		}
		vs, err := diffWithin(pos[0], th)
		if err != nil {
			return false, err
		}
		verdicts = vs
	case 2:
		a, b := isDir(pos[0]), isDir(pos[1])
		switch {
		case a && b:
			vs, err := diffStores(pos[0], pos[1], th)
			if err != nil {
				return false, err
			}
			verdicts = vs
		case !a && !b:
			v, err := diffFiles(pos[0], pos[1], th)
			if err != nil {
				return false, err
			}
			verdicts = []*diff.Verdict{v}
		default:
			return false, fmt.Errorf("cannot compare a report file with a store directory (%s vs %s)", pos[0], pos[1])
		}
	default:
		return false, fmt.Errorf("want <old.json> <new.json>, <storeA> <storeB>, or <store>; got %d arguments", len(pos))
	}

	gated := false
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdicts); err != nil {
			return false, err
		}
	}
	for _, v := range verdicts {
		if !*jsonOut {
			v.Write(stdout, *verbose)
		}
		if v.Gated > 0 {
			gated = true
		}
	}
	if len(verdicts) == 0 && !*jsonOut {
		fmt.Fprintln(stdout, "nothing to compare (no key has two runs)")
	}
	return gated, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// diffFiles compares two standalone report artifacts.
func diffFiles(aPath, bPath string, th diff.Thresholds) (*diff.Verdict, error) {
	a, err := report.ReadFile(aPath)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", aPath, err)
	}
	b, err := report.ReadFile(bPath)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", bPath, err)
	}
	v := diff.Compare(a, b, th)
	v.A, v.B = aPath, bPath
	return v, nil
}

// diffWithin compares, per key of one store, the latest run against its
// predecessor. Keys with a single run have nothing to compare and are
// skipped.
func diffWithin(dir string, th diff.Thresholds) ([]*diff.Verdict, error) {
	s, err := runstore.Open(dir)
	if err != nil {
		return nil, err
	}
	var out []*diff.Verdict
	for _, k := range s.Keys() {
		h := s.History(k)
		if len(h) < 2 {
			continue
		}
		prev, last := h[len(h)-2], h[len(h)-1]
		v, err := diffEntries(s, prev, s, last, th)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// diffStores compares the latest run of every key shared by two stores. A
// key the old store has but the new one lost gates (vanished coverage can
// hide a regression); a key only the new store has is informational.
func diffStores(aDir, bDir string, th diff.Thresholds) ([]*diff.Verdict, error) {
	sa, err := runstore.Open(aDir)
	if err != nil {
		return nil, err
	}
	sb, err := runstore.Open(bDir)
	if err != nil {
		return nil, err
	}
	var out []*diff.Verdict
	for _, k := range sa.Keys() {
		ea, _ := sa.Latest(k)
		eb, ok := sb.Latest(k)
		if !ok {
			out = append(out, presenceVerdict(k, ea.Name(), "absent", true))
			continue
		}
		v, err := diffEntries(sa, ea, sb, eb, th)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	for _, k := range sb.Keys() {
		if _, ok := sa.Latest(k); !ok {
			eb, _ := sb.Latest(k)
			out = append(out, presenceVerdict(k, "absent", eb.Name(), false))
		}
	}
	return out, nil
}

// presenceVerdict records a key that exists on only one side.
func presenceVerdict(k runstore.Key, a, b string, gated bool) *diff.Verdict {
	v := &diff.Verdict{A: a, B: b}
	v.Deltas = append(v.Deltas, diff.Delta{
		Field: "key[" + k.String() + "]",
		Old:   a, New: b, Gated: gated,
	})
	if gated {
		v.Gated++
	}
	return v
}

func diffEntries(sa *runstore.Store, ea runstore.Entry, sb *runstore.Store, eb runstore.Entry, th diff.Thresholds) (*diff.Verdict, error) {
	a, err := sa.Load(ea)
	if err != nil {
		return nil, err
	}
	b, err := sb.Load(eb)
	if err != nil {
		return nil, err
	}
	v := diff.Compare(a, b, th)
	v.A, v.B = ea.Name(), eb.Name()
	return v, nil
}
