package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
	"logpopt/internal/schedule"
)

// exec drives run() in-process: (stdout, gated, err) mirrors the process
// exit contract (err -> 2, gated -> 1, else 0).
func exec(t *testing.T, args ...string) (string, bool, error) {
	t.Helper()
	var out, errb bytes.Buffer
	gated, err := run(args, &out, &errb)
	return out.String(), gated, err
}

// buildReport assembles a deterministic, Validate-clean report the way the
// tools do, so two builds are byte-identical.
func buildReport(t *testing.T) *report.Report {
	t.Helper()
	m := logp.MustNew(16, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	crep := causal.Analyze(s, core.Origins(0))
	r := report.New("logpsched", m)
	r.Op = "broadcast"
	r.Constructor = "search"
	r.SetOutcome(crep.Finish, crep.Finish)
	r.SetCausal(crep)
	r.Stats = report.FromStats(schedule.ComputeStats(s, crep.Finish, nil))
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r
}

// writeReport materializes r as an artifact file and returns its path.
func writeReport(t *testing.T, dir, name string, r *report.Report) string {
	t.Helper()
	if err := r.Validate(); err != nil {
		t.Fatalf("fixture no longer valid: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// archive opens (or reopens) the store at dir and files r.
func archive(t *testing.T, dir string, r *report.Report) {
	t.Helper()
	s, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("fixture no longer valid: %v", err)
	}
	if _, err := s.Put(r); err != nil {
		t.Fatal(err)
	}
}

// TestIdenticalFilesExitClean: two runs of the same deterministic case
// produce an empty verdict and exit status 0.
func TestIdenticalFilesExitClean(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", buildReport(t))
	b := writeReport(t, dir, "b.json", buildReport(t))
	out, gated, err := exec(t, a, b)
	if err != nil || gated {
		t.Fatalf("identical reports gated (gated=%v err=%v):\n%s", gated, err, out)
	}
	if !strings.Contains(out, "identical") {
		t.Fatalf("empty verdict not announced:\n%s", out)
	}
}

// TestEachGatedPerturbationFlipsExit covers the acceptance criterion: a
// perturbation of any gated field class beyond its threshold flips the
// process outcome to gated, in both the file-pair and single-store modes.
func TestEachGatedPerturbationFlipsExit(t *testing.T) {
	cases := []struct {
		name    string
		perturb func(r *report.Report)
	}{
		{"finish", func(r *report.Report) {
			d := r.Finish / 2
			r.Finish += d
			r.Gap += d
			r.Breakdown.Wait += d
		}},
		{"gap", func(r *report.Report) {
			r.Bound -= 4
			r.Gap += 4
		}},
		{"breakdown component", func(r *report.Report) {
			r.Breakdown.Wait += r.Breakdown.Latency
			r.Breakdown.Latency = 0
		}},
		{"quantile", func(r *report.Report) {
			r.Stats.ProcBusy.Max *= 4
			r.Stats.ProcBusy.P99 = r.Stats.ProcBusy.Max
		}},
		{"violations", func(r *report.Report) { r.Violations = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			a := writeReport(t, dir, "a.json", buildReport(t))
			perturbed := buildReport(t)
			tc.perturb(perturbed)
			b := writeReport(t, dir, "b.json", perturbed)
			out, gated, err := exec(t, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !gated {
				t.Fatalf("perturbing %s did not gate:\n%s", tc.name, out)
			}
			if !strings.Contains(out, "GATED") {
				t.Fatalf("gated verdict not rendered:\n%s", out)
			}

			// Same perturbation through a store: baseline, then the drifted
			// run, diffed latest-vs-predecessor.
			store := filepath.Join(t.TempDir(), "store")
			archive(t, store, buildReport(t))
			archive(t, store, perturbed)
			_, gated, err = exec(t, store)
			if err != nil {
				t.Fatal(err)
			}
			if !gated {
				t.Fatalf("store mode: perturbing %s did not gate", tc.name)
			}
		})
	}
}

// TestSingleStoreMode: identical consecutive runs are clean; a lone run has
// nothing to compare.
func TestSingleStoreMode(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	archive(t, store, buildReport(t))
	out, gated, err := exec(t, store)
	if err != nil || gated {
		t.Fatalf("single run gated (gated=%v err=%v):\n%s", gated, err, out)
	}
	if !strings.Contains(out, "nothing to compare") {
		t.Fatalf("lone run not announced:\n%s", out)
	}
	archive(t, store, buildReport(t))
	out, gated, err = exec(t, store)
	if err != nil || gated {
		t.Fatalf("identical consecutive runs gated (gated=%v err=%v):\n%s", gated, err, out)
	}
	if !strings.Contains(out, "identical") {
		t.Fatalf("clean store diff not announced:\n%s", out)
	}
}

// TestStorePairMode: shared keys diff latest-vs-latest; a key the old store
// has and the new one lost gates; a key only the new store has does not.
func TestStorePairMode(t *testing.T) {
	oldS, newS := filepath.Join(t.TempDir(), "old"), filepath.Join(t.TempDir(), "new")
	archive(t, oldS, buildReport(t))
	archive(t, newS, buildReport(t))
	out, gated, err := exec(t, oldS, newS)
	if err != nil || gated {
		t.Fatalf("identical stores gated (gated=%v err=%v):\n%s", gated, err, out)
	}

	// New coverage in the new store: reported, not gated.
	extra := buildReport(t)
	extra.Op = "reduce"
	extra.Finish += 4 // reduce pays a combine on the last hop; any valid shape works
	extra.Gap += 4
	extra.Breakdown.Wait += 4
	archive(t, newS, extra)
	_, gated, err = exec(t, oldS, newS)
	if err != nil || gated {
		t.Fatalf("extra key in new store gated (gated=%v err=%v)", gated, err)
	}

	// Lost coverage: the old store knows a key the new one lacks — gates.
	archive(t, oldS, extra)
	lost := buildReport(t)
	lost.Constructor = "logtime"
	archive(t, oldS, lost)
	out, gated, err = exec(t, oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	if !gated {
		t.Fatalf("lost key did not gate:\n%s", out)
	}
}

// TestThresholdFlags: a negative class threshold turns that gate off.
func TestThresholdFlags(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", buildReport(t))
	perturbed := buildReport(t)
	perturbed.Violations = 3
	b := writeReport(t, dir, "b.json", perturbed)
	_, gated, err := exec(t, "-violations", "-1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if gated {
		t.Fatal("disabled violations gate still gated")
	}
	// And -v surfaces the now-informational drift.
	out, _, err := exec(t, "-violations", "-1", "-v", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "violations") {
		t.Fatalf("-v did not list the drift:\n%s", out)
	}
}

// TestUsageErrors: malformed invocations fail with an explanatory error
// (process exit 2), never a gate or a panic.
func TestUsageErrors(t *testing.T) {
	dir := t.TempDir()
	f := writeReport(t, dir, "a.json", buildReport(t))
	store := filepath.Join(t.TempDir(), "store")
	archive(t, store, buildReport(t))
	cases := [][]string{
		{},
		{f, f, f},
		{f, store},
		{f},
		{filepath.Join(dir, "missing.json"), f},
	}
	for _, args := range cases {
		if _, _, err := exec(t, args...); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestJSONOutput: -json emits one machine-readable array of verdicts.
func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", buildReport(t))
	perturbed := buildReport(t)
	perturbed.Violations = 2
	b := writeReport(t, dir, "b.json", perturbed)
	out, gated, err := exec(t, "-json", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !gated {
		t.Fatal("violation drift did not gate")
	}
	var got []struct {
		A     string `json:"a"`
		B     string `json:"b"`
		Gated int    `json:"gated"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(got) != 1 || got[0].Gated == 0 || got[0].A != a {
		t.Fatalf("verdict array mangled: %+v", got)
	}
}
