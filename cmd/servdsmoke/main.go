// Command servdsmoke is the end-to-end proof that a real logpservd process
// behaves: it boots the daemon binary on an ephemeral port, waits for
// /readyz, fires N concurrent identical cold requests and asserts the
// singleflight collapsed them into exactly one solver run, checks the RED
// series made it to /metrics, and shuts the process down with SIGTERM
// expecting a clean exit. `make servd-smoke` builds the daemon and runs this
// against it; CI runs the target on every push.
//
// With -sched pointing at a built logpsched, the smoke also diffs the CLI
// and the service byte-for-byte: `logpsched -render json` solving locally
// must emit exactly the bytes `logpsched -remote <url> -render json` fetches
// from the daemon.
//
// Usage:
//
//	servdsmoke -bin ./logpservd [-sched ./logpsched] [-n 32]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"logpopt/internal/cliutil"
)

func main() {
	bin := flag.String("bin", "", "`path` to the logpservd binary to smoke-test")
	sched := flag.String("sched", "", "`path` to a logpsched binary; when set, diff its local solve against -remote byte-for-byte")
	n := flag.Int("n", 32, "concurrent identical requests to fire at one cold key")
	flag.Parse()
	if *bin == "" {
		cliutil.Fail("servdsmoke", fmt.Errorf("-bin is required (path to a built logpservd)"))
	}
	if err := smoke(*bin, *sched, *n); err != nil {
		cliutil.Fail("servdsmoke", err)
	}
	fmt.Println("servd smoke: ok")
}

func smoke(bin, sched string, n int) error {
	dir, err := os.MkdirTemp("", "servdsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "servd.addr")

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addrfile", addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", bin, err)
	}
	// If anything below fails, don't leave the daemon running.
	exited := false
	defer func() {
		if !exited {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	}()

	base, err := waitAddr(addrFile, 15*time.Second)
	if err != nil {
		return err
	}
	if err := waitReady(base, 15*time.Second); err != nil {
		return err
	}
	fmt.Printf("servd smoke: ready at %s\n", base)

	// One cold key, n concurrent requests: the singleflight contract says
	// the solver runs once and everyone else coalesces onto it (the warmup
	// seeds P=64 and P=4096, so P=3000 is cold).
	url := base + "/v1/schedule?op=broadcast&p=3000&schedule=false"
	outcomes := make([]string, n)
	errs := make([]error, n)
	var start, wg sync.WaitGroup
	start.Add(1)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			start.Wait()
			var env struct {
				Cache string `json:"cache"`
			}
			errs[i] = getJSON(url, &env)
			outcomes[i] = env.Cache
		}(i)
	}
	start.Done()
	wg.Wait()
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return fmt.Errorf("request %d: %w", i, errs[i])
		}
		counts[outcomes[i]]++
	}
	if counts["miss"] != 1 {
		return fmt.Errorf("%d concurrent cold requests produced %d solver runs, want exactly 1 (outcomes %v)", n, counts["miss"], counts)
	}
	fmt.Printf("servd smoke: %d concurrent requests -> 1 solve, %d coalesced, %d hits\n",
		n, counts["coalesced"], counts["hit"])

	// The cache's own ledger must agree: exactly 3 misses total (2 warmup
	// solves + this one).
	var cache struct {
		Totals struct {
			Misses    int64 `json:"misses"`
			Coalesced int64 `json:"coalesced"`
		} `json:"totals"`
	}
	if err := getJSON(base+"/debug/cache", &cache); err != nil {
		return err
	}
	if cache.Totals.Misses != 3 {
		return fmt.Errorf("/debug/cache reports %d misses, want 3 (two warmups + one smoke solve)", cache.Totals.Misses)
	}

	// The RED series for the schedule endpoint must be on /metrics.
	metrics, err := getBody(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"logpopt_servd_http_schedule_requests_total",
		"logpopt_servd_http_schedule_duration_us",
		"logpopt_servd_cache_coalesced_total",
		"logp_build_info",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing series %s", want)
		}
	}
	fmt.Println("servd smoke: RED series present on /metrics")

	// CLI/service agreement: a local solve and a -remote fetch of the same
	// key must be byte-identical.
	if sched != "" {
		args := []string{"-op", "broadcast", "-P", "3000", "-render", "json"}
		local, err := exec.Command(sched, args...).Output()
		if err != nil {
			return fmt.Errorf("local logpsched: %w", err)
		}
		remote, err := exec.Command(sched, append(args, "-remote", base)...).Output()
		if err != nil {
			return fmt.Errorf("remote logpsched: %w", err)
		}
		if string(local) != string(remote) {
			return fmt.Errorf("logpsched output differs: local %d bytes, remote %d bytes", len(local), len(remote))
		}
		fmt.Println("servd smoke: logpsched -remote output byte-identical to local solve")
	}

	// Graceful shutdown: SIGTERM, clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		exited = true
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("daemon did not exit within 15s of SIGTERM")
	}
	fmt.Println("servd smoke: clean shutdown on SIGTERM")
	return nil
}

// waitAddr polls the addrfile the daemon writes once listening.
func waitAddr(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote %s within %s", path, timeout)
}

// waitReady polls /readyz until it answers 200.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("/readyz never answered 200 within %s", timeout)
}

// getJSON GETs url and decodes the body into out.
func getJSON(url string, out any) error {
	body, err := getBody(url)
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(body), out)
}

// getBody GETs url, requiring 200.
func getBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return string(b), nil
}
