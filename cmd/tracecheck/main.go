// Command tracecheck validates Chrome trace-event JSON files: each named
// file must parse and contain at least one trace event. It is the assertion
// behind `make trace-smoke` — proof that the -trace flags emit something a
// trace viewer will actually load — and exits nonzero on the first failure.
//
// Usage:
//
//	tracecheck out.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck file.json [file.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		n, err := check(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d trace events\n", path, n)
	}
}

// check parses one trace file and returns its event count. Both JSON forms
// the viewers accept are allowed: the object form {"traceEvents": [...]}
// and the bare array form [...].
func check(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		var arr []json.RawMessage
		if err2 := json.Unmarshal(raw, &arr); err2 != nil {
			return 0, fmt.Errorf("not valid trace JSON: %v", err)
		}
		doc.TraceEvents = arr
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("no trace events")
	}
	for i, ev := range doc.TraceEvents {
		var e struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(ev, &e); err != nil {
			return 0, fmt.Errorf("event %d malformed: %v", i, err)
		}
		if e.Ph == "" {
			return 0, fmt.Errorf("event %d has no phase", i)
		}
	}
	return len(doc.TraceEvents), nil
}
