package logpopt_test

import (
	"fmt"

	logpopt "logpopt"
)

// Example reproduces the headline number of the paper's Figure 1: the
// optimal broadcast time for 8 processors with L=6, o=2, g=4.
func Example() {
	m := logpopt.ProfilePaperFig1
	fmt.Println(logpopt.BroadcastTime(m, m.P))
	// Output: 24
}

// ExampleOptimalBroadcastTree shows the availability times of the optimal
// broadcast tree — the labels drawn in the paper's Figure 1.
func ExampleOptimalBroadcastTree() {
	m := logpopt.ProfilePaperFig1
	tree := logpopt.OptimalBroadcastTree(m, m.P)
	for _, n := range tree.Nodes {
		fmt.Print(n.Label, " ")
	}
	fmt.Println()
	// Output: 0 10 14 18 20 22 24 24
}

// ExampleReachable evaluates Theorem 2.2: in the postal model, the number of
// processors reachable in t steps is the generalized Fibonacci number f_t.
func ExampleReachable() {
	m := logpopt.Postal(2, 3) // P is irrelevant for Reachable
	for t := int64(0); t <= 11; t++ {
		fmt.Print(logpopt.Reachable(m, t, 0), " ")
	}
	fmt.Println()
	// Output: 1 1 1 2 3 4 6 9 13 19 28 41
}

// ExampleKItemBoundsFor computes the bounds of the paper's running example:
// broadcasting k=8 items to P-1=9 processors with L=3.
func ExampleKItemBoundsFor() {
	b := logpopt.KItemBoundsFor(3, 10, 8)
	fmt.Println(b.Lower, b.SingleSending, b.Upper)
	// Output: 15 17 19
}

// ExampleKItemOptimal builds Figure 2's complete 8-item broadcast, which
// finishes at the single-sending optimum, time 17.
func ExampleKItemOptimal() {
	_, s, err := logpopt.KItemOptimal(3, 7, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.LastRecv())
	// Output: 17
}

// ExampleCombineRun performs Theorem 4.1's combining broadcast: 9 processors
// (L=3) all learn the global sum in 7 steps.
func ExampleCombineRun() {
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	got, err := logpopt.CombineRun(3, 7, vals, func(a, b int) int { return a + b })
	if err != nil {
		panic(err)
	}
	fmt.Println(got[0], got[8])
	// Output: 45 45
}

// ExampleBuildSummation reproduces Figure 6's capacity: the machine
// (P=8, L=5, o=2, g=4) sums 79 operands in 28 cycles.
func ExampleBuildSummation() {
	pl, err := logpopt.BuildSummation(logpopt.ProfilePaperFig6, 28)
	if err != nil {
		panic(err)
	}
	ops := make([]int, pl.N)
	total := 0
	for i := range ops {
		ops[i] = i + 1
		total += ops[i]
	}
	got, err := logpopt.ExecuteSummation(pl, ops, func(a, b int) int { return a + b })
	if err != nil {
		panic(err)
	}
	fmt.Println(pl.N, got == total)
	// Output: 79 true
}

// ExampleAllToAllSchedule verifies Section 4.1's optimum on a postal machine.
func ExampleAllToAllSchedule() {
	m := logpopt.Postal(9, 3)
	s := logpopt.AllToAllSchedule(m, 1)
	fmt.Println(s.LastRecv(), logpopt.AllToAllLowerBound(m, 1))
	// Output: 10 10
}

// ExampleScanRun runs the two-sweep prefix scan (an extension beyond the
// paper) on 9 postal processors; the root's rank is 0 so its inclusive
// prefix is its own value.
func ExampleScanRun() {
	m := logpopt.Postal(9, 3)
	vals := []int{1, 1, 1, 1, 1, 1, 1, 1, 1}
	res, T, err := logpopt.ScanRun(m, vals, func(a, b int) int { return a + b })
	if err != nil {
		panic(err)
	}
	fmt.Println(res[0], T)
	// Output: 1 14
}

// ExampleNewSeq prints the generalized Fibonacci sequence for L=3 and its
// growth rate.
func ExampleNewSeq() {
	s := logpopt.NewSeq(3)
	fmt.Println(s.F(7), s.InvF(9), s.KStar(10))
	// Output: 9 7 2
}
