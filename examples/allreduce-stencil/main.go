// allreduce-stencil: an iterative 1-D Jacobi solver whose convergence test
// needs a global residual every sweep — the classic HPC inner loop that
// makes all-reduce latency matter. The global residual is combined with
// Theorem 4.1's optimal combining-broadcast schedule, executed as real
// concurrent message-passing code on the goroutine runtime: one goroutine
// per processor, payload-carrying messages, virtual LogP time.
//
//	go run ./examples/allreduce-stencil
package main

import (
	"fmt"
	"log"
	"math"

	logpopt "logpopt"
)

const (
	latency = 3  // postal L
	horizon = 7  // T: all-reduce completes in T steps over P = f_T procs
	cells   = 32 // grid cells per processor
	sweeps  = 20
)

// procState is each processor's private solver state.
type procState struct {
	u, next  []float64
	residual float64 // local residual of the last sweep
	value    float64 // current combining value
	step     int     // step within the current all-reduce phase
	history  []float64
}

func main() {
	seq := logpopt.NewSeq(latency)
	p := int(seq.F(horizon)) // 9 processors for L=3, T=7
	m := logpopt.Postal(p, latency)
	fmt.Printf("machine: %v; all-reduce completes in T=%d steps (optimal)\n", m, horizon)

	// The Theorem 4.1 offsets: at phase-step j, processor i sends its value
	// to i + f_{j+L-1} (mod P).
	offsets := make([]int, horizon-latency+1)
	for j := range offsets {
		offsets[j] = int(seq.F(j+latency-1)) % p
	}

	phase := int64(horizon + 1) // virtual steps per all-reduce phase
	handlers := make([]logpopt.Handler, p)
	for i := 0; i < p; i++ {
		st := &procState{u: make([]float64, cells), next: make([]float64, cells)}
		for c := range st.u {
			st.u[c] = float64((i*cells+c)%17) / 17.0 // deterministic initial values
		}
		handlers[i] = func(pr *logpopt.Proc, now int64) {
			if pr.State == nil {
				pr.State = st
			}
			j := int(now % phase)
			if j == 0 {
				// New sweep: local Jacobi relaxation, then start the
				// all-reduce with the local residual.
				st.residual = 0
				st.next[0], st.next[cells-1] = st.u[0], st.u[cells-1] // fixed boundaries
				for c := 1; c < cells-1; c++ {
					st.next[c] = 0.5 * (st.u[c-1] + st.u[c+1])
					d := st.next[c] - st.u[c]
					st.residual += d * d
				}
				st.u, st.next = st.next, st.u
				st.value = st.residual
				st.step = 0
			}
			// Combine arrivals (values sent L steps ago).
			for _, msg := range pr.Received() {
				st.value += msg.Payload.(float64)
			}
			// Send while inside the sending window of the phase.
			if st.step <= horizon-latency {
				to := (pr.ID + offsets[st.step]) % p
				if err := pr.Send(now, to, int(now), st.value); err != nil {
					log.Fatal(err)
				}
			}
			if j == horizon { // phase complete: every proc has the global sum
				st.history = append(st.history, st.value)
			}
			st.step++
		}
	}

	rt, err := logpopt.NewRuntime(m, logpopt.RTStrict, handlers)
	if err != nil {
		log.Fatal(err)
	}
	rt.Run(phase * sweeps)
	if vs := rt.Violations(); len(vs) != 0 {
		log.Fatalf("runtime violations: %v", vs)
	}

	// Every processor must hold the identical global residual per sweep.
	ref := rt.Proc(0).State.(*procState).history
	for i := 1; i < p; i++ {
		h := rt.Proc(i).State.(*procState).history
		for s := range ref {
			if math.Abs(h[s]-ref[s]) > 1e-12 {
				log.Fatalf("sweep %d: proc %d residual %g != proc 0's %g", s, i, h[s], ref[s])
			}
		}
	}
	fmt.Printf("ran %d sweeps on %d goroutine-processors; residual agreed on all processors every sweep\n",
		len(ref), p)
	fmt.Println("global residual trajectory (should decay):")
	for s, r := range ref {
		if s%4 == 0 || s == len(ref)-1 {
			fmt.Printf("  sweep %2d: %.6f\n", s, math.Sqrt(r))
		}
	}
	fmt.Printf("\neach sweep costs %d virtual cycles of communication — the optimal\n", horizon)
	fmt.Printf("all-reduce time for %d processors at L=%d (Theorem 4.1); a reduce-then-\n", p, latency)
	fmt.Printf("broadcast implementation would cost %d.\n",
		logpopt.ReduceThenBroadcastTime(m, p))
}
