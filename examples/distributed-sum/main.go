// distributed-sum: execute an optimal LogP summation plan (Section 5 of the
// paper) as real concurrent message-passing code. Each processor goroutine
// folds its local operands one per virtual cycle, folds partial sums the
// moment they arrive, and transmits its own partial sum at exactly the
// plan's send time; the root holds the total at the optimal deadline.
//
//	go run ./examples/distributed-sum
package main

import (
	"fmt"
	"log"

	logpopt "logpopt"
)

func main() {
	m := logpopt.ProfilePaperFig6 // P=8, L=5, o=2, g=4 — Figure 6's machine
	const deadline = 40

	pl, err := logpopt.BuildSummation(m, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %v\n", m)
	fmt.Printf("optimal plan: %d operands in %d cycles on %d processors\n",
		pl.N, pl.T, pl.Tree.P())

	// Distribute operands per the plan's in-order numbering (this is what
	// makes the result exact even for non-commutative operations).
	order := pl.OperandOrder()
	operands := make([]int64, pl.N)
	var want int64
	for i := range operands {
		operands[i] = int64(3*i + 1)
		want += operands[i]
	}

	// Per-processor handler: a tiny interpreter over the plan's fold ops.
	type state struct {
		acc     int64
		locals  []int64 // local operands in fold order
		nextLoc int
		opIdx   int
		sent    bool
	}
	handlers := make([]logpopt.Handler, m.P)
	for ni := 0; ni < pl.Tree.P(); ni++ {
		st := &state{}
		for _, ix := range order[ni] {
			st.locals = append(st.locals, operands[ix])
		}
		st.acc = st.locals[0]
		st.nextLoc = 1
		node := ni
		handlers[ni] = func(pr *logpopt.Proc, now int64) {
			pr.State = st
			// Fold arrivals: the runtime delivers a message at its arrival;
			// the plan folds it o+1 cycles later, but the VALUE is fixed at
			// arrival, so folding now is numerically identical.
			for _, msg := range pr.Received() {
				st.acc += msg.Payload.(int64)
			}
			// Local folds scheduled for this cycle.
			ops := pl.Ops[node]
			for st.opIdx < len(ops) && ops[st.opIdx].At <= now {
				if ops[st.opIdx].Kind == logpopt.SummationOpLocal {
					st.acc += st.locals[st.nextLoc]
					st.nextLoc++
				}
				st.opIdx++
			}
			// Transmit the partial sum at the plan's send time.
			if !st.sent && pl.Tree.Nodes[node].Parent >= 0 && now == pl.SendAt[node] {
				if err := pr.Send(now, pl.Tree.Nodes[node].Parent, node, st.acc); err != nil {
					log.Fatal(err)
				}
				st.sent = true
			}
		}
	}

	rt, err := logpopt.NewRuntime(m, logpopt.RTStrict, handlers)
	if err != nil {
		log.Fatal(err)
	}
	rt.Run(deadline + int64(m.L) + 2*int64(m.O) + 2)
	if vs := rt.Violations(); len(vs) != 0 {
		log.Fatalf("runtime violations: %v", vs)
	}
	got := rt.Proc(0).State.(*state).acc
	status := "ok"
	if got != want {
		status = "MISMATCH"
	}
	fmt.Printf("goroutine execution: sum = %d, sequential reference = %d (%s)\n", got, want, status)
	fmt.Printf("\nthe communication pattern is the time reversal of an optimal broadcast\n")
	fmt.Printf("on the (L+1, o, g) machine; one processor alone would need %d cycles,\n", pl.N-1)
	fmt.Printf("the plan needs %d — a %.1fx speedup on %d processors.\n",
		pl.T, float64(pl.N-1)/float64(pl.T), pl.Tree.P())
}
