// mpi-collectives: size the paper's optimal collectives against the tree
// shapes traditional message-passing libraries use, across machines with
// very different LogP parameters — the design study that motivated the
// LogP papers and later informed MPI collective implementations.
//
// For each machine the program reports broadcast (optimal vs binomial vs
// binary vs flat), a 16-item pipelined broadcast (optimal vs naive), and
// all-reduce (Theorem 4.1 combining vs reduce-then-broadcast).
//
//	go run ./examples/mpi-collectives
package main

import (
	"fmt"

	logpopt "logpopt"
)

func main() {
	machines := []struct {
		name string
		m    logpopt.Machine
	}{
		{"CM-5-like MPP        ", logpopt.ProfileCM5},
		{"low-latency MPP      ", logpopt.ProfileLowLatency},
		{"ethernet cluster     ", logpopt.ProfileEthernetCluster.WithP(64)},
		{"postal idealization  ", logpopt.Postal(64, 3)},
	}

	fmt.Println("single-item broadcast (cycles):")
	fmt.Printf("  %-22s %8s %9s %7s %6s\n", "machine", "optimal", "binomial", "binary", "flat")
	for _, mc := range machines {
		m := mc.m
		fmt.Printf("  %-22s %8d %9d %7d %6d\n", mc.name,
			logpopt.BroadcastTime(m, m.P),
			logpopt.BaselineTreeTime(logpopt.BinomialTree(m, m.P)),
			logpopt.BaselineTreeTime(logpopt.BinaryTree(m, m.P)),
			logpopt.BaselineTreeTime(logpopt.FlatTree(m, m.P)))
	}

	// k-item broadcast: the postal-model machinery of Section 3. Pick
	// P-1 = P(t) so the exact optimum applies (here L=3, t=11: P-1=41).
	const l, t, k = 3, 11, 16
	seq := logpopt.NewSeq(l)
	p := int(seq.F(t)) + 1
	bounds := logpopt.KItemBoundsFor(l, p, k)
	_, opt, err := logpopt.KItemOptimal(l, t, k)
	if err != nil {
		panic(err)
	}
	_, naive, err := logpopt.SequentialPipelined(l, p, k)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d-item broadcast, postal L=%d, P=%d:\n", k, l, p)
	fmt.Printf("  lower bound (Thm 3.1)      %4d\n", bounds.Lower)
	fmt.Printf("  optimal (block-cyclic)     %4d  <- single-sending optimum\n", opt.LastRecv())
	fmt.Printf("  naive pipelined trees      %4d  (%.1fx slower)\n",
		naive, float64(naive)/float64(opt.LastRecv()))

	// All-reduce: Theorem 4.1 vs reduce+broadcast, postal model.
	fmt.Println("\nall-reduce (postal):")
	fmt.Printf("  %-14s %6s %10s %13s\n", "L", "P=f_T", "combining", "reduce+bcast")
	for _, lv := range []int{2, 3, 5} {
		sq := logpopt.NewSeq(lv)
		T := lv + 6
		pp := int(sq.F(T))
		m := logpopt.Postal(pp, int64(lv))
		fmt.Printf("  L=%-12d %6d %10d %13d\n", lv, pp, T, logpopt.ReduceThenBroadcastTime(m, pp))
	}
	fmt.Println("\ncombining broadcast is exactly as fast as all-to-one reduction (Section 4.2).")
}
