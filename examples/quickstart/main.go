// Quickstart: build the optimal LogP broadcast for a small machine, verify
// it against the model's rules, visualize it, and compare it with the
// binomial tree a traditional message-passing library would use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	logpopt "logpopt"
)

func main() {
	// Figure 1's machine: 8 processors, L=6, o=2, g=4.
	m := logpopt.ProfilePaperFig1
	fmt.Printf("machine: %v\n", m)

	// The optimal broadcast time and tree (Section 2 of the paper).
	fmt.Printf("optimal broadcast time B(P) = %d cycles\n", logpopt.BroadcastTime(m, m.P))
	tree := logpopt.OptimalBroadcastTree(m, m.P)
	fmt.Println("\noptimal broadcast tree (node @ time the datum arrives):")
	fmt.Print(tree.String())

	// Expand the tree into a concrete schedule and check it against an
	// independent validator (latency, gap, overhead, capacity, coverage).
	s := logpopt.BroadcastSchedule(m, 0)
	if vs := logpopt.ValidateBroadcastSchedule(s, logpopt.BroadcastOrigins(0)); len(vs) != 0 {
		log.Fatalf("schedule invalid: %v", vs[0])
	}
	fmt.Println("\nschedule validated; activity chart:")
	fmt.Print(logpopt.Gantt(s))

	// Replay the schedule on the discrete-event simulator.
	_, rep := logpopt.SimRun(s, logpopt.SimStrict, logpopt.BroadcastOrigins(0))
	fmt.Printf("\nsimulated finish: %d cycles (violations: %d)\n", rep.Finish, len(rep.Violations))

	// How much does optimality buy over the classical binomial tree?
	bin := logpopt.BaselineTreeTime(logpopt.BinomialTree(m, m.P))
	fmt.Printf("binomial tree would take %d cycles (%.0f%% slower)\n",
		bin, 100*float64(bin-rep.Finish)/float64(rep.Finish))
}
