// streaming-pipeline: continuous broadcast of a live item stream. A source
// processor produces one item per time step (think market ticks or sensor
// frames) and every other processor must see every item with bounded delay.
// Section 3's block-cyclic schedule achieves the optimal worst-case delay
// L + B(P-1) with zero buffering; this program builds the schedule, replays
// it on the goroutine runtime as concurrent message-passing code, and
// measures every item's actual delay.
//
//	go run ./examples/streaming-pipeline
package main

import (
	"fmt"
	"log"

	logpopt "logpopt"
)

const (
	latency = 3
	horizon = 9 // t: P-1 = P(t) = 19 subscribers
	items   = 40
)

func main() {
	inst, sched, err := logpopt.ContinuousSolveAndSchedule(latency, horizon, items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream fan-out: 1 source -> %d subscribers, postal L=%d\n", inst.P, latency)
	fmt.Printf("per-item delay bound: L + B(P-1) = %d steps (optimal; Theorem 3.3)\n", inst.Delay())

	// Validate against the model's rules and the delivery requirements.
	if vs := logpopt.ValidateBroadcastSchedule(sched, logpopt.ContinuousOrigins(items)); len(vs) != 0 {
		log.Fatalf("schedule invalid: %v", vs[0])
	}

	// Run it as real concurrent code: one goroutine per processor.
	m := sched.M
	rt, err := logpopt.NewRuntime(m, logpopt.RTStrict, logpopt.ScheduleHandlers(sched))
	if err != nil {
		log.Fatal(err)
	}
	rt.Run(logpopt.RuntimeHorizon(sched))
	if vs := rt.Violations(); len(vs) != 0 {
		log.Fatalf("runtime violations: %v", vs)
	}

	// Measure the actual delay of every item from the runtime's trace.
	worst, err := logpopt.VerifyContinuousDelay(rt.Trace(), items, inst.Delay())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d items through %d goroutines: worst observed delay %d steps (bound %d)\n",
		items, m.P, worst, inst.Delay())

	// Show the steady-state structure: the per-block cyclic words.
	fmt.Println("\nblock-cyclic structure (per internal tree node):")
	for _, b := range inst.Blocks {
		fmt.Printf("  block of %d processors (node delay %d), word %v, receive-only delay %d\n",
			b.Size, b.Delay, b.Word, inst.RecvOnlyDelay)
	}
	fmt.Println("\nthroughput: one item enters and one item completes per step — no")
	fmt.Println("processor ever sends or receives twice in a step, and none buffers.")
}
