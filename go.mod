module logpopt

go 1.22
