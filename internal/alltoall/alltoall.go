// Package alltoall implements Section 4.1 of the paper: optimal all-to-all
// broadcast, its k-item extension, and all-to-all personalized communication.
//
// Each of the P processors holds a data item that every processor must learn.
// Since each processor must receive P-1 items and the first cannot arrive
// before L+2o, any schedule needs at least L + 2o + (P-2)g time. The optimal
// schedule has processor i send its item to processors i+1, ..., i+P-1
// (mod P), in that order, at times 0, g, ..., (P-2)g; every processor then
// receives items at exactly L+2o, L+2o+g, ..., L+2o+(P-2)g. The k-item
// extension repeats the round k times, achieving L + 2o + (k(P-1)-1)g.
//
// In the postal model (o = 0) the schedule meets the bound exactly. For
// machines with o > 0, a processor that is still sending when messages start
// arriving may find an arrival landing inside a send overhead; following the
// LogP convention that an arrived message waits at the receiver until the
// processor can engage it, receptions are placed greedily at the earliest
// legal instant. When the arrival phase is compatible (e.g. whenever
// (L+o) mod g lies in [o, g-o]) the bound is met exactly; otherwise the
// schedule finishes within one gap of it (reported by the bench harness).
package alltoall

import (
	"fmt"
	"sort"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// LowerBound returns the all-to-all broadcast lower bound
// L + 2o + (k(P-1)-1)g from Section 4.1. With a single processor (or k=0)
// nothing moves, so the bound is 0, not the negative value the formula
// would yield.
func LowerBound(m logp.Machine, k int) logp.Time {
	if m.P < 2 || k < 1 {
		return 0
	}
	return m.L + 2*m.O + logp.Time(int64(k)*int64(m.P-1)-1)*m.G
}

// Item returns the item id used for source processor src's j-th item
// (0 <= j < k).
func Item(m logp.Machine, src, j int) int { return j*m.P + src }

// Origins returns the origin map for a k-item all-to-all on m: item
// Item(i, j) starts at processor i at time 0.
func Origins(m logp.Machine, k int) map[int]schedule.Origin {
	og := make(map[int]schedule.Origin, m.P*k)
	for i := 0; i < m.P; i++ {
		for j := 0; j < k; j++ {
			og[Item(m, i, j)] = schedule.Origin{Proc: i, Time: 0}
		}
	}
	return og
}

// arrival is a message awaiting reception placement at one processor.
type arrival struct {
	at   logp.Time
	item int
	from int
}

// placeRecvs appends recv events for the given arrivals at processor p,
// greedily at the earliest time that respects the receive gap and does not
// overlap the processor's send overheads (sendBusy must be sorted start
// times of o-length busy intervals).
func placeRecvs(s *schedule.Schedule, p int, arrivals []arrival, sendBusy []logp.Time) {
	m := s.M
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].item < arrivals[j].item
	})
	lastStart := logp.Time(-1) << 40
	busyEnd := logp.Time(-1) << 40
	for _, a := range arrivals {
		t := a.at
		for {
			if t < lastStart+m.G {
				t = lastStart + m.G
			}
			if t < busyEnd {
				t = busyEnd
			}
			// Skip send overheads [b, b+o) that overlap [t, t+o).
			moved := false
			if m.O > 0 {
				i := sort.Search(len(sendBusy), func(i int) bool { return sendBusy[i]+m.O > t })
				if i < len(sendBusy) && sendBusy[i] < t+m.O {
					t = sendBusy[i] + m.O
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		s.Recv(p, t, a.item, a.from)
		lastStart = t
		busyEnd = t + m.O
	}
}

// Schedule returns the k-item all-to-all broadcast schedule: processor i's
// r-th transmission (r = 0..k(P-1)-1) goes to processor i+1+(r mod (P-1))
// and carries its floor(r/(P-1))-th item, at time r*stride where stride is
// max(g, o). Receptions are placed greedily (see the package comment); in
// the postal model the schedule is exactly the paper's optimal one.
func Schedule(m logp.Machine, k int) *schedule.Schedule {
	s := &schedule.Schedule{M: m}
	if m.P < 2 || k < 1 {
		return s
	}
	str := core.SendStride(m)
	arrivals := make([][]arrival, m.P)
	sendBusy := make([][]logp.Time, m.P)
	for i := 0; i < m.P; i++ {
		r := 0
		for j := 0; j < k; j++ {
			for d := 1; d < m.P; d++ {
				at := logp.Time(r) * str
				to := (i + d) % m.P
				item := Item(m, i, j)
				s.Send(i, at, item, to)
				sendBusy[i] = append(sendBusy[i], at)
				arrivals[to] = append(arrivals[to], arrival{at: at + m.O + m.L, item: item, from: i})
				r++
			}
		}
	}
	for p := 0; p < m.P; p++ {
		placeRecvs(s, p, arrivals[p], sendBusy[p])
	}
	return s
}

// Personalized returns the all-to-all personalized communication schedule:
// processor i holds a distinct item for every other processor j (item id
// i*P+j) and sends it only to j. The communication pattern and completion
// time are identical to single-item all-to-all broadcast (Section 4.1's
// closing remark).
func Personalized(m logp.Machine) *schedule.Schedule {
	s := &schedule.Schedule{M: m}
	if m.P < 2 {
		return s
	}
	str := core.SendStride(m)
	arrivals := make([][]arrival, m.P)
	sendBusy := make([][]logp.Time, m.P)
	for i := 0; i < m.P; i++ {
		for d := 1; d < m.P; d++ {
			at := logp.Time(d-1) * str
			to := (i + d) % m.P
			item := i*m.P + to
			s.Send(i, at, item, to)
			sendBusy[i] = append(sendBusy[i], at)
			arrivals[to] = append(arrivals[to], arrival{at: at + m.O + m.L, item: item, from: i})
		}
	}
	for p := 0; p < m.P; p++ {
		placeRecvs(s, p, arrivals[p], sendBusy[p])
	}
	return s
}

// PersonalizedDelivered checks that every processor received exactly its
// P-1 personalized items and returns the completion time.
func PersonalizedDelivered(s *schedule.Schedule) (logp.Time, error) {
	m := s.M
	got := make(map[int]bool)
	var finish logp.Time
	for _, e := range s.Events {
		if e.Op != schedule.OpRecv {
			continue
		}
		src, dst := e.Item/m.P, e.Item%m.P
		if dst != e.Proc {
			return 0, fmt.Errorf("alltoall: proc %d received item destined for %d", e.Proc, dst)
		}
		if src != e.Peer {
			return 0, fmt.Errorf("alltoall: item %d arrived from %d, want source %d", e.Item, e.Peer, src)
		}
		if got[e.Item] {
			return 0, fmt.Errorf("alltoall: item %d delivered twice", e.Item)
		}
		got[e.Item] = true
		if t := e.Time + m.O; t > finish {
			finish = t
		}
	}
	want := m.P * (m.P - 1)
	if len(got) != want {
		return 0, fmt.Errorf("alltoall: %d personalized deliveries, want %d", len(got), want)
	}
	return finish, nil
}

// ScheduleWithPermutations generalizes the optimal schedule: perms[i][r]
// gives the destination of processor i's r-th transmission. The paper notes
// that any family of permutations of {0..P-1}\{i} in which no processor is
// the target of two messages in the same round is optimal. The function
// validates that property and returns an error otherwise.
func ScheduleWithPermutations(m logp.Machine, perms [][]int) (*schedule.Schedule, error) {
	if len(perms) != m.P {
		return nil, fmt.Errorf("alltoall: %d permutations for P=%d", len(perms), m.P)
	}
	for i, pm := range perms {
		if len(pm) != m.P-1 {
			return nil, fmt.Errorf("alltoall: permutation %d has length %d, want %d", i, len(pm), m.P-1)
		}
		seen := make(map[int]bool, m.P)
		for _, d := range pm {
			if d == i || d < 0 || d >= m.P {
				return nil, fmt.Errorf("alltoall: permutation %d targets %d", i, d)
			}
			if seen[d] {
				return nil, fmt.Errorf("alltoall: permutation %d targets %d twice", i, d)
			}
			seen[d] = true
		}
	}
	for r := 0; r < m.P-1; r++ {
		seen := make(map[int]bool, m.P)
		for i := range perms {
			d := perms[i][r]
			if seen[d] {
				return nil, fmt.Errorf("alltoall: round %d targets processor %d twice", r, d)
			}
			seen[d] = true
		}
	}
	str := core.SendStride(m)
	s := &schedule.Schedule{M: m}
	arrivals := make([][]arrival, m.P)
	sendBusy := make([][]logp.Time, m.P)
	for i, pm := range perms {
		for r, to := range pm {
			at := logp.Time(r) * str
			s.Send(i, at, Item(m, i, 0), to)
			sendBusy[i] = append(sendBusy[i], at)
			arrivals[to] = append(arrivals[to], arrival{at: at + m.O + m.L, item: Item(m, i, 0), from: i})
		}
	}
	for p := 0; p < m.P; p++ {
		placeRecvs(s, p, arrivals[p], sendBusy[p])
	}
	return s, nil
}
