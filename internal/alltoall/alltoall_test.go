package alltoall

import (
	"testing"
	"testing/quick"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

func TestOptimalPostal(t *testing.T) {
	for p := 2; p <= 30; p++ {
		for l := logp.Time(1); l <= 5; l++ {
			m := logp.Postal(p, l)
			s := Schedule(m, 1)
			// In the postal model receptions are exactly at arrival, so the
			// strict validator applies.
			if vs := schedule.ValidateBroadcast(s, Origins(m, 1)); len(vs) != 0 {
				t.Fatalf("P=%d L=%d: %v", p, l, vs[0])
			}
			if got, want := s.LastRecv(), LowerBound(m, 1); got != want {
				t.Fatalf("P=%d L=%d: completes at %d, want %d", p, l, got, want)
			}
		}
	}
}

func TestFigure1Machine(t *testing.T) {
	// L=6, o=2, g=4: the arrival phase (L+o) mod g = 0 collides with the
	// send overhead, so greedy reception defers each reception by o; the
	// schedule completes at the bound + o and is a valid deferred-reception
	// LogP schedule.
	m := logp.MustNew(8, 6, 2, 4)
	s := Schedule(m, 1)
	vs := schedule.ValidateDeferred(s)
	vs = append(vs, schedule.CheckAvailability(s, Origins(m, 1))...)
	vs = append(vs, schedule.CheckBroadcastComplete(s, Origins(m, 1))...)
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if got, want := s.LastRecv(), LowerBound(m, 1)+m.O; got != want {
		t.Fatalf("completes at %d, want %d", got, want)
	}
}

func TestPhaseAlignedGeneralMachine(t *testing.T) {
	// L=6, o=2, g=5: (L+o) mod g = 3 in [o, g-o] = [2, 3]: receptions fit
	// at arrival and the paper's bound is met exactly under the strict
	// validator.
	m := logp.MustNew(6, 6, 2, 5)
	s := Schedule(m, 1)
	if vs := schedule.ValidateBroadcast(s, Origins(m, 1)); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if got, want := s.LastRecv(), LowerBound(m, 1); got != want {
		t.Fatalf("completes at %d, want %d", got, want)
	}
}

func TestKItem(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		m := logp.Postal(9, 3)
		s := Schedule(m, k)
		if vs := schedule.ValidateBroadcast(s, Origins(m, k)); len(vs) != 0 {
			t.Fatalf("k=%d: %v", k, vs[0])
		}
		if got, want := s.LastRecv(), LowerBound(m, k); got != want {
			t.Fatalf("k=%d: completes at %d, want %d", k, got, want)
		}
	}
}

func TestAlwaysValidProperty(t *testing.T) {
	// For any machine the schedule must be a valid deferred-reception LogP
	// schedule delivering everything, never beating the lower bound.
	f := func(l, o, g, p, k uint8) bool {
		m := logp.Machine{
			P: int(p%12) + 2,
			L: logp.Time(l%8) + 1,
			O: logp.Time(o % 4),
			G: logp.Time(g%4) + 1,
		}
		kk := int(k%3) + 1
		s := Schedule(m, kk)
		vs := schedule.ValidateDeferred(s)
		vs = append(vs, schedule.CheckAvailability(s, Origins(m, kk))...)
		vs = append(vs, schedule.CheckBroadcastComplete(s, Origins(m, kk))...)
		if len(vs) != 0 {
			return false
		}
		return s.LastRecv() >= LowerBound(m, kk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedExecution(t *testing.T) {
	m := logp.Postal(7, 2)
	s := Schedule(m, 1)
	_, rep := sim.Run(s, sim.Strict, Origins(m, 1))
	if len(rep.Violations) != 0 {
		t.Fatalf("sim violations: %v", rep.Violations)
	}
	if want := LowerBound(m, 1); rep.Finish != want {
		t.Fatalf("sim finish %d, want %d", rep.Finish, want)
	}
}

func TestPersonalized(t *testing.T) {
	for p := 2; p <= 20; p++ {
		m := logp.Postal(p, 3)
		s := Personalized(m)
		if vs := schedule.Validate(s); len(vs) != 0 {
			t.Fatalf("P=%d: %v", p, vs[0])
		}
		finish, err := PersonalizedDelivered(s)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if want := LowerBound(m, 1); finish != want {
			t.Fatalf("P=%d: finish %d, want %d", p, finish, want)
		}
	}
}

func TestPersonalizedGeneralMachine(t *testing.T) {
	m := logp.MustNew(6, 6, 2, 4)
	s := Personalized(m)
	if vs := schedule.ValidateDeferred(s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if _, err := PersonalizedDelivered(s); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationFamily(t *testing.T) {
	m := logp.Postal(5, 2)
	// A legal non-default family: round r, processor i targets i-1-r mod P
	// (reverse cyclic order). No two processors share a target per round.
	perms := make([][]int, m.P)
	for i := range perms {
		perms[i] = make([]int, m.P-1)
		for r := 0; r < m.P-1; r++ {
			perms[i][r] = ((i-1-r)%m.P + m.P) % m.P
		}
	}
	s, err := ScheduleWithPermutations(m, perms)
	if err != nil {
		t.Fatal(err)
	}
	og := make(map[int]schedule.Origin)
	for i := 0; i < m.P; i++ {
		og[Item(m, i, 0)] = schedule.Origin{Proc: i}
	}
	if vs := schedule.ValidateBroadcast(s, og); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if got, want := s.LastRecv(), LowerBound(m, 1); got != want {
		t.Fatalf("completes at %d, want %d", got, want)
	}
}

func TestPermutationFamilyRejections(t *testing.T) {
	m := logp.Postal(4, 2)
	mk := func() [][]int {
		perms := make([][]int, m.P)
		for i := range perms {
			perms[i] = make([]int, m.P-1)
			for r := 0; r < m.P-1; r++ {
				perms[i][r] = (i + r + 1) % m.P
			}
		}
		return perms
	}
	// Wrong count.
	if _, err := ScheduleWithPermutations(m, mk()[:2]); err == nil {
		t.Fatal("short family accepted")
	}
	// Self-target.
	bad := mk()
	bad[0][0] = 0
	if _, err := ScheduleWithPermutations(m, bad); err == nil {
		t.Fatal("self-target accepted")
	}
	// Duplicate target within a permutation.
	bad2 := mk()
	bad2[0][1] = bad2[0][0]
	if _, err := ScheduleWithPermutations(m, bad2); err == nil {
		t.Fatal("duplicate target accepted")
	}
	// Round collision: two processors target the same proc in round 0.
	bad3 := mk()
	bad3[0][0], bad3[0][2] = bad3[0][2], bad3[0][0]
	if _, err := ScheduleWithPermutations(m, bad3); err == nil {
		t.Fatal("round collision accepted")
	}
}

func TestDegenerate(t *testing.T) {
	m := logp.Postal(1, 3)
	if s := Schedule(m, 1); len(s.Events) != 0 {
		t.Fatal("P=1 all-to-all should be empty")
	}
	if s := Personalized(m); len(s.Events) != 0 {
		t.Fatal("P=1 personalized should be empty")
	}
	m2 := logp.Postal(4, 3)
	if s := Schedule(m2, 0); len(s.Events) != 0 {
		t.Fatal("k=0 all-to-all should be empty")
	}
}

func TestScatterOptimal(t *testing.T) {
	for _, m := range []logp.Machine{logp.Postal(9, 3), logp.MustNew(8, 6, 2, 4), logp.MustNew(2, 3, 1, 2)} {
		s := Scatter(m)
		og := make(map[int]schedule.Origin)
		for j := 1; j < m.P; j++ {
			og[ScatterItem(m, j)] = schedule.Origin{Proc: 0}
		}
		if vs := schedule.Validate(s); len(vs) != 0 {
			t.Fatalf("%v: %v", m, vs[0])
		}
		if vs := schedule.CheckAvailability(s, og); len(vs) != 0 {
			t.Fatalf("%v: %v", m, vs[0])
		}
		// Each item lands exactly at its destination.
		for _, e := range s.Events {
			if e.Op == schedule.OpRecv && e.Proc != e.Item {
				t.Fatalf("%v: item %d landed at %d", m, e.Item, e.Proc)
			}
		}
		if got, want := s.LastRecv(), ScatterLowerBound(m); got != want {
			t.Fatalf("%v: scatter at %d, want %d", m, got, want)
		}
	}
}

func TestGatherOptimal(t *testing.T) {
	for _, m := range []logp.Machine{logp.Postal(9, 3), logp.MustNew(8, 6, 2, 4)} {
		s := Gather(m)
		if vs := schedule.Validate(s); len(vs) != 0 {
			t.Fatalf("%v: %v", m, vs[0])
		}
		finish, err := GatherComplete(s)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if want := ScatterLowerBound(m); finish != want {
			t.Fatalf("%v: gather at %d, want %d", m, finish, want)
		}
	}
}

func TestScatterGatherDegenerate(t *testing.T) {
	m := logp.Postal(1, 2)
	if len(Scatter(m).Events) != 0 || len(Gather(m).Events) != 0 {
		t.Fatal("P=1 scatter/gather should be empty")
	}
}
