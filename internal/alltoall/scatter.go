package alltoall

import (
	"fmt"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// This file rounds out the personalized collectives: scatter (one-to-all
// personalized) and gather (all-to-one personalized). Neither is treated
// explicitly in the paper, but both follow from its §4.1 reasoning: when
// every message carries *distinct* data, relaying cannot reduce the source's
// (or sink's) port work, so the flat schedule is optimal.
//
//   - Scatter: the source must transmit P-1 distinct messages, which takes
//     (P-2)g + o after the first send begins, and the last one lands
//     L + 2o later: total L + 2o + (P-2)g — the same bound as all-to-all.
//   - Gather: by time reversal, the sink must receive P-1 messages at least
//     g apart, giving the same L + 2o + (P-2)g.

// ScatterItem returns the item id for the scatter message destined to dst.
func ScatterItem(m logp.Machine, dst int) int { return dst }

// Scatter returns the optimal one-to-all personalized schedule: processor 0
// sends item j to processor j at time (j-1)*stride, j = 1..P-1.
func Scatter(m logp.Machine) *schedule.Schedule {
	s := &schedule.Schedule{M: m}
	if m.P < 2 {
		return s
	}
	str := core.SendStride(m)
	for j := 1; j < m.P; j++ {
		at := logp.Time(j-1) * str
		s.Send(0, at, ScatterItem(m, j), j)
		s.Recv(j, at+m.O+m.L, ScatterItem(m, j), 0)
	}
	return s
}

// ScatterLowerBound returns L + 2o + (P-2)g: the source alone needs
// (P-2)g + o of port time and the last message needs L + o more to land.
// With a single processor nothing moves and the bound is 0.
func ScatterLowerBound(m logp.Machine) logp.Time {
	if m.P < 2 {
		return 0
	}
	return m.L + 2*m.O + logp.Time(m.P-2)*m.G
}

// Gather returns the optimal all-to-one personalized schedule (the time
// reversal of Scatter): processor j sends its item to processor 0 so that
// arrivals land exactly g apart, the last at the lower bound.
func Gather(m logp.Machine) *schedule.Schedule {
	s := &schedule.Schedule{M: m}
	if m.P < 2 {
		return s
	}
	str := core.SendStride(m)
	for j := 1; j < m.P; j++ {
		at := logp.Time(j-1) * str
		s.Send(j, at, ScatterItem(m, j), 0)
		s.Recv(0, at+m.O+m.L, ScatterItem(m, j), j)
	}
	return s
}

// GatherComplete verifies that processor 0 received all P-1 distinct items
// and returns the completion time.
func GatherComplete(s *schedule.Schedule) (logp.Time, error) {
	got := make(map[int]bool)
	var finish logp.Time
	for _, e := range s.Events {
		if e.Op != schedule.OpRecv {
			continue
		}
		if e.Proc != 0 {
			return 0, fmt.Errorf("alltoall: gather delivered item %d to proc %d", e.Item, e.Proc)
		}
		if got[e.Item] {
			return 0, fmt.Errorf("alltoall: gather item %d delivered twice", e.Item)
		}
		got[e.Item] = true
		if t := e.Time + s.M.O; t > finish {
			finish = t
		}
	}
	if len(got) != s.M.P-1 {
		return 0, fmt.Errorf("alltoall: gather delivered %d items, want %d", len(got), s.M.P-1)
	}
	return finish, nil
}
