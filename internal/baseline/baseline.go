// Package baseline implements the broadcast and reduction algorithms the
// paper's optimal schedules are measured against: the linear chain, the flat
// (source-sends-all) tree, the balanced binary tree, and the binomial tree
// that message-passing libraries traditionally use, plus a naive pipelined
// k-item broadcast and reduce-then-broadcast combining. Comparing these
// against internal/core, internal/kitem and internal/combine reproduces the
// "who wins and by how much" shape of the paper's results (the universal
// optimal tree degenerates to the binomial tree exactly when g = L + 2o, and
// beats it whenever g < L + 2o).
package baseline

import (
	"fmt"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// stride returns the per-processor send spacing max(g, o).
func stride(m logp.Machine) logp.Time { return core.SendStride(m) }

// LinearTree returns the chain broadcast tree: 0 -> 1 -> ... -> P-1.
// Completion: (P-1)(L+2o).
func LinearTree(m logp.Machine, p int) *core.Tree {
	t := &core.Tree{M: m, Nodes: make([]core.Node, p)}
	t.Nodes[0] = core.Node{Label: 0, Parent: -1}
	for i := 1; i < p; i++ {
		t.Nodes[i] = core.Node{Label: logp.Time(i) * m.D(), Parent: i - 1}
		t.Nodes[i-1].Children = []int{i}
	}
	return t
}

// FlatTree returns the tree in which the source sends to every other
// processor directly. Completion: (P-2)*max(g,o) + L + 2o.
func FlatTree(m logp.Machine, p int) *core.Tree {
	t := &core.Tree{M: m, Nodes: make([]core.Node, p)}
	t.Nodes[0] = core.Node{Label: 0, Parent: -1}
	for i := 1; i < p; i++ {
		t.Nodes[i] = core.Node{Label: logp.Time(i-1)*stride(m) + m.D(), Parent: 0}
		t.Nodes[0].Children = append(t.Nodes[0].Children, i)
	}
	return t
}

// BinaryTree returns a balanced binary broadcast tree (heap-shaped): node i
// sends to nodes 2i+1 and 2i+2, the first child at label+0 and the second a
// stride later.
func BinaryTree(m logp.Machine, p int) *core.Tree {
	t := &core.Tree{M: m, Nodes: make([]core.Node, p)}
	t.Nodes[0] = core.Node{Label: 0, Parent: -1}
	for i := 0; i < p; i++ {
		for c := 0; c < 2; c++ {
			ci := 2*i + 1 + c
			if ci >= p {
				break
			}
			t.Nodes[ci] = core.Node{
				Label:  t.Nodes[i].Label + logp.Time(c)*stride(m) + m.D(),
				Parent: i,
			}
			t.Nodes[i].Children = append(t.Nodes[i].Children, ci)
		}
	}
	return t
}

// BinomialTree returns the classical binomial broadcast tree in LogP
// timing: every informed processor keeps sending to new processors, but
// spaced by the full message span L+2o rather than the gap — the
// round-synchronized structure of traditional MPI broadcasts. It coincides
// with the optimal universal tree exactly when g >= L+2o and is strictly
// slower when g < L+2o (the regime the LogP model highlights). Completion:
// about ceil(log2 P)(L+2o).
func BinomialTree(m logp.Machine, p int) *core.Tree {
	// The universal-tree construction with sibling stride L+2o instead of g.
	fake := m
	fake.G = m.D()
	if fake.G < m.G {
		fake.G = m.G
	}
	t := core.OptimalTree(fake, p)
	t.M = m // the schedule still runs on the real machine
	return t
}

// TreeTime returns the completion time of a baseline tree's broadcast.
func TreeTime(t *core.Tree) logp.Time { return t.MaxLabel() }

// Schedule expands a baseline tree for item id item, starting at time 0.
func Schedule(t *core.Tree, item int) (*schedule.Schedule, error) {
	return core.TreeSchedule(t, item, nil, 0)
}

// SequentialPipelined is the naive k-item broadcast baseline: each item is
// broadcast along the optimal single-item tree, but the source can start
// item x only after finishing the root's sends for item x-1, so items start
// r0 = (root degree) steps apart instead of 1. In the postal model its
// completion is (k-1)*r0 + B(P-1) + L, compared with the paper's
// B(P-1) + L + k - 1.
func SequentialPipelined(l logp.Time, p, k int) (*schedule.Schedule, logp.Time, error) {
	if p < 2 || k < 1 {
		return nil, 0, fmt.Errorf("baseline: bad instance P=%d k=%d", p, k)
	}
	m := logp.Postal(p, l)
	inner := logp.Postal(p-1, l)
	tr := core.OptimalTree(inner, p-1)
	r0 := len(tr.Nodes[0].Children) + 1 // root sends, plus the source's own send slot
	s := &schedule.Schedule{M: m}
	procOf := make([]int, p-1)
	for i := range procOf {
		procOf[i] = i + 1 // tree node i -> processor i+1; source is 0
	}
	var finish logp.Time
	for x := 0; x < k; x++ {
		start := logp.Time(x * r0)
		s.Send(0, start, x, 1)
		s.Recv(1, start+l, x, 0)
		sub, err := core.TreeSchedule(tr, x, procOf, start+l)
		if err != nil {
			return nil, 0, err
		}
		s.Events = append(s.Events, sub.Events...)
		if end := sub.LastRecv(); end > finish {
			finish = end
		}
	}
	return s, finish, nil
}

// ReduceThenBroadcastTime returns the completion time of the naive
// combining-broadcast baseline: an optimal all-to-one reduction followed by
// an optimal one-to-all broadcast, i.e. 2 B(P) — compared with the paper's
// Theorem 4.1 time of B(P) (Section 4.2: "optimal to within a factor of 2").
func ReduceThenBroadcastTime(m logp.Machine, p int) logp.Time {
	return 2 * core.B(m, p)
}
