package baseline

import (
	"testing"
	"testing/quick"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

func validateTree(t *testing.T, tr *core.Tree, name string) {
	t.Helper()
	if err := tr.Validate(false); err != nil {
		t.Fatalf("%s tree invalid: %v", name, err)
	}
	s, err := Schedule(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vs := schedule.ValidateBroadcast(s, core.Origins(0)); len(vs) != 0 {
		t.Fatalf("%s schedule: %v", name, vs[0])
	}
	_, rep := sim.Run(s, sim.Strict, core.Origins(0))
	if len(rep.Violations) != 0 {
		t.Fatalf("%s sim: %v", name, rep.Violations[0])
	}
	if rep.Finish != TreeTime(tr) {
		t.Fatalf("%s: sim finish %d, tree time %d", name, rep.Finish, TreeTime(tr))
	}
}

func TestBaselineTreesValidate(t *testing.T) {
	machines := []logp.Machine{
		logp.MustNew(8, 6, 2, 4),
		logp.Postal(16, 3),
		logp.MustNew(20, 10, 1, 2),
	}
	for _, m := range machines {
		for _, p := range []int{2, 3, 7, m.P} {
			mm := m.WithP(p)
			validateTree(t, LinearTree(mm, p), "linear")
			validateTree(t, FlatTree(mm, p), "flat")
			validateTree(t, BinaryTree(mm, p), "binary")
			validateTree(t, BinomialTree(mm, p), "binomial")
		}
	}
}

func TestLinearTime(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	if got, want := TreeTime(LinearTree(m, 8)), logp.Time(7*10); got != want {
		t.Fatalf("linear time %d, want %d", got, want)
	}
}

func TestFlatTime(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	if got, want := TreeTime(FlatTree(m, 8)), logp.Time(6*4+10); got != want {
		t.Fatalf("flat time %d, want %d", got, want)
	}
}

func TestOptimalNeverLoses(t *testing.T) {
	// B(P) <= every baseline's completion time, with strict inequality for
	// the binomial tree whenever g < L+2o and P is large enough for the
	// extra sends to matter.
	f := func(l, o, g, p uint8) bool {
		m := logp.Machine{
			P: int(p%40) + 2,
			L: logp.Time(l%8) + 1,
			O: logp.Time(o % 4),
			G: logp.Time(g%5) + 1,
		}
		opt := core.B(m, m.P)
		for _, tr := range []*core.Tree{
			LinearTree(m, m.P), FlatTree(m, m.P), BinaryTree(m, m.P), BinomialTree(m, m.P),
		} {
			if TreeTime(tr) < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialEqualsOptimalWhenGapIsSpan(t *testing.T) {
	// When g = L + 2o the universal optimal tree IS the binomial tree.
	m := logp.MustNew(32, 4, 1, 6) // L+2o = 6 = g
	if got, want := TreeTime(BinomialTree(m, 32)), core.B(m, 32); got != want {
		t.Fatalf("binomial %d != optimal %d", got, want)
	}
}

func TestBinomialSlowerWhenGapSmall(t *testing.T) {
	m := logp.Postal(64, 4) // g=1 << L
	if TreeTime(BinomialTree(m, 64)) <= core.B(m, 64) {
		t.Fatal("binomial should lose when g < L+2o")
	}
}

func TestSequentialPipelined(t *testing.T) {
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{{3, 10, 8}, {2, 6, 5}, {4, 15, 3}} {
		s, finish, err := SequentialPipelined(c.l, c.p, c.k)
		if err != nil {
			t.Fatal(err)
		}
		og := make(map[int]schedule.Origin, c.k)
		for x := 0; x < c.k; x++ {
			og[x] = schedule.Origin{Proc: 0}
		}
		if vs := schedule.ValidateBroadcast(s, og); len(vs) != 0 {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, vs[0])
		}
		// Slower than the paper's optimum for k > 1 on nontrivial trees.
		seq := core.NewSeq(int(c.l))
		opt := seq.SingleSendingLowerBound(c.p, int64(c.k))
		if int64(finish) < opt {
			t.Fatalf("baseline beats the single-sending bound: %d < %d", finish, opt)
		}
	}
}

func TestSequentialPipelinedRejects(t *testing.T) {
	if _, _, err := SequentialPipelined(3, 1, 2); err == nil {
		t.Fatal("P=1 accepted")
	}
	if _, _, err := SequentialPipelined(3, 5, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestReduceThenBroadcastFactorTwo(t *testing.T) {
	m := logp.Postal(9, 3)
	if got, want := ReduceThenBroadcastTime(m, 9), 2*core.B(m, 9); got != want {
		t.Fatalf("reduce+broadcast %d, want %d", got, want)
	}
}
