package bench

import (
	"strings"
	"testing"
)

func TestFiguresGenerate(t *testing.T) {
	for _, c := range []struct {
		name string
		f    func() (string, error)
		want []string
	}{
		{"F1", Figure1, []string{"B(8) = 24", "P7"}},
		{"F2", Figure2, []string{"P-1=9", "last reception is at 17"}},
		{"F3", Figure3, []string{"P-1=P(11)=41", "source -> block[9]"}},
		{"F4", Figure4, []string{"size-7 block", "P4"}},
		{"F5", Figure5, []string{"finishes at 24"}},
		{"F6", Figure6, []string{"n(t) = 79", "Ss"}},
	} {
		out, err := c.f()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Fatalf("%s output missing %q:\n%s", c.name, w, out)
			}
		}
	}
}

func TestTheorem22TableAllOK(t *testing.T) {
	tb := Theorem22(8, 20)
	assertAllOK(t, tb)
}

func TestKItemTableAllOK(t *testing.T) {
	assertAllOK(t, KItemTable())
}

func TestCombineTableAllOK(t *testing.T) {
	assertAllOK(t, CombineTable(5))
}

func TestSummationTableAllOK(t *testing.T) {
	assertAllOK(t, SummationTable())
}

func TestAllToAllTableValid(t *testing.T) {
	tb := AllToAllTable()
	for _, row := range tb.Rows {
		if row[len(row)-1] == "INVALID" {
			t.Fatalf("invalid all-to-all row: %v", row)
		}
	}
}

func TestContinuousTableSmall(t *testing.T) {
	tb := ContinuousTable(1)
	if len(tb.Rows) != 9 { // L = 2..10
		t.Fatalf("continuous table has %d rows", len(tb.Rows))
	}
	// L=4 row must list 8 as infeasible; L=2 row must have no solved t >= 4.
	for _, row := range tb.Rows {
		if row[0] == "4" && !strings.Contains(row[3], "8") {
			t.Fatalf("L=4 row does not flag t=8 infeasible: %v", row)
		}
	}
}

func TestBaselineTables(t *testing.T) {
	for _, tb := range []*Table{SingleItemTable(), KItemBaselineTable(), ReduceVsCombineTable()} {
		if len(tb.Rows) == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
		if !strings.Contains(tb.String(), "==") {
			t.Fatalf("table %q renders oddly", tb.Title)
		}
	}
}

func TestCondense(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "-"},
		{[]int{4}, "4"},
		{[]int{4, 5, 6}, "4-6"},
		{[]int{4, 6, 7, 9}, "4,6-7,9"},
	}
	for _, c := range cases {
		if got := condense(c.in); got != c.want {
			t.Fatalf("condense(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "x", Header: []string{"a", "bb"}}
	tb.Add(1, "yyy")
	tb.Note("n%d", 1)
	out := tb.String()
	for _, w := range []string{"== x ==", "a  bb", "1  yyy", "note: n1"} {
		if !strings.Contains(out, w) {
			t.Fatalf("rendering missing %q:\n%s", w, out)
		}
	}
}

func assertAllOK(t *testing.T, tb *Table) {
	t.Helper()
	if len(tb.Rows) == 0 {
		t.Fatalf("table %q is empty", tb.Title)
	}
	for _, row := range tb.Rows {
		for _, cell := range row {
			if cell == "FAIL" {
				t.Fatalf("table %q has failing row %v", tb.Title, row)
			}
		}
	}
}

func TestExtensionsTableAllOK(t *testing.T) {
	assertAllOK(t, ExtensionsTable())
}

func TestGeneralPTableShape(t *testing.T) {
	tb := GeneralPTable(30)
	if len(tb.Rows) != 4 {
		t.Fatalf("general-P table has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[0] == "4" && row[3] != "7" {
			t.Fatalf("L=4 unsolved column %q, want just p=7", row[3])
		}
	}
}

func TestTightnessTableAllOK(t *testing.T) {
	tb := TightnessTable()
	for _, row := range tb.Rows {
		last := row[len(row)-1]
		if last != "ok" && last != "budget" {
			t.Fatalf("tightness row failed: %v", row)
		}
	}
}
