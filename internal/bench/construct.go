package bench

import (
	"fmt"
	"reflect"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/schedule"
)

// Constructor seam: every figure and table that needs the optimal broadcast
// tree routes through buildTree/bTime/broadcastSchedule, so logpbench's
// -constructor flag switches the whole reproduction pipeline between the
// heap search and the search-free logtime construction. The default "auto"
// picks logtime at P >= logtime.DefaultThreshold — the paper figures stay
// on the search (their P is small), large sweeps get the closed form — and
// both constructors emit identical trees, so the rendered output is
// byte-identical either way.
var constructorMode = "auto"

// SetConstructor selects the broadcast-tree constructor for every
// subsequent figure and table: "auto", "search", or "logtime".
func SetConstructor(mode string) error {
	_, _, err := logtime.Select(mode, 2)
	if err != nil {
		return err
	}
	constructorMode = mode
	return nil
}

func buildTree(m logp.Machine, p int) *core.Tree {
	tb, _, _ := logtime.Select(constructorMode, p)
	return tb(m, p)
}

// bTime is core.B through the selected constructor.
func bTime(m logp.Machine, p int) logp.Time {
	return buildTree(m, p).MaxLabel()
}

// broadcastSchedule is core.BroadcastSchedule through the selected
// constructor.
func broadcastSchedule(m logp.Machine, item int) *schedule.Schedule {
	s, err := core.TreeSchedule(buildTree(m, m.P), item, nil, 0)
	if err != nil {
		panic(err) // identity assignment cannot mismatch
	}
	return s
}

// ConstructionTable is experiment CTOR: for each processor count it builds
// the optimal broadcast tree with both constructors, proves them identical
// node for node, and reports B(P) plus the per-rank answers the logtime
// side can give without materializing anything. Wall times deliberately
// stay out of the table (it must be byte-reproducible); the ns/op numbers
// live in the Construct benchmarks recorded in BENCH_3.json.
func ConstructionTable() *Table {
	m0 := logp.ProfilePaperFig1 // L=6 o=2 g=4
	tb := &Table{
		Title:  "Construction: heap search vs logtime counting (L=6 o=2 g=4)",
		Header: []string{"P", "B(P)", "trees", "rank P-1 label", "rank P-1 parent", "rank P/2 label"},
	}
	for _, p := range []int{8, 64, 1000, 100000} {
		m := m0.WithP(p)
		search := core.OptimalTree(m, p)
		lt := logtime.Tree(m, p)
		agree := reflect.DeepEqual(search.Nodes, lt.Nodes)
		last := logtime.Node(m, p, p-1)
		mid := logtime.Node(m, p, p/2)
		tb.Add(p, lt.MaxLabel(), okMark(agree), last.Label, last.Parent, mid.Label)
	}
	// Past any materializable size the closed form keeps answering: the
	// per-rank queries below never build a tree.
	huge := m0.WithP(1 << 30)
	n := logtime.Node(huge, 1<<30, 1<<29)
	tb.Note("per-rank queries stay O(log P): rank 2^29 of P=2^30 has label %d, parent %d (no tree built)",
		n.Label, n.Parent)
	tb.Note("B(P) per constructor ns/op: see the Construct benchmarks in BENCH_3.json")
	return tb
}

func okMark(b bool) string {
	if b {
		return "identical"
	}
	return "DIVERGE"
}

// ConstructorName resolves what "auto" means at a given P, for display.
func ConstructorName(p int) string {
	_, name, _ := logtime.Select(constructorMode, p)
	return fmt.Sprintf("%s (mode %s)", name, constructorMode)
}
