package bench

import (
	"fmt"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
)

// The Construct benchmarks are the BENCH_3.json record of the tentpole
// claim: schedule construction through the logtime counting tables is
// orders of magnitude cheaper than any search. Three tiers:
//
//   - ConstructLogtimeTables: cold start — build the counting tables from
//     nothing until P processors are covered. After this, every per-rank
//     query is answerable; this is the whole construction cost of the
//     closed form.
//   - ConstructLogtimeNode: one per-processor O(log P) query against warm
//     tables (the steady-state cost of emitting one processor's entry).
//   - ConstructLogtimeTree / ConstructSearchTree: full materialization of
//     ß(P), closed-form vs heap search, for a like-for-like contrast.

var constructPs = []int{64, 1000, 100000, 1000000}

var sinkTime logp.Time

func BenchmarkConstructLogtimeTables(b *testing.B) {
	for _, p := range constructPs {
		m := logp.ProfilePaperFig1.WithP(p)
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bl, err := logtime.NewBuilder(m)
				if err != nil {
					b.Fatal(err)
				}
				sinkTime = bl.BTime(p)
			}
		})
	}
}

func BenchmarkConstructLogtimeNode(b *testing.B) {
	for _, p := range constructPs {
		m := logp.ProfilePaperFig1.WithP(p)
		bl := logtime.MustBuilder(m)
		bl.BTime(p) // warm the tables once; the query cost is what's measured
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			r := p - 1
			for i := 0; i < b.N; i++ {
				ni := bl.Node(p, r)
				sinkTime = ni.Label
				r = (r*48271 + 7) % p
			}
		})
	}
}

func BenchmarkConstructLogtimeTree(b *testing.B) {
	for _, p := range constructPs {
		if p > 100000 {
			continue // materializing 1e6 nodes measures allocation, not construction
		}
		m := logp.ProfilePaperFig1.WithP(p)
		bl := logtime.MustBuilder(m)
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkTime = bl.Tree(p).MaxLabel()
			}
		})
	}
}

func BenchmarkConstructSearchTree(b *testing.B) {
	for _, p := range constructPs {
		if p > 100000 {
			continue
		}
		m := logp.ProfilePaperFig1.WithP(p)
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkTime = core.OptimalTree(m, p).MaxLabel()
			}
		})
	}
}

// TestConstructionTableStable pins that the CTOR experiment is
// byte-reproducible and mode-independent, so it can join the -all output
// without breaking determinism guarantees.
func TestConstructionTableStable(t *testing.T) {
	defer SetConstructor("auto")
	first := ConstructionTable().String()
	for _, mode := range []string{"search", "logtime", "auto"} {
		if err := SetConstructor(mode); err != nil {
			t.Fatal(err)
		}
		if got := ConstructionTable().String(); got != first {
			t.Fatalf("mode %s changes the construction table:\n%s", mode, got)
		}
	}
	if err := SetConstructor("psychic"); err == nil {
		t.Fatal("bogus constructor mode accepted")
	}
}
