package bench

import (
	"errors"
	"fmt"

	"logpopt/internal/alltoall"
	"logpopt/internal/baseline"
	"logpopt/internal/combine"
	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/par"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// The theorem sweeps below fan out one task per grid point on up to
// par.Limit() workers (see cmd/logpbench's -parallel flag) and merge rows in
// input order, so the rendered tables are byte-identical at every
// parallelism level. Row cells are computed inside the worker; Table.Add
// only does the final formatting on the merged slice.

// gridRows evaluates one row per input in parallel, in input order.
func gridRows[T any](in []T, f func(T) []any) [][]any {
	return par.Map(in, f)
}

// Theorem22 sweeps P(t) against the generalized Fibonacci numbers f_t
// (Theorem 2.2) and B against its inverse, for L in [1, lMax] and t in
// [0, tMax].
func Theorem22(lMax, tMax int) *Table {
	tb := &Table{
		Title:  "Theorem 2.2: P(t; L,0,1) = f_t  (and B = InvF)",
		Header: []string{"L", "t", "P(t) via DP", "f_t", "B(f_t)", "match"},
	}
	type point struct{ l, t int }
	var grid []point
	for l := 1; l <= lMax; l++ {
		for t := 0; t <= tMax; t++ {
			grid = append(grid, point{l, t})
		}
	}
	for _, row := range gridRows(grid, func(pt point) []any {
		seq := core.SeqFor(pt.l)
		m := logp.Postal(2, logp.Time(pt.l))
		p := core.Pt(m, logp.Time(pt.t), 0)
		ft := seq.F(pt.t)
		b := seq.InvF(ft)
		pass := p == ft && (ft == 1 || b == pt.t)
		return []any{pt.l, pt.t, p, ft, b, ok(pass)}
	}) {
		tb.Add(row...)
	}
	return tb
}

// SingleItemTable measures optimal single-item broadcast against the
// baseline trees across machine profiles (experiment CMP).
func SingleItemTable() *Table {
	tb := &Table{
		Title: "Single-item broadcast: optimal B(P) vs baseline trees",
		Header: []string{"machine", "P", "optimal", "binomial", "binary", "flat", "linear",
			"binom/opt"},
	}
	machines := []struct {
		name string
		m    logp.Machine
	}{
		{"CM-5-like (L=6,o=2,g=4)", logp.ProfileCM5},
		{"iPSC-like (L=20,o=4,g=6)", logp.MustNew(64, 20, 4, 6)},
		{"postal L=3", logp.Postal(64, 3)},
		{"postal L=8", logp.Postal(64, 8)},
		{"cluster (L=40,o=10,g=12)", logp.ProfileEthernetCluster.WithP(64)},
		{"low-latency (L=8,o=1,g=2)", logp.ProfileLowLatency.WithP(128)},
	}
	for _, mc := range machines {
		m := mc.m
		opt := bTime(m, m.P)
		bin := baseline.TreeTime(baseline.BinomialTree(m, m.P))
		bt := baseline.TreeTime(baseline.BinaryTree(m, m.P))
		fl := baseline.TreeTime(baseline.FlatTree(m, m.P))
		ln := baseline.TreeTime(baseline.LinearTree(m, m.P))
		tb.Add(mc.name, m.P, opt, bin, bt, fl, ln, fmt.Sprintf("%.2f", float64(bin)/float64(opt)))
	}
	tb.Note("the optimal tree degenerates to the binomial tree when g = L+2o and wins otherwise")
	return tb
}

// KItemTable sweeps the k-item broadcast schedulers against the bounds of
// Theorems 3.1 and 3.6 and the single-sending bound (experiments T31, T36,
// T38). For P-1 = P(t) rows the optimal block-cyclic route is included.
func KItemTable() *Table {
	tb := &Table{
		Title: "k-item broadcast: measured vs bounds (postal model)",
		Header: []string{"L", "P", "k", "LB(3.1)", "ssLB", "UB(3.6)",
			"optimal", "greedy", "buffered", "maxbuf", "in range"},
	}
	type cfg struct {
		l, p, k int
		grid    bool // P-1 = P(t) (the paper's regime)
	}
	cases := []cfg{
		{l: 3, p: 10, k: 8, grid: true},
		{l: 3, p: 14, k: 14, grid: true},
		{l: 3, p: 42, k: 10, grid: true},
		{l: 2, p: 9, k: 6, grid: true},
		{l: 4, p: 15, k: 9, grid: true},
		{l: 5, p: 12, k: 7, grid: true},
		{l: 3, p: 12, k: 8},  // P-1 not of the form P(t): beyond the paper
		{l: 4, p: 20, k: 12}, // ditto
		{l: 2, p: 30, k: 20}, // ditto
	}
	for _, row := range gridRows(cases, func(c cfg) []any {
		b := kitem.BoundsFor(c.l, c.p, int64(c.k))
		optimal := "-"
		if _, s, err := kitem.OptimalGeneral(logp.Time(c.l), c.p, c.k); err == nil {
			optimal = fmt.Sprintf("%d", s.LastRecv())
		}
		var greedy, buffered, maxbuf string
		var gFin, bFin int64 = -1, -1
		if res, err := kitem.Greedy(logp.Time(c.l), c.p, c.k, kitem.Strict); err == nil {
			gFin = int64(res.Finish)
			greedy = fmt.Sprintf("%d", res.Finish)
		} else {
			greedy = "err"
		}
		if res, err := kitem.Greedy(logp.Time(c.l), c.p, c.k, kitem.Buffered); err == nil {
			bFin = int64(res.Finish)
			buffered = fmt.Sprintf("%d", res.Finish)
			maxbuf = fmt.Sprintf("%d", res.MaxBuffer)
		} else {
			buffered, maxbuf = "err", "-"
		}
		pass := gFin >= b.Lower && bFin >= b.Lower
		if optimal != "-" {
			pass = pass && optimal == fmt.Sprintf("%d", b.SingleSending)
		} else {
			pass = pass && c.l == 2 // only L=2 near-capacity instances may lack the optimal route
		}
		return []any{c.l, c.p, c.k, b.Lower, b.SingleSending, b.Upper,
			optimal, greedy, buffered, maxbuf, ok(pass)}
	}) {
		tb.Add(row...)
	}
	tb.Note("optimal = block-cyclic route: exact single-sending optimum for any P (beyond the paper's P(t) grid);")
	tb.Note("  '-' only for L=2 near-capacity trees, Theorem 3.4's regime")
	tb.Note("greedy rows may exceed UB(3.6); the theorem asserts existence, the greedy is a heuristic")
	return tb
}

// ContinuousTable sweeps Theorem 3.3 (delay L+B(P-1) for 3 <= L <= 10),
// Theorem 3.4 (L=2 impossibility) and Theorem 3.5 (L=2 with +1), reporting
// solver outcomes per (L, t) — experiments T33 and T34.
func ContinuousTable(tMaxFactor int) *Table {
	tb := &Table{
		Title:  "Continuous broadcast: achievable delays per (L, t)",
		Header: []string{"L", "t range", "solved (delay L+t)", "infeasible", "unsolved"},
	}
	if tMaxFactor < 1 {
		tMaxFactor = 2
	}
	// Fan out one solver task per (L, t) grid point; statuses merge back
	// into per-L rows in input order.
	type point struct{ l, t int }
	var grid []point
	for l := 2; l <= 10; l++ {
		for t := l; t <= tMaxFactor*l+8; t++ {
			grid = append(grid, point{l, t})
		}
	}
	status := par.Map(grid, func(pt point) int {
		inst, err := continuous.NewInstance(pt.l, pt.t)
		if err != nil {
			return -1
		}
		err = inst.Solve(0)
		switch {
		case err == nil:
			return 0 // solved
		case errors.Is(err, continuous.ErrNoSolution):
			return 1 // infeasible
		default:
			return 2 // unsolved
		}
	})
	for l := 2; l <= 10; l++ {
		tMax := tMaxFactor*l + 8
		var solved, infeasible, unsolved []int
		for i, pt := range grid {
			if pt.l != l {
				continue
			}
			switch status[i] {
			case 0:
				solved = append(solved, pt.t)
			case 1:
				infeasible = append(infeasible, pt.t)
			case 2:
				unsolved = append(unsolved, pt.t)
			}
		}
		tb.Add(l, fmt.Sprintf("[%d,%d]", l, tMax),
			condense(solved), condense(infeasible), condense(unsolved))
	}
	tb.Note("infeasible = exhaustively proven; matches the paper's L=4,t=8 remark and Theorem 3.4 (L=2)")
	tb.Note("L=2 achieves delay L+B(P-1)+1 instead via Theorem 3.5 pruned trees (see tests)")
	return tb
}

// condense renders an int list as compact ranges, e.g. "4-7,9".
func condense(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	out := ""
	start, prev := xs[0], xs[0]
	flush := func() {
		if out != "" {
			out += ","
		}
		if start == prev {
			out += fmt.Sprintf("%d", start)
		} else {
			out += fmt.Sprintf("%d-%d", start, prev)
		}
	}
	for _, x := range xs[1:] {
		if x == prev+1 {
			prev = x
			continue
		}
		flush()
		start, prev = x, x
	}
	flush()
	return out
}

// AllToAllTable verifies the all-to-all bound L+2o+(k(P-1)-1)g across
// machines (experiment T41a).
func AllToAllTable() *Table {
	tb := &Table{
		Title:  "All-to-all broadcast: measured vs bound L+2o+(k(P-1)-1)g",
		Header: []string{"machine", "P", "k", "bound", "measured", "match"},
	}
	cases := []struct {
		name string
		m    logp.Machine
		k    int
	}{
		{"postal L=3", logp.Postal(9, 3), 1},
		{"postal L=3", logp.Postal(9, 3), 4},
		{"postal L=7", logp.Postal(25, 7), 2},
		{"phase-aligned (L=6,o=2,g=5)", logp.MustNew(6, 6, 2, 5), 1},
		{"Fig1 machine (phase-clash)", logp.ProfilePaperFig1, 1},
	}
	for _, c := range cases {
		s := alltoall.Schedule(c.m, c.k)
		vs := schedule.ValidateDeferred(s)
		vs = append(vs, schedule.CheckBroadcastComplete(s, alltoall.Origins(c.m, c.k))...)
		bound := alltoall.LowerBound(c.m, c.k)
		got := s.LastRecv()
		status := "="
		if got > bound {
			status = fmt.Sprintf("+%d (deferred receptions)", got-bound)
		}
		if len(vs) != 0 {
			status = "INVALID"
		}
		tb.Add(c.name, c.m.P, c.k, bound, got, status)
	}
	return tb
}

// CombineTable verifies Theorem 4.1 (experiment T41b): time T reduces and
// re-broadcasts P(T) values, no slower than all-to-one reduction.
func CombineTable(lMax int) *Table {
	tb := &Table{
		Title:  "Combining broadcast (Theorem 4.1): P(T) processors in time T",
		Header: []string{"L", "T", "P=f_T", "invariant", "sum check", "reduce time"},
	}
	for l := 2; l <= lMax; l++ {
		seq := core.NewSeq(l)
		for T := l; T <= l+7; T++ {
			p := int(seq.F(T))
			_, segErr := combine.RunSegments(l, T)
			vals := make([]int, p)
			want := 0
			for i := range vals {
				vals[i] = i + 1
				want += vals[i]
			}
			got, runErr := combine.Run(l, T, vals, func(a, b int) int { return a + b })
			sumOK := runErr == nil
			for _, v := range got {
				if v != want {
					sumOK = false
				}
			}
			m := logp.Postal(p, logp.Time(l))
			tb.Add(l, T, p, ok(segErr == nil), ok(sumOK), bTime(m, p))
		}
	}
	tb.Note("reduce time = combining time: all-to-all combining is as fast as all-to-one reduction")
	return tb
}

// SummationTable verifies Lemma 5.1 (experiment L51): analytic capacity
// n(t) equals the constructed plan's operand count, execution sums
// correctly, and TimeFor inverts Capacity.
func SummationTable() *Table {
	tb := &Table{
		Title:  "Summation (Lemma 5.1): capacity n(t), construction, execution",
		Header: []string{"machine", "t", "n(t)", "plan ops", "procs", "exec", "t(n) inverse"},
	}
	cases := []struct {
		name string
		m    logp.Machine
		t    logp.Time
	}{
		{"Fig6 (L=5,o=2,g=4)", logp.ProfilePaperFig6, 28},
		{"Fig6 (L=5,o=2,g=4)", logp.ProfilePaperFig6, 40},
		{"postal L=3 P=16", logp.Postal(16, 3), 12},
		{"postal L=2 P=64", logp.Postal(64, 2), 16},
		{"CM-5-like", logp.ProfileCM5, 36},
	}
	for _, c := range cases {
		n, _ := summation.Capacity(c.m, c.t)
		pl, err := summation.Build(c.m, c.t)
		if err != nil {
			tb.Add(c.name, c.t, n, "err", "-", "-", "-")
			continue
		}
		ops := make([]int, pl.N)
		want := 0
		for i := range ops {
			ops[i] = 2*i + 1
			want += ops[i]
		}
		got, execErr := summation.Execute(pl, ops, func(a, b int) int { return a + b })
		tInv := summation.TimeFor(c.m, n)
		tb.Add(c.name, c.t, n, pl.N, pl.Tree.P(),
			ok(execErr == nil && got == want), ok(tInv == c.t || func() bool {
				// t(n) <= t always; equality unless capacity is flat at t.
				c2, _ := summation.Capacity(c.m, tInv)
				return c2 >= n && tInv <= c.t
			}()))
	}
	return tb
}

// KItemBaselineTable compares the optimal k-item broadcast against the
// sequential-pipelined baseline (experiment CMP, k-item part).
func KItemBaselineTable() *Table {
	tb := &Table{
		Title:  "k-item broadcast vs naive pipelined baseline (postal)",
		Header: []string{"L", "P", "k", "optimal", "baseline", "speedup"},
	}
	cases := []struct{ l, t, k int }{
		{3, 7, 8}, {3, 8, 14}, {3, 11, 30}, {4, 10, 20}, {5, 12, 16},
	}
	for _, c := range cases {
		seq := core.NewSeq(c.l)
		p := int(seq.F(c.t)) + 1
		_, s, err := kitem.ViaContinuous(c.l, c.t, c.k)
		if err != nil {
			tb.Add(c.l, p, c.k, "err", "-", "-")
			continue
		}
		_, fin, err := baseline.SequentialPipelined(logp.Time(c.l), p, c.k)
		if err != nil {
			tb.Add(c.l, p, c.k, s.LastRecv(), "err", "-")
			continue
		}
		tb.Add(c.l, p, c.k, s.LastRecv(), fin,
			fmt.Sprintf("%.2fx", float64(fin)/float64(s.LastRecv())))
	}
	return tb
}

// ReduceVsCombineTable compares combining broadcast against the naive
// reduce-then-broadcast baseline (Section 4.2's factor-2 remark).
func ReduceVsCombineTable() *Table {
	tb := &Table{
		Title:  "Combining broadcast vs reduce-then-broadcast",
		Header: []string{"L", "P", "combining (Thm 4.1)", "reduce+bcast", "factor"},
	}
	for _, c := range []struct{ l, T int }{{2, 8}, {3, 9}, {4, 12}, {5, 14}} {
		seq := core.NewSeq(c.l)
		p := int(seq.F(c.T))
		m := logp.Postal(p, logp.Time(c.l))
		naive := baseline.ReduceThenBroadcastTime(m, p)
		tb.Add(c.l, p, c.T, naive, fmt.Sprintf("%.2fx", float64(naive)/float64(c.T)))
	}
	return tb
}

// GeneralPTable sweeps the general-P block-cyclic construction (beyond the
// paper): for every processor count p in range, can the exact
// single-sending-optimal continuous/k-item schedule be built?
func GeneralPTable(pMax int) *Table {
	tb := &Table{
		Title:  "General-P block-cyclic construction (beyond the paper's P(t) grid)",
		Header: []string{"L", "p range (non-source)", "solved (optimal delay)", "unsolved"},
	}
	if pMax < 10 {
		pMax = 10
	}
	// One solver task per (L, p) grid point, merged into per-L rows in
	// input order.
	type point struct{ l, p int }
	var grid []point
	for _, l := range []int{2, 3, 4, 5} {
		for p := 3; p <= pMax; p++ {
			grid = append(grid, point{l, p})
		}
	}
	failed := par.Map(grid, func(pt point) bool {
		inst, err := continuous.NewInstanceGeneral(pt.l, pt.p)
		if err != nil {
			return false
		}
		return inst.Solve(0) != nil
	})
	for _, l := range []int{2, 3, 4, 5} {
		var unsolved []int
		for i, pt := range grid {
			if pt.l == l && failed[i] {
				unsolved = append(unsolved, pt.p)
			}
		}
		solved := fmt.Sprintf("all other p in [3,%d]", pMax)
		tb.Add(l, fmt.Sprintf("[3,%d]", pMax), solved, condense(unsolved))
	}
	tb.Note("for L>=3 only a handful of tiny instances miss; for L=2 the unsolved cluster")
	tb.Note("  around p = P(t) (near-capacity trees) — exactly Theorem 3.4's regime")
	return tb
}

// ExtensionsTable verifies the extension collectives (not in the paper):
// scatter/gather at the personalized bound, and the two-sweep prefix scan
// at 2 B(P).
func ExtensionsTable() *Table {
	tb := &Table{
		Title:  "Extension collectives: scatter, gather, prefix scan",
		Header: []string{"machine", "scatter", "gather", "bound", "scan", "2B(P)", "all ok"},
	}
	for _, m := range []logp.Machine{
		logp.Postal(9, 3),
		logp.Postal(34, 2),
		logp.MustNew(8, 6, 2, 4),
		logp.MustNew(16, 10, 1, 3),
	} {
		sc := alltoall.Scatter(m)
		ga := alltoall.Gather(m)
		gfin, gerr := alltoall.GatherComplete(ga)
		bound := alltoall.ScatterLowerBound(m)
		scan := combine.ScanSchedule(m, m.P)
		twoB := 2 * bTime(m, m.P)
		pass := sc.LastRecv() == bound && gerr == nil && gfin == bound &&
			scan.LastRecv() == twoB &&
			len(schedule.Validate(sc)) == 0 && len(schedule.Validate(ga)) == 0 &&
			len(schedule.Validate(scan)) == 0
		tb.Add(m.String(), sc.LastRecv(), gfin, bound, scan.LastRecv(), twoB, ok(pass))
	}
	return tb
}

// TightnessTable verifies by exhaustive branch-and-bound (multi-sending
// allowed) that Theorem 3.1's lower bound is attained exactly on tiny
// instances — the strongest possible check of the bound's tightness.
func TightnessTable() *Table {
	tb := &Table{
		Title:  "Theorem 3.1 tightness: exhaustive optimum vs lower bound (tiny instances)",
		Header: []string{"L", "P", "k", "lower bound", "true optimum", "match"},
	}
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{
		{2, 3, 2}, {2, 4, 2}, {2, 5, 2}, {2, 3, 3}, {2, 4, 3},
		{3, 3, 2}, {3, 4, 2}, {3, 5, 2}, {3, 3, 3},
	} {
		lb := core.NewSeq(int(c.l)).KItemLowerBound(c.p, int64(c.k))
		best, done, err := kitem.SearchOptimal(c.l, c.p, c.k, 50_000_000)
		switch {
		case err != nil:
			tb.Add(c.l, c.p, c.k, lb, "err", "FAIL")
		case !done:
			tb.Add(c.l, c.p, c.k, lb, fmt.Sprintf("<=%d", best), "budget")
		default:
			tb.Add(c.l, c.p, c.k, lb, best, ok(int64(best) == lb))
		}
	}
	return tb
}
