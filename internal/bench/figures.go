package bench

import (
	"fmt"
	"strings"

	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
	"logpopt/internal/trace"
)

// Figure1 regenerates Figure 1: the optimal broadcast tree for P=8, L=6,
// g=4, o=2 and each processor's activity over time.
func Figure1() (string, error) {
	m := logp.ProfilePaperFig1
	tr := buildTree(m, m.P)
	s := broadcastSchedule(m, 0)
	if vs := schedule.ValidateBroadcast(s, core.Origins(0)); len(vs) != 0 {
		return "", fmt.Errorf("bench: figure 1 schedule invalid: %v", vs[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: optimal broadcast tree, %v; B(8) = %d\n\n", m, tr.MaxLabel())
	b.WriteString("Tree (node @availability-time):\n")
	b.WriteString(tr.String())
	b.WriteString("\nActivity (S/s send overhead, R/r receive overhead):\n")
	b.WriteString(trace.Gantt(s))
	return b.String(), nil
}

// Figure2 regenerates Figure 2: the optimal tree T9 for L=3, P-1=9, the
// continuous broadcast schedule, and the complete 8-item broadcast schedule
// finishing at time 17.
func Figure2() (string, error) {
	const l, t, k = 3, 7, 8
	inst, s, err := continuous.SolveAndSchedule(l, t, k)
	if err != nil {
		return "", err
	}
	if vs := schedule.ValidateBroadcast(s, continuous.Origins(k)); len(vs) != 0 {
		return "", fmt.Errorf("bench: figure 2 schedule invalid: %v", vs[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: L=%d, P-1=%d, k=%d (postal model)\n\n", l, inst.P, k)
	b.WriteString("Optimal broadcast tree T9 (node @delay):\n")
	b.WriteString(inst.Tree.String())
	fmt.Fprintf(&b, "\nBlocks and words (delays; receive-only gets delay %d):\n", inst.RecvOnlyDelay)
	for _, blk := range inst.Blocks {
		fmt.Fprintf(&b, "  block size %d (node delay %d): word %v\n", blk.Size, blk.Delay, blk.Word)
	}
	fmt.Fprintf(&b, "\nBroadcast schedule for %d values (reception table, items 1-based);\n", k)
	fmt.Fprintf(&b, "every item's delay is exactly L+B(P-1) = %d and the last reception is at %d:\n",
		inst.Delay(), s.LastRecv())
	b.WriteString(trace.ReceptionTable(s))
	return b.String(), nil
}

// Figure3 regenerates Figure 3: the block transmission digraph for L=3 and
// P-1 = P(11) = 41.
func Figure3() (string, error) {
	inst, _, err := continuous.SolveAndSchedule(3, 11, 1)
	if err != nil {
		return "", err
	}
	a, err := inst.Assign()
	if err != nil {
		return "", err
	}
	g := kitem.DeriveBlockDigraph(a)
	if err := g.Verify(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: block transmission digraph, L=3, P-1=P(11)=%d\n", inst.P)
	b.WriteString("(weights into and out of each block of size r sum to r;\n")
	b.WriteString(" the receive-only vertex has in-weight 1, out-weight 0)\n\n")
	b.WriteString(g.String())
	return b.String(), nil
}

// Figure4 regenerates Figure 4's view: the reception table of a block of
// size 7 with L=5 over k=16 items (the paper's endgame illustration; here
// the table comes from the block-cyclic optimal schedule, whose block of
// size 7 is the root block of T11).
func Figure4() (string, error) {
	const l, t, k = 5, 11, 16
	inst, s, err := continuous.SolveAndSchedule(l, t, k)
	if err != nil {
		return "", err
	}
	a, err := inst.Assign()
	if err != nil {
		return "", err
	}
	var procs []int
	for bi, blk := range inst.Blocks {
		if blk.Size == 7 {
			procs = a.BlockProcs[bi]
			break
		}
	}
	if procs == nil {
		return "", fmt.Errorf("bench: no size-7 block in L=%d t=%d", l, t)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: reception table of the size-7 block, L=%d, k=%d (items 1-based)\n", l, k)
	fmt.Fprintf(&b, "(block processors %v; each receives every item exactly once,\n", procs)
	b.WriteString(" its own active items r=7 steps apart)\n\n")
	b.WriteString(trace.BlockTable(s, procs))
	return b.String(), nil
}

// Figure5 regenerates Figure 5: the complete optimal 14-item broadcast for
// L=3, P-1=13, finishing at time 24 = B(13)+L+k-1. The paper achieves it on
// the buffered model; the block-cyclic schedule achieves the same bound with
// no buffering (P-1 = P(8) = 13).
func Figure5() (string, error) {
	const l, t, k = 3, 8, 14
	inst, s, err := continuous.SolveAndSchedule(l, t, k)
	if err != nil {
		return "", err
	}
	if got := s.LastRecv(); got != 24 {
		return "", fmt.Errorf("bench: figure 5 finishes at %d, want 24", got)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: L=%d, P-1=%d, k=%d; finishes at %d = B(P-1)+L+k-1 (items 1-based)\n\n",
		l, inst.P, k, s.LastRecv())
	b.WriteString(trace.ReceptionTable(s))
	return b.String(), nil
}

// Figure6 regenerates Figure 6: the optimal summation schedule for t=28,
// P=8, L=5, g=4, o=2 — the computation chart and the communication tree.
func Figure6() (string, error) {
	m := logp.ProfilePaperFig6
	pl, err := summation.Build(m, 28)
	if err != nil {
		return "", err
	}
	s := pl.Schedule()
	if vs := schedule.Validate(s); len(vs) != 0 {
		return "", fmt.Errorf("bench: figure 6 schedule invalid: %v", vs[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: optimal summation, t=28, %v; n(t) = %d operands\n\n", m, pl.N)
	b.WriteString("Computation schedule (+ local add/fold, R/r receive, S/s send):\n")
	b.WriteString(trace.Gantt(s))
	b.WriteString("\nCommunication tree (node @ broadcast-delay; sends at t-delay):\n")
	b.WriteString(pl.Tree.String())
	fmt.Fprintf(&b, "\nPer-processor: sendAt / receptions / local operands:\n")
	for ni := range pl.Tree.Nodes {
		fmt.Fprintf(&b, "  P%d: sends at %d, %d receptions, %d local operands\n",
			ni, pl.SendAt[ni], len(pl.Tree.Nodes[ni].Children), pl.Locals[ni])
	}
	return b.String(), nil
}
