package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestFigureGoldens pins the exact text of every regenerated figure. The
// schedulers and renderers are deterministic, so any diff is a behaviour
// change: run `go test ./internal/bench -run Golden -update` after an
// intentional one.
func TestFigureGoldens(t *testing.T) {
	for _, c := range []struct {
		name string
		f    func() (string, error)
	}{
		{"figure1", Figure1},
		{"figure2", Figure2},
		{"figure3", Figure3},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure6", Figure6},
	} {
		got, err := c.f()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		path := filepath.Join("testdata", c.name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", c.name, err)
		}
		if got != string(want) {
			t.Errorf("%s: output differs from golden file (run with -update after intentional changes)", c.name)
		}
	}
}
