package bench

import (
	"testing"

	"logpopt/internal/par"
)

// TestTablesDeterministicAcrossParallelism renders every parallel sweep at
// several worker-pool widths and requires byte-identical output: the grid
// runner must merge rows in input order no matter how the work was scheduled.
func TestTablesDeterministicAcrossParallelism(t *testing.T) {
	tables := map[string]func() *Table{
		"Theorem22":  func() *Table { return Theorem22(10, 24) },
		"KItem":      KItemTable,
		"Continuous": func() *Table { return ContinuousTable(2) },
		"GeneralP":   func() *Table { return GeneralPTable(40) },
	}
	oldLimit := par.Limit()
	defer par.SetLimit(oldLimit)

	par.SetLimit(1)
	want := make(map[string]string)
	for name, f := range tables {
		want[name] = f().String()
	}
	for _, lim := range []int{2, 8} {
		par.SetLimit(lim)
		for name, f := range tables {
			if got := f().String(); got != want[name] {
				t.Errorf("%s: output at parallelism %d differs from sequential:\n%s\n--- want ---\n%s",
					name, lim, got, want[name])
			}
		}
	}
}

// BenchmarkSweepParallel measures the parallel grid runner on the k-item
// scheduler comparison sweep (real per-row work: greedy scheduling plus
// simulator validation, nothing memoized).
func BenchmarkSweepParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := KItemTable(); tbl == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkSweepSequential is the same sweep pinned to one worker, for
// computing the parallel speedup on multi-core hosts.
func BenchmarkSweepSequential(b *testing.B) {
	old := par.Limit()
	par.SetLimit(1)
	defer par.SetLimit(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := KItemTable(); tbl == nil {
			b.Fatal("nil table")
		}
	}
}
