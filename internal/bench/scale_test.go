package bench

import (
	"fmt"
	"sync"
	"syscall"
	"testing"

	"logpopt/internal/combine"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/runtime"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

// Scale benchmarks: how fast the execution backends chew through events as P
// grows to the million-processor regime (ROADMAP item 3), reported as
// events/sec plus the process's peak RSS so `make bench-gate` can hold both
// throughput and memory footprint. Schedules are cached across b.Run
// re-invocations — constructing the P=1e6 broadcast takes seconds and must
// not be re-done every time the framework re-enters the closure to grow N.

var scaleCache sync.Map // key string -> cached *schedule.Schedule

func scaleBroadcast(p int) *schedule.Schedule {
	key := fmt.Sprintf("broadcast/%d", p)
	if s, ok := scaleCache.Load(key); ok {
		return s.(*schedule.Schedule)
	}
	s := core.BroadcastSchedule(logp.MustNew(p, 6, 2, 4), 0)
	scaleCache.Store(key, s)
	return s
}

func scaleReduce(p int) *schedule.Schedule {
	key := fmt.Sprintf("reduce/%d", p)
	if s, ok := scaleCache.Load(key); ok {
		return s.(*schedule.Schedule)
	}
	s := combine.ReduceSchedule(logp.Postal(p, 3), p)
	scaleCache.Store(key, s)
	return s
}

// reduceOrigins mirrors conform.DerivedOrigins: every item enters at its
// earliest sender at time zero (conform is not imported to keep the bench
// package's dependencies one-directional).
func reduceOrigins(s *schedule.Schedule) map[int]schedule.Origin {
	og := make(map[int]schedule.Origin)
	first := make(map[int]logp.Time)
	for _, ev := range s.Events {
		if ev.Op != schedule.OpSend {
			continue
		}
		if t, ok := first[ev.Item]; !ok || ev.Time < t {
			first[ev.Item] = ev.Time
			og[ev.Item] = schedule.Origin{Proc: ev.Proc}
		}
	}
	return og
}

// peakRSSBytes reports the process's high-water resident set size.
func peakRSSBytes() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux counts Maxrss in KiB (Darwin in bytes, but CI and the recorded
	// baselines are Linux).
	return float64(ru.Maxrss) * 1024
}

// reportScale attaches the shared scale metrics after a timed section:
// events/sec over the whole run and the peak RSS of the process.
func reportScale(b *testing.B, events int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/s, "events/sec")
	}
	b.ReportMetric(peakRSSBytes(), "peak_rss_bytes")
}

var scalePs = []int{1_000, 100_000, 1_000_000}

// BenchmarkScaleSimBroadcast replays the paper's optimal broadcast on one
// recycled simulator engine at P up to 1e6. The warm path must hold O(1)
// allocs/op regardless of P — that is the acceptance bar for the sharded
// flight queue and slab reuse.
func BenchmarkScaleSimBroadcast(b *testing.B) {
	for _, p := range scalePs {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			s := scaleBroadcast(p)
			og := core.Origins(0)
			e := sim.New(s.M, sim.Strict)
			e.Replay(s, og) // warm: grow every slab once, off the clock
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset(s.M, sim.Strict)
				if rep := e.Replay(s, og); len(rep.Violations) != 0 {
					b.Fatal(rep.Violations[0])
				}
			}
			b.StopTimer()
			reportScale(b, len(s.Events))
		})
	}
}

// BenchmarkScaleSimReduce is the same sweep over the summation tree
// (reduction on a postal machine), the paper's other collective.
func BenchmarkScaleSimReduce(b *testing.B) {
	for _, p := range scalePs {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			s := scaleReduce(p)
			og := reduceOrigins(s)
			e := sim.New(s.M, sim.Buffered)
			e.Replay(s, og) // warm: grow every slab once, off the clock
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset(s.M, sim.Buffered)
				if rep := e.Replay(s, og); len(rep.Violations) != 0 {
					b.Fatal(rep.Violations[0])
				}
			}
			b.StopTimer()
			reportScale(b, len(s.Events))
		})
	}
}

// BenchmarkScaleRuntimeBroadcast replays the broadcast on the worker-pool
// goroutine runtime. Handlers hold per-replay cursors, so each iteration
// rebuilds the runtime — allocs/op is O(P) here by design; the metric under
// gate is events/sec.
func BenchmarkScaleRuntimeBroadcast(b *testing.B) {
	for _, p := range scalePs {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			s := scaleBroadcast(p)
			og := core.Origins(0)
			horizon := runtime.Horizon(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt, err := runtime.New(s.M, runtime.Strict, runtime.ReplayHandlers(s, og))
				if err != nil {
					b.Fatal(err)
				}
				rt.Run(horizon)
				if vs := rt.Violations(); len(vs) != 0 {
					b.Fatal(vs[0])
				}
			}
			b.StopTimer()
			reportScale(b, len(s.Events))
		})
	}
}
