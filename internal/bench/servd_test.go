package bench

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"logpopt/internal/obs"
	"logpopt/internal/serve/sched"
)

// BenchmarkServdScheduleLoad hammers the scheduling service's hot path over
// real HTTP: the cache-hit answer for the P=1e5 broadcast (the million-
// processor regime's standing representative, solved once during setup).
// Each parallel client holds its own connection; the reported req/sec and
// p99_us land in BENCH_*.json so `make bench-gate` holds serving throughput
// and tail latency the same way it holds solver throughput. p99_us is read
// back from the service's own RED histogram, so the benchmark also proves
// the /metrics pipeline observes every request.
func BenchmarkServdScheduleLoad(b *testing.B) {
	reg := obs.NewRegistry()
	api := sched.NewAPI(sched.Options{
		Cache:    sched.NewCache(16, 256<<20, reg),
		Registry: reg,
	})
	api.SetReady(true)
	// Solve the benchmark key once, off the clock.
	if _, err := api.Warm(sched.Request{Op: "broadcast", P: 100_000, L: 6, O: 2, G: 4, K: 1}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	url := srv.URL + "/v1/schedule?op=broadcast&p=100000&schedule=false"

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{Transport: &http.Transport{}}
		defer client.CloseIdleConnections()
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				b.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()

	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "req/sec")
	}
	// Warm went through the cache directly, not HTTP, so the RED histogram
	// holds exactly the benchmarked requests.
	h := reg.Histogram("servd.http.schedule.duration.us")
	if got := h.Count(); got != int64(b.N) {
		b.Fatalf("RED histogram saw %d requests, want %d", got, b.N)
	}
	b.ReportMetric(float64(h.P99()), "p99_us")
}

// BenchmarkServdBatchSweep serves one POST /v1/batch expanding a 32-machine
// sweep per iteration — the fan-out path through the shared worker pool.
// After the first iteration every key is cached, so this measures batch
// assembly, parallel cache hits, and envelope serialization.
func BenchmarkServdBatchSweep(b *testing.B) {
	reg := obs.NewRegistry()
	api := sched.NewAPI(sched.Options{
		Cache:    sched.NewCache(16, 256<<20, reg),
		Registry: reg,
	})
	api.SetReady(true)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	body := `{"sweep":{"op":"broadcast","p":[8,16,32,64],"l":[3,6,9,12],"g":[2,4]}}`

	client := srv.Client()
	post := func() {
		resp, err := client.Post(srv.URL+"/v1/batch", "application/json",
			strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			b.Fatalf("status %d: %s", resp.StatusCode, out)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	post() // warm: solve all 32 keys off the clock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*32/s, "req/sec")
	}
}
