// Package bench is the experiment harness: it regenerates every figure of
// the paper (Figures 1-6) as text and verifies every theorem's bound
// numerically across parameter sweeps, producing the tables recorded in
// EXPERIMENTS.md. cmd/logpbench is its command-line front end and
// bench_test.go at the repository root wraps each experiment in a Go
// benchmark.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cols ...any) {
	row := make([]string, len(cols))
	for i, c := range cols {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ok returns "ok" or "FAIL[..]" for bound checks, keeping table cells terse.
func ok(pass bool) string {
	if pass {
		return "ok"
	}
	return "FAIL"
}
