// Package benchcmp compares two benchmark result files in the cmd/benchjson
// format and flags per-metric regressions against fractional thresholds. It
// is the engine behind cmd/benchdiff and `make bench-gate`.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Result mirrors one cmd/benchjson record.
type Result struct {
	Name       string             `json:"name"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	WallS      float64            `json:"wall_s"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Key identifies a benchmark across files.
func (r Result) Key() string {
	return fmt.Sprintf("%s.%s-%d", r.Package, r.Name, r.GoMaxProcs)
}

// Load reads a benchjson file.
func Load(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	return rs, nil
}

// Thresholds holds the allowed fractional regression per metric: 0.20 means
// a new value up to 20% worse than the old one passes. A negative threshold
// disables the check for that metric.
//
// Extra gates metrics from the benchjson "extra" map (values a benchmark
// reported via b.ReportMetric), keyed by unit string. Which direction counts
// as worse follows the unit: rates ending in "/sec" or "/s" regress when
// they DROP, everything else (peak_rss_bytes, nodes/op, ...) regresses when
// it grows, like ns/op. An extra metric missing from Extra is reported but
// never gates.
type Thresholds struct {
	NsPerOp  float64
	BytesOp  float64
	AllocsOp float64
	Extra    map[string]float64
}

// DefaultThresholds tolerate typical runner noise on time but hold
// allocation counts exact, since those are deterministic.
var DefaultThresholds = Thresholds{NsPerOp: 0.10, BytesOp: 0.10, AllocsOp: 0}

// HigherIsBetter reports whether a metric unit improves upward, i.e. whether
// a fractional drop rather than a fractional rise is the regression.
func HigherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/sec") || strings.HasSuffix(unit, "/s")
}

// Delta is one metric of one benchmark present in both files.
type Delta struct {
	Key        string // package.Name-gomaxprocs
	Metric     string // "ns/op", "B/op", "allocs/op", or an extra unit
	Old, New   float64
	Frac       float64 // (new-old)/old; +Inf when old == 0 and new > 0
	Regression bool
}

// Report is the outcome of a comparison.
type Report struct {
	Deltas      []Delta
	OnlyOld     []string // benchmarks that disappeared
	OnlyNew     []string // benchmarks with no baseline
	Regressions int
}

func frac(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return new // +100%/unit scale is meaningless; any growth from 0 counts
	}
	return (new - old) / old
}

// Compare diffs new against old under th. Benchmarks are matched by
// package, name, and GOMAXPROCS; unmatched entries are reported but are not
// regressions.
func Compare(old, new []Result, th Thresholds) *Report {
	om := map[string]Result{}
	for _, r := range old {
		om[r.Key()] = r
	}
	nm := map[string]Result{}
	for _, r := range new {
		nm[r.Key()] = r
	}
	rep := &Report{}
	keys := make([]string, 0, len(om))
	for k := range om {
		if _, ok := nm[k]; ok {
			keys = append(keys, k)
		} else {
			rep.OnlyOld = append(rep.OnlyOld, k)
		}
	}
	for k := range nm {
		if _, ok := om[k]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, k)
		}
	}
	sort.Strings(keys)
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	for _, k := range keys {
		o, n := om[k], nm[k]
		for _, m := range []struct {
			name     string
			old, new float64
			th       float64
		}{
			{"ns/op", o.NsPerOp, n.NsPerOp, th.NsPerOp},
			{"B/op", float64(o.BytesPerOp), float64(n.BytesPerOp), th.BytesOp},
			{"allocs/op", float64(o.AllocsOp), float64(n.AllocsOp), th.AllocsOp},
		} {
			if m.old == 0 && m.new == 0 {
				continue // metric not recorded (e.g. no -benchmem)
			}
			d := Delta{Key: k, Metric: m.name, Old: m.old, New: m.new, Frac: frac(m.old, m.new)}
			d.Regression = m.th >= 0 && d.Frac > m.th
			if d.Regression {
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
		// Extra metrics: compare every unit recorded in both results, in a
		// stable order; gate only the units th.Extra names.
		units := make([]string, 0, len(o.Extra))
		for u := range o.Extra {
			if _, ok := n.Extra[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			ov, nv := o.Extra[u], n.Extra[u]
			if ov == 0 && nv == 0 {
				continue
			}
			d := Delta{Key: k, Metric: u, Old: ov, New: nv, Frac: frac(ov, nv)}
			if eth, gated := th.Extra[u]; gated && eth >= 0 {
				if HigherIsBetter(u) {
					d.Regression = -d.Frac > eth // regression is a drop
				} else {
					d.Regression = d.Frac > eth
				}
			}
			if d.Regression {
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	return rep
}

// Write renders the report as a table, one line per metric, flagging
// regressions. With verbose false only regressions and unmatched benchmarks
// are listed.
func (rep *Report) Write(w io.Writer, verbose bool) {
	for _, d := range rep.Deltas {
		if !d.Regression && !verbose {
			continue
		}
		flag := "ok        "
		if d.Regression {
			flag = "REGRESSION"
		}
		fmt.Fprintf(w, "%s  %-48s %-10s %12.4g -> %-12.4g %+7.1f%%\n",
			flag, d.Key, d.Metric, d.Old, d.New, 100*d.Frac)
	}
	for _, k := range rep.OnlyOld {
		fmt.Fprintf(w, "missing     %s (in old file only)\n", k)
	}
	for _, k := range rep.OnlyNew {
		fmt.Fprintf(w, "new         %s (no baseline)\n", k)
	}
	fmt.Fprintf(w, "%d benchmark metric(s) compared, %d regression(s)\n",
		len(rep.Deltas), rep.Regressions)
}
