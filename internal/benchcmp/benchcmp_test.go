package benchcmp

import (
	"strings"
	"testing"
)

// TestDetectsRegression is the acceptance fixture: bench_new.json carries a
// synthetic 20% ns/op regression on the broadcast benchmark, which the
// default 10% threshold must flag — and a 30% threshold must not.
func TestDetectsRegression(t *testing.T) {
	old, err := Load("testdata/bench_old.json")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Load("testdata/bench_new.json")
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(old, cur, DefaultThresholds)
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want exactly the 20%% ns/op one\n%+v",
			rep.Regressions, rep.Deltas)
	}
	var hit *Delta
	for i := range rep.Deltas {
		if rep.Deltas[i].Regression {
			hit = &rep.Deltas[i]
		}
	}
	if hit.Metric != "ns/op" || !strings.Contains(hit.Key, "BroadcastSchedule") {
		t.Errorf("flagged %+v, want ns/op on BroadcastSchedule", *hit)
	}
	if hit.Frac < 0.199 || hit.Frac > 0.201 {
		t.Errorf("fraction = %v, want 0.20", hit.Frac)
	}
	if len(rep.OnlyOld) != 1 || !strings.Contains(rep.OnlyOld[0], "RemovedSoon") {
		t.Errorf("OnlyOld = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || !strings.Contains(rep.OnlyNew[0], "AddedSince") {
		t.Errorf("OnlyNew = %v", rep.OnlyNew)
	}

	if rep := Compare(old, cur, Thresholds{NsPerOp: 0.30, BytesOp: 0.10, AllocsOp: 0}); rep.Regressions != 0 {
		t.Errorf("30%% threshold still flags %d regression(s)", rep.Regressions)
	}

	var b strings.Builder
	rep.Write(&b, false)
	if !strings.Contains(b.String(), "REGRESSION") && rep.Regressions > 0 {
		t.Errorf("report does not mark regressions:\n%s", b.String())
	}
}

func TestCompareEdgeCases(t *testing.T) {
	a := Result{Name: "BenchmarkX", GoMaxProcs: 4, Package: "p", NsPerOp: 100}
	// allocs going 0 -> 2 with exact threshold 0 is a regression.
	b := a
	b.AllocsOp = 2
	rep := Compare([]Result{a}, []Result{b}, DefaultThresholds)
	found := false
	for _, d := range rep.Deltas {
		if d.Metric == "allocs/op" && d.Regression {
			found = true
		}
	}
	if !found {
		t.Errorf("new allocations from a zero baseline not flagged: %+v", rep.Deltas)
	}
	// Negative threshold disables the metric entirely.
	rep = Compare([]Result{a}, []Result{b}, Thresholds{NsPerOp: 0, BytesOp: 0, AllocsOp: -1})
	if rep.Regressions != 0 {
		t.Errorf("disabled metric still regressed: %+v", rep.Deltas)
	}
	// Identical files: zero regressions, metrics with 0 on both sides skipped.
	rep = Compare([]Result{a}, []Result{a}, DefaultThresholds)
	if rep.Regressions != 0 || len(rep.Deltas) != 1 {
		t.Errorf("identical compare: %+v", rep)
	}
}

// TestExtraMetricGating exercises the direction-aware thresholds for
// b.ReportMetric extras: /sec rates regress when they drop, byte counts when
// they grow, and units absent from Thresholds.Extra are reported but never
// gate.
func TestExtraMetricGating(t *testing.T) {
	old := Result{Name: "BenchmarkScale/P100000", GoMaxProcs: 4, Package: "p", NsPerOp: 100,
		Extra: map[string]float64{"events/sec": 2_000_000, "peak_rss_bytes": 1 << 30, "nodes/op": 5}}
	regressed := func(deltas []Delta, unit string) bool {
		for _, d := range deltas {
			if d.Metric == unit && d.Regression {
				return true
			}
		}
		return false
	}
	th := Thresholds{NsPerOp: -1, BytesOp: -1, AllocsOp: -1,
		Extra: map[string]float64{"events/sec": 0.15, "peak_rss_bytes": 0.10}}

	// 20% throughput drop beyond the 15% threshold: regression.
	slow := old
	slow.Extra = map[string]float64{"events/sec": 1_600_000, "peak_rss_bytes": 1 << 30, "nodes/op": 5}
	rep := Compare([]Result{old}, []Result{slow}, th)
	if !regressed(rep.Deltas, "events/sec") || rep.Regressions != 1 {
		t.Errorf("20%% events/sec drop not flagged: %+v", rep.Deltas)
	}

	// 20% throughput GAIN must not trip the rate gate.
	fast := old
	fast.Extra = map[string]float64{"events/sec": 2_400_000, "peak_rss_bytes": 1 << 30, "nodes/op": 5}
	if rep := Compare([]Result{old}, []Result{fast}, th); rep.Regressions != 0 {
		t.Errorf("throughput gain flagged as regression: %+v", rep.Deltas)
	}

	// 25% RSS growth beyond the 10% threshold: regression (lower is better).
	big := old
	big.Extra = map[string]float64{"events/sec": 2_000_000, "peak_rss_bytes": 5 << 28, "nodes/op": 5}
	if rep := Compare([]Result{old}, []Result{big}, th); !regressed(rep.Deltas, "peak_rss_bytes") {
		t.Errorf("25%% peak RSS growth not flagged: %+v", rep.Deltas)
	}

	// Ungated unit may move freely but still shows up in the deltas.
	noisy := old
	noisy.Extra = map[string]float64{"events/sec": 2_000_000, "peak_rss_bytes": 1 << 30, "nodes/op": 50}
	rep = Compare([]Result{old}, []Result{noisy}, th)
	if rep.Regressions != 0 {
		t.Errorf("ungated nodes/op gated anyway: %+v", rep.Deltas)
	}
	seen := false
	for _, d := range rep.Deltas {
		if d.Metric == "nodes/op" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("ungated extra metric missing from deltas: %+v", rep.Deltas)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("testdata/absent.json"); err == nil {
		t.Error("Load of a missing file must fail")
	}
	if _, err := Load("testdata/../benchcmp.go"); err == nil {
		t.Error("Load of non-JSON must fail")
	}
}
