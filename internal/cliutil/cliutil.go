// Package cliutil keeps the logpopt command-line tools consistent: one set
// of usage strings for the flags every tool accepts (-trace, -metrics,
// -serve), one error-message shape for unwritable output paths, and
// one-call startup for the telemetry server.
package cliutil

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
	"logpopt/internal/obs/serve"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/par"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
	"logpopt/internal/trace"
)

// Usage strings shared by every command's flag definitions, defaults
// included, so `-h` output reads the same across tools.
const (
	TraceUsage   = "write a Chrome/Perfetto trace of this run to `file` (default: no trace)"
	MetricsUsage = "print the metrics snapshot to stderr before exiting (default: off)"
	ReportUsage  = "write a versioned JSON run report to `file` (machine, finish vs bound, " +
		"causal breakdown, port stats, time series; default: no report)"
	ServeUsage = "serve live telemetry over HTTP on `address` (:0 picks a free port): " +
		"/metrics, /debug/pprof/, /traces/, /timeseries, /runs/, /compare, /regimes, /dashboard (default: off)"
	RunstoreUsage = "archive the run report into the persistent run store at `dir`, " +
		"keyed by (tool, op, constructor, machine) — the substrate for cmd/reportdiff " +
		"and the /regimes view (default: off)"
	RemoteUsage = "fetch the schedule from a running logpservd at `url` " +
		"(e.g. http://127.0.0.1:8080) instead of solving locally; " +
		"-render json emits the service's bytes verbatim (default: solve locally)"
)

// Machine validates the -P/-L/-o/-g flag values every tool accepts and
// builds the machine, with flag-shaped messages (the library's Validate
// reports model constraints; this reports which *flag* is bad). The postal
// path validates too — logp.Postal itself does not, which used to let
// `-postal -P 0` reach the schedule constructors.
func Machine(p int, l, o, g int64, postal bool) (logp.Machine, error) {
	switch {
	case p < 1:
		return logp.Machine{}, fmt.Errorf("-P must be at least 1, got %d", p)
	case l < 1:
		return logp.Machine{}, fmt.Errorf("-L must be at least 1, got %d", l)
	}
	if postal {
		return logp.Postal(p, logp.Time(l)), nil
	}
	switch {
	case o < 0:
		return logp.Machine{}, fmt.Errorf("-o must be non-negative, got %d", o)
	case g < 1:
		return logp.Machine{}, fmt.Errorf("-g must be at least 1, got %d", g)
	}
	return logp.New(p, logp.Time(l), logp.Time(o), logp.Time(g))
}

// Fail prints "<cmd>: <err>" to stderr and exits 1 — the uniform fatal-error
// shape of every tool.
func Fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(1)
}

// WriteError wraps an output-path failure so every tool reports unwritable
// paths identically: "cannot write <what> to <path>: <cause>".
func WriteError(what, path string, err error) error {
	return fmt.Errorf("cannot write %s to %s: %w", what, path, err)
}

// WriteTrace writes t to path and confirms on stderr, with the uniform
// error shape on failure.
func WriteTrace(cmd string, t *obs.Tracer, path string) error {
	if err := t.WriteFile(path); err != nil {
		return WriteError("trace", path, err)
	}
	fmt.Fprintf(os.Stderr, "%s: trace written to %s (%d events)\n", cmd, path, t.Len())
	return nil
}

// StreamTrace opens path and returns a tracer that streams every event
// straight to it through a bounded trace.Emitter, so tools tracing huge runs
// (P ~ 10^6 replays) never hold the span backlog in memory. The returned
// close function finalizes the JSON document, reports the uniform
// confirmation line on stderr, and must be called exactly once.
func StreamTrace(cmd, path string) (*obs.Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, WriteError("trace", path, err)
	}
	w := bufio.NewWriter(f)
	em := trace.NewEmitter(w, 0)
	t := obs.NewTracer()
	t.StreamTo(em)
	closer := func() error {
		err := em.Close()
		if err == nil {
			err = t.StreamErr()
		}
		if err == nil {
			err = w.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return WriteError("trace", path, err)
		}
		fmt.Fprintf(os.Stderr, "%s: trace streamed to %s (%d events)\n", cmd, path, t.Len())
		return nil
	}
	return t, closer, nil
}

// WriteMetricsFile writes the default registry's Prometheus exposition to
// path (the -metricsout snapshot CI uploads as an artifact).
func WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return WriteError("metrics snapshot", path, err)
	}
	werr := obs.Default.WritePrometheus(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return WriteError("metrics snapshot", path, werr)
	}
	return nil
}

// BuildReport assembles the standard run report every tool emits for
// -report: it replays s on the strict simulator with a time-series
// collector attached (windowed to ~256 samples however long the run is),
// so the report's finish and violation count certify what the engine
// actually executed, then attaches the causal breakdown, condensed port
// statistics, and the series summaries. bound is the operation's
// closed-form lower bound (-1: none known). crep may carry a pre-computed
// causal analysis; pass nil to have BuildReport run it.
func BuildReport(tool, op string, s *schedule.Schedule, origins map[int]schedule.Origin,
	bound logp.Time, crep *causal.Report) *report.Report {
	if crep == nil {
		crep = causal.Analyze(s, origins)
	}
	ts := timeseries.New(0)
	if w := int64(crep.Finish) / 256; w > 1 {
		ts.SetWindow(w)
	}
	eng := sim.New(s.M, sim.Strict)
	eng.TS = ts
	simRep := eng.Replay(s, origins)
	ts.Sample(int64(eng.Now()))

	r := report.New(tool, s.M)
	r.Op = op
	r.SetOutcome(simRep.Finish, bound)
	r.SetCausal(crep)
	if r.Breakdown.Total() != r.Finish {
		// The analyzer and the engine disagree on the finish — possible for
		// a diverging conformance case. The report certifies the engine's
		// run, so the breakdown (whose components must sum to the finish)
		// is omitted rather than attached inconsistently.
		r.Breakdown = nil
	}
	r.Stats = report.FromStats(schedule.ComputeStats(eng.Executed(), simRep.Finish, nil))
	r.Violations = len(simRep.Violations)
	r.SetTimeseries(ts)
	return r
}

// WriteReport validates r and writes it to path with the uniform error
// shape and confirmation line. Validation before writing means a tool can
// never leave a malformed artifact behind: a report that fails its own
// schema is a bug, reported as one.
func WriteReport(cmd string, r *report.Report, path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("%s: internal error building run report: %w", cmd, err)
	}
	if err := r.WriteFile(path); err != nil {
		return WriteError("run report", path, err)
	}
	fmt.Fprintf(os.Stderr, "%s: run report written to %s\n", cmd, path)
	return nil
}

// Archive appends r to the run store at dir (creating it on first use) and
// confirms the entry name on stderr, so every tool's -runstore flag behaves
// identically. The store validates before filing, so a report that fails its
// own schema never lands in the archive.
func Archive(cmd, dir string, r *report.Report) error {
	s, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	e, err := s.Put(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: run report archived as %s in %s\n", cmd, e.Name(), dir)
	return nil
}

// serveSampleInterval is the wall-clock cadence of the collector StartServe
// attaches for /timeseries and /dashboard.
const serveSampleInterval = time.Second

// StandardCollector builds the wall-clock collector StartServe serves:
// process RSS and goroutine count, worker-pool occupancy, and the
// process-wide counters that move during long solves and sweeps. The
// returned collector has probes registered but no sampler running; callers
// drive it with Start or attach it to an engine.
func StandardCollector() *timeseries.Collector {
	ts := timeseries.New(0)
	ts.ProbeProcess()
	ts.Probe("par.active", par.Active)
	for _, name := range []string{
		"sim.events.processed", "sim.replays", "sim.sends", "sim.violations",
		"par.portfolio.races", "par.portfolio.attempts",
		"logtime.builder.hits", "logtime.builder.misses",
	} {
		ts.ProbeCounter(name, obs.Default.Counter(name))
	}
	return ts
}

// StartServe starts the telemetry server over the default metrics registry
// when addr is non-empty, announcing the bound address on stderr. A non-nil
// tracer is exposed live at /traces/live; a non-empty storeDir opens (or
// creates) the run store there and attaches it, so /runs/, /compare, and
// /regimes cover the archive a tool's -runstore flag writes to. A standard
// wall-clock collector (process RSS, goroutines, pool occupancy, hot
// registry counters) feeds /timeseries and /dashboard, sampling once a
// second until the server closes. The caller owns the returned server (nil
// when addr is empty) and should Close it on shutdown.
func StartServe(cmd, addr string, tracer *obs.Tracer, storeDir string) (*serve.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv := serve.New(nil)
	if tracer != nil {
		if err := srv.AddTracer("live", tracer); err != nil {
			return nil, err
		}
	}
	if storeDir != "" {
		st, err := runstore.Open(storeDir)
		if err != nil {
			return nil, err
		}
		srv.SetStore(st)
	}
	ts := StandardCollector()
	srv.SetTimeseries(ts)
	srv.OnClose(ts.Start(serveSampleInterval))
	bound, err := srv.Start(addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: telemetry at http://%s/ (/metrics, /debug/pprof/, /traces/, /timeseries, /runs/, /dashboard)\n", cmd, bound)
	return srv, nil
}
