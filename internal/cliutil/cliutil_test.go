package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
)

// TestMachineValidation covers the shared -P/-L/-o/-g validation every tool
// routes through: each bad flag is named in the error, and the postal path
// validates too (it used to bypass validation entirely).
func TestMachineValidation(t *testing.T) {
	cases := []struct {
		name       string
		p          int
		l, o, g    int64
		postal     bool
		wantErr    string // "" means the machine must build
		wantP      int
		wantPostal bool
	}{
		{name: "valid", p: 8, l: 6, o: 2, g: 4, wantP: 8},
		{name: "P=1 is legal", p: 1, l: 1, o: 0, g: 1, wantP: 1},
		{name: "zero P", p: 0, l: 6, o: 2, g: 4, wantErr: "-P"},
		{name: "negative P", p: -4, l: 6, o: 2, g: 4, wantErr: "-P"},
		{name: "zero L", p: 8, l: 0, o: 2, g: 4, wantErr: "-L"},
		{name: "negative L", p: 8, l: -6, o: 2, g: 4, wantErr: "-L"},
		{name: "negative o", p: 8, l: 6, o: -1, g: 4, wantErr: "-o"},
		{name: "zero g", p: 8, l: 6, o: 2, g: 0, wantErr: "-g"},
		{name: "postal valid", p: 10, l: 3, postal: true, wantP: 10, wantPostal: true},
		{name: "postal zero P", p: 0, l: 3, postal: true, wantErr: "-P"},
		{name: "postal zero L", p: 10, l: 0, postal: true, wantErr: "-L"},
		{name: "postal ignores bad o/g", p: 10, l: 3, o: -5, g: 0, postal: true, wantP: 10, wantPostal: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Machine(tc.p, tc.l, tc.o, tc.g, tc.postal)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("accepted: %v", m)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not name %s", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if m.P != tc.wantP {
				t.Fatalf("P = %d, want %d", m.P, tc.wantP)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("built machine fails Validate: %v", err)
			}
			if tc.wantPostal && (m.O != 0 || m.G != 1) {
				t.Fatalf("postal machine has o=%d g=%d", m.O, m.G)
			}
		})
	}
}

// TestMachineMatchesLibraryValidation: anything the helper accepts, the
// model's own Validate accepts, and vice versa for the flag ranges.
func TestMachineMatchesLibraryValidation(t *testing.T) {
	for p := -1; p <= 2; p++ {
		for l := int64(-1); l <= 2; l++ {
			m, err := Machine(p, l, 1, 1, false)
			_, lerr := logp.New(p, logp.Time(l), 1, 1)
			if (err == nil) != (lerr == nil) {
				t.Fatalf("P=%d L=%d: helper err=%v, logp err=%v", p, l, err, lerr)
			}
			if err == nil && m != logp.MustNew(p, logp.Time(l), 1, 1) {
				t.Fatalf("P=%d L=%d: machines differ", p, l)
			}
		}
	}
}

func TestWriteError(t *testing.T) {
	err := WriteError("schedule JSON", "/nope/x.json", os.ErrPermission)
	want := "cannot write schedule JSON to /nope/x.json"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
}

func TestWriteMetricsFile(t *testing.T) {
	obs.Default.Counter("cliutil.test.writes").Inc() // the registry starts empty in this process
	path := filepath.Join(t.TempDir(), "m.prom")
	if err := WriteMetricsFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty metrics snapshot")
	}
	if err := WriteMetricsFile(filepath.Join(path, "sub", "x.prom")); err == nil {
		t.Fatal("writing under a file path succeeded")
	}
}
