// Package combine implements Section 4.2 of the paper: the
// combining-broadcast problem (today usually called all-reduce) and
// all-to-one reduction.
//
// Each processor i holds a value x_i; all processors must learn
// x_0 + ... + x_{P-1} for an associative, commutative operation '+', in the
// postal model with combining taking zero time.
//
// Theorem 4.1's algorithm: fix the completion time T and let P = P(T) = f_T.
// At each time step j = 0, 1, ..., T-L, every processor i sends its current
// value to processor i + f_{j+L-1} (mod P); a value sent at time j arrives at
// j+L, is combined into the destination's current value, and the result is
// what the destination sends from then on. The invariant is that at time j
// processor i holds exactly x[i-f_j+1 : i] — the cyclic segment of length
// f_j ending at i — whence at time T every processor holds all P values.
// All-to-all broadcast with combining thus takes no longer than all-to-one
// reduction.
//
// For non-commutative operations the algorithm still computes, at processor
// i, the cyclic product x_{i+1} · x_{i+2} · ... · x_{i+P} in index order — a
// rotation of the full product; tests exploit this to verify the combining
// order exactly. (The paper's footnote on renumbering applies: commutativity
// is only needed if all processors must hold the identical value.)
package combine

import (
	"fmt"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// TimeFor returns the smallest T such that P(T) >= p in the postal model
// with latency l: the optimal combining-broadcast (and reduction) time.
func TimeFor(l int, p int) int {
	return core.SeqFor(l).InvF(int64(p))
}

// Exact reports whether p is exactly P(T) for some T (i.e. p = f_T), the
// regime in which Theorem 4.1's schedule applies verbatim, and returns that T.
func Exact(l int, p int) (int, bool) {
	t := TimeFor(l, p)
	return t, core.SeqFor(l).F(t) == int64(p)
}

// Schedule returns the Theorem 4.1 communication schedule for latency l and
// horizon T, on P = f_T processors. Message ids encode (step, sender):
// id = j*P + i.
func Schedule(l int, T int) *schedule.Schedule {
	seq := core.NewSeq(l)
	p := int(seq.F(T))
	m := logp.Postal(p, logp.Time(l))
	s := &schedule.Schedule{M: m}
	if p == 1 {
		return s
	}
	for j := 0; j <= T-l; j++ {
		off := int(seq.F(j+l-1)) % p
		for i := 0; i < p; i++ {
			to := (i + off) % p
			id := j*p + i
			s.Send(i, logp.Time(j), id, to)
			s.Recv(to, logp.Time(j+l), id, i)
		}
	}
	return s
}

// Run executes the algorithm with real values and a binary operation,
// returning each processor's final value at time T. The operation is applied
// as incoming-segment op current-segment, preserving cyclic index order, so
// for a non-commutative op processor i ends with
// x_{i+1} op x_{i+2} op ... op x_{i+P}.
func Run[V any](l int, T int, vals []V, op func(V, V) V) ([]V, error) {
	seq := core.NewSeq(l)
	p := int(seq.F(T))
	if len(vals) != p {
		return nil, fmt.Errorf("combine: %d values for P(T)=%d", len(vals), p)
	}
	cur := append([]V(nil), vals...)
	if p == 1 {
		return cur, nil
	}
	type msg struct {
		to     int
		val    V
		arrive int
	}
	var inflight []msg
	for j := 0; j <= T; j++ {
		// Combine arrivals due at j (sent at j-L).
		rest := inflight[:0]
		for _, ms := range inflight {
			if ms.arrive == j {
				cur[ms.to] = op(ms.val, cur[ms.to])
			} else {
				rest = append(rest, ms)
			}
		}
		inflight = rest
		// Send at j (if within the sending window).
		if j <= T-l {
			off := int(seq.F(j+l-1)) % p
			for i := 0; i < p; i++ {
				inflight = append(inflight, msg{to: (i + off) % p, val: cur[i], arrive: j + l})
			}
		}
	}
	if len(inflight) != 0 {
		return nil, fmt.Errorf("combine: %d messages still in flight at T", len(inflight))
	}
	return cur, nil
}

// Segment is a cyclic index interval of values held by a processor: the
// combined value covers indices Start, Start+1, ..., Start+Len-1 (mod P).
type Segment struct {
	Start, Len int
}

// RunSegments executes the algorithm symbolically, tracking which input
// indices each processor's value covers, and verifies Theorem 4.1's
// invariant at every step: at time j, processor i covers exactly the segment
// of length f_j ending at i. It returns the final segments.
func RunSegments(l int, T int) ([]Segment, error) {
	seq := core.NewSeq(l)
	p := int(seq.F(T))
	segs, err := Run(l, T, initialSegments(p), func(a, b Segment) Segment {
		// a is the incoming (lower) segment, b the current one; they must
		// be adjacent cyclically: a followed by b.
		if (a.Start+a.Len)%p != b.Start {
			panic(fmt.Sprintf("combine: non-adjacent segments %+v + %+v (P=%d)", a, b, p))
		}
		return Segment{Start: a.Start, Len: a.Len + b.Len}
	})
	if err != nil {
		return nil, err
	}
	for i, s := range segs {
		if s.Len != p {
			return nil, fmt.Errorf("combine: proc %d covers %d of %d values", i, s.Len, p)
		}
		if wantStart := ((i+1)%p + p) % p; s.Start != wantStart {
			return nil, fmt.Errorf("combine: proc %d segment starts at %d, want %d", i, s.Start, wantStart)
		}
	}
	return segs, nil
}

func initialSegments(p int) []Segment {
	segs := make([]Segment, p)
	for i := range segs {
		segs[i] = Segment{Start: i, Len: 1}
	}
	return segs
}

// ReduceSchedule returns the all-to-one reduction schedule obtained by
// reversing an optimal single-item broadcast tree (Section 4.2's opening
// remark): the processor assigned to a tree node with delay d sends its
// combined value at time B(P)-d; the root (processor 0) holds the reduction
// of all P values at time B(P). Combining is charged zero time (postal-model
// convention of Section 4).
//
// Message ids are the sending processor's index.
func ReduceSchedule(m logp.Machine, p int) *schedule.Schedule {
	return ReduceScheduleWith(m, p, core.OptimalTree)
}

// ReduceScheduleWith is ReduceSchedule with the broadcast-tree constructor
// injected; the search-free internal/logtime builder produces the identical
// tree and hence the identical reduction schedule.
func ReduceScheduleWith(m logp.Machine, p int, tb core.TreeBuilder) *schedule.Schedule {
	tr := tb(m, p)
	T := tr.MaxLabel()
	s := &schedule.Schedule{M: m}
	for ni, n := range tr.Nodes {
		for _, ci := range n.Children {
			// Broadcast: parent sends at st, child label = st + L + 2o.
			// Reversed: the child sends at T - label(child) = T - st - L - 2o,
			// so the parent's reception starts at T - st - o and the partial
			// sum is available there at T - st, in time for the parent's own
			// send at T - label(parent) <= T - st.
			at := T - tr.Nodes[ci].Label
			s.Send(ci, at, ci, ni)
			s.Recv(ni, at+m.O+m.L, ci, ci)
		}
	}
	return s
}

// ReduceRun executes a reversed-tree reduction with real values and a binary
// operation (combining charged zero time), returning the root's final value
// and the completion time B(P).
func ReduceRun[V any](m logp.Machine, vals []V, op func(V, V) V) (V, logp.Time, error) {
	var zero V
	p := len(vals)
	if p < 1 || p > m.P {
		return zero, 0, fmt.Errorf("combine: %d values for P=%d", p, m.P)
	}
	tr := core.OptimalTree(m, p)
	T := tr.MaxLabel()
	cur := append([]V(nil), vals...)
	type msg struct {
		to     int
		val    V
		arrive logp.Time
	}
	var msgs []msg
	// Collect sends in time order: child ci sends to parent at T - label(ci).
	type ev struct {
		from, to int
		at       logp.Time
	}
	var evs []ev
	for ni, n := range tr.Nodes {
		for _, ci := range n.Children {
			evs = append(evs, ev{from: ci, to: ni, at: T - tr.Nodes[ci].Label})
		}
	}
	// Process step by step.
	for t := logp.Time(0); t <= T; t++ {
		// Arrivals combine first (combine-then-send discipline).
		rest := msgs[:0]
		for _, ms := range msgs {
			if ms.arrive == t {
				cur[ms.to] = op(cur[ms.to], ms.val)
			} else {
				rest = append(rest, ms)
			}
		}
		msgs = rest
		for _, e := range evs {
			if e.at == t {
				msgs = append(msgs, msg{to: e.to, val: cur[e.from], arrive: t + m.L + 2*m.O})
			}
		}
	}
	if len(msgs) != 0 {
		return zero, 0, fmt.Errorf("combine: %d messages unresolved after T", len(msgs))
	}
	return cur[0], T, nil
}
