package combine

import (
	"fmt"
	"testing"
	"testing/quick"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

func TestTimeFor(t *testing.T) {
	// L=3: f = 1,1,1,2,3,4,6,9,... so 9 processors combine in time 7.
	if got := TimeFor(3, 9); got != 7 {
		t.Fatalf("TimeFor(3,9) = %d, want 7", got)
	}
	if got := TimeFor(3, 10); got != 8 {
		t.Fatalf("TimeFor(3,10) = %d, want 8", got)
	}
	if _, ok := Exact(3, 9); !ok {
		t.Fatal("Exact(3,9) should hold")
	}
	if _, ok := Exact(3, 10); ok {
		t.Fatal("Exact(3,10) should not hold")
	}
}

func TestScheduleValid(t *testing.T) {
	for l := 2; l <= 6; l++ {
		for T := l; T <= l+8; T++ {
			s := Schedule(l, T)
			if vs := schedule.Validate(s); len(vs) != 0 {
				t.Fatalf("L=%d T=%d: %v", l, T, vs[0])
			}
		}
	}
}

func TestTheorem41Sum(t *testing.T) {
	// Integer sum: every processor must end with the total.
	for l := 2; l <= 5; l++ {
		for T := l; T <= l+9; T++ {
			p := int(core.NewSeq(l).F(T))
			vals := make([]int, p)
			want := 0
			for i := range vals {
				vals[i] = i*i + 1
				want += vals[i]
			}
			got, err := Run(l, T, vals, func(a, b int) int { return a + b })
			if err != nil {
				t.Fatalf("L=%d T=%d: %v", l, T, err)
			}
			for i, v := range got {
				if v != want {
					t.Fatalf("L=%d T=%d: proc %d has %d, want %d", l, T, i, v, want)
				}
			}
		}
	}
}

func TestTheorem41NonCommutativeRotation(t *testing.T) {
	// With string concatenation, processor i must end with the cyclic
	// product x_{i+1} x_{i+2} ... x_{i+P} — order preserved exactly.
	l, T := 3, 7
	p := int(core.NewSeq(l).F(T)) // 9
	vals := make([]string, p)
	for i := range vals {
		vals[i] = fmt.Sprintf("<%d>", i)
	}
	got, err := Run(l, T, vals, func(a, b string) string { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := ""
		for j := 1; j <= p; j++ {
			want += vals[(i+j)%p]
		}
		if got[i] != want {
			t.Fatalf("proc %d: %q, want %q", i, got[i], want)
		}
	}
}

func TestRunSegmentsInvariant(t *testing.T) {
	for l := 2; l <= 6; l++ {
		for T := l; T <= l+9; T++ {
			if _, err := RunSegments(l, T); err != nil {
				t.Fatalf("L=%d T=%d: %v", l, T, err)
			}
		}
	}
}

func TestRunSegmentsProperty(t *testing.T) {
	f := func(l, dt uint8) bool {
		ll := int(l%6) + 2
		T := ll + int(dt%10)
		_, err := RunSegments(ll, T)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(3, 7, []int{1, 2, 3}, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("wrong value count accepted")
	}
}

func TestTrivial(t *testing.T) {
	// T < L: P(T) = 1, nothing to do.
	got, err := Run(3, 2, []int{5}, func(a, b int) int { return a + b })
	if err != nil || len(got) != 1 || got[0] != 5 {
		t.Fatalf("trivial run: %v %v", got, err)
	}
	s := Schedule(3, 1)
	if len(s.Events) != 0 {
		t.Fatal("trivial schedule should be empty")
	}
}

func TestReduceSchedule(t *testing.T) {
	for _, m := range []logp.Machine{logp.Postal(9, 3), logp.MustNew(8, 6, 2, 4)} {
		s := ReduceSchedule(m, m.P)
		if vs := schedule.Validate(s); len(vs) != 0 {
			t.Fatalf("%v: %v", m, vs[0])
		}
		// Completion: last reception availability = B(P).
		if got, want := s.LastRecv(), core.B(m, m.P); got != want {
			t.Fatalf("%v: reduce completes at %d, want B=%d", m, got, want)
		}
	}
}

func TestReduceRunSum(t *testing.T) {
	for _, m := range []logp.Machine{logp.Postal(9, 3), logp.Postal(13, 2), logp.MustNew(8, 6, 2, 4)} {
		vals := make([]int, m.P)
		want := 0
		for i := range vals {
			vals[i] = 3*i + 1
			want += vals[i]
		}
		got, T, err := ReduceRun(m, vals, func(a, b int) int { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: reduce = %d, want %d", m, got, want)
		}
		if wantT := core.B(m, m.P); T != wantT {
			t.Fatalf("%v: reduce time %d, want %d", m, T, wantT)
		}
	}
}

func TestReduceRunValidation(t *testing.T) {
	m := logp.Postal(4, 2)
	if _, _, err := ReduceRun(m, []int{1, 2, 3, 4, 5}, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("too many values accepted")
	}
	if _, _, err := ReduceRun(m, nil, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("empty values accepted")
	}
}

func TestCombiningNoSlowerThanReduction(t *testing.T) {
	// Section 4.2's headline: all-to-all broadcast with combining takes no
	// longer than all-to-one reduction, for P = P(T).
	for l := 2; l <= 5; l++ {
		seq := core.NewSeq(l)
		for T := l; T <= l+8; T++ {
			p := int(seq.F(T))
			m := logp.Postal(p, logp.Time(l))
			reduceT := core.B(m, p)
			if logp.Time(T) != reduceT {
				t.Fatalf("L=%d P=%d: combining time %d != reduction time %d", l, p, T, reduceT)
			}
		}
	}
}

func TestScanRunInt(t *testing.T) {
	for _, m := range []logp.Machine{logp.Postal(9, 3), logp.Postal(21, 2), logp.MustNew(8, 6, 2, 4)} {
		vals := make([]int, m.P)
		for i := range vals {
			vals[i] = i*i + 1
		}
		res, T, err := ScanRun(m, vals, func(a, b int) int { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 * core.B(m, m.P); T != want {
			t.Fatalf("%v: scan time %d, want %d", m, T, want)
		}
		// Sequential scan in rank order must match.
		rank := ScanRanks(m, m.P)
		byRank := make([]int, m.P) // node index at each rank
		for ni, r := range rank {
			byRank[r] = ni
		}
		run := 0
		for r := 0; r < m.P; r++ {
			ni := byRank[r]
			run += vals[ni]
			if res[ni] != run {
				t.Fatalf("%v: node %d (rank %d) = %d, want %d", m, ni, r, res[ni], run)
			}
		}
	}
}

func TestScanRunNonCommutative(t *testing.T) {
	m := logp.Postal(13, 3)
	vals := make([]string, m.P)
	for i := range vals {
		vals[i] = fmt.Sprintf("<%d>", i)
	}
	res, _, err := ScanRun(m, vals, func(a, b string) string { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	rank := ScanRanks(m, m.P)
	byRank := make([]int, m.P)
	for ni, r := range rank {
		byRank[r] = ni
	}
	run := ""
	for r := 0; r < m.P; r++ {
		ni := byRank[r]
		run += vals[ni]
		if res[ni] != run {
			t.Fatalf("node %d (rank %d): %q, want %q", ni, r, res[ni], run)
		}
	}
}

func TestScanRanksIsPermutation(t *testing.T) {
	m := logp.Postal(19, 3)
	rank := ScanRanks(m, m.P)
	seen := make([]bool, m.P)
	for _, r := range rank {
		if r < 0 || r >= m.P || seen[r] {
			t.Fatalf("ranks not a permutation: %v", rank)
		}
		seen[r] = true
	}
	if rank[0] != 0 {
		t.Fatalf("root rank %d, want 0", rank[0])
	}
}

func TestScanScheduleValid(t *testing.T) {
	for _, m := range []logp.Machine{logp.Postal(9, 3), logp.MustNew(8, 6, 2, 4), logp.Postal(34, 2)} {
		s := ScanSchedule(m, m.P)
		if vs := schedule.Validate(s); len(vs) != 0 {
			t.Fatalf("%v: %v", m, vs[0])
		}
		if got, want := s.LastRecv(), 2*core.B(m, m.P); got != want {
			t.Fatalf("%v: scan schedule completes at %d, want %d", m, got, want)
		}
	}
}

func TestScanRejects(t *testing.T) {
	m := logp.Postal(4, 2)
	if _, _, err := ScanRun(m, make([]int, 5), func(a, b int) int { return a + b }); err == nil {
		t.Fatal("too many values accepted")
	}
}
