package combine

import (
	"fmt"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Scan (parallel prefix) is a natural companion of Section 4.2's reduction,
// included as an extension: it is not treated in the paper. The construction
// is the classic two-sweep on the optimal broadcast tree:
//
//   - up-sweep: the time reversal of the optimal broadcast (exactly the
//     paper's reduction pattern) computes every node's subtree sum, arriving
//     at the root at B(P);
//   - down-sweep: the optimal broadcast pattern, started at B(P), carries to
//     each node its exclusive prefix (the parent adds its own value and the
//     earlier siblings' subtree sums before forwarding).
//
// Completion: exactly 2 B(P), a factor 2 from the trivial lower bound B(P)
// (the last processor cannot learn anything before L+2o, and needs
// information from every lower-ranked processor).
//
// The prefix order is the tree's preorder (parent before its children,
// children in sibling order): ScanRanks returns the rank permutation so
// callers can lay their data out accordingly.

// ScanRanks returns rank[node] for the preorder ranking of the optimal
// broadcast tree ß(p) on machine m: the scan computes, at the processor
// assigned to node i, the prefix of all values with rank <= rank[i].
func ScanRanks(m logp.Machine, p int) []int {
	tr := core.OptimalTree(m, p)
	rank := make([]int, tr.P())
	next := 0
	var rec func(ni int)
	rec = func(ni int) {
		rank[ni] = next
		next++
		for _, c := range tr.Nodes[ni].Children {
			rec(c)
		}
	}
	rec(0)
	return rank
}

// ScanRun executes the two-sweep inclusive scan with real values and a
// binary operation (combining charged zero time, Section 4's convention).
// vals[i] is the value at the processor assigned to tree node i; the result
// res[i] is the inclusive prefix over all nodes with preorder rank <=
// rank[i], combined strictly in rank order (safe for non-commutative op).
// The returned time is 2 B(P).
func ScanRun[V any](m logp.Machine, vals []V, op func(V, V) V) ([]V, logp.Time, error) {
	p := len(vals)
	if p < 1 || p > m.P {
		return nil, 0, fmt.Errorf("combine: %d values for P=%d", p, m.P)
	}
	tr := core.OptimalTree(m, p)
	T := tr.MaxLabel()

	// Up-sweep: subtree sums in preorder-consistent order: a node's subtree
	// sum is own value, then each child's subtree in sibling order.
	subtree := make([]V, p)
	var up func(ni int) V
	up = func(ni int) V {
		acc := vals[ni]
		for _, c := range tr.Nodes[ni].Children {
			acc = op(acc, up(c))
		}
		subtree[ni] = acc
		return acc
	}
	up(0)

	// Down-sweep: exclusive prefixes. The root's exclusive prefix is empty;
	// we track (value, nonEmpty) to avoid requiring an identity element.
	type pre struct {
		v  V
		ok bool
	}
	excl := make([]pre, p)
	res := make([]V, p)
	var down func(ni int, px pre)
	down = func(ni int, px pre) {
		excl[ni] = px
		if px.ok {
			res[ni] = op(px.v, vals[ni])
		} else {
			res[ni] = vals[ni]
		}
		// Child i's exclusive prefix: parent's inclusive value plus the
		// earlier siblings' subtree sums.
		run := res[ni]
		for _, c := range tr.Nodes[ni].Children {
			down(c, pre{v: run, ok: true})
			run = op(run, subtree[c])
		}
	}
	down(0, pre{})
	return res, 2 * T, nil
}

// ScanSchedule returns the communication schedule of the two-sweep scan:
// the reversed-tree reduction (messages carry subtree sums, item id = the
// sending node) followed at time B(P) by the forward broadcast (messages
// carry exclusive prefixes, item id = p + receiving node).
func ScanSchedule(m logp.Machine, p int) *schedule.Schedule {
	return ScanScheduleWith(m, p, core.OptimalTree)
}

// ScanScheduleWith is ScanSchedule with the broadcast-tree constructor
// injected (see ReduceScheduleWith).
func ScanScheduleWith(m logp.Machine, p int, tb core.TreeBuilder) *schedule.Schedule {
	tr := tb(m, p)
	T := tr.MaxLabel()
	s := &schedule.Schedule{M: m}
	for ni, nd := range tr.Nodes {
		for _, ci := range nd.Children {
			// Up-sweep: child ci -> parent, as in ReduceSchedule.
			at := T - tr.Nodes[ci].Label
			s.Send(ci, at, ci, ni)
			s.Recv(ni, at+m.O+m.L, ci, ci)
			// Down-sweep: parent -> child, the broadcast pattern offset by T.
			st := T + tr.Nodes[ci].Label - m.D()
			s.Send(ni, st, p+ci, ci)
			s.Recv(ci, st+m.O+m.L, p+ci, ni)
		}
	}
	return s
}
