// Package conform is a differential conformance harness for the three
// independent implementations of the LogP machine in this repository: the
// discrete-event simulator (internal/sim, Strict and Buffered), the
// goroutine runtime (internal/runtime), and the schedule validator
// (internal/schedule, as an analytic backend). Each is wrapped as a Backend
// that replays a schedule from item origins and reports the executed events,
// the finish time, the recorded violations, and the buffer high-water mark;
// the Checker replays every case on all backends and diffs the results under
// the backend-equivalence contract (see Check).
package conform

import (
	"fmt"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/runtime"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

// Case is one conformance input: a schedule plus the origin map saying where
// each item starts.
type Case struct {
	Name    string
	S       *schedule.Schedule
	Origins map[int]schedule.Origin
}

// Result is what one backend reports for one case.
type Result struct {
	Backend    string
	Violations []schedule.Violation
	Trace      *schedule.Schedule // executed (or derived) sends and recvs
	Finish     logp.Time          // time the last availability lands
	MaxBuffer  int                // buffer/queue high-water mark (buffered backends)
	Stats      schedule.Stats     // per-processor breakdown (executing backends only)
}

// Clean reports whether the backend saw no violations.
func (r Result) Clean() bool { return len(r.Violations) == 0 }

// Backend replays conformance cases on one machine implementation.
type Backend interface {
	Name() string
	Replay(c Case) Result
}

// SimBackend replays cases on the discrete-event simulator, recycling one
// engine across cases (Reset + Replay reuses every internal allocation).
// When Tracer is set, every replay appends its flight recording to it;
// TracePID picks the process track (0 means the simulator's default).
type SimBackend struct {
	Mode     sim.Mode
	Tracer   *obs.Tracer
	TracePID int
	eng      *sim.Engine
}

func (b *SimBackend) Name() string {
	if b.Mode == sim.Buffered {
		return "sim-buffered"
	}
	return "sim-strict"
}

func (b *SimBackend) Replay(c Case) Result {
	if b.eng == nil {
		b.eng = sim.New(c.S.M, b.Mode)
	} else {
		b.eng.Reset(c.S.M, b.Mode)
	}
	b.eng.Tracer = b.Tracer
	b.eng.TracePID = b.TracePID
	rep := b.eng.Replay(c.S, c.Origins)
	return Result{
		Backend:    b.Name(),
		Violations: rep.Violations,
		Trace:      b.eng.Executed(),
		Finish:     rep.Finish,
		MaxBuffer:  rep.MaxBuffer,
		Stats:      b.eng.Stats(),
	}
}

// RuntimeBackend replays cases on the goroutine runtime via ReplayHandlers.
// When Tracer is set, every replay appends its flight recording to it;
// TracePID picks the process track (0 means the runtime's default).
type RuntimeBackend struct {
	Mode     runtime.Mode
	Tracer   *obs.Tracer
	TracePID int
}

func (b RuntimeBackend) Name() string {
	if b.Mode == runtime.Buffered {
		return "runtime-buffered"
	}
	return "runtime-strict"
}

func (b RuntimeBackend) Replay(c Case) Result {
	res := Result{Backend: b.Name()}
	// The handler table is indexed by sender, so sends from an out-of-range
	// processor cannot be replayed at all; record them up front the way the
	// other backends do.
	for _, ev := range c.S.Events {
		if ev.Op == schedule.OpSend && (ev.Proc < 0 || ev.Proc >= c.S.M.P) {
			res.Violations = append(res.Violations, schedule.Violation{
				Kind: schedule.VBadProc,
				Msg:  fmt.Sprintf("runtime: send from out-of-range proc %d", ev.Proc),
			})
		}
	}
	rt, err := runtime.New(c.S.M, b.Mode, runtime.ReplayHandlers(c.S, c.Origins))
	if err != nil {
		res.Violations = append(res.Violations, schedule.Violation{
			Kind: "setup", Msg: err.Error(),
		})
		res.Trace = &schedule.Schedule{M: c.S.M}
		return res
	}
	rt.Tracer = b.Tracer
	rt.TracePID = b.TracePID
	rt.Run(runtime.Horizon(c.S))
	limit := runtime.DrainHorizon(c.S)
	for rt.Pending() && rt.Now() < limit {
		rt.Step()
	}
	res.Violations = append(res.Violations, rt.Violations()...)
	res.Trace = rt.Trace()
	res.Finish = finishOf(res.Trace, c.Origins)
	res.MaxBuffer = rt.MaxQueue()
	res.Stats = rt.Stats(res.Finish)
	return res
}

// ValidatorBackend checks cases analytically with the schedule validator: it
// derives the strict-mode receptions (send time + o + L for every send with
// a reachable destination) and runs Validate plus CheckAvailability over the
// result. It executes nothing, so it belongs to the strict group only.
type ValidatorBackend struct{}

func (ValidatorBackend) Name() string { return "validator" }

func (ValidatorBackend) Replay(c Case) Result {
	m := c.S.M
	d := &schedule.Schedule{M: m}
	for _, ev := range c.S.Events {
		if ev.Op != schedule.OpSend {
			continue
		}
		d.Send(ev.Proc, ev.Time, ev.Item, ev.Peer)
		if ev.Peer >= 0 && ev.Peer < m.P && ev.Peer != ev.Proc {
			d.Recv(ev.Peer, ev.Time+m.O+m.L, ev.Item, ev.Proc)
		}
	}
	vs := schedule.Validate(d)
	vs = append(vs, schedule.CheckAvailability(d, c.Origins)...)
	d.Sort()
	return Result{
		Backend:    "validator",
		Violations: vs,
		Trace:      d,
		Finish:     finishOf(d, c.Origins),
	}
}

// finishOf recomputes a run's finish time from its executed trace: each
// (proc, item) availability is the earliest of its origin time there and
// reception time + o over the trace's recv events; the finish is the latest
// availability. This is the same quantity the simulator reports as
// Report.Finish, derived independently so the two can be cross-checked.
func finishOf(tr *schedule.Schedule, origins map[int]schedule.Origin) logp.Time {
	type key struct{ proc, item int }
	avail := make(map[key]logp.Time)
	for item, og := range origins {
		k := key{og.Proc, item}
		if t, ok := avail[k]; !ok || og.Time < t {
			avail[k] = og.Time
		}
	}
	for _, ev := range tr.Events {
		if ev.Op != schedule.OpRecv {
			continue
		}
		k := key{ev.Proc, ev.Item}
		at := ev.Time + tr.M.O
		if t, ok := avail[k]; !ok || at < t {
			avail[k] = at
		}
	}
	var mx logp.Time
	for _, t := range avail {
		if t > mx {
			mx = t
		}
	}
	return mx
}
