package conform

import (
	"fmt"

	"logpopt/internal/alltoall"
	"logpopt/internal/combine"
	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// PaperCases adapts every schedule constructor in the repository — optimal
// broadcast, k-item broadcast (grid, general, greedy strict and buffered,
// staggered), continuous broadcast, all-to-all with scatter/gather, combine
// (reduce and scan), and summation — into conformance cases. Constructors
// that cannot build an instance for the chosen parameters are skipped; the
// adapters never fail, so the list is safe to iterate in tests, the fuzz
// target, and the CLI.
func PaperCases() []Case {
	var cs []Case
	add := func(name string, s *schedule.Schedule, og map[int]schedule.Origin) {
		cs = append(cs, Case{Name: name, S: s, Origins: og})
	}

	for _, m := range []logp.Machine{
		logp.MustNew(8, 6, 2, 4),
		logp.Postal(16, 3),
		logp.MustNew(12, 7, 1, 3),
	} {
		add("broadcast/"+m.String(), core.BroadcastSchedule(m, 0), core.Origins(0))
	}

	if _, s, err := kitem.ViaContinuous(3, 8, 10); err == nil {
		add("kitem-grid/l3-t8-k10", s, kitem.Origins(10))
	}
	if _, s, err := kitem.OptimalGeneral(3, 12, 6); err == nil {
		add("kitem-general/l3-p12-k6", s, kitem.Origins(6))
	}
	for _, mode := range []kitem.Mode{kitem.Strict, kitem.Buffered} {
		if r, err := kitem.Greedy(4, 9, 5, mode); err == nil {
			add(fmt.Sprintf("kitem-greedy/mode%d", mode), r.Schedule, kitem.Origins(5))
		}
	}
	if r, err := kitem.Staggered(4, 10, 6); err == nil {
		add("kitem-staggered/l4-p10-k6", r.Schedule, kitem.Origins(6))
	}

	if _, s, err := continuous.SolveAndSchedule(4, 10, 7); err == nil {
		add("continuous/l4-t10-k7", s, continuous.Origins(7))
	}

	for _, p := range []int{5, 9} {
		m := logp.Postal(p, 3)
		add(fmt.Sprintf("alltoall/p%d", p), alltoall.Schedule(m, 2), alltoall.Origins(m, 2))
	}
	{
		m := logp.MustNew(9, 6, 2, 4)
		og := make(map[int]schedule.Origin)
		for j := 1; j < m.P; j++ {
			og[j] = schedule.Origin{Proc: 0}
		}
		add("scatter", alltoall.Scatter(m), og)
		og2 := make(map[int]schedule.Origin)
		for j := 1; j < m.P; j++ {
			og2[j] = schedule.Origin{Proc: j}
		}
		add("gather", alltoall.Gather(m), og2)
	}

	{
		m := logp.Postal(13, 3)
		red := combine.ReduceSchedule(m, m.P)
		add("reduce/p13", red, DerivedOrigins(red))
		scan := combine.ScanSchedule(m, m.P)
		add("scan/p13", scan, DerivedOrigins(scan))
	}

	{
		m := logp.MustNew(32, 4, 1, 2)
		if pl, err := summation.Build(m, 24); err == nil {
			s := pl.Schedule()
			add("summation/t24", s, DerivedOrigins(s))
		}
	}

	return cs
}

// ScaleCases builds large-P conformance cases: the paper's optimal broadcast
// on a general LogP machine and the reduction (summation tree) on a postal
// machine, at each requested processor count. These are the cases the
// million-processor engine work is graded on — the backends must stay in
// lockstep not just on the small paper instances but where the sharded
// flight queue and the worker-pool runtime actually engage.
func ScaleCases(ps ...int) []Case {
	var cs []Case
	for _, p := range ps {
		m := logp.MustNew(p, 6, 2, 4)
		cs = append(cs, Case{
			Name:    fmt.Sprintf("scale-broadcast/p%d", p),
			S:       core.BroadcastSchedule(m, 0),
			Origins: core.Origins(0),
		})
		pm := logp.Postal(p, 3)
		red := combine.ReduceSchedule(pm, pm.P)
		cs = append(cs, Case{
			Name:    fmt.Sprintf("scale-reduce/p%d", p),
			S:       red,
			Origins: DerivedOrigins(red),
		})
	}
	return cs
}

// DerivedOrigins injects every item at its earliest sender, at time zero.
// Value-carrying schedules (reduce, scan, summation) move computed values
// whose item ids have no external origin map; for replay purposes an item
// simply needs to exist wherever it is first transmitted from.
func DerivedOrigins(s *schedule.Schedule) map[int]schedule.Origin {
	og := make(map[int]schedule.Origin)
	first := make(map[int]logp.Time)
	for _, ev := range s.Events {
		if ev.Op != schedule.OpSend {
			continue
		}
		if t, ok := first[ev.Item]; !ok || ev.Time < t {
			first[ev.Item] = ev.Time
			og[ev.Item] = schedule.Origin{Proc: ev.Proc}
		}
	}
	return og
}
