package conform

import (
	"fmt"
	"sort"

	"logpopt/internal/runtime"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

// Checker replays cases on all five backends and diffs the results. One
// Checker is cheap to keep around: the simulator engines are recycled across
// cases.
type Checker struct {
	simStrict *SimBackend
	simBuf    *SimBackend
	rtStrict  RuntimeBackend
	rtBuf     RuntimeBackend
	validator ValidatorBackend
}

func NewChecker() *Checker {
	return &Checker{
		simStrict: &SimBackend{Mode: sim.Strict},
		simBuf:    &SimBackend{Mode: sim.Buffered},
		rtStrict:  RuntimeBackend{Mode: runtime.Strict},
		rtBuf:     RuntimeBackend{Mode: runtime.Buffered},
	}
}

// Check replays the case on every backend and returns a description of each
// divergence from the backend-equivalence contract (empty means conformant):
//
//   - Clean flag: within the strict group (sim-strict, runtime-strict,
//     validator) and within the buffered group (sim-buffered,
//     runtime-buffered), the backends must agree on whether the case is
//     violation-free. Violation *kinds and counts* may differ — the
//     implementations discover problems in different orders — but "clean"
//     is a statement about the machine model and must be unanimous.
//   - Clean strict case: all three strict backends produce the identical
//     trace and finish time.
//   - Clean buffered case: both buffered backends produce the identical
//     trace, finish time, and buffer high-water mark, and the executed
//     trace passes ValidateDeferred + CheckAvailability.
//   - Clean in both modes: the buffered trace equals the strict trace (an
//     uncontended schedule must not behave differently under queueing).
//   - Always: the simulator's reported Finish must equal the finish time
//     recomputed independently from its own trace.
func (ck *Checker) Check(c Case) []string {
	simS := ck.simStrict.Replay(c)
	rtS := ck.rtStrict.Replay(c)
	val := ck.validator.Replay(c)
	simB := ck.simBuf.Replay(c)
	rtB := ck.rtBuf.Replay(c)

	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}

	for _, grp := range [][]Result{{simS, rtS, val}, {simB, rtB}} {
		ref := grp[0]
		for _, r := range grp[1:] {
			if ref.Clean() != r.Clean() {
				add("%s clean=%v but %s clean=%v (kinds %v vs %v)",
					ref.Backend, ref.Clean(), r.Backend, r.Clean(),
					schedule.Kinds(ref.Violations), schedule.Kinds(r.Violations))
			}
		}
	}
	if len(diffs) > 0 {
		// Trace and finish comparisons are only meaningful once the backends
		// agree on legality.
		return diffs
	}

	// The simulator and the runtime implement the same record-and-continue
	// execution — a busy port still receives, an illegal send is dropped —
	// so their executed traces must match even on dirty cases. (The
	// validator is excluded here: it drops nothing, so its derived trace
	// only matches on clean cases.)
	if msg := traceDiff(simS.Trace, rtS.Trace); msg != "" {
		add("strict execution trace: sim vs runtime: %s", msg)
	}
	if msg := traceDiff(simB.Trace, rtB.Trace); msg != "" {
		add("buffered execution trace: sim vs runtime: %s", msg)
	}

	if simS.Clean() {
		for _, r := range []Result{rtS, val} {
			if msg := traceDiff(simS.Trace, r.Trace); msg != "" {
				add("strict trace: %s vs %s: %s", simS.Backend, r.Backend, msg)
			}
			if simS.Finish != r.Finish {
				add("strict finish: %s=%d, %s=%d", simS.Backend, simS.Finish, r.Backend, r.Finish)
			}
		}
	}
	if simB.Clean() {
		if msg := traceDiff(simB.Trace, rtB.Trace); msg != "" {
			add("buffered trace: %s vs %s: %s", simB.Backend, rtB.Backend, msg)
		}
		if simB.Finish != rtB.Finish {
			add("buffered finish: sim=%d, runtime=%d", simB.Finish, rtB.Finish)
		}
		if simB.MaxBuffer != rtB.MaxBuffer {
			add("buffer high-water: sim MaxBuffer=%d, runtime MaxQueue=%d", simB.MaxBuffer, rtB.MaxBuffer)
		}
		vs := schedule.ValidateDeferred(simB.Trace)
		vs = append(vs, schedule.CheckAvailability(simB.Trace, c.Origins)...)
		if len(vs) != 0 {
			add("clean buffered trace fails deferred validation: %v", vs[0])
		}
	}
	if simS.Clean() && simB.Clean() {
		if msg := traceDiff(simS.Trace, simB.Trace); msg != "" {
			add("strict vs buffered trace on a clean schedule: %s", msg)
		}
	}
	for _, r := range []Result{simS, simB} {
		if f := finishOf(r.Trace, c.Origins); f != r.Finish {
			add("%s reports Finish=%d but its trace implies %d", r.Backend, r.Finish, f)
		}
	}
	return diffs
}

// Diverges reports whether the case violates the contract. It is the
// predicate the shrinker minimizes against.
func (ck *Checker) Diverges(c Case) bool { return len(ck.Check(c)) > 0 }

// traceDiff compares two executed schedules event-by-event under a full
// deterministic order and describes the first difference ("" when equal).
func traceDiff(a, b *schedule.Schedule) string {
	ae, be := sortedEvents(a), sortedEvents(b)
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		if ae[i] != be[i] {
			return fmt.Sprintf("event %d: %+v vs %+v", i, ae[i], be[i])
		}
	}
	if len(ae) != len(be) {
		return fmt.Sprintf("%d events vs %d", len(ae), len(be))
	}
	return ""
}

// sortedEvents copies the events and sorts them by every field, so that
// comparisons never depend on the producers' tie-breaking.
func sortedEvents(s *schedule.Schedule) []schedule.Event {
	evs := append([]schedule.Event(nil), s.Events...)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Dur < b.Dur
	})
	return evs
}
