package conform

import (
	"fmt"
	"sort"
	"time"

	"logpopt/internal/obs"
	"logpopt/internal/obs/causal"
	"logpopt/internal/runtime"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

// Harness metrics: how many cases ran, how many diverged, and how long each
// backend takes to replay one (the histogram exposes which implementation
// dominates a slow conformance sweep).
var (
	mCases       = obs.Default.Counter("conform.cases")
	mDivergences = obs.Default.Counter("conform.divergences")
)

// Checker replays cases on all five backends and diffs the results. One
// Checker is cheap to keep around: the simulator engines are recycled across
// cases.
type Checker struct {
	simStrict *SimBackend
	simBuf    *SimBackend
	rtStrict  RuntimeBackend
	rtBuf     RuntimeBackend
	validator ValidatorBackend
	replayUS  map[string]*obs.Histogram // per-backend replay wall time (µs)
}

func NewChecker() *Checker {
	ck := &Checker{
		simStrict: &SimBackend{Mode: sim.Strict},
		simBuf:    &SimBackend{Mode: sim.Buffered},
		rtStrict:  RuntimeBackend{Mode: runtime.Strict},
		rtBuf:     RuntimeBackend{Mode: runtime.Buffered},
	}
	ck.replayUS = make(map[string]*obs.Histogram)
	for _, name := range []string{
		ck.simStrict.Name(), ck.simBuf.Name(),
		ck.rtStrict.Name(), ck.rtBuf.Name(), ck.validator.Name(),
	} {
		ck.replayUS[name] = obs.Default.Histogram("conform.replay.us." + name)
	}
	return ck
}

// SetTracer attaches one shared flight recorder to every executing backend,
// each on its own process track (pid 1-4) so a whole conformance run lands
// in a single Perfetto-loadable file. Pass nil to detach.
func (ck *Checker) SetTracer(tr *obs.Tracer) {
	ck.simStrict.Tracer, ck.simStrict.TracePID = tr, 1
	ck.simBuf.Tracer, ck.simBuf.TracePID = tr, 2
	ck.rtStrict.Tracer, ck.rtStrict.TracePID = tr, 3
	ck.rtBuf.Tracer, ck.rtBuf.TracePID = tr, 4
	if tr != nil {
		tr.NameProcess(1, "sim-strict")
		tr.NameProcess(2, "sim-buffered")
		tr.NameProcess(3, "runtime-strict")
		tr.NameProcess(4, "runtime-buffered")
	}
}

// replay runs one backend and records its wall time in the per-backend
// histogram.
func (ck *Checker) replay(b Backend, c Case) Result {
	start := time.Now()
	r := b.Replay(c)
	ck.replayUS[r.Backend].Observe(time.Since(start).Microseconds())
	return r
}

// Check replays the case on every backend and returns a description of each
// divergence from the backend-equivalence contract (empty means conformant):
//
//   - Clean flag: within the strict group (sim-strict, runtime-strict,
//     validator) and within the buffered group (sim-buffered,
//     runtime-buffered), the backends must agree on whether the case is
//     violation-free. Violation *kinds and counts* may differ — the
//     implementations discover problems in different orders — but "clean"
//     is a statement about the machine model and must be unanimous.
//   - Clean strict case: all three strict backends produce the identical
//     trace and finish time.
//   - Clean buffered case: both buffered backends produce the identical
//     trace, finish time, and buffer high-water mark, and the executed
//     trace passes ValidateDeferred + CheckAvailability.
//   - Clean in both modes: the buffered trace equals the strict trace (an
//     uncontended schedule must not behave differently under queueing).
//   - Clean cases: within each executing pair (sim vs runtime, per mode) the
//     per-processor Stats breakdown — sends, receives, busy and idle cycles,
//     and (buffered only) queue high-water marks — must agree field for
//     field.
//   - Always: the simulator's reported Finish must equal the finish time
//     recomputed independently from its own trace.
func (ck *Checker) Check(c Case) (diffs []string) {
	mCases.Inc()
	defer func() {
		if len(diffs) > 0 {
			mDivergences.Inc()
		}
	}()
	simS := ck.replay(ck.simStrict, c)
	rtS := ck.replay(ck.rtStrict, c)
	val := ck.replay(ck.validator, c)
	simB := ck.replay(ck.simBuf, c)
	rtB := ck.replay(ck.rtBuf, c)

	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}

	for _, grp := range [][]Result{{simS, rtS, val}, {simB, rtB}} {
		ref := grp[0]
		for _, r := range grp[1:] {
			if ref.Clean() != r.Clean() {
				add("%s clean=%v but %s clean=%v (kinds %v vs %v)",
					ref.Backend, ref.Clean(), r.Backend, r.Clean(),
					schedule.Kinds(ref.Violations), schedule.Kinds(r.Violations))
			}
		}
	}
	if len(diffs) > 0 {
		// Trace and finish comparisons are only meaningful once the backends
		// agree on legality.
		return diffs
	}

	// The simulator and the runtime implement the same record-and-continue
	// execution — a busy port still receives, an illegal send is dropped —
	// so their executed traces must match even on dirty cases. (The
	// validator is excluded here: it drops nothing, so its derived trace
	// only matches on clean cases.)
	if msg := traceDiff(simS.Trace, rtS.Trace); msg != "" {
		add("strict execution trace: sim vs runtime: %s", msg)
	}
	if msg := traceDiff(simB.Trace, rtB.Trace); msg != "" {
		add("buffered execution trace: sim vs runtime: %s", msg)
	}

	if simS.Clean() {
		for _, r := range []Result{rtS, val} {
			if msg := traceDiff(simS.Trace, r.Trace); msg != "" {
				add("strict trace: %s vs %s: %s", simS.Backend, r.Backend, msg)
			}
			if simS.Finish != r.Finish {
				add("strict finish: %s=%d, %s=%d", simS.Backend, simS.Finish, r.Backend, r.Finish)
			}
		}
		// Queue marks are excluded in strict mode: the runtime routes
		// simultaneous arrivals through its queue within a step (so its
		// high-water counts coincident messages) while the simulator never
		// buffers in strict mode.
		if msg := statsDiff(simS.Stats, rtS.Stats, false); msg != "" {
			add("strict stats: sim vs runtime: %s", msg)
		}
	}
	if simB.Clean() {
		if msg := traceDiff(simB.Trace, rtB.Trace); msg != "" {
			add("buffered trace: %s vs %s: %s", simB.Backend, rtB.Backend, msg)
		}
		if simB.Finish != rtB.Finish {
			add("buffered finish: sim=%d, runtime=%d", simB.Finish, rtB.Finish)
		}
		if simB.MaxBuffer != rtB.MaxBuffer {
			add("buffer high-water: sim MaxBuffer=%d, runtime MaxQueue=%d", simB.MaxBuffer, rtB.MaxBuffer)
		}
		if msg := statsDiff(simB.Stats, rtB.Stats, true); msg != "" {
			add("buffered stats: sim vs runtime: %s", msg)
		}
		vs := schedule.ValidateDeferred(simB.Trace)
		vs = append(vs, schedule.CheckAvailability(simB.Trace, c.Origins)...)
		if len(vs) != 0 {
			add("clean buffered trace fails deferred validation: %v", vs[0])
		}
	}

	// Causal-analysis equivalence: on clean cases the critical path — the
	// chain of constraints that explains the finish time — must be identical
	// between the simulator's and the runtime's executed traces. The analysis
	// is deterministic in the event multiset, so a signature mismatch means
	// the backends genuinely executed different causal structures (a subtler
	// divergence than a trace diff, which would already have fired above).
	if simS.Clean() {
		if d := causalDiff(simS.Trace, rtS.Trace, c.Origins); d != "" {
			add("strict critical path: sim vs runtime: %s", d)
		}
	}
	if simB.Clean() {
		if d := causalDiff(simB.Trace, rtB.Trace, c.Origins); d != "" {
			add("buffered critical path: sim vs runtime: %s", d)
		}
	}
	if simS.Clean() && simB.Clean() {
		if msg := traceDiff(simS.Trace, simB.Trace); msg != "" {
			add("strict vs buffered trace on a clean schedule: %s", msg)
		}
	}
	for _, r := range []Result{simS, simB} {
		if f := finishOf(r.Trace, c.Origins); f != r.Finish {
			add("%s reports Finish=%d but its trace implies %d", r.Backend, r.Finish, f)
		}
	}
	return diffs
}

// Diverges reports whether the case violates the contract. It is the
// predicate the shrinker minimizes against.
func (ck *Checker) Diverges(c Case) bool { return len(ck.Check(c)) > 0 }

// causalDiff compares the canonical critical-path signatures of two executed
// traces ("" when identical).
func causalDiff(a, b *schedule.Schedule, origins map[int]schedule.Origin) string {
	sa := causal.Analyze(a, origins).Signature()
	sb := causal.Analyze(b, origins).Signature()
	if sa != sb {
		return fmt.Sprintf("%q vs %q", sa, sb)
	}
	return ""
}

// statsDiff compares two Stats breakdowns and describes the first
// disagreement ("" when equal). queues controls whether the per-processor
// and aggregate queue high-water marks participate: they are comparable only
// between the buffered backends (see Check).
func statsDiff(a, b schedule.Stats, queues bool) string {
	if a.Sends != b.Sends || a.Recvs != b.Recvs {
		return fmt.Sprintf("sends/recvs (%d,%d) vs (%d,%d)", a.Sends, a.Recvs, b.Sends, b.Recvs)
	}
	if a.BusyCycles != b.BusyCycles {
		return fmt.Sprintf("busy cycles %d vs %d", a.BusyCycles, b.BusyCycles)
	}
	if a.Span != b.Span || a.PortUtilFinish != b.PortUtilFinish {
		return fmt.Sprintf("span/util (%d,%v) vs (%d,%v)", a.Span, a.PortUtilFinish, b.Span, b.PortUtilFinish)
	}
	if queues && a.MaxQueue != b.MaxQueue {
		return fmt.Sprintf("queue high-water %d vs %d", a.MaxQueue, b.MaxQueue)
	}
	if len(a.PerProc) != len(b.PerProc) {
		return fmt.Sprintf("per-proc lengths %d vs %d", len(a.PerProc), len(b.PerProc))
	}
	for p := range a.PerProc {
		ap, bp := a.PerProc[p], b.PerProc[p]
		if ap.Sends != bp.Sends || ap.Recvs != bp.Recvs ||
			ap.BusyCycles != bp.BusyCycles || ap.IdleCycles != bp.IdleCycles {
			return fmt.Sprintf("P%d: %+v vs %+v", p, ap, bp)
		}
		if queues && ap.MaxQueue != bp.MaxQueue {
			return fmt.Sprintf("P%d queue high-water %d vs %d", p, ap.MaxQueue, bp.MaxQueue)
		}
	}
	return ""
}

// traceDiff compares two executed schedules event-by-event under a full
// deterministic order and describes the first difference ("" when equal).
func traceDiff(a, b *schedule.Schedule) string {
	ae, be := sortedEvents(a), sortedEvents(b)
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		if ae[i] != be[i] {
			return fmt.Sprintf("event %d: %+v vs %+v", i, ae[i], be[i])
		}
	}
	if len(ae) != len(be) {
		return fmt.Sprintf("%d events vs %d", len(ae), len(be))
	}
	return ""
}

// sortedEvents copies the events and sorts them by every field, so that
// comparisons never depend on the producers' tie-breaking.
func sortedEvents(s *schedule.Schedule) []schedule.Event {
	evs := append([]schedule.Event(nil), s.Events...)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Dur < b.Dur
	})
	return evs
}
