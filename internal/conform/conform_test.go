package conform

import (
	"reflect"
	"testing"

	"logpopt/internal/schedule"
)

func TestPaperCasesConform(t *testing.T) {
	ck := NewChecker()
	cases := PaperCases()
	if len(cases) < 12 {
		t.Fatalf("only %d paper cases built; adapters lost coverage", len(cases))
	}
	for _, c := range cases {
		if diffs := ck.Check(c); len(diffs) != 0 {
			t.Errorf("%s: %d divergences, first: %s", c.Name, len(diffs), diffs[0])
		}
	}
}

func TestRandomCasesConform(t *testing.T) {
	seeds := 400
	if testing.Short() {
		seeds = 60
	}
	ck := NewChecker()
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := Generate(seed)
		diffs := ck.Check(c)
		if len(diffs) == 0 {
			continue
		}
		min := Shrink(c, ck.Diverges)
		t.Fatalf("seed %d (%s): %s\nshrunk to %d events on %v: %+v",
			seed, c.Name, diffs[0], len(min.S.Events), min.S.M, min.S.Events)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 17, 4242} {
		a, b := Generate(seed), Generate(seed)
		if a.Name != b.Name || !reflect.DeepEqual(a.S, b.S) || !reflect.DeepEqual(a.Origins, b.Origins) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGenerateMix(t *testing.T) {
	// The seed stream must produce all three flavors: clean cases, dirty
	// cases, and cases with queueing (burst). Otherwise whole halves of the
	// contract go unexercised.
	ck := NewChecker()
	var clean, dirty, queued int
	for seed := int64(0); seed < 120; seed++ {
		c := Generate(seed)
		r := ck.simStrict.Replay(c)
		if r.Clean() {
			clean++
		} else {
			dirty++
		}
		if b := ck.simBuf.Replay(c); b.MaxBuffer > 1 {
			queued++
		}
	}
	if clean < 10 || dirty < 10 || queued < 3 {
		t.Fatalf("flavor mix degenerate: clean=%d dirty=%d queued=%d", clean, dirty, queued)
	}
}

func TestShrink(t *testing.T) {
	// Synthetic predicate: "diverges" iff the schedule still contains a send
	// of item 7 and a send of item 9. The shrinker must strip everything
	// else and drop unused origins and processors.
	c := Generate(3)
	s := c.S
	s.Send(0, 50, 7, 1)
	s.Send(1, 60, 9, 0)
	c.Origins[7] = schedule.Origin{Proc: 0}
	c.Origins[9] = schedule.Origin{Proc: 1}
	pred := func(c Case) bool {
		var has7, has9 bool
		for _, ev := range c.S.Events {
			if ev.Op == schedule.OpSend && ev.Item == 7 {
				has7 = true
			}
			if ev.Op == schedule.OpSend && ev.Item == 9 {
				has9 = true
			}
		}
		return has7 && has9
	}
	min := Shrink(c, pred)
	if len(min.S.Events) != 2 {
		t.Fatalf("shrunk to %d events, want 2: %+v", len(min.S.Events), min.S.Events)
	}
	if !pred(min) {
		t.Fatal("shrunk case no longer satisfies the predicate")
	}
	if len(min.Origins) != 2 {
		t.Fatalf("shrunk origins %v, want just items 7 and 9", min.Origins)
	}
	if min.S.M.P != 2 {
		t.Fatalf("shrunk machine has P=%d, want 2", min.S.M.P)
	}
}

func TestShrinkNonDiverging(t *testing.T) {
	c := Generate(5)
	got := Shrink(c, func(Case) bool { return false })
	if !reflect.DeepEqual(got, c) {
		t.Fatal("shrinking a non-diverging case must return it unchanged")
	}
}

func TestFinishOfMatchesSim(t *testing.T) {
	ck := NewChecker()
	for _, c := range PaperCases() {
		r := ck.simStrict.Replay(c)
		if f := finishOf(r.Trace, c.Origins); f != r.Finish {
			t.Errorf("%s: sim Finish=%d, finishOf=%d", c.Name, r.Finish, f)
		}
	}
}
