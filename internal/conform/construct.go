package conform

import (
	"fmt"
	"reflect"

	"logpopt/internal/combine"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// Constructor is a schedule-construction backend: one full implementation of
// the paper's optimal broadcast, reduction, and summation constructions. The
// harness diffs two of them — the heap-search constructor and the search-free
// logtime constructor — structurally (the emitted schedules must be equal
// event for event, not merely equal in finish time) and then replays the
// constructed schedules through the five executing backends, so a
// construction bug cannot hide behind a coincidentally right makespan.
type Constructor struct {
	Name      string
	Broadcast func(m logp.Machine) *schedule.Schedule
	BTime     func(m logp.Machine, p int) logp.Time
	Reduce    func(m logp.Machine, p int) *schedule.Schedule
	Scan      func(m logp.Machine, p int) *schedule.Schedule
	Summation func(m logp.Machine, t logp.Time) (*schedule.Schedule, error)
}

// SearchConstructor wraps the original heap-search construction path.
func SearchConstructor() Constructor {
	return Constructor{
		Name:      "search",
		Broadcast: func(m logp.Machine) *schedule.Schedule { return core.BroadcastSchedule(m, 0) },
		BTime:     core.B,
		Reduce:    combine.ReduceSchedule,
		Scan:      combine.ScanSchedule,
		Summation: func(m logp.Machine, t logp.Time) (*schedule.Schedule, error) {
			pl, err := summation.Build(m, t)
			if err != nil {
				return nil, err
			}
			return pl.Schedule(), nil
		},
	}
}

// LogtimeConstructor wraps the search-free internal/logtime construction.
func LogtimeConstructor() Constructor {
	return Constructor{
		Name:      "logtime",
		Broadcast: func(m logp.Machine) *schedule.Schedule { return logtime.BroadcastSchedule(m, 0) },
		BTime:     logtime.B,
		Reduce:    logtime.ReduceSchedule,
		Scan:      logtime.ScanSchedule,
		Summation: func(m logp.Machine, t logp.Time) (*schedule.Schedule, error) {
			pl, err := logtime.SummationBuild(m, t)
			if err != nil {
				return nil, err
			}
			return pl.Schedule(), nil
		},
	}
}

// replayHorizon bounds the schedules CheckConstructors forwards to the
// executing backends; longer ones are only compared structurally.
const replayHorizon = 1 << 21

// CheckConstructors diffs the search and logtime constructors on machine m —
// broadcast, B(p) for every p up to m.P, reduction, scan, and (when the
// machine admits lazy summation schedules and sumT >= 0) summation at
// deadline sumT — and replays every constructed schedule through the full
// five-backend equivalence contract. The returned diffs are empty iff the
// constructors agree exactly and their output conforms.
func (ck *Checker) CheckConstructors(m logp.Machine, sumT logp.Time) (diffs []string) {
	a, b := SearchConstructor(), LogtimeConstructor()
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	replay := func(what string, c Case) {
		// The runtime backends advance their virtual clock cycle by cycle, so
		// huge-parameter machines (L past 2^31) are diffed structurally above
		// but not replayed — the structural check is exact either way.
		if c.S.Makespan() > replayHorizon {
			return
		}
		for _, d := range ck.Check(c) {
			add("%s (%s-built): %s", what, b.Name, d)
		}
	}

	for _, p := range btimePs(m.P) {
		if ta, tb := a.BTime(m, p), b.BTime(m, p); ta != tb {
			add("broadcast/%v: B(%d) %s=%d %s=%d", m, p, a.Name, ta, b.Name, tb)
		}
	}
	sa, sb := a.Broadcast(m), b.Broadcast(m)
	if !reflect.DeepEqual(sa, sb) {
		add("broadcast/%v: %s and %s schedules differ (%d vs %d events)",
			m, a.Name, b.Name, len(sa.Events), len(sb.Events))
	} else {
		replay(fmt.Sprintf("broadcast/%v", m), Case{Name: "construct-broadcast", S: sb, Origins: core.Origins(0)})
	}

	ra, rb := a.Reduce(m, m.P), b.Reduce(m, m.P)
	if !reflect.DeepEqual(ra, rb) {
		add("reduce/%v: %s and %s schedules differ", m, a.Name, b.Name)
	} else {
		replay(fmt.Sprintf("reduce/%v", m), Case{Name: "construct-reduce", S: rb, Origins: DerivedOrigins(rb)})
	}

	ca, cb := a.Scan(m, m.P), b.Scan(m, m.P)
	if !reflect.DeepEqual(ca, cb) {
		add("scan/%v: %s and %s schedules differ", m, a.Name, b.Name)
	} else {
		replay(fmt.Sprintf("scan/%v", m), Case{Name: "construct-scan", S: cb, Origins: DerivedOrigins(cb)})
	}

	if sumT >= 0 && summation.Validate(m) == nil {
		ua, erra := a.Summation(m, sumT)
		ub, errb := b.Summation(m, sumT)
		switch {
		case (erra == nil) != (errb == nil):
			add("summation/%v t=%d: %s err=%v, %s err=%v", m, sumT, a.Name, erra, b.Name, errb)
		case erra == nil && !reflect.DeepEqual(ua, ub):
			add("summation/%v t=%d: %s and %s schedules differ", m, sumT, a.Name, b.Name)
		case erra == nil:
			replay(fmt.Sprintf("summation/%v t=%d", m, sumT),
				Case{Name: "construct-summation", S: ub, Origins: DerivedOrigins(ub)})
		}
	}
	return diffs
}

// btimePs picks the processor counts to cross-check B(p) at: every count up
// to 64, then P/2, P-1, and P — exhaustive where the search is cheap,
// boundary-sampled above (the full-tree DeepEqual already pins every node at
// P itself; re-running the search per p would be quadratic at P=1000).
func btimePs(P int) []int {
	var ps []int
	for p := 1; p <= P && p <= 64; p++ {
		ps = append(ps, p)
	}
	for _, p := range []int{P / 2, P - 1, P} {
		if p > 64 {
			ps = append(ps, p)
		}
	}
	return ps
}

// ConstructorMachines is the sweep CheckConstructors is run over by the
// harness CLI and tests: the paper's machines, the non-power-of-two
// processor counts the generators bias toward, both stride regimes (g > o
// and o > g), and a beyond-2^31 latency. Summation deadlines ride along per
// machine (-1: skip).
func ConstructorMachines() []struct {
	M    logp.Machine
	SumT logp.Time
} {
	type mc = struct {
		M    logp.Machine
		SumT logp.Time
	}
	var out []mc
	for _, p := range []int{1, 2, 3, 5, 7, 63, 65, 1000} {
		out = append(out, mc{logp.MustNew(p, 6, 2, 4), 40})
		out = append(out, mc{logp.Postal(p, 3), 12})
	}
	out = append(out,
		mc{logp.MustNew(12, 7, 1, 3), 30},
		mc{logp.MustNew(16, 2, 3, 2), -1},     // o > g: no lazy summation (g < o+1)
		mc{logp.MustNew(64, 1, 0, 1), 20},     // minimal latency
		mc{logp.MustNew(33, 1<<31, 2, 5), -1}, // huge parameters past 2^31
	)
	return out
}
