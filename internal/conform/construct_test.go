package conform

import (
	"testing"

	"logpopt/internal/logp"
)

// TestConstructorsAgree runs the constructor differential over the standard
// machine sweep: paper machines, the awkward processor counts, both stride
// regimes, and the beyond-2^31 latency machine. Schedules must match event
// for event and replay cleanly through all five backends.
func TestConstructorsAgree(t *testing.T) {
	ck := NewChecker()
	for _, mc := range ConstructorMachines() {
		for _, d := range ck.CheckConstructors(mc.M, mc.SumT) {
			t.Errorf("%v", d)
		}
	}
}

// TestConstructorsOnGeneratedMachines feeds the constructor differential the
// same machine distribution the case generators draw from (including the
// non-power-of-two bias), so the sweep isn't limited to hand-picked shapes.
func TestConstructorsOnGeneratedMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-machine constructor sweep")
	}
	ck := NewChecker()
	seen := map[logp.Machine]bool{}
	for seed := int64(0); seed < 60; seed++ {
		m := Generate(seed).S.M
		if seen[m] {
			continue
		}
		seen[m] = true
		sumT := logp.Time(3 * (m.L + 2*m.O + 4))
		for _, d := range ck.CheckConstructors(m, sumT) {
			t.Errorf("seed %d: %v", seed, d)
		}
	}
}

// TestAwkwardBias pins the generator bias: a fair share of generated
// machines must land on the awkward processor counts.
func TestAwkwardBias(t *testing.T) {
	awk := map[int]bool{}
	for _, p := range awkwardPs {
		awk[p] = true
	}
	hits := 0
	for seed := int64(0); seed < 200; seed++ {
		if awk[Generate(seed).S.M.P] {
			hits++
		}
	}
	if hits < 30 {
		t.Fatalf("only %d/200 generated machines hit awkward P counts", hits)
	}
}
