package conform

import (
	"testing"

	"logpopt/internal/alltoall"
	"logpopt/internal/baseline"
	"logpopt/internal/combine"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// degenerateMachines are the machine shapes the P=1/P=2 contract is pinned
// on: every constructor must emit an empty schedule finishing at 0 on one
// processor and a single exchange finishing at o+L+o on two.
var degenerateMachines = []logp.Machine{
	logp.MustNew(1, 6, 2, 4),
	logp.MustNew(1, 1, 0, 1),
	logp.MustNew(1, 2, 3, 2),
	logp.MustNew(1, 1<<31, 2, 5),
}

// TestDegenerateP1 sweeps every schedule constructor at P=1: no events, no
// time. This is the regression net for the lower-bound formulas that used to
// go negative (alltoall.LowerBound, alltoall.ScatterLowerBound) and for any
// constructor that would index past a single-node tree.
func TestDegenerateP1(t *testing.T) {
	for _, m := range degenerateMachines {
		empty := func(what string, s *schedule.Schedule) {
			t.Helper()
			if len(s.Events) != 0 || s.Makespan() != 0 {
				t.Errorf("%v: %s at P=1: %d events, makespan %d (want empty, 0)",
					m, what, len(s.Events), s.Makespan())
			}
		}
		empty("broadcast", core.BroadcastSchedule(m, 0))
		empty("logtime broadcast", logtime.BroadcastSchedule(m, 0))
		empty("reduce", combine.ReduceSchedule(m, 1))
		empty("scan", combine.ScanSchedule(m, 1))
		empty("alltoall", alltoall.Schedule(m, 2))
		empty("personalized", alltoall.Personalized(m))
		empty("scatter", alltoall.Scatter(m))
		empty("gather", alltoall.Gather(m))
		for _, tb := range []struct {
			name  string
			build func(logp.Machine, int) *core.Tree
		}{
			{"linear", baseline.LinearTree},
			{"flat", baseline.FlatTree},
			{"binary", baseline.BinaryTree},
			{"binomial", baseline.BinomialTree},
		} {
			tr := tb.build(m, 1)
			if got := baseline.TreeTime(tr); got != 0 {
				t.Errorf("%v: baseline %s at P=1: time %d, want 0", m, tb.name, got)
			}
			s, err := baseline.Schedule(tr, 0)
			if err != nil {
				t.Errorf("%v: baseline %s at P=1: %v", m, tb.name, err)
			} else {
				empty("baseline "+tb.name, s)
			}
		}
		if got := alltoall.LowerBound(m, 3); got != 0 {
			t.Errorf("%v: alltoall.LowerBound at P=1 = %d, want 0", m, got)
		}
		if got := alltoall.ScatterLowerBound(m); got != 0 {
			t.Errorf("%v: ScatterLowerBound at P=1 = %d, want 0", m, got)
		}
		if got, want := core.B(m, 1), logp.Time(0); got != want {
			t.Errorf("%v: B(1) = %d, want 0", m, got)
		}
		if summation.Validate(m) == nil {
			for _, tt := range []logp.Time{0, 1, 7} {
				pl, err := summation.Build(m, tt)
				if err != nil {
					t.Errorf("%v: summation t=%d at P=1: %v", m, tt, err)
					continue
				}
				// A one-processor summation is all local folds: the root
				// folds t+1 operands by the deadline, but nothing may move.
				ps := pl.Schedule()
				for _, ev := range ps.Events {
					if ev.Op == schedule.OpSend || ev.Op == schedule.OpRecv {
						t.Errorf("%v: summation t=%d at P=1 communicates: %+v", m, tt, ev)
					}
				}
				if ps.Makespan() > tt {
					t.Errorf("%v: summation t=%d at P=1 overruns deadline: makespan %d", m, tt, ps.Makespan())
				}
				if n, _ := summation.Capacity(m, tt); n != int64(tt)+1 {
					t.Errorf("%v: capacity(t=%d) at P=1 = %d, want t+1 = %d", m, tt, n, tt+1)
				}
			}
		}
		// The k-item and pipelined constructors document an error for P < 2;
		// pin that they refuse rather than emit garbage.
		if _, err := kitem.Greedy(3, 1, 2, kitem.Strict); err == nil {
			t.Errorf("kitem.Greedy accepted P=1")
		}
		if _, _, err := baseline.SequentialPipelined(3, 1, 2); err == nil {
			t.Errorf("baseline.SequentialPipelined accepted P=1")
		}
	}
}

// TestDegenerateP2 pins the two-processor contract: one send, one receive,
// finish at o+L+o for broadcast and every baseline tree, with each schedule
// replaying cleanly through all five backends.
func TestDegenerateP2(t *testing.T) {
	ck := NewChecker()
	for _, m1 := range degenerateMachines {
		m := m1
		m.P = 2
		if m.L >= 1<<30 {
			continue // the runtime backends step cycle by cycle
		}
		want := m.L + 2*m.O

		s := core.BroadcastSchedule(m, 0)
		if len(s.Events) != 2 {
			t.Errorf("%v: broadcast at P=2 has %d events, want 2", m, len(s.Events))
		}
		for _, d := range ck.Check(Case{Name: "p2-broadcast", S: s, Origins: core.Origins(0)}) {
			t.Errorf("%v: p2 broadcast: %s", m, d)
		}
		if got := core.B(m, 2); got != want {
			t.Errorf("%v: B(2) = %d, want o+L+o = %d", m, got, want)
		}

		for _, tb := range []struct {
			name  string
			build func(logp.Machine, int) *core.Tree
		}{
			{"linear", baseline.LinearTree},
			{"flat", baseline.FlatTree},
			{"binary", baseline.BinaryTree},
			{"binomial", baseline.BinomialTree},
		} {
			tr := tb.build(m, 2)
			if got := baseline.TreeTime(tr); got != want {
				t.Errorf("%v: baseline %s at P=2: time %d, want %d", m, tb.name, got, want)
			}
			bs, err := baseline.Schedule(tr, 0)
			if err != nil {
				t.Errorf("%v: baseline %s at P=2: %v", m, tb.name, err)
				continue
			}
			for _, d := range ck.Check(Case{Name: "p2-" + tb.name, S: bs, Origins: core.Origins(0)}) {
				t.Errorf("%v: p2 %s: %s", m, tb.name, d)
			}
		}

		if got := alltoall.LowerBound(m, 1); got != want {
			t.Errorf("%v: alltoall.LowerBound(k=1) at P=2 = %d, want %d", m, got, want)
		}
		if got := alltoall.ScatterLowerBound(m); got != want {
			t.Errorf("%v: ScatterLowerBound at P=2 = %d, want %d", m, got, want)
		}

		rs := combine.ReduceSchedule(m, 2)
		for _, d := range ck.Check(Case{Name: "p2-reduce", S: rs, Origins: DerivedOrigins(rs)}) {
			t.Errorf("%v: p2 reduce: %s", m, d)
		}
	}
}
