package conform

import (
	"fmt"
	"os"
	"path/filepath"

	"logpopt/internal/obs"
	"logpopt/internal/runtime"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

// DumpTraces replays c once per backend with a fresh flight recorder
// attached and writes one Chrome trace-event JSON file per backend into dir
// (created if missing). It returns the written paths. The intended caller is
// the divergence path: after Shrink produces a minimal failing case, dumping
// its per-backend traces makes the disagreement visible on a Perfetto
// timeline — which send each implementation executed, when, and where the
// executions part ways.
//
// The validator backend executes nothing, so its file holds derived spans:
// the strict-model receptions it reasons about, laid out on the same
// per-processor tracks as the executing backends.
func DumpTraces(c Case, dir, prefix string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(name string, tr *obs.Tracer) error {
		path := filepath.Join(dir, sanitize(prefix+"-"+name)+".json")
		if err := tr.WriteFile(path); err != nil {
			return fmt.Errorf("dump %s: %w", name, err)
		}
		paths = append(paths, path)
		return nil
	}

	for _, mode := range []sim.Mode{sim.Strict, sim.Buffered} {
		b := &SimBackend{Mode: mode, Tracer: obs.NewTracer()}
		b.Replay(c)
		if err := write(b.Name(), b.Tracer); err != nil {
			return paths, err
		}
	}
	for _, mode := range []runtime.Mode{runtime.Strict, runtime.Buffered} {
		b := RuntimeBackend{Mode: mode, Tracer: obs.NewTracer()}
		b.Replay(c)
		if err := write(b.Name(), b.Tracer); err != nil {
			return paths, err
		}
	}

	val := ValidatorBackend{}
	if err := write(val.Name(), validatorTrace(val.Replay(c))); err != nil {
		return paths, err
	}
	return paths, nil
}

// validatorTrace renders the validator's derived schedule as spans: one per
// send and reception, each o cycles wide, on per-processor tracks under its
// own process id so it lands next to (not on top of) the executing backends
// when several dumps are opened together.
func validatorTrace(r Result) *obs.Tracer {
	const pid = 3
	tr := obs.NewTracer()
	tr.NameProcess(pid, "validator (derived)")
	m := r.Trace.M
	for p := 0; p < m.P; p++ {
		tr.NameThread(pid, p, fmt.Sprintf("P%d", p))
	}
	for _, ev := range r.Trace.Events {
		switch ev.Op {
		case schedule.OpSend:
			tr.Span(pid, ev.Proc, "send", int64(ev.Time), int64(m.O),
				obs.A("item", ev.Item), obs.A("to", ev.Peer))
		case schedule.OpRecv:
			tr.Span(pid, ev.Proc, "recv", int64(ev.Time), int64(m.O),
				obs.A("item", ev.Item), obs.A("from", ev.Peer))
		}
	}
	return tr
}

// sanitize maps a case name to a safe file stem: path separators and every
// other byte outside [A-Za-z0-9._-] become underscores.
func sanitize(s string) string {
	out := []byte(s)
	for i, ch := range out {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
			ch >= '0' && ch <= '9', ch == '.', ch == '_', ch == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
