package conform

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDumpTraces dumps a paper case and checks one valid, non-empty Chrome
// trace JSON file appears per backend, with filenames safe for the case
// name's slashes.
func TestDumpTraces(t *testing.T) {
	dir := t.TempDir()
	c := PaperCases()[0] // "broadcast/..." — name contains a slash
	paths, err := DumpTraces(c, dir, c.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("dumped %d files, want 5 (one per backend): %v", len(paths), paths)
	}
	wantSuffixes := []string{
		"sim-strict.json", "sim-buffered.json",
		"runtime-strict.json", "runtime-buffered.json", "validator.json",
	}
	for i, p := range paths {
		if filepath.Dir(p) != dir {
			t.Errorf("%s escaped the dump dir", p)
		}
		if strings.ContainsAny(filepath.Base(p), "/\\ ") {
			t.Errorf("unsanitized filename %q", filepath.Base(p))
		}
		if !strings.HasSuffix(p, wantSuffixes[i]) {
			t.Errorf("path %d = %q, want suffix %q", i, p, wantSuffixes[i])
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: invalid trace JSON: %v", p, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Errorf("%s: empty trace", p)
		}
	}
}

// TestCheckerMetrics checks the harness counters move when cases run and
// when the shrinker works a diverging case.
func TestCheckerMetrics(t *testing.T) {
	cases0, trials0 := mCases.Value(), mShrinkTrials.Value()
	ck := NewChecker()
	c := PaperCases()[0]
	if diffs := ck.Check(c); len(diffs) != 0 {
		t.Fatalf("paper case diverged: %v", diffs)
	}
	if got := mCases.Value(); got != cases0+1 {
		t.Errorf("conform.cases went %d -> %d, want +1", cases0, got)
	}
	// A synthetic always-diverging predicate forces shrink trials.
	Shrink(c, func(Case) bool { return true })
	if got := mShrinkTrials.Value(); got <= trials0 {
		t.Errorf("conform.shrink.trials did not move (still %d)", got)
	}
}
