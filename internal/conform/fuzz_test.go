package conform

import "testing"

// FuzzConform feeds the seeded case generator from the fuzzer's input
// stream: every backend pair must stay in agreement for every reachable
// case. Run with `go test -fuzz=FuzzConform ./internal/conform/`.
func FuzzConform(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	ck := NewChecker()
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(seed)
		if diffs := ck.Check(c); len(diffs) != 0 {
			min := Shrink(c, ck.Diverges)
			t.Fatalf("seed %d: %s\nshrunk to %d events on %v: %+v",
				seed, diffs[0], len(min.S.Events), min.S.M, min.S.Events)
		}
	})
}
