package conform

import (
	"fmt"
	"math/rand"
	"sort"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Generate deterministically derives a conformance case from a seed: a small
// random machine, random item origins, and a schedule produced by a legality-
// tracking random walker. Three flavors come out of the seed stream:
//
//   - plain: the walker respects every strict-mode rule, so the case is
//     clean on all backends;
//   - burst: receive-side rules at one drain processor are ignored, so
//     arrivals collide — dirty in the strict group, clean (and queueing)
//     in the buffered group;
//   - mutated: a clean-ish schedule is then perturbed (time shifts possibly
//     below zero, retargets to self/out-of-range/other, duplicate sends,
//     item swaps), which every backend must flag in agreement.
//
// The same seed always yields the same case.
func Generate(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	m := randMachine(rng)
	nItems := 1 + rng.Intn(3)
	origins := make(map[int]schedule.Origin, nItems)
	for it := 0; it < nItems; it++ {
		origins[it] = schedule.Origin{Proc: rng.Intn(m.P)}
	}
	burst := rng.Float64() < 0.25
	s := walk(rng, m, origins, burst)
	name := fmt.Sprintf("gen-%d", seed)
	if burst {
		name += "-burst"
	}
	if rng.Float64() < 0.35 {
		mutate(rng, s, nItems)
		name += "-mut"
	}
	return Case{Name: name, S: s, Origins: origins}
}

// awkwardPs are processor counts the generators bias toward: off
// powers of two (straddling 64), small odd primes, and one large count —
// shapes where rounding bugs in schedule constructors historically hide.
var awkwardPs = []int{3, 5, 7, 63, 65, 1000}

func randMachine(rng *rand.Rand) logp.Machine {
	for {
		p := 2 + rng.Intn(5)
		if rng.Float64() < 0.3 {
			p = awkwardPs[rng.Intn(len(awkwardPs))]
		}
		m := logp.Machine{
			P: p,
			L: logp.Time(1 + rng.Intn(8)),
			O: logp.Time(rng.Intn(3)),
			G: logp.Time(1 + rng.Intn(3)),
		}
		if m.Validate() == nil {
			return m
		}
	}
}

// walk grows a schedule send by send in nondecreasing time order, tracking
// exactly the state the machines enforce: send-port spacing and overhead
// windows at the sender, arrival spacing and overhead windows at the
// receiver (skipped at the burst drain target), item availability, and the
// in-transit capacity bound in both directions.
func walk(rng *rand.Rand, m logp.Machine, origins map[int]schedule.Origin, burst bool) *schedule.Schedule {
	s := &schedule.Schedule{M: m}
	sends := make([][]logp.Time, m.P) // send start times per proc, ascending
	arrs := make([][]logp.Time, m.P)  // arrival times per proc, ascending
	outEnds := make([][]logp.Time, m.P)
	inEnds := make([][]logp.Time, m.P)
	avail := make([]map[int]logp.Time, m.P)
	for i := range avail {
		avail[i] = make(map[int]logp.Time)
	}
	for item, og := range origins {
		if cur, ok := avail[og.Proc][item]; !ok || og.Time < cur {
			avail[og.Proc][item] = og.Time
		}
	}
	drain := -1
	if burst {
		drain = rng.Intn(m.P)
	}
	target := 3 + rng.Intn(10)
	made := 0
	for t, tries := logp.Time(0), 0; made < target && tries < 200; tries++ {
		for _, p := range rng.Perm(m.P) {
			if made >= target || p == drain || rng.Float64() < 0.35 {
				continue
			}
			// Items usable at p by time t, in deterministic order.
			var items []int
			for it, at := range avail[p] {
				if at <= t {
					items = append(items, it)
				}
			}
			if len(items) == 0 {
				continue
			}
			sort.Ints(items)
			item := items[rng.Intn(len(items))]
			dst := drain
			if dst < 0 {
				dst = rng.Intn(m.P - 1)
				if dst >= p {
					dst++
				}
			} else if dst == p {
				continue
			}
			if !legal(m, sends, arrs, outEnds, inEnds, p, dst, t, dst == drain) {
				continue
			}
			a := t + m.O + m.L
			s.Send(p, t, item, dst)
			sends[p] = append(sends[p], t)
			arrs[dst] = append(arrs[dst], a)
			outEnds[p] = append(outEnds[p], a)
			inEnds[dst] = append(inEnds[dst], a)
			if cur, ok := avail[dst][item]; !ok || a+m.O < cur {
				avail[dst][item] = a + m.O
			}
			made++
		}
		t += logp.Time(1 + rng.Intn(2))
	}
	return s
}

// legal reports whether a send from p to dst starting at t breaks none of
// the strict-mode machine rules given the sends and arrivals recorded so
// far. When relaxDst is set (burst mode) the receive-side checks at dst are
// skipped, making arrival collisions possible while everything the buffered
// machine enforces — sender port, overhead, capacity — stays respected.
func legal(m logp.Machine, sends, arrs, outEnds, inEnds [][]logp.Time, p, dst int, t logp.Time, relaxDst bool) bool {
	if n := len(sends[p]); n > 0 {
		last := sends[p][n-1]
		if t < last+m.G || t < last+m.O {
			return false
		}
	}
	// The sender must be outside every reception overhead window — including
	// future arrivals already implied by earlier sends.
	for _, a := range arrs[p] {
		if absDiff(t, a) < m.O {
			return false
		}
	}
	a := t + m.O + m.L
	if !relaxDst {
		gap := m.G
		if m.O > gap {
			gap = m.O
		}
		for _, x := range arrs[dst] {
			if absDiff(a, x) < gap {
				return false
			}
		}
		for _, x := range sends[dst] {
			if absDiff(a, x) < m.O {
				return false
			}
		}
	}
	// Capacity in both directions: every in-transit interval is (x+o, x+o+L]
	// with x <= t, so all intervals still open just after t+o overlap the
	// new one there.
	capN := m.Capacity()
	if inTransit(outEnds[p], t+m.O)+1 > capN {
		return false
	}
	if inTransit(inEnds[dst], t+m.O)+1 > capN {
		return false
	}
	return true
}

func inTransit(ends []logp.Time, at logp.Time) int {
	n := 0
	for _, e := range ends {
		if e > at {
			n++
		}
	}
	return n
}

func absDiff(a, b logp.Time) logp.Time {
	if a > b {
		return a - b
	}
	return b - a
}

// mutate applies one or two random perturbations to the schedule. Each class
// of perturbation is detectable by every backend, so mutated cases exercise
// the clean-flag agreement half of the contract.
func mutate(rng *rand.Rand, s *schedule.Schedule, nItems int) {
	n := 1 + rng.Intn(2)
	for i := 0; i < n && len(s.Events) > 0; i++ {
		idx := rng.Intn(len(s.Events))
		ev := &s.Events[idx]
		switch rng.Intn(4) {
		case 0: // shift in time, possibly before the clock starts
			ev.Time += logp.Time(rng.Intn(7) - 3)
			if ev.Time < -3 {
				ev.Time = -3
			}
		case 1: // retarget: to itself, out of range, or another processor
			switch rng.Intn(3) {
			case 0:
				ev.Peer = ev.Proc
			case 1:
				ev.Peer = s.M.P + rng.Intn(2)
			default:
				ev.Peer = rng.Intn(s.M.P)
			}
		case 2: // duplicate send at the same instant (port violation)
			dup := *ev
			s.Append(dup)
		case 3: // swap the item, possibly to one that has no origin at all
			ev.Item = rng.Intn(nItems + 1)
		}
	}
}
