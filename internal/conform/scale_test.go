package conform

import "testing"

// TestScaleCasesConform runs the backend-equivalence contract at the
// processor counts the million-processor engine work targets: broadcast and
// reduction at P = 64 and 1024 always, and P = 1e4 and 1e5 unless -short.
// This is where the sharded flight queue (sim) and the chunked worker pool
// (runtime) take over from the small-machine code paths, so lockstep here
// means the rework preserved the step semantics, not just the small cases.
func TestScaleCasesConform(t *testing.T) {
	ps := []int{64, 1024}
	if !testing.Short() {
		ps = append(ps, 10_000, 100_000)
	}
	ck := NewChecker()
	for _, c := range ScaleCases(ps...) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if diffs := ck.Check(c); len(diffs) != 0 {
				t.Fatalf("%d divergences:\n%s", len(diffs), diffs[0])
			}
		})
	}
}
