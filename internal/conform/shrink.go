package conform

import (
	"logpopt/internal/obs"
	"logpopt/internal/schedule"
)

// Shrinker metrics: trials counts predicate evaluations (each one replays
// the candidate on all five backends), steps counts accepted reductions.
var (
	mShrinkTrials = obs.Default.Counter("conform.shrink.trials")
	mShrinkSteps  = obs.Default.Counter("conform.shrink.steps")
)

// Shrink minimizes a diverging case while the predicate keeps holding: it
// greedily drops send events (largest-first passes until a fixed point),
// then drops origins no remaining event uses, then reduces P to the highest
// processor actually referenced. The result is the smallest case this
// process can reach that still satisfies diverges — typically a handful of
// events that make a divergence readable.
func Shrink(c Case, diverges func(Case) bool) Case {
	try := func(cand Case) bool {
		mShrinkTrials.Inc()
		if !diverges(cand) {
			return false
		}
		mShrinkSteps.Inc()
		return true
	}
	if !diverges(c) {
		return c
	}
	cur := c
	for {
		shrunk := false
		for i := len(cur.S.Events) - 1; i >= 0; i-- {
			cand := dropEvent(cur, i)
			if try(cand) {
				cur = cand
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}
	if cand, changed := dropUnusedOrigins(cur); changed && try(cand) {
		cur = cand
	}
	if cand, changed := reduceP(cur); changed && try(cand) {
		cur = cand
	}
	cur.Name = c.Name + "-shrunk"
	return cur
}

func dropEvent(c Case, i int) Case {
	evs := make([]schedule.Event, 0, len(c.S.Events)-1)
	evs = append(evs, c.S.Events[:i]...)
	evs = append(evs, c.S.Events[i+1:]...)
	return Case{
		Name:    c.Name,
		S:       &schedule.Schedule{M: c.S.M, Events: evs},
		Origins: c.Origins,
	}
}

func dropUnusedOrigins(c Case) (Case, bool) {
	used := make(map[int]bool)
	for _, ev := range c.S.Events {
		used[ev.Item] = true
	}
	og := make(map[int]schedule.Origin)
	changed := false
	for item, o := range c.Origins {
		if used[item] {
			og[item] = o
		} else {
			changed = true
		}
	}
	if !changed {
		return c, false
	}
	return Case{Name: c.Name, S: c.S, Origins: og}, true
}

func reduceP(c Case) (Case, bool) {
	hi := 1 // machines need P >= 2
	for _, ev := range c.S.Events {
		if ev.Proc > hi {
			hi = ev.Proc
		}
		if ev.Peer > hi {
			hi = ev.Peer
		}
	}
	for _, o := range c.Origins {
		if o.Proc > hi {
			hi = o.Proc
		}
	}
	if hi+1 >= c.S.M.P {
		return c, false
	}
	m := c.S.M
	m.P = hi + 1
	if m.Validate() != nil {
		return c, false
	}
	return Case{
		Name:    c.Name,
		S:       &schedule.Schedule{M: m, Events: c.S.Events},
		Origins: c.Origins,
	}, true
}
