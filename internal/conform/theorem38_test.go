package conform

import (
	"testing"

	"logpopt/internal/kitem"
	"logpopt/internal/logp"
)

// Theorem 3.8: in the modified model where arrivals queue and one message is
// received per step, k-item broadcast needs buffers of size at most 2. The
// staggered constructor claims that bound; here two independent machine
// implementations — the simulator's buffer high-water mark and the runtime's
// queue high-water mark — must both confirm it, and agree with each other
// and with the constructor's own bookkeeping.
func TestTheorem38BufferSize(t *testing.T) {
	ck := NewChecker()
	for _, pc := range [][3]int{{4, 9, 5}, {3, 8, 6}, {5, 12, 8}, {4, 16, 10}} {
		l, p, k := pc[0], pc[1], pc[2]
		st, err := kitem.Staggered(logp.Time(l), p, k)
		if err != nil {
			t.Fatalf("staggered l=%d p=%d k=%d: %v", l, p, k, err)
		}
		c := Case{Name: "staggered", S: st.Schedule, Origins: kitem.Origins(k)}
		simR := ck.simBuf.Replay(c)
		rtR := ck.rtBuf.Replay(c)
		if !simR.Clean() || !rtR.Clean() {
			t.Fatalf("l=%d p=%d k=%d: buffered replay not clean: sim=%v rt=%v",
				l, p, k, simR.Violations, rtR.Violations)
		}
		if simR.MaxBuffer != rtR.MaxBuffer {
			t.Errorf("l=%d p=%d k=%d: sim MaxBuffer=%d, runtime MaxQueue=%d",
				l, p, k, simR.MaxBuffer, rtR.MaxBuffer)
		}
		if simR.MaxBuffer != st.MaxBuffer {
			t.Errorf("l=%d p=%d k=%d: constructor claims MaxBuffer=%d, sim measured %d",
				l, p, k, st.MaxBuffer, simR.MaxBuffer)
		}
		if simR.MaxBuffer > 2 {
			t.Errorf("l=%d p=%d k=%d: buffer high-water %d exceeds Theorem 3.8's bound of 2",
				l, p, k, simR.MaxBuffer)
		}
	}
}

// The greedy buffered scheduler's replay is not violation-free (its drain
// bookkeeping predates the engine's tie-breaking), but the two executing
// backends must still agree on the queue high-water mark: both implement the
// same record-and-continue machine.
func TestBufferedGreedyHighWaterAgrees(t *testing.T) {
	ck := NewChecker()
	for _, pc := range [][3]int{{4, 9, 5}, {3, 8, 6}, {2, 6, 4}} {
		l, p, k := pc[0], pc[1], pc[2]
		r, err := kitem.Greedy(logp.Time(l), p, k, kitem.Buffered)
		if err != nil {
			t.Fatalf("greedy l=%d p=%d k=%d: %v", l, p, k, err)
		}
		c := Case{Name: "greedy-buffered", S: r.Schedule, Origins: kitem.Origins(k)}
		simR := ck.simBuf.Replay(c)
		rtR := ck.rtBuf.Replay(c)
		if simR.MaxBuffer != rtR.MaxBuffer {
			t.Errorf("l=%d p=%d k=%d: sim MaxBuffer=%d, runtime MaxQueue=%d",
				l, p, k, simR.MaxBuffer, rtR.MaxBuffer)
		}
	}
}
