package continuous

import (
	"testing"
)

// Ablation benchmarks for the word-assignment solver's design choices (see
// DESIGN.md): direct backtracking vs the paper's inductive composition, and
// the effect of the letter-preference seed. Run with
// `go test -bench=Ablation ./internal/continuous/`.

// BenchmarkAblationDirectSolve solves L=3, t=13 (P-1=88) by pure
// backtracking (seed 0, no induction), which succeeds within the budget.
func BenchmarkAblationDirectSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, err := NewInstance(3, 13)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := solveBase(inst, solveOpts{maxNodes: 50_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInductive solves the much larger L=3, t=20 (P-1=1278)
// through the strong-solution cache and composition; the point of the
// induction is that this scales linearly while direct search explodes.
func BenchmarkAblationInductive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sol := strongFor(3, 20)
		if sol == nil {
			b.Fatal("no strong solution for L=3 t=20")
		}
	}
}

// BenchmarkAblationSeedScarceFirst and ...PlentifulFirst compare the two
// letter-preference orders on the same instance (L=4, t=14).
func BenchmarkAblationSeedScarceFirst(b *testing.B) {
	benchSeed(b, 0)
}

// BenchmarkAblationSeedPlentifulFirst is the opposing letter order.
func BenchmarkAblationSeedPlentifulFirst(b *testing.B) {
	benchSeed(b, 1)
}

func benchSeed(b *testing.B, seed int64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		inst, err := NewInstance(4, 14)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := solveBase(inst, solveOpts{maxNodes: 100_000_000, seed: seed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSumPruningOff measures the strong base solver with the
// sum-target pruning disabled via an over-generous target; comparing with
// BenchmarkAblationStrongSolve shows what the pruning buys. (The pruning
// cannot be switched off without changing semantics, so this benchmark uses
// the plain solver as the no-pruning stand-in on the same instance.)
func BenchmarkAblationStrongSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, err := NewInstance(4, 14)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := solveBase(inst, solveOpts{maxNodes: 100_000_000, strong: true}); err != nil {
			b.Fatal(err)
		}
	}
}
