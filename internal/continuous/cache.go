package continuous

import (
	"sort"
	"sync"

	"logpopt/internal/obs"
)

// Memoization metrics: a high hit count on a slow sweep means repeat solves
// are served from cache and the cost is elsewhere; a high miss count with a
// high continuous.search.nodes count points at the portfolio itself.
var (
	mMemoHits   = obs.Default.Counter("continuous.memo.hits")
	mMemoMisses = obs.Default.Counter("continuous.memo.misses")
)

// This file holds the package-level memoization layer. Sweeps (the bench
// harness, the L=2 pruning enumeration, repeated test solves) hit the same
// word-assignment problems over and over; caching the portfolio results and
// the per-latency strong solvers makes every repeat solve O(solution size)
// and — because all guards are plain mutexes around deterministic values —
// keeps results identical under any degree of concurrency.

// solveKey identifies one base-solver portfolio run. The structural
// signature sig distinguishes instances that share (L, T, P) but have
// different trees (the L=2 construction enumerates many prunings of the
// same horizon tree), and the budget/seed fields keep runs with different
// search limits apart, since the budget changes the outcome for hard
// instances.
type solveKey struct {
	l, t, p int
	sig     uint64
	strong  bool
	seeds   int
	budget  int64 // base budget of the ladder
	epochs  int
}

// solveVal is a memoized portfolio result. words are shared, never mutated:
// every consumer copies letter indices out (applySolution, Instance.Solve)
// or treats them as immutable (strong composition).
type solveVal struct {
	words []idxWord
	recv  int
	err   error
}

var (
	solveMu    sync.Mutex
	solveMemo  = map[solveKey]solveVal{}
	strongMu   sync.Mutex
	strongSlvs = map[int]*strongSolver{}
)

// signature fingerprints the instance's combinatorial structure: the sorted
// block (size, delay) list and the leaf-delay multiset, hashed FNV-1a style.
// Two instances with equal (L, T, P, signature) pose the same word problem.
func signature(inst *Instance) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int) {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	for _, b := range inst.Blocks {
		mix(b.Size)
		mix(b.Delay)
	}
	delays := make([]int, 0, len(inst.LeafCount))
	for d := range inst.LeafCount {
		delays = append(delays, d)
	}
	sort.Ints(delays)
	for _, d := range delays {
		mix(d)
		mix(inst.LeafCount[d])
	}
	return h
}

// solveCached runs solvePortfolio through the package-level memo. Concurrent
// misses on the same key may compute the result more than once; both compute
// the identical deterministic value, so the last write is harmless.
func solveCached(inst *Instance, budgets []int64, seeds int, strong bool) ([]idxWord, int, error) {
	key := solveKey{
		l:      inst.L,
		t:      inst.T,
		p:      inst.P,
		sig:    signature(inst),
		strong: strong,
		seeds:  seeds,
		budget: budgets[0],
		epochs: len(budgets),
	}
	solveMu.Lock()
	if v, ok := solveMemo[key]; ok {
		solveMu.Unlock()
		mMemoHits.Inc()
		return v.words, v.recv, v.err
	}
	solveMu.Unlock()
	mMemoMisses.Inc()
	words, recv, err := solvePortfolio(inst, budgets, seeds, strong)
	solveMu.Lock()
	solveMemo[key] = solveVal{words: words, recv: recv, err: err}
	solveMu.Unlock()
	return words, recv, err
}

// strongFor returns the strong solution for (l, t), building every lower
// horizon first so the inductive composition I(t) = I(t-1) ⊎ I(t-L) finds
// its sub-solutions. The per-latency solvers are package-level so sweeps
// over t (and repeated sweeps across experiments) reuse all lower horizons;
// the coarse lock serializes cache growth while the base-case portfolio
// inside still fans out across seeds.
func strongFor(l, t int) *strongSolution {
	strongMu.Lock()
	defer strongMu.Unlock()
	ss := strongSlvs[l]
	if ss == nil {
		ss = newStrongSolver(l)
		strongSlvs[l] = ss
	}
	for tt := 2*l - 2; tt <= t; tt++ {
		ss.solutionFor(tt)
	}
	return ss.cache[t]
}

// resetCaches clears every package-level cache; benchmarks use it to measure
// cold-solve cost, and tests use it to exercise both cold and warm paths.
func resetCaches() {
	solveMu.Lock()
	solveMemo = map[solveKey]solveVal{}
	solveMu.Unlock()
	strongMu.Lock()
	strongSlvs = map[int]*strongSolver{}
	strongMu.Unlock()
}
