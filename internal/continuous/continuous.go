// Package continuous implements Section 3.1–3.3 of the paper: the continuous
// broadcast problem and its block-cyclic processor assignments.
//
// A source processor generates a new item every g = 1 steps (postal model);
// every item must reach all other P-1 processors. The delay of an item is
// the time from its creation to its arrival at the last processor; the lower
// bound on the worst-case delay is L + B(P-1), achievable only if each item
// is broadcast along an optimal tree, staggered one step apart, with no
// processor ever asked to send or receive two items in one step.
//
// Block-cyclic assignments (Section 3.2): fix the optimal broadcast tree
// T_{P-1} for P-1 = P(t). Every internal node with r children gets a block
// of r processors that receive the node's "uppercase" role cyclically (the
// recipient then spends r consecutive steps sending, returning exactly in
// time for its next turn); one processor is receive-only. The remaining
// schedule entries are "words": position p of a block's cyclic reception
// pattern receives a leaf role with some delay d, and the assignment is
// correct iff within each block the quantities (p - d) mod r are pairwise
// distinct — this residue criterion is exactly the paper's automaton
// restriction, and the word's letters must exactly consume the multiset of
// leaf delays of T_{P-1} (the paper's first restriction).
//
// Solve finds words by backtracking over that exact combinatorial problem
// and the result is verified by expanding to a concrete k-item schedule and
// running the independent validator; Theorem 3.3's claim (delay L+B(P-1)
// for 3 <= L <= 10 and t large enough) is thereby checked constructively,
// and the solver is not limited to L <= 10.
package continuous

import (
	"fmt"
	"sort"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Block is the processor block of one internal tree node.
type Block struct {
	Node  int   // tree node index in Instance.Tree
	Size  int   // number of children r; the block holds r processors
	Delay int   // the internal node's delay (its reception precedes r sends)
	Word  []int // assigned leaf delays for cyclic positions 1..Size-1
}

// Instance is one continuous-broadcast scheduling problem.
type Instance struct {
	L int // postal latency
	T int // single-item broadcast time; the item delay target is L+T
	P int // number of non-source processors

	Tree      *core.Tree // the broadcast tree (node 0 = root)
	Blocks    []Block    // one per internal node, sorted by descending size
	LeafCount map[int]int
	// RecvOnlyDelay is the leaf delay assigned to the receive-only
	// processor (set by Solve).
	RecvOnlyDelay int
	solved        bool
}

// NewInstance builds the instance for postal latency l and broadcast time t,
// requiring P-1 = P(t) (complete optimal tree, the regime of Section 3.2).
// It returns an error for l < 2 (l = 1 means every step's tree doubles and no
// processor is ever free; continuous broadcast degenerates) or t < l.
func NewInstance(l, t int) (*Instance, error) {
	if l < 2 {
		return nil, fmt.Errorf("continuous: latency %d < 2", l)
	}
	if t < l {
		return nil, fmt.Errorf("continuous: t=%d < L=%d (single non-source processor; trivial)", t, l)
	}
	p := int(core.SeqFor(l).F(t))
	tree := core.OptimalTree(logp.Postal(p, logp.Time(l)), p)
	if got := int(tree.MaxLabel()); got != t {
		return nil, fmt.Errorf("continuous: tree max label %d != t=%d", got, t)
	}
	return newFromTree(l, t, tree)
}

// newFromTree derives blocks and leaf counts from any broadcast tree whose
// internal nodes have consecutive earliest children (true for optimal trees
// and for suffix-pruned trees used in the L=2 construction).
func newFromTree(l, t int, tree *core.Tree) (*Instance, error) {
	inst := &Instance{L: l, T: t, P: tree.P(), Tree: tree, LeafCount: make(map[int]int)}
	for ni, nd := range tree.Nodes {
		if len(nd.Children) == 0 {
			inst.LeafCount[int(nd.Label)]++
			continue
		}
		// Children must sit at consecutive delays d+l, d+l+1, ...: the
		// uppercase recipient sends for exactly r consecutive steps.
		for i, ci := range nd.Children {
			want := nd.Label + logp.Time(l) + logp.Time(i)
			if tree.Nodes[ci].Label != want {
				return nil, fmt.Errorf("continuous: node %d child %d at delay %d, want %d (non-consecutive children)",
					ni, i, tree.Nodes[ci].Label, want)
			}
		}
		inst.Blocks = append(inst.Blocks, Block{
			Node:  ni,
			Size:  len(nd.Children),
			Delay: int(nd.Label),
		})
	}
	// Most-constrained-first: small blocks have the fewest legal words, so
	// the backtracking solver handles them before the flexible large blocks.
	sort.SliceStable(inst.Blocks, func(i, j int) bool {
		if inst.Blocks[i].Size != inst.Blocks[j].Size {
			return inst.Blocks[i].Size < inst.Blocks[j].Size
		}
		return inst.Blocks[i].Delay < inst.Blocks[j].Delay
	})
	// Sanity: sum of block sizes + 1 receive-only = P-1... here Tree.P()
	// counts the non-source processors' tree nodes, so sum r_b = P-2? No:
	// the tree has P nodes and P-1 edges; each edge is one block slot, and
	// slots per block = size, so sum sizes = edges = tree.P()-1. With the
	// uppercase slot being the node's own reception... each node except the
	// root receives once per item; the root also receives (from the
	// source). Slots: each block of size r has r cyclic positions; total
	// positions = sum r_b + (receive-only 1) must equal tree.P().
	total := 1
	for _, b := range inst.Blocks {
		total += b.Size
	}
	words := 0
	for _, c := range inst.LeafCount {
		words += c
	}
	if total != tree.P() {
		return nil, fmt.Errorf("continuous: %d cyclic positions for %d processors", total, tree.P())
	}
	if want := wordSlots(inst); words != want {
		return nil, fmt.Errorf("continuous: %d leaves for %d word slots", words, want)
	}
	return inst, nil
}

// alphabet returns the number of letter indices in play: max over leaves of
// (T - delay) + 1. For complete optimal trees this equals L.
func (inst *Instance) alphabet() int {
	n := 1
	for d := range inst.LeafCount {
		if i := inst.T - d + 1; i > n {
			n = i
		}
	}
	return n
}

func wordSlots(inst *Instance) int {
	n := 1 // receive-only
	for _, b := range inst.Blocks {
		n += b.Size - 1
	}
	return n
}

func mod(a, r int) int { return ((a % r) + r) % r }

// solveDirectSeeds is the number of letter orders the direct (non-strong)
// portfolio races before falling back to the inductive construction.
const solveDirectSeeds = 4

// Solve assigns words to every block and a delay to the receive-only
// processor. It first runs a parallel portfolio of direct backtracking
// searches over the exact letter multiset and the residue criterion — all
// letter-order seeds race on up to par.Limit() workers, with the lowest
// successful seed winning so results match sequential execution exactly
// (maxNodes bounds each attempt; <= 0 means a default). If direct search
// does not finish, it falls back to the paper's inductive construction
// (Section 3.3): strong base cases with the receive-only processor on 'b'
// and the root word in the canonical family a^{L-2}(ca)^j b^m, composed
// upward via I(t) = I(t-1) ⊎ I(t-L). Results are memoized package-wide, so
// repeated solves of the same instance are O(solution size). On success the
// instance is marked solved and can build schedules. Solve may be called
// concurrently on different Instance values for the same problem; a single
// Instance must not be solved from multiple goroutines at once (Solve
// mutates the receiver's blocks).
func (inst *Instance) Solve(maxNodes int64) error {
	if maxNodes <= 0 {
		maxNodes = 4_000_000
	}
	words, recv, err := solveCached(inst, []int64{maxNodes}, solveDirectSeeds, false)
	if err == nil {
		for bi := range inst.Blocks {
			b := &inst.Blocks[bi]
			b.Word = make([]int, len(words[bi]))
			for i, ix := range words[bi] {
				b.Word[i] = inst.T - ix
			}
		}
		inst.RecvOnlyDelay = inst.T - recv
		inst.solved = true
		return nil
	}
	if !isBudgetErr(err) {
		// Exhaustive search proved no solution exists (the letter order
		// does not affect completeness): report immediately.
		return err
	}
	if inst.L < 3 {
		return err
	}
	if sol := strongFor(inst.L, inst.T); sol != nil {
		if aerr := applySolution(inst, sol); aerr == nil {
			return nil
		}
	}
	return err
}

// Delay returns the per-item delay the solved instance achieves: L + T.
func (inst *Instance) Delay() int { return inst.L + inst.T }

// slot identifies one cyclic reception position: block index (or -1 for the
// receive-only processor) and position within the block's cyclic word.
type slot struct {
	block int
	pos   int
}

// Assignment maps tree nodes to cyclic slots and processors; build one with
// Assign after Solve succeeds.
type Assignment struct {
	Inst       *Instance
	SlotOf     []slot  // per tree node
	BlockProcs [][]int // processor ids per block (size r each)
	RecvOnly   int     // processor id of the receive-only processor
	Source     int     // processor id of the source (always 0)
}

// Assign lays out processors: the source is processor 0; each block gets the
// next Size processor ids; the receive-only processor is the last id (= P).
// Tree leaves are matched to word slots of equal delay in deterministic
// order.
func (inst *Instance) Assign() (*Assignment, error) {
	if !inst.solved {
		return nil, fmt.Errorf("continuous: instance not solved")
	}
	a := &Assignment{Inst: inst, Source: 0}
	a.SlotOf = make([]slot, inst.Tree.P())
	next := 1
	a.BlockProcs = make([][]int, len(inst.Blocks))
	slotsByDelay := make(map[int][]slot)
	for bi, b := range inst.Blocks {
		procs := make([]int, b.Size)
		for j := range procs {
			procs[j] = next
			next++
		}
		a.BlockProcs[bi] = procs
		a.SlotOf[b.Node] = slot{block: bi, pos: 0}
		for p := 1; p < b.Size; p++ {
			d := b.Word[p-1]
			slotsByDelay[d] = append(slotsByDelay[d], slot{block: bi, pos: p})
		}
	}
	a.RecvOnly = next
	next++
	slotsByDelay[inst.RecvOnlyDelay] = append(slotsByDelay[inst.RecvOnlyDelay], slot{block: -1})
	// Match leaves (in node order) to slots of the same delay.
	used := make(map[int]int)
	for ni, nd := range inst.Tree.Nodes {
		if len(nd.Children) > 0 {
			continue
		}
		d := int(nd.Label)
		ss := slotsByDelay[d]
		k := used[d]
		if k >= len(ss) {
			return nil, fmt.Errorf("continuous: no slot left for leaf delay %d", d)
		}
		used[d]++
		a.SlotOf[ni] = ss[k]
	}
	return a, nil
}

// ProcFor returns the processor that handles tree node ni for item x.
func (a *Assignment) ProcFor(x, ni int) int {
	s := a.SlotOf[ni]
	if s.block < 0 {
		return a.RecvOnly
	}
	b := a.Inst.Blocks[s.block]
	sigma := x + a.Inst.L + int(a.Inst.Tree.Nodes[ni].Label)
	j := mod(sigma-s.pos, b.Size)
	return a.BlockProcs[s.block][j]
}

// KItemSchedule expands the solved instance into a complete schedule
// broadcasting items 0..k-1 (item x generated at the source at time x) on
// P+1 processors (source = 0). Every item's delay is exactly L + T, so the
// last reception is at k-1+L+T and the whole broadcast finishes at
// B(P-1) + L + k - 1 — the single-sending lower bound of Section 3.4.
func (a *Assignment) KItemSchedule(k int) *schedule.Schedule {
	inst := a.Inst
	m := logp.Postal(inst.P+1, logp.Time(inst.L))
	s := &schedule.Schedule{M: m}
	for x := 0; x < k; x++ {
		// Source to root.
		root := a.ProcFor(x, 0)
		s.Send(a.Source, logp.Time(x), x, root)
		s.Recv(root, logp.Time(x+inst.L), x, a.Source)
		// Tree sends.
		for ni, nd := range inst.Tree.Nodes {
			if len(nd.Children) == 0 {
				continue
			}
			from := a.ProcFor(x, ni)
			for i, ci := range nd.Children {
				st := logp.Time(x + inst.L + int(nd.Label) + i)
				to := a.ProcFor(x, ci)
				s.Send(from, st, x, to)
				s.Recv(to, st+m.L, x, from)
			}
		}
	}
	return s
}

// Origins returns the origin map for a k-item schedule from KItemSchedule.
func Origins(k int) map[int]schedule.Origin {
	og := make(map[int]schedule.Origin, k)
	for x := 0; x < k; x++ {
		og[x] = schedule.Origin{Proc: 0, Time: logp.Time(x)}
	}
	return og
}

// VerifyDelay checks that in the schedule every item x is fully delivered by
// x + maxDelay and returns the worst observed delay.
func VerifyDelay(s *schedule.Schedule, k int, maxDelay int) (int, error) {
	worst := 0
	for x := 0; x < k; x++ {
		var last logp.Time
		n := 0
		for _, e := range s.Events {
			if e.Op == schedule.OpRecv && e.Item == x {
				n++
				if t := e.Time + s.M.O; t > last {
					last = t
				}
			}
		}
		if n != s.M.P-1 {
			return 0, fmt.Errorf("continuous: item %d delivered to %d of %d processors", x, n, s.M.P-1)
		}
		d := int(last) - x
		if d > worst {
			worst = d
		}
		if d > maxDelay {
			return worst, fmt.Errorf("continuous: item %d delay %d exceeds %d", x, d, maxDelay)
		}
	}
	return worst, nil
}

// SolveAndSchedule is the one-call convenience: build the instance for
// (l, t), solve it, assign processors and emit a k-item schedule.
func SolveAndSchedule(l, t, k int) (*Instance, *schedule.Schedule, error) {
	inst, err := NewInstance(l, t)
	if err != nil {
		return nil, nil, err
	}
	if err := inst.Solve(0); err != nil {
		return nil, nil, err
	}
	a, err := inst.Assign()
	if err != nil {
		return nil, nil, err
	}
	return inst, a.KItemSchedule(k), nil
}

// NewInstanceGeneral builds a continuous-broadcast instance for ANY number
// p >= 2 of non-source processors (not only p = P(t)): the broadcast tree is
// the optimal tree ß(p) with horizon t = B(p), and blocks/letters derive
// from it exactly as in Section 3.2. The paper analyzes only p = P(t) ("the
// tree is unique"); solving the general instance, when the word search
// succeeds, extends the optimal-delay result to every p — and therefore
// yields exact single-sending optimal k-item broadcast for every P.
func NewInstanceGeneral(l, p int) (*Instance, error) {
	if l < 2 {
		return nil, fmt.Errorf("continuous: latency %d < 2", l)
	}
	if p < 2 {
		return nil, fmt.Errorf("continuous: need at least 2 non-source processors, got %d", p)
	}
	t := core.SeqFor(l).InvF(int64(p))
	tree := core.OptimalTree(logp.Postal(p, logp.Time(l)), p)
	if got := int(tree.MaxLabel()); got != t {
		return nil, fmt.Errorf("continuous: tree max label %d != B(p)=%d", got, t)
	}
	return newFromTree(l, t, tree)
}

// SolveGeneralAndSchedule is SolveAndSchedule for arbitrary P-1 = p (not
// only p = P(t)): it builds the general instance, solves the word
// assignment, and emits a k-item schedule with per-item delay exactly
// L + B(p). It fails (with ErrNoSolution or ErrBudget inside) when no
// block-cyclic solution exists — notably for L = 2 near p = P(t).
func SolveGeneralAndSchedule(l, p, k int) (*Instance, *schedule.Schedule, error) {
	inst, err := NewInstanceGeneral(l, p)
	if err != nil {
		return nil, nil, err
	}
	if err := inst.Solve(0); err != nil {
		return nil, nil, err
	}
	a, err := inst.Assign()
	if err != nil {
		return nil, nil, err
	}
	return inst, a.KItemSchedule(k), nil
}
