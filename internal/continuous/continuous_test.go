package continuous

import (
	"errors"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/schedule"
)

func solveAndVerify(t *testing.T, l, tt, k int) *Instance {
	t.Helper()
	inst, s, err := SolveAndSchedule(l, tt, k)
	if err != nil {
		t.Fatalf("L=%d t=%d: %v", l, tt, err)
	}
	if vs := schedule.ValidateBroadcast(s, Origins(k)); len(vs) != 0 {
		t.Fatalf("L=%d t=%d: %v", l, tt, vs[0])
	}
	worst, err := VerifyDelay(s, k, inst.Delay())
	if err != nil {
		t.Fatalf("L=%d t=%d: %v", l, tt, err)
	}
	if worst != inst.Delay() {
		t.Fatalf("L=%d t=%d: worst delay %d, want exactly %d", l, tt, worst, inst.Delay())
	}
	return inst
}

func TestRunningExampleL3T7(t *testing.T) {
	// Section 3.2's running example: L=3, P-1 = P(7) = 9, delay 10.
	inst := solveAndVerify(t, 3, 7, 20)
	if inst.P != 9 {
		t.Fatalf("P-1 = %d, want 9", inst.P)
	}
	if inst.Delay() != 10 {
		t.Fatalf("delay %d, want 10", inst.Delay())
	}
	// Block structure: H5 (root, delay 0), E2 (delay 3), D1 (delay 4).
	sizes := map[int]int{}
	for _, b := range inst.Blocks {
		sizes[b.Size]++
	}
	if sizes[5] != 1 || sizes[2] != 1 || sizes[1] != 1 || len(inst.Blocks) != 3 {
		t.Fatalf("block sizes %v, want one each of 5, 2, 1", sizes)
	}
}

func TestTheorem33SmallL(t *testing.T) {
	// Theorem 3.3: for 3 <= L <= 10 and t large enough, delay L + B(P-1) is
	// achievable. Verified constructively on full sweeps for L=3..6 (the
	// only failures are the genuinely infeasible t = 2L for even L).
	for l := 3; l <= 6; l++ {
		for tt := l; tt <= 3*l+6; tt++ {
			if (l == 4 || l == 6) && tt == 2*l {
				continue // proven infeasible below
			}
			solveAndVerify(t, l, tt, l+2)
		}
	}
}

func TestTheorem33LargerL(t *testing.T) {
	// Spot checks for L=7..10 (full sweeps are slow; the bench harness
	// covers wider ranges).
	for _, c := range []struct{ l, t int }{
		{7, 14}, {7, 18}, {8, 17}, {8, 22}, {9, 19}, {10, 22},
	} {
		solveAndVerify(t, c.l, c.t, c.l+1)
	}
}

func TestInfeasibleInstances(t *testing.T) {
	// The paper remarks (after Corollary 3.1) that block-cyclic schedules
	// cannot always achieve minimum delay, citing L=4, t=8. Our exhaustive
	// search confirms that instance and finds the same phenomenon at t = 2L
	// for the other even L.
	for _, c := range []struct{ l, t int }{{4, 8}, {6, 12}, {8, 16}} {
		inst, err := NewInstance(c.l, c.t)
		if err != nil {
			t.Fatal(err)
		}
		err = inst.Solve(0)
		if err == nil {
			t.Fatalf("L=%d t=%d unexpectedly solved", c.l, c.t)
		}
		if !errors.Is(err, ErrNoSolution) {
			t.Fatalf("L=%d t=%d: want definitive infeasibility, got %v", c.l, c.t, err)
		}
	}
}

func TestTheorem34L2Impossible(t *testing.T) {
	// Theorem 3.4: for L = 2 there are infinitely many P for which delay
	// L + B(P-1) is unachievable. Our exhaustive search proves it for every
	// t in [4, 12] (t = 2 and 3 are the trivial solvable cases).
	for tt := 4; tt <= 12; tt++ {
		inst, err := NewInstance(2, tt)
		if err != nil {
			t.Fatal(err)
		}
		err = inst.Solve(0)
		if err == nil {
			t.Fatalf("L=2 t=%d unexpectedly solved", tt)
		}
		if !errors.Is(err, ErrNoSolution) {
			t.Fatalf("L=2 t=%d: want definitive infeasibility, got %v", tt, err)
		}
	}
	// The two tiny solvable cases.
	solveAndVerify(t, 2, 2, 5)
	solveAndVerify(t, 2, 3, 5)
}

func TestInductionLargeT(t *testing.T) {
	// Large horizons are reached via the inductive composition
	// I(t) = I(t-1) ⊎ I(t-L); P-1 = P(22) = 2745 processors for L=3.
	inst := solveAndVerify(t, 3, 22, 4)
	if want := int(core.NewSeq(3).F(22)); inst.P != want {
		t.Fatalf("P-1 = %d, want %d", inst.P, want)
	}
}

func TestNewInstanceRejects(t *testing.T) {
	if _, err := NewInstance(1, 5); err == nil {
		t.Fatal("L=1 accepted")
	}
	if _, err := NewInstance(3, 2); err == nil {
		t.Fatal("t < L accepted")
	}
}

func TestUnsolvedInstanceCannotSchedule(t *testing.T) {
	inst, err := NewInstance(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Assign(); err == nil {
		t.Fatal("Assign before Solve succeeded")
	}
}

func TestWordsConsumeLeafMultiset(t *testing.T) {
	inst, err := NewInstance(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Solve(0); err != nil {
		t.Fatal(err)
	}
	use := map[int]int{inst.RecvOnlyDelay: 1}
	for _, b := range inst.Blocks {
		if len(b.Word) != b.Size-1 {
			t.Fatalf("block size %d has word of length %d", b.Size, len(b.Word))
		}
		for _, d := range b.Word {
			use[d]++
		}
	}
	for d, c := range inst.LeafCount {
		if use[d] != c {
			t.Fatalf("delay %d used %d times, leaf count %d", d, use[d], c)
		}
	}
}

func TestResidueCriterion(t *testing.T) {
	// Every solved block satisfies the distinct-residue criterion (the
	// paper's automaton condition): (p - delay_p) mod r pairwise distinct.
	inst, err := NewInstance(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Solve(0); err != nil {
		t.Fatal(err)
	}
	for _, b := range inst.Blocks {
		seen := map[int]bool{mod(-b.Delay, b.Size): true}
		for p := 1; p < b.Size; p++ {
			res := mod(p-b.Word[p-1], b.Size)
			if seen[res] {
				t.Fatalf("block %+v: residue clash at position %d", b, p)
			}
			seen[res] = true
		}
	}
}

func TestFamilyWordLegalEverySize(t *testing.T) {
	// Lemma 3.1: the canonical family a^{L-2}(ca)^j b^m is legal for the
	// root block of every size, i.e. whenever t ≡ L-1 (mod size) — which is
	// exactly the root's situation, size = t-L+1.
	for l := 3; l <= 8; l++ {
		for j := 0; j <= 4; j++ {
			for m := 0; m <= 5; m++ {
				w := familyWord(l, j, m)
				size := len(w) + 1
				for _, tt := range []int{size + l - 1, 2*size + l - 1, 3*size + l - 1} {
					if !legalIdxWord(tt, size, 0, w) {
						t.Fatalf("family word L=%d j=%d m=%d illegal at t=%d", l, j, m, tt)
					}
				}
			}
		}
	}
}

func TestVerifyDelayDetectsMissingReception(t *testing.T) {
	_, s, err := SolveAndSchedule(3, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one reception of item 2.
	for i, e := range s.Events {
		if e.Op == schedule.OpRecv && e.Item == 2 {
			s.Events = append(s.Events[:i], s.Events[i+1:]...)
			break
		}
	}
	if _, err := VerifyDelay(s, 3, 100); err == nil {
		t.Fatal("missing reception not detected")
	}
}

func TestProcForIsBijectionPerItem(t *testing.T) {
	inst, err := NewInstance(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Solve(0); err != nil {
		t.Fatal(err)
	}
	a, err := inst.Assign()
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 25; x++ {
		seen := make(map[int]bool)
		for ni := range inst.Tree.Nodes {
			q := a.ProcFor(x, ni)
			if q < 1 || q > inst.P {
				t.Fatalf("item %d node %d -> proc %d out of range", x, ni, q)
			}
			if seen[q] {
				t.Fatalf("item %d: proc %d assigned twice", x, q)
			}
			seen[q] = true
		}
		if len(seen) != inst.P {
			t.Fatalf("item %d: %d procs used, want %d", x, len(seen), inst.P)
		}
	}
}

func TestTheorem35L2PlusOne(t *testing.T) {
	// Theorem 3.5: for L=2 a delay of L + B(P-1) + 1 is achievable whenever
	// P-1 = P(t), via pruned trees.
	for tt := 3; tt <= 12; tt++ {
		inst, err := SolveL2(tt)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if inst.Delay() != tt+3 {
			t.Fatalf("t=%d: delay %d, want %d", tt, inst.Delay(), tt+3)
		}
		a, err := inst.Assign()
		if err != nil {
			t.Fatal(err)
		}
		k := 8
		s := a.KItemSchedule(k)
		if vs := schedule.ValidateBroadcast(s, Origins(k)); len(vs) != 0 {
			t.Fatalf("t=%d: %v", tt, vs[0])
		}
		worst, err := VerifyDelay(s, k, inst.Delay())
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if worst > tt+3 {
			t.Fatalf("t=%d: worst delay %d exceeds %d", tt, worst, tt+3)
		}
	}
}

func TestSolveL2Rejects(t *testing.T) {
	if _, err := SolveL2(1); err == nil {
		t.Fatal("t=1 accepted")
	}
}
