package continuous

import (
	"fmt"

	"logpopt/internal/core"
	"logpopt/internal/logp"
)

// This file implements Theorem 3.5: for L = 2, a continuous-broadcast delay
// of L + B(P-1) + 1 is achievable whenever P-1 = P(t), even though the
// optimal delay L + B(P-1) is not (Theorem 3.4, reproduced exhaustively in
// the tests). The construction prunes the optimal tree for P(t+1) processors
// down to P(t) nodes — removing both leaves from some nodes with many
// children and the deeper leaf from some of the others, exactly as the
// paper's proof sketch describes — and then runs the ordinary block-cyclic
// word solver on the pruned (slack) tree. Every item is broadcast along the
// pruned tree, whose depth is t+1, giving delay 2 + t + 1.

// SolveL2 builds and solves a delay-(t+3) continuous broadcast instance for
// L = 2 and P-1 = P(t) = f_t processors, t >= 2. The returned instance's
// Delay() is t+3 = L + B(P-1) + 1.
func SolveL2(t int) (*Instance, error) {
	const l = 2
	if t < 2 {
		return nil, fmt.Errorf("continuous: SolveL2 requires t >= 2")
	}
	seq := core.NewSeq(l)
	want := int(seq.F(t))    // nodes to keep
	big := int(seq.F(t + 1)) // nodes of the horizon-(t+1) optimal tree
	remove := big - want     // = f_{t-1}
	full := core.OptimalTree(logp.Postal(big, l), big)
	if int(full.MaxLabel()) != t+1 {
		return nil, fmt.Errorf("continuous: horizon tree has depth %d, want %d", full.MaxLabel(), t+1)
	}
	// Classify internal nodes by child count. In the horizon-(t+1) tree a
	// node at delay d has t-d children; its last two children (delays t and
	// t+1) are leaves (one leaf, at t+1, if it has a single child).
	var with1, with2, with3, withMore []int
	for ni, nd := range full.Nodes {
		switch len(nd.Children) {
		case 0:
		case 1:
			with1 = append(with1, ni)
		case 2:
			with2 = append(with2, ni)
		case 3:
			with3 = append(with3, ni)
		default:
			withMore = append(withMore, ni)
		}
	}
	// The paper prunes both leaves from all nodes with >= 4 children, both
	// leaves from a fraction of the 3-child nodes, and the deeper leaf from
	// fractions of the 1- and 2-child nodes. Enumerate those fractions.
	mandatory := 2 * len(withMore)
	if mandatory > remove {
		return nil, fmt.Errorf("continuous: pruning arithmetic broken at t=%d", t)
	}
	rest := remove - mandatory
	for b := 0; b <= len(with3) && 2*b <= rest; b++ {
		for c2 := 0; c2 <= len(with2) && 2*b+c2 <= rest; c2++ {
			c1 := rest - 2*b - c2
			if c1 > len(with1) {
				continue
			}
			inst, err := buildPrunedL2(full, with1, with2, with3, withMore, b, c2, c1, t)
			if err != nil {
				continue
			}
			if err := inst.Solve(400_000); err == nil {
				return inst, nil
			}
		}
	}
	return nil, fmt.Errorf("continuous: no Theorem 3.5 pruning found for t=%d", t)
}

// buildPrunedL2 removes, from a copy of the horizon-(t+1) tree: both leaf
// children of every node in withMore and of the first b nodes of with3, and
// the deeper leaf child of the first c2 nodes of with2 and first c1 nodes of
// with1. It reindexes the surviving nodes and assembles the instance.
func buildPrunedL2(full *core.Tree, with1, with2, with3, withMore []int, b, c2, c1, t int) (*Instance, error) {
	drop := make(map[int]bool)
	dropLast := func(ni, n int) {
		ch := full.Nodes[ni].Children
		for i := len(ch) - n; i < len(ch); i++ {
			drop[ch[i]] = true
		}
	}
	for _, ni := range withMore {
		dropLast(ni, 2)
	}
	for i := 0; i < b; i++ {
		dropLast(with3[i], 2)
	}
	for i := 0; i < c2; i++ {
		dropLast(with2[i], 1)
	}
	for i := 0; i < c1; i++ {
		dropLast(with1[i], 1)
	}
	// Reindex survivors.
	newIdx := make([]int, full.P())
	for i := range newIdx {
		newIdx[i] = -1
	}
	pruned := &core.Tree{M: full.M}
	for ni, nd := range full.Nodes {
		if drop[ni] {
			continue
		}
		newIdx[ni] = len(pruned.Nodes)
		parent := -1
		if nd.Parent >= 0 {
			parent = newIdx[nd.Parent]
		}
		pruned.Nodes = append(pruned.Nodes, core.Node{Label: nd.Label, Parent: parent})
	}
	for ni, nd := range full.Nodes {
		if drop[ni] || nd.Parent < 0 {
			continue
		}
		p := newIdx[nd.Parent]
		pruned.Nodes[p].Children = append(pruned.Nodes[p].Children, newIdx[ni])
	}
	return newFromTree(2, t+1, pruned)
}
