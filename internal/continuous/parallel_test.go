package continuous

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"logpopt/internal/par"
)

// solvedShape captures everything Solve decides: the block words (in block
// order) and the receive-only delay.
func solvedShape(inst *Instance) string {
	s := fmt.Sprintf("recv=%d", inst.RecvOnlyDelay)
	for _, b := range inst.Blocks {
		s += fmt.Sprintf(" (%d,%d)%v", b.Size, b.Delay, b.Word)
	}
	return s
}

func solveShape(t *testing.T, l, horizon int) string {
	t.Helper()
	inst, err := NewInstance(l, horizon)
	if err != nil {
		t.Fatalf("NewInstance(%d,%d): %v", l, horizon, err)
	}
	switch err := inst.Solve(0); {
	case err == nil:
		return solvedShape(inst)
	case errors.Is(err, ErrNoSolution):
		return "infeasible" // a deterministic outcome too
	default:
		t.Fatalf("Solve(%d,%d): %v", l, horizon, err)
		return ""
	}
}

// TestSolveDeterministicAcrossParallelism checks the portfolio contract: the
// solver must return the exact same solution whatever the worker-pool width,
// for every base-case instance 3 <= L <= 10 (and a couple of larger horizons
// that exercise the inductive composition).
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	type inst struct{ l, t int }
	var cases []inst
	for l := 3; l <= 10; l++ {
		for horizon := l; horizon <= 2*l; horizon++ {
			cases = append(cases, inst{l, horizon})
		}
	}
	oldLimit := par.Limit()
	defer par.SetLimit(oldLimit)

	want := make(map[inst]string)
	par.SetLimit(1)
	resetCaches()
	for _, c := range cases {
		want[c] = solveShape(t, c.l, c.t)
	}
	for _, lim := range []int{2, 8} {
		par.SetLimit(lim)
		resetCaches()
		for _, c := range cases {
			if got := solveShape(t, c.l, c.t); got != want[c] {
				t.Errorf("L=%d t=%d: limit %d solved %s; sequential solved %s",
					c.l, c.t, lim, got, want[c])
			}
		}
	}
}

// TestSolveConcurrentSameKey hammers the memo cache: many goroutines solve
// fresh Instance values for the same (L, t) keys at once. Run under -race
// this validates the cache locking; the assertions validate that every
// goroutine observes the same solution.
func TestSolveConcurrentSameKey(t *testing.T) {
	type inst struct{ l, t int }
	keys := []inst{{3, 8}, {3, 9}, {4, 10}, {5, 12}}
	resetCaches()
	const goroutines = 8
	results := make([]map[inst]string, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(keys))
	for g := 0; g < goroutines; g++ {
		g := g
		results[g] = make(map[inst]string)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				in, err := NewInstance(k.l, k.t)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d NewInstance(%d,%d): %v", g, k.l, k.t, err)
					return
				}
				if err := in.Solve(0); err != nil {
					errs <- fmt.Errorf("goroutine %d Solve(%d,%d): %v", g, k.l, k.t, err)
					return
				}
				results[g][k] = solvedShape(in)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 1; g < goroutines; g++ {
		for _, k := range keys {
			if results[g][k] != results[0][k] {
				t.Errorf("goroutine %d solved (%d,%d) as %s; goroutine 0 as %s",
					g, k.l, k.t, results[g][k], results[0][k])
			}
		}
	}
}

// BenchmarkSolverPortfolio measures a cold base-case sweep (3 <= L <= 10,
// L <= t <= 2L): every iteration clears the memo caches, so the portfolio
// search itself is timed, not the cache hit. Search-effort counters are
// reported per op so regressions in pruning show up alongside wall time.
func BenchmarkSolverPortfolio(b *testing.B) {
	nodes0 := mSearchNodes.Value()
	prunes0 := mSearchPrunes.Value()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resetCaches()
		for l := 3; l <= 10; l++ {
			for horizon := l; horizon <= 2*l; horizon++ {
				inst, err := NewInstance(l, horizon)
				if err != nil {
					b.Fatal(err)
				}
				if err := inst.Solve(0); err != nil && !errors.Is(err, ErrNoSolution) {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(mSearchNodes.Value()-nodes0)/float64(b.N), "nodes/op")
	b.ReportMetric(float64(mSearchPrunes.Value()-prunes0)/float64(b.N), "prunes/op")
}

// BenchmarkSolverMemoized measures the same sweep served from the package
// memo cache (the steady state inside table sweeps and schedule builders).
func BenchmarkSolverMemoized(b *testing.B) {
	hits0 := mMemoHits.Value()
	b.ReportAllocs()
	resetCaches()
	for i := 0; i < b.N; i++ {
		for l := 3; l <= 10; l++ {
			for horizon := l; horizon <= 2*l; horizon++ {
				inst, err := NewInstance(l, horizon)
				if err != nil {
					b.Fatal(err)
				}
				if err := inst.Solve(0); err != nil && !errors.Is(err, ErrNoSolution) {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(mMemoHits.Value()-hits0)/float64(b.N), "memohits/op")
}

// TestSolveInfeasibleConcurrent checks that ErrNoSolution (an exhaustive
// infeasibility proof, which aborts the whole portfolio) is reported
// consistently under concurrency. L=2, t=8 is the paper's Theorem 3.4
// infeasible point.
func TestSolveInfeasibleConcurrent(t *testing.T) {
	resetCaches()
	const goroutines = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, err := NewInstance(2, 8)
			if err != nil {
				errs[g] = fmt.Errorf("NewInstance: %v", err)
				return
			}
			errs[g] = in.Solve(0)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrNoSolution) {
			t.Errorf("goroutine %d: err = %v, want ErrNoSolution", g, err)
		}
	}
}
