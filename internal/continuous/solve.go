package continuous

import (
	"errors"
	"fmt"

	"logpopt/internal/obs"
	"logpopt/internal/par"
)

// Search metrics. Per the obs overhead discipline, the backtracking hot loop
// tallies into plain baseSearch fields; solveBase flushes one atomic add per
// counter per run.
var (
	mSearchRuns   = obs.Default.Counter("continuous.search.runs")
	mSearchNodes  = obs.Default.Counter("continuous.search.nodes")
	mSearchPrunes = obs.Default.Counter("continuous.search.prunes")
)

// Sentinel errors distinguishing "ran out of search budget" (retrying with a
// different seed or larger budget may help) from "exhaustively proved there
// is no solution".
var (
	ErrBudget     = errors.New("search budget exhausted")
	ErrNoSolution = errors.New("no block-cyclic solution")
)

// errCanceled marks a search attempt cut short because a portfolio sibling
// already decided the instance; it never escapes the portfolio layer.
var errCanceled = errors.New("search canceled")

func isBudgetErr(err error) bool { return errors.Is(err, ErrBudget) }

// This file contains the word-assignment solvers. Words are handled
// internally in "letter index" form: letter index i denotes the leaf delay
// t-i, i.e. 'a' (index 0) is the item whose broadcast terminates at the
// current step, 'b' (index 1) the one terminating next step, and so on —
// the paper's relative addressing. The index form is translation-invariant,
// which is what makes the paper's inductive composition
//
//	I(t) = I(t-1) ⊎ I(t-L)
//
// work: words carried from the sub-solutions remain legal verbatim because
// all residues shift uniformly.

// idxWord is a word in letter-index form.
type idxWord []int

// strongSolution is a solution in the composable form the induction of
// Section 3.3 needs: composing I(t) = I(t-1) ⊎ I(t-L) moves the receive-only
// letter of I(t-L) into the grown root word and keeps I(t-1)'s receive-only
// processor. The paper fixes both receive-only letters to 'b' and keeps the
// root word inside the canonical family a^{L-2}(ca)^j b^m so the append is
// legal verbatim; we generalize by recording the receive-only letter and
// re-solving just the root word (a single-block search over a fixed letter
// multiset) at composition time, which makes every base solution composable.
type strongSolution struct {
	t        int
	words    map[int][]idxWord // block size -> words (one per block of that size)
	rootWord idxWord           // the root block's word (size t-L+1); also in words
	recvOnly int               // the receive-only processor's letter index
}

// legalIdxWord checks the residue criterion for a block of the given size
// and delay with a word in index form on instance horizon t: residues
// (0 - delay) and (p - (t - idx_p)) must be pairwise distinct mod size.
func legalIdxWord(t, size, delay int, w idxWord) bool {
	seen := make([]bool, size)
	seen[mod(-delay, size)] = true
	for p := 1; p < size; p++ {
		res := mod(p-(t-w[p-1]), size)
		if seen[res] {
			return false
		}
		seen[res] = true
	}
	return true
}

// familyWord returns the canonical word a^{L-2}(ca)^j b^m, which is legal
// for a root block (delay 0) of size L-2+2j+m+1 at any horizon (Lemma 3.1).
func familyWord(l, j, m int) idxWord {
	w := make(idxWord, 0, l-2+2*j+m)
	for i := 0; i < l-2; i++ {
		w = append(w, 0)
	}
	for i := 0; i < j; i++ {
		w = append(w, 2, 0)
	}
	for i := 0; i < m; i++ {
		w = append(w, 1)
	}
	return w
}

// solveOpts configures the backtracking base solver.
type solveOpts struct {
	maxNodes int64
	// strong forces the composable form: the receive-only letter is 'b'
	// (index 1) and the root word's letter-index sum is r-L+1, the unique
	// sum residue class that keeps the inductive chain appending 'b'
	// forever (the canonical family of Lemma 3.1 has exactly this sum).
	strong bool
	// seed selects the letter-preference order: 0 = scarcest first,
	// 1 = most plentiful first, otherwise a deterministic pseudo-random
	// shuffle. Restarting a stuck search with a different order often
	// succeeds quickly (heavy-tailed search behaviour).
	seed int64
	// stop, when non-nil, is polled coarsely (every stopPollMask+1 nodes)
	// so a portfolio sibling's success or infeasibility proof cancels this
	// attempt. A canceled search returns errCanceled.
	stop *par.Stop
}

// letterOrder returns the iteration order over letter indices for a seed.
func letterOrder(l int, seed int64) []int {
	ord := make([]int, l)
	for i := range ord {
		ord[i] = i
	}
	switch seed {
	case 0: // scarcest (highest index) first
		for i, j := 0, l-1; i < j; i, j = i+1, j-1 {
			ord[i], ord[j] = ord[j], ord[i]
		}
	case 1: // most plentiful (lowest index) first
	default: // deterministic shuffle via a small LCG
		state := uint64(seed)*2862933555777941757 + 3037000493
		for i := l - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state>>33) % (i + 1)
			ord[i], ord[j] = ord[j], ord[i]
		}
	}
	return ord
}

// stopPollMask sets the cancellation polling cadence: the stop token is
// checked once every 8192 search nodes, keeping the atomic load off the
// per-node hot path while bounding cancellation latency.
const stopPollMask = 8191

// baseSearch is the state of one backtracking run over an instance's blocks.
// It replaces the former closure-based implementation: the recursion visits
// the search tree in exactly the same order (so budgets and found words are
// bit-for-bit identical), but state lives in struct fields instead of
// heap-allocated closure captures, and block residues are precomputed, which
// roughly halves the per-node cost of the hottest loop in the repository.
type baseSearch struct {
	inst    *Instance
	t, l    int
	strong  bool
	counts  []int
	words   []idxWord
	order   []int // block-processing order (indices into inst.Blocks)
	letters []int
	budget  int64
	steps   int64
	prunes  int64 // residue/sum-pruned branches, flushed to obs by solveBase
	stop    *par.Stop
	stopped bool

	// resTab[bi] holds, for block bi of size r, the residue
	// mod(p-(t-i), r) at flat index (p-1)*l + i; seenTab[bi] is the block's
	// residue-occupancy array with the uppercase (delay) bit preset.
	resTab  [][]int
	seenTab [][]bool

	// Strong-mode sum pruning (see solveBase).
	consumed, slotsLeft, targetConsumed int
	rootBi, rootSize                    int
	recvOnly                            int
}

// pollStop checks the cancellation token every stopPollMask+1 nodes; on
// cancellation the budget is zeroed so the recursion unwinds immediately.
func (s *baseSearch) pollStop() {
	s.steps++
	if s.steps&stopPollMask == 0 && s.stop != nil && s.stop.Stopped() {
		s.stopped = true
		s.budget = 0
	}
}

// sumPruned reports whether consuming one more letter of index extra makes
// the strong-mode sum target unreachable.
func (s *baseSearch) sumPruned(extra int) bool {
	if s.targetConsumed < 0 {
		return false
	}
	c := s.consumed + extra
	left := s.slotsLeft - 1
	return c > s.targetConsumed || c+left*(s.l-1) < s.targetConsumed
}

func (s *baseSearch) fill(oi, bi, p int, prev idxWord) bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	s.pollStop()
	r := s.inst.Blocks[bi].Size
	if p == r {
		return s.solveFrom(oi + 1)
	}
	row := s.resTab[bi][(p-1)*s.l:]
	seen := s.seenTab[bi]
	w := s.words[bi]
	for _, i := range s.letters {
		if s.counts[i] == 0 {
			continue
		}
		res := row[i]
		if seen[res] {
			s.prunes++
			continue
		}
		childPrev := prev
		if prev != nil && p-1 < len(prev) {
			if i > prev[p-1] {
				continue
			}
			if i < prev[p-1] {
				childPrev = nil
			}
		}
		if s.sumPruned(i) {
			s.prunes++
			continue
		}
		w[p-1] = i
		s.counts[i]--
		seen[res] = true
		s.consumed += i
		s.slotsLeft--
		if s.fill(oi, bi, p+1, childPrev) {
			return true
		}
		s.consumed -= i
		s.slotsLeft++
		seen[res] = false
		s.counts[i]++
	}
	return false
}

func (s *baseSearch) solveFrom(oi int) bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	if oi == len(s.order) {
		return s.finish()
	}
	bi := s.order[oi]
	b := &s.inst.Blocks[bi]
	if b.Size == 1 {
		return s.solveFrom(oi + 1)
	}
	var prev idxWord
	if oi > 0 {
		pb := s.order[oi-1]
		if s.inst.Blocks[pb].Size == b.Size && s.inst.Blocks[pb].Delay == b.Delay && s.words[pb] != nil {
			prev = s.words[pb]
		}
	}
	return s.fill(oi, bi, 1, prev)
}

func (s *baseSearch) finish() bool {
	if s.strong {
		// The leftover letters fill the root word; they must have the
		// self-sustaining sum r-L+1 and admit a legal word.
		left, sum := 0, 0
		for i, c := range s.counts {
			left += c
			sum += c * i
		}
		if left != s.rootSize-1 || sum != s.rootSize-s.l+1 {
			return false
		}
		pool := make(idxWord, 0, left)
		for i, c := range s.counts {
			for j := 0; j < c; j++ {
				pool = append(pool, i)
			}
		}
		w := solveSingleWord(s.t, s.rootSize, 0, s.l, pool)
		if w == nil {
			return false
		}
		s.words[s.rootBi] = w
		for i := range s.counts {
			s.counts[i] = 0
		}
		return true
	}
	// Receive-only: any remaining letter (exactly one remains).
	for i := 0; i < s.l; i++ {
		if s.counts[i] > 0 {
			s.counts[i]--
			if countsAllZero(s.counts) {
				s.recvOnly = i
				return true
			}
			s.counts[i]++
		}
	}
	return false
}

// solveBase runs the backtracking solver over the instance's blocks with the
// exact leaf-letter multiset, in index form. It returns the words per block
// (parallel to inst.Blocks) and the receive-only letter index. It is safe to
// run concurrently on the same instance: the instance is only read.
func solveBase(inst *Instance, opts solveOpts) ([]idxWord, int, error) {
	t := inst.T
	// The alphabet spans the distinct leaf delays: exactly L letters for a
	// complete optimal tree, possibly more for the pruned trees of the L=2
	// construction (Theorem 3.5).
	l := inst.alphabet()
	counts := make([]int, l) // counts[i] = number of leaves with delay t-i
	for d, c := range inst.LeafCount {
		i := t - d
		if i < 0 || i >= l {
			return nil, 0, fmt.Errorf("continuous: leaf delay %d outside alphabet", d)
		}
		counts[i] = c
	}
	rootBi := -1
	for bi, b := range inst.Blocks {
		if b.Node == 0 {
			rootBi = bi
		}
	}
	if rootBi < 0 {
		return nil, 0, fmt.Errorf("continuous: no root block")
	}

	recvOnly := -1
	rootSize := inst.Blocks[rootBi].Size
	if opts.strong {
		if l < 2 || counts[1] < 1 {
			return nil, 0, fmt.Errorf("continuous: no 'b' leaf for a strong solution (L=%d t=%d)", l, t)
		}
		counts[1]--
		recvOnly = 1
	}

	budget := opts.maxNodes
	if budget <= 0 {
		budget = 20_000_000
	}

	// Block processing order: most-constrained (smallest) first; in strong
	// mode the root block is filled last, from the leftover multiset, so
	// its sum constraint can be checked before its search begins.
	order := make([]int, 0, len(inst.Blocks))
	for bi := range inst.Blocks {
		if opts.strong && bi == rootBi {
			continue
		}
		order = append(order, bi)
	}

	s := &baseSearch{
		inst:     inst,
		t:        t,
		l:        l,
		strong:   opts.strong,
		counts:   counts,
		words:    make([]idxWord, len(inst.Blocks)),
		order:    order,
		letters:  letterOrder(l, opts.seed),
		budget:   budget,
		stop:     opts.stop,
		rootBi:   rootBi,
		rootSize: rootSize,
		recvOnly: recvOnly,

		targetConsumed: -1,
	}

	// Strong-mode sum pruning: the letters consumed by non-root words must
	// total exactly totalSum - (rootSize-L+1), so partial assignments whose
	// sum cannot reach (or already exceeds) the target are cut immediately.
	if opts.strong {
		totalSum := 0
		for i, c := range counts {
			totalSum += c * i
		}
		s.targetConsumed = totalSum - (rootSize - l + 1)
		if s.targetConsumed < 0 {
			return nil, 0, fmt.Errorf("continuous: strong sum target infeasible (L=%d t=%d)", l, t)
		}
		for _, bi := range order {
			s.slotsLeft += inst.Blocks[bi].Size - 1
		}
	}

	// Precompute per-block residue tables and occupancy arrays (with the
	// uppercase/delay residue preset) so the inner search loop does no
	// modular arithmetic.
	s.resTab = make([][]int, len(inst.Blocks))
	s.seenTab = make([][]bool, len(inst.Blocks))
	for bi := range inst.Blocks {
		b := &inst.Blocks[bi]
		r := b.Size
		if r == 1 {
			s.words[bi] = idxWord{}
			continue
		}
		s.words[bi] = make(idxWord, r-1)
		tab := make([]int, (r-1)*l)
		for p := 1; p < r; p++ {
			for i := 0; i < l; i++ {
				tab[(p-1)*l+i] = mod(p-(t-i), r)
			}
		}
		s.resTab[bi] = tab
		seen := make([]bool, r)
		seen[mod(-b.Delay, r)] = true
		s.seenTab[bi] = seen
	}

	solved := s.solveFrom(0)
	mSearchRuns.Inc()
	mSearchNodes.Add(s.steps)
	mSearchPrunes.Add(s.prunes)
	if !solved {
		if s.stopped {
			return nil, 0, errCanceled
		}
		if s.budget <= 0 {
			return nil, 0, fmt.Errorf("continuous: %w (maxNodes=%d) for L=%d t=%d", ErrBudget, budget, l, t)
		}
		return nil, 0, fmt.Errorf("continuous: %w for L=%d t=%d", ErrNoSolution, l, t)
	}
	return s.words, s.recvOnly, nil
}

func countsAllZero(counts []int) bool {
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// Portfolio configuration for base-case search: every (budget epoch, seed)
// pair races under par.Portfolio; budgets escalate geometrically by
// budgetGrowth per epoch, capped at budgetCap times the base budget. Stuck
// backtracking runs are heavy-tailed, so many short runs with different
// letter orders beat one long run, and the genuinely infeasible instances
// (observed exactly at t = 2L for even L) exhaust their search space quickly
// rather than timing out.
const (
	portfolioSeeds = 8  // seeds raced per budget epoch in strong mode
	budgetGrowth   = 16 // geometric escalation factor between epochs
	budgetCap      = 16 // hard cap: no epoch exceeds budgetCap x base
)

// budgetLadder returns the geometric escalation schedule for a base budget:
// base, base*budgetGrowth, ... up to (and never beyond) base*budgetCap.
func budgetLadder(base int64) []int64 {
	var ladder []int64
	for b, cap := base, base*budgetCap; b <= cap; b *= budgetGrowth {
		ladder = append(ladder, b)
	}
	return ladder
}

// solvePortfolio races the base solver across every (budget epoch, seed)
// pair — epoch-major, seed-minor, the exact order the former sequential loop
// used — on up to par.Limit() workers. Determinism: the winner is always the
// lowest-index hit (par.Portfolio cancels only attempts above a hit), so the
// returned words are identical to sequential execution for every parallelism
// level; a definitive infeasibility proof (ErrNoSolution) from any attempt
// short-circuits all workers, since exhaustion of the search space does not
// depend on the letter order.
func solvePortfolio(inst *Instance, budgets []int64, seeds int, strong bool) ([]idxWord, int, error) {
	type attemptRes struct {
		words []idxWord
		recv  int
		err   error
	}
	n := len(budgets) * seeds
	res := make([]attemptRes, n)
	winner, aborted := par.Portfolio(n, func(k int, stop *par.Stop) par.Outcome {
		words, recv, err := solveBase(inst, solveOpts{
			maxNodes: budgets[k/seeds],
			strong:   strong,
			seed:     int64(k % seeds),
			stop:     stop,
		})
		res[k] = attemptRes{words: words, recv: recv, err: err}
		switch {
		case err == nil:
			return par.Hit
		case errors.Is(err, errCanceled) || isBudgetErr(err):
			return par.Miss
		default:
			return par.Abort // exhaustive proof: no solution for any seed
		}
	})
	if aborted {
		return nil, 0, res[winner].err
	}
	if winner >= 0 {
		return res[winner].words, res[winner].recv, nil
	}
	return nil, 0, fmt.Errorf("continuous: %w (%d seeds, budgets up to %d) for L=%d t=%d",
		ErrBudget, seeds, budgets[len(budgets)-1], inst.alphabet(), inst.T)
}

// strongSolve computes strong solutions bottom-up from t = 2L-2 to the
// target, composing I(t) from I(t-1) and I(t-L) whenever both exist
// (Section 3.3's induction) and falling back to the constrained base solver
// otherwise. The cache maps t -> solution for one latency l.
type strongSolver struct {
	l     int
	cache map[int]*strongSolution
	// baseBudget bounds each base-case search.
	baseBudget int64
}

func newStrongSolver(l int) *strongSolver {
	return &strongSolver{l: l, cache: make(map[int]*strongSolution), baseBudget: 4_000_000}
}

// solutionFor returns a strong solution for horizon t, or nil.
func (ss *strongSolver) solutionFor(t int) *strongSolution {
	if sol, ok := ss.cache[t]; ok {
		return sol
	}
	var sol *strongSolution
	defer func() { ss.cache[t] = sol }()
	if t < 2*ss.l-2 || ss.l < 3 {
		return nil
	}
	// Composition first: it is O(size of solution).
	if prev, old := ss.cache[t-1], ss.cache[t-ss.l]; prev != nil && old != nil {
		sol = compose(ss.l, t, prev, old)
		if sol != nil {
			return sol
		}
	}
	// Double composition I(t) = I(t-2) ⊎ I(t-L-1) ⊎ I(t-L) (the single-step
	// identity iterated once) jumps over an unsolvable or unsolved t-1.
	if p2, o1, o0 := ss.cache[t-2], ss.cache[t-ss.l-1], ss.cache[t-ss.l]; p2 != nil && o1 != nil && o0 != nil {
		sol = compose2(ss.l, t, p2, o1, o0)
		if sol != nil {
			return sol
		}
	}
	// Base case by portfolio search: all seed orders race in parallel under
	// the escalating budget ladder (memoized package-wide, see cache.go).
	inst, err := NewInstance(ss.l, t)
	if err != nil {
		return nil
	}
	words, recvOnly, serr := solveCached(inst, budgetLadder(ss.baseBudget), portfolioSeeds, true)
	if serr != nil {
		// Either every attempt exhausted its budget or the search space was
		// exhausted (definitive infeasibility); both mean no strong base.
		return nil
	}
	sol = &strongSolution{t: t, words: make(map[int][]idxWord), recvOnly: recvOnly}
	for bi, b := range inst.Blocks {
		sol.words[b.Size] = append(sol.words[b.Size], words[bi])
		if b.Node == 0 {
			sol.rootWord = words[bi]
		}
	}
	return sol
}

// compose builds the strong solution for horizon t from the solutions at
// t-1 and t-L: every word of both carries over verbatim (residues shift
// uniformly); the root word of I(t-1) grows by one 'b' (the receive-only
// letter of I(t-L)); the receive-only of I(t-1) remains receive-only. The
// grown root word is re-solved over its fixed letter multiset, which
// generalizes the paper's append-only rule for the canonical family.
func compose(l, t int, prev, old *strongSolution) *strongSolution {
	// One of the two receive-only letters is absorbed into the grown root
	// word; the other remains receive-only. A legal word for a block of size
	// r and delay 0 must have sum of letter indices ≡ -(L-1) (mod r) — the
	// residues (p + idx_p - t) together with 0 must tile Z_r, which fixes
	// the sum. (The paper's canonical family satisfies this with the
	// appended letter always 'b'.) Try both choices, prechecking the sum.
	r := t - l + 1
	sumPrev := 0
	for _, ix := range prev.rootWord {
		sumPrev += ix
	}
	var grown idxWord
	recvOnly := -1
	for _, choice := range [2]struct{ appended, kept int }{
		{old.recvOnly, prev.recvOnly},
		{prev.recvOnly, old.recvOnly},
	} {
		if mod(sumPrev+choice.appended+(l-1), r) != 0 {
			continue
		}
		grown = solveSingleWord(t, r, 0, l, append(append(idxWord{}, prev.rootWord...), choice.appended))
		if grown != nil {
			recvOnly = choice.kept
			break
		}
	}
	if grown == nil {
		return nil
	}
	sol := &strongSolution{t: t, words: make(map[int][]idxWord), recvOnly: recvOnly}
	sol.rootWord = grown
	sol.words[t-l+1] = append(sol.words[t-l+1], grown)
	for size, ws := range prev.words {
		for _, w := range ws {
			if size == t-l && sameWord(w, prev.rootWord) {
				// The old root, replaced by the grown word above. Only one
				// block has size t-l in I(t-1) (the root), so match once.
				continue
			}
			sol.words[size] = append(sol.words[size], w)
		}
	}
	for size, ws := range old.words {
		for _, w := range ws {
			sol.words[size] = append(sol.words[size], w)
		}
	}
	return sol
}

// compose2 builds I(t) from I(t-2), I(t-L-1) and I(t-L): the identity
// c(d) = c(d-1) + c(d-L) iterated once on the first term. The root of
// I(t-2) grows by two letters, drawn from two of the three sub-solutions'
// receive-only letters; the third remains receive-only.
func compose2(l, t int, p2, o1, o0 *strongSolution) *strongSolution {
	r := t - l + 1
	sumPrev := 0
	for _, ix := range p2.rootWord {
		sumPrev += ix
	}
	ros := [3]int{p2.recvOnly, o1.recvOnly, o0.recvOnly}
	var grown idxWord
	recvOnly := -1
	for keep := 0; keep < 3 && grown == nil; keep++ {
		a1, a2 := ros[(keep+1)%3], ros[(keep+2)%3]
		if mod(sumPrev+a1+a2+(l-1), r) != 0 {
			continue
		}
		grown = solveSingleWord(t, r, 0, l, append(append(idxWord{}, p2.rootWord...), a1, a2))
		if grown != nil {
			recvOnly = ros[keep]
		}
	}
	if grown == nil {
		return nil
	}
	sol := &strongSolution{t: t, words: make(map[int][]idxWord), recvOnly: recvOnly}
	sol.rootWord = grown
	sol.words[r] = append(sol.words[r], grown)
	for size, ws := range p2.words {
		for _, w := range ws {
			if size == r-2 && sameWord(w, p2.rootWord) {
				continue // the old root, replaced by the grown word
			}
			sol.words[size] = append(sol.words[size], w)
		}
	}
	for _, sub := range [2]*strongSolution{o1, o0} {
		for size, ws := range sub.words {
			for _, w := range ws {
				sol.words[size] = append(sol.words[size], w)
			}
		}
	}
	return sol
}

// solveSingleWord finds a legal word for one block (given horizon t, block
// size, block delay and letter alphabet size l) using exactly the letters of
// the given multiset. Appending to the end first keeps the common case (the
// canonical family of Lemma 3.1, closed under appending 'b') O(size); the
// fallback is a bounded DFS over position/letter choices.
func solveSingleWord(t, size, delay, l int, letters idxWord) idxWord {
	if len(letters) != size-1 {
		return nil
	}
	counts := make([]int, l)
	for _, ix := range letters {
		if ix < 0 || ix >= l {
			return nil
		}
		counts[ix]++
	}
	w := make(idxWord, size-1)
	seen := make([]bool, size)
	seen[mod(-delay, size)] = true
	budget := int64(2_000_000)
	var fill func(p int) bool
	fill = func(p int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if p == size {
			return true
		}
		for i := l - 1; i >= 0; i-- {
			if counts[i] == 0 {
				continue
			}
			res := mod(p-(t-i), size)
			if seen[res] {
				continue
			}
			w[p-1] = i
			counts[i]--
			seen[res] = true
			if fill(p + 1) {
				return true
			}
			seen[res] = false
			counts[i]++
		}
		return false
	}
	if !fill(1) {
		return nil
	}
	return w
}

func sameWord(a, b idxWord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applySolution installs a strong solution's words into the instance's
// blocks (converting letter indices to delays) and sets the receive-only
// delay to t-1 ('b').
func applySolution(inst *Instance, sol *strongSolution) error {
	bySize := make(map[int][]idxWord, len(sol.words))
	for size, ws := range sol.words {
		bySize[size] = append([]idxWord(nil), ws...)
	}
	for bi := range inst.Blocks {
		b := &inst.Blocks[bi]
		ws := bySize[b.Size]
		if len(ws) == 0 {
			return fmt.Errorf("continuous: no word left for block of size %d", b.Size)
		}
		w := ws[len(ws)-1]
		bySize[b.Size] = ws[:len(ws)-1]
		if !legalIdxWord(inst.T, b.Size, b.Delay, w) {
			return fmt.Errorf("continuous: composed word illegal for size %d delay %d", b.Size, b.Delay)
		}
		b.Word = make([]int, len(w))
		for i, ix := range w {
			b.Word[i] = inst.T - ix
		}
	}
	for size, ws := range bySize {
		if len(ws) != 0 {
			return fmt.Errorf("continuous: %d unused words of size %d", len(ws), size)
		}
	}
	inst.RecvOnlyDelay = inst.T - sol.recvOnly
	// Verify the multiset: words + receive-only must consume the leaves.
	use := make(map[int]int)
	use[inst.RecvOnlyDelay]++
	for _, b := range inst.Blocks {
		for _, d := range b.Word {
			use[d]++
		}
	}
	for d, c := range inst.LeafCount {
		if use[d] != c {
			return fmt.Errorf("continuous: letter delay %d used %d times, have %d", d, use[d], c)
		}
	}
	for d := range use {
		if inst.LeafCount[d] == 0 {
			return fmt.Errorf("continuous: letter delay %d not a leaf delay", d)
		}
	}
	inst.solved = true
	return nil
}
