package core

import (
	"fmt"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// TreeSchedule expands a broadcast tree into a concrete event schedule for a
// single item.
//
// procOf maps tree node index -> processor id; pass nil for the identity
// assignment (node i handled by processor i). offset shifts every event by
// the given time (used to stagger trees for multi-item broadcasts). item is
// the item id carried by every message.
//
// In the produced schedule, the node with label d receives the item at
// arrival time offset + d - o (so it is available at offset + d), and an
// internal node starts its i-th transmission at offset + label + i*stride.
func TreeSchedule(t *Tree, item int, procOf []int, offset logp.Time) (*schedule.Schedule, error) {
	if procOf == nil {
		procOf = make([]int, t.P())
		for i := range procOf {
			procOf[i] = i
		}
	}
	if len(procOf) != t.P() {
		return nil, fmt.Errorf("core: TreeSchedule: procOf has %d entries for %d nodes", len(procOf), t.P())
	}
	m := t.M
	s := &schedule.Schedule{M: m}
	for ni, n := range t.Nodes {
		for _, ci := range n.Children {
			// Derive the send time from the child's label so that
			// deliberately slackened trees (e.g. baseline binomial trees
			// whose sibling spacing exceeds g) schedule at their stated
			// times; for eager trees this equals label + i*stride.
			st := offset + t.Nodes[ci].Label - m.D()
			s.Send(procOf[ni], st, item, procOf[ci])
			s.Recv(procOf[ci], st+m.O+m.L, item, procOf[ni])
		}
	}
	return s, nil
}

// BroadcastSchedule returns the optimal single-item broadcast schedule for
// the machine: the expansion of OptimalTree(m, m.P) with the identity
// processor assignment, item id item, starting at time 0 with the datum at
// processor 0.
func BroadcastSchedule(m logp.Machine, item int) *schedule.Schedule {
	t := OptimalTree(m, m.P)
	s, err := TreeSchedule(t, item, nil, 0)
	if err != nil {
		panic(err) // identity assignment can't mismatch
	}
	return s
}

// Origins returns the origin map for a single broadcast from processor 0 at
// time 0, for use with schedule.ValidateBroadcast.
func Origins(item int) map[int]schedule.Origin {
	return map[int]schedule.Origin{item: {Proc: 0, Time: 0}}
}
