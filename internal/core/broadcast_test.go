package core

import (
	"testing"
	"testing/quick"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

func TestBroadcastScheduleFigure1(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := BroadcastSchedule(m, 0)
	if vs := schedule.ValidateBroadcast(s, Origins(0)); len(vs) != 0 {
		t.Fatalf("Figure 1 schedule violations: %v", vs)
	}
	// Last item availability = B(8) = 24: last recv at 22 (arrival), +o=2.
	if got := s.LastRecv(); got != 24 {
		t.Fatalf("broadcast completes at %d, want 24", got)
	}
}

func TestBroadcastSchedulePostal(t *testing.T) {
	for l := logp.Time(1); l <= 6; l++ {
		for p := 2; p <= 40; p++ {
			m := logp.Postal(p, l)
			s := BroadcastSchedule(m, 7)
			if vs := schedule.ValidateBroadcast(s, Origins(7)); len(vs) != 0 {
				t.Fatalf("postal L=%d P=%d: %v", l, p, vs[0])
			}
			if got, want := s.LastRecv(), B(m, p); got != want {
				t.Fatalf("postal L=%d P=%d: completes at %d, want B=%d", l, p, got, want)
			}
		}
	}
}

func TestBroadcastScheduleProperty(t *testing.T) {
	f := func(l, o, g, p uint8) bool {
		m := logp.Machine{
			P: int(p%30) + 2,
			L: logp.Time(l%10) + 1,
			O: logp.Time(o % 5),
			G: logp.Time(g%5) + 1,
		}
		s := BroadcastSchedule(m, 0)
		if len(schedule.ValidateBroadcast(s, Origins(0))) != 0 {
			return false
		}
		return s.LastRecv() == B(m, m.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeScheduleOffsetAndAssignment(t *testing.T) {
	m := logp.Postal(5, 2)
	tr := OptimalTree(m, 5)
	// Reverse processor assignment, offset 10.
	procOf := []int{4, 3, 2, 1, 0}
	s, err := TreeSchedule(tr, 3, procOf, 10)
	if err != nil {
		t.Fatal(err)
	}
	origins := map[int]schedule.Origin{3: {Proc: 4, Time: 10}}
	if vs := schedule.ValidateBroadcast(s, origins); len(vs) != 0 {
		t.Fatalf("offset schedule violations: %v", vs)
	}
	if got, want := s.LastRecv(), 10+B(m, 5); got != want {
		t.Fatalf("offset completes at %d, want %d", got, want)
	}
}

func TestTreeScheduleBadAssignment(t *testing.T) {
	m := logp.Postal(5, 2)
	tr := OptimalTree(m, 5)
	if _, err := TreeSchedule(tr, 0, []int{0, 1}, 0); err == nil {
		t.Fatal("TreeSchedule accepted short procOf")
	}
}

func TestBroadcastExhaustivelyOptimalSmall(t *testing.T) {
	// Theorem 2.1 cross-check: for small P, no broadcast schedule of any
	// tree shape can beat B(P). We enumerate all feasible broadcast trees
	// by branch-and-bound over "who sends to whom at what slot" in the
	// postal model and confirm the minimum equals B(P).
	for l := logp.Time(1); l <= 4; l++ {
		for p := 2; p <= 7; p++ {
			m := logp.Postal(p, l)
			want := B(m, p)
			got := exhaustiveBroadcastTime(p, l)
			if got != want {
				t.Fatalf("postal L=%d P=%d: exhaustive optimum %d != B = %d", l, p, got, want)
			}
		}
	}
}

// exhaustiveBroadcastTime computes the true optimal postal-model broadcast
// time for p processors by searching over informing orders. In the postal
// model a processor informed at time d can inform others at d+L, d+L+1, ....
// Greedily, an optimal schedule informs processors one at a time; the state
// is the multiset of "next available send completion times" of informed
// processors. We search all choices of which sender informs the next
// processor.
func exhaustiveBroadcastTime(p int, l logp.Time) logp.Time {
	best := logp.Time(1 << 30)
	// state: sorted slice of each informed processor's next-arrival time
	// (the earliest time at which a message it sends next can arrive).
	var rec func(next []logp.Time, remaining int, worst logp.Time)
	rec = func(next []logp.Time, remaining int, worst logp.Time) {
		if remaining == 0 {
			if worst < best {
				best = worst
			}
			return
		}
		if worst >= best {
			return
		}
		seen := map[logp.Time]bool{}
		for i := range next {
			a := next[i]
			if a >= best {
				continue
			}
			if seen[a] {
				continue // identical senders are symmetric
			}
			seen[a] = true
			nw := worst
			if a > nw {
				nw = a
			}
			child := a + l // the new processor's own first arrival: informed at a, sends at a, arrives a+l
			save := next[i]
			next[i] = a + 1 // sender's next message arrives one step later
			next2 := append(next, child)
			rec(next2, remaining-1, nw)
			next[i] = save
		}
	}
	rec([]logp.Time{l}, p-1, 0)
	return best
}
