// Package core implements the paper's primary contribution: optimal
// single-item broadcast in the LogP model (Section 2 of Karp, Sahay, Santos,
// Schauser, SPAA 1993), including the universal optimal broadcast tree, the
// optimal broadcast time B(P; L,o,g), the reachable-processor function
// P(t; L,o,g), and the generalized Fibonacci sequence {f_i} that governs the
// postal-model special case.
package core

import (
	"fmt"
)

// Seq is the generalized Fibonacci sequence of Definition 2.5 for a fixed
// postal latency L:
//
//	f_i = 1                  for 0 <= i < L
//	f_i = f_{i-1} + f_{i-L}  otherwise.
//
// By Theorem 2.2, f_t is the maximum number of processors reachable by a
// single-item broadcast in t steps of the postal model with latency L.
// Values are memoized; a Seq is not safe for concurrent use.
type Seq struct {
	l    int
	vals []int64
}

// NewSeq returns the sequence for postal latency l. It panics if l < 1.
func NewSeq(l int) *Seq {
	if l < 1 {
		panic(fmt.Sprintf("core: NewSeq requires L >= 1, got %d", l))
	}
	vals := make([]int64, l)
	for i := range vals {
		vals[i] = 1
	}
	return &Seq{l: l, vals: vals}
}

// L returns the latency parameter of the sequence.
func (s *Seq) L() int { return s.l }

// F returns f_i. It panics if i < 0. Values saturate at math.MaxInt64 only in
// theory; callers that sweep i keep it far below overflow (i <= 200 or so for
// small L). F grows exponentially, so overflow is checked and panics rather
// than wrapping.
func (s *Seq) F(i int) int64 {
	if i < 0 {
		panic(fmt.Sprintf("core: Seq.F index must be non-negative, got %d", i))
	}
	for len(s.vals) <= i {
		n := len(s.vals)
		v := s.vals[n-1] + s.vals[n-s.l]
		if v < s.vals[n-1] {
			panic("core: Seq.F overflow")
		}
		s.vals = append(s.vals, v)
	}
	return s.vals[i]
}

// PrefixSum returns 1 + sum_{i=0}^{t} f_i, which by Fact 2.1 equals f_{t+L}.
// For t < 0 it returns 1 (the empty sum).
func (s *Seq) PrefixSum(t int) int64 {
	sum := int64(1)
	for i := 0; i <= t; i++ {
		sum += s.F(i)
	}
	return sum
}

// InvF returns the smallest t >= 0 such that f_t >= p. It panics if p < 1.
// Because f_t = P(t) in the postal model, InvF(p) is the optimal broadcast
// time B(p) for the postal model (Theorem 2.2).
func (s *Seq) InvF(p int64) int {
	if p < 1 {
		panic(fmt.Sprintf("core: Seq.InvF requires p >= 1, got %d", p))
	}
	for t := 0; ; t++ {
		if s.F(t) >= p {
			return t
		}
	}
}

// KStar computes the endgame item count k* of Section 3: with n the index
// such that f_n < P-1 <= f_{n+1},
//
//	k* = floor( sum_{t=0}^{n} f_t / (P-1) ).
//
// k* is the number of items that the source must send multiple times in an
// optimal k-item broadcast (the "endgame" items). It panics if p < 2.
// The paper shows k* <= L.
func (s *Seq) KStar(p int) int64 {
	if p < 2 {
		panic(fmt.Sprintf("core: Seq.KStar requires P >= 2, got %d", p))
	}
	pm1 := int64(p - 1)
	// n such that f_n < P-1 <= f_{n+1}. For P-1 = 1, f_0 = 1 >= 1 and no
	// index has f_n < 1, so n = -1 and the sum is empty.
	n := -1
	for t := 0; ; t++ {
		if s.F(t) >= pm1 {
			break
		}
		n = t
	}
	var sum int64
	for t := 0; t <= n; t++ {
		sum += s.F(t)
	}
	return sum / pm1
}

// KItemLowerBound returns the lower bound of Theorem 3.1 on broadcasting k
// items from a single source among p processors in the postal model with
// this sequence's latency:
//
//	B(P-1) + L + (k-1) - k*.
//
// It panics if p < 2 or k < 1.
func (s *Seq) KItemLowerBound(p int, k int64) int64 {
	if k < 1 {
		panic(fmt.Sprintf("core: KItemLowerBound requires k >= 1, got %d", k))
	}
	b := int64(s.InvF(int64(p - 1)))
	ks := s.KStar(p)
	if ks > k {
		// Fewer items than endgame slots: the bound degenerates; every
		// item is an endgame item and the bound is B(P-1) + L (all k
		// items can finish together only if k <= k*). Use the general
		// expression with k* capped at k - justified because at most k
		// items can be "free".
		ks = k
	}
	return b + int64(s.l) + (k - 1) - ks
}

// SingleSendingLowerBound returns the lower bound B(P-1) + L + k - 1 on any
// single-sending schedule (one in which the source transmits each item
// exactly once), from Section 3.4.
func (s *Seq) SingleSendingLowerBound(p int, k int64) int64 {
	return int64(s.InvF(int64(p-1))) + int64(s.l) + k - 1
}

// Growth returns the growth rate φ_L of the sequence: the unique root
// greater than 1 of x^L = x^(L-1) + 1. The reachable-processor count grows
// as P(t) = Θ(φ_L^t), so optimal postal broadcast time is
// B(P) ≈ log_{φ_L} P; for L = 1 the rate is 2 (doubling), and for L = 2 it
// is the golden ratio. (Bar-Noy and Kipnis give the corresponding bounds in
// the postal-model paper the running example cites.)
func (s *Seq) Growth() float64 {
	if s.l == 1 {
		return 2 // x = x^0 + 1
	}
	l := float64(s.l)
	x := 2.0 // f' > 0 on (1,2]; Newton from 2 converges monotonically
	for i := 0; i < 200; i++ {
		// g(x) = x^L - x^(L-1) - 1; g'(x) = L x^(L-1) - (L-1) x^(L-2).
		xm := pow(x, s.l-2)
		g := x*x*xm - x*xm - 1
		gp := l*x*xm - (l-1)*xm
		nx := x - g/gp
		if diff := nx - x; diff < 1e-15 && diff > -1e-15 {
			return nx
		}
		x = nx
	}
	return x
}

func pow(x float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	r := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}
