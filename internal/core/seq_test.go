package core

import (
	"testing"
	"testing/quick"
)

func TestSeqL3KnownValues(t *testing.T) {
	// For L=3 the sequence runs 1,1,1,2,3,4,6,9,13,19,28,41,... — the
	// paper's running example uses f_7 = 9 (T9) and Figure 3 uses
	// P-1 = P(11) = 41.
	s := NewSeq(3)
	want := []int64{1, 1, 1, 2, 3, 4, 6, 9, 13, 19, 28, 41, 60, 88}
	for i, w := range want {
		if got := s.F(i); got != w {
			t.Errorf("f_%d = %d, want %d", i, got, w)
		}
	}
}

func TestSeqL1Doubles(t *testing.T) {
	// L=1: f_i = 2 f_{i-1}... actually f_i = f_{i-1} + f_{i-1} = 2^i.
	s := NewSeq(1)
	for i := 0; i <= 20; i++ {
		if got, want := s.F(i), int64(1)<<uint(i); got != want {
			t.Errorf("L=1: f_%d = %d, want %d", i, got, want)
		}
	}
}

func TestSeqL2Fibonacci(t *testing.T) {
	// L=2 gives the classical Fibonacci numbers 1,1,2,3,5,8,...
	s := NewSeq(2)
	want := []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for i, w := range want {
		if got := s.F(i); got != w {
			t.Errorf("L=2: f_%d = %d, want %d", i, got, w)
		}
	}
}

func TestFact21PrefixSum(t *testing.T) {
	// Fact 2.1: 1 + sum_{i=0}^{t} f_i = f_{t+L}.
	for l := 1; l <= 10; l++ {
		s := NewSeq(l)
		for tt := 0; tt <= 30; tt++ {
			if got, want := s.PrefixSum(tt), s.F(tt+l); got != want {
				t.Errorf("L=%d t=%d: PrefixSum=%d, f_{t+L}=%d", l, tt, got, want)
			}
		}
	}
}

func TestFact21Property(t *testing.T) {
	f := func(l, tt uint8) bool {
		ll := int(l%8) + 1
		tv := int(tt % 40)
		s := NewSeq(ll)
		return s.PrefixSum(tv) == s.F(tv+ll)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvF(t *testing.T) {
	s := NewSeq(3)
	cases := []struct {
		p    int64
		want int
	}{
		{1, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 6}, {7, 7}, {9, 7}, {10, 8}, {41, 11}, {42, 12},
	}
	for _, c := range cases {
		if got := s.InvF(c.p); got != c.want {
			t.Errorf("InvF(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestInvFIsInverse(t *testing.T) {
	for l := 1; l <= 8; l++ {
		s := NewSeq(l)
		for p := int64(1); p <= 2000; p++ {
			tt := s.InvF(p)
			if s.F(tt) < p {
				t.Fatalf("L=%d: f_{InvF(%d)} = %d < %d", l, p, s.F(tt), p)
			}
			if tt > 0 && s.F(tt-1) >= p {
				t.Fatalf("L=%d: InvF(%d)=%d not minimal", l, p, tt)
			}
		}
	}
}

func TestKStarRunningExample(t *testing.T) {
	// Section 3.3's example: L=3, P-1=9 has k* = 2 ("every processor must
	// have received k* = 2 items by time step 9").
	s := NewSeq(3)
	if got := s.KStar(10); got != 2 {
		t.Fatalf("KStar(P=10) = %d, want 2", got)
	}
}

func TestKStarAtMostL(t *testing.T) {
	// Section 3.1 notes k* <= L.
	for l := 1; l <= 10; l++ {
		s := NewSeq(l)
		for p := 2; p <= 500; p++ {
			if ks := s.KStar(p); ks > int64(l) {
				t.Fatalf("L=%d P=%d: k* = %d > L", l, p, ks)
			}
		}
	}
}

func TestKStarDefinition(t *testing.T) {
	// Recompute k* directly from the definition and compare.
	for l := 2; l <= 6; l++ {
		s := NewSeq(l)
		for p := 2; p <= 300; p++ {
			pm1 := int64(p - 1)
			n := -1
			for i := 0; ; i++ {
				if s.F(i) >= pm1 {
					break
				}
				n = i
			}
			var sum int64
			for i := 0; i <= n; i++ {
				sum += s.F(i)
			}
			want := sum / pm1
			if got := s.KStar(p); got != want {
				t.Fatalf("L=%d P=%d: KStar=%d want %d", l, p, got, want)
			}
		}
	}
}

func TestLowerBounds(t *testing.T) {
	// Running example k=8, L=3, P-1=9: B(P-1)=7, k*=2, so the Theorem 3.1
	// bound is 7 + 3 + 7 - 2 = 15 and the single-sending bound is
	// 7 + 3 + 8 - 1 = 17.
	s := NewSeq(3)
	if got := s.KItemLowerBound(10, 8); got != 15 {
		t.Fatalf("KItemLowerBound = %d, want 15", got)
	}
	if got := s.SingleSendingLowerBound(10, 8); got != 17 {
		t.Fatalf("SingleSendingLowerBound = %d, want 17", got)
	}
}

func TestLowerBoundOrdering(t *testing.T) {
	// Single-sending bound >= general bound, difference k* <= L.
	for l := 2; l <= 8; l++ {
		s := NewSeq(l)
		for p := 3; p <= 200; p += 7 {
			for k := int64(1); k <= 40; k += 3 {
				gen := s.KItemLowerBound(p, k)
				ss := s.SingleSendingLowerBound(p, k)
				if ss < gen {
					t.Fatalf("L=%d P=%d k=%d: single-sending bound %d < general %d", l, p, k, ss, gen)
				}
				if ss-gen > int64(l) {
					t.Fatalf("L=%d P=%d k=%d: bounds differ by %d > L", l, p, k, ss-gen)
				}
			}
		}
	}
}

func TestSeqPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewSeq(0)", func() { NewSeq(0) })
	mustPanic("F(-1)", func() { NewSeq(3).F(-1) })
	mustPanic("InvF(0)", func() { NewSeq(3).InvF(0) })
	mustPanic("KStar(1)", func() { NewSeq(3).KStar(1) })
}

func TestGrowthKnownValues(t *testing.T) {
	// L=1: doubling; L=2: the golden ratio.
	if g := NewSeq(1).Growth(); g < 1.9999999 || g > 2.0000001 {
		t.Fatalf("L=1 growth = %v, want 2", g)
	}
	phi := 1.6180339887498949
	if g := NewSeq(2).Growth(); g < phi-1e-9 || g > phi+1e-9 {
		t.Fatalf("L=2 growth = %v, want golden ratio", g)
	}
}

func TestGrowthMatchesRatio(t *testing.T) {
	// f_{t+1}/f_t converges to the growth rate.
	for l := 1; l <= 10; l++ {
		s := NewSeq(l)
		g := s.Growth()
		// Check the defining equation.
		lhs := pow(g, l)
		rhs := pow(g, l-1) + 1
		if d := lhs - rhs; d > 1e-9 || d < -1e-9 {
			t.Fatalf("L=%d: growth %v does not satisfy x^L = x^(L-1)+1 (err %v)", l, g, d)
		}
		tt := 80
		if l == 1 {
			tt = 55 // 2^80 would overflow int64
		}
		ratio := float64(s.F(tt)) / float64(s.F(tt-1))
		// Convergence is geometric in the secondary-root ratio, which
		// approaches 1 as L grows; a loose tolerance suffices here.
		if d := ratio - g; d > 5e-4 || d < -5e-4 {
			t.Fatalf("L=%d: ratio %v vs growth %v", l, ratio, g)
		}
	}
}

func TestGrowthDecreasesWithL(t *testing.T) {
	prev := 3.0
	for l := 1; l <= 12; l++ {
		g := NewSeq(l).Growth()
		if g >= prev {
			t.Fatalf("growth not decreasing at L=%d: %v >= %v", l, g, prev)
		}
		if g <= 1 {
			t.Fatalf("growth %v <= 1 at L=%d", g, l)
		}
		prev = g
	}
}
