package core

import "sync"

// SafeSeq is a concurrency-safe view of a generalized Fibonacci sequence.
// Unlike Seq (which memoizes without locking and is documented as not safe
// for concurrent use), a SafeSeq may be shared freely across goroutines:
// the parallel sweep engine and the portfolio solver all read f_t / B
// tables through one process-wide instance per latency, so the tables are
// extended once instead of being recomputed per call site.
type SafeSeq struct {
	mu sync.Mutex
	s  *Seq
}

// L returns the latency parameter of the sequence.
func (ss *SafeSeq) L() int { return ss.s.l }

// F returns f_i (see Seq.F).
func (ss *SafeSeq) F(i int) int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.F(i)
}

// InvF returns the smallest t >= 0 with f_t >= p — the optimal postal
// broadcast time B(p) (see Seq.InvF).
func (ss *SafeSeq) InvF(p int64) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.InvF(p)
}

// KStar returns the endgame item count k* (see Seq.KStar).
func (ss *SafeSeq) KStar(p int) int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.KStar(p)
}

// KItemLowerBound returns the Theorem 3.1 lower bound (see
// Seq.KItemLowerBound).
func (ss *SafeSeq) KItemLowerBound(p int, k int64) int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.KItemLowerBound(p, k)
}

// SingleSendingLowerBound returns the Section 3.4 single-sending bound (see
// Seq.SingleSendingLowerBound).
func (ss *SafeSeq) SingleSendingLowerBound(p int, k int64) int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.SingleSendingLowerBound(p, k)
}

var (
	seqMu    sync.Mutex
	seqCache = map[int]*SafeSeq{}
)

// SeqFor returns the process-wide shared sequence for postal latency l.
// All callers for the same l share one memoized f-table under a lock, so
// sweeps stop recomputing the prefix of the sequence at every grid point.
// It panics if l < 1 (as NewSeq does).
func SeqFor(l int) *SafeSeq {
	seqMu.Lock()
	defer seqMu.Unlock()
	ss := seqCache[l]
	if ss == nil {
		ss = &SafeSeq{s: NewSeq(l)}
		seqCache[l] = ss
	}
	return ss
}
