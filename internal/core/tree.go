package core

import (
	"fmt"
	"strings"

	"logpopt/internal/logp"
)

// Node is one node of a broadcast tree. Label is the node's delay: the time
// at which the datum first becomes available at the corresponding processor
// (Definition 2.1). Children are ordered: the i-th child receives the i-th
// message sent by this node.
type Node struct {
	Label    logp.Time
	Parent   int // index of the parent node, -1 for the root
	Children []int
}

// Tree is a rooted, ordered, labeled broadcast tree over nodes indexed
// 0..len(Nodes)-1, with node 0 the root (the broadcast source). It is the
// concrete form of the broadcast trees of Section 2 of the paper.
type Tree struct {
	M     logp.Machine
	Nodes []Node
}

// TreeBuilder constructs the optimal broadcast tree ß(p) for a machine. It
// is the seam through which alternative constructors (the heap-based
// OptimalTree, the search-free internal/logtime builder) plug into the
// schedule expanders: every implementation must produce the identical tree,
// node for node, so callers may treat them interchangeably.
type TreeBuilder func(m logp.Machine, p int) *Tree

// P returns the number of nodes (processors participating in the broadcast).
func (t *Tree) P() int { return len(t.Nodes) }

// MaxLabel returns the largest delay in the tree: the broadcast's running
// time t_A = max_i t_A(i).
func (t *Tree) MaxLabel() logp.Time {
	var mx logp.Time
	for _, n := range t.Nodes {
		if n.Label > mx {
			mx = n.Label
		}
	}
	return mx
}

// SumLabels returns the sum of all delays; the universal-tree greedy
// minimizes this quantity, which is what makes time-reversed broadcast an
// optimal summation pattern (Section 5).
func (t *Tree) SumLabels() logp.Time {
	var s logp.Time
	for _, n := range t.Nodes {
		s += n.Label
	}
	return s
}

// Leaves returns the indices of all leaf nodes.
func (t *Tree) Leaves() []int {
	var out []int
	for i, n := range t.Nodes {
		if len(n.Children) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Internal returns the indices of all internal (sending) nodes.
func (t *Tree) Internal() []int {
	var out []int
	for i, n := range t.Nodes {
		if len(n.Children) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// SendTime returns the time at which node parent starts the transmission to
// its i-th child: label(parent) + i*stride. The message occupies the sender
// for o cycles, spends L in flight, and the child's label is
// sendTime + L + 2o.
func (t *Tree) SendTime(parent, i int) logp.Time {
	return t.Nodes[parent].Label + logp.Time(i)*SendStride(t.M)
}

// Validate checks the structural and labeling invariants of a broadcast
// tree on machine t.M:
//
//   - node 0 is the root with Parent == -1 and Label 0;
//   - every other node's Parent is a valid earlier-or-other node that lists
//     it as a child exactly once;
//   - child labels equal parent label + i*stride + L + 2o for the child's
//     position i (the LogP timing rule for an "eager" tree), or exceed it
//     (for deliberately slackened trees, with strict=false);
//   - sibling labels are non-decreasing.
//
// With strict=true labels must be exactly the eager values (universal-tree
// shape); with strict=false they may be larger but never smaller than
// feasible.
func (t *Tree) Validate(strict bool) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("core: tree has no nodes")
	}
	if t.Nodes[0].Parent != -1 {
		return fmt.Errorf("core: node 0 must be the root (parent -1, got %d)", t.Nodes[0].Parent)
	}
	if t.Nodes[0].Label != 0 {
		return fmt.Errorf("core: root label must be 0, got %d", t.Nodes[0].Label)
	}
	d := t.M.D()
	stride := SendStride(t.M)
	seen := make([]bool, len(t.Nodes))
	seen[0] = true
	for pi, n := range t.Nodes {
		var prev logp.Time = -1
		for i, ci := range n.Children {
			if ci <= 0 || ci >= len(t.Nodes) {
				return fmt.Errorf("core: node %d child %d out of range", pi, ci)
			}
			c := t.Nodes[ci]
			if c.Parent != pi {
				return fmt.Errorf("core: node %d lists child %d whose parent is %d", pi, ci, c.Parent)
			}
			if seen[ci] {
				return fmt.Errorf("core: node %d appears as a child twice", ci)
			}
			seen[ci] = true
			eager := n.Label + logp.Time(i)*stride + d
			if strict && c.Label != eager {
				return fmt.Errorf("core: node %d label %d, want eager label %d", ci, c.Label, eager)
			}
			if !strict && c.Label < eager {
				return fmt.Errorf("core: node %d label %d is infeasible (< %d)", ci, c.Label, eager)
			}
			if c.Label < prev {
				return fmt.Errorf("core: node %d sibling labels decrease at child %d", pi, ci)
			}
			prev = c.Label
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("core: node %d unreachable from root", i)
		}
	}
	return nil
}

// DelayHistogram returns, for each distinct label, the number of nodes with
// that label, as a map. For a complete optimal tree (P = P(t)) in the postal
// model this is the node-count sequence c(d) that drives the continuous
// broadcast construction of Section 3.2.
func (t *Tree) DelayHistogram() map[logp.Time]int {
	h := make(map[logp.Time]int)
	for _, n := range t.Nodes {
		h[n.Label]++
	}
	return h
}

// String renders the tree as an indented outline with labels, suitable for
// reproducing the tree drawings in Figures 1, 2 and 6 of the paper.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(i, depth int)
	rec = func(i, depth int) {
		fmt.Fprintf(&b, "%s%d @%d\n", strings.Repeat("  ", depth), i, t.Nodes[i].Label)
		for _, c := range t.Nodes[i].Children {
			rec(c, depth+1)
		}
	}
	rec(0, 0)
	return b.String()
}

// DOT renders the tree in GraphViz format; node labels show the processor
// index and availability time.
func (t *Tree) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name)
	for i, n := range t.Nodes {
		fmt.Fprintf(&b, "  n%d [label=\"P%d@%d\"];\n", i, i, n.Label)
	}
	for i, n := range t.Nodes {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", i, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
