package core

import (
	"strings"
	"testing"

	"logpopt/internal/logp"
)

func TestTreeAccessors(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	tr := OptimalTree(m, 8)
	if got := len(tr.Leaves()) + len(tr.Internal()); got != 8 {
		t.Fatalf("leaves+internal = %d, want 8", got)
	}
	if tr.SumLabels() != 0+10+14+18+20+22+24+24 {
		t.Fatalf("SumLabels = %d", tr.SumLabels())
	}
	h := tr.DelayHistogram()
	if h[24] != 2 || h[0] != 1 {
		t.Fatalf("histogram %v", h)
	}
	if got := tr.SendTime(0, 2); got != 8 {
		t.Fatalf("SendTime(0,2) = %d, want 8", got)
	}
}

func TestTreeValidateRejections(t *testing.T) {
	m := logp.Postal(4, 2)
	mk := func() *Tree { return OptimalTree(m, 4) }

	tr := mk()
	tr.Nodes[1].Label++ // break eager labeling
	if err := tr.Validate(true); err == nil {
		t.Fatal("strict validation accepted broken label")
	}

	tr2 := mk()
	tr2.Nodes[1].Label-- // infeasible (earlier than possible)
	if err := tr2.Validate(false); err == nil {
		t.Fatal("slack validation accepted infeasible label")
	}

	tr3 := mk()
	tr3.Nodes[0].Label = 5
	if err := tr3.Validate(false); err == nil {
		t.Fatal("nonzero root label accepted")
	}

	tr4 := mk()
	tr4.Nodes[1].Parent = 2
	if err := tr4.Validate(false); err == nil {
		t.Fatal("parent/child mismatch accepted")
	}

	if err := (&Tree{M: m}).Validate(false); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestTreeUnreachableNode(t *testing.T) {
	m := logp.Postal(3, 2)
	tr := &Tree{M: m, Nodes: []Node{
		{Label: 0, Parent: -1},
		{Label: 2, Parent: 0},
		{Label: 9, Parent: 0}, // not listed as a child
	}}
	tr.Nodes[0].Children = []int{1}
	if err := tr.Validate(false); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unreachable node not flagged: %v", err)
	}
}

func TestTreeString(t *testing.T) {
	m := logp.Postal(3, 2)
	tr := OptimalTree(m, 3)
	out := tr.String()
	if !strings.Contains(out, "0 @0") || !strings.Contains(out, "@2") {
		t.Fatalf("String output unexpected:\n%s", out)
	}
}

func TestTreeDOT(t *testing.T) {
	m := logp.Postal(5, 2)
	tr := OptimalTree(m, 5)
	dot := tr.DOT("t5")
	for _, w := range []string{"digraph \"t5\"", "n0 [label=\"P0@0\"]", "n0 -> n1;"} {
		if !strings.Contains(dot, w) {
			t.Fatalf("DOT missing %q:\n%s", w, dot)
		}
	}
	// Edge count = P-1.
	if got := strings.Count(dot, "->"); got != 4 {
		t.Fatalf("DOT has %d edges, want 4", got)
	}
}
