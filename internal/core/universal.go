package core

import (
	"container/heap"
	"fmt"

	"logpopt/internal/logp"
)

// SendStride returns the minimum spacing between the starts of successive
// sends at one processor: max(g, o). In the LogP model successive
// transmissions are separated by at least g, and the per-send overhead keeps
// the processor busy for o; the paper's machines all satisfy g >= o, in which
// case the stride is exactly g and the universal tree below coincides with
// Definition 2.3 of the paper.
func SendStride(m logp.Machine) logp.Time {
	if m.O > m.G {
		return m.O
	}
	return m.G
}

// candidate is a potential next node of the universal optimal broadcast tree:
// the childIdx-th child of parent, which would carry the given label.
type candidate struct {
	label    logp.Time
	parent   int // index of parent node in the tree under construction
	childIdx int // 0-based position among the parent's children
}

// candHeap orders candidates by label, breaking ties by parent index then
// child index so that tree construction is deterministic ("leftmost" fill).
type candHeap []candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].label != h[j].label {
		return h[i].label < h[j].label
	}
	if h[i].parent != h[j].parent {
		return h[i].parent < h[j].parent
	}
	return h[i].childIdx < h[j].childIdx
}
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h candHeap) Peek() candidate    { return h[0] }
func (h *candHeap) PushC(c candidate) { heap.Push(h, c) }

// OptimalTree returns the rooted, ordered broadcast tree ß(P) of Definition
// 2.4: the subtree of the universal optimal broadcast tree consisting of the
// P nodes with smallest labels (ties broken deterministically). By Theorem
// 2.1 it is an optimal single-item broadcast tree for the machine, and its
// maximum label is B(P; L,o,g).
//
// In the universal tree the root has label 0 and a node with label t has
// children labeled t + i*stride + L + 2o for i >= 0, where stride =
// SendStride(m) (= g whenever g >= o, per the paper).
//
// OptimalTree panics if p < 1 or the machine is invalid.
func OptimalTree(m logp.Machine, p int) *Tree {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("core: OptimalTree: %v", err))
	}
	if p < 1 {
		panic(fmt.Sprintf("core: OptimalTree requires P >= 1, got %d", p))
	}
	d := m.D()
	stride := SendStride(m)
	t := &Tree{M: m, Nodes: make([]Node, 0, p)}
	t.Nodes = append(t.Nodes, Node{Label: 0, Parent: -1})
	h := &candHeap{}
	h.PushC(candidate{label: d, parent: 0, childIdx: 0})
	for len(t.Nodes) < p {
		c := heap.Pop(h).(candidate)
		idx := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{Label: c.label, Parent: c.parent})
		t.Nodes[c.parent].Children = append(t.Nodes[c.parent].Children, idx)
		// The new node's own first child.
		h.PushC(candidate{label: c.label + d, parent: idx, childIdx: 0})
		// The parent's next child: one stride later than this one.
		h.PushC(candidate{
			label:    c.label + stride,
			parent:   c.parent,
			childIdx: c.childIdx + 1,
		})
	}
	return t
}

// B returns the optimal single-item broadcast time B(P; L,o,g): the time at
// which the datum first reaches all P processors under an optimal schedule
// (Definition 2.1). B(1) = 0.
func B(m logp.Machine, p int) logp.Time {
	if p == 1 {
		return 0
	}
	return OptimalTree(m, p).MaxLabel()
}

// Pt returns P(t; L,o,g), the maximum number of processors reachable by a
// single-item broadcast within t time steps (Definition 2.2): the number of
// nodes of the universal optimal broadcast tree with label <= t. The count
// saturates at maxCount to avoid exponential blowup; pass maxCount <= 0 for
// the default of 1<<40.
func Pt(m logp.Machine, t logp.Time, maxCount int64) int64 {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("core: Pt: %v", err))
	}
	if maxCount <= 0 {
		maxCount = 1 << 40
	}
	if t < 0 {
		return 0
	}
	d := m.D()
	stride := SendStride(m)
	// memo[τ] = number of nodes with label <= τ in a subtree whose root has
	// label 0, for the universal tree shape (root at any label looks the
	// same shifted). memo[τ] = 1 + Σ_{i>=0, d+i*stride <= τ} memo[τ-d-i*stride].
	memo := make([]int64, t+1)
	for tau := logp.Time(0); tau <= t; tau++ {
		n := int64(1)
		for off := d; off <= tau; off += stride {
			n += memo[tau-off]
			if n >= maxCount {
				n = maxCount
				break
			}
		}
		memo[tau] = n
	}
	return memo[t]
}

// PostalPt cross-checks Theorem 2.2: in the postal model (o=0, g=1) with
// latency L, P(t) equals the generalized Fibonacci number f_t.
func PostalPt(l int, t int) int64 {
	return NewSeq(l).F(t)
}
