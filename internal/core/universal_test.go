package core

import (
	"sort"
	"testing"
	"testing/quick"

	"logpopt/internal/logp"
)

func TestFigure1Tree(t *testing.T) {
	// Figure 1: P=8, L=6, g=4, o=2. Parent-to-child delay L+2o = 10,
	// sibling stride g = 4. The eight smallest universal-tree labels are
	// 0, 10, 14, 18, 20, 22, 24, 24 and B(8) = 24.
	m := logp.MustNew(8, 6, 2, 4)
	tr := OptimalTree(m, 8)
	var labels []int64
	for _, n := range tr.Nodes {
		labels = append(labels, n.Label)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	want := []int64{0, 10, 14, 18, 20, 22, 24, 24}
	for i, w := range want {
		if labels[i] != w {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	if got := B(m, 8); got != 24 {
		t.Fatalf("B(8;6,2,4) = %d, want 24", got)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatalf("Figure 1 tree invalid: %v", err)
	}
	// The root sends 4 messages (at 0, 4, 8, 12); labels 10, 14, 18, 22.
	if got := len(tr.Nodes[0].Children); got != 4 {
		t.Fatalf("root has %d children, want 4", got)
	}
}

func TestPostalTreeT9(t *testing.T) {
	// Section 3.2's running example: L=3 postal, P-1 = P(7) = 9. The
	// optimal tree T9 has root with 5 children; the delay histogram is
	// c(0)=1, c(3)=c(4)=c(5)=1, c(6)=2, c(7)=3.
	m := logp.Postal(9, 3)
	tr := OptimalTree(m, 9)
	if got := B(m, 9); got != 7 {
		t.Fatalf("B(9; postal L=3) = %d, want 7", got)
	}
	if got := len(tr.Nodes[0].Children); got != 5 {
		t.Fatalf("root of T9 has %d children, want 5", got)
	}
	h := tr.DelayHistogram()
	want := map[logp.Time]int{0: 1, 3: 1, 4: 1, 5: 1, 6: 2, 7: 3}
	for d, c := range want {
		if h[d] != c {
			t.Fatalf("delay histogram %v, want %v", h, want)
		}
	}
	if err := tr.Validate(true); err != nil {
		t.Fatalf("T9 invalid: %v", err)
	}
}

func TestPtMatchesSeqInPostalModel(t *testing.T) {
	// Theorem 2.2: P(t; L, 0, 1) = f_t.
	for l := 1; l <= 10; l++ {
		s := NewSeq(l)
		for tt := int64(0); tt <= 25; tt++ {
			m := logp.Postal(2, logp.Time(l))
			if got, want := Pt(m, tt, 0), s.F(int(tt)); got != want {
				t.Fatalf("L=%d t=%d: Pt=%d, f_t=%d", l, tt, got, want)
			}
		}
	}
}

func TestPtMatchesTreeEnumeration(t *testing.T) {
	// Pt (DP recurrence) must agree with brute-force label counting via
	// OptimalTree across assorted machines.
	machines := []logp.Machine{
		logp.MustNew(2, 6, 2, 4),
		logp.MustNew(2, 5, 2, 4),
		logp.MustNew(2, 3, 1, 2),
		logp.MustNew(2, 10, 0, 3),
		logp.MustNew(2, 1, 0, 1),
		logp.MustNew(2, 4, 3, 2), // o > g: stride = o
	}
	for _, m := range machines {
		for tt := logp.Time(0); tt <= 40; tt++ {
			want := Pt(m, tt, 0)
			if want > 5000 {
				break // keep the brute-force enumeration tractable
			}
			// Enumerate: build a tree with "want" nodes; its max label
			// must be <= tt, and one more node would exceed tt.
			tr := OptimalTree(m, int(want))
			if got := tr.MaxLabel(); got > tt {
				t.Fatalf("%v t=%d: Pt=%d but tree max label %d > t", m, tt, want, got)
			}
			tr2 := OptimalTree(m, int(want)+1)
			if got := tr2.MaxLabel(); got <= tt {
				t.Fatalf("%v t=%d: Pt=%d but %d nodes fit within t", m, tt, want, want+1)
			}
		}
	}
}

func TestBAndPtAreInverse(t *testing.T) {
	f := func(l, o, g, p uint8) bool {
		m := logp.Machine{P: 2, L: logp.Time(l%8) + 1, O: logp.Time(o % 4), G: logp.Time(g%4) + 1}
		pp := int(p%40) + 1
		b := B(m, pp)
		// P(b) >= pp and, for pp > 1, P(b-1) < pp.
		if Pt(m, b, 0) < int64(pp) {
			return false
		}
		if pp > 1 && Pt(m, b-1, 0) >= int64(pp) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBMonotone(t *testing.T) {
	m := logp.MustNew(2, 6, 2, 4)
	prev := logp.Time(-1)
	for p := 1; p <= 200; p++ {
		b := B(m, p)
		if b < prev {
			t.Fatalf("B not monotone at P=%d: %d < %d", p, b, prev)
		}
		prev = b
	}
}

func TestBPostalEqualsInvF(t *testing.T) {
	for l := 1; l <= 8; l++ {
		s := NewSeq(l)
		for p := 1; p <= 300; p++ {
			m := logp.Postal(p, logp.Time(l))
			want := logp.Time(0)
			if p > 1 {
				want = logp.Time(s.InvF(int64(p)))
			} else {
				want = 0
			}
			if got := B(m, p); got != want {
				t.Fatalf("L=%d P=%d: B=%d, InvF=%d", l, p, got, want)
			}
		}
	}
}

func TestPtSaturates(t *testing.T) {
	m := logp.Postal(2, 1) // P(t) = 2^t
	if got := Pt(m, 100, 1000); got != 1000 {
		t.Fatalf("Pt with maxCount=1000 returned %d", got)
	}
}

func TestSendStride(t *testing.T) {
	if got := SendStride(logp.MustNew(2, 6, 2, 4)); got != 4 {
		t.Fatalf("stride = %d, want g=4", got)
	}
	if got := SendStride(logp.MustNew(2, 6, 5, 4)); got != 5 {
		t.Fatalf("stride = %d, want o=5 when o > g", got)
	}
}

func TestOptimalTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OptimalTree(P=0) did not panic")
		}
	}()
	OptimalTree(logp.Postal(2, 3), 0)
}
