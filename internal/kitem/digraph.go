package kitem

import (
	"fmt"
	"sort"
	"strings"

	"logpopt/internal/continuous"
)

// BlockDigraph is the block transmission digraph of Section 3.4 (Figure 3):
// one vertex per processor block, labeled with the block's size, plus a
// vertex labeled 0 for the receive-only processor. An edge A -> B with
// weight w means w transmissions of any fixed item flow from processors of
// block A to processors of block B; Active marks the edges that carry the
// item to a processor that will itself forward it (a "sender", i.e. an
// internal tree node), including the source's transmission to the largest
// block.
type BlockDigraph struct {
	Labels []int // vertex labels: block sizes; Labels[len-1] = 0 (receive-only)
	Weight map[[2]int]int
	Active map[[2]int]int // active transmissions per edge
	Source int            // vertex receiving the source's active transmission
}

// DeriveBlockDigraph derives the digraph from a solved block-cyclic
// assignment. The edge structure is identical for every item (the schedule
// is block-cyclic), so it is computed for item 0.
func DeriveBlockDigraph(a *continuous.Assignment) *BlockDigraph {
	inst := a.Inst
	nBlocks := len(inst.Blocks)
	g := &BlockDigraph{
		Labels: make([]int, nBlocks+1),
		Weight: make(map[[2]int]int),
		Active: make(map[[2]int]int),
	}
	for bi, b := range inst.Blocks {
		g.Labels[bi] = b.Size
	}
	g.Labels[nBlocks] = 0 // receive-only vertex
	recvOnlyVertex := nBlocks

	blockOfProc := make(map[int]int)
	for bi, procs := range a.BlockProcs {
		for _, q := range procs {
			blockOfProc[q] = bi
		}
	}
	blockOfProc[a.RecvOnly] = recvOnlyVertex

	blockOfNode := make(map[int]int) // tree node -> block vertex of its handler
	const item = 0
	for ni := range inst.Tree.Nodes {
		blockOfNode[ni] = blockOfProc[a.ProcFor(item, ni)]
	}
	// The source's transmission to the root.
	g.Source = blockOfNode[0]
	g.Active[[2]int{-1, g.Source}]++
	for ni, nd := range inst.Tree.Nodes {
		from := blockOfNode[ni]
		for _, ci := range nd.Children {
			to := blockOfNode[ci]
			e := [2]int{from, to}
			g.Weight[e]++
			if len(inst.Tree.Nodes[ci].Children) > 0 {
				g.Active[e]++
			}
		}
	}
	return g
}

// Verify checks the degree constraints of Section 3.4: for each block of
// size r > 0, the weights of the edges into it (plus the source edge for the
// root block) sum to r, as do the weights out of it; the receive-only vertex
// has in-weight 1 and out-weight 0.
func (g *BlockDigraph) Verify() error {
	n := len(g.Labels)
	in := make([]int, n)
	out := make([]int, n)
	for e, w := range g.Weight {
		if e[0] >= 0 {
			out[e[0]] += w
		}
		in[e[1]] += w
	}
	in[g.Source]++ // the source's active transmission
	for v, r := range g.Labels {
		if r == 0 {
			if in[v] != 1 || out[v] != 0 {
				return fmt.Errorf("kitem: receive-only vertex has in=%d out=%d, want 1/0", in[v], out[v])
			}
			continue
		}
		if in[v] != r {
			return fmt.Errorf("kitem: block of size %d has in-weight %d", r, in[v])
		}
		if out[v] != r {
			return fmt.Errorf("kitem: block of size %d has out-weight %d", r, out[v])
		}
	}
	return nil
}

// String renders the digraph as sorted edge lines, e.g. "9 -> 6 w=2 (1 active)".
func (g *BlockDigraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "source -> block[%d] (active)\n", g.Labels[g.Source])
	type row struct {
		from, to, w, act int
	}
	var rows []row
	for e, w := range g.Weight {
		rows = append(rows, row{e[0], e[1], w, g.Active[e]})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, c := rows[i], rows[j]
		if g.Labels[a.from] != g.Labels[c.from] {
			return g.Labels[a.from] > g.Labels[c.from]
		}
		if a.from != c.from {
			return a.from < c.from
		}
		if g.Labels[a.to] != g.Labels[c.to] {
			return g.Labels[a.to] > g.Labels[c.to]
		}
		return a.to < c.to
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "block[%d]#%d -> block[%d]#%d w=%d", g.Labels[r.from], r.from, g.Labels[r.to], r.to, r.w)
		if r.act > 0 {
			fmt.Fprintf(&b, " (%d active)", r.act)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the block transmission digraph in GraphViz format: active
// transmissions are drawn bold, as in Figure 3.
func (g *BlockDigraph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=circle];\n", name)
	for v, r := range g.Labels {
		fmt.Fprintf(&b, "  v%d [label=\"%d\"];\n", v, r)
	}
	fmt.Fprintf(&b, "  src [label=\"source\", shape=box];\n  src -> v%d [style=bold];\n", g.Source)
	type row struct{ from, to int }
	var rows []row
	for e := range g.Weight {
		rows = append(rows, row{e[0], e[1]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].from != rows[j].from {
			return rows[i].from < rows[j].from
		}
		return rows[i].to < rows[j].to
	})
	for _, r := range rows {
		e := [2]int{r.from, r.to}
		style := ""
		if g.Active[e] > 0 {
			style = ", style=bold"
		}
		fmt.Fprintf(&b, "  v%d -> v%d [label=\"%d\"%s];\n", r.from, r.to, g.Weight[e], style)
	}
	b.WriteString("}\n")
	return b.String()
}
