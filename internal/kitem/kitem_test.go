package kitem

import (
	"sort"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

func TestBoundsRunningExample(t *testing.T) {
	// k=8, L=3, P-1=9 (Figure 2): B=7, k*=2, lower bound 15,
	// single-sending 17, Theorem 3.6 upper 19.
	b := BoundsFor(3, 10, 8)
	if b.B != 7 || b.KStar != 2 || b.Lower != 15 || b.SingleSending != 17 || b.Upper != 19 {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestViaContinuousFigure2(t *testing.T) {
	// Figure 2's complete 8-item broadcast on P-1 = 9, L = 3 runs through
	// time step 17 = B(P-1) + L + k - 1; our block-cyclic schedule must
	// finish there too (the single-sending optimum).
	_, s, err := ViaContinuous(3, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if vs := schedule.ValidateBroadcast(s, Origins(8)); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if got := s.LastRecv(); got != 17 {
		t.Fatalf("finish %d, want 17", got)
	}
}

func TestViaContinuousFigure5(t *testing.T) {
	// Figure 5: L=3, P-1=13, k=14 completes at time 24 on the buffered
	// model; our block-cyclic route achieves 24 = B(13)+L+k-1 with no
	// buffering at all (P-1 = P(8) = 13).
	_, s, err := ViaContinuous(3, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	if vs := schedule.ValidateBroadcast(s, Origins(14)); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	if got := s.LastRecv(); got != 24 {
		t.Fatalf("finish %d, want 24", got)
	}
}

func TestViaContinuousMeetsSingleSendingBound(t *testing.T) {
	for l := 3; l <= 6; l++ {
		seq := core.NewSeq(l)
		for tt := l; tt <= l+8; tt++ {
			p := int(seq.F(tt)) + 1
			for _, k := range []int{1, 3, 7} {
				_, s, err := ViaContinuous(l, tt, k)
				if err != nil {
					continue // unsolvable instance (e.g. L=4 t=8)
				}
				want := seq.SingleSendingLowerBound(p, int64(k))
				if got := int64(s.LastRecv()); got != want {
					t.Fatalf("L=%d t=%d k=%d: finish %d, want %d", l, tt, k, got, want)
				}
				if vs := schedule.ValidateBroadcast(s, Origins(k)); len(vs) != 0 {
					t.Fatalf("L=%d t=%d k=%d: %v", l, tt, k, vs[0])
				}
			}
		}
	}
}

func TestGreedyStrict(t *testing.T) {
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{
		{2, 5, 4}, {3, 10, 8}, {3, 14, 5}, {4, 11, 6}, {2, 21, 10}, {5, 12, 3}, {1, 8, 5},
	} {
		res, err := Greedy(c.l, c.p, c.k, Strict)
		if err != nil {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, err)
		}
		vs := schedule.ValidateBroadcast(res.Schedule, Origins(c.k))
		if len(vs) != 0 {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, vs[0])
		}
		b := BoundsFor(int(c.l), c.p, int64(c.k))
		if int64(res.Finish) < b.Lower {
			t.Fatalf("L=%d P=%d k=%d: finish %d beats the lower bound %d", c.l, c.p, c.k, res.Finish, b.Lower)
		}
	}
}

func TestGreedyBuffered(t *testing.T) {
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{
		{3, 10, 8}, {3, 14, 14}, {4, 11, 6}, {2, 22, 9},
	} {
		res, err := Greedy(c.l, c.p, c.k, Buffered)
		if err != nil {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, err)
		}
		vs := schedule.ValidateDeferred(res.Schedule)
		vs = append(vs, schedule.CheckAvailability(res.Schedule, Origins(c.k))...)
		vs = append(vs, schedule.CheckBroadcastComplete(res.Schedule, Origins(c.k))...)
		if len(vs) != 0 {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, vs[0])
		}
		b := BoundsFor(int(c.l), c.p, int64(c.k))
		if int64(res.Finish) < b.Lower {
			t.Fatalf("L=%d P=%d k=%d: finish %d beats the lower bound %d", c.l, c.p, c.k, res.Finish, b.Lower)
		}
	}
}

func TestGreedyRejectsBadInstance(t *testing.T) {
	if _, err := Greedy(3, 1, 4, Strict); err == nil {
		t.Fatal("P=1 accepted")
	}
	if _, err := Greedy(3, 4, 0, Strict); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Greedy(0, 4, 2, Strict); err == nil {
		t.Fatal("L=0 accepted")
	}
}

func TestGreedySingleSendingSource(t *testing.T) {
	res, err := Greedy(3, 9, 6, Strict)
	if err != nil {
		t.Fatal(err)
	}
	sent := map[int]int{}
	for _, e := range res.Schedule.Events {
		if e.Op == schedule.OpSend && e.Proc == 0 {
			sent[e.Item]++
			if e.Time != logp.Time(e.Item) {
				t.Fatalf("source sent item %d at %d, want %d", e.Item, e.Time, e.Item)
			}
		}
	}
	for x := 0; x < 6; x++ {
		if sent[x] != 1 {
			t.Fatalf("source sent item %d %d times", x, sent[x])
		}
	}
}

func TestBlockDigraphFigure3(t *testing.T) {
	// Figure 3: L=3, P-1 = P(11) = 41. Block sizes are one 9, one 6, one 5,
	// one 4, two 3s, three 2s, four 1s plus the receive-only vertex.
	inst, _, err := ViaContinuous(3, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := inst.Assign()
	if err != nil {
		t.Fatal(err)
	}
	g := DeriveBlockDigraph(a)
	var sizes []int
	for _, r := range g.Labels {
		sizes = append(sizes, r)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	want := []int{9, 6, 5, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1, 0}
	if len(sizes) != len(want) {
		t.Fatalf("digraph has %d vertices, want %d", len(sizes), len(want))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("block sizes %v, want %v", sizes, want)
		}
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if g.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestBlockDigraphDegreesAcrossInstances(t *testing.T) {
	for l := 3; l <= 6; l++ {
		for tt := l + 2; tt <= l+8; tt++ {
			inst, _, err := ViaContinuous(l, tt, 1)
			if err != nil {
				continue
			}
			a, err := inst.Assign()
			if err != nil {
				t.Fatal(err)
			}
			if err := DeriveBlockDigraph(a).Verify(); err != nil {
				t.Fatalf("L=%d t=%d: %v", l, tt, err)
			}
		}
	}
}

func TestStaggeredHitsSingleSendingBound(t *testing.T) {
	// Theorem 3.8's shape: whenever the staggered buffered scheduler
	// completes, it completes at exactly the single-sending lower bound
	// B(P-1)+L+k-1 with a small input buffer (<= 3 observed; the paper
	// proves 2 suffices for its bespoke construction).
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{
		{3, 10, 8}, {4, 11, 6}, {3, 12, 8}, {3, 17, 10}, {4, 23, 7},
		{5, 9, 5}, {2, 2, 4}, {6, 30, 9}, {3, 42, 10},
	} {
		res, err := Staggered(c.l, c.p, c.k)
		if err != nil {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, err)
		}
		vs := schedule.ValidateDeferred(res.Schedule)
		vs = append(vs, schedule.CheckAvailability(res.Schedule, Origins(c.k))...)
		vs = append(vs, schedule.CheckBroadcastComplete(res.Schedule, Origins(c.k))...)
		if len(vs) != 0 {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, vs[0])
		}
		want := BoundsFor(int(c.l), c.p, int64(c.k)).SingleSending
		if int64(res.Finish) != want {
			t.Fatalf("L=%d P=%d k=%d: finish %d, want single-sending bound %d", c.l, c.p, c.k, res.Finish, want)
		}
		if res.MaxBuffer > 3 {
			t.Fatalf("L=%d P=%d k=%d: buffer %d exceeds 3", c.l, c.p, c.k, res.MaxBuffer)
		}
	}
}

func TestStaggeredSaturatedInstancesFailGracefully(t *testing.T) {
	// On saturated instances the per-item matching can fail; the scheduler
	// must return an error (never an invalid schedule) and the greedy
	// scheduler must cover the instance.
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{
		{3, 14, 14}, {2, 9, 9}, {3, 25, 12}, {5, 12, 16},
	} {
		res, err := Staggered(c.l, c.p, c.k)
		if err == nil {
			vs := schedule.ValidateDeferred(res.Schedule)
			vs = append(vs, schedule.CheckBroadcastComplete(res.Schedule, Origins(c.k))...)
			if len(vs) != 0 {
				t.Fatalf("L=%d P=%d k=%d: invalid schedule: %v", c.l, c.p, c.k, vs[0])
			}
			continue
		}
		if _, gerr := Greedy(c.l, c.p, c.k, Buffered); gerr != nil {
			t.Fatalf("L=%d P=%d k=%d: greedy fallback failed: %v", c.l, c.p, c.k, gerr)
		}
	}
}

func TestOptimalGeneralHitsSingleSendingBound(t *testing.T) {
	// Beyond the paper: the general block-cyclic construction achieves the
	// single-sending optimum for arbitrary P (not only P-1 = P(t)).
	for _, c := range []struct{ l, p, k int }{
		{3, 12, 8}, {3, 25, 12}, {3, 40, 9}, {4, 23, 7}, {5, 31, 11}, {2, 15, 6}, {2, 17, 6},
	} {
		_, s, err := OptimalGeneral(logp.Time(c.l), c.p, c.k)
		if err != nil {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, err)
		}
		if vs := schedule.ValidateBroadcast(s, Origins(c.k)); len(vs) != 0 {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, vs[0])
		}
		want := BoundsFor(c.l, c.p, int64(c.k)).SingleSending
		if got := int64(s.LastRecv()); got != want {
			t.Fatalf("L=%d P=%d k=%d: finish %d, want %d", c.l, c.p, c.k, got, want)
		}
	}
}

func TestOptimalGeneralL2NearCapacityFails(t *testing.T) {
	// For L=2 the near-capacity trees (p-1 close to P(t)) have no
	// block-cyclic solution — Theorem 3.4's regime.
	if _, _, err := OptimalGeneral(2, 14, 5); err == nil { // p-1 = 13 = f_6
		t.Fatal("L=2 p-1=13 unexpectedly solved")
	}
}

func TestStaggeredTightCapacityFailsGracefully(t *testing.T) {
	// Off the P(t) grid with L=2 the capacity bound can defeat the greedy
	// leaf assignment; the scheduler must fail with an error (not emit an
	// invalid schedule), and Greedy must still handle the instance.
	if res, err := Staggered(2, 17, 10); err == nil {
		vs := schedule.ValidateDeferred(res.Schedule)
		vs = append(vs, schedule.CheckBroadcastComplete(res.Schedule, Origins(10))...)
		if len(vs) != 0 {
			t.Fatalf("staggered returned an invalid schedule: %v", vs[0])
		}
	}
	if _, err := Greedy(2, 17, 10, Buffered); err != nil {
		t.Fatalf("greedy fallback failed: %v", err)
	}
}

func TestStaggeredRejects(t *testing.T) {
	if _, err := Staggered(3, 1, 2); err == nil {
		t.Fatal("P=1 accepted")
	}
	if _, err := Staggered(3, 4, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBlockDigraphDOT(t *testing.T) {
	inst, _, err := ViaContinuous(3, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := inst.Assign()
	if err != nil {
		t.Fatal(err)
	}
	dot := DeriveBlockDigraph(a).DOT("fig3")
	for _, w := range []string{"digraph \"fig3\"", "src ->", "style=bold"} {
		if !strings.Contains(dot, w) {
			t.Fatalf("DOT missing %q:\n%s", w, dot)
		}
	}
}

func TestSearchOptimalTinyInstances(t *testing.T) {
	// Exhaustive branch-and-bound on tiny instances: Theorem 3.1's lower
	// bound is achievable (with multi-sending) on every one of these.
	for _, c := range []struct {
		l    logp.Time
		p, k int
	}{
		{2, 3, 2}, {2, 4, 2}, {2, 3, 3}, {3, 3, 2}, {2, 5, 2}, {3, 4, 2},
	} {
		lb := core.NewSeq(int(c.l)).KItemLowerBound(c.p, int64(c.k))
		best, done, err := SearchOptimal(c.l, c.p, c.k, 0)
		if err != nil {
			t.Fatalf("L=%d P=%d k=%d: %v", c.l, c.p, c.k, err)
		}
		if !done {
			t.Skipf("L=%d P=%d k=%d: budget exhausted (best %d)", c.l, c.p, c.k, best)
		}
		if int64(best) != lb {
			t.Fatalf("L=%d P=%d k=%d: optimal %d, lower bound %d", c.l, c.p, c.k, best, lb)
		}
	}
}

func TestSearchOptimalRejects(t *testing.T) {
	if _, _, err := SearchOptimal(3, 20, 2, 0); err == nil {
		t.Fatal("oversized instance accepted")
	}
	if _, _, err := SearchOptimal(3, 1, 2, 0); err == nil {
		t.Fatal("P=1 accepted")
	}
}
