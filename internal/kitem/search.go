package kitem

import (
	"fmt"
	"sort"

	"logpopt/internal/core"
	"logpopt/internal/logp"
)

// SearchOptimal finds the true optimal k-item broadcast time for a small
// postal instance by branch-and-bound over all schedules (multi-sending
// allowed — the source may retransmit items, unlike the single-sending
// schedulers). It verifies Theorem 3.1's lower bound achievability on tiny
// instances and measures the true gap where the bound is not tight.
//
// The search explores, step by step, every useful assignment of sends to
// receivers (strict reception: at most one arrival per processor per step;
// network capacity respected). budget bounds the number of explored nodes;
// when exhausted, SearchOptimal returns the best time found and done=false.
//
// Feasible only for very small instances (roughly P <= 5, k <= 3, L <= 3).
func SearchOptimal(l logp.Time, p, k int, budget int64) (best logp.Time, done bool, err error) {
	if p < 2 || k < 1 || l < 1 {
		return 0, false, fmt.Errorf("kitem: bad instance P=%d k=%d L=%d", p, k, l)
	}
	if p > 6 || k > 4 || l > 4 {
		return 0, false, fmt.Errorf("kitem: instance too large for exhaustive search")
	}
	if budget <= 0 {
		budget = 20_000_000
	}
	seq := core.NewSeq(int(l))
	lower := seq.KItemLowerBound(p, int64(k))

	// Upper bound to start from: the greedy scheduler.
	res, gerr := Greedy(l, p, k, Strict)
	if gerr != nil {
		return 0, false, gerr
	}
	best = res.Finish
	allDone := true

	full := (1 << k) - 1
	type flight struct {
		item, to int
		arrive   logp.Time
	}
	holds := make([]int, p) // bitmask per proc
	var flights []flight
	nodes := budget

	// memo of visited states at given time with holdings+arrival pattern;
	// states are encoded into a string key. Seen states with <= time need
	// not be revisited (holdings monotone).
	type key struct {
		sig string
	}
	seen := make(map[key]logp.Time)

	var rec func(sigma logp.Time)
	complete := func() bool {
		for q := 1; q < p; q++ {
			if holds[q] != full {
				return false
			}
		}
		return true
	}
	// Optimistic bound: some processor still missing m items can finish no
	// earlier than when m arrivals land, one per step, the first no earlier
	// than sigma+l (if not already in flight).
	bound := func(sigma logp.Time) logp.Time {
		var worst logp.Time
		for q := 1; q < p; q++ {
			missing := 0
			for x := 0; x < k; x++ {
				if holds[q]&(1<<x) == 0 {
					missing++
				}
			}
			if missing == 0 {
				continue
			}
			// Earliest arrival usable: in-flight ones, then sigma+l onward.
			inflightArrivals := make([]logp.Time, 0, 4)
			for _, f := range flights {
				if f.to == q && holds[q]&(1<<f.item) == 0 {
					inflightArrivals = append(inflightArrivals, f.arrive)
				}
			}
			sort.Slice(inflightArrivals, func(i, j int) bool { return inflightArrivals[i] < inflightArrivals[j] })
			var fin logp.Time
			next := sigma + l
			for i := 0; i < missing; i++ {
				if i < len(inflightArrivals) {
					fin = inflightArrivals[i]
					continue
				}
				fin = next
				next++
			}
			if fin > worst {
				worst = fin
			}
		}
		return worst
	}

	encode := func(sigma logp.Time) key {
		b := make([]byte, 0, 2*p+4*len(flights))
		for q := 0; q < p; q++ {
			b = append(b, byte(holds[q]), byte(holds[q]>>8))
		}
		fl := append([]flight(nil), flights...)
		sort.Slice(fl, func(i, j int) bool {
			if fl[i].arrive != fl[j].arrive {
				return fl[i].arrive < fl[j].arrive
			}
			if fl[i].to != fl[j].to {
				return fl[i].to < fl[j].to
			}
			return fl[i].item < fl[j].item
		})
		for _, f := range fl {
			b = append(b, byte(f.item), byte(f.to), byte(f.arrive-sigma))
		}
		return key{sig: string(b)}
	}

	rec = func(sigma logp.Time) {
		if nodes <= 0 {
			allDone = false
			return
		}
		nodes--
		if complete() {
			// Completion is detected at delivery time inside assign(); a
			// fully complete state reached here has already updated best.
			return
		}
		if sigma >= best || bound(sigma) >= best {
			return
		}
		k2 := encode(sigma)
		if prev, ok := seen[k2]; ok && prev <= sigma {
			return
		}
		seen[k2] = sigma

		// Enumerate send assignments for this step: for each proc holding
		// items (source holds items generated so far), choose a useful
		// (item, target) or idle. Receivers limited to one arrival per step.
		reserved := make(map[int]bool) // target busy at sigma+l
		inTo := make(map[int]int)
		for _, f := range flights {
			if f.arrive == sigma+l {
				reserved[f.to] = true
			}
			inTo[f.to]++
		}
		var assign func(q int)
		assign = func(q int) {
			if nodes <= 0 {
				allDone = false
				return
			}
			if q == p {
				// Advance one step: deliver arrivals at sigma+1.
				old := flights
				var nf []flight
				var delivered []struct {
					q, item int
				}
				var finishedAt logp.Time
				for _, f := range old {
					if f.arrive == sigma+1 {
						if holds[f.to]&(1<<f.item) == 0 {
							holds[f.to] |= 1 << f.item
							delivered = append(delivered, struct{ q, item int }{f.to, f.item})
						}
					} else {
						nf = append(nf, f)
					}
				}
				flights = nf
				if complete() {
					finishedAt = sigma + 1
					if finishedAt < best {
						best = finishedAt
					}
				} else {
					rec(sigma + 1)
				}
				// Undo.
				for _, d := range delivered {
					holds[d.q] &^= 1 << d.item
				}
				flights = old
				return
			}
			// Option: idle.
			assign(q + 1)
			if nodes <= 0 {
				return
			}
			avail := holds[q]
			if q == 0 {
				// Theorem 3.1's setting: all k items reside at the source
				// from time 0 (and the source may retransmit them freely).
				avail = full
			}
			for x := 0; x < k; x++ {
				if avail&(1<<x) == 0 {
					continue
				}
				for to := 1; to < p; to++ {
					if to == q || holds[to]&(1<<x) != 0 || reserved[to] || inTo[to] >= int(l) {
						continue
					}
					// No duplicate copy already in flight to the same target.
					dup := false
					for _, f := range flights {
						if f.to == to && f.item == x {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					flights = append(flights, flight{item: x, to: to, arrive: sigma + l})
					reserved[to] = true
					inTo[to]++
					assign(q + 1)
					inTo[to]--
					delete(reserved, to)
					flights = flights[:len(flights)-1]
					if nodes <= 0 {
						return
					}
				}
			}
		}
		assign(0)
	}
	rec(0)
	if best < lower {
		return best, false, fmt.Errorf("kitem: search beat the Theorem 3.1 lower bound (%d < %d) — model bug", best, lower)
	}
	return best, allDone && nodes > 0, nil
}
