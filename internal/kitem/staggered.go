package kitem

import (
	"fmt"
	"sort"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Staggered builds a single-sending k-item broadcast schedule for ANY P >= 2
// in the buffered (Section 3.5) postal model, using the paper's structural
// recipe rather than per-step greedy matching:
//
//   - item x is transmitted by the source at time x to the root processor of
//     its copy of the optimal broadcast tree T_{P-1}, staggered one step
//     apart (the continuous phase of Theorem 3.2's structure);
//   - every internal node of T_{P-1} owns an r-block of r processors that
//     serve the node cyclically (processor j of the block is the node's
//     sender for items x ≡ j mod r), exactly Section 3.4's blocks — so the
//     sending side is conflict-free by construction for every P;
//   - the remaining processors of each item (those whose block is off duty)
//     receive the tree's leaf transmissions; the leaf-to-processor
//     assignment is chosen per item to dodge reception conflicts, and any
//     residual conflict is absorbed by the input buffer (the reception is
//     deferred past the arrival, as Theorem 3.8's modified model allows).
//
// For P-1 = P(t) a perfect assignment exists (the block-cyclic words) and
// the result needs no buffering; for general P the buffer absorbs the
// mismatch. The completion target is the single-sending optimum
// B(P-1) + L + k - 1; the caller can compare Result.Finish against it.
//
// For L <= 2 the network capacity ceil(L/g) is so tight that the per-item
// greedy leaf assignment can paint itself into a corner off the P(t) grid;
// Staggered then returns an error and Greedy (which never violates the
// capacity constraint) should be used instead. This mirrors the paper:
// L = 2 is exactly the case whose optimal schedules need the bespoke
// treatment of Theorems 3.4/3.5.
func Staggered(l logp.Time, p, k int) (Result, error) {
	if p < 2 || k < 1 || l < 1 {
		return Result{}, fmt.Errorf("kitem: bad instance P=%d k=%d L=%d", p, k, l)
	}
	m := logp.Postal(p, l)
	inner := logp.Postal(p-1, l)
	tr := core.OptimalTree(inner, p-1)

	// Blocks: one per internal node; processors 1..P-1 in block order, the
	// last one receive-only (sum of block sizes is exactly P-3+1... the
	// tree has P-2 edges, so sum r = P-2 and one processor remains).
	type blockInfo struct {
		node  int
		size  int
		procs []int
	}
	var blocks []blockInfo
	next := 1
	blockOfNode := make(map[int]int)
	for ni, nd := range tr.Nodes {
		if len(nd.Children) == 0 {
			continue
		}
		b := blockInfo{node: ni, size: len(nd.Children)}
		for j := 0; j < b.size; j++ {
			b.procs = append(b.procs, next)
			next++
		}
		blockOfNode[ni] = len(blocks)
		blocks = append(blocks, b)
	}
	recvOnly := next
	if recvOnly != p-1 {
		return Result{}, fmt.Errorf("kitem: block layout used %d processors, want %d", recvOnly, p-1)
	}

	// onDuty(x, bi) = processor of block bi serving its node for item x.
	onDuty := func(x, bi int) int {
		b := blocks[bi]
		return b.procs[((x%b.size)+b.size)%b.size]
	}

	// Precompute all active receptions: proc -> set of occupied steps.
	// activeSlots marks steps that MUST stay free for an on-time active
	// reception; occupied additionally accumulates scheduled leaf arrivals.
	occupied := make([]map[logp.Time]bool, p)
	activeSlots := make([]map[logp.Time]bool, p)
	arrCount := make([]map[logp.Time]int, p) // arrivals per step (network)
	for i := range occupied {
		occupied[i] = make(map[logp.Time]bool)
		activeSlots[i] = make(map[logp.Time]bool)
		arrCount[i] = make(map[logp.Time]int)
	}
	// capacityOK reports whether adding an arrival at `at` keeps every
	// L-window of messages in flight toward q within the network capacity
	// ceil(L/g) = L: for each τ in [at-L, at), the arrivals in (τ, τ+L]
	// (including the new one) must number at most L.
	capacityOK := func(q int, at logp.Time) bool {
		for tau := at - l; tau < at; tau++ {
			c := 1 // the new arrival
			for d := logp.Time(1); d <= l; d++ {
				c += arrCount[q][tau+d]
			}
			if c > int(l) {
				return false
			}
		}
		return true
	}
	activeProc := make([][]int, k) // activeProc[x][node] for internal nodes
	for x := 0; x < k; x++ {
		activeProc[x] = make([]int, tr.P())
		for i := range activeProc[x] {
			activeProc[x][i] = -1
		}
		for ni := range tr.Nodes {
			if len(tr.Nodes[ni].Children) == 0 {
				continue
			}
			q := onDuty(x, blockOfNode[ni])
			activeProc[x][ni] = q
			at := logp.Time(x) + l + tr.Nodes[ni].Label
			if occupied[q][at] {
				return Result{}, fmt.Errorf("kitem: active reception clash at proc %d time %d", q, at)
			}
			occupied[q][at] = true
			activeSlots[q][at] = true
			arrCount[q][at]++
		}
	}

	s := &schedule.Schedule{M: m}
	maxBuf := 0
	var finish logp.Time
	type arrival struct {
		to, item, from int
		at             logp.Time
		active         bool
	}
	var arrivals []arrival

	for x := 0; x < k; x++ {
		// Source -> root.
		root := activeProc[x][0]
		if root < 0 { // single-node tree: the only processor is a leaf
			root = 1
			at := logp.Time(x) + l
			if occupied[root][at] {
				return Result{}, fmt.Errorf("kitem: root reception clash at proc %d time %d", root, at)
			}
			occupied[root][at] = true
			activeSlots[root][at] = true
			arrCount[root][at]++
		}
		s.Send(0, logp.Time(x), x, root)
		arrivals = append(arrivals, arrival{to: root, item: x, from: 0, at: logp.Time(x) + l, active: true})

		// Off-duty processors of this item, to be matched with leaves.
		used := map[int]bool{root: true}
		for ni := range tr.Nodes {
			if q := activeProc[x][ni]; q >= 0 {
				used[q] = true
			}
		}
		var free []int
		for q := 1; q < p; q++ {
			if !used[q] {
				free = append(free, q)
			}
		}
		// Leaves in reception-time order; match each to a free processor
		// whose occupied set misses the arrival step (prefer the least
		// recently used so receptions spread out); fall back to any.
		var leaves []int
		for ni, nd := range tr.Nodes {
			if len(nd.Children) == 0 && ni != 0 {
				leaves = append(leaves, ni)
			}
		}
		sort.Slice(leaves, func(i, j int) bool {
			return tr.Nodes[leaves[i]].Label < tr.Nodes[leaves[j]].Label
		})
		if len(leaves) != len(free) {
			return Result{}, fmt.Errorf("kitem: %d leaves for %d free processors", len(leaves), len(free))
		}
		// Assign leaves to free processors with a bipartite matching
		// (augmenting paths): leaf -> processor edges require network
		// headroom; edges into an open reception slot are preferred by
		// scanning them first so buffering stays rare.
		leafProc := make(map[int]int)
		procLeaf := make(map[int]int) // proc -> leaf index in leaves
		arrivalOf := func(ni int) logp.Time {
			return logp.Time(x) + l + tr.Nodes[ni].Label
		}
		feasible := func(q, ni int) bool {
			return capacityOK(q, arrivalOf(ni))
		}
		var augment func(ni int, visited map[int]bool) bool
		augment = func(ni int, visited map[int]bool) bool {
			at := arrivalOf(ni)
			// Two passes: conflict-free slots first, then buffered ones.
			for pass := 0; pass < 2; pass++ {
				for _, q := range free {
					if visited[q] || !feasible(q, ni) {
						continue
					}
					if (pass == 0) != !occupied[q][at] {
						continue
					}
					visited[q] = true
					prev, had := procLeaf[q]
					if !had || augment(prev, visited) {
						procLeaf[q] = ni
						leafProc[ni] = q
						return true
					}
				}
			}
			return false
		}
		for _, ni := range leaves {
			if !augment(ni, make(map[int]bool)) {
				return Result{}, fmt.Errorf("kitem: no capacity-respecting assignment for item %d (L=%d P=%d)", x, l, p)
			}
		}
		for ni, q := range leafProc {
			occupied[q][arrivalOf(ni)] = true
			arrCount[q][arrivalOf(ni)]++
		}
		// Emit the tree's sends for item x.
		procFor := func(ni int) int {
			if q := activeProc[x][ni]; q >= 0 {
				return q
			}
			return leafProc[ni]
		}
		for ni, nd := range tr.Nodes {
			from := procFor(ni)
			for i, ci := range nd.Children {
				at := logp.Time(x) + l + tr.Nodes[ni].Label + logp.Time(i)
				s.Send(from, at, x, procFor(ci))
				arrivals = append(arrivals, arrival{
					to: procFor(ci), item: x, from: from,
					at: at + l, active: len(tr.Nodes[ci].Children) > 0,
				})
			}
		}
	}

	// Place receptions: active ones exactly at arrival; deferred ones at the
	// earliest later free step of their processor.
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].active && !arrivals[j].active
	})
	recvAt := make([]map[logp.Time]bool, p)
	pendingPeak := make([]int, p)
	pendingNow := make([]map[logp.Time]int, p)
	for i := range recvAt {
		recvAt[i] = make(map[logp.Time]bool)
		pendingNow[i] = make(map[logp.Time]int)
	}
	for _, a := range arrivals {
		at := a.at
		if a.active {
			if recvAt[a.to][at] {
				return Result{}, fmt.Errorf("kitem: active slot stolen at proc %d time %d", a.to, at)
			}
		} else {
			for recvAt[a.to][at] || activeSlots[a.to][at] {
				at++
			}
		}
		recvAt[a.to][at] = true
		s.Recv(a.to, at, a.item, a.from)
		if a.active && at != a.at {
			return Result{}, fmt.Errorf("kitem: active reception deferred at proc %d item %d", a.to, a.item)
		}
		// Buffer occupancy: the message waits during [a.at, at].
		for ttt := a.at; ttt <= at; ttt++ {
			pendingNow[a.to][ttt]++
			if pendingNow[a.to][ttt] > pendingPeak[a.to] {
				pendingPeak[a.to] = pendingNow[a.to][ttt]
			}
		}
		if at > finish {
			finish = at
		}
	}
	for _, pk := range pendingPeak {
		if pk > maxBuf {
			maxBuf = pk
		}
	}
	return Result{Schedule: s, Finish: finish, MaxBuffer: maxBuf}, nil
}
