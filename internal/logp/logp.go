// Package logp defines the LogP machine model of Culler et al. (PPoPP 1993),
// the substrate on which every algorithm in Karp, Sahay, Santos and Schauser,
// "Optimal Broadcast and Summation in the LogP Model" (SPAA 1993), operates.
//
// A LogP machine is described by four parameters:
//
//   - P, the number of processor/memory pairs;
//   - L, the latency, an upper bound on the delay incurred by a message
//     travelling from its source to its destination;
//   - o, the overhead, the time for which a processor is busy during the
//     transmission or reception of a message;
//   - g, the gap, a lower bound on the time between consecutive message
//     transmissions (or consecutive receptions) at the same processor.
//
// All times are in processor cycles. The network has finite capacity: at most
// ceil(L/g) messages may be in transit from any processor, or to any
// processor, at any time.
//
// The postal model of Bar-Noy and Kipnis is the special case o = 0, g = 1;
// Sections 3 of the paper are set in that model.
package logp

import (
	"errors"
	"fmt"
)

// Time is a point or duration on the machine's cycle clock.
type Time = int64

// Machine holds the four LogP parameters. The zero value is not a valid
// machine; construct one with New or validate with Validate.
type Machine struct {
	P int  // number of processors
	L Time // latency
	O Time // per-message send/receive overhead
	G Time // gap between consecutive sends or receives at one processor
}

// Errors returned by Validate.
var (
	ErrBadP = errors.New("logp: P must be at least 1")
	ErrBadL = errors.New("logp: L must be at least 1")
	ErrBadO = errors.New("logp: o must be non-negative")
	ErrBadG = errors.New("logp: g must be at least 1")
)

// New returns a validated machine.
func New(p int, l, o, g Time) (Machine, error) {
	m := Machine{P: p, L: l, O: o, G: g}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// MustNew is New, panicking on invalid parameters. Intended for tests,
// examples and package-level machine profiles.
func MustNew(p int, l, o, g Time) Machine {
	m, err := New(p, l, o, g)
	if err != nil {
		panic(err)
	}
	return m
}

// Postal returns the postal-model machine with latency l: o = 0, g = 1.
// This is the model of Section 3 of the paper.
func Postal(p int, l Time) Machine {
	return Machine{P: p, L: l, O: 0, G: 1}
}

// Validate reports whether the parameters describe a meaningful machine.
func (m Machine) Validate() error {
	switch {
	case m.P < 1:
		return fmt.Errorf("%w (got %d)", ErrBadP, m.P)
	case m.L < 1:
		return fmt.Errorf("%w (got %d)", ErrBadL, m.L)
	case m.O < 0:
		return fmt.Errorf("%w (got %d)", ErrBadO, m.O)
	case m.G < 1:
		return fmt.Errorf("%w (got %d)", ErrBadG, m.G)
	}
	return nil
}

// IsPostal reports whether the machine is a postal-model machine (o=0, g=1).
func (m Machine) IsPostal() bool { return m.O == 0 && m.G == 1 }

// Capacity returns the network capacity bound ceil(L/g): the maximum number
// of messages that may be in transit from any processor, or to any processor,
// at any time.
func (m Machine) Capacity() int {
	return int((m.L + m.G - 1) / m.G)
}

// D returns the parent-to-first-child delay of the universal optimal
// broadcast tree: L + 2o. A message made available at time t on one processor
// is first available on another at t + o + L + o.
func (m Machine) D() Time { return m.L + 2*m.O }

// SendRecvSpan returns the end-to-end time of a single point-to-point
// message: o (send overhead) + L (flight) + o (receive overhead).
func (m Machine) SendRecvSpan() Time { return m.L + 2*m.O }

// String renders the machine in the paper's notation.
func (m Machine) String() string {
	return fmt.Sprintf("LogP(P=%d, L=%d, o=%d, g=%d)", m.P, m.L, m.O, m.G)
}

// WithP returns a copy of the machine with the processor count replaced.
func (m Machine) WithP(p int) Machine {
	m.P = p
	return m
}

// Profiles of real machines from the LogP literature, usable in examples and
// benchmark sweeps. Cycle counts follow the published LogP measurements
// (order-of-magnitude; the shapes, not the absolute numbers, matter here).
var (
	// ProfileCM5 approximates a Thinking Machines CM-5 node as measured by
	// Culler et al.: sub-microsecond overhead, small gap, modest latency.
	ProfileCM5 = Machine{P: 64, L: 6, O: 2, G: 4}
	// ProfilePaperFig1 is the machine of Figure 1 of the paper.
	ProfilePaperFig1 = Machine{P: 8, L: 6, O: 2, G: 4}
	// ProfilePaperFig6 is the machine of Figure 6 of the paper.
	ProfilePaperFig6 = Machine{P: 8, L: 5, O: 2, G: 4}
	// ProfileEthernetCluster approximates a workstation cluster: large
	// latency and overhead relative to the processor clock.
	ProfileEthernetCluster = Machine{P: 16, L: 40, O: 10, G: 12}
	// ProfileLowLatency approximates a tightly coupled MPP with wormhole
	// routing: latency dominates a tiny overhead.
	ProfileLowLatency = Machine{P: 128, L: 8, O: 1, G: 2}
)
