package logp

import (
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	m, err := New(8, 6, 2, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.P != 8 || m.L != 6 || m.O != 2 || m.G != 4 {
		t.Fatalf("New stored wrong params: %+v", m)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		m    Machine
	}{
		{"P=0", Machine{P: 0, L: 1, O: 0, G: 1}},
		{"P<0", Machine{P: -3, L: 1, O: 0, G: 1}},
		{"L=0", Machine{P: 2, L: 0, O: 0, G: 1}},
		{"L<0", Machine{P: 2, L: -1, O: 0, G: 1}},
		{"o<0", Machine{P: 2, L: 1, O: -1, G: 1}},
		{"g=0", Machine{P: 2, L: 1, O: 0, G: 0}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid machine %v", c.name, c.m)
		}
		if _, err := New(c.m.P, c.m.L, c.m.O, c.m.G); err == nil {
			t.Errorf("%s: New accepted invalid machine %v", c.name, c.m)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid machine")
		}
	}()
	MustNew(0, 1, 0, 1)
}

func TestPostal(t *testing.T) {
	m := Postal(10, 3)
	if !m.IsPostal() {
		t.Fatalf("Postal machine not recognized as postal: %v", m)
	}
	if m.L != 3 || m.P != 10 {
		t.Fatalf("Postal stored wrong params: %v", m)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Postal machine invalid: %v", err)
	}
	if ProfileCM5.IsPostal() {
		t.Fatal("CM5 profile should not be postal")
	}
}

func TestCapacity(t *testing.T) {
	cases := []struct {
		l, g Time
		want int
	}{
		{6, 4, 2}, {6, 1, 6}, {1, 1, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}, {3, 5, 1},
	}
	for _, c := range cases {
		m := Machine{P: 2, L: c.l, O: 0, G: c.g}
		if got := m.Capacity(); got != c.want {
			t.Errorf("Capacity(L=%d,g=%d) = %d, want %d", c.l, c.g, got, c.want)
		}
	}
}

func TestCapacityProperty(t *testing.T) {
	// Capacity is ceil(L/g): capacity*g >= L > (capacity-1)*g.
	f := func(l, g uint8) bool {
		m := Machine{P: 2, L: Time(l%60) + 1, O: 0, G: Time(g%20) + 1}
		c := Time(m.Capacity())
		return c*m.G >= m.L && (c-1)*m.G < m.L
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDAndSpan(t *testing.T) {
	m := Machine{P: 8, L: 6, O: 2, G: 4}
	if m.D() != 10 {
		t.Fatalf("D = %d, want 10", m.D())
	}
	if m.SendRecvSpan() != 10 {
		t.Fatalf("SendRecvSpan = %d, want 10", m.SendRecvSpan())
	}
	pm := Postal(4, 7)
	if pm.D() != 7 {
		t.Fatalf("postal D = %d, want 7", pm.D())
	}
}

func TestWithP(t *testing.T) {
	m := ProfileCM5.WithP(256)
	if m.P != 256 || m.L != ProfileCM5.L {
		t.Fatalf("WithP changed wrong fields: %v", m)
	}
	if ProfileCM5.P != 64 {
		t.Fatal("WithP mutated the original profile")
	}
}

func TestString(t *testing.T) {
	got := Machine{P: 8, L: 6, O: 2, G: 4}.String()
	want := "LogP(P=8, L=6, o=2, g=4)"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestProfilesValid(t *testing.T) {
	for _, m := range []Machine{ProfileCM5, ProfilePaperFig1, ProfilePaperFig6, ProfileEthernetCluster, ProfileLowLatency} {
		if err := m.Validate(); err != nil {
			t.Errorf("profile %v invalid: %v", m, err)
		}
	}
}
