// Package logtime constructs optimal broadcast and summation schedules
// without search, in O(log P) time per processor after a small shared
// precomputation — the repository's implementation of the construction idea
// in Träff's "Optimal Broadcast Schedules in Logarithmic Time" (arXiv
// 2407.18004), specialized to the KSSS93 universal optimal broadcast tree.
//
// The universal tree of Definition 2.3 is determined entirely by two
// machine constants: d = L + 2o (the parent-to-child delay) and
// stride = max(g, o) (the spacing between a node's successive sends). The
// root has label 0 and a node with label t has children labeled
// t + d + i*stride for i >= 0; ß(P) is the subtree of the P smallest-label
// nodes with ties broken by parent index ("leftmost fill"), and B(P) is its
// largest label (Definition 2.4, Theorem 2.1).
//
// The whole tree can therefore be described by counting rather than built by
// a priority-queue search:
//
//   - Every label is an element of {0} ∪ {a*d + b*stride : a >= 1, b >= 0}.
//     The distinct labels up to B(P) — the "label points" — number far fewer
//     than P (one point can carry exponentially many nodes).
//   - N(τ), the number of universal-tree nodes with label <= τ, obeys
//     N(τ) = 1 + Σ_{i>=0} N(τ - d - i*stride) (core.Pt's recurrence). Its
//     group sizes G(τ) = N(τ) - N(τ-1) satisfy a purely local identity:
//     the nodes labeled τ correspond one-to-one, in order, to the earlier
//     nodes q with t_q ≡ τ - d (mod stride) and t_q <= τ - d — node q's
//     child number (τ - d - t_q)/stride. Hence G(τ) = R(τ-d, c), where
//     R(x, c) counts nodes with label <= x in residue class c = (τ-d) mod
//     stride.
//   - Ranks (= node indices of core.OptimalTree, which pops candidates in
//     lexicographic (label, parent index, child index) order) decompose as
//     rank = N(label-1) + position-in-label-group, and the group at label τ
//     is ordered by parent rank. Both directions — rank to parent, rank to
//     children — therefore reduce to O(log P) predecessor searches over the
//     per-class cumulative counts.
//
// A Builder holds the label points with their N, G and class-cumulative R
// values for one machine shape (d, stride); the tables are independent of P
// and grow lazily as larger P are queried. On top of it, Node answers
// per-rank queries in O(log P), Tree materializes ß(p) in O(p) — node for
// node identical to core.OptimalTree, which the tests assert — and BTime
// returns B(p) without building anything.
package logtime

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs"
)

// Builder-cache and table-growth metrics: how often For reuses a per-shape
// builder versus constructing one, and how many label points the lazily
// grown counting tables have admitted process-wide. Admissions happen at
// most O(log P) times per shape, so the atomic add is nowhere near a hot
// path; the /timeseries probes sample these to show memoization working.
var (
	mBuilderHits   = obs.Default.Counter("logtime.builder.hits")
	mBuilderMisses = obs.Default.Counter("logtime.builder.misses")
	mPoints        = obs.Default.Counter("logtime.points.admitted")
)

// satCap bounds every node count so the exponentially growing N(τ) can never
// overflow int64 arithmetic, mirroring core.Pt's saturation.
const satCap = int64(1) << 62

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a || s > satCap {
		return satCap
	}
	return s
}

// point is one distinct label of the universal tree, with the counting state
// hung off it: n = N(label) (nodes with label <= this, saturating), g = the
// group size N(label) - N(prev point), and r = the cumulative group size
// over this point's residue class label mod stride, up to and including it.
type point struct {
	label logp.Time
	n     int64
	g     int64
	r     int64
}

// labelHeap is the generation frontier: candidate labels not yet admitted.
type labelHeap []logp.Time

func (h labelHeap) Len() int           { return len(h) }
func (h labelHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h labelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *labelHeap) Push(x any)        { *h = append(*h, x.(logp.Time)) }
func (h *labelHeap) Pop() any          { o := *h; n := len(o); x := o[n-1]; *h = o[:n-1]; return x }
func (h *labelHeap) push(t logp.Time)  { heap.Push(h, t) }
func (h *labelHeap) pop() logp.Time    { return heap.Pop(h).(logp.Time) }

// Builder precomputes the counting structure of the universal optimal
// broadcast tree for one machine shape. It is safe for concurrent use; the
// tables grow lazily and are shared across every P queried.
type Builder struct {
	M      logp.Machine
	d      logp.Time // parent-to-child delay L + 2o
	stride logp.Time // send spacing max(g, o)

	mu       sync.Mutex
	pts      []point               // label points, ascending
	classes  map[logp.Time][]int32 // residue class -> indices into pts, ascending
	frontier labelHeap             // pending candidate labels
	pending  map[logp.Time]bool    // dedup for the frontier
}

// NewBuilder validates the machine and returns an empty builder for it.
func NewBuilder(m logp.Machine) (*Builder, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("logtime: %w", err)
	}
	b := &Builder{
		M:       m,
		d:       m.D(),
		stride:  core.SendStride(m),
		classes: make(map[logp.Time][]int32),
		pending: make(map[logp.Time]bool),
	}
	b.admit(0) // the root's label
	return b, nil
}

// MustBuilder is NewBuilder for known-valid machines.
func MustBuilder(m logp.Machine) *Builder {
	b, err := NewBuilder(m)
	if err != nil {
		panic(err)
	}
	return b
}

// admit appends the point for label t (which must exceed every existing
// point), computing its group size from the class tables, and schedules its
// successor labels t+d (first child of a node labeled t) and t+stride (next
// sibling — except from the root, whose children all carry a d component).
func (b *Builder) admit(t logp.Time) {
	var g int64
	if t == 0 {
		g = 1 // the root
	} else {
		g = b.classCount(t-b.d, mod(t-b.d, b.stride))
	}
	n := g
	if len(b.pts) > 0 {
		n = satAdd(b.pts[len(b.pts)-1].n, g)
	}
	c := mod(t, b.stride)
	r := g
	if idxs := b.classes[c]; len(idxs) > 0 {
		r = satAdd(b.pts[idxs[len(idxs)-1]].r, g)
	}
	b.classes[c] = append(b.classes[c], int32(len(b.pts)))
	b.pts = append(b.pts, point{label: t, n: n, g: g, r: r})
	mPoints.Inc()
	b.schedule(t + b.d)
	if t != 0 {
		b.schedule(t + b.stride)
	}
}

func (b *Builder) schedule(t logp.Time) {
	if t <= 0 || b.pending[t] { // t <= 0 only on Time overflow of huge params
		return
	}
	b.pending[t] = true
	b.frontier.push(t)
}

// ensure grows the point tables until the total node count reaches p (or
// saturates), so that every label up to B(p) is materialized. Callers hold mu.
func (b *Builder) ensure(p int64) {
	for b.pts[len(b.pts)-1].n < p && b.pts[len(b.pts)-1].n < satCap && b.frontier.Len() > 0 {
		b.admit(b.frontier.pop())
	}
}

// mod is the non-negative remainder.
func mod(a, m logp.Time) logp.Time {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// classCount returns R(x, c): the number of universal-tree nodes with label
// <= x in residue class c, from the class-cumulative table. Callers hold mu.
func (b *Builder) classCount(x logp.Time, c logp.Time) int64 {
	idxs := b.classes[c]
	// Last class point with label <= x.
	lo, hi := 0, len(idxs)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.pts[idxs[mid]].label <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return b.pts[idxs[lo-1]].r
}

// pointAt returns the index of the point with exactly the given label, or -1.
// Callers hold mu.
func (b *Builder) pointAt(t logp.Time) int {
	i := sort.Search(len(b.pts), func(i int) bool { return b.pts[i].label >= t })
	if i < len(b.pts) && b.pts[i].label == t {
		return i
	}
	return -1
}

// prevN returns N just below point pi: the node count strictly before its
// label group. Callers hold mu.
func (b *Builder) prevN(pi int) int64 {
	if pi == 0 {
		return 0
	}
	return b.pts[pi-1].n
}

func (b *Builder) checkP(p int) {
	if p < 1 {
		panic(fmt.Sprintf("logtime: requires P >= 1, got %d", p))
	}
}

// Count returns N(t) — the number of universal-tree nodes with label <= t,
// saturating at maxCount (<= 0 selects core.Pt's default of 1<<40). It is
// the search-free equivalent of core.Pt.
func (b *Builder) Count(t logp.Time, maxCount int64) int64 {
	if maxCount <= 0 || maxCount > satCap {
		maxCount = 1 << 40
	}
	if t < 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Grow until the last point passes t or the count passes maxCount.
	for b.pts[len(b.pts)-1].label <= t && b.pts[len(b.pts)-1].n < maxCount && b.frontier.Len() > 0 {
		if b.frontier[0] > t {
			break
		}
		b.admit(b.frontier.pop())
	}
	i := sort.Search(len(b.pts), func(i int) bool { return b.pts[i].label > t })
	var n int64
	if i > 0 {
		n = b.pts[i-1].n
	}
	if n > maxCount {
		n = maxCount
	}
	return n
}

// BTime returns the optimal broadcast time B(p): the label of the p-th
// smallest-label node of the universal tree. BTime(1) = 0. It runs without
// materializing any tree.
func (b *Builder) BTime(p int) logp.Time {
	b.checkP(p)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(int64(p))
	i := sort.Search(len(b.pts), func(i int) bool { return b.pts[i].n >= int64(p) })
	return b.pts[i].label
}

// NodeInfo describes one node of ß(p) by rank — the node's index in
// core.OptimalTree(m, p), i.e. its position in the lexicographic
// (label, parent rank, child index) order.
type NodeInfo struct {
	Rank     int
	Label    logp.Time // the processor's availability time (its delay)
	Parent   int       // parent rank; -1 for the root
	SendAt   logp.Time // time the parent starts the send feeding this node (0 for the root)
	ChildIdx int       // position among the parent's children (0 for the root)
	Children []int     // child ranks within ß(p), in send order
}

// Node answers a per-rank query against ß(p) in O(log P) plus O(#children):
// the rank's label, its parent rank and child position, and its children's
// ranks, all without materializing the tree. rank must be in [0, p).
func (b *Builder) Node(p, rank int) NodeInfo {
	b.checkP(p)
	if rank < 0 || rank >= p {
		panic(fmt.Sprintf("logtime: rank %d out of range for P=%d", rank, p))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(int64(p))
	info := NodeInfo{Rank: rank, Parent: -1}
	// Label and position within the label group.
	pi := sort.Search(len(b.pts), func(i int) bool { return b.pts[i].n >= int64(rank)+1 })
	t := b.pts[pi].label
	pos := int64(rank) - b.prevN(pi)
	info.Label = t
	if rank > 0 {
		// The group at label t is ordered by parent rank; its pos-th member's
		// parent is the pos-th node (by rank) of residue class c with label
		// <= t - d.
		c := mod(t-b.d, b.stride)
		idxs := b.classes[c]
		lo, hi := 0, len(idxs)
		for lo < hi {
			mid := (lo + hi) / 2
			if b.pts[idxs[mid]].r >= pos+1 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		pj := int(idxs[lo])
		tp := b.pts[pj].label
		j := pos - (b.pts[pj].r - b.pts[pj].g)
		info.Parent = int(b.prevN(pj) + j)
		info.ChildIdx = int((t - tp - b.d) / b.stride)
		info.SendAt = t - b.d
	}
	// Children: the i-th child sits at label t + d + i*stride; its group
	// position there — the count of same-class nodes ranked before this one —
	// is base + pos, constant in i. Membership in ß(p) is monotone in i, so
	// stop at the first child whose rank reaches p.
	base := b.pts[pi].r - b.pts[pi].g
	childPos := base + pos
	for i := 0; ; i++ {
		tc := t + b.d + logp.Time(i)*b.stride
		cj := b.pointAt(tc)
		if cj < 0 {
			break // beyond B(p): every label <= B(p) is materialized
		}
		childRank := b.prevN(cj) + childPos
		if childRank >= int64(p) {
			break
		}
		info.Children = append(info.Children, int(childRank))
	}
	return info
}

// Tree materializes ß(p) in O(p): node for node — indices, parents, child
// order, labels — identical to core.OptimalTree(m, p), but with the heap
// search replaced by the counting tables. Each label group's members are
// matched, in rank order, with the class-c prefix of earlier nodes that
// parent them.
func (b *Builder) Tree(p int) *core.Tree {
	b.checkP(p)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(int64(p))
	t := &core.Tree{M: b.M, Nodes: make([]core.Node, 0, p)}
	t.Nodes = append(t.Nodes, core.Node{Label: 0, Parent: -1})
	// classNodes[c] lists the ranks of built nodes with label ≡ c (mod
	// stride), in rank order. The group at label τ consumes the first G(τ)
	// entries of class (τ-d) mod stride as parents, in order.
	classNodes := make(map[logp.Time][]int32)
	classNodes[mod(0, b.stride)] = append(classNodes[mod(0, b.stride)], 0)
	built := 1
	for pi := 1; built < p && pi < len(b.pts); pi++ {
		pt := b.pts[pi]
		c := mod(pt.label-b.d, b.stride)
		take := pt.g
		if left := int64(p - built); take > left {
			take = left
		}
		parents := classNodes[c]
		first := built
		for j := int64(0); j < take; j++ {
			parent := int(parents[j])
			idx := built
			t.Nodes = append(t.Nodes, core.Node{Label: pt.label, Parent: parent})
			t.Nodes[parent].Children = append(t.Nodes[parent].Children, idx)
			built++
		}
		c2 := mod(pt.label, b.stride)
		for idx := first; idx < built; idx++ {
			classNodes[c2] = append(classNodes[c2], int32(idx))
		}
	}
	return t
}

// builders caches one Builder per machine shape (L, o, g): the counting
// tables are independent of P, so every query against the same shape shares
// the same lazily grown tables.
var builders sync.Map // key shapeKey -> *Builder

type shapeKey struct{ l, o, g logp.Time }

// For returns the shared builder for m's shape, creating it on first use.
// The machine must be valid (it panics otherwise, like core.OptimalTree).
func For(m logp.Machine) *Builder {
	k := shapeKey{m.L, m.O, m.G}
	if b, ok := builders.Load(k); ok {
		mBuilderHits.Inc()
		return b.(*Builder)
	}
	b := MustBuilder(m)
	if prev, loaded := builders.LoadOrStore(k, b); loaded {
		mBuilderHits.Inc()
		return prev.(*Builder)
	}
	mBuilderMisses.Inc()
	return b
}

// Tree is the package-level core.TreeBuilder: ß(p) for m via the shared
// per-shape builder. It is interchangeable with core.OptimalTree. The shared
// builder carries the first machine seen for the shape, so the tree is
// restamped with the caller's machine (same L, o, g; possibly different P).
func Tree(m logp.Machine, p int) *core.Tree {
	t := For(m).Tree(p)
	t.M = m
	return t
}

// B returns the optimal single-item broadcast time B(p; L,o,g) without
// constructing a tree — the search-free equivalent of core.B.
func B(m logp.Machine, p int) logp.Time {
	return For(m).BTime(p)
}

// Node answers a per-rank query against ß(p) for m in O(log P).
func Node(m logp.Machine, p, rank int) NodeInfo {
	return For(m).Node(p, rank)
}
