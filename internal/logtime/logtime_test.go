package logtime

import (
	"reflect"
	"testing"

	"logpopt/internal/combine"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// shapes covers the paper's machines plus shapes that stress every branch of
// the counting tables: postal (d=l, stride=1), o > g (stride = o), g
// dividing d and not, and a huge-latency machine where the dense memo of
// core.Pt would be hopeless but small P keeps the search tree buildable.
var shapes = []logp.Machine{
	logp.MustNew(8, 6, 2, 4),  // Figure 1
	logp.MustNew(12, 7, 1, 3), // paper variant
	logp.MustNew(9, 1, 0, 1),  // minimal
	logp.MustNew(16, 2, 3, 2), // o > g: stride = o
	logp.MustNew(10, 5, 2, 9), // stride > d/2
	logp.Postal(16, 3),        // postal
	logp.Postal(64, 1),        // binomial regime
	logp.MustNew(11, 4, 1, 5), // d ≡ 1 (mod stride)
}

// ps biases toward the off-power-of-two counts the ISSUE calls out.
var ps = []int{1, 2, 3, 5, 7, 8, 15, 16, 63, 64, 65, 100, 1000}

func withP(m logp.Machine, p int) logp.Machine {
	m.P = p
	return m
}

// TestTreeMatchesOptimalTree is the core claim: the counting construction
// reproduces the heap search node for node — indices, parents, child order,
// labels — so the two constructors are interchangeable everywhere.
func TestTreeMatchesOptimalTree(t *testing.T) {
	for _, m := range shapes {
		b := MustBuilder(m)
		for _, p := range ps {
			want := core.OptimalTree(m, p)
			got := b.Tree(p)
			if !reflect.DeepEqual(got.Nodes, want.Nodes) {
				t.Fatalf("%v P=%d: logtime tree differs from search tree\nsearch:\n%s\nlogtime:\n%s",
					m, p, want, got)
			}
			if got.M != want.M {
				t.Fatalf("%v P=%d: machine mismatch", m, p)
			}
			if err := got.Validate(true); err != nil {
				t.Fatalf("%v P=%d: %v", m, p, err)
			}
		}
	}
}

func TestBTimeMatchesCoreB(t *testing.T) {
	for _, m := range shapes {
		b := MustBuilder(m)
		for _, p := range ps {
			if got, want := b.BTime(p), core.B(m, p); got != want {
				t.Fatalf("%v: BTime(%d) = %d, core.B = %d", m, p, got, want)
			}
		}
	}
}

func TestCountMatchesPt(t *testing.T) {
	for _, m := range shapes {
		b := MustBuilder(m)
		for tau := logp.Time(-1); tau <= 40; tau++ {
			if got, want := b.Count(tau, 1<<20), core.Pt(m, max(tau, 0), 1<<20); tau >= 0 && got != want {
				t.Fatalf("%v: Count(%d) = %d, core.Pt = %d", m, tau, got, want)
			} else if tau < 0 && b.Count(tau, 0) != 0 {
				t.Fatalf("%v: Count(%d) != 0", m, tau)
			}
		}
	}
}

// TestNodeMatchesTree checks the O(log P) per-rank answers against the
// materialized tree: label, parent, child position, send time, children.
func TestNodeMatchesTree(t *testing.T) {
	for _, m := range shapes {
		b := MustBuilder(m)
		stride := core.SendStride(m)
		for _, p := range ps {
			tr := b.Tree(p)
			for r := 0; r < p; r++ {
				ni := b.Node(p, r)
				nd := tr.Nodes[r]
				if ni.Label != nd.Label {
					t.Fatalf("%v P=%d rank %d: label %d, tree %d", m, p, r, ni.Label, nd.Label)
				}
				if ni.Parent != nd.Parent {
					t.Fatalf("%v P=%d rank %d: parent %d, tree %d", m, p, r, ni.Parent, nd.Parent)
				}
				if !reflect.DeepEqual(ni.Children, nd.Children) && !(len(ni.Children) == 0 && len(nd.Children) == 0) {
					t.Fatalf("%v P=%d rank %d: children %v, tree %v", m, p, r, ni.Children, nd.Children)
				}
				if r > 0 {
					wantIdx := -1
					for i, c := range tr.Nodes[nd.Parent].Children {
						if c == r {
							wantIdx = i
						}
					}
					if ni.ChildIdx != wantIdx {
						t.Fatalf("%v P=%d rank %d: childIdx %d, tree %d", m, p, r, ni.ChildIdx, wantIdx)
					}
					if want := tr.Nodes[nd.Parent].Label + logp.Time(wantIdx)*stride; ni.SendAt != want {
						t.Fatalf("%v P=%d rank %d: sendAt %d, want %d", m, p, r, ni.SendAt, want)
					}
				}
			}
		}
	}
}

// TestHugeParameters exercises the sparse point tables where the search
// constructor still works but a dense time-indexed memo (core.Pt's strategy)
// would need terabytes: L around 2^31 and beyond-2^31 event times.
func TestHugeParameters(t *testing.T) {
	m := logp.MustNew(1024, 1<<31, 3, 5)
	b := MustBuilder(m)
	want := core.OptimalTree(m, m.P)
	got := b.Tree(m.P)
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Fatal("huge-L tree differs from search tree")
	}
	if bt := b.BTime(m.P); bt != want.MaxLabel() {
		t.Fatalf("BTime = %d, want %d", bt, want.MaxLabel())
	}
	if bt := b.BTime(m.P); bt < 1<<31 {
		t.Fatalf("BTime = %d does not exceed 2^31", bt)
	}
	// Per-rank queries at a P far past anything a tree could materialize
	// cheaply still answer instantly and stay self-consistent.
	big := logp.MustNew(1<<40, 6, 2, 4)
	bb := MustBuilder(big)
	r := 1 << 39
	ni := bb.Node(1<<40, r)
	par := bb.Node(1<<40, ni.Parent)
	found := false
	for _, c := range par.Children {
		if c == r {
			found = true
		}
	}
	if !found {
		t.Fatalf("rank %d missing from its parent %d's children %v", r, ni.Parent, par.Children)
	}
	if want := par.Label + logp.Time(ni.ChildIdx)*core.SendStride(big) + big.D(); ni.Label != want {
		t.Fatalf("rank %d label %d, eager label %d", r, ni.Label, want)
	}
}

func TestBroadcastScheduleIdentical(t *testing.T) {
	for _, m := range shapes {
		want := core.BroadcastSchedule(m, 0)
		got := BroadcastSchedule(m, 0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: broadcast schedules differ", m)
		}
	}
}

func TestReduceScanIdentical(t *testing.T) {
	for _, m := range shapes {
		for _, p := range []int{1, 2, 5, m.P} {
			if !reflect.DeepEqual(ReduceSchedule(m, p), combine.ReduceSchedule(m, p)) {
				t.Fatalf("%v P=%d: reduce schedules differ", m, p)
			}
			if !reflect.DeepEqual(ScanSchedule(m, p), combine.ScanSchedule(m, p)) {
				t.Fatalf("%v P=%d: scan schedules differ", m, p)
			}
		}
	}
}

func TestSummationIdentical(t *testing.T) {
	for _, m := range shapes {
		if summation.Validate(m) != nil {
			continue
		}
		for tt := logp.Time(0); tt <= 40; tt++ {
			wantN, _ := summation.Capacity(m, tt)
			if gotN := SummationCapacity(m, tt); gotN != wantN {
				t.Fatalf("%v t=%d: capacity %d, summation.Capacity %d", m, tt, gotN, wantN)
			}
			want, err := summation.Build(m, tt)
			if err != nil {
				t.Fatalf("%v t=%d: %v", m, tt, err)
			}
			got, err := SummationBuild(m, tt)
			if err != nil {
				t.Fatalf("%v t=%d: %v", m, tt, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v t=%d: summation plans differ", m, tt)
			}
			// Per-rank answers against the built plan.
			for r := 0; r < want.Tree.P(); r++ {
				sn := SummationNode(m, tt, r)
				if sn.SendAt != want.SendAt[r] {
					t.Fatalf("%v t=%d rank %d: sendAt %d, plan %d", m, tt, r, sn.SendAt, want.SendAt[r])
				}
				if sn.Locals != want.Locals[r] {
					t.Fatalf("%v t=%d rank %d: locals %d, plan %d", m, tt, r, sn.Locals, want.Locals[r])
				}
				if sn.Parent != want.Tree.Nodes[r].Parent {
					t.Fatalf("%v t=%d rank %d: parent %d, plan %d", m, tt, r, sn.Parent, want.Tree.Nodes[r].Parent)
				}
				var arrives []logp.Time
				var folds []int
				for _, op := range want.Ops[r] {
					if op.Kind == summation.OpRecvFold {
						arrives = append(arrives, op.At)
						folds = append(folds, op.Child)
					}
				}
				// Plan ops are time-sorted (latest child arrives first was
				// built in child order then sorted); compare as sets by
				// sorting both the same way.
				if len(folds) != len(sn.Folds) {
					t.Fatalf("%v t=%d rank %d: %d folds, plan %d", m, tt, r, len(sn.Folds), len(folds))
				}
				for i := range folds {
					ok := false
					for j := range sn.Folds {
						if sn.Folds[j] == folds[i] && sn.Arrive[j] == arrives[i] {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("%v t=%d rank %d: fold of child %d at %d missing from %v/%v",
							m, tt, r, folds[i], arrives[i], sn.Folds, sn.Arrive)
					}
				}
			}
		}
		if n := int64(50); SummationTimeFor(m, n) != summation.TimeFor(m, n) {
			t.Fatalf("%v: TimeFor(50) mismatch", m)
		}
	}
}

// TestDegenerate pins the P=1 and P=2 contract for the new constructor:
// empty schedule with finish 0, and a single send/recv finishing at o+L+o.
func TestDegenerate(t *testing.T) {
	for _, m := range shapes {
		s1 := BroadcastSchedule(withP(m, 1), 0)
		if len(s1.Events) != 0 || s1.Makespan() != 0 {
			t.Fatalf("%v P=1: %d events, makespan %d", m, len(s1.Events), s1.Makespan())
		}
		s2 := BroadcastSchedule(withP(m, 2), 0)
		if len(s2.Events) != 2 {
			t.Fatalf("%v P=2: %d events", m, len(s2.Events))
		}
		if got, want := B(m, 2), m.L+2*m.O; got != want {
			t.Fatalf("%v: B(2) = %d, want o+L+o = %d", m, got, want)
		}
		if fin := lastAvail(s2); fin != m.L+2*m.O {
			t.Fatalf("%v P=2: finish %d, want %d", m, fin, m.L+2*m.O)
		}
	}
}

func TestSelect(t *testing.T) {
	if _, name, _ := Select("auto", DefaultThreshold); name != "logtime" {
		t.Fatalf("auto at threshold picked %s", name)
	}
	if _, name, _ := Select("auto", DefaultThreshold-1); name != "search" {
		t.Fatalf("auto below threshold picked %s", name)
	}
	if _, name, _ := Select("logtime", 2); name != "logtime" {
		t.Fatalf("forced logtime picked %s", name)
	}
	if _, name, _ := Select("search", 1<<20); name != "search" {
		t.Fatalf("forced search picked %s", name)
	}
	if _, _, err := Select("bogus", 8); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// lastAvail is the broadcast finish: the latest reception + o.
func lastAvail(s *schedule.Schedule) logp.Time {
	var mx logp.Time
	for _, ev := range s.Events {
		if ev.Op == schedule.OpRecv && ev.Time+s.M.O > mx {
			mx = ev.Time + s.M.O
		}
	}
	return mx
}
