package logtime

import (
	"fmt"

	"logpopt/internal/combine"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// BroadcastSchedule returns the optimal single-item broadcast schedule for
// the machine via the search-free constructor — event for event identical to
// core.BroadcastSchedule.
func BroadcastSchedule(m logp.Machine, item int) *schedule.Schedule {
	s, err := core.TreeSchedule(Tree(m, m.P), item, nil, 0)
	if err != nil {
		panic(err) // identity assignment can't mismatch
	}
	return s
}

// ReduceSchedule returns the all-to-one reduction (reversed optimal
// broadcast tree) via the search-free constructor.
func ReduceSchedule(m logp.Machine, p int) *schedule.Schedule {
	return combine.ReduceScheduleWith(m, p, Tree)
}

// ScanSchedule returns the two-sweep prefix scan via the search-free
// constructor.
func ScanSchedule(m logp.Machine, p int) *schedule.Schedule {
	return combine.ScanScheduleWith(m, p, Tree)
}

// SummationBuild constructs the optimal summation plan for deadline t via
// the search-free constructor — identical to summation.Build's plan.
func SummationBuild(m logp.Machine, t logp.Time) (*summation.Plan, error) {
	return summation.BuildWith(m, t, Tree)
}

// SummationCapacity returns Lemma 5.1's n(t) — the operand capacity of the
// machine at deadline t — computed in closed form from the lazy machine's
// counting tables, with no tree built at all: the included nodes' marginal
// contributions Σ (t - label - o) are summed per label group.
func SummationCapacity(m logp.Machine, t logp.Time) int64 {
	if err := summation.Validate(m); err != nil {
		panic(err)
	}
	if t < 0 {
		return 0
	}
	maxLabel := t - m.O - 1
	if maxLabel < 0 {
		return int64(t) + 1 // the root alone, folding one operand per cycle
	}
	b := For(summation.Lazy(m))
	p := b.Count(maxLabel, int64(m.P))
	if p > int64(m.P) {
		p = int64(m.P)
	}
	if p < 1 {
		p = 1
	}
	n := int64(m.O) + 1
	b.mu.Lock()
	remaining := p
	for pi := 0; pi < len(b.pts) && remaining > 0; pi++ {
		pt := b.pts[pi]
		if pt.label > maxLabel {
			break
		}
		cnt := pt.g
		if cnt > remaining {
			cnt = remaining
		}
		n += cnt * int64(t-pt.label-m.O)
		remaining -= cnt
	}
	b.mu.Unlock()
	if n < int64(t)+1 && p == 1 {
		n = int64(t) + 1
	}
	return n
}

// SummationTimeFor returns the minimum deadline t with capacity >= n, like
// summation.TimeFor but through the closed-form capacity; n >= 1.
func SummationTimeFor(m logp.Machine, n int64) logp.Time {
	if n < 1 {
		panic(fmt.Sprintf("logtime: SummationTimeFor requires n >= 1, got %d", n))
	}
	lo, hi := logp.Time(0), logp.Time(n-1)
	for lo < hi {
		mid := (lo + hi) / 2
		if SummationCapacity(m, mid) >= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// SumNode describes one processor's role in the optimal summation plan for
// deadline t, answerable per rank in O(log P) without building the plan:
// when it sends its partial sum, to whom, which children's partial sums it
// folds (arrival times ascending in child order reversed — child i's fold
// completes at SendAt - i*stride), and how many local operands it folds in
// its remaining cycles.
type SumNode struct {
	Rank   int
	SendAt logp.Time   // partial-sum send time T - label (fictitious for the root: T)
	Parent int         // parent rank; -1 for the root
	Arrive []logp.Time // per child (in tree child order): message arrival time
	Folds  []int       // per child: the child's rank
	Locals int64       // local operands folded (including the free first operand)
}

// SummationNode answers the per-rank summation query for deadline t. The
// plan it describes is exactly summation.Build's: rank r of the lazy
// machine's ß(p), where p is the admitted node count for deadline t.
func SummationNode(m logp.Machine, t logp.Time, rank int) SumNode {
	if err := summation.Validate(m); err != nil {
		panic(err)
	}
	if t < 0 {
		panic(fmt.Sprintf("logtime: negative deadline %d", t))
	}
	lm := summation.Lazy(m)
	b := For(lm)
	p := 1
	if maxLabel := t - m.O - 1; maxLabel >= 0 {
		if c := b.Count(maxLabel, int64(m.P)); c > 1 {
			p = int(c)
			if p > m.P {
				p = m.P
			}
		}
	}
	ni := b.Node(p, rank)
	sn := SumNode{Rank: rank, SendAt: t - ni.Label, Parent: ni.Parent}
	stride := core.SendStride(lm)
	busy := int64(0)
	for i, c := range ni.Children {
		arrive := sn.SendAt - logp.Time(i)*stride - m.O - 1
		sn.Arrive = append(sn.Arrive, arrive)
		sn.Folds = append(sn.Folds, c)
		busy += int64(m.O) + 1
	}
	// Local adds fill every cycle of [0, SendAt) outside the disjoint
	// reception windows (stride >= o+1 keeps them disjoint and above 0).
	sn.Locals = 1 + int64(sn.SendAt) - busy
	return sn
}

// Constructor-selection: the CLIs construct through the search-free builder
// at or above DefaultThreshold processors and through the heap search below
// it, unless forced. Both produce the identical tree; the threshold only
// decides which does the work.
const DefaultThreshold = 512

// Select resolves a -constructor flag value ("auto", "search", "logtime")
// to a tree builder, returning the resolved name for display.
func Select(mode string, p int) (core.TreeBuilder, string, error) {
	switch mode {
	case "auto", "":
		if p >= DefaultThreshold {
			return Tree, "logtime", nil
		}
		return core.OptimalTree, "search", nil
	case "search":
		return core.OptimalTree, "search", nil
	case "logtime":
		return Tree, "logtime", nil
	default:
		return nil, "", fmt.Errorf("unknown constructor %q (want auto, search, or logtime)", mode)
	}
}
