// Package causal reconstructs the causal structure of an executed LogP
// schedule and explains its finish time. Every event becomes a node of a
// DAG whose edges are the machine constraints that forced the event's start
// time:
//
//   - a latency edge from each send to its matching receive (the receive
//     cannot start before send + o + L, so the item is available L + 2o
//     after the send began);
//   - a gap edge between successive sends (or successive receives) at the
//     same port (spacing at least g);
//   - a busy edge from any positive-duration predecessor at the same
//     processor (overhead and compute intervals serialize a processor);
//   - an availability edge from the receive (or the origin injection) that
//     first made a sent item available at its sender.
//
// Walking back from the event that realizes the finish time, always through
// the *binding* (latest-bound) constraint, yields the critical path: the
// chain of events that determines when the run completes. Each traversed
// edge contributes its elapsed cycles to exactly one component — latency L,
// overhead o, gap g, or compute — and any cycles an event started later
// than every one of its constraints demanded land in the wait component, so
//
//	Finish = Latency + Overhead + Gap + Compute + Origin + Wait
//
// holds as an identity (the fuzz target FuzzCausal exercises it). Comparing
// the achieved breakdown against a reference breakdown of a closed-form
// lower bound (Theorem 2.1 broadcast, Theorem 3.1/3.6 k-item, Section 4.1
// all-to-all, Section 5 summation) attributes the gap above the bound to
// the constraint class that ate the slack.
//
// A backward pass over the same DAG additionally computes per-event slack:
// how far each event could slip without moving the finish time. Events on
// the critical path of a tight schedule have slack zero.
package causal

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// EdgeKind classifies the constraint an edge of the causal DAG models.
type EdgeKind int

// Edge kinds. KindStart marks a path root with no constraint at all (its
// whole start time is wait); KindOrigin marks a root pinned by an item
// injection at a given time.
const (
	KindStart EdgeKind = iota
	KindOrigin
	KindLatency // recv after matching send: bound = send.start + o + L
	KindGap     // same-port same-op spacing: bound = prev.start + g
	KindBusy    // processor serialization: bound = prev.start + prev.dur
	KindAvail   // item availability at a sender: bound = recv.start + o
	KindCompute // serialization behind a compute interval
)

func (k EdgeKind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindOrigin:
		return "origin"
	case KindLatency:
		return "latency"
	case KindGap:
		return "gap"
	case KindBusy:
		return "busy"
	case KindAvail:
		return "avail"
	case KindCompute:
		return "compute"
	default:
		return fmt.Sprintf("edge(%d)", int(k))
	}
}

// Breakdown decomposes a stretch of cycles into the LogP constraint classes
// that account for them.
type Breakdown struct {
	Latency  logp.Time // cycles in flight (L per traversed message)
	Overhead logp.Time // send/receive overhead cycles (o per port action)
	Gap      logp.Time // port spacing cycles (g per binding gap edge)
	Compute  logp.Time // local computation cycles
	Origin   logp.Time // time before the path's root item was injected
	Wait     logp.Time // cycles no constraint demanded (idle / buffer wait)
}

// Total returns the sum of all components.
func (b Breakdown) Total() logp.Time {
	return b.Latency + b.Overhead + b.Gap + b.Compute + b.Origin + b.Wait
}

// Sub returns the componentwise difference a - r.
func (b Breakdown) Sub(r Breakdown) Breakdown {
	return Breakdown{
		Latency:  b.Latency - r.Latency,
		Overhead: b.Overhead - r.Overhead,
		Gap:      b.Gap - r.Gap,
		Compute:  b.Compute - r.Compute,
		Origin:   b.Origin - r.Origin,
		Wait:     b.Wait - r.Wait,
	}
}

// Scaled returns a breakdown with the same component proportions as b whose
// components sum exactly to total (largest-remainder rounding, deterministic
// tie-break by component order). It is the generic reference for SetBound
// when no closed-form decomposition of a bound is known: the attribution
// then charges each constraint class in proportion to its achieved share.
// Scaling to b's own total returns b unchanged, so a schedule that meets its
// bound exactly always attributes a zero gap.
func (b Breakdown) Scaled(total logp.Time) Breakdown {
	t := b.Total()
	if t == total {
		return b
	}
	if t <= 0 || total <= 0 {
		return Breakdown{Latency: total}
	}
	comps := [6]logp.Time{b.Latency, b.Overhead, b.Gap, b.Compute, b.Origin, b.Wait}
	var out [6]logp.Time
	var sum logp.Time
	idx := [6]int{0, 1, 2, 3, 4, 5}
	rems := [6]logp.Time{}
	for i, c := range comps {
		// c*total overflows int64 once event times pass ~2^31 (huge-L
		// machines put both c and total there), so the product is carried
		// in 128 bits. c <= t keeps the quotient below total and the
		// remainder below t, so both always fit back into int64.
		hi, lo := bits.Mul64(uint64(c), uint64(total))
		q, r := bits.Div64(hi, lo, uint64(t))
		out[i] = logp.Time(q)
		sum += out[i]
		rems[i] = logp.Time(r)
	}
	sort.SliceStable(idx[:], func(x, y int) bool { return rems[idx[x]] > rems[idx[y]] })
	for k := logp.Time(0); k < total-sum; k++ {
		out[idx[int(k)%6]]++
	}
	return Breakdown{
		Latency: out[0], Overhead: out[1], Gap: out[2],
		Compute: out[3], Origin: out[4], Wait: out[5],
	}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("L=%d o=%d g=%d compute=%d origin=%d wait=%d (total %d)",
		b.Latency, b.Overhead, b.Gap, b.Compute, b.Origin, b.Wait, b.Total())
}

// Step is one node of the critical path.
type Step struct {
	Event schedule.Event
	Index int       // index into the analyzed schedule's Events slice
	Kind  EdgeKind  // the binding constraint on this event's start
	Slack logp.Time // start minus the binding bound (wait absorbed here)
}

// Report is the result of analyzing one executed schedule.
type Report struct {
	Finish   logp.Time // completion: last availability or compute end
	Path     []Step    // critical path, origin side first
	Achieved Breakdown // decomposition of Finish along Path (identity)

	// OpSlack[i] is how many cycles event i of the analyzed schedule could
	// start later without moving Finish (0 for tight critical events).
	OpSlack []logp.Time

	// Bound / Gap / Attribution are populated by SetBound.
	Bound       logp.Time // closed-form lower bound; -1 until SetBound
	Gap         logp.Time // Finish - Bound
	Attribution Breakdown // Achieved - reference; components sum to Gap
}

// SetBound records the closed-form lower bound and its reference breakdown
// and attributes the gap: Attribution = Achieved - ref componentwise, so the
// components always sum to Finish - bound. ref.Total() must equal bound;
// pass a zero Breakdown with bound 0 when no closed form is known (the gap
// then equals Finish and the attribution is the achieved breakdown itself).
func (r *Report) SetBound(bound logp.Time, ref Breakdown) error {
	if ref.Total() != bound {
		return fmt.Errorf("causal: reference breakdown totals %d, bound is %d", ref.Total(), bound)
	}
	r.Bound = bound
	r.Gap = r.Finish - bound
	r.Attribution = r.Achieved.Sub(ref)
	return nil
}

// CriticalSet returns the set of event indices on the critical path.
func (r *Report) CriticalSet() map[int]bool {
	set := make(map[int]bool, len(r.Path))
	for _, st := range r.Path {
		set[st.Index] = true
	}
	return set
}

// CriticalProcs returns the processors the critical path touches: each
// step's acting processor plus the peer of any send or reception on the
// path. Trace sampling uses it as the always-keep thread set, so a bounded
// trace still shows the full chain that set the finish time.
func (r *Report) CriticalProcs() map[int]bool {
	set := make(map[int]bool, len(r.Path)+1)
	for _, st := range r.Path {
		set[st.Event.Proc] = true
		if st.Event.Peer >= 0 {
			set[st.Event.Peer] = true
		}
	}
	return set
}

// Signature renders the critical path as one canonical line, usable for
// equality checks across backends (the conformance harness diffs it between
// the simulator's and the runtime's executed traces).
func (r *Report) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "finish=%d", r.Finish)
	for _, st := range r.Path {
		e := st.Event
		fmt.Fprintf(&b, " %s:P%d@%d/%s/i%d", st.Kind, e.Proc, e.Time, e.Op, e.Item)
	}
	return b.String()
}

// String renders the report as the -explain listing: the path, one event
// per line with its binding constraint and slack, then the breakdown and —
// when SetBound was called — the gap attribution.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (%d steps, finish %d):\n", len(r.Path), r.Finish)
	for _, st := range r.Path {
		e := st.Event
		var what string
		switch e.Op {
		case schedule.OpSend:
			what = fmt.Sprintf("send item %d -> P%d", e.Item, e.Peer)
		case schedule.OpRecv:
			what = fmt.Sprintf("recv item %d <- P%d", e.Item, e.Peer)
		case schedule.OpCompute:
			what = fmt.Sprintf("compute tag %d (%d cycles)", e.Item, e.Dur)
		}
		fmt.Fprintf(&b, "  t=%-5d P%-3d %-24s via %s", e.Time, e.Proc, what, st.Kind)
		if st.Slack != 0 {
			fmt.Fprintf(&b, " (+%d wait)", st.Slack)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "breakdown: %s\n", r.Achieved)
	if r.Bound >= 0 {
		fmt.Fprintf(&b, "bound %d, gap %d", r.Bound, r.Gap)
		if r.Gap != 0 {
			fmt.Fprintf(&b, "; attribution: %s", r.Attribution)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// constraint is one incoming edge of a node: its start must be >= bound.
type constraint struct {
	from  int // predecessor node index; -1 for origin/start
	kind  EdgeKind
	bound logp.Time
}

// node is one event of the analyzed schedule.
type node struct {
	ev    schedule.Event
	input int // index into s.Events
	start logp.Time
	dur   logp.Time // o for send/recv, Dur for compute
	cons  []constraint
}

func (n *node) end() logp.Time { return n.start + n.dur }

// analyzer holds the DAG under construction.
type analyzer struct {
	m     logp.Machine
	nodes []node
	order []int // node ids in deterministic (time, proc, op, item, peer) order
}

// Analyze builds the causal DAG of s (with the given item origins) and
// extracts the critical path, the achieved breakdown, and per-event slack.
// The input is treated as an executed trace: receive events are taken at
// face value (buffered receptions later than arrival are legal and show up
// as wait). Analysis is deterministic in the event multiset — the event
// order of s is irrelevant — so two backends that executed the same events
// produce identical reports. Report.Bound is -1 until SetBound is called.
func Analyze(s *schedule.Schedule, origins map[int]schedule.Origin) *Report {
	a := &analyzer{m: s.M}
	a.build(s, origins)
	rep := &Report{Bound: -1}
	finNode, finTime := a.finish(origins)
	rep.Finish = finTime
	rep.Path, rep.Achieved = a.walk(finNode, finTime)
	rep.OpSlack = a.slacks(finTime)

	// Map per-node slack back to input event order.
	slackIn := make([]logp.Time, len(s.Events))
	for i := range a.nodes {
		slackIn[a.nodes[i].input] = rep.OpSlack[i]
	}
	rep.OpSlack = slackIn
	for i := range rep.Path {
		rep.Path[i].Index = a.nodes[rep.Path[i].Index].input
	}
	return rep
}

// build creates the nodes in deterministic order and attaches every
// constraint edge.
func (a *analyzer) build(s *schedule.Schedule, origins map[int]schedule.Origin) {
	m := a.m
	a.nodes = make([]node, 0, len(s.Events))
	for i, ev := range s.Events {
		dur := m.O
		if ev.Op == schedule.OpCompute {
			dur = ev.Dur
		}
		a.nodes = append(a.nodes, node{ev: ev, input: i, start: ev.Time, dur: dur})
	}
	order := make([]int, len(a.nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		p, q := &a.nodes[order[x]], &a.nodes[order[y]]
		if p.ev.Time != q.ev.Time {
			return p.ev.Time < q.ev.Time
		}
		if p.ev.Proc != q.ev.Proc {
			return p.ev.Proc < q.ev.Proc
		}
		if p.ev.Op != q.ev.Op {
			return p.ev.Op < q.ev.Op
		}
		if p.ev.Item != q.ev.Item {
			return p.ev.Item < q.ev.Item
		}
		return p.ev.Peer < q.ev.Peer
	})
	a.order = order

	// Per-processor serialization (busy) and same-op spacing (gap) edges.
	lastAt := make(map[int]int)            // proc -> last node in order
	lastOp := make(map[[2]int]int)         // (proc, op) -> last node
	type mkey struct{ from, to, item int } // message identity
	sendsBy := make(map[mkey][]int)        // sends per identity, time order
	recvsAt := make(map[[2]int][]int)      // (proc, item) -> recvs, time order
	for _, id := range order {
		n := &a.nodes[id]
		p := n.ev.Proc
		if prev, ok := lastAt[p]; ok {
			pn := &a.nodes[prev]
			if pn.dur > 0 { // zero-duration events impose no busy constraint
				kind := KindBusy
				if pn.ev.Op == schedule.OpCompute {
					kind = KindCompute
				}
				n.cons = append(n.cons, constraint{from: prev, kind: kind, bound: pn.end()})
			}
		}
		lastAt[p] = id
		if n.ev.Op != schedule.OpCompute {
			k := [2]int{p, int(n.ev.Op)}
			if prev, ok := lastOp[k]; ok {
				n.cons = append(n.cons, constraint{
					from: prev, kind: KindGap, bound: a.nodes[prev].start + m.G,
				})
			}
			lastOp[k] = id
		}
		switch n.ev.Op {
		case schedule.OpSend:
			sendsBy[mkey{p, n.ev.Peer, n.ev.Item}] = append(sendsBy[mkey{p, n.ev.Peer, n.ev.Item}], id)
		case schedule.OpRecv:
			recvsAt[[2]int{p, n.ev.Item}] = append(recvsAt[[2]int{p, n.ev.Item}], id)
		}
	}

	// Latency edges: match each recv to an unused send of the same message
	// identity whose arrival is at or before the reception (buffered
	// receptions may start late), preferring the latest such arrival; an
	// exact-arrival strict trace matches one-to-one.
	used := make(map[int]bool)
	for _, id := range order {
		n := &a.nodes[id]
		if n.ev.Op != schedule.OpRecv {
			continue
		}
		cands := sendsBy[mkey{n.ev.Peer, n.ev.Proc, n.ev.Item}]
		best := -1
		for _, sid := range cands {
			if used[sid] {
				continue
			}
			if arr := a.nodes[sid].start + m.O + m.L; arr <= n.start {
				best = sid // candidates are in time order; keep the latest
			}
		}
		if best < 0 { // violating trace: fall back to the earliest unused send
			for _, sid := range cands {
				if !used[sid] {
					best = sid
					break
				}
			}
		}
		if best >= 0 {
			used[best] = true
			n.cons = append(n.cons, constraint{
				from: best, kind: KindLatency, bound: a.nodes[best].start + m.O + m.L,
			})
		}
	}

	// Availability edges: each send needs its item; the provider is whatever
	// made it available earliest at the sender — the item's origin there, or
	// the sender's first reception of it.
	for _, id := range order {
		n := &a.nodes[id]
		if n.ev.Op != schedule.OpSend {
			continue
		}
		provider, kind, at := -1, EdgeKind(-1), logp.Time(0)
		if og, ok := origins[n.ev.Item]; ok && og.Proc == n.ev.Proc {
			provider, kind, at = -1, KindOrigin, og.Time
		}
		if rs := recvsAt[[2]int{n.ev.Proc, n.ev.Item}]; len(rs) > 0 {
			first := rs[0] // earliest reception = earliest availability
			if avail := a.nodes[first].end(); kind < 0 || avail < at {
				provider, kind, at = first, KindAvail, avail
			}
		}
		if kind >= 0 {
			a.nodes[id].cons = append(a.nodes[id].cons, constraint{from: provider, kind: kind, bound: at})
		}
	}
}

// finish determines the run's completion time — the latest item availability
// across all (processor, item) pairs, or the end of the last compute if that
// is later — and the node that realizes it (-1 when an origin injection or
// an empty schedule realizes it).
func (a *analyzer) finish(origins map[int]schedule.Origin) (int, logp.Time) {
	type pi struct{ proc, item int }
	avail := make(map[pi]logp.Time)
	by := make(map[pi]int) // realizing recv node, -1 for origin
	for item, og := range origins {
		k := pi{og.Proc, item}
		if t, ok := avail[k]; !ok || og.Time < t {
			avail[k] = og.Time
			by[k] = -1
		}
	}
	for _, id := range a.order {
		n := &a.nodes[id]
		if n.ev.Op != schedule.OpRecv {
			continue
		}
		k := pi{n.ev.Proc, n.ev.Item}
		at := n.end()
		if t, ok := avail[k]; !ok || at < t {
			avail[k] = at
			by[k] = id
		}
	}
	bestNode, bestT, havePI := -1, logp.Time(0), false
	var bestK pi
	for k, t := range avail {
		if !havePI || t > bestT || (t == bestT && (k.proc < bestK.proc || (k.proc == bestK.proc && k.item < bestK.item))) {
			havePI, bestT, bestK, bestNode = true, t, k, by[k]
		}
	}
	for _, id := range a.order {
		n := &a.nodes[id]
		if n.ev.Op == schedule.OpCompute && (n.end() > bestT || !havePI) {
			havePI, bestT, bestNode = true, n.end(), id
		}
	}
	if !havePI {
		return -1, 0
	}
	return bestNode, bestT
}

// binding returns the constraint with the latest bound (ties broken by kind
// order, then predecessor index) and reports whether any constraint exists.
func (a *analyzer) binding(id int) (constraint, bool) {
	n := &a.nodes[id]
	if len(n.cons) == 0 {
		return constraint{}, false
	}
	best := n.cons[0]
	for _, c := range n.cons[1:] {
		if c.bound > best.bound ||
			(c.bound == best.bound && (c.kind > best.kind ||
				(c.kind == best.kind && c.from < best.from))) {
			best = c
		}
	}
	return best, true
}

// walk extracts the critical path ending at finNode and its breakdown. The
// decomposition telescopes exactly to finTime.
func (a *analyzer) walk(finNode int, finTime logp.Time) ([]Step, Breakdown) {
	var bd Breakdown
	if finNode < 0 {
		bd.Origin = finTime // an origin injection (or nothing) realizes the finish
		return nil, bd
	}
	fin := &a.nodes[finNode]
	switch fin.ev.Op {
	case schedule.OpCompute:
		bd.Compute += fin.dur
	default:
		bd.Overhead += fin.dur // the final reception's own overhead
	}
	var rev []Step
	id := finNode
	for {
		n := &a.nodes[id]
		c, ok := a.binding(id)
		if !ok {
			rev = append(rev, Step{Event: n.ev, Index: id, Kind: KindStart, Slack: n.start})
			bd.Wait += n.start
			break
		}
		rev = append(rev, Step{Event: n.ev, Index: id, Kind: c.kind, Slack: n.start - c.bound})
		bd.Wait += n.start - c.bound
		switch c.kind {
		case KindLatency:
			bd.Latency += a.m.L
			bd.Overhead += a.m.O
		case KindGap:
			bd.Gap += a.m.G
		case KindBusy, KindAvail:
			bd.Overhead += a.nodes[c.from].dur
		case KindCompute:
			bd.Compute += a.nodes[c.from].dur
		case KindOrigin:
			bd.Origin += c.bound
		}
		if c.from < 0 || c.kind == KindOrigin {
			break
		}
		id = c.from
	}
	path := make([]Step, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path, bd
}

// slacks runs the backward pass: for every node, the latest start that moves
// neither the finish time nor any successor past its own latest start. The
// returned slice is indexed by node id; negative slack marks a constraint
// the trace violated.
func (a *analyzer) slacks(finTime logp.Time) []logp.Time {
	latest := make([]logp.Time, len(a.nodes))
	for id := range a.nodes {
		latest[id] = finTime - a.nodes[id].dur
	}
	// Process in reverse causal order: descending start; among equal starts
	// sends first, so an o=0 availability edge (recv -> send at the same
	// instant) sees its successor's final value.
	order := make([]int, len(a.nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		p, q := &a.nodes[order[x]], &a.nodes[order[y]]
		if p.start != q.start {
			return p.start > q.start
		}
		if p.ev.Op != q.ev.Op {
			return p.ev.Op < q.ev.Op
		}
		return order[x] < order[y]
	})
	for _, id := range order {
		n := &a.nodes[id]
		for _, c := range n.cons {
			if c.from < 0 {
				continue
			}
			// The constraint is start(n) >= start(from) + delta, so from may
			// start no later than latest(n) - delta.
			delta := c.bound - a.nodes[c.from].start
			if lim := latest[id] - delta; lim < latest[c.from] {
				latest[c.from] = lim
			}
		}
	}
	out := make([]logp.Time, len(a.nodes))
	for id := range a.nodes {
		out[id] = latest[id] - a.nodes[id].start
	}
	return out
}
