package causal_test

import (
	"strings"
	"testing"

	"logpopt/internal/baseline"
	"logpopt/internal/conform"
	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// TestBroadcastFig1 checks the headline property on the paper's Figure 1
// machine: the critical path of the optimal broadcast schedule has length
// B(P) exactly, every step is tight, and the gap to the bound is zero.
func TestBroadcastFig1(t *testing.T) {
	m := logp.ProfilePaperFig1
	s := core.BroadcastSchedule(m, 0)
	rep := causal.Analyze(s, core.Origins(0))

	want := core.B(m, m.P)
	if rep.Finish != want {
		t.Fatalf("Finish = %d, want B(%d) = %d", rep.Finish, m.P, want)
	}
	if got := rep.Achieved.Total(); got != rep.Finish {
		t.Fatalf("breakdown totals %d, finish %d", got, rep.Finish)
	}
	if rep.Achieved.Wait != 0 {
		t.Errorf("optimal broadcast has wait %d on its critical path", rep.Achieved.Wait)
	}
	for _, st := range rep.Path {
		if st.Slack != 0 {
			t.Errorf("critical step %+v has slack %d", st.Event, st.Slack)
		}
		if rep.OpSlack[st.Index] != 0 {
			t.Errorf("critical event %d has backward slack %d", st.Index, rep.OpSlack[st.Index])
		}
	}
	if err := rep.SetBound(want, rep.Achieved); err != nil {
		t.Fatal(err)
	}
	if rep.Gap != 0 || rep.Attribution != (causal.Breakdown{}) {
		t.Errorf("gap %d attribution %+v, want zero", rep.Gap, rep.Attribution)
	}
	// The path must end in a reception and start at the source.
	if len(rep.Path) == 0 || rep.Path[len(rep.Path)-1].Event.Op != schedule.OpRecv {
		t.Fatalf("path does not end in a recv: %v", rep.Path)
	}
	if rep.Path[0].Event.Proc != 0 {
		t.Errorf("path root at P%d, want the source P0", rep.Path[0].Event.Proc)
	}
}

// TestContinuousFig2 checks the k-item schedule of Figure 2: finish at
// L + B(P-1) + k - 1 = 17 with a zero-wait critical path.
func TestContinuousFig2(t *testing.T) {
	const l, hor, k = 3, 7, 8
	inst, s, err := continuous.SolveAndSchedule(l, hor, k)
	if err != nil {
		t.Fatal(err)
	}
	rep := causal.Analyze(s, continuous.Origins(k))
	want := logp.Time(inst.Delay() + k - 1)
	if rep.Finish != want {
		t.Fatalf("Finish = %d, want %d", rep.Finish, want)
	}
	if got := rep.Achieved.Total(); got != rep.Finish {
		t.Fatalf("breakdown totals %d, finish %d", got, rep.Finish)
	}
}

// TestSummationFig6 checks that compute edges participate: the optimal
// summation plan for deadline 28 finishes exactly at 28 and its critical
// path carries a compute component.
func TestSummationFig6(t *testing.T) {
	m := logp.ProfilePaperFig6
	pl, err := summation.Build(m, 28)
	if err != nil {
		t.Fatal(err)
	}
	s := pl.Schedule()
	rep := causal.Analyze(s, conform.DerivedOrigins(s))
	if rep.Finish != 28 {
		t.Fatalf("Finish = %d, want the deadline 28", rep.Finish)
	}
	if got := rep.Achieved.Total(); got != rep.Finish {
		t.Fatalf("breakdown totals %d, finish %d", got, rep.Finish)
	}
	if rep.Achieved.Compute == 0 {
		t.Errorf("summation critical path has no compute component: %s", rep.Achieved)
	}
}

// TestBaselineAttribution analyzes the linear-chain broadcast against the
// optimal bound: the gap must be positive and the attribution components
// must sum to it, with the excess dominated by latency (every hop pays
// L + 2o in a chain).
func TestBaselineAttribution(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	tr := baseline.LinearTree(m, m.P)
	s, err := baseline.Schedule(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := causal.Analyze(s, core.Origins(0))
	if rep.Finish != baseline.TreeTime(tr) {
		t.Fatalf("Finish = %d, want tree time %d", rep.Finish, baseline.TreeTime(tr))
	}
	bound := core.B(m, m.P)
	ref := causal.Analyze(core.BroadcastSchedule(m, 0), core.Origins(0)).Achieved
	if err := rep.SetBound(bound, ref); err != nil {
		t.Fatal(err)
	}
	if rep.Gap != rep.Finish-bound || rep.Gap <= 0 {
		t.Fatalf("gap = %d, want positive %d", rep.Gap, rep.Finish-bound)
	}
	at := rep.Attribution
	if got := at.Latency + at.Overhead + at.Gap + at.Compute + at.Origin + at.Wait; got != rep.Gap {
		t.Fatalf("attribution sums to %d, gap is %d", got, rep.Gap)
	}
	if at.Latency <= 0 {
		t.Errorf("linear chain gap not latency-dominated: %s", at)
	}
}

// TestBufferedWait checks that a reception later than its arrival shows up
// as wait: one send at 0, arrival at o+L, reception recorded at o+L+5.
func TestBufferedWait(t *testing.T) {
	m := logp.MustNew(2, 4, 1, 2)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 7, 1)
	s.Recv(1, m.O+m.L+5, 7, 0)
	rep := causal.Analyze(s, map[int]schedule.Origin{7: {Proc: 0}})
	if rep.Achieved.Wait != 5 {
		t.Errorf("wait = %d, want the 5-cycle buffer delay", rep.Achieved.Wait)
	}
	if rep.Finish != m.O+m.L+5+m.O {
		t.Errorf("finish = %d", rep.Finish)
	}
	if got := rep.Achieved.Total(); got != rep.Finish {
		t.Fatalf("breakdown totals %d, finish %d", got, rep.Finish)
	}
}

// TestEmptyAndOriginOnly covers the degenerate inputs.
func TestEmptyAndOriginOnly(t *testing.T) {
	m := logp.MustNew(2, 1, 0, 1)
	rep := causal.Analyze(&schedule.Schedule{M: m}, nil)
	if rep.Finish != 0 || len(rep.Path) != 0 {
		t.Fatalf("empty schedule: finish %d path %v", rep.Finish, rep.Path)
	}
	rep = causal.Analyze(&schedule.Schedule{M: m}, map[int]schedule.Origin{0: {Proc: 1, Time: 5}})
	if rep.Finish != 5 || rep.Achieved.Origin != 5 {
		t.Fatalf("origin-only: finish %d breakdown %s", rep.Finish, rep.Achieved)
	}
}

// TestNonCriticalSlack: two independent chains, one short — the short one
// must have positive backward slack everywhere the long one has zero.
func TestNonCriticalSlack(t *testing.T) {
	m := logp.MustNew(4, 6, 1, 2)
	s := &schedule.Schedule{M: m}
	// Long chain: 0 -> 1 -> 2 (two hops).
	s.Send(0, 0, 0, 1)
	s.Recv(1, m.O+m.L, 0, 0)
	s.Send(1, m.O+m.L+m.O, 0, 2)
	s.Recv(2, 2*(m.O+m.L)+m.O, 0, 1)
	// Short chain: 0 -> 3 (one hop), started at the gap point.
	s.Send(0, m.G, 1, 3)
	s.Recv(3, m.G+m.O+m.L, 1, 0)
	og := map[int]schedule.Origin{0: {Proc: 0}, 1: {Proc: 0}}
	rep := causal.Analyze(s, og)
	wantFinish := 2*(m.O+m.L) + 2*m.O
	if rep.Finish != wantFinish {
		t.Fatalf("finish %d, want %d", rep.Finish, wantFinish)
	}
	// The short chain's recv (event index 5) must have positive slack.
	if rep.OpSlack[5] <= 0 {
		t.Errorf("non-critical recv slack = %d, want > 0", rep.OpSlack[5])
	}
	if !strings.Contains(rep.Signature(), "finish=") {
		t.Errorf("signature malformed: %q", rep.Signature())
	}
	if !strings.Contains(rep.String(), "critical path") {
		t.Errorf("String() malformed: %q", rep.String())
	}
}

// TestSetBoundRejectsMismatch: the reference breakdown must total the bound.
func TestSetBoundRejectsMismatch(t *testing.T) {
	m := logp.ProfilePaperFig1
	rep := causal.Analyze(core.BroadcastSchedule(m, 0), core.Origins(0))
	if err := rep.SetBound(10, causal.Breakdown{Latency: 3}); err == nil {
		t.Fatal("SetBound accepted a reference that does not total the bound")
	}
}
