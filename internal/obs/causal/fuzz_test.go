package causal_test

import (
	"testing"

	"logpopt/internal/conform"
	"logpopt/internal/obs/causal"
	"logpopt/internal/sim"
)

// FuzzCausal drives the analyzer with the conformance harness's seeded
// schedule generator: on every violation-free generated schedule (strict and
// buffered), the critical-path length must equal the simulator's reported
// finish time, the breakdown must telescope to it exactly, and the gap
// attribution must sum to the total gap for any bound.
func FuzzCausal(f *testing.F) {
	for seed := int64(0); seed < 50; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := conform.Generate(seed)
		for _, mode := range []sim.Mode{sim.Strict, sim.Buffered} {
			eng, rep := sim.Run(c.S, mode, c.Origins)
			if len(rep.Violations) != 0 {
				continue // the analyzer's contract covers valid executions
			}
			r := causal.Analyze(eng.Executed(), c.Origins)
			if r.Finish != rep.Finish {
				t.Fatalf("seed %d mode %v: critical-path finish %d, simulator finish %d",
					seed, mode, r.Finish, rep.Finish)
			}
			if got := r.Achieved.Total(); got != r.Finish {
				t.Fatalf("seed %d mode %v: breakdown totals %d, finish %d (%s)",
					seed, mode, got, r.Finish, r.Achieved)
			}
			for _, st := range r.Path {
				if st.Slack < 0 {
					t.Fatalf("seed %d mode %v: negative slack %d on clean case at %+v",
						seed, mode, st.Slack, st.Event)
				}
			}
			// Attribution sums to the gap for an arbitrary bound and
			// reference split.
			bound := r.Finish / 2
			if err := r.SetBound(bound, causal.Breakdown{Latency: bound}); err != nil {
				t.Fatal(err)
			}
			at := r.Attribution
			sum := at.Latency + at.Overhead + at.Gap + at.Compute + at.Origin + at.Wait
			if sum != r.Gap || r.Gap != r.Finish-bound {
				t.Fatalf("seed %d mode %v: attribution sums to %d, gap %d (finish %d bound %d)",
					seed, mode, sum, r.Gap, r.Finish, bound)
			}
			// And with the trivial zero bound the attribution is the
			// achieved breakdown itself.
			if err := r.SetBound(0, causal.Breakdown{}); err != nil {
				t.Fatal(err)
			}
			if r.Attribution != r.Achieved || r.Gap != r.Finish {
				t.Fatalf("seed %d mode %v: zero-bound attribution %+v != achieved %+v",
					seed, mode, r.Attribution, r.Achieved)
			}
		}
	})
}
