package causal

import (
	"testing"

	"logpopt/internal/logp"
)

// TestScaledHugeComponents is the regression test for the int64 overflow in
// Breakdown.Scaled: with component magnitudes past 2^31 (huge-L machines
// put critical-path components there) the c*total product exceeded int64
// and the quotients came out negative. The 128-bit carry keeps them exact.
func TestScaledHugeComponents(t *testing.T) {
	b := Breakdown{
		Latency:  3_000_000_001, // c*total overflows int64 pre-fix
		Overhead: 2_000_000_003,
	}
	total := logp.Time(4_000_000_000)
	got := b.Scaled(total)
	if got.Total() != total {
		t.Fatalf("Scaled total = %d, want %d (breakdown %v)", got.Total(), total, got)
	}
	for _, c := range []logp.Time{got.Latency, got.Overhead, got.Gap, got.Compute, got.Origin, got.Wait} {
		if c < 0 {
			t.Fatalf("negative component after scaling: %v", got)
		}
	}
	// Components that were zero must stay zero: the slack belongs to the
	// classes that actually appear on the critical path.
	if got.Gap != 0 || got.Compute != 0 || got.Origin != 0 || got.Wait != 0 {
		t.Fatalf("zero components gained cycles: %v", got)
	}
	// Proportions survive the scaling to within the rounding unit.
	tt := b.Total()
	wantLat := float64(b.Latency) / float64(tt) * float64(total)
	if d := float64(got.Latency) - wantLat; d > 1 || d < -1 {
		t.Fatalf("Latency = %d, want about %.1f", got.Latency, wantLat)
	}
	// Scaling up past 2^33 stays exact too.
	up := b.Scaled(1 << 33)
	if up.Total() != 1<<33 || up.Latency < up.Overhead {
		t.Fatalf("upscale broke proportions: %v", up)
	}
}

// TestScaledIdentityAndSmall pins the fast paths around the carry: scaling
// to the breakdown's own total is the identity, and tiny totals distribute
// by largest remainder without touching zero components.
func TestScaledIdentityAndSmall(t *testing.T) {
	b := Breakdown{Latency: 1 << 32, Overhead: 1 << 31, Gap: 3}
	if got := b.Scaled(b.Total()); got != b {
		t.Fatalf("identity scaling changed the breakdown: %v", got)
	}
	got := b.Scaled(3)
	if got.Total() != 3 || got.Compute != 0 || got.Origin != 0 || got.Wait != 0 {
		t.Fatalf("small-total scaling: %v", got)
	}
}
