// Package diff compares two run reports (internal/obs/report) field by
// field and renders a machine-readable verdict — the run-report sibling of
// internal/benchcmp, which does the same job over benchjson files. It is
// the engine behind cmd/reportdiff and the telemetry server's /compare
// view.
//
// Fields split into three classes:
//
//   - gated: finish, the closed-form gap, every causal-breakdown
//     component, the port-stat quantiles, and the violation count. Each
//     has a fractional threshold; a relative change beyond it (in either
//     direction — an unexplained improvement is drift too) gates the
//     verdict, which is what flips cmd/reportdiff to a non-zero exit.
//   - identity: op, machine parameters, and schema version must match for
//     the comparison to mean anything; a mismatch is always gated.
//   - informational: tool, constructor, aggregate port stats, time-series
//     summaries, and the extra map are reported when they differ but
//     never gate — they explain drift rather than detect it.
//
// Two runs of the same deterministic case produce an Empty verdict: no
// deltas at all, not merely none gated.
package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"logpopt/internal/obs/report"
	"logpopt/internal/obs/timeseries"
)

// Thresholds are the allowed fractional changes per gated field class: 0.05
// passes anything within ±5% of the old value. A change from zero to
// non-zero has no meaningful fraction and always gates (matching
// benchcmp's growth-from-zero rule). A negative threshold disables the
// gate for that class; the delta is still reported.
type Thresholds struct {
	Finish     float64 // finish time
	Gap        float64 // finish minus closed-form bound
	Breakdown  float64 // each causal component
	Quantile   float64 // each port-stat quantile rung
	Violations float64 // violation count (0 = exact)
}

// Default tolerates nothing on violations (deterministic), is tight on the
// finish (the certified outcome), and leaves headroom on the noisier
// distribution tails.
var Default = Thresholds{
	Finish:     0.02,
	Gap:        0.05,
	Breakdown:  0.10,
	Quantile:   0.20,
	Violations: 0,
}

// Delta is one field that differs between the two reports. Old and New are
// rendered values (numeric fields render as integers or floats, identity
// fields as strings); Frac is the signed relative change, absent for
// non-numeric fields and for changes from zero.
type Delta struct {
	Field string   `json:"field"`
	Old   string   `json:"old"`
	New   string   `json:"new"`
	Frac  *float64 `json:"frac,omitempty"`
	Gated bool     `json:"gated"`
}

// Verdict is the outcome of one comparison. A and B label the compared
// reports (paths or store entry names).
type Verdict struct {
	A      string  `json:"a,omitempty"`
	B      string  `json:"b,omitempty"`
	Deltas []Delta `json:"deltas"`
	Gated  int     `json:"gated"`
}

// Empty reports whether the two reports were identical in every compared
// field.
func (v *Verdict) Empty() bool { return len(v.Deltas) == 0 }

// add records a string-valued delta.
func (v *Verdict) add(field, old, new string, gated bool) {
	if gated {
		v.Gated++
	}
	v.Deltas = append(v.Deltas, Delta{Field: field, Old: old, New: new, Gated: gated})
}

// addNum records a numeric delta when old != new, gating on |frac| beyond
// th (th < 0 never gates; old == 0 with new != 0 always gates when th is
// active).
func (v *Verdict) addNum(field string, old, new float64, th float64) {
	if old == new {
		return
	}
	d := Delta{Field: field, Old: trim(old), New: trim(new)}
	if old != 0 {
		f := (new - old) / old
		d.Frac = &f
	}
	if th >= 0 {
		if d.Frac == nil {
			d.Gated = true // change from zero: no meaningful fraction
		} else {
			d.Gated = math.Abs(*d.Frac) > th
		}
	}
	if d.Gated {
		v.Gated++
	}
	v.Deltas = append(v.Deltas, d)
}

// trim renders a float without a trailing ".000000" for integral values.
func trim(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Compare diffs b against a under th. a is the reference ("old") side.
func Compare(a, b *report.Report, th Thresholds) *Verdict {
	v := &Verdict{}

	// Identity: these must match for any other delta to be meaningful.
	if a.Version != b.Version {
		v.add("version", fmt.Sprint(a.Version), fmt.Sprint(b.Version), true)
	}
	if a.Op != b.Op {
		v.add("op", a.Op, b.Op, true)
	}
	if a.Machine != b.Machine {
		v.add("machine", machineString(a.Machine), machineString(b.Machine), true)
	}
	if a.Tool != b.Tool {
		v.add("tool", a.Tool, b.Tool, false)
	}
	if a.Constructor != b.Constructor {
		v.add("constructor", a.Constructor, b.Constructor, false)
	}

	// The gated outcome fields.
	v.addNum("finish", float64(a.Finish), float64(b.Finish), th.Finish)
	v.addNum("bound", float64(a.Bound), float64(b.Bound), 0) // closed form changed: always worth gating exactly
	v.addNum("gap", float64(a.Gap), float64(b.Gap), th.Gap)
	v.addNum("violations", float64(a.Violations), float64(b.Violations), th.Violations)

	compareBreakdown(v, a.Breakdown, b.Breakdown, th)
	compareStats(v, a.Stats, b.Stats, th)
	compareSeries(v, a.Timeseries, b.Timeseries)
	compareExtra(v, a.Extra, b.Extra)
	return v
}

func machineString(m report.Machine) string {
	return fmt.Sprintf("P=%d L=%d o=%d g=%d", m.P, m.L, m.O, m.G)
}

func compareBreakdown(v *Verdict, a, b *report.Breakdown, th Thresholds) {
	switch {
	case a == nil && b == nil:
		return
	case a == nil || b == nil:
		// A breakdown appearing or vanishing means the analyzer and engine
		// started (dis)agreeing on the finish — always worth gating.
		v.add("breakdown", presence(a != nil), presence(b != nil), true)
		return
	}
	for _, c := range []struct {
		name     string
		old, new int64
	}{
		{"breakdown.latency", a.Latency, b.Latency},
		{"breakdown.overhead", a.Overhead, b.Overhead},
		{"breakdown.gap", a.Gap, b.Gap},
		{"breakdown.compute", a.Compute, b.Compute},
		{"breakdown.origin", a.Origin, b.Origin},
		{"breakdown.wait", a.Wait, b.Wait},
	} {
		v.addNum(c.name, float64(c.old), float64(c.new), th.Breakdown)
	}
}

func compareStats(v *Verdict, a, b *report.Stats, th Thresholds) {
	switch {
	case a == nil && b == nil:
		return
	case a == nil || b == nil:
		v.add("stats", presence(a != nil), presence(b != nil), false)
		return
	}
	// Aggregates are informational: a changed send count without a changed
	// finish explains itself on inspection, it is not a regression per se.
	v.addNum("stats.sends", float64(a.Sends), float64(b.Sends), -1)
	v.addNum("stats.recvs", float64(a.Recvs), float64(b.Recvs), -1)
	v.addNum("stats.busy_cycles", float64(a.BusyCycles), float64(b.BusyCycles), -1)
	v.addNum("stats.port_util_finish", a.PortUtilFinish, b.PortUtilFinish, -1)
	v.addNum("stats.max_queue", float64(a.MaxQueue), float64(b.MaxQueue), -1)
	// The per-processor quantile ladders gate: they are the report's view
	// of load balance, and a drifting p90 busy time is a real regression
	// even when the finish holds.
	compareQuantiles(v, "stats.proc_busy", a.ProcBusy, b.ProcBusy, th)
	compareQuantiles(v, "stats.proc_idle", a.ProcIdle, b.ProcIdle, th)
}

func compareQuantiles(v *Verdict, prefix string, a, b report.Quantiles, th Thresholds) {
	for _, c := range []struct {
		name     string
		old, new int64
	}{
		{".min", a.Min, b.Min},
		{".p50", a.P50, b.P50},
		{".p90", a.P90, b.P90},
		{".p99", a.P99, b.P99},
		{".max", a.Max, b.Max},
	} {
		v.addNum(prefix+c.name, float64(c.old), float64(c.new), th.Quantile)
	}
}

func compareSeries(v *Verdict, a, b []timeseries.SeriesSummary) {
	am := map[string]timeseries.SeriesSummary{}
	for _, s := range a {
		am[s.Name] = s
	}
	bm := map[string]timeseries.SeriesSummary{}
	for _, s := range b {
		bm[s.Name] = s
	}
	for _, s := range a {
		o, ok := bm[s.Name]
		if !ok {
			v.add("timeseries."+s.Name, "present", "absent", false)
			continue
		}
		if s != o {
			v.add("timeseries."+s.Name,
				fmt.Sprintf("count=%d last=%d range=[%d,%d]", s.Count, s.Last, s.Min, s.Max),
				fmt.Sprintf("count=%d last=%d range=[%d,%d]", o.Count, o.Last, o.Min, o.Max),
				false)
		}
	}
	for _, s := range b {
		if _, ok := am[s.Name]; !ok {
			v.add("timeseries."+s.Name, "absent", "present", false)
		}
	}
}

func compareExtra(v *Verdict, a, b map[string]any) {
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			v.add("extra."+k, fmt.Sprint(av), "absent", false)
			continue
		}
		if fmt.Sprint(av) != fmt.Sprint(bv) {
			v.add("extra."+k, fmt.Sprint(av), fmt.Sprint(bv), false)
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			v.add("extra."+k, "absent", fmt.Sprint(bv), false)
		}
	}
}

func presence(has bool) string {
	if has {
		return "present"
	}
	return "absent"
}

// Write renders the verdict as a table, one line per delta, in benchcmp's
// shape. With verbose false only gated deltas are listed; the summary line
// always prints.
func (v *Verdict) Write(w io.Writer, verbose bool) {
	label := ""
	if v.A != "" || v.B != "" {
		label = fmt.Sprintf(" (%s vs %s)", v.A, v.B)
	}
	for _, d := range v.Deltas {
		if !d.Gated && !verbose {
			continue
		}
		flag := "drift"
		if d.Gated {
			flag = "GATED"
		}
		frac := ""
		if d.Frac != nil {
			frac = fmt.Sprintf(" %+7.1f%%", 100**d.Frac)
		}
		fmt.Fprintf(w, "%-5s  %-28s %14s -> %-14s%s\n", flag, d.Field, d.Old, d.New, frac)
	}
	if v.Empty() {
		fmt.Fprintf(w, "reports identical%s\n", label)
		return
	}
	fmt.Fprintf(w, "%d field(s) differ, %d gated%s\n", len(v.Deltas), v.Gated, label)
}

// WriteJSON emits the verdict as one JSON document.
func (v *Verdict) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
