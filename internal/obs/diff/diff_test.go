package diff

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/report"
	"logpopt/internal/schedule"
)

// buildReportOn assembles a fully-populated, Validate-clean report from a
// real broadcast run on m, the way the CLI tools do. boundOffset shifts
// the recorded bound below the achieved finish, giving the fixture a
// non-zero gap when a test needs fractional headroom there.
func buildReportOn(t *testing.T, m logp.Machine, boundOffset logp.Time) *report.Report {
	t.Helper()
	s := core.BroadcastSchedule(m, 0)
	crep := causal.Analyze(s, core.Origins(0))
	r := report.New("logpsched", m)
	r.Op = "broadcast"
	r.Constructor = "search"
	r.SetOutcome(crep.Finish, crep.Finish-boundOffset)
	r.SetCausal(crep)
	r.Stats = report.FromStats(schedule.ComputeStats(s, crep.Finish, nil))
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r
}

func buildReport(t *testing.T) *report.Report {
	return buildReportOn(t, logp.MustNew(16, 6, 2, 4), 0)
}

// revalidate guards the perturbation helpers: a perturbed fixture must
// still pass the report schema, or the test would be exercising a document
// the store could never contain.
func revalidate(t *testing.T, r *report.Report) *report.Report {
	t.Helper()
	if err := r.Validate(); err != nil {
		t.Fatalf("perturbed fixture no longer valid: %v", err)
	}
	return r
}

// TestIdenticalReportsEmptyVerdict: same case, same run — no deltas at all.
func TestIdenticalReportsEmptyVerdict(t *testing.T) {
	a, b := buildReport(t), buildReport(t)
	v := Compare(a, b, Default)
	if !v.Empty() || v.Gated != 0 {
		t.Fatalf("identical reports produced deltas: %+v", v.Deltas)
	}
	var buf bytes.Buffer
	v.Write(&buf, false)
	if !strings.Contains(buf.String(), "identical") {
		t.Fatalf("empty verdict rendering: %q", buf.String())
	}
}

// TestEachGatedFieldGates perturbs every gated field class beyond its
// threshold (keeping the document schema-valid) and asserts the verdict
// flips, naming the field.
func TestEachGatedFieldGates(t *testing.T) {
	cases := []struct {
		name    string
		perturb func(r *report.Report)
		field   string // a gated delta whose Field contains this
	}{
		{
			// Finish drift: the run got 50% slower. Gap and the wait
			// component absorb the same cycles so the document stays
			// internally consistent — exactly what a real slower run with
			// an unchanged bound looks like.
			name: "finish",
			perturb: func(r *report.Report) {
				d := r.Finish / 2
				r.Finish += d
				r.Gap += d
				r.Breakdown.Wait += d
			},
			field: "finish",
		},
		{
			// Gap drift alone: bound improved (closed form tightened), the
			// run did not.
			name: "gap",
			perturb: func(r *report.Report) {
				r.Bound -= 4
				r.Gap += 4
			},
			field: "gap",
		},
		{
			// A breakdown component shift with the total pinned: the same
			// finish now spends its cycles differently — the causal story
			// changed even though the outcome did not.
			name: "breakdown component",
			perturb: func(r *report.Report) {
				r.Breakdown.Wait += r.Breakdown.Latency
				r.Breakdown.Latency = 0
			},
			field: "breakdown.latency",
		},
		{
			// A port-stat quantile: the busy-time tail doubled.
			name: "quantile",
			perturb: func(r *report.Report) {
				r.Stats.ProcBusy.Max *= 4
				r.Stats.ProcBusy.P99 = r.Stats.ProcBusy.Max
			},
			field: "stats.proc_busy.p99",
		},
		{
			// Violations: zero is the only acceptable count for a clean
			// case; any growth gates exactly.
			name:    "violations",
			perturb: func(r *report.Report) { r.Violations = 3 },
			field:   "violations",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := buildReport(t)
			b := buildReport(t)
			tc.perturb(b)
			revalidate(t, b)
			v := Compare(a, b, Default)
			if v.Gated == 0 {
				t.Fatalf("perturbing %s did not gate: %+v", tc.name, v.Deltas)
			}
			found := false
			for _, d := range v.Deltas {
				if d.Gated && strings.Contains(d.Field, tc.field) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no gated delta names %q: %+v", tc.field, v.Deltas)
			}
		})
	}
}

// TestWithinThresholdDoesNotGate: a small drift is reported but not gated.
// The fixture runs on a huge-L machine with a pre-existing gap, so a 1%
// finish drift stays under every fractional gate (2% finish, 5% gap, 10%
// breakdown) while every touched field remains non-zero on both sides.
func TestWithinThresholdDoesNotGate(t *testing.T) {
	m := logp.MustNew(16, 600, 2, 4)
	a := buildReportOn(t, m, 200)
	b := buildReportOn(t, m, 200)
	d := b.Finish / 100
	if d == 0 || float64(d)/float64(b.Gap) > 0.05 || float64(d)/float64(b.Breakdown.Latency) > 0.10 {
		t.Fatalf("fixture does not give sub-threshold headroom: finish %d gap %d latency %d",
			b.Finish, b.Gap, b.Breakdown.Latency)
	}
	b.Finish += d
	b.Gap += d
	b.Breakdown.Latency += d
	revalidate(t, b)
	v := Compare(a, b, Default)
	if v.Empty() {
		t.Fatal("drift below threshold vanished entirely")
	}
	if v.Gated != 0 {
		t.Fatalf("sub-threshold drift gated: %+v", v.Deltas)
	}
}

// TestIdentityMismatchGates: comparing different cases is itself a gated
// finding — op and machine must match.
func TestIdentityMismatchGates(t *testing.T) {
	a, b := buildReport(t), buildReport(t)
	b.Op = "reduce"
	b.Machine.P = 17
	v := Compare(a, b, Default)
	var ops, machines bool
	for _, d := range v.Deltas {
		if d.Field == "op" && d.Gated {
			ops = true
		}
		if d.Field == "machine" && d.Gated {
			machines = true
		}
	}
	if !ops || !machines {
		t.Fatalf("identity mismatch not gated: %+v", v.Deltas)
	}

	// Tool and constructor are informational: they explain provenance,
	// they do not gate.
	a, b = buildReport(t), buildReport(t)
	b.Tool = "logpbench"
	b.Constructor = "logtime"
	v = Compare(a, b, Default)
	if v.Gated != 0 {
		t.Fatalf("provenance-only changes gated: %+v", v.Deltas)
	}
	if len(v.Deltas) != 2 {
		t.Fatalf("provenance changes not reported: %+v", v.Deltas)
	}
}

// TestBreakdownPresenceGates: the analyzer/engine disagreement marker (a
// dropped breakdown) always gates.
func TestBreakdownPresenceGates(t *testing.T) {
	a, b := buildReport(t), buildReport(t)
	b.Breakdown = nil
	v := Compare(a, b, Default)
	if v.Gated == 0 {
		t.Fatalf("vanished breakdown not gated: %+v", v.Deltas)
	}
}

// TestDisabledThresholdReportsWithoutGating: a negative threshold turns a
// gate into pure reporting.
func TestDisabledThresholdReportsWithoutGating(t *testing.T) {
	th := Default
	th.Finish, th.Gap, th.Breakdown = -1, -1, -1
	a, b := buildReport(t), buildReport(t)
	d := b.Finish / 2
	b.Finish += d
	b.Gap += d
	b.Breakdown.Wait += d
	revalidate(t, b)
	v := Compare(a, b, th)
	if v.Empty() {
		t.Fatal("disabled gates dropped the deltas too")
	}
	if v.Gated != 0 {
		t.Fatalf("disabled thresholds still gated: %+v", v.Deltas)
	}
}

// TestVerdictJSONRoundTrips: the verdict is machine-readable — valid JSON
// with the gated count and per-delta fields intact.
func TestVerdictJSONRoundTrips(t *testing.T) {
	a, b := buildReport(t), buildReport(t)
	b.Violations = 2
	v := Compare(a, b, Default)
	v.A, v.B = "old.json", "new.json"
	var buf bytes.Buffer
	if err := v.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Verdict
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("verdict is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Gated != v.Gated || len(got.Deltas) != len(v.Deltas) || got.A != "old.json" {
		t.Fatalf("verdict mangled in JSON: %+v vs %+v", got, v)
	}
}
