package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric that also remembers its high-water mark.
type Gauge struct {
	v, max atomic.Int64
}

// Set stores v and raises the high-water mark if needed (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations in power-of-two buckets: bucket i holds
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Values < 0
// land in bucket 0. Good enough to see the shape of wait times and replay
// durations without configuring bucket bounds.
type Histogram struct {
	mu         sync.Mutex
	count, sum int64
	buckets    [65]int64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	h.buckets[b]++
	h.mu.Unlock()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0, 1]):
// the largest value of the first power-of-two bucket whose cumulative count
// reaches q of all observations. Exact for values that are one less than a
// power of two; otherwise within a factor of two, which is the histogram's
// resolution. Returns 0 on an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range h.buckets {
		cum += c
		if cum >= rank {
			if b == 0 {
				return 0
			}
			return int64(1)<<uint(b) - 1
		}
	}
	return math.MaxInt64 // unreachable: cum == count >= rank by then
}

// P50 returns the median estimate.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }

// P90 returns the 90th-percentile estimate.
func (h *Histogram) P90() int64 { return h.Quantile(0.90) }

// P99 returns the 99th-percentile estimate.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry holds named metrics. Lookup methods create on first use and
// always return the same handle for a name, so call sites can cache handles
// in package vars. A nil *Registry returns nil handles, whose methods are
// all no-ops — the whole chain is safe with observability off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry. Library packages register their
// metrics here so the CLIs can print one unified snapshot with -metrics.
// Collection is always on: handles are atomics and hot paths flush
// aggregated deltas, so the cost without a consumer is a few atomic adds
// per operation (not per inner-loop node).
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every registered metric as text, one per line, sorted by
// kind then name — deterministic for a given sequence of recorded values, so
// tests can diff snapshots directly.
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	names := func(m any) []string {
		var ns []string
		switch mm := m.(type) {
		case map[string]*Counter:
			for n := range mm {
				ns = append(ns, n)
			}
		case map[string]*Gauge:
			for n := range mm {
				ns = append(ns, n)
			}
		case map[string]*Histogram:
			for n := range mm {
				ns = append(ns, n)
			}
		}
		sort.Strings(ns)
		return ns
	}
	cns, gns, hns := names(r.counters), names(r.gauges), names(r.hists)
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()

	var b strings.Builder
	for _, n := range cns {
		fmt.Fprintf(&b, "counter %s %d\n", n, counters[n].Value())
	}
	for _, n := range gns {
		g := gauges[n]
		fmt.Fprintf(&b, "gauge %s value=%d max=%d\n", n, g.Value(), g.Max())
	}
	for _, n := range hns {
		h := hists[n]
		h.mu.Lock()
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d", n, h.count, h.sum)
		for i, c := range h.buckets {
			if c != 0 {
				fmt.Fprintf(&b, " b%d:%d", i, c)
			}
		}
		h.mu.Unlock()
		b.WriteByte('\n')
	}
	return b.String()
}

// Reset zeroes every registered metric (handles stay valid). Benchmarks use
// it to measure deltas from a clean slate.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
		g.max.Store(0)
	}
	for _, h := range r.hists {
		h.mu.Lock()
		h.count, h.sum = 0, 0
		h.buckets = [65]int64{}
		h.mu.Unlock()
	}
}
