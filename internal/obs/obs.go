// Package obs is the repository's zero-dependency observability layer: a
// Tracer collecting Chrome trace-event records (viewable in Perfetto or
// chrome://tracing) and a Metrics registry of counters, gauges and
// histograms with a deterministic text snapshot.
//
// Overhead discipline: everything here is optional and nil-safe. Every
// Tracer method is a no-op on a nil *Tracer, so instrumented hot paths pay
// exactly one pointer check when tracing is off; code that builds argument
// lists should additionally guard with `if tr != nil` so the argument
// construction itself is skipped. Metrics handles are looked up once (at
// package init or struct construction) and hot loops accumulate into plain
// local variables, flushing one atomic add per operation, never per node.
//
// Time bases: trace timestamps are int64 microseconds. Wall-clock
// instrumentation (solvers, harnesses) uses Tracer.Now, microseconds since
// the tracer was created. Virtual-time instrumentation (the simulator and
// the goroutine runtime) passes LogP cycles directly — one cycle renders as
// one microsecond. The two kinds of track are kept apart by pid: each
// subsystem claims its own pid and labels it with NameProcess, so Perfetto
// shows them as separate processes and the mixed units never share a track.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Arg is one key/value annotation on a trace event. Values may be strings,
// booleans, or any integer or float type; anything else is rendered with
// fmt and stored as a string.
type Arg struct {
	Key string
	Val any
}

// A is shorthand for constructing an Arg.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// event phases (Chrome trace-event "ph" values).
const (
	phComplete = 'X' // span with duration
	phInstant  = 'i'
	phCounter  = 'C'
	phMeta     = 'M'
)

type event struct {
	name     string
	ph       byte
	ts, dur  int64
	pid, tid int
	args     []Arg
}

// Sink consumes pre-encoded trace-event JSON records one at a time. It is
// declared structurally so obs stays dependency-free: trace.Emitter satisfies
// it. The record bytes are only valid for the duration of the call.
type Sink interface {
	Emit(rec []byte) error
}

// Tracer accumulates trace events in memory, or — after StreamTo — encodes
// each event as it is recorded and forwards it to a Sink, holding no span
// backlog. Create one with NewTracer and write it out once with
// WriteJSON/WriteFile (in-memory mode) or Close the sink (streaming mode).
// All methods are safe on a nil receiver (no-op), so a *Tracer can be
// threaded through APIs unconditionally and only checked where argument
// construction would otherwise cost.
//
// Tracer is safe for concurrent use; events are kept in insertion order.
type Tracer struct {
	mu       sync.Mutex
	start    time.Time
	events   []event
	sink     Sink
	streamed int
	scratch  bytes.Buffer
	sinkErr  error
	samplers map[int]*samplerState // per-pid keep/drop policy (see sample.go)
	dropped  int64
}

// NewTracer returns an empty tracer whose wall clock (Now) starts at zero.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Now returns the wall-clock timestamp in microseconds since the tracer was
// created (0 on a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Microseconds()
}

// Len returns the number of recorded events, including events already
// forwarded to a streaming sink.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events) + t.streamed
}

// StreamTo switches the tracer to streaming mode: every subsequently recorded
// event is encoded immediately and handed to s instead of being accumulated,
// so memory stays bounded regardless of run length. Events recorded before
// the call are flushed to s first, in order. The caller owns the sink's
// lifecycle (flush/close); the first sink error sticks and is returned by
// StreamErr, after which further events are dropped.
func (t *Tracer) StreamTo(s Sink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = s
	for i := range t.events {
		t.emitLocked(&t.events[i])
	}
	t.events = nil
}

// StreamErr reports the first error a streaming sink returned, if any.
func (t *Tracer) StreamErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

func (t *Tracer) add(e event) {
	t.mu.Lock()
	if st, ok := t.samplers[e.pid]; ok && !st.keep(&e) {
		t.dropped++
		t.mu.Unlock()
		return
	}
	if t.sink != nil {
		t.emitLocked(&e)
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// emitLocked encodes one event into the reusable scratch buffer and forwards
// it to the sink. Caller holds t.mu.
func (t *Tracer) emitLocked(e *event) {
	t.scratch.Reset()
	writeEvent(&t.scratch, e)
	t.streamed++
	if err := t.sink.Emit(t.scratch.Bytes()); err != nil && t.sinkErr == nil {
		t.sinkErr = err
	}
}

// Span records a complete event: name ran on track (pid, tid) from ts for
// dur (both in microseconds / cycles).
func (t *Tracer) Span(pid, tid int, name string, ts, dur int64, args ...Arg) {
	if t == nil {
		return
	}
	t.add(event{name: name, ph: phComplete, ts: ts, dur: dur, pid: pid, tid: tid, args: args})
}

// Instant records a point event on track (pid, tid) at ts.
func (t *Tracer) Instant(pid, tid int, name string, ts int64, args ...Arg) {
	if t == nil {
		return
	}
	t.add(event{name: name, ph: phInstant, ts: ts, pid: pid, tid: tid, args: args})
}

// Counter records a sampled counter value at ts. Perfetto renders each
// counter name as its own graph under the pid.
func (t *Tracer) Counter(pid int, name string, ts, value int64) {
	if t == nil {
		return
	}
	t.add(event{name: name, ph: phCounter, ts: ts, pid: pid, args: []Arg{{Key: "value", Val: value}}})
}

// NameProcess labels a pid in the trace viewer.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.add(event{name: "process_name", ph: phMeta, pid: pid, args: []Arg{{Key: "name", Val: name}}})
}

// NameThread labels a (pid, tid) track in the trace viewer.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.add(event{name: "thread_name", ph: phMeta, pid: pid, tid: tid, args: []Arg{{Key: "name", Val: name}}})
}

// WriteJSON emits the trace in Chrome trace-event JSON object form
// ({"traceEvents": [...]}), which both Perfetto and chrome://tracing load.
// The encoding is hand-rolled so output is deterministic (args keep their
// recorded order) and the package stays dependency-free. On a streaming
// tracer the backlog is empty — the sink received the events — so WriteJSON
// emits an empty document; close the sink instead.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b bytes.Buffer
	b.WriteString(`{"traceEvents":[`)
	for i := range t.events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n")
		writeEvent(&b, &t.events[i])
	}
	b.WriteString("\n]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// WriteFile writes the trace to path (created or truncated).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeEvent(b *bytes.Buffer, e *event) {
	b.WriteString(`{"name":`)
	writeString(b, e.name)
	fmt.Fprintf(b, `,"ph":"%c","ts":%d`, e.ph, e.ts)
	if e.ph == phComplete {
		fmt.Fprintf(b, `,"dur":%d`, e.dur)
	}
	if e.ph == phInstant {
		b.WriteString(`,"s":"t"`) // thread-scoped instant
	}
	fmt.Fprintf(b, `,"pid":%d,"tid":%d`, e.pid, e.tid)
	if len(e.args) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range e.args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeString(b, a.Key)
			b.WriteByte(':')
			writeVal(b, a.Val)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
}

func writeVal(b *bytes.Buffer, v any) {
	switch x := v.(type) {
	case string:
		writeString(b, x)
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case int:
		b.WriteString(strconv.FormatInt(int64(x), 10))
	case int32:
		b.WriteString(strconv.FormatInt(int64(x), 10))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	default:
		writeString(b, fmt.Sprintf("%v", x))
	}
}

// writeString writes a JSON string literal with the minimal escaping the
// trace format needs (quotes, backslashes, control bytes).
func writeString(b *bytes.Buffer, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}
