package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every Tracer and metrics method on nil receivers;
// the contract is that instrumented code never needs a non-nil check beyond
// skipping argument construction.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Span(1, 2, "s", 0, 5, A("k", "v"))
	tr.Instant(1, 2, "i", 3)
	tr.Counter(1, "c", 4, 7)
	tr.NameProcess(1, "p")
	tr.NameThread(1, 2, "t")
	if tr.Now() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer not inert")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatalf("nil tracer JSON = %q", sb.String())
	}

	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	c.Add(3)
	c.Inc()
	g.Set(9)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil registry handles not inert")
	}
	if r.Snapshot() != "" {
		t.Fatal("nil registry snapshot not empty")
	}
	r.Reset()
}

// TestTracerJSON checks the emitted trace is valid JSON in Chrome
// trace-event object form with the recorded fields, and byte-deterministic.
func TestTracerJSON(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(1, "sim")
	tr.NameThread(1, 0, "P0")
	tr.Span(1, 0, `send "x"`, 10, 2, A("item", 3), A("to", 1))
	tr.Instant(1, 0, "violation", 12, A("kind", "gap"))
	tr.Counter(1, "inflight", 12, 4)

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, got)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[2]
	if span["ph"] != "X" || span["dur"] != float64(2) || span["ts"] != float64(10) {
		t.Fatalf("span event %+v", span)
	}
	if span["name"] != `send "x"` {
		t.Fatalf("span name %q: quote escaping broken", span["name"])
	}
	args := span["args"].(map[string]any)
	if args["item"] != float64(3) || args["to"] != float64(1) {
		t.Fatalf("span args %+v", args)
	}
	if doc.TraceEvents[4]["ph"] != "C" {
		t.Fatalf("counter event %+v", doc.TraceEvents[4])
	}

	var sb2 strings.Builder
	if err := tr.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Fatal("WriteJSON not deterministic across calls")
	}
}

// TestSnapshotDeterministic records the same metrics into two registries and
// demands identical snapshots, plus the expected sorted shape.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(5)
		r.Gauge("q.depth").Set(3)
		r.Gauge("q.depth").Set(1)
		r.Histogram("wait").Observe(0)
		r.Histogram("wait").Observe(5)
		r.Histogram("wait").Observe(1000)
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if s1 != s2 {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", s1, s2)
	}
	want := "counter a.count 5\n" +
		"counter b.count 2\n" +
		"gauge q.depth value=1 max=3\n" +
		"histogram wait count=3 sum=1005 b0:1 b3:1 b10:1\n"
	if s1 != want {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", s1, want)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race this is the data-race check, and the final counts must add up.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const gs, per = 8, 1000
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(int64(i % 7))
			}
		}(g)
	}
	wg.Wait()
	if v := r.Counter("n").Value(); v != gs*per {
		t.Fatalf("counter %d, want %d", v, gs*per)
	}
	if h := r.Histogram("h"); h.Count() != gs*per {
		t.Fatalf("histogram count %d, want %d", h.Count(), gs*per)
	}
	if mx := r.Gauge("g").Max(); mx != per-1 {
		t.Fatalf("gauge max %d, want %d", mx, per-1)
	}
	r.Reset()
	if r.Counter("n").Value() != 0 || r.Gauge("g").Max() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("Reset left values behind")
	}
}

// TestTracerConcurrent checks concurrent recording is race-free and loses
// nothing.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const gs, per = 8, 500
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Span(g, i%4, "work", int64(i), 1)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != gs*per {
		t.Fatalf("tracer has %d events, want %d", tr.Len(), gs*per)
	}
}
