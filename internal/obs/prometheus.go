package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// processStart anchors logp_process_uptime_seconds; captured at init so
// every registry in the process reports the same uptime.
var processStart = time.Now()

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// buildInfoLabels renders the label set of logp_build_info: the Go runtime
// version plus, when the binary carries module metadata, the main module
// path and version.
func buildInfoLabels() string {
	path, version := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			path = bi.Main.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
	}
	return fmt.Sprintf(`go_version=%q,path=%q,version=%q`,
		escapeLabel(runtime.Version()), escapeLabel(path), escapeLabel(version))
}

// writeProcessPreamble emits the process-identity series every exposition
// starts with: logp_build_info (constant 1, identity in the labels) and
// logp_process_uptime_seconds. These use the bare logp_ prefix — they
// describe the process, not a logpopt_ registry metric.
func writeProcessPreamble(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"# HELP logp_build_info Build information for this process; the value is always 1.\n"+
			"# TYPE logp_build_info gauge\n"+
			"logp_build_info{%s} 1\n"+
			"# HELP logp_process_uptime_seconds Seconds since process start.\n"+
			"# TYPE logp_process_uptime_seconds gauge\n"+
			"logp_process_uptime_seconds %.3f\n",
		buildInfoLabels(), time.Since(processStart).Seconds())
	return err
}

// promName maps a dotted registry metric name to a valid Prometheus metric
// name: the logpopt_ namespace prefix, with every character outside
// [a-zA-Z0-9_:] replaced by '_'.
func promName(name string) string {
	b := []byte("logpopt_" + name)
	for i := 8; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Counters become `<name>_total` counter
// series; gauges become two gauge series, the value and its `_max`
// high-water mark; histograms become summary series with p50/p90/p99
// quantile labels plus `_sum` and `_count`. Output is sorted by kind then
// name, like Snapshot, so it is deterministic for a given set of recorded
// values. A nil registry writes nothing. Every exposition opens with the
// process-identity preamble: logp_build_info and logp_process_uptime_seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	if err := writeProcessPreamble(w); err != nil {
		return err
	}
	r.mu.Lock()
	var cns, gns, hns []string
	for n := range r.counters {
		cns = append(cns, n)
	}
	for n := range r.gauges {
		gns = append(gns, n)
	}
	for n := range r.hists {
		hns = append(hns, n)
	}
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()
	sort.Strings(cns)
	sort.Strings(gns)
	sort.Strings(hns)

	for _, n := range cns {
		pn := promName(n)
		if _, err := fmt.Fprintf(w,
			"# HELP %s_total Counter %q.\n# TYPE %s_total counter\n%s_total %d\n",
			pn, n, pn, pn, counters[n].Value()); err != nil {
			return err
		}
	}
	for _, n := range gns {
		g := gauges[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w,
			"# HELP %s Gauge %q.\n# TYPE %s gauge\n%s %d\n"+
				"# HELP %s_max High-water mark of gauge %q.\n# TYPE %s_max gauge\n%s_max %d\n",
			pn, n, pn, pn, g.Value(), pn, n, pn, pn, g.Max()); err != nil {
			return err
		}
	}
	for _, n := range hns {
		h := hists[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w,
			"# HELP %s Power-of-two histogram %q (quantiles are bucket upper bounds).\n# TYPE %s summary\n",
			pn, n, pn); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     int64
		}{{"0.5", h.P50()}, {"0.9", h.P90()}, {"0.99", h.P99()}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", pn, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum(), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
