package obs

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.P50() != 0 || h.P99() != 0 {
		t.Fatal("empty histogram must report zero quantiles")
	}
	// 90 values in [1,1] (bucket 1, upper bound 1), 9 in [4,7] (bucket 3,
	// upper bound 7), 1 at 1000 (bucket 10, upper bound 1023).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5)
	}
	h.Observe(1000)
	if got := h.P50(); got != 1 {
		t.Errorf("P50 = %d, want 1", got)
	}
	if got := h.P90(); got != 1 {
		t.Errorf("P90 = %d, want 1 (rank 90 of 100 is the last 1)", got)
	}
	if got := h.P99(); got != 7 {
		t.Errorf("P99 = %d, want 7", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("Quantile(1) = %d, want 1023", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want the minimum bucket bound 1", got)
	}
	if got := h.Quantile(-3); got != h.Quantile(0) {
		t.Errorf("Quantile clamps below 0: got %d", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
	z := &Histogram{}
	z.Observe(0)
	z.Observe(-4)
	if z.P99() != 0 {
		t.Errorf("non-positive observations live in bucket 0: P99 = %d", z.P99())
	}
}

// promLine matches every legal non-empty line of the text exposition format
// as we emit it: comments, or a sample with an optional label list and an
// integer or decimal value.
var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?)$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.replays").Add(3)
	r.Gauge("sweep.workers").Set(4)
	r.Gauge("sweep.workers").Set(2)
	h := r.Histogram("sim.recv wait")
	h.Observe(1)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line fails Prometheus text grammar: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE logpopt_sim_replays_total counter\nlogpopt_sim_replays_total 3\n",
		"logpopt_sweep_workers 2\n",
		"logpopt_sweep_workers_max 4\n",
		"# TYPE logpopt_sim_recv_wait summary\n",
		`logpopt_sim_recv_wait{quantile="0.5"} 1` + "\n",
		`logpopt_sim_recv_wait{quantile="0.99"} 15` + "\n",
		"logpopt_sim_recv_wait_sum 10\n",
		"logpopt_sim_recv_wait_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	var nilR *Registry
	b.Reset()
	if err := nilR.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, b.String())
	}
}

// TestWritePrometheusGoldenNameReplacement pins the full exposition for a
// registry whose metric names need character replacement: every byte
// outside [a-zA-Z0-9_:] maps to '_', and the logpopt_ prefix survives
// untouched.
func TestWritePrometheusGoldenNameReplacement(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.events.processed").Add(12)
	r.Counter("cache-hit%rate").Inc()
	r.Gauge("queue depth/shard#3").Set(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// The first six lines are the process-identity preamble (build info and
	// uptime), checked separately in TestWritePrometheusProcessPreamble; the
	// registry metrics that follow are pinned exactly.
	lines := strings.SplitN(b.String(), "\n", 7)
	if len(lines) != 7 {
		t.Fatalf("exposition shorter than the preamble:\n%s", b.String())
	}
	const golden = `# HELP logpopt_cache_hit_rate_total Counter "cache-hit%rate".
# TYPE logpopt_cache_hit_rate_total counter
logpopt_cache_hit_rate_total 1
# HELP logpopt_sim_events_processed_total Counter "sim.events.processed".
# TYPE logpopt_sim_events_processed_total counter
logpopt_sim_events_processed_total 12
# HELP logpopt_queue_depth_shard_3 Gauge "queue depth/shard#3".
# TYPE logpopt_queue_depth_shard_3 gauge
logpopt_queue_depth_shard_3 5
# HELP logpopt_queue_depth_shard_3_max High-water mark of gauge "queue depth/shard#3".
# TYPE logpopt_queue_depth_shard_3_max gauge
logpopt_queue_depth_shard_3_max 5
`
	if lines[6] != golden {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", lines[6], golden)
	}
}

// TestWritePrometheusProcessPreamble pins the process-identity series every
// exposition opens with: logp_build_info (value 1, identity in labels) and
// logp_process_uptime_seconds, each with HELP and TYPE lines.
func TestWritePrometheusProcessPreamble(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP logp_build_info ",
		"# TYPE logp_build_info gauge\n",
		"# HELP logp_process_uptime_seconds ",
		"# TYPE logp_process_uptime_seconds gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if !strings.HasPrefix(out, "# HELP logp_build_info ") {
		t.Errorf("build info is not the first series:\n%.200s", out)
	}
	bi := regexp.MustCompile(`(?m)^logp_build_info\{go_version="[^"]+",path="[^"]+",version="[^"]+"\} 1$`)
	if !bi.MatchString(out) {
		t.Errorf("logp_build_info sample malformed:\n%s", out)
	}
	up := regexp.MustCompile(`(?m)^logp_process_uptime_seconds [0-9]+\.[0-9]{3}$`)
	if !up.MatchString(out) {
		t.Errorf("logp_process_uptime_seconds sample malformed:\n%s", out)
	}
	// Uptime must be monotone across expositions.
	m := up.FindString(out)
	var first float64
	fmt.Sscanf(m, "logp_process_uptime_seconds %f", &first)
	time.Sleep(2 * time.Millisecond)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var second float64
	fmt.Sscanf(up.FindString(b.String()), "logp_process_uptime_seconds %f", &second)
	if second <= first {
		t.Errorf("uptime not monotone: %f then %f", first, second)
	}
	// Every preamble line still satisfies the exposition grammar.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line fails Prometheus text grammar: %q", line)
		}
	}
}
