// Package report defines logpopt's versioned machine-readable run report:
// one JSON document per run capturing what ran (tool, operation, machine,
// constructor), what it achieved (finish time against the closed-form lower
// bound, the causal breakdown of the critical path), how the ports behaved
// (schedule.Stats with per-processor busy/idle quantiles), and the
// time-resolved series summaries from an attached collector.
//
// Reports are the artifact layer between a run and everything downstream:
// CI uploads them next to trace dumps, the telemetry server lists them
// under /runs/, and regression tooling diffs them across commits. The
// format is strict by design — Validate rejects unknown fields, version
// drift, and internally inconsistent documents (gap != finish - bound,
// breakdown components that do not sum to the finish) — so a report that
// round-trips Validate is trustworthy without re-running anything.
package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/schedule"
)

// Version is the current report schema version. Validate accepts only this
// version; bump it when a field changes meaning, not when fields are added
// (additions are caught by DisallowUnknownFields on old readers anyway).
const Version = 1

// Machine is the LogP parameter block.
type Machine struct {
	P int   `json:"p"`
	L int64 `json:"l"`
	O int64 `json:"o"`
	G int64 `json:"g"`
}

// Breakdown mirrors causal.Breakdown in plain int64 cycles.
type Breakdown struct {
	Latency  int64 `json:"latency"`
	Overhead int64 `json:"overhead"`
	Gap      int64 `json:"gap"`
	Compute  int64 `json:"compute"`
	Origin   int64 `json:"origin"`
	Wait     int64 `json:"wait"`
}

// Total returns the sum of all components.
func (b Breakdown) Total() int64 {
	return b.Latency + b.Overhead + b.Gap + b.Compute + b.Origin + b.Wait
}

func fromCausal(b causal.Breakdown) Breakdown {
	return Breakdown{
		Latency:  int64(b.Latency),
		Overhead: int64(b.Overhead),
		Gap:      int64(b.Gap),
		Compute:  int64(b.Compute),
		Origin:   int64(b.Origin),
		Wait:     int64(b.Wait),
	}
}

// Quantiles summarizes one per-processor distribution. The ladder matches
// what the metrics registry's histograms expose (p50/p90/p99), so a report
// quantile and a /metrics summary quantile are always comparable.
type Quantiles struct {
	Min int64 `json:"min"`
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// quantiles computes Quantiles over vals (nearest-rank on the sorted copy).
func quantiles(vals []int64) Quantiles {
	if len(vals) == 0 {
		return Quantiles{}
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) int64 {
		i := int(q*float64(len(s)-1) + 0.5)
		return s[i]
	}
	return Quantiles{Min: s[0], P50: rank(0.5), P90: rank(0.9), P99: rank(0.99), Max: s[len(s)-1]}
}

// Stats is the port-activity summary: the aggregate schedule.Stats fields
// plus per-processor busy/idle quantiles (the PerProc slice itself would be
// P entries — unusable in an artifact at P = 10^6).
type Stats struct {
	Sends          int       `json:"sends"`
	Recvs          int       `json:"recvs"`
	BusyCycles     int64     `json:"busy_cycles"`
	PortUtilFinish float64   `json:"port_util_finish"`
	MaxQueue       int       `json:"max_queue"`
	ProcBusy       Quantiles `json:"proc_busy"`
	ProcIdle       Quantiles `json:"proc_idle"`
}

// FromStats condenses a schedule.Stats into the report form.
func FromStats(st schedule.Stats) *Stats {
	busy := make([]int64, len(st.PerProc))
	idle := make([]int64, len(st.PerProc))
	for i, pp := range st.PerProc {
		busy[i] = pp.BusyCycles
		idle[i] = pp.IdleCycles
	}
	return &Stats{
		Sends:          st.Sends,
		Recvs:          st.Recvs,
		BusyCycles:     st.BusyCycles,
		PortUtilFinish: st.PortUtilFinish,
		MaxQueue:       st.MaxQueue,
		ProcBusy:       quantiles(busy),
		ProcIdle:       quantiles(idle),
	}
}

// Report is one run's artifact. Finish and Bound are LogP cycles; Bound is
// -1 when no closed form is known for the operation, and Gap is only
// meaningful when Bound >= 0.
type Report struct {
	Version     int     `json:"version"`
	Tool        string  `json:"tool"`
	Op          string  `json:"op,omitempty"`
	Constructor string  `json:"constructor,omitempty"`
	Machine     Machine `json:"machine"`

	Finish int64 `json:"finish"`
	Bound  int64 `json:"bound"`
	Gap    int64 `json:"gap"`

	Breakdown  *Breakdown                 `json:"breakdown,omitempty"`
	Stats      *Stats                     `json:"stats,omitempty"`
	Violations int                        `json:"violations"`
	Timeseries []timeseries.SeriesSummary `json:"timeseries,omitempty"`

	// Extra carries tool-specific annotations (seed counts, deadline,
	// item counts) without schema churn; values must be JSON scalars.
	Extra map[string]any `json:"extra,omitempty"`
}

// New starts a report for tool with the machine block filled in and the
// bound marked unknown.
func New(tool string, m logp.Machine) *Report {
	return &Report{
		Version: Version,
		Tool:    tool,
		Machine: Machine{P: m.P, L: int64(m.L), O: int64(m.O), G: int64(m.G)},
		Bound:   -1,
	}
}

// SetOutcome records the finish time against bound (-1: no closed form)
// and derives the gap.
func (r *Report) SetOutcome(finish, bound logp.Time) {
	r.Finish = int64(finish)
	r.Bound = int64(bound)
	if bound >= 0 {
		r.Gap = int64(finish - bound)
	} else {
		r.Gap = 0
	}
}

// SetCausal attaches the causal report's achieved breakdown.
func (r *Report) SetCausal(c *causal.Report) {
	b := fromCausal(c.Achieved)
	r.Breakdown = &b
}

// SetTimeseries attaches the collector's series summaries (nil-safe: a nil
// or empty collector leaves the field absent).
func (r *Report) SetTimeseries(c *timeseries.Collector) {
	if s := c.Summary(); len(s) > 0 {
		r.Timeseries = s
	}
}

// Write emits the report as indented JSON followed by a newline.
func (r *Report) Write(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the report to path (created or truncated).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Read strictly decodes one report from data: unknown fields are rejected,
// and the document must pass Validate. Each failure mode keeps its own
// actionable message — a truncated artifact (lost write, partial upload)
// reads differently from schema drift (a field this reader does not know)
// and from version drift (caught by Validate).
func Read(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		switch {
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("report: truncated document (partial write or upload?): %w", err)
		case strings.Contains(err.Error(), "unknown field"):
			return nil, fmt.Errorf("report: %w — schema version %d has no such field; was this written by a newer tool?", err, Version)
		}
		return nil, fmt.Errorf("report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile reads and validates the report at path.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data)
}

// Validate checks the report's internal consistency: schema version, a
// plausible machine, non-negative finish, gap coherence against the bound,
// breakdown components summing to the finish, and ordered series
// aggregates. A report that validates can be consumed without re-running
// the schedule it describes.
func (r *Report) Validate() error {
	switch {
	case r.Version != Version:
		return fmt.Errorf("report: version %d, this reader understands %d", r.Version, Version)
	case r.Tool == "":
		return fmt.Errorf("report: missing tool")
	case r.Machine.P < 1:
		return fmt.Errorf("report: machine P = %d", r.Machine.P)
	case r.Machine.L < 1 || r.Machine.O < 0 || r.Machine.G < 0:
		return fmt.Errorf("report: implausible machine L=%d o=%d g=%d", r.Machine.L, r.Machine.O, r.Machine.G)
	case r.Finish < 0:
		return fmt.Errorf("report: negative finish %d", r.Finish)
	case r.Bound < -1:
		return fmt.Errorf("report: bound %d (want >= -1)", r.Bound)
	case r.Violations < 0:
		return fmt.Errorf("report: negative violation count %d", r.Violations)
	}
	if r.Bound >= 0 && r.Gap != r.Finish-r.Bound {
		return fmt.Errorf("report: gap %d != finish %d - bound %d", r.Gap, r.Finish, r.Bound)
	}
	if r.Bound < 0 && r.Gap != 0 {
		return fmt.Errorf("report: gap %d with no bound", r.Gap)
	}
	if r.Breakdown != nil && r.Breakdown.Total() != r.Finish {
		return fmt.Errorf("report: breakdown totals %d, finish %d", r.Breakdown.Total(), r.Finish)
	}
	if r.Stats != nil {
		st := r.Stats
		if st.Sends < 0 || st.Recvs < 0 || st.BusyCycles < 0 || st.MaxQueue < 0 {
			return fmt.Errorf("report: negative stats field")
		}
		if st.PortUtilFinish < 0 || st.PortUtilFinish > 1 {
			return fmt.Errorf("report: port utilization %g out of [0,1]", st.PortUtilFinish)
		}
		for _, q := range []Quantiles{st.ProcBusy, st.ProcIdle} {
			if q.Min > q.P50 || q.P50 > q.P90 || q.P90 > q.P99 || q.P99 > q.Max {
				return fmt.Errorf("report: disordered quantiles %+v", q)
			}
		}
	}
	for _, s := range r.Timeseries {
		switch {
		case s.Name == "":
			return fmt.Errorf("report: unnamed series")
		case s.Count < 0 || s.Points < 0:
			return fmt.Errorf("report: series %s has negative counts", s.Name)
		case s.Count > 0 && s.Min > s.Max:
			return fmt.Errorf("report: series %s min %d > max %d", s.Name, s.Min, s.Max)
		case s.Count > 0 && (s.First < s.Min || s.First > s.Max || s.Last < s.Min || s.Last > s.Max):
			return fmt.Errorf("report: series %s endpoints outside [min,max]", s.Name)
		}
	}
	return nil
}
