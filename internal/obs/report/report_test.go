package report

import (
	"bytes"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/schedule"
)

// buildReport assembles a fully-populated report from a real broadcast
// schedule, the way the CLI tools do.
func buildReport(t *testing.T) *Report {
	t.Helper()
	m := logp.MustNew(16, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	crep := causal.Analyze(s, core.Origins(0))

	r := New("logpsched", m)
	r.Op = "broadcast"
	r.Constructor = "search"
	r.SetOutcome(crep.Finish, crep.Finish) // optimal: bound met exactly
	r.SetCausal(crep)
	r.Stats = FromStats(schedule.ComputeStats(s, crep.Finish, nil))

	ts := timeseries.New(0)
	ts.Probe("events", func() int64 { return 7 })
	ts.Sample(1)
	ts.Sample(2)
	r.SetTimeseries(ts)
	return r
}

// TestRoundTrip: Write then Read returns an equivalent, valid document.
func TestRoundTrip(t *testing.T) {
	r := buildReport(t)
	var b bytes.Buffer
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(b.Bytes())
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, b.String())
	}
	if got.Finish != r.Finish || got.Gap != 0 || got.Breakdown == nil || got.Stats == nil {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Timeseries) != 1 || got.Timeseries[0].Name != "events" || got.Timeseries[0].Count != 2 {
		t.Fatalf("timeseries summary mangled: %+v", got.Timeseries)
	}
	if got.Breakdown.Total() != got.Finish {
		t.Fatalf("breakdown total %d != finish %d", got.Breakdown.Total(), got.Finish)
	}
}

// TestValidateRejects drives Validate and the strict decoder through the
// corruption cases the checker must catch.
func TestValidateRejects(t *testing.T) {
	base := func() []byte {
		var b bytes.Buffer
		if err := buildReport(t).Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := []struct {
		name    string
		mutate  func(*Report)
		raw     string // when set, decode this instead
		wantErr string
	}{
		{name: "version drift", mutate: func(r *Report) { r.Version = 2 }, wantErr: "version"},
		{name: "missing tool", mutate: func(r *Report) { r.Tool = "" }, wantErr: "tool"},
		{name: "bad machine", mutate: func(r *Report) { r.Machine.P = 0 }, wantErr: "machine P"},
		{name: "gap mismatch", mutate: func(r *Report) { r.Gap++ }, wantErr: "gap"},
		{name: "gap without bound", mutate: func(r *Report) { r.Bound = -1; r.Gap = 3 }, wantErr: "no bound"},
		{name: "breakdown mismatch", mutate: func(r *Report) { r.Breakdown.Wait++ }, wantErr: "breakdown"},
		{name: "util out of range", mutate: func(r *Report) { r.Stats.PortUtilFinish = 1.5 }, wantErr: "utilization"},
		{name: "disordered quantiles", mutate: func(r *Report) { r.Stats.ProcBusy.Min = r.Stats.ProcBusy.Max + 1 }, wantErr: "quantiles"},
		{name: "series min>max", mutate: func(r *Report) { r.Timeseries[0].Min = r.Timeseries[0].Max + 1 }, wantErr: "min"},
		{name: "unknown field", raw: strings.Replace(string(base()), `"version"`, `"surprise": 1, "version"`, 1), wantErr: "surprise"},
		{name: "not json", raw: "finish: 12\n", wantErr: "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.raw)
			if tc.mutate != nil {
				r, err := Read(base())
				if err != nil {
					t.Fatal(err)
				}
				tc.mutate(r)
				var b bytes.Buffer
				if err := r.Write(&b); err != nil {
					t.Fatal(err)
				}
				data = b.Bytes()
			}
			_, err := Read(data)
			if err == nil {
				t.Fatalf("corrupt report validated:\n%s", data)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestQuantiles pins the nearest-rank behavior.
func TestQuantiles(t *testing.T) {
	q := quantiles([]int64{5, 1, 9, 3, 7})
	if q.Min != 1 || q.Max != 9 || q.P50 != 5 {
		t.Fatalf("quantiles of 1..9: %+v", q)
	}
	if z := (quantiles(nil)); z != (Quantiles{}) {
		t.Fatalf("empty quantiles: %+v", z)
	}
	one := quantiles([]int64{4})
	if one.Min != 4 || one.P50 != 4 || one.P90 != 4 || one.P99 != 4 || one.Max != 4 {
		t.Fatalf("single-value quantiles: %+v", one)
	}
}

// TestQuantilesP99 is the regression test for the p99 rung: the report's
// quantile ladder must match what the metrics histograms expose
// (min/p50/p90/p99/max), computed nearest-rank and kept ordered by
// Validate. Before the fix Quantiles stopped at P90, so a report could not
// be compared against a /metrics summary at the tail.
func TestQuantilesP99(t *testing.T) {
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(i) // 0..199: p99 must land at the tail, beyond p90
	}
	q := quantiles(vals)
	if q.P99 != 197 {
		t.Fatalf("p99 of 0..199: got %d, want nearest-rank 197 (%+v)", q.P99, q)
	}
	if !(q.Min <= q.P50 && q.P50 <= q.P90 && q.P90 <= q.P99 && q.P99 <= q.Max) {
		t.Fatalf("quantile ladder disordered: %+v", q)
	}
	if q.P99 <= q.P90 {
		t.Fatalf("p99 %d does not separate from p90 %d on a 200-point tail", q.P99, q.P90)
	}

	// Validate enforces the new rung in both directions.
	r := buildReport(t)
	r.Stats.ProcBusy.P99 = r.Stats.ProcBusy.P90 - 1
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "quantiles") {
		t.Fatalf("Validate accepted p99 < p90: %v", err)
	}
	r = buildReport(t)
	r.Stats.ProcIdle.P99 = r.Stats.ProcIdle.Max + 1
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "quantiles") {
		t.Fatalf("Validate accepted p99 > max: %v", err)
	}
}

// TestReadStrictErrors pins the three decode failure modes to distinct,
// actionable messages: schema drift (an unknown top-level field), version
// drift, and a truncated document each tell the operator what happened and
// what to do about it.
func TestReadStrictErrors(t *testing.T) {
	var b bytes.Buffer
	if err := buildReport(t).Write(&b); err != nil {
		t.Fatal(err)
	}
	good := b.String()

	unknown := strings.Replace(good, `"version"`, `"surprise": 1, "version"`, 1)
	_, err := Read([]byte(unknown))
	if err == nil {
		t.Fatal("unknown top-level field decoded")
	}
	unknownMsg := err.Error()
	if !strings.Contains(unknownMsg, `"surprise"`) || !strings.Contains(unknownMsg, "newer tool") {
		t.Fatalf("unknown-field error does not name the field and the likely cause: %q", unknownMsg)
	}

	wrongVersion := strings.Replace(good, `"version": 1`, `"version": 99`, 1)
	_, err = Read([]byte(wrongVersion))
	if err == nil {
		t.Fatal("wrong version decoded")
	}
	versionMsg := err.Error()
	if !strings.Contains(versionMsg, "version 99") || !strings.Contains(versionMsg, "understands 1") {
		t.Fatalf("version error does not state both versions: %q", versionMsg)
	}

	truncated := good[:len(good)/2]
	_, err = Read([]byte(truncated))
	if err == nil {
		t.Fatal("truncated document decoded")
	}
	truncMsg := err.Error()
	if !strings.Contains(truncMsg, "truncated") {
		t.Fatalf("truncation error not actionable: %q", truncMsg)
	}
	if _, err := Read(nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("empty document error not actionable: %v", err)
	}

	// The three messages must be mutually distinct — an operator seeing one
	// should never mistake it for another failure mode.
	for name, pair := range map[string][2]string{
		"unknown vs version":   {unknownMsg, versionMsg},
		"unknown vs truncated": {unknownMsg, truncMsg},
		"version vs truncated": {versionMsg, truncMsg},
	} {
		if pair[0] == pair[1] {
			t.Errorf("%s: identical error %q", name, pair[0])
		}
	}
}
