package report

import (
	"bytes"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/schedule"
)

// buildReport assembles a fully-populated report from a real broadcast
// schedule, the way the CLI tools do.
func buildReport(t *testing.T) *Report {
	t.Helper()
	m := logp.MustNew(16, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	crep := causal.Analyze(s, core.Origins(0))

	r := New("logpsched", m)
	r.Op = "broadcast"
	r.Constructor = "search"
	r.SetOutcome(crep.Finish, crep.Finish) // optimal: bound met exactly
	r.SetCausal(crep)
	r.Stats = FromStats(schedule.ComputeStats(s, crep.Finish, nil))

	ts := timeseries.New(0)
	ts.Probe("events", func() int64 { return 7 })
	ts.Sample(1)
	ts.Sample(2)
	r.SetTimeseries(ts)
	return r
}

// TestRoundTrip: Write then Read returns an equivalent, valid document.
func TestRoundTrip(t *testing.T) {
	r := buildReport(t)
	var b bytes.Buffer
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(b.Bytes())
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, b.String())
	}
	if got.Finish != r.Finish || got.Gap != 0 || got.Breakdown == nil || got.Stats == nil {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Timeseries) != 1 || got.Timeseries[0].Name != "events" || got.Timeseries[0].Count != 2 {
		t.Fatalf("timeseries summary mangled: %+v", got.Timeseries)
	}
	if got.Breakdown.Total() != got.Finish {
		t.Fatalf("breakdown total %d != finish %d", got.Breakdown.Total(), got.Finish)
	}
}

// TestValidateRejects drives Validate and the strict decoder through the
// corruption cases the checker must catch.
func TestValidateRejects(t *testing.T) {
	base := func() []byte {
		var b bytes.Buffer
		if err := buildReport(t).Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := []struct {
		name    string
		mutate  func(*Report)
		raw     string // when set, decode this instead
		wantErr string
	}{
		{name: "version drift", mutate: func(r *Report) { r.Version = 2 }, wantErr: "version"},
		{name: "missing tool", mutate: func(r *Report) { r.Tool = "" }, wantErr: "tool"},
		{name: "bad machine", mutate: func(r *Report) { r.Machine.P = 0 }, wantErr: "machine P"},
		{name: "gap mismatch", mutate: func(r *Report) { r.Gap++ }, wantErr: "gap"},
		{name: "gap without bound", mutate: func(r *Report) { r.Bound = -1; r.Gap = 3 }, wantErr: "no bound"},
		{name: "breakdown mismatch", mutate: func(r *Report) { r.Breakdown.Wait++ }, wantErr: "breakdown"},
		{name: "util out of range", mutate: func(r *Report) { r.Stats.PortUtilFinish = 1.5 }, wantErr: "utilization"},
		{name: "disordered quantiles", mutate: func(r *Report) { r.Stats.ProcBusy.Min = r.Stats.ProcBusy.Max + 1 }, wantErr: "quantiles"},
		{name: "series min>max", mutate: func(r *Report) { r.Timeseries[0].Min = r.Timeseries[0].Max + 1 }, wantErr: "min"},
		{name: "unknown field", raw: strings.Replace(string(base()), `"version"`, `"surprise": 1, "version"`, 1), wantErr: "surprise"},
		{name: "not json", raw: "finish: 12\n", wantErr: "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.raw)
			if tc.mutate != nil {
				r, err := Read(base())
				if err != nil {
					t.Fatal(err)
				}
				tc.mutate(r)
				var b bytes.Buffer
				if err := r.Write(&b); err != nil {
					t.Fatal(err)
				}
				data = b.Bytes()
			}
			_, err := Read(data)
			if err == nil {
				t.Fatalf("corrupt report validated:\n%s", data)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestQuantiles pins the nearest-rank behavior.
func TestQuantiles(t *testing.T) {
	q := quantiles([]int64{5, 1, 9, 3, 7})
	if q.Min != 1 || q.Max != 9 || q.P50 != 5 {
		t.Fatalf("quantiles of 1..9: %+v", q)
	}
	if z := (quantiles(nil)); z != (Quantiles{}) {
		t.Fatalf("empty quantiles: %+v", z)
	}
	one := quantiles([]int64{4})
	if one.Min != 4 || one.P50 != 4 || one.P90 != 4 || one.Max != 4 {
		t.Fatalf("single-value quantiles: %+v", one)
	}
}
