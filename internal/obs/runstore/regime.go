// Regime maps: fold a store of archived runs into one picture over the
// machine parameters. Every key's latest run is a measurement; grouping
// them by machine and keeping the winner per machine gives the regime
// table ("on this (P, L, o, g), this algorithm is best, it misses the
// closed-form bound by this gap, and this constraint class dominates its
// critical path") that PAPERS.md's cluster-tuning line of work builds
// decision layers on.

package runstore

import (
	"fmt"
	"sort"
	"strings"

	"logpopt/internal/obs/report"
)

// Cell is one machine's row of the regime table.
type Cell struct {
	Machine report.Machine
	Best    Entry   // latest run of the key with the smallest finish
	Entries []Entry // latest run of every key on this machine, finish order
}

// BestOp names the winning algorithm: the op, qualified by its constructor
// when one was recorded.
func (c Cell) BestOp() string {
	if c.Best.Key.Constructor != "" {
		return c.Best.Key.Op + "/" + c.Best.Key.Constructor
	}
	return c.Best.Key.Op
}

// Regimes folds the store into its regime table: one cell per distinct
// machine, carrying the latest run of every key measured there, with the
// smallest-finish run as the cell's winner (ties to the lexically first
// key, so the table is deterministic). Cells are sorted by (P, L, o, g).
func (s *Store) Regimes() []Cell {
	byMachine := map[report.Machine]*Cell{}
	for _, k := range s.Keys() {
		e, ok := s.Latest(k)
		if !ok {
			continue
		}
		c := byMachine[k.Machine]
		if c == nil {
			c = &Cell{Machine: k.Machine, Best: e}
			byMachine[k.Machine] = c
		}
		c.Entries = append(c.Entries, e)
		if e.Finish < c.Best.Finish {
			c.Best = e
		}
	}
	out := make([]Cell, 0, len(byMachine))
	for _, c := range byMachine {
		sort.Slice(c.Entries, func(i, j int) bool {
			a, b := c.Entries[i], c.Entries[j]
			if a.Finish != b.Finish {
				return a.Finish < b.Finish
			}
			return a.Key.String() < b.Key.String()
		})
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Machine, out[j].Machine
		switch {
		case a.P != b.P:
			return a.P < b.P
		case a.L != b.L:
			return a.L < b.L
		case a.O != b.O:
			return a.O < b.O
		}
		return a.G < b.G
	})
	return out
}

// heatColor maps gap/maxGap to a fill: green at 0 through yellow to red at
// the worst observed gap. Deterministic, no external palette.
func heatColor(gap, maxGap int64) string {
	if gap <= 0 {
		return "#2f9e44"
	}
	f := float64(gap) / float64(maxGap)
	if f > 1 {
		f = 1
	}
	// 0 -> green(47,158,68), 0.5 -> yellow(230,190,60), 1 -> red(201,42,42)
	lerp := func(a, b float64, t float64) int { return int(a + (b-a)*t + 0.5) }
	var r, g, b int
	if f < 0.5 {
		t := f / 0.5
		r, g, b = lerp(47, 230, t), lerp(158, 190, t), lerp(68, 60, t)
	} else {
		t := (f - 0.5) / 0.5
		r, g, b = lerp(230, 201, t), lerp(190, 42, t), lerp(60, 42, t)
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// RegimeSVG renders cells as a P (columns) by L (rows) heatmap colored by
// the winning run's gap to its closed-form bound. Machines that share a
// (P, L) pair but differ in o or g stack as extra rows labeled with the
// full parameter set. Each cell carries machine-readable data-p / data-l /
// data-o / data-g / data-gap / data-op / data-dominant attributes, so the
// rendering doubles as the regime table for tools scraping /regimes.
func RegimeSVG(cells []Cell) string {
	type rowKey struct{ L, O, G int64 }
	type pos struct {
		p  int
		rk rowKey
	}
	psSet, rowSet := map[int]bool{}, map[rowKey]bool{}
	byPos := map[pos]Cell{}
	maxGap := int64(0)
	for _, c := range cells {
		m := c.Machine
		rk := rowKey{m.L, m.O, m.G}
		psSet[m.P] = true
		rowSet[rk] = true
		byPos[pos{m.P, rk}] = c
		if c.Best.Gap > maxGap {
			maxGap = c.Best.Gap
		}
	}
	ps := make([]int, 0, len(psSet))
	for p := range psSet {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	rows := make([]rowKey, 0, len(rowSet))
	for rk := range rowSet {
		rows = append(rows, rk)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		switch {
		case a.L != b.L:
			return a.L < b.L
		case a.O != b.O:
			return a.O < b.O
		}
		return a.G < b.G
	})

	const (
		cw, ch    = 104, 46 // cell size
		left, top = 120, 54 // axis gutters
		pad       = 10
		fontCell  = 11
		fontAxis  = 12
		fontTitle = 13
	)
	w := left + cw*len(ps) + pad
	h := top + ch*len(rows) + pad

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="%d">regime map: best algorithm and gap to the closed-form bound per machine</text>`+"\n", pad, fontTitle)
	for i, p := range ps {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" text-anchor="middle">P=%d</text>`+"\n",
			left+i*cw+cw/2, top-10, fontAxis, p)
	}
	for j, rk := range rows {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" text-anchor="end">L=%d o=%d g=%d</text>`+"\n",
			left-8, top+j*ch+ch/2+4, fontAxis, rk.L, rk.O, rk.G)
	}
	for j, rk := range rows {
		for i, p := range ps {
			c, ok := byPos[pos{p, rk}]
			x, y := left+i*cw, top+j*ch
			if !ok {
				fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f1f3f5" stroke="#dee2e6"/>`+"\n",
					x, y, cw-2, ch-2)
				continue
			}
			e := c.Best
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#495057" data-p="%d" data-l="%d" data-o="%d" data-g="%d" data-gap="%d" data-op="%s" data-dominant="%s"/>`+"\n",
				x, y, cw-2, ch-2, heatColor(e.Gap, maxGap),
				c.Machine.P, c.Machine.L, c.Machine.O, c.Machine.G,
				e.Gap, xmlEscape(c.BestOp()), xmlEscape(e.Dominant))
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#ffffff">%s</text>`+"\n",
				x+5, y+16, fontCell, xmlEscape(clip(c.BestOp(), 14)))
			sub := fmt.Sprintf("gap %d", e.Gap)
			if e.Dominant != "" {
				sub += " · " + e.Dominant
			}
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#ffffff">%s</text>`+"\n",
				x+5, y+32, fontCell, xmlEscape(clip(sub, 16)))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// clip shortens s to at most n runes, ending in an ellipsis. Clipping by
// runes, not bytes, keeps a multi-byte character from being split in half —
// a byte-sliced label would embed invalid UTF-8 in the SVG document.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	runes := []rune(s)
	if len(runes) <= n {
		return s
	}
	return string(runes[:n-1]) + "…"
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
