package runstore

import (
	"strings"
	"testing"
	"unicode/utf8"

	"logpopt/internal/obs/report"
)

// TestClipRuneSafe: clip counts runes, not bytes — a label full of
// multi-byte characters must never be cut mid-rune, which would embed
// invalid UTF-8 in the regime SVG.
func TestClipRuneSafe(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"short", 14, "short"},
		{"exactly-14-ch.", 14, "exactly-14-ch."},
		{"this-is-longer-than-fourteen", 14, "this-is-longe…"},
		// 16 bytes of two-byte runes: byte-slicing at 13 would split µ.
		{"µµµµµµµµ", 6, "µµµµµ…"},
		// Mixed widths around the cut point.
		{"aµbµcµdµeµfµgµh", 8, "aµbµcµd…"},
		{"", 6, ""},
	}
	for _, tc := range cases {
		got := clip(tc.in, tc.n)
		if got != tc.want {
			t.Errorf("clip(%q, %d) = %q, want %q", tc.in, tc.n, got, tc.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("clip(%q, %d) = %q is not valid UTF-8", tc.in, tc.n, got)
		}
		if utf8.RuneCountInString(got) > tc.n {
			t.Errorf("clip(%q, %d) = %q has %d runes", tc.in, tc.n, got, utf8.RuneCountInString(got))
		}
	}
}

// TestRegimeSVGValidUTF8WithWideOps: an op name of multi-byte runes flows
// through clip into the SVG; the document must stay valid UTF-8 end to end.
func TestRegimeSVGValidUTF8WithWideOps(t *testing.T) {
	e := Entry{
		Key: Key{Tool: "test", Op: "бродкастбродкаст",
			Machine: report.Machine{P: 8, L: 6, O: 2, G: 4}},
		Seq: 1, Finish: 24, Bound: 24,
	}
	cells := []Cell{{Machine: e.Key.Machine, Best: e, Entries: []Entry{e}}}
	svg := RegimeSVG(cells)
	if !utf8.ValidString(svg) {
		t.Fatal("RegimeSVG produced invalid UTF-8")
	}
	if !strings.Contains(svg, "…") {
		t.Fatal("long multi-byte op name was not clipped with an ellipsis")
	}
}
