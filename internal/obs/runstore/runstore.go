// Package runstore is the persistent, append-only archive of run reports
// (internal/obs/report): every report a tool emits with -runstore lands in
// a directory keyed by its canonical (tool, op, constructor, machine)
// identity, numbered in arrival order and never overwritten. The store is
// the substrate for cross-run comparison — cmd/reportdiff gates the latest
// run of each key against its predecessor or against another store, and
// the telemetry server's /regimes view folds a whole store into a regime
// map over the machine parameters.
//
// Layout on disk: one subdirectory per key, named by a readable slug plus
// the first 12 hex digits of the SHA-256 of the canonical key string
// (content addressing: the same identity always lands in the same place,
// and two identities never collide on a sanitized slug), holding
// run-000001.json, run-000002.json, ... in arrival order.
//
// Loads are strict: every artifact is decoded through report.Read (unknown
// fields rejected, cross-field invariants enforced) and its derived key
// must match the directory it sits in, so a store that opens cleanly only
// contains trustworthy, correctly-filed reports. The in-memory index is
// bounded — at most HistoryCap summary entries per key, a few dozen bytes
// each — however many artifacts accumulate on disk.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"logpopt/internal/obs/report"
)

// HistoryCap bounds the per-key in-memory index: only the most recent
// HistoryCap runs of a key keep summary entries in memory. Older artifacts
// stay on disk and remain loadable by name; they just drop out of
// History/Latest, which only ever look at the recent past anyway.
const HistoryCap = 128

// Key is the canonical identity reports are archived under: two reports
// share a key exactly when they describe the same operation, built the
// same way, on the same machine — the precondition for a meaningful diff.
type Key struct {
	Tool        string
	Op          string
	Constructor string
	Machine     report.Machine
}

// KeyOf derives the archive key of a report.
func KeyOf(r *report.Report) Key {
	return Key{Tool: r.Tool, Op: r.Op, Constructor: r.Constructor, Machine: r.Machine}
}

// String is the canonical key form the content address is derived from.
func (k Key) String() string {
	return fmt.Sprintf("tool=%s op=%s ctor=%s P=%d L=%d o=%d g=%d",
		k.Tool, k.Op, k.Constructor, k.Machine.P, k.Machine.L, k.Machine.O, k.Machine.G)
}

// slug folds s into a filesystem- and URL-safe fragment: letters, digits,
// dots, underscores and dashes survive, everything else (op names like
// "conform/paper.bcast" carry slashes) becomes a dash.
func slug(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	const maxSlug = 40
	if len(b) > maxSlug {
		b = b[:maxSlug]
	}
	return string(b)
}

// Dir is the key's directory name inside the store: a human-readable slug
// of the op and machine plus a 12-hex-digit content hash of the full
// canonical string. The hash carries the identity (tool and constructor
// included); the slug is only for humans listing the directory.
func (k Key) Dir() string {
	sum := sha256.Sum256([]byte(k.String()))
	return fmt.Sprintf("%s-P%d-L%d-o%d-g%d-%s",
		slug(k.Op), k.Machine.P, k.Machine.L, k.Machine.O, k.Machine.G,
		hex.EncodeToString(sum[:6]))
}

// Entry is one archived run's index record: the summary fields diffing and
// the regime map need, without holding the report itself in memory.
type Entry struct {
	Key        Key
	Seq        int // arrival order within the key, starting at 1
	Finish     int64
	Bound      int64
	Gap        int64
	Violations int
	Dominant   string // largest causal-breakdown component; "" without one
}

// Name is the entry's store-wide handle, "<keydir>@<seq>" — stable across
// processes, safe as a URL path segment, resolvable by Store.Get.
func (e Entry) Name() string {
	return fmt.Sprintf("%s@%d", e.Key.Dir(), e.Seq)
}

// dominant names the largest breakdown component (ties to the earlier
// component in L,o,g,compute,origin,wait order, matching the analyzer's
// presentation order).
func dominant(b *report.Breakdown) string {
	if b == nil {
		return ""
	}
	names := []string{"latency", "overhead", "gap", "compute", "origin", "wait"}
	vals := []int64{b.Latency, b.Overhead, b.Gap, b.Compute, b.Origin, b.Wait}
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return names[best]
}

func entryOf(k Key, seq int, r *report.Report) Entry {
	return Entry{
		Key: k, Seq: seq,
		Finish: r.Finish, Bound: r.Bound, Gap: r.Gap,
		Violations: r.Violations,
		Dominant:   dominant(r.Breakdown),
	}
}

// history is one key's bounded index: the most recent entries in ascending
// sequence order, plus the total ever filed so Put numbers correctly even
// after eviction.
type history struct {
	key     Key
	entries []Entry
	maxSeq  int
}

func (h *history) add(e Entry) {
	if e.Seq > h.maxSeq {
		h.maxSeq = e.Seq
	}
	h.entries = append(h.entries, e)
	sort.Slice(h.entries, func(i, j int) bool { return h.entries[i].Seq < h.entries[j].Seq })
	if len(h.entries) > HistoryCap {
		h.entries = h.entries[len(h.entries)-HistoryCap:]
	}
}

// Store is an opened run store. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	byKey map[string]*history // canonical key string -> bounded history
	dirs  map[string]string   // key dir name -> canonical key string
}

// seqFile renders the artifact filename for a sequence number.
func seqFile(seq int) string { return fmt.Sprintf("run-%06d.json", seq) }

// parseSeq inverts seqFile; ok is false for foreign files.
func parseSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "run-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "run-"), ".json"))
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the store rooted at dir and indexes every
// artifact already there. Every existing report is strictly decoded and
// must sit in the directory its own identity hashes to; any corrupt,
// drifted, or misfiled artifact fails the open with the offending path, so
// a store that opens is trustworthy end to end.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{dir: dir, byKey: map[string]*history{}, dirs: map[string]string{}}
	keyDirs, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	for _, kd := range keyDirs {
		if !kd.IsDir() {
			continue // stray file at the top level; not ours to judge
		}
		files, err := os.ReadDir(filepath.Join(dir, kd.Name()))
		if err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
		for _, f := range files {
			seq, ok := parseSeq(f.Name())
			if !ok {
				continue
			}
			path := filepath.Join(dir, kd.Name(), f.Name())
			r, err := report.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("runstore: %s: %w", path, err)
			}
			k := KeyOf(r)
			if k.Dir() != kd.Name() {
				return nil, fmt.Errorf("runstore: %s: report identity %s belongs in %s, not %s (misfiled or hand-edited artifact)",
					path, k, k.Dir(), kd.Name())
			}
			s.insert(k, entryOf(k, seq, r))
		}
	}
	return s, nil
}

// insert files e under its key; the caller holds no lock.
func (s *Store) insert(k Key, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := k.String()
	h := s.byKey[ks]
	if h == nil {
		h = &history{key: k}
		s.byKey[ks] = h
		s.dirs[k.Dir()] = ks
	}
	h.add(e)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Put validates r and appends it to the store under its derived key,
// returning the new entry. Artifacts are written whole to a temporary file
// and renamed into place, so a crashed writer never leaves a partial
// report where Open would trip over it. Existing runs are never touched.
func (s *Store) Put(r *report.Report) (Entry, error) {
	if err := r.Validate(); err != nil {
		return Entry{}, fmt.Errorf("runstore: refusing to archive: %w", err)
	}
	k := KeyOf(r)
	kdir := filepath.Join(s.dir, k.Dir())
	if err := os.MkdirAll(kdir, 0o755); err != nil {
		return Entry{}, fmt.Errorf("runstore: %w", err)
	}

	// Serialize appends per store: the next sequence number comes from the
	// directory itself (not just the bounded index), so concurrent tools
	// sharing a store via separate Store values still interleave safely
	// enough for our single-writer-per-process tools.
	s.mu.Lock()
	defer s.mu.Unlock()
	maxSeq := 0
	if h := s.byKey[k.String()]; h != nil {
		maxSeq = h.maxSeq
	}
	files, err := os.ReadDir(kdir)
	if err != nil {
		return Entry{}, fmt.Errorf("runstore: %w", err)
	}
	for _, f := range files {
		if seq, ok := parseSeq(f.Name()); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	seq := maxSeq + 1

	tmp, err := os.CreateTemp(kdir, ".put-*")
	if err != nil {
		return Entry{}, fmt.Errorf("runstore: %w", err)
	}
	werr := r.Write(tmp)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(kdir, seqFile(seq)))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return Entry{}, fmt.Errorf("runstore: %w", werr)
	}

	e := entryOf(k, seq, r)
	ks := k.String()
	h := s.byKey[ks]
	if h == nil {
		h = &history{key: k}
		s.byKey[ks] = h
		s.dirs[k.Dir()] = ks
	}
	h.add(e)
	return e, nil
}

// Keys returns every key in the store, sorted by canonical string.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.byKey))
	for _, h := range s.byKey {
		out = append(out, h.key)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// History returns the indexed runs of k, oldest first (at most HistoryCap).
func (s *Store) History(k Key) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.byKey[k.String()]
	if h == nil {
		return nil
	}
	return append([]Entry(nil), h.entries...)
}

// Latest returns the most recent run of k.
func (s *Store) Latest(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.byKey[k.String()]
	if h == nil || len(h.entries) == 0 {
		return Entry{}, false
	}
	return h.entries[len(h.entries)-1], true
}

// Len is the number of indexed runs across all keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.byKey {
		n += len(h.entries)
	}
	return n
}

// Entries returns every indexed run, sorted by key then sequence.
func (s *Store) Entries() []Entry {
	var out []Entry
	for _, k := range s.Keys() {
		out = append(out, s.History(k)...)
	}
	return out
}

// Path is the artifact file behind e.
func (s *Store) Path(e Entry) string {
	return filepath.Join(s.dir, e.Key.Dir(), seqFile(e.Seq))
}

// Load reads and strictly re-validates the full report behind e, checking
// that the artifact on disk still carries the identity it was indexed
// under.
func (s *Store) Load(e Entry) (*report.Report, error) {
	r, err := report.ReadFile(s.Path(e))
	if err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", s.Path(e), err)
	}
	if KeyOf(r) != e.Key {
		return nil, fmt.Errorf("runstore: %s: identity changed on disk (now %s, indexed as %s)",
			s.Path(e), KeyOf(r), e.Key)
	}
	return r, nil
}

// Get resolves an entry name ("<keydir>@<seq>", as produced by Entry.Name)
// to its strictly-decoded report. Only directories the index knows about
// are consulted, so a hostile name can never escape the store root.
func (s *Store) Get(name string) (*report.Report, error) {
	at := strings.LastIndex(name, "@")
	if at < 0 {
		return nil, fmt.Errorf("runstore: malformed run name %q (want <key>@<seq>)", name)
	}
	kdir, seqs := name[:at], name[at+1:]
	seq, err := strconv.Atoi(seqs)
	if err != nil || seq < 1 {
		return nil, fmt.Errorf("runstore: malformed run sequence in %q", name)
	}
	s.mu.Lock()
	ks, ok := s.dirs[kdir]
	var k Key
	if ok {
		k = s.byKey[ks].key
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("runstore: no such key %q", kdir)
	}
	r, err := report.ReadFile(filepath.Join(s.dir, kdir, seqFile(seq)))
	if err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", name, err)
	}
	if KeyOf(r) != k {
		return nil, fmt.Errorf("runstore: %s: identity changed on disk", name)
	}
	return r, nil
}
