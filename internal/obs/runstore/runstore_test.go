// External test package: the acceptance sweep builds reports through
// cliutil.BuildReport — the exact production path behind -runstore — and
// cliutil imports runstore, so the tests live outside the package to keep
// the import graph acyclic.
package runstore_test

import (
	"encoding/xml"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logpopt/internal/baseline"
	"logpopt/internal/cliutil"
	"logpopt/internal/conform"
	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
)

// minimalReport builds a small valid report by hand (no replay) for tests
// that only exercise store mechanics.
func minimalReport(tool, op string, finish int64) *report.Report {
	r := report.New(tool, logp.MustNew(8, 6, 2, 4))
	r.Op = op
	r.SetOutcome(logp.Time(finish), -1)
	return r
}

func TestPutLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := st.Put(minimalReport("logpsched", "broadcast", 22))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := st.Put(minimalReport("logpsched", "broadcast", 22))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seq != 1 || e2.Seq != 2 || e1.Key != e2.Key {
		t.Fatalf("append sequence wrong: %+v then %+v", e1, e2)
	}
	if got := len(st.Keys()); got != 1 {
		t.Fatalf("keys: %d, want 1", got)
	}
	if h := st.History(e1.Key); len(h) != 2 || h[0].Seq != 1 || h[1].Seq != 2 {
		t.Fatalf("history: %+v", h)
	}
	if latest, ok := st.Latest(e1.Key); !ok || latest.Seq != 2 {
		t.Fatalf("latest: %+v %v", latest, ok)
	}
	r, err := st.Load(e1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Finish != 22 {
		t.Fatalf("loaded finish %d", r.Finish)
	}

	// Entry names resolve through Get, and survive a reopen.
	if !strings.Contains(e2.Name(), "@2") {
		t.Fatalf("entry name %q", e2.Name())
	}
	if _, err := st.Get(e2.Name()); err != nil {
		t.Fatalf("Get(%q): %v", e2.Name(), err)
	}
	st2, err := runstore.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st2.Len() != 2 {
		t.Fatalf("reopened store indexes %d runs, want 2", st2.Len())
	}
	if _, err := st2.Get(e1.Name()); err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
}

// TestAppendOnlyAcrossProcesses: a second Store value over the same
// directory (a later tool invocation) continues the sequence instead of
// overwriting, and never mutates existing artifacts.
func TestAppendOnlyAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	st1, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := st1.Put(minimalReport("logpsched", "scatter", 30))
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(st1.Path(e1))
	if err != nil {
		t.Fatal(err)
	}

	st2, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := st2.Put(minimalReport("logpsched", "scatter", 31))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Seq != 2 {
		t.Fatalf("second process got seq %d, want 2", e2.Seq)
	}
	after, err := os.ReadFile(st1.Path(e1))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("existing artifact mutated by a later append")
	}
}

// TestOpenStrict: a corrupt or misfiled artifact fails Open with the path.
func TestOpenStrict(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.Put(minimalReport("logpsched", "broadcast", 22))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated artifact", func(t *testing.T) {
		bad := filepath.Join(dir, e.Key.Dir(), "run-000002.json")
		data, rerr := os.ReadFile(st.Path(e))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if werr := os.WriteFile(bad, data[:len(data)/2], 0o644); werr != nil {
			t.Fatal(werr)
		}
		defer os.Remove(bad)
		if _, oerr := runstore.Open(dir); oerr == nil || !strings.Contains(oerr.Error(), "run-000002.json") {
			t.Fatalf("open over truncated artifact: %v", oerr)
		}
	})

	t.Run("misfiled artifact", func(t *testing.T) {
		wrong := filepath.Join(dir, "imposter-P9-L9-o9-g9-000000000000")
		if merr := os.MkdirAll(wrong, 0o755); merr != nil {
			t.Fatal(merr)
		}
		defer os.RemoveAll(wrong)
		data, rerr := os.ReadFile(st.Path(e))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if werr := os.WriteFile(filepath.Join(wrong, "run-000001.json"), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		if _, oerr := runstore.Open(dir); oerr == nil || !strings.Contains(oerr.Error(), "misfiled") {
			t.Fatalf("open over misfiled artifact: %v", oerr)
		}
	})

	t.Run("invalid report refused at Put", func(t *testing.T) {
		r := minimalReport("", "broadcast", 22) // missing tool
		if _, perr := st.Put(r); perr == nil {
			t.Fatal("Put archived an invalid report")
		}
	})
}

// TestIndexMemoryBound: the on-disk archive grows without limit, the
// in-memory index does not — and evicted runs stay loadable by name.
func TestIndexMemoryBound(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = runstore.HistoryCap + 7
	var first runstore.Entry
	for i := 0; i < n; i++ {
		e, perr := st.Put(minimalReport("logpsched", "gather", 40))
		if perr != nil {
			t.Fatal(perr)
		}
		if i == 0 {
			first = e
		}
	}
	k := first.Key
	if h := st.History(k); len(h) != runstore.HistoryCap {
		t.Fatalf("index holds %d entries, want the %d-entry bound", len(h), runstore.HistoryCap)
	} else if h[0].Seq != n-runstore.HistoryCap+1 {
		t.Fatalf("bounded index kept oldest seq %d, want most recent window", h[0].Seq)
	}
	if latest, ok := st.Latest(k); !ok || latest.Seq != n {
		t.Fatalf("latest after eviction: %+v", latest)
	}
	// Evicted from the index, still on disk and loadable by name.
	if _, gerr := st.Get(first.Name()); gerr != nil {
		t.Fatalf("evicted run unreachable: %v", gerr)
	}
	files, err := os.ReadDir(filepath.Join(dir, k.Dir()))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != n {
		t.Fatalf("%d artifacts on disk, want %d", len(files), n)
	}

	// A reopen honors the same bound.
	st2, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h := st2.History(k); len(h) != runstore.HistoryCap {
		t.Fatalf("reopened index holds %d entries", len(h))
	}
}

// TestHostileNames: slashed op names sanitize into flat directory names,
// and Get cannot be steered outside the store.
func TestHostileNames(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.Put(minimalReport("logpconform", "diverged/gen-17..burst", 50))
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(e.Key.Dir(), "/\\") {
		t.Fatalf("key dir %q contains a separator", e.Key.Dir())
	}
	if _, err := st.Get(e.Name()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "noseq", "@1", "../../etc/passwd@1", e.Key.Dir() + "@0", e.Key.Dir() + "@x"} {
		if _, gerr := st.Get(name); gerr == nil {
			t.Errorf("Get(%q) resolved", name)
		}
	}
}

// sweepMachines is the acceptance sweep: 5 x 4 = 20 distinct machines,
// Figure 1's canonical (8, 6, 2, 4) among them.
func sweepMachines() []logp.Machine {
	var ms []logp.Machine
	for _, p := range []int{2, 4, 8, 16, 32} {
		for _, l := range []int64{2, 4, 6, 8} {
			ms = append(ms, logp.MustNew(p, logp.Time(l), 2, 4))
		}
	}
	return ms
}

// TestRegimesMatchCausalAnalyzer is the sweep-level acceptance check: a
// 20-cell broadcast sweep (optimal tree plus the linear baseline per
// machine) folds into one regime cell per machine, the winning algorithm
// is the optimal broadcast everywhere, and every cell's gap equals what
// the causal analyzer reports for that machine — 0 on all paper-figure
// cells, since the optimal tree meets its own bound exactly.
func TestRegimesMatchCausalAnalyzer(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wantGap := map[report.Machine]int64{}
	for _, m := range sweepMachines() {
		bound := core.OptimalTree(m, m.P).MaxLabel()

		s := core.BroadcastSchedule(m, 0)
		r := cliutil.BuildReport("logpsched", "broadcast", s, core.Origins(0), bound, nil)
		r.Constructor = "search"
		if _, perr := st.Put(r); perr != nil {
			t.Fatal(perr)
		}
		// The independent reference: the analyzer's finish against the same
		// closed-form bound.
		crep := causal.Analyze(s, core.Origins(0))
		wantGap[runstore.KeyOf(r).Machine] = int64(crep.Finish - bound)

		// A competing algorithm on the same machine: the linear chain can
		// only tie (P=2) or lose to the optimal tree, and on a tie the
		// deterministic lexical tie-break still favors "broadcast".
		bs, berr := baseline.Schedule(baseline.LinearTree(m, m.P), 0)
		if berr != nil {
			t.Fatal(berr)
		}
		br := cliutil.BuildReport("logpsched", "linear", bs, conform.DerivedOrigins(bs), bound, nil)
		if _, perr := st.Put(br); perr != nil {
			t.Fatal(perr)
		}
	}

	cells := st.Regimes()
	if len(cells) != 20 {
		t.Fatalf("regime table has %d cells, want 20", len(cells))
	}
	for _, c := range cells {
		if c.Best.Key.Op != "broadcast" {
			t.Errorf("cell %+v: best algorithm %q, want the optimal broadcast (finish %d vs %+v)",
				c.Machine, c.Best.Key.Op, c.Best.Finish, c.Entries)
		}
		if want := wantGap[c.Machine]; c.Best.Gap != want {
			t.Errorf("cell %+v: gap %d, causal analyzer says %d", c.Machine, c.Best.Gap, want)
		}
		if c.Best.Gap != 0 {
			t.Errorf("cell %+v: optimal broadcast misses its own bound by %d", c.Machine, c.Best.Gap)
		}
		if len(c.Entries) != 2 {
			t.Errorf("cell %+v: %d entries, want broadcast + linear", c.Machine, len(c.Entries))
		}
	}

	svg := runstore.RegimeSVG(cells)
	if got := strings.Count(svg, `data-gap="0"`); got != 20 {
		t.Fatalf("heatmap carries %d zero-gap cells, want 20", got)
	}
	if !strings.Contains(svg, `data-op="broadcast/search"`) {
		t.Fatal("heatmap cells do not name the winning algorithm")
	}
	// The SVG must be well-formed XML (the repo-wide renderer contract).
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, terr := dec.Token()
		if errors.Is(terr, io.EOF) {
			break
		}
		if terr != nil {
			t.Fatalf("regime SVG is not well-formed XML: %v", terr)
		}
	}
}
