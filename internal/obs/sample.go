package obs

// Trace sampling. A full simulator trace records a handful of events per
// processor, which is perfect at P = 10^3 and ruinous at P = 10^6 (tens of
// millions of JSON records). A Sampler is a per-pid keep/drop policy applied
// as events are recorded, before encoding, so a sampled streaming trace
// never materialises the dropped events at all.
//
// The policy is deterministic: thread selection hashes the tid with a fixed
// seed (splitmix64), so the same configuration always keeps the same
// processors and two runs of the same schedule produce byte-identical
// sampled traces. At Every <= 1 and CounterEvery <= 1 the sampler keeps
// everything — the output is byte-identical to running with no sampler,
// because filtering only ever drops records and never reorders or rewrites
// them.

// Sampler selects which trace events on one pid survive recording.
// The zero value keeps everything.
type Sampler struct {
	// Every keeps spans, instants and thread_name metas for roughly one in
	// Every threads: a tid survives when Keep[tid] is set or when
	// splitmix64(Seed ^ tid) mod Every == 0. Values <= 1 keep every thread.
	Every uint64
	// Seed perturbs the thread hash so repeated studies can sample
	// different processor subsets while each stays deterministic.
	Seed uint64
	// Keep lists tids that always survive regardless of Every — rank 0,
	// the critical-path processors, the engine track.
	Keep map[int]bool
	// CounterEvery keeps one in CounterEvery counter events per counter
	// name (counters are per-pid graphs, not per-thread, so Every does not
	// apply to them). Values <= 1 keep every counter sample.
	CounterEvery uint64
}

// samplerState is a Sampler bound to a tracer: the policy plus the per-name
// modulo positions for counter thinning. Guarded by the tracer's mu.
type samplerState struct {
	pol    Sampler
	counts map[string]uint64
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed 64-bit hash
// used to pick the sampled thread subset. Fixed constants, no global state,
// identical across runs and platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (st *samplerState) keepTid(tid int) bool {
	if st.pol.Keep[tid] {
		return true
	}
	if st.pol.Every <= 1 {
		return true
	}
	return splitmix64(st.pol.Seed^uint64(int64(tid)))%st.pol.Every == 0
}

// keep decides one event's fate. Caller holds the tracer's mu.
func (st *samplerState) keep(e *event) bool {
	switch e.ph {
	case phMeta:
		// process_name labels the whole pid and is always kept; thread_name
		// follows its thread so dropped tracks don't clutter the viewer.
		if e.name == "process_name" {
			return true
		}
		return st.keepTid(e.tid)
	case phCounter:
		if st.pol.CounterEvery <= 1 {
			return true
		}
		n := st.counts[e.name]
		st.counts[e.name] = n + 1
		return n%st.pol.CounterEvery == 0
	default:
		return st.keepTid(e.tid)
	}
}

// SetSampler attaches a sampling policy to pid, replacing any previous one;
// a nil Sampler detaches. Events on pids without a sampler are always kept.
// Attach samplers before recording: the policy applies only to events
// recorded after the call.
func (t *Tracer) SetSampler(pid int, s *Sampler) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s == nil {
		delete(t.samplers, pid)
		return
	}
	if t.samplers == nil {
		t.samplers = make(map[int]*samplerState)
	}
	t.samplers[pid] = &samplerState{pol: *s, counts: make(map[string]uint64)}
}

// Sampled reports whether span/instant events on (pid, tid) are currently
// kept. Instrumented code can consult it to skip argument construction for
// threads the sampler would drop; skipping is optional — recording anyway
// yields the same trace. True on a nil tracer's behalf would be meaningless,
// so nil returns false.
func (t *Tracer) Sampled(pid, tid int) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.samplers[pid]
	if !ok {
		return true
	}
	return st.keepTid(tid)
}

// Dropped returns the number of events discarded by sampling so far.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// NewSampler builds the standard trace-bounding policy: keep rank 0, keep
// every tid in keep (critical-path processors, the engine track), keep a
// deterministic 1-in-every sample of the remaining threads, and thin each
// counter graph to one in every samples. every <= 1 keeps everything.
func NewSampler(every, seed uint64, keep ...int) *Sampler {
	k := map[int]bool{0: true}
	for _, tid := range keep {
		k[tid] = true
	}
	return &Sampler{Every: every, Seed: seed, Keep: k, CounterEvery: every}
}
