package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestSamplerConcurrentAdd hammers a sampled tracer from many goroutines —
// spans, instants, counters, metas, Sampled queries, and a mid-flight
// SetSampler swap — exactly the shape logpservd produces when concurrent
// requests record spans while Prometheus scrapes pull WriteJSON. Run under
// -race this pins that samplerState's counter thinning (a map mutated inside
// keep) stays inside the tracer's lock.
func TestSamplerConcurrentAdd(t *testing.T) {
	const (
		pid     = 5
		workers = 16
		perG    = 200
	)
	tr := NewTracer()
	tr.SetSampler(pid, NewSampler(4, 99, 0))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tid := w*perG + i
				tr.NameThread(pid, tid, "req")
				tr.Span(pid, tid, "schedule", int64(i), 3, A("i", i))
				tr.Instant(pid, tid, "mark", int64(i))
				tr.Counter(pid, "inflight", int64(i), int64(i%8))
				_ = tr.Sampled(pid, tid)
			}
		}(w)
	}
	// Concurrent readers: WriteJSON renders a snapshot while writers add.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := tr.WriteJSON(discard{}); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
		}
	}()
	// A policy swap mid-flight must also be safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr.SetSampler(pid, NewSampler(8, 7, 0))
	}()
	wg.Wait()

	// The surviving document must still be valid trace JSON, and every
	// span's tid must be one a keep rule could have admitted (the keep set
	// or one of the two policies' hash classes).
	b := traceBytes(t, tr)
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("sampled trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("sampled trace is empty")
	}
	admitted := func(tid int) bool {
		if tid == 0 {
			return true
		}
		return splitmix64(99^uint64(int64(tid)))%4 == 0 ||
			splitmix64(7^uint64(int64(tid)))%8 == 0
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && !admitted(ev.Tid) {
			t.Fatalf("span on tid %d survived though no active policy admits it", ev.Tid)
		}
	}
	if tr.Dropped() == 0 {
		t.Fatal("sampler at Every=4 over 3200 tids dropped nothing")
	}
}

// discard is an io.Writer swallowing concurrent WriteJSON renders.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
