package obs

import (
	"bytes"
	"testing"
)

// emitWorkload records a representative mix of events on pid for tids
// 0..n-1: metas, one span and one instant per tid, and a counter stream.
func emitWorkload(t *Tracer, pid, n int) {
	t.NameProcess(pid, "workload")
	for tid := 0; tid < n; tid++ {
		t.NameThread(pid, tid, "thr")
	}
	for tid := 0; tid < n; tid++ {
		t.Span(pid, tid, "work", int64(tid), 3, A("i", tid))
		t.Instant(pid, tid, "mark", int64(tid)+1)
		t.Counter(pid, "load", int64(tid), int64(tid%7))
	}
}

func traceBytes(t *testing.T, tr *Tracer) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSamplerRateOneIdentical: at Every <= 1 the sampled trace must be
// byte-identical to an unsampled one — filtering only drops, and rate 1
// drops nothing.
func TestSamplerRateOneIdentical(t *testing.T) {
	plain := NewTracer()
	sampled := NewTracer()
	sampled.SetSampler(1, NewSampler(1, 42))
	emitWorkload(plain, 1, 64)
	emitWorkload(sampled, 1, 64)
	if got, want := traceBytes(t, sampled), traceBytes(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("rate-1 sampling changed the trace:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if d := sampled.Dropped(); d != 0 {
		t.Fatalf("rate-1 sampler dropped %d events", d)
	}
}

// TestSamplerBoundsAndKeepSet: with a large Every the event count collapses
// while every tid in the keep set retains its full span set.
func TestSamplerBoundsAndKeepSet(t *testing.T) {
	const n = 4096
	plain := NewTracer()
	emitWorkload(plain, 1, n)

	sampled := NewTracer()
	sampled.SetSampler(1, NewSampler(64, 42, 17))
	emitWorkload(sampled, 1, n)

	if sampled.Len() >= plain.Len()/8 {
		t.Fatalf("sampling barely reduced events: %d of %d", sampled.Len(), plain.Len())
	}
	if sampled.Len()+int(sampled.Dropped()) != plain.Len() {
		t.Fatalf("kept %d + dropped %d != total %d", sampled.Len(), sampled.Dropped(), plain.Len())
	}
	for _, tid := range []int{0, 17} {
		if !sampled.Sampled(1, tid) {
			t.Errorf("keep-set tid %d reported unsampled", tid)
		}
	}
	// Rank 0's events must survive verbatim.
	for _, frag := range []string{`"name":"work","ph":"X","ts":0`, `"name":"mark","ph":"i","ts":1`} {
		if !bytes.Contains(traceBytes(t, sampled), []byte(frag)) {
			t.Errorf("sampled trace lost a rank-0 event: %s", frag)
		}
	}
}

// TestSamplerDeterministic: the same policy over the same events yields
// byte-identical output on every run.
func TestSamplerDeterministic(t *testing.T) {
	mk := func() []byte {
		tr := NewTracer()
		tr.SetSampler(1, NewSampler(16, 7))
		emitWorkload(tr, 1, 1024)
		return traceBytes(t, tr)
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("same sampler config produced different traces")
	}
	// A different seed keeps a different subset (overwhelmingly likely at
	// this size); equality here would mean the seed is ignored.
	tr := NewTracer()
	tr.SetSampler(1, NewSampler(16, 8))
	emitWorkload(tr, 1, 1024)
	if bytes.Equal(a, traceBytes(t, tr)) {
		t.Fatal("seed change did not change the sampled subset")
	}
}

// TestSamplerCounterThinning: counters are thinned per name by modulo
// position, keeping the first of each stride.
func TestSamplerCounterThinning(t *testing.T) {
	tr := NewTracer()
	tr.SetSampler(1, &Sampler{CounterEvery: 4})
	for i := 0; i < 16; i++ {
		tr.Counter(1, "load", int64(i), int64(i))
		tr.Counter(1, "depth", int64(i), int64(i))
	}
	if got := tr.Len(); got != 8 { // 4 of 16 per name
		t.Fatalf("counter thinning kept %d events, want 8", got)
	}
	out := traceBytes(t, tr)
	for _, ts := range []string{`"ts":0`, `"ts":4`, `"ts":8`, `"ts":12`} {
		if !bytes.Contains(out, []byte(ts)) {
			t.Errorf("missing kept counter sample at %s", ts)
		}
	}
	if bytes.Contains(out, []byte(`"ts":1,`)) {
		t.Error("counter sample at ts=1 should have been thinned")
	}
}

// TestSamplerMetaAndScope: process_name is always kept, thread_name follows
// its thread, and pids without a sampler are untouched.
func TestSamplerMetaAndScope(t *testing.T) {
	tr := NewTracer()
	tr.SetSampler(1, &Sampler{Every: 1 << 62, Keep: map[int]bool{3: true}})
	tr.NameProcess(1, "sampled-pid")
	tr.NameThread(1, 2, "dropped-thread")
	tr.NameThread(1, 3, "kept-thread")
	tr.Span(1, 2, "dropped", 0, 1)
	tr.Span(1, 3, "kept", 0, 1)
	emitWorkload(tr, 9, 4) // no sampler on pid 9
	out := traceBytes(t, tr)
	for _, want := range []string{"sampled-pid", "kept-thread", `"name":"kept"`} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("missing %q", want)
		}
	}
	for _, drop := range []string{"dropped-thread", `"name":"dropped"`} {
		if bytes.Contains(out, []byte(drop)) {
			t.Errorf("should have dropped %q", drop)
		}
	}
	if tr.Sampled(1, 2) || !tr.Sampled(1, 3) || !tr.Sampled(9, 2) {
		t.Error("Sampled disagrees with filtering")
	}
	var nilTr *Tracer
	if nilTr.Sampled(1, 0) || nilTr.Dropped() != 0 {
		t.Error("nil tracer sampling queries should be inert")
	}
	nilTr.SetSampler(1, NewSampler(2, 1)) // must not panic
}
