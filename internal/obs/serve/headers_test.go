// Header-hygiene assertions for every serve endpoint: each response must
// declare a correct Content-Type (with charset where text rides along) and
// carry X-Content-Type-Options: nosniff — several handlers reflect
// query-derived strings (compare errors, run names), so a response a browser
// is allowed to sniff is a response it can be tricked into rendering.

package serve

import (
	"net/http"
	"strings"
	"testing"
	"unicode/utf8"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/report"
)

// headerServer builds a server with every surface populated: a trace, a
// run report, a run store, and a mounted external handler.
func headerServer(t *testing.T) *Server {
	t.Helper()
	s := New(obs.NewRegistry())
	if err := s.AddTrace("t.json", []byte(`{"traceEvents":[]}`)); err != nil {
		t.Fatal(err)
	}
	m := logp.MustNew(8, 6, 2, 4)
	if err := s.AddReport("r.json", report.New("test", m)); err != nil {
		t.Fatal(err)
	}
	st, _ := storeWithRuns(t)
	s.SetStore(st)
	if err := s.Mount("/v1/ping", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("pong\n")) //nolint:errcheck
	}), "test mount"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestContentTypeTable pins the Content-Type of every endpoint, including
// the error paths that echo request-derived strings.
func TestContentTypeTable(t *testing.T) {
	h := headerServer(t).Handler()
	cases := []struct {
		path string
		code int
		ct   string
	}{
		{"/", 200, "text/plain; charset=utf-8"},
		{"/metrics", 200, "text/plain; version=0.0.4; charset=utf-8"},
		{"/traces/", 200, "text/plain; charset=utf-8"},
		{"/traces/t.json", 200, "application/json"},
		{"/timeseries", 200, "application/json"},
		{"/runs/", 200, "text/plain; charset=utf-8"},
		{"/runs/r.json", 200, "application/json"},
		{"/compare?a=r.json&b=r.json", 200, "text/plain; charset=utf-8"},
		{"/compare?a=r.json&b=r.json&format=json", 200, "application/json"},
		// Error path reflecting a query-derived run name.
		{"/compare?a=%3Cimg%20src%3Dx%3E&b=r.json", 404, "text/plain; charset=utf-8"},
		{"/regimes", 200, "text/html; charset=utf-8"},
		// The SVG embeds UTF-8 label text (clipped keys end in an ellipsis),
		// so the charset must be declared alongside the media type.
		{"/regimes?format=svg", 200, "image/svg+xml; charset=utf-8"},
		{"/dashboard", 200, "text/html; charset=utf-8"},
		{"/v1/ping", 200, "text/plain; charset=utf-8"},
		{"/nope", 404, "text/plain; charset=utf-8"},
	}
	for _, tc := range cases {
		code, _, hdr := get(t, h, tc.path)
		if code != tc.code {
			t.Errorf("%s: code %d, want %d", tc.path, code, tc.code)
		}
		if ct := hdr.Get("Content-Type"); ct != tc.ct {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, ct, tc.ct)
		}
	}
}

// TestNosniffEverywhere: every response, success or error, opts out of MIME
// sniffing.
func TestNosniffEverywhere(t *testing.T) {
	h := headerServer(t).Handler()
	for _, path := range []string{
		"/", "/metrics", "/traces/", "/traces/t.json", "/timeseries",
		"/runs/", "/runs/r.json", "/compare", "/compare?a=x&b=y",
		"/regimes", "/regimes?format=svg", "/dashboard", "/v1/ping", "/nope",
	} {
		_, _, hdr := get(t, h, path)
		if got := hdr.Get("X-Content-Type-Options"); got != "nosniff" {
			t.Errorf("%s: X-Content-Type-Options = %q, want nosniff", path, got)
		}
	}
}

// TestCompareReflectedNameIsInert: the /compare error path echoes the run
// names the caller supplied; with text/plain + nosniff the payload is inert,
// and the body must stay valid UTF-8.
func TestCompareReflectedNameIsInert(t *testing.T) {
	h := headerServer(t).Handler()
	code, body, hdr := get(t, h, "/compare?a=%3Cscript%3Ealert(1)%3C/script%3E&b=r.json")
	if code != 404 {
		t.Fatalf("code = %d, want 404", code)
	}
	if !strings.Contains(body, "<script>") {
		t.Fatalf("error body no longer names the missing run: %q", body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("reflected error served as %q — must be text/plain so the markup is inert", ct)
	}
	if hdr.Get("X-Content-Type-Options") != "nosniff" {
		t.Fatal("reflected error response missing nosniff")
	}
	if !utf8.ValidString(body) {
		t.Fatal("error body is not valid UTF-8")
	}
}

func TestMountValidation(t *testing.T) {
	s := New(obs.NewRegistry())
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})
	if err := s.Mount("/metrics", ok, "x"); err == nil {
		t.Fatal("mounting a reserved pattern succeeded")
	}
	if err := s.Mount("no-slash", ok, "x"); err == nil {
		t.Fatal("mounting a pattern without / succeeded")
	}
	if err := s.Mount("/v1/a", nil, "x"); err == nil {
		t.Fatal("mounting a nil handler succeeded")
	}
	if err := s.Mount("/v1/a", ok, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Mount("/v1/a", ok, "x"); err == nil {
		t.Fatal("double-mount succeeded")
	}
	// The index lists the mount with its description.
	_, body, _ := get(t, s.Handler(), "/")
	if !strings.Contains(body, "/v1/a") {
		t.Fatalf("index does not list the mount:\n%s", body)
	}
}
