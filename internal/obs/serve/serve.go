// Package serve exposes the process's observability surface over HTTP: the
// metrics registry in Prometheus text format at /metrics, the Go runtime
// profiles at /debug/pprof/, completed Chrome-trace JSON documents at
// /traces/, the time-resolved series of an attached collector at
// /timeseries, validated run reports at /runs/, and a zero-dependency live
// dashboard at /dashboard. With a run store attached (SetStore), archived
// runs join /runs/, any two runs diff at /compare?a=&b=, and /regimes
// renders the store's regime map. The CLIs mount it behind a -serve :addr
// flag so a long bench or conformance sweep can be inspected while it runs.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"logpopt/internal/obs"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
	"logpopt/internal/obs/timeseries"
)

// closeGrace is how long Close waits for in-flight requests to finish
// before hard-closing their connections.
const closeGrace = 2 * time.Second

// Server is an HTTP front end over a metrics registry, a set of named trace
// documents, run reports, and an optional time-series collector. The zero
// value is not usable; call New.
type Server struct {
	reg *obs.Registry

	mu      sync.Mutex
	traces  map[string]func() ([]byte, error)
	runs    map[string][]byte
	store   *runstore.Store
	ts      *timeseries.Collector
	mounts  []mount
	closers []func()
	ln      net.Listener
	srv     *http.Server
}

// mount is an externally supplied handler merged into the routing table,
// with the one-line description the index page shows for it.
type mount struct {
	pattern string
	desc    string
	handler http.Handler
}

// New returns a server exposing reg. A nil reg serves the process-wide
// obs.Default registry.
func New(reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.Default
	}
	return &Server{
		reg:    reg,
		traces: map[string]func() ([]byte, error){},
		runs:   map[string][]byte{},
	}
}

// checkName vets a registry key before it becomes a URL path segment.
// Names arrive from flags and case generators, so hostile or merely
// accident-prone values (separators, dot-dot, control bytes) are rejected
// at registration instead of being served as confusing or spoofable paths.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty name")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: name longer than 128 bytes")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '/' || c == '\\' || c < 0x20 || c == 0x7f {
			return fmt.Errorf("serve: name %q contains a path separator or control character", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("serve: name %q is a relative path", name)
	}
	return nil
}

// AddTrace registers a completed trace document under /traces/<name>. The
// bytes are served verbatim with a JSON content type.
func (s *Server) AddTrace(name string, data []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	s.traces[name] = func() ([]byte, error) { return data, nil }
	s.mu.Unlock()
	return nil
}

// AddTracer registers a live tracer under /traces/<name>; each request
// renders the events recorded so far, so a trace can be pulled mid-run.
func (s *Server) AddTracer(name string, t *obs.Tracer) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	s.traces[name] = func() ([]byte, error) {
		var b bytes.Buffer
		if err := t.WriteJSON(&b); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	}
	s.mu.Unlock()
	return nil
}

// AddReport validates r and registers it under /runs/<name>. Invalid
// reports are rejected — the server only ever lists artifacts a consumer
// can trust.
func (s *Server) AddReport(name string, r *report.Report) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	var b bytes.Buffer
	if err := r.Write(&b); err != nil {
		return err
	}
	s.mu.Lock()
	s.runs[name] = b.Bytes()
	s.mu.Unlock()
	return nil
}

// SetTimeseries attaches the collector served at /timeseries and plotted by
// /dashboard. Pass nil to detach.
func (s *Server) SetTimeseries(c *timeseries.Collector) {
	s.mu.Lock()
	s.ts = c
	s.mu.Unlock()
}

// OnClose registers fn to run when the server shuts down (before the
// listener closes), e.g. to stop a wall-clock sampling goroutine.
func (s *Server) OnClose(fn func()) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.closers = append(s.closers, fn)
	s.mu.Unlock()
}

// Mount merges an externally supplied handler into the routing table under
// pattern (an http.ServeMux pattern, e.g. "/v1/schedule"), listing it on the
// index page with desc. cmd/logpservd mounts its API this way so the
// scheduling endpoints and the telemetry endpoints share one listener, one
// routing table, and one graceful shutdown. Mount must be called before
// Handler or Start; mounting a pattern twice, or one of the server's own
// patterns, returns an error.
func (s *Server) Mount(pattern string, h http.Handler, desc string) error {
	if pattern == "" || pattern[0] != '/' {
		return fmt.Errorf("serve: mount pattern %q must start with /", pattern)
	}
	if h == nil {
		return fmt.Errorf("serve: nil handler for %s", pattern)
	}
	reserved := []string{
		"/", "/metrics", "/traces/", "/timeseries", "/runs/",
		"/compare", "/regimes", "/dashboard", "/debug/pprof/",
	}
	for _, r := range reserved {
		if pattern == r {
			return fmt.Errorf("serve: pattern %s is reserved", pattern)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.mounts {
		if m.pattern == pattern {
			return fmt.Errorf("serve: pattern %s already mounted", pattern)
		}
	}
	s.mounts = append(s.mounts, mount{pattern: pattern, desc: desc, handler: h})
	return nil
}

// nosniff stamps X-Content-Type-Options on every response. Several handlers
// reflect query-derived strings (compare errors, run names), so the whole
// surface opts out of MIME sniffing rather than auditing each write site.
func nosniff(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Content-Type-Options", "nosniff")
		h.ServeHTTP(w, r)
	})
}

// Handler returns the routing table. It is also what Start serves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/traces/", s.trace)
	mux.HandleFunc("/timeseries", s.timeseries)
	mux.HandleFunc("/runs/", s.run)
	mux.HandleFunc("/compare", s.compare)
	mux.HandleFunc("/regimes", s.regimes)
	mux.HandleFunc("/dashboard", s.dashboard)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	for _, m := range s.mounts {
		mux.Handle(m.pattern, m.handler)
	}
	s.mu.Unlock()
	return nosniff(mux)
}

// Start listens on addr (":0" picks a free port) and serves in a background
// goroutine. It returns the bound address, e.g. "127.0.0.1:43321".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close.
	return ln.Addr().String(), nil
}

// Close stops the listener started by Start, letting in-flight requests
// finish for up to closeGrace before hard-closing their connections. Safe
// to call without Start, and idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	closers := s.closers
	s.srv, s.ln, s.closers = nil, nil, nil
	s.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// A handler outlived the grace period; sever its connection.
		return srv.Close()
	}
	return nil
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "logpopt telemetry\n\n")
	fmt.Fprintf(w, "/metrics       metrics registry, Prometheus text format\n")
	fmt.Fprintf(w, "/debug/pprof/  Go runtime profiles\n")
	fmt.Fprintf(w, "/traces/       completed trace documents (Chrome trace JSON)\n")
	fmt.Fprintf(w, "/timeseries    time-resolved series of the attached collector (JSON)\n")
	fmt.Fprintf(w, "/runs/         validated run reports (JSON artifacts)\n")
	fmt.Fprintf(w, "/compare       diff two runs: /compare?a=<run>&b=<run> (names from /runs/)\n")
	fmt.Fprintf(w, "/regimes       regime map and per-key history of the attached run store\n")
	fmt.Fprintf(w, "/dashboard     live sparkline dashboard over /timeseries\n")
	s.mu.Lock()
	mounts := make([]mount, len(s.mounts))
	copy(mounts, s.mounts)
	s.mu.Unlock()
	if len(mounts) > 0 {
		sort.Slice(mounts, func(i, j int) bool { return mounts[i].pattern < mounts[j].pattern })
		fmt.Fprintf(w, "\nmounted:\n")
		for _, m := range mounts {
			fmt.Fprintf(w, "%-14s %s\n", m.pattern, m.desc)
		}
	}
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client disconnects only
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path[len("/traces/"):]
	if name == "" {
		s.mu.Lock()
		names := make([]string, 0, len(s.traces))
		for n := range s.traces {
			names = append(names, n)
		}
		s.mu.Unlock()
		sort.Strings(names)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, n := range names {
			fmt.Fprintf(w, "/traces/%s\n", n)
		}
		return
	}
	s.mu.Lock()
	get := s.traces[name]
	s.mu.Unlock()
	if get == nil {
		http.NotFound(w, r)
		return
	}
	data, err := get()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) timeseries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	c := s.ts
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if c == nil {
		fmt.Fprint(w, `{"series":[]}`+"\n")
		return
	}
	c.WriteJSON(w) //nolint:errcheck // client disconnects only
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path[len("/runs/"):]
	if name == "" {
		s.mu.Lock()
		names := make([]string, 0, len(s.runs))
		for n := range s.runs {
			names = append(names, n)
		}
		st := s.store
		s.mu.Unlock()
		if st != nil {
			// Archived runs join the listing under their store-wide names
			// ("<keydir>@<seq>" — no separators, so they can never shadow
			// the in-memory registry's vetted names).
			for _, e := range st.Entries() {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, n := range names {
			fmt.Fprintf(w, "/runs/%s\n", n)
		}
		return
	}
	s.mu.Lock()
	data := s.runs[name]
	st := s.store
	s.mu.Unlock()
	if data == nil && st != nil {
		if rep, err := st.Get(name); err == nil {
			var b bytes.Buffer
			if err := rep.Write(&b); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			data = b.Bytes()
		}
	}
	if data == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client disconnects only
}

func (s *Server) dashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML) //nolint:errcheck // client disconnects only
}

// dashboardHTML is the whole dashboard: no frameworks, no external assets,
// one page that polls /timeseries once a second and redraws an SVG
// sparkline per series. Kept dependency-free on purpose — it must work
// from a curl'd file on an air-gapped box.
const dashboardHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>logpopt dashboard</title>
<style>
body { font: 13px/1.4 monospace; background: #111; color: #ddd; margin: 1.5em; }
h1 { font-size: 15px; }
.row { display: flex; align-items: center; gap: 1em; border-bottom: 1px solid #333; padding: 3px 0; }
.name { width: 22em; overflow: hidden; text-overflow: ellipsis; }
.val { width: 10em; text-align: right; color: #8fd; }
.range { width: 16em; color: #777; }
svg { background: #1a1a1a; }
polyline { fill: none; stroke: #4cf; stroke-width: 1.25; }
#status { color: #777; margin-top: 1em; }
</style>
</head>
<body>
<h1>logpopt live time series</h1>
<div id="charts"></div>
<div id="status">connecting&hellip;</div>
<script>
"use strict";
function spark(points, w, h) {
  if (points.length < 2) return "";
  let lo = Infinity, hi = -Infinity;
  for (const [, v] of points) { if (v < lo) lo = v; if (v > hi) hi = v; }
  const span = (hi - lo) || 1;
  const t0 = points[0][0], t1 = points[points.length - 1][0];
  const tspan = (t1 - t0) || 1;
  return points.map(([t, v]) =>
    ((t - t0) / tspan * (w - 2) + 1).toFixed(1) + "," +
    ((1 - (v - lo) / span) * (h - 2) + 1).toFixed(1)).join(" ");
}
async function tick() {
  const status = document.getElementById("status");
  try {
    const res = await fetch("/timeseries");
    const doc = await res.json();
    const charts = document.getElementById("charts");
    charts.textContent = "";
    for (const s of doc.series) {
      const pts = s.points;
      const last = pts.length ? pts[pts.length - 1][1] : 0;
      let lo = Infinity, hi = -Infinity;
      for (const [, v] of pts) { if (v < lo) lo = v; if (v > hi) hi = v; }
      const row = document.createElement("div");
      row.className = "row";
      const name = document.createElement("span");
      name.className = "name"; name.textContent = s.name;
      const val = document.createElement("span");
      val.className = "val"; val.textContent = last;
      const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
      svg.setAttribute("width", 360); svg.setAttribute("height", 36);
      const line = document.createElementNS("http://www.w3.org/2000/svg", "polyline");
      line.setAttribute("points", spark(pts, 360, 36));
      svg.appendChild(line);
      const range = document.createElement("span");
      range.className = "range";
      range.textContent = pts.length ? "[" + lo + ", " + hi + "] n=" + pts.length : "no samples";
      row.append(name, val, svg, range);
      charts.appendChild(row);
    }
    status.textContent = doc.series.length + " series, updated " + new Date().toLocaleTimeString();
  } catch (err) {
    status.textContent = "fetch failed: " + err;
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
`
