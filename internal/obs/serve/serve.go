// Package serve exposes the process's observability surface over HTTP: the
// metrics registry in Prometheus text format at /metrics, the Go runtime
// profiles at /debug/pprof/, and completed Chrome-trace JSON documents at
// /traces/. The CLIs mount it behind a -serve :addr flag so a long bench or
// conformance sweep can be inspected while it runs.
package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"logpopt/internal/obs"
)

// Server is an HTTP front end over a metrics registry and a set of named
// trace documents. The zero value is not usable; call New.
type Server struct {
	reg *obs.Registry

	mu     sync.Mutex
	traces map[string]func() ([]byte, error)
	ln     net.Listener
	srv    *http.Server
}

// New returns a server exposing reg. A nil reg serves the process-wide
// obs.Default registry.
func New(reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.Default
	}
	return &Server{reg: reg, traces: map[string]func() ([]byte, error){}}
}

// AddTrace registers a completed trace document under /traces/<name>. The
// bytes are served verbatim with a JSON content type.
func (s *Server) AddTrace(name string, data []byte) {
	s.mu.Lock()
	s.traces[name] = func() ([]byte, error) { return data, nil }
	s.mu.Unlock()
}

// AddTracer registers a live tracer under /traces/<name>; each request
// renders the events recorded so far, so a trace can be pulled mid-run.
func (s *Server) AddTracer(name string, t *obs.Tracer) {
	s.mu.Lock()
	s.traces[name] = func() ([]byte, error) {
		var b bytes.Buffer
		if err := t.WriteJSON(&b); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	}
	s.mu.Unlock()
}

// Handler returns the routing table. It is also what Start serves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/traces/", s.trace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a background
// goroutine. It returns the bound address, e.g. "127.0.0.1:43321".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry server: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close.
	return ln.Addr().String(), nil
}

// Close stops the listener started by Start. Safe to call without Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "logpopt telemetry\n\n")
	fmt.Fprintf(w, "/metrics       metrics registry, Prometheus text format\n")
	fmt.Fprintf(w, "/debug/pprof/  Go runtime profiles\n")
	fmt.Fprintf(w, "/traces/       completed trace documents (Chrome trace JSON)\n")
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client disconnects only
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path[len("/traces/"):]
	if name == "" {
		s.mu.Lock()
		names := make([]string, 0, len(s.traces))
		for n := range s.traces {
			names = append(names, n)
		}
		s.mu.Unlock()
		sort.Strings(names)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, n := range names {
			fmt.Fprintf(w, "/traces/%s\n", n)
		}
		return
	}
	s.mu.Lock()
	get := s.traces[name]
	s.mu.Unlock()
	if get == nil {
		http.NotFound(w, r)
		return
	}
	data, err := get()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client disconnects only
}
