package serve

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/timeseries"
)

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String(), rr.Header()
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim.replays").Add(7)
	s := New(reg)
	tr := obs.NewTracer()
	tr.Span(0, 0, "send", 0, 2)
	s.AddTracer("run1", tr)
	s.AddTrace("done", []byte(`{"traceEvents":[]}`))
	h := s.Handler()

	code, body, _ := get(t, h, "/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	code, _, _ = get(t, h, "/nope")
	if code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}

	code, body, hdr := get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "logpopt_sim_replays_total 7") {
		t.Fatalf("metrics: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}

	code, body, _ = get(t, h, "/traces/")
	if code != 200 || !strings.Contains(body, "/traces/run1") || !strings.Contains(body, "/traces/done") {
		t.Fatalf("trace index: code %d body %q", code, body)
	}
	code, body, hdr = get(t, h, "/traces/run1")
	if code != 200 || !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"send"`) {
		t.Fatalf("live trace: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	code, body, _ = get(t, h, "/traces/done")
	if code != 200 || body != `{"traceEvents":[]}` {
		t.Fatalf("static trace: code %d body %q", code, body)
	}
	code, _, _ = get(t, h, "/traces/missing")
	if code != 404 {
		t.Errorf("missing trace: code %d, want 404", code)
	}

	code, _, _ = get(t, h, "/debug/pprof/")
	if code != 200 {
		t.Errorf("pprof index: code %d", code)
	}
}

func TestStartClose(t *testing.T) {
	s := New(nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("live /metrics: %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op:", err)
	}
}

// TestNewEndpoints covers /timeseries, /runs/, and /dashboard.
func TestNewEndpoints(t *testing.T) {
	s := New(obs.NewRegistry())
	h := s.Handler()

	// No collector attached: an empty, still-valid JSON document.
	code, body, hdr := get(t, h, "/timeseries")
	if code != 200 || strings.TrimSpace(body) != `{"series":[]}` {
		t.Fatalf("empty timeseries: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("timeseries content type %q", ct)
	}

	ts := timeseries.New(0)
	v := int64(3)
	ts.Probe("queue.depth", func() int64 { return v })
	ts.Sample(1)
	v = 9
	ts.Sample(2)
	s.SetTimeseries(ts)
	code, body, _ = get(t, h, "/timeseries")
	if code != 200 || !strings.Contains(body, `"queue.depth"`) || !strings.Contains(body, "[2,9]") {
		t.Fatalf("timeseries: code %d body %q", code, body)
	}

	// Runs registry: listing, fetch, and 404.
	m := logp.MustNew(8, 6, 2, 4)
	r := report.New("test", m)
	if err := s.AddReport("night.json", r); err != nil {
		t.Fatal(err)
	}
	code, body, _ = get(t, h, "/runs/")
	if code != 200 || !strings.Contains(body, "/runs/night.json") {
		t.Fatalf("runs index: code %d body %q", code, body)
	}
	code, body, hdr = get(t, h, "/runs/night.json")
	if code != 200 || !strings.Contains(body, `"tool": "test"`) {
		t.Fatalf("run fetch: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("run content type %q", ct)
	}
	code, _, _ = get(t, h, "/runs/other.json")
	if code != 404 {
		t.Errorf("missing run: code %d, want 404", code)
	}

	// An invalid report must be rejected, not served.
	bad := report.New("", m)
	if err := s.AddReport("bad.json", bad); err == nil {
		t.Error("AddReport accepted an invalid report")
	}

	code, body, hdr = get(t, h, "/dashboard")
	if code != 200 || !strings.Contains(body, "/timeseries") || !strings.Contains(body, "<svg") && !strings.Contains(body, "svg") {
		t.Fatalf("dashboard: code %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("dashboard content type %q", ct)
	}

	// The index advertises every route.
	_, body, _ = get(t, h, "/")
	for _, want := range []string{"/metrics", "/traces/", "/timeseries", "/runs/", "/dashboard"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s", want)
		}
	}
}

// TestHostileNames: names with separators, traversal, or control bytes are
// rejected by every registry so they can never shadow other routes.
func TestHostileNames(t *testing.T) {
	s := New(obs.NewRegistry())
	m := logp.MustNew(8, 6, 2, 4)
	hostile := []string{
		"",
		".",
		"..",
		"../../etc/passwd",
		"a/b",
		`a\b`,
		"sneaky/../metrics",
		"ctrl\x00byte",
		"new\nline",
		"del\x7fchar",
		strings.Repeat("x", 129),
	}
	for _, name := range hostile {
		if err := s.AddTrace(name, []byte("{}")); err == nil {
			t.Errorf("AddTrace accepted %q", name)
		}
		if err := s.AddTracer(name, obs.NewTracer()); err == nil {
			t.Errorf("AddTracer accepted %q", name)
		}
		if err := s.AddReport(name, report.New("t", m)); err == nil {
			t.Errorf("AddReport accepted %q", name)
		}
	}
	for _, name := range []string{"run-1.json", "bcast_P64", "night.2026-08-08"} {
		if err := s.AddTrace(name, []byte("{}")); err != nil {
			t.Errorf("AddTrace rejected benign %q: %v", name, err)
		}
	}
	// Nothing hostile leaked into the listing.
	_, body, _ := get(t, s.Handler(), "/traces/")
	if strings.Contains(body, "passwd") || strings.Contains(body, "sneaky") {
		t.Fatalf("hostile name served:\n%s", body)
	}
}

// TestTraceRenderError: a trace whose renderer fails maps to a 500, not a
// panic or an empty 200.
func TestTraceRenderError(t *testing.T) {
	s := New(obs.NewRegistry())
	s.mu.Lock()
	s.traces["boom"] = func() ([]byte, error) { return nil, errors.New("render exploded") }
	s.mu.Unlock()
	code, body, _ := get(t, s.Handler(), "/traces/boom")
	if code != 500 || !strings.Contains(body, "render exploded") {
		t.Fatalf("render error: code %d body %q", code, body)
	}
}

// TestCloseLetsSlowReaderFinish is the graceful-shutdown regression test: a
// request in flight when Close is called completes with its full body, and
// Close still returns promptly.
func TestCloseLetsSlowReaderFinish(t *testing.T) {
	s := New(obs.NewRegistry())
	started := make(chan struct{})
	payload := strings.Repeat("x", 1<<16)
	if err := s.AddTrace("slow", []byte(payload)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	inner := s.traces["slow"]
	s.traces["slow"] = func() ([]byte, error) {
		close(started)
		time.Sleep(300 * time.Millisecond) // hold the request across Close
		return inner()
	}
	s.mu.Unlock()

	var closed bool
	s.OnClose(func() { closed = true })

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/traces/slow")
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{b, err}
	}()

	<-started // request is inside the handler
	closeStart := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("Close during in-flight request: %v", err)
	}
	if d := time.Since(closeStart); d > closeGrace {
		t.Fatalf("Close took %v, beyond the %v grace", d, closeGrace)
	}
	if !closed {
		t.Error("OnClose hook did not run")
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("slow reader failed across Close: %v", res.err)
	}
	if string(res.body) != payload {
		t.Fatalf("slow reader got %d bytes, want %d", len(res.body), len(payload))
	}
	// New connections are refused after Close.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still accepting connections after Close")
	}
}
