package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"logpopt/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String(), rr.Header()
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim.replays").Add(7)
	s := New(reg)
	tr := obs.NewTracer()
	tr.Span(0, 0, "send", 0, 2)
	s.AddTracer("run1", tr)
	s.AddTrace("done", []byte(`{"traceEvents":[]}`))
	h := s.Handler()

	code, body, _ := get(t, h, "/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	code, _, _ = get(t, h, "/nope")
	if code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}

	code, body, hdr := get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "logpopt_sim_replays_total 7") {
		t.Fatalf("metrics: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}

	code, body, _ = get(t, h, "/traces/")
	if code != 200 || !strings.Contains(body, "/traces/run1") || !strings.Contains(body, "/traces/done") {
		t.Fatalf("trace index: code %d body %q", code, body)
	}
	code, body, hdr = get(t, h, "/traces/run1")
	if code != 200 || !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"send"`) {
		t.Fatalf("live trace: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	code, body, _ = get(t, h, "/traces/done")
	if code != 200 || body != `{"traceEvents":[]}` {
		t.Fatalf("static trace: code %d body %q", code, body)
	}
	code, _, _ = get(t, h, "/traces/missing")
	if code != 404 {
		t.Errorf("missing trace: code %d, want 404", code)
	}

	code, _, _ = get(t, h, "/debug/pprof/")
	if code != 200 {
		t.Errorf("pprof index: code %d", code)
	}
}

func TestStartClose(t *testing.T) {
	s := New(nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("live /metrics: %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op:", err)
	}
}
