// Run-store views: /compare diffs any two runs the server can name, and
// /regimes folds an attached persistent store (internal/obs/runstore) into
// its regime map with a finish-history sparkline per key. Both resolve run
// names the same way /runs/ does — the in-memory registry first, then the
// store — so anything the listing shows can be compared.

package serve

import (
	"bytes"
	"fmt"
	"html"
	"net/http"

	"logpopt/internal/obs/diff"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
)

// SetStore attaches a persistent run store: its archived runs join the
// /runs/ listing, /compare resolves their names, and /regimes renders its
// regime map. Pass nil to detach.
func (s *Server) SetStore(st *runstore.Store) {
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
}

// lookupReport resolves a run name to its report: the in-memory registry
// first (re-decoded through the strict reader — the registry only ever
// holds validated documents), then the attached store.
func (s *Server) lookupReport(name string) (*report.Report, error) {
	s.mu.Lock()
	data := s.runs[name]
	st := s.store
	s.mu.Unlock()
	if data != nil {
		return report.Read(data)
	}
	if st != nil {
		return st.Get(name)
	}
	return nil, fmt.Errorf("no run named %q (see /runs/ for names)", name)
}

// compare serves /compare?a=<run>&b=<run>: the structural diff of two runs
// under the default thresholds, as a text verdict (or JSON with
// &format=json) — the HTTP face of cmd/reportdiff.
func (s *Server) compare(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	a, b := q.Get("a"), q.Get("b")
	if a == "" || b == "" {
		http.Error(w, "want /compare?a=<run>&b=<run> (run names from /runs/)", http.StatusBadRequest)
		return
	}
	ra, err := s.lookupReport(a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	rb, err := s.lookupReport(b)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	v := diff.Compare(ra, rb, diff.Default)
	v.A, v.B = a, b
	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		v.WriteJSON(w) //nolint:errcheck // client disconnects only
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	v.Write(w, true)
}

// regimes serves the attached store's regime map: the heatmap SVG
// (standalone with ?format=svg) wrapped in a page listing every key's
// archived finish history as a sparkline.
func (s *Server) regimes(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		http.Error(w, "no run store attached (start the tool with -runstore <dir>)", http.StatusNotFound)
		return
	}
	cells := st.Regimes()
	svg := runstore.RegimeSVG(cells)
	if req.URL.Query().Get("format") == "svg" {
		// The SVG carries UTF-8 text (ellipses from clipped key labels), so
		// the charset must ride along with the media type.
		w.Header().Set("Content-Type", "image/svg+xml; charset=utf-8")
		fmt.Fprint(w, svg)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><html><head><meta charset="utf-8"><title>logpopt regimes</title>
<style>
body { font: 13px/1.4 monospace; margin: 1.5em; }
h1, h2 { font-size: 15px; }
.key { display: flex; align-items: center; gap: 1em; border-bottom: 1px solid #ddd; padding: 3px 0; }
.name { width: 34em; overflow: hidden; text-overflow: ellipsis; }
.last { width: 16em; }
svg.spark { background: #f6f6f6; }
</style></head><body>
<h1>regime map</h1>
`)
	fmt.Fprint(w, svg)
	fmt.Fprint(w, "\n<h2>per-key finish history</h2>\n")
	for _, k := range st.Keys() {
		h := st.History(k)
		if len(h) == 0 {
			continue
		}
		last := h[len(h)-1]
		fmt.Fprintf(w, `<div class="key"><span class="name"><a href="/runs/%s">%s</a></span>%s<span class="last">finish %d · gap %d · %d run(s)</span></div>`+"\n",
			html.EscapeString(last.Name()), html.EscapeString(k.String()),
			sparkline(h), last.Finish, last.Gap, len(h))
	}
	fmt.Fprint(w, "</body></html>\n")
}

// sparkline renders a key's finish history as a tiny inline SVG polyline.
// A flat history (the deterministic steady state) draws a midline.
func sparkline(h []runstore.Entry) string {
	const w, ht = 240, 28
	lo, hi := h[0].Finish, h[0].Finish
	for _, e := range h {
		if e.Finish < lo {
			lo = e.Finish
		}
		if e.Finish > hi {
			hi = e.Finish
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d"><polyline fill="none" stroke="#4c6ef5" stroke-width="1.25" points="`, w, ht)
	step := float64(w-2) / float64(max(len(h)-1, 1))
	for i, e := range h {
		x := 1 + float64(i)*step
		y := 1 + (1-float64(e.Finish-lo)/float64(span))*float64(ht-2)
		if len(h) == 1 {
			y = ht / 2
		}
		fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
	}
	b.WriteString(`"/></svg>`)
	return b.String()
}
