package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/report"
	"logpopt/internal/obs/runstore"
)

// storeWithRuns builds a store holding two identical broadcast runs and one
// drifted run (three violations), returning their entry names.
func storeWithRuns(t *testing.T) (*runstore.Store, []string) {
	t.Helper()
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := logp.MustNew(8, 6, 2, 4)
	var names []string
	for _, violations := range []int{0, 0, 3} {
		r := report.New("logpsched", m)
		r.Op = "broadcast"
		r.Violations = violations
		e, err := st.Put(r)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, e.Name())
	}
	return st, names
}

// TestStoreBackedRuns: archived runs join the /runs/ listing next to the
// in-memory registry and are fetchable by their store-wide names.
func TestStoreBackedRuns(t *testing.T) {
	s := New(obs.NewRegistry())
	st, names := storeWithRuns(t)
	s.SetStore(st)
	m := logp.MustNew(8, 6, 2, 4)
	if err := s.AddReport("night.json", report.New("test", m)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	code, body, _ := get(t, h, "/runs/")
	if code != 200 || !strings.Contains(body, "/runs/night.json") {
		t.Fatalf("runs index lost the in-memory registry: code %d body %q", code, body)
	}
	for _, n := range names {
		if !strings.Contains(body, "/runs/"+n) {
			t.Fatalf("runs index missing archived %s:\n%s", n, body)
		}
	}
	code, body, hdr := get(t, h, "/runs/"+names[0])
	if code != 200 || !strings.Contains(body, `"tool": "logpsched"`) {
		t.Fatalf("archived run fetch: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("archived run content type %q", ct)
	}
	code, _, _ = get(t, h, "/runs/"+names[0]+"9@1")
	if code != 404 {
		t.Errorf("bogus store name: code %d, want 404", code)
	}

	// The index advertises the new routes.
	_, body, _ = get(t, h, "/")
	for _, want := range []string{"/compare", "/regimes"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s", want)
		}
	}
}

// TestCompare: identical runs produce an empty verdict, drifted runs a
// gated one, and names resolve across both registries.
func TestCompare(t *testing.T) {
	s := New(obs.NewRegistry())
	st, names := storeWithRuns(t)
	s.SetStore(st)
	h := s.Handler()

	code, body, _ := get(t, h, "/compare?a="+names[0]+"&b="+names[1])
	if code != 200 || !strings.Contains(body, "identical") {
		t.Fatalf("identical compare: code %d body %q", code, body)
	}
	code, body, _ = get(t, h, "/compare?a="+names[0]+"&b="+names[2])
	if code != 200 || !strings.Contains(body, "GATED") || !strings.Contains(body, "violations") {
		t.Fatalf("drifted compare: code %d body %q", code, body)
	}

	// A registry run and a store run compare too.
	m := logp.MustNew(8, 6, 2, 4)
	r := report.New("logpsched", m)
	r.Op = "broadcast"
	if err := s.AddReport("mem.json", r); err != nil {
		t.Fatal(err)
	}
	code, body, _ = get(t, h, "/compare?a=mem.json&b="+names[0])
	if code != 200 || !strings.Contains(body, "identical") {
		t.Fatalf("cross-registry compare: code %d body %q", code, body)
	}

	// Machine-readable verdict.
	code, body, hdr := get(t, h, "/compare?a="+names[0]+"&b="+names[2]+"&format=json")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("json compare: code %d type %q", code, hdr.Get("Content-Type"))
	}
	var v struct {
		Gated int `json:"gated"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil || v.Gated == 0 {
		t.Fatalf("json verdict: err %v body %q", err, body)
	}

	// Bad requests: missing params are 400, unknown names 404.
	if code, _, _ := get(t, h, "/compare?a="+names[0]); code != 400 {
		t.Errorf("missing b: code %d, want 400", code)
	}
	if code, _, _ := get(t, h, "/compare?a=nope@1&b="+names[0]); code != 404 {
		t.Errorf("unknown run: code %d, want 404", code)
	}
}

// TestRegimes: the view renders the store's heatmap with machine-readable
// cells and the per-key history; without a store it is a 404, not a panic.
func TestRegimes(t *testing.T) {
	s := New(obs.NewRegistry())
	if code, _, _ := get(t, s.Handler(), "/regimes"); code != 404 {
		t.Fatalf("regimes without a store: code %d, want 404", code)
	}
	st, _ := storeWithRuns(t)
	s.SetStore(st)
	h := s.Handler()

	code, body, hdr := get(t, h, "/regimes")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("regimes page: code %d type %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{"<svg", `data-p="8"`, `data-op="broadcast"`, "finish history", "3 run(s)"} {
		if !strings.Contains(body, want) {
			t.Fatalf("regimes page missing %q:\n%s", want, body)
		}
	}

	code, body, hdr = get(t, h, "/regimes?format=svg")
	if code != 200 || hdr.Get("Content-Type") != "image/svg+xml; charset=utf-8" {
		t.Fatalf("regimes svg: code %d type %q", code, hdr.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "<svg") || strings.Contains(body, "<html") {
		t.Fatalf("format=svg is not a standalone svg:\n%.200s", body)
	}
}
