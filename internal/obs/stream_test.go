package obs

import (
	"fmt"
	"strings"
	"testing"
)

// recSink collects emitted records as strings.
type recSink struct {
	recs []string
	err  error
}

func (s *recSink) Emit(rec []byte) error {
	if s.err != nil {
		return s.err
	}
	s.recs = append(s.recs, string(rec))
	return nil
}

func record(t *Tracer) {
	t.NameProcess(1, "sim")
	t.Span(1, 0, "send", 10, 2, A("to", 3))
	t.Instant(1, 3, "recv", 12)
	t.Counter(1, "inflight", 12, 7)
}

// TestStreamToMatchesWriteJSON checks that streaming produces exactly the
// records WriteJSON would have embedded, in order.
func TestStreamToMatchesWriteJSON(t *testing.T) {
	mem := NewTracer()
	record(mem)
	var doc strings.Builder
	if err := mem.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}

	sink := &recSink{}
	st := NewTracer()
	st.StreamTo(sink)
	record(st)

	body := strings.TrimSuffix(strings.TrimPrefix(doc.String(), `{"traceEvents":[`), "\n]}\n")
	var want []string
	for _, line := range strings.Split(body, ",\n") {
		want = append(want, strings.TrimPrefix(line, "\n"))
	}
	if len(sink.recs) != len(want) {
		t.Fatalf("streamed %d records, WriteJSON embeds %d", len(sink.recs), len(want))
	}
	for i := range want {
		if sink.recs[i] != want[i] {
			t.Fatalf("record %d:\nstreamed %s\nembedded %s", i, sink.recs[i], want[i])
		}
	}
	if st.Len() != mem.Len() {
		t.Fatalf("Len: streamed %d, in-memory %d", st.Len(), mem.Len())
	}
}

// TestStreamToFlushesBacklog checks that events recorded before StreamTo are
// forwarded to the sink on attach, in order, and the backlog is released.
func TestStreamToFlushesBacklog(t *testing.T) {
	tr := NewTracer()
	tr.Instant(1, 0, "before", 1)
	tr.Instant(1, 0, "after-soon", 2)
	sink := &recSink{}
	tr.StreamTo(sink)
	tr.Instant(1, 0, "streamed", 3)
	if len(sink.recs) != 3 {
		t.Fatalf("sink saw %d records, want 3", len(sink.recs))
	}
	if !strings.Contains(sink.recs[0], "before") || !strings.Contains(sink.recs[2], "streamed") {
		t.Fatalf("backlog order lost: %v", sink.recs)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if len(tr.events) != 0 {
		t.Fatalf("backlog not released: %d events retained", len(tr.events))
	}
}

func TestStreamErrSticks(t *testing.T) {
	tr := NewTracer()
	sink := &recSink{err: fmt.Errorf("sink broken")}
	tr.StreamTo(sink)
	tr.Instant(1, 0, "lost", 1)
	if tr.StreamErr() == nil {
		t.Fatal("StreamErr lost the sink error")
	}
}

// TestStreamingDoesNotAccumulate checks the point of the exercise: a
// streaming tracer's memory footprint does not grow with event count.
func TestStreamingDoesNotAccumulate(t *testing.T) {
	tr := NewTracer()
	sink := &recSink{}
	tr.StreamTo(sink)
	for i := 0; i < 10000; i++ {
		tr.Instant(1, 0, "e", int64(i))
	}
	if len(tr.events) != 0 {
		t.Fatalf("streaming tracer retained %d events", len(tr.events))
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", tr.Len())
	}
}
