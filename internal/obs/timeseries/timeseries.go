// Package timeseries is the time-resolved arm of the observability layer: a
// ring-buffer collector that samples a set of named probes — counter values,
// gauge readings, engine state, process RSS — on a wall-clock interval or a
// simulated-time window, keeping the last N samples per series in a fixed
// ring so memory stays bounded however long the run.
//
// The overhead discipline matches obs: every method is a no-op on a nil
// *Collector, so engines thread a collector through unconditionally and pay
// one pointer check per tick when collection is off. Sampling itself is
// amortized — MaybeSample returns without touching the mutex until the
// configured window has elapsed — and probes are read under a single lock
// acquisition per sample, not per series.
//
// Determinism: Snapshot renders every series sorted by name with its point
// count and running aggregates, mirroring Registry.Snapshot's
// sorted-by-kind-then-name text form, so tests can diff snapshots directly.
// WriteJSON emits series in the same sorted order.
package timeseries

import (
	"bytes"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"logpopt/internal/obs"
)

// DefaultCapacity is the per-series ring size used when New is given a
// non-positive one: enough points for a useful sparkline, small enough that
// dozens of series cost well under a megabyte.
const DefaultCapacity = 512

// Point is one sample of one series.
type Point struct {
	TS  int64 // timestamp: wall microseconds or simulated cycles
	Val int64
}

// series is one probe plus its ring of samples and running aggregates. The
// aggregates cover every sample ever taken, including points the ring has
// already evicted, so Summary stays faithful on long runs.
type series struct {
	name string
	fn   func() int64

	ring       []Point // capacity cap(ring); len grows to cap then wraps
	head       int     // index of the oldest point once the ring is full
	count      int64   // total samples taken
	first, min int64
	max, last  int64
}

func (s *series) record(ts, v int64) {
	if s.count == 0 {
		s.first, s.min, s.max = v, v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.last = v
	s.count++
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, Point{TS: ts, Val: v})
		return
	}
	s.ring[s.head] = Point{TS: ts, Val: v}
	s.head = (s.head + 1) % len(s.ring)
}

// points returns the retained window oldest-first.
func (s *series) points() []Point {
	out := make([]Point, 0, len(s.ring))
	for i := 0; i < len(s.ring); i++ {
		out = append(out, s.ring[(s.head+i)%len(s.ring)])
	}
	return out
}

// Collector samples registered probes into per-series rings. All methods are
// safe for concurrent use and nil-safe. Create one with New.
type Collector struct {
	mu     sync.Mutex
	cap    int
	byName map[string]*series
	names  []string // sorted lazily; nil when dirty
	window int64    // MaybeSample threshold, in timestamp units
	lastTS int64    // timestamp of the last sample taken
	taken  bool     // whether any sample has been taken
	stop   chan struct{}
}

// New returns a collector whose series each retain the last capacity points
// (<= 0 selects DefaultCapacity).
func New(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{cap: capacity, byName: map[string]*series{}}
}

// SetWindow sets the minimum timestamp distance between samples taken by
// MaybeSample (<= 0 means every call samples). Timestamps are whatever unit
// the caller passes — cycles for engines, microseconds for wall clocks.
func (c *Collector) SetWindow(w int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.window = w
	c.mu.Unlock()
}

// Probe registers fn as the source of the named series, replacing the
// function but keeping the recorded points if the name exists. Probes are
// called with the collector's lock held, from whichever goroutine samples —
// engine probes that read unsynchronized engine state are safe exactly when
// the engine itself calls Sample/MaybeSample (the reads then happen on the
// engine's own goroutine).
func (c *Collector) Probe(name string, fn func() int64) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	if s := c.byName[name]; s != nil {
		s.fn = fn
	} else {
		c.byName[name] = &series{name: name, fn: fn, ring: make([]Point, 0, c.cap)}
		c.names = nil
	}
	c.mu.Unlock()
}

// ProbeCounter registers the counter's current value as the named series.
func (c *Collector) ProbeCounter(name string, ctr *obs.Counter) {
	c.Probe(name, ctr.Value)
}

// ProbeGauge registers the gauge's last-set value as the named series.
func (c *Collector) ProbeGauge(name string, g *obs.Gauge) {
	c.Probe(name, g.Value)
}

// sorted returns the series names in sorted order. Caller holds c.mu.
func (c *Collector) sorted() []string {
	if c.names == nil {
		for n := range c.byName {
			c.names = append(c.names, n)
		}
		sort.Strings(c.names)
	}
	return c.names
}

// Sample reads every probe once and appends one point per series at
// timestamp ts.
func (c *Collector) Sample(ts int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sampleLocked(ts)
	c.mu.Unlock()
}

func (c *Collector) sampleLocked(ts int64) {
	c.lastTS, c.taken = ts, true
	for _, n := range c.sorted() {
		s := c.byName[n]
		s.record(ts, s.fn())
	}
}

// MaybeSample samples only when at least the configured window has elapsed
// since the last sample (always, with no window set). Engines call it once
// per tick; the common no-op path is one mutex acquisition.
func (c *Collector) MaybeSample(ts int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.taken && c.window > 0 && ts-c.lastTS < c.window {
		c.mu.Unlock()
		return
	}
	c.sampleLocked(ts)
	c.mu.Unlock()
}

// Start begins wall-clock sampling every interval (timestamps are
// microseconds since Start) in a background goroutine and returns a stop
// function, which takes one final sample so short runs never end empty.
// Stop is idempotent; Start on a nil collector returns a no-op stop.
func (c *Collector) Start(interval time.Duration) (stop func()) {
	if c == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	start := time.Now()
	ch := make(chan struct{})
	done := make(chan struct{})
	c.mu.Lock()
	c.stop = ch
	c.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ch:
				return
			case <-tick.C:
				// When a tick and the stop signal are both ready, select
				// picks arbitrarily; re-check stop so a closed channel
				// always wins and no tick samples after it.
				select {
				case <-ch:
					return
				default:
				}
				c.Sample(time.Since(start).Microseconds())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(ch)
			// Wait for the sampler goroutine to exit so the final sample
			// below is truly final: once stop returns, Samples() is stable.
			<-done
			c.Sample(time.Since(start).Microseconds())
		})
	}
}

// Len returns the number of registered series.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byName)
}

// Samples returns the number of samples taken (the max over series; series
// registered mid-run have fewer).
func (c *Collector) Samples() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var mx int64
	for _, s := range c.byName {
		if s.count > mx {
			mx = s.count
		}
	}
	return mx
}

// Series returns the retained points of one series, oldest first, and
// whether the series exists.
func (c *Collector) Series(name string) ([]Point, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byName[name]
	if s == nil {
		return nil, false
	}
	return s.points(), true
}

// SeriesSummary is the running aggregate of one series over every sample
// ever taken (not just the retained ring window).
type SeriesSummary struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	First  int64  `json:"first"`
	Last   int64  `json:"last"`
	Min    int64  `json:"min"`
	Max    int64  `json:"max"`
	Points int    `json:"points"` // retained in the ring
}

// Summary returns one SeriesSummary per series, sorted by name. Series with
// no samples yet are included with zero aggregates.
func (c *Collector) Summary() []SeriesSummary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SeriesSummary, 0, len(c.byName))
	for _, n := range c.sorted() {
		s := c.byName[n]
		out = append(out, SeriesSummary{
			Name: n, Count: s.count, First: s.first, Last: s.last,
			Min: s.min, Max: s.max, Points: len(s.ring),
		})
	}
	return out
}

// Snapshot renders every series as one line, sorted by name — deterministic
// for a given sequence of samples, mirroring Registry.Snapshot:
//
//	series <name> n=<count> first=<v> last=<v> min=<v> max=<v>
func (c *Collector) Snapshot() string {
	var b bytes.Buffer
	for _, s := range c.Summary() {
		fmt.Fprintf(&b, "series %s n=%d first=%d last=%d min=%d max=%d\n",
			s.Name, s.Count, s.First, s.Last, s.Min, s.Max)
	}
	return b.String()
}

// WriteJSON emits the retained window of every series as one JSON document,
// series sorted by name, points oldest first:
//
//	{"series":[{"name":"...","points":[[ts,val],...]},...]}
//
// The encoding is hand-rolled like the tracer's so output is deterministic
// and dependency-free. A nil collector writes an empty document.
func (c *Collector) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString(`{"series":[`)
	if c != nil {
		c.mu.Lock()
		for i, n := range c.sorted() {
			if i > 0 {
				b.WriteByte(',')
			}
			s := c.byName[n]
			b.WriteString("\n{\"name\":")
			b.WriteString(strconv.Quote(n))
			b.WriteString(`,"points":[`)
			for j, pt := range s.points() {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteByte('[')
				b.WriteString(strconv.FormatInt(pt.TS, 10))
				b.WriteByte(',')
				b.WriteString(strconv.FormatInt(pt.Val, 10))
				b.WriteByte(']')
			}
			b.WriteString(`]}`)
		}
		c.mu.Unlock()
	}
	b.WriteString("\n]}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// RSSBytes reads the process's current resident set size from
// /proc/self/statm (Linux). It returns 0 where the file is absent or
// unreadable, so probes built on it degrade to a flat zero series rather
// than failing.
func RSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	// statm: size resident shared ... in pages; field 2 is the RSS.
	i := 0
	for i < len(data) && data[i] != ' ' {
		i++
	}
	var pages int64
	for i++; i < len(data) && data[i] >= '0' && data[i] <= '9'; i++ {
		pages = pages*10 + int64(data[i]-'0')
	}
	return pages * int64(os.Getpagesize())
}

// ProbeProcess registers the standard process-level series: resident set
// size (bytes) and live goroutine count.
func (c *Collector) ProbeProcess() {
	c.Probe("process.rss.bytes", RSSBytes)
	c.Probe("process.goroutines", func() int64 { return int64(goruntime.NumGoroutine()) })
}
