package timeseries

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"logpopt/internal/obs"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Probe("x", func() int64 { return 1 })
	c.Sample(0)
	c.MaybeSample(1)
	c.SetWindow(10)
	stop := c.Start(time.Millisecond)
	stop()
	if c.Len() != 0 || c.Samples() != 0 {
		t.Fatalf("nil collector reports non-zero state")
	}
	if _, ok := c.Series("x"); ok {
		t.Fatalf("nil collector has a series")
	}
	if c.Snapshot() != "" {
		t.Fatalf("nil collector snapshot %q", c.Snapshot())
	}
	var b bytes.Buffer
	if err := c.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"series":[`) {
		t.Fatalf("nil collector JSON %q", b.String())
	}
}

func TestSampleAndAggregates(t *testing.T) {
	c := New(8)
	v := int64(0)
	c.Probe("a", func() int64 { return v })
	c.Probe("b", func() int64 { return -v })
	for i := int64(1); i <= 5; i++ {
		v = i * 10
		c.Sample(i)
	}
	pts, ok := c.Series("a")
	if !ok || len(pts) != 5 {
		t.Fatalf("series a: ok=%v pts=%v", ok, pts)
	}
	if pts[0] != (Point{TS: 1, Val: 10}) || pts[4] != (Point{TS: 5, Val: 50}) {
		t.Fatalf("series a points %v", pts)
	}
	sum := c.Summary()
	if len(sum) != 2 || sum[0].Name != "a" || sum[1].Name != "b" {
		t.Fatalf("summary order %v", sum)
	}
	a := sum[0]
	if a.Count != 5 || a.First != 10 || a.Last != 50 || a.Min != 10 || a.Max != 50 {
		t.Fatalf("summary a %+v", a)
	}
	b := sum[1]
	if b.Min != -50 || b.Max != -10 {
		t.Fatalf("summary b %+v", b)
	}
}

func TestRingEvictionKeepsAggregates(t *testing.T) {
	c := New(4)
	v := int64(0)
	c.Probe("x", func() int64 { return v })
	for i := int64(0); i < 10; i++ {
		v = i
		c.Sample(i)
	}
	pts, _ := c.Series("x")
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(pts))
	}
	// Oldest first: the last 4 samples are 6..9.
	for i, pt := range pts {
		if want := int64(6 + i); pt.TS != want || pt.Val != want {
			t.Fatalf("point %d = %v, want ts=val=%d", i, pt, want)
		}
	}
	sum := c.Summary()[0]
	// Aggregates cover evicted points too.
	if sum.Count != 10 || sum.First != 0 || sum.Min != 0 || sum.Max != 9 || sum.Points != 4 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestMaybeSampleWindow(t *testing.T) {
	c := New(16)
	n := 0
	c.Probe("x", func() int64 { n++; return int64(n) })
	c.SetWindow(10)
	for ts := int64(0); ts < 100; ts++ {
		c.MaybeSample(ts)
	}
	// Samples at 0, 10, 20, ..., 90.
	if got := c.Samples(); got != 10 {
		t.Fatalf("window sampling took %d samples, want 10", got)
	}
	pts, _ := c.Series("x")
	if pts[0].TS != 0 || pts[1].TS != 10 {
		t.Fatalf("window sample timestamps %v", pts[:2])
	}
}

func TestProbeReplacementKeepsPoints(t *testing.T) {
	c := New(8)
	c.Probe("x", func() int64 { return 1 })
	c.Sample(0)
	c.Probe("x", func() int64 { return 2 })
	c.Sample(1)
	pts, _ := c.Series("x")
	if len(pts) != 2 || pts[0].Val != 1 || pts[1].Val != 2 {
		t.Fatalf("replacement lost points: %v", pts)
	}
	if c.Len() != 1 {
		t.Fatalf("replacement duplicated the series: %d", c.Len())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	mk := func() string {
		c := New(8)
		c.Probe("zz", func() int64 { return 3 })
		c.Probe("aa", func() int64 { return 1 })
		c.Probe("mm", func() int64 { return 2 })
		c.Sample(5)
		c.Sample(6)
		return c.Snapshot()
	}
	s1, s2 := mk(), mk()
	if s1 != s2 {
		t.Fatalf("snapshots differ:\n%s\n%s", s1, s2)
	}
	want := "series aa n=2 first=1 last=1 min=1 max=1\n" +
		"series mm n=2 first=2 last=2 min=2 max=2\n" +
		"series zz n=2 first=3 last=3 min=3 max=3\n"
	if s1 != want {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", s1, want)
	}
}

func TestWriteJSONShape(t *testing.T) {
	c := New(8)
	reg := obs.NewRegistry()
	ctr := reg.Counter("hits")
	ctr.Add(7)
	c.ProbeCounter("hits", ctr)
	g := reg.Gauge("depth")
	g.Set(3)
	c.ProbeGauge("depth", g)
	c.Sample(100)
	ctr.Add(1)
	c.Sample(200)

	var b bytes.Buffer
	if err := c.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []struct {
			Name   string     `json:"name"`
			Points [][2]int64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Series) != 2 || doc.Series[0].Name != "depth" || doc.Series[1].Name != "hits" {
		t.Fatalf("series %+v", doc.Series)
	}
	hits := doc.Series[1].Points
	if len(hits) != 2 || hits[0] != [2]int64{100, 7} || hits[1] != [2]int64{200, 8} {
		t.Fatalf("hits points %v", hits)
	}
}

func TestStartStopWallClock(t *testing.T) {
	c := New(32)
	c.ProbeProcess()
	stop := c.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	if c.Samples() == 0 {
		t.Fatalf("wall-clock sampling took no samples")
	}
	pts, ok := c.Series("process.goroutines")
	if !ok || len(pts) == 0 {
		t.Fatalf("no goroutine series: ok=%v", ok)
	}
	if pts[len(pts)-1].Val < 1 {
		t.Fatalf("goroutine count %d", pts[len(pts)-1].Val)
	}
	after := c.Samples()
	time.Sleep(5 * time.Millisecond)
	if c.Samples() != after {
		t.Fatalf("collector kept sampling after stop")
	}
}

func TestRSSBytes(t *testing.T) {
	// On Linux this must be positive; elsewhere the documented fallback is 0.
	rss := RSSBytes()
	if rss < 0 {
		t.Fatalf("RSSBytes = %d", rss)
	}
}
