// Package par is the repository's shared concurrency layer: a bounded
// worker pool with deterministic result merging (ForEach, Map) and a
// first-success portfolio race with cancellation (Portfolio).
//
// Every construct here is deterministic by design: Map merges results in
// input order regardless of completion order, and Portfolio always reports
// the lowest-index hit, so callers produce byte-identical output whatever
// the parallelism limit or goroutine scheduling. That property is what lets
// the solver and the experiment harness fan out without perturbing golden
// files.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"logpopt/internal/obs"
)

// Portfolio metrics: how many races ran and how each attempt ended. The
// "stopped" count is the cancellation win — work a sequential loop would
// have done that the portfolio skipped or cut short.
var (
	mRaces    = obs.Default.Counter("par.portfolio.races")
	mHits     = obs.Default.Counter("par.portfolio.hits")
	mMisses   = obs.Default.Counter("par.portfolio.misses")
	mAborts   = obs.Default.Counter("par.portfolio.aborts")
	mStopped  = obs.Default.Counter("par.portfolio.stopped")
	mAttempts = obs.Default.Counter("par.portfolio.attempts")
)

// traceConfig is the optional portfolio tracer, swapped atomically so races
// already in flight keep a consistent view.
type traceConfig struct {
	tr  *obs.Tracer
	pid int
}

var traceCfg atomic.Pointer[traceConfig]

// SetTracer attaches tr to every subsequent Portfolio race: each attempt
// becomes a wall-clock span on its own track (tid = attempt index) under
// pid, annotated with its outcome — hit, miss, abort, or stopped (cancelled
// by a lower-index hit) — and the race itself becomes a span on tid = n
// with the winner recorded. Pass nil to detach. Tracing changes no
// scheduling decision; the winner is identical with it on or off.
func SetTracer(tr *obs.Tracer, pid int) {
	if tr == nil {
		traceCfg.Store(nil)
		return
	}
	traceCfg.Store(&traceConfig{tr: tr, pid: pid})
}

// active counts pool worker goroutines currently running, for the
// time-resolved occupancy probe. The single-worker inline path (which runs
// on the caller's goroutine with zero pool overhead) is deliberately not
// counted, so attaching a collector never perturbs the fast path.
var active atomic.Int64

// Active returns the number of pool workers running right now.
func Active() int64 { return active.Load() }

// limit is the process-wide default parallelism for pools started without an
// explicit width. It defaults to GOMAXPROCS and is settable (cmd/logpbench
// exposes it as -parallel).
var limit atomic.Int64

func init() { limit.Store(int64(runtime.GOMAXPROCS(0))) }

// Limit returns the current default parallelism (always >= 1).
func Limit() int { return int(limit.Load()) }

// SetLimit sets the default parallelism. Values < 1 are clamped to 1.
func SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	limit.Store(int64(n))
}

// workers returns the pool width for n tasks: min(Limit, n), at least 1.
func workers(n int) int {
	w := Limit()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(0..n-1) on up to Limit() workers and returns when all
// calls have finished. Tasks are claimed in index order, so with Limit() == 1
// execution is exactly the sequential loop.
func ForEach(n int, fn func(i int)) {
	w := workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			active.Add(1)
			defer active.Add(-1)
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every element of in on up to Limit() workers and returns
// the results in input order.
func Map[T, R any](in []T, fn func(T) R) []R {
	out := make([]R, len(in))
	ForEach(len(in), func(i int) { out[i] = fn(in[i]) })
	return out
}

// Outcome is the result of one portfolio attempt.
type Outcome int

// Portfolio attempt outcomes.
const (
	// Miss: the attempt failed retryably (e.g. search budget exhausted);
	// higher-index attempts may still win.
	Miss Outcome = iota
	// Hit: the attempt succeeded. The lowest-index hit wins the portfolio.
	Hit
	// Abort: the attempt failed definitively (e.g. exhaustive search proved
	// no solution exists). All other attempts are cancelled.
	Abort
)

// Stop is the cancellation token handed to each portfolio attempt. Attempts
// should poll Stopped at a coarse granularity (every few thousand search
// nodes) and return early when it reports true; the returned outcome of a
// stopped attempt is ignored.
type Stop struct {
	ceiling *atomic.Int64
	index   int
}

// Stopped reports whether the attempt has been cancelled: a lower-index
// attempt already hit (making this attempt's result irrelevant) or some
// attempt proved the whole portfolio futile. A nil Stop never stops.
func (s *Stop) Stopped() bool {
	return s != nil && s.ceiling.Load() <= int64(s.index)
}

// Portfolio races attempts 0..n-1 on up to Limit() workers and returns the
// winning index:
//
//   - If any attempt returns Abort, Portfolio returns (abortIndex, true):
//     the portfolio is futile and every other attempt is cancelled.
//   - Otherwise the winner is the LOWEST index that returned Hit; attempts
//     above a hit are cancelled (their results cannot win), attempts below
//     it always run to completion, so the winner is identical to what the
//     sequential loop "try 0, then 1, ..." would return.
//   - If nothing hit, Portfolio returns (-1, false).
//
// Attempts are claimed in index order; with Limit() == 1 the race degenerates
// to exactly the sequential loop (cancellation included).
func Portfolio(n int, attempt func(i int, stop *Stop) Outcome) (winner int, aborted bool) {
	// ceiling is an exclusive cancellation bound: attempts with index >=
	// ceiling are stopped. A hit at i lowers it to i+1; an abort to 0.
	var ceiling atomic.Int64
	ceiling.Store(int64(n))
	var mu sync.Mutex
	outcomes := make([]Outcome, n)
	cfg := traceCfg.Load()
	var raceStart int64
	if cfg != nil {
		raceStart = cfg.tr.Now()
	}
	mRaces.Inc()
	mAttempts.Add(int64(n))
	run := func(i int) {
		st := &Stop{ceiling: &ceiling, index: i}
		if st.Stopped() {
			mStopped.Inc()
			if cfg != nil {
				cfg.tr.Instant(cfg.pid, i, "attempt", cfg.tr.Now(),
					obs.A("index", i), obs.A("outcome", "stopped-before-start"))
			}
			return // outcome stays Miss; a stopped attempt cannot win
		}
		var start int64
		if cfg != nil {
			start = cfg.tr.Now()
		}
		o := attempt(i, st)
		if st.Stopped() {
			mStopped.Inc()
			if cfg != nil {
				now := cfg.tr.Now()
				cfg.tr.Span(cfg.pid, i, "attempt", start, now-start,
					obs.A("index", i), obs.A("outcome", "stopped"))
			}
			return // result arrived after cancellation; discard
		}
		mu.Lock()
		outcomes[i] = o
		mu.Unlock()
		switch o {
		case Hit:
			mHits.Inc()
			for {
				cur := ceiling.Load()
				if cur <= int64(i)+1 || ceiling.CompareAndSwap(cur, int64(i)+1) {
					break
				}
			}
		case Abort:
			mAborts.Inc()
			ceiling.Store(0)
		default:
			mMisses.Inc()
		}
		if cfg != nil {
			now := cfg.tr.Now()
			name := [...]string{Miss: "miss", Hit: "hit", Abort: "abort"}[o]
			cfg.tr.Span(cfg.pid, i, "attempt", start, now-start,
				obs.A("index", i), obs.A("outcome", name))
		}
	}
	ForEach(n, run)
	winner, aborted = -1, false
	for i := 0; i < n; i++ {
		if outcomes[i] == Abort {
			winner, aborted = i, true
			break
		}
		if outcomes[i] == Hit {
			winner = i
			break
		}
	}
	if cfg != nil {
		now := cfg.tr.Now()
		cfg.tr.Span(cfg.pid, n, "portfolio", raceStart, now-raceStart,
			obs.A("attempts", n), obs.A("winner", winner), obs.A("aborted", aborted))
	}
	return winner, aborted
}
