package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func withLimit(t *testing.T, n int, f func()) {
	t.Helper()
	old := Limit()
	SetLimit(n)
	defer SetLimit(old)
	f()
}

func TestSetLimitClamps(t *testing.T) {
	old := Limit()
	defer SetLimit(old)
	SetLimit(-3)
	if Limit() != 1 {
		t.Fatalf("SetLimit(-3): Limit() = %d, want 1", Limit())
	}
	SetLimit(7)
	if Limit() != 7 {
		t.Fatalf("SetLimit(7): Limit() = %d, want 7", Limit())
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, lim := range []int{1, 2, 4, 16} {
		withLimit(t, lim, func() {
			const n = 1000
			hits := make([]atomic.Int64, n)
			ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("limit %d: index %d ran %d times", lim, i, got)
				}
			}
		})
	}
}

func TestMapPreservesInputOrder(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	for _, lim := range []int{1, 3, 8} {
		withLimit(t, lim, func() {
			out := Map(in, func(x int) int {
				if x%7 == 0 {
					runtime.Gosched() // shuffle completion order
				}
				return x * x
			})
			for i, v := range out {
				if v != i*i {
					t.Fatalf("limit %d: out[%d] = %d, want %d", lim, i, v, i*i)
				}
			}
		})
	}
}

func TestPortfolioLowestHitWins(t *testing.T) {
	// Attempts 2, 5, 9 hit; the winner must always be 2 even when higher
	// indices finish first.
	hitters := map[int]bool{2: true, 5: true, 9: true}
	for _, lim := range []int{1, 2, 4, 16} {
		withLimit(t, lim, func() {
			for trial := 0; trial < 50; trial++ {
				winner, aborted := Portfolio(12, func(i int, stop *Stop) Outcome {
					if i > 6 {
						// Let high indices race ahead.
						if hitters[i] {
							return Hit
						}
						return Miss
					}
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
					if hitters[i] {
						return Hit
					}
					return Miss
				})
				if aborted || winner != 2 {
					t.Fatalf("limit %d trial %d: winner=%d aborted=%v, want 2/false", lim, trial, winner, aborted)
				}
			}
		})
	}
}

func TestPortfolioAllMiss(t *testing.T) {
	winner, aborted := Portfolio(8, func(i int, stop *Stop) Outcome { return Miss })
	if winner != -1 || aborted {
		t.Fatalf("all-miss portfolio: winner=%d aborted=%v, want -1/false", winner, aborted)
	}
}

func TestPortfolioAbortCancelsAll(t *testing.T) {
	withLimit(t, 4, func() {
		var started atomic.Int64
		winner, aborted := Portfolio(64, func(i int, stop *Stop) Outcome {
			started.Add(1)
			if i == 0 {
				return Abort
			}
			// Busy-wait until cancelled, as a real search poll would.
			for !stop.Stopped() {
				runtime.Gosched()
			}
			return Miss
		})
		if !aborted || winner != 0 {
			t.Fatalf("abort portfolio: winner=%d aborted=%v, want 0/true", winner, aborted)
		}
		// The abort must prevent most of the 64 attempts from starting.
		if n := started.Load(); n > 32 {
			t.Fatalf("abort cancelled late: %d of 64 attempts started", n)
		}
	})
}

func TestPortfolioHitCancelsOnlyHigherIndices(t *testing.T) {
	withLimit(t, 2, func() {
		var ranBelow atomic.Int64
		winner, aborted := Portfolio(8, func(i int, stop *Stop) Outcome {
			switch {
			case i == 3:
				return Hit
			case i < 3:
				// Attempts below the hit must run to completion so the
				// lowest-index winner is decided exactly.
				time.Sleep(time.Millisecond)
				ranBelow.Add(1)
				return Miss
			default:
				return Miss
			}
		})
		if aborted || winner != 3 {
			t.Fatalf("winner=%d aborted=%v, want 3/false", winner, aborted)
		}
		if n := ranBelow.Load(); n != 3 {
			t.Fatalf("attempts below the hit: %d completed, want 3", n)
		}
	})
}

func TestNilStopNeverStops(t *testing.T) {
	var s *Stop
	if s.Stopped() {
		t.Fatal("nil *Stop reported Stopped() = true")
	}
}
