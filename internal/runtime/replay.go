package runtime

import (
	"sort"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// ScheduleHandlers converts a communication schedule into per-processor
// handlers that replay its send events at their scheduled virtual times.
// Receptions are left to the runtime's port discipline, so running the
// handlers and comparing the resulting trace against the schedule's own recv
// events cross-checks the schedule's arrival bookkeeping against a second,
// independently implemented machine.
//
// The payload of every replayed message is its item id. No item-availability
// checking is done: the handlers transmit ids, not values, and trust the
// schedule. Use ReplayHandlers for the full replay semantics the simulator
// applies.
func ScheduleHandlers(s *schedule.Schedule) []Handler {
	return replayHandlers(s, nil, false)
}

// ReplayHandlers is ScheduleHandlers under the simulator's replay contract:
// a send is dropped (and recorded as a violation) when the sender does not
// hold the item yet — availability flows from the given origins and from the
// messages this processor actually received, o cycles after each reception —
// or when the destination is out of range, the sender itself, or the
// scheduled time is negative. Port-rule violations are recorded by Send as
// usual. Replaying a schedule through these handlers and through sim.Replay
// must produce identical traces and agree on whether violations occurred;
// the conformance harness (internal/conform) enforces exactly that.
func ReplayHandlers(s *schedule.Schedule, origins map[int]schedule.Origin) []Handler {
	return replayHandlers(s, origins, true)
}

func replayHandlers(s *schedule.Schedule, origins map[int]schedule.Origin, checkAvail bool) []Handler {
	perProc := make([][]schedule.Event, s.M.P)
	for _, ev := range s.Events {
		if ev.Op == schedule.OpSend && ev.Proc >= 0 && ev.Proc < s.M.P {
			perProc[ev.Proc] = append(perProc[ev.Proc], ev)
		}
	}
	// Group origins by owning processor up front: scanning the whole origin
	// map once per processor is O(P * items), which at P ~ 1e5 with one item
	// per processor (reduce, summation) turns handler construction into
	// minutes of map iteration.
	type originAt struct {
		item int
		at   logp.Time
	}
	var originsByProc [][]originAt
	if checkAvail {
		originsByProc = make([][]originAt, s.M.P)
		for item, og := range origins {
			if og.Proc >= 0 && og.Proc < s.M.P {
				originsByProc[og.Proc] = append(originsByProc[og.Proc], originAt{item, og.Time})
			}
		}
	}
	o := s.M.O
	handlers := make([]Handler, s.M.P)
	for p := range perProc {
		evs := perProc[p]
		if len(evs) == 0 {
			continue
		}
		// Full deterministic key: sort.Slice is unstable, so ordering by
		// Time alone would make same-instant sends race for the port.
		sort.Slice(evs, func(i, j int) bool {
			a, b := evs[i], evs[j]
			if a.Time != b.Time {
				return a.Time < b.Time
			}
			if a.Item != b.Item {
				return a.Item < b.Item
			}
			return a.Peer < b.Peer
		})
		var avail map[int]logp.Time
		if checkAvail {
			avail = make(map[int]logp.Time, len(originsByProc[p]))
			for _, oa := range originsByProc[p] {
				if cur, ok := avail[oa.item]; !ok || oa.at < cur {
					avail[oa.item] = oa.at
				}
			}
		}
		next := 0
		handlers[p] = func(pr *Proc, now logp.Time) {
			if checkAvail {
				for _, msg := range pr.Received() {
					if cur, ok := avail[msg.Item]; !ok || msg.RecvdAt+o < cur {
						avail[msg.Item] = msg.RecvdAt + o
					}
				}
			}
			if now == 0 {
				// The clock starts at 0; skip (and under replay semantics
				// record) sends scheduled before then so they cannot jam
				// the cursor.
				for next < len(evs) && evs[next].Time < 0 {
					ev := evs[next]
					next++
					if checkAvail {
						pr.Violate("replay", "runtime: proc %d send of item %d at negative time %d",
							pr.ID, ev.Item, ev.Time)
					}
				}
			}
			for next < len(evs) && evs[next].Time == now {
				ev := evs[next]
				next++
				if checkAvail {
					if ev.Peer < 0 || ev.Peer >= s.M.P {
						pr.Violate(schedule.VBadProc,
							"runtime: proc %d send of item %d to out-of-range %d", pr.ID, ev.Item, ev.Peer)
						continue
					}
					if ev.Peer == pr.ID {
						pr.Violate(schedule.VSelfSend,
							"runtime: proc %d sends item %d to itself", pr.ID, ev.Item)
						continue
					}
					if t, ok := avail[ev.Item]; !ok || t > now {
						pr.Violate(schedule.VAvail,
							"runtime: proc %d does not hold item %d at time %d", pr.ID, ev.Item, now)
						continue
					}
				}
				_ = pr.Send(now, ev.Peer, ev.Item, ev.Item)
			}
		}
	}
	return handlers
}

// Horizon returns a virtual-time bound by which a strict-mode schedule
// replay is certainly finished: last send + o + L + o + 1.
func Horizon(s *schedule.Schedule) logp.Time {
	var last logp.Time
	for _, ev := range s.Events {
		if ev.Op == schedule.OpSend && ev.Time > last {
			last = ev.Time
		}
	}
	return last + 2*s.M.O + s.M.L + 2
}

// DrainHorizon bounds a buffered-mode replay, where each queued message may
// wait up to max(g, o) cycles for its receive slot after the last arrival:
// Horizon plus that per-message allowance for every send in the schedule.
func DrainHorizon(s *schedule.Schedule) logp.Time {
	step := s.M.G
	if s.M.O > step {
		step = s.M.O
	}
	n := 0
	for _, ev := range s.Events {
		if ev.Op == schedule.OpSend {
			n++
		}
	}
	return Horizon(s) + logp.Time(n+1)*step
}
