package runtime

import (
	"sort"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// ScheduleHandlers converts a communication schedule into per-processor
// handlers that replay its send events at their scheduled virtual times.
// Receptions are left to the runtime's port discipline, so running the
// handlers and comparing the resulting trace against the schedule's own recv
// events cross-checks the schedule's arrival bookkeeping against a second,
// independently implemented machine.
//
// The payload of every replayed message is its item id.
func ScheduleHandlers(s *schedule.Schedule) []Handler {
	perProc := make([][]schedule.Event, s.M.P)
	for _, ev := range s.Events {
		if ev.Op == schedule.OpSend && ev.Proc >= 0 && ev.Proc < s.M.P {
			perProc[ev.Proc] = append(perProc[ev.Proc], ev)
		}
	}
	handlers := make([]Handler, s.M.P)
	for p := range perProc {
		evs := perProc[p]
		if len(evs) == 0 {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
		next := 0
		handlers[p] = func(pr *Proc, now logp.Time) {
			for next < len(evs) && evs[next].Time == now {
				ev := evs[next]
				next++
				_ = pr.Send(now, ev.Peer, ev.Item, ev.Item)
			}
		}
	}
	return handlers
}

// Horizon returns a virtual-time bound by which a schedule's replay is
// certainly finished: last send + o + L + o + 1.
func Horizon(s *schedule.Schedule) logp.Time {
	var last logp.Time
	for _, ev := range s.Events {
		if ev.Op == schedule.OpSend && ev.Time > last {
			last = ev.Time
		}
	}
	return last + 2*s.M.O + s.M.L + 2
}
