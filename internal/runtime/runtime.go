// Package runtime is a goroutine-based message-passing runtime that executes
// LogP algorithms as real concurrent programs. A worker pool multiplexes the
// P processors onto GOMAXPROCS workers; a coordinator advances a virtual
// clock in lockstep steps, and messages travel between processors with the
// machine's latency while the ports obey the overhead and gap rules.
//
// This is the repository's stand-in for the distributed-memory hardware the
// paper targets: the algorithms' communication schedules run unmodified as
// concurrent message-passing code, with payloads (not just item ids) so that
// combining and summation actually compute.
//
// Each step runs in three phases. Phase A (coordinator): arrivals due this
// step move from the in-flight set to per-processor queues. Phase B
// (parallel): workers claim contiguous processor chunks and, per processor,
// apply the reception discipline and run the handler — touching only that
// processor's state. Phase C (coordinator): outboxes, trace events, and
// recorded violations are collected in processor order. The original design
// spawned one goroutine per processor per step, which at P ~ 10^6 meant a
// million goroutine launches and an O(P) barrier every virtual cycle; the
// chunked pool does the same work with GOMAXPROCS launches per step and
// skips idle processors during collection.
//
// Determinism: each processor's state is touched only by the worker that
// owns its chunk during phase B; phase C merges in processor order, so runs
// are reproducible despite real concurrency.
//
// Violation semantics match the simulator's: breaking a machine rule (busy
// port, gap, capacity, bad destination) records a schedule.Violation and the
// run continues — a busy receive port still receives, an illegal send is
// dropped. Inspect Violations() after the run; a run never aborts. This is
// the contract the conformance harness (internal/conform) relies on to diff
// the runtime against the discrete-event simulator and the validator.
package runtime

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/schedule"
)

// Package-level metric handles. All updates happen in the coordinator's
// single-threaded sections (delivery and outbox collection), a handful of
// atomic adds per step, never inside the handler goroutines' hot work.
var (
	mSends       = obs.Default.Counter("runtime.sends")
	mRecvs       = obs.Default.Counter("runtime.recvs")
	mSteps       = obs.Default.Counter("runtime.steps")
	mPortWait    = obs.Default.Histogram("runtime.portwait.cycles")
	gPendingHigh = obs.Default.Gauge("runtime.pending")
)

// Message is a payload-carrying message between processors.
type Message struct {
	From, To int
	Item     int
	Payload  any
	SentAt   logp.Time
	Arrive   logp.Time // SentAt + o + L
	RecvdAt  logp.Time // time reception began (set on delivery)
}

// Proc is the per-processor handle passed to handlers. Handlers must only
// use their own Proc; the runtime runs handlers for distinct processors
// concurrently.
type Proc struct {
	ID    int
	State any // handler-owned state

	rt            *Runtime
	outbox        []Message
	inboxThisStep []Message // messages received this step (post-discipline)
	queue         []Message // arrived but not yet received (buffered mode)
	lastSendStart logp.Time
	lastRecvStart logp.Time
	busyUntil     logp.Time
	maxQueue      int
	pending       []schedule.Violation // recorded by the handler goroutine
}

const minusInf = logp.Time(-1) << 40

// CanSend reports whether this processor's send port is free this step.
// The gap rule (G >= 1, enforced by Machine.Validate) already limits a
// processor to one send start per step.
func (p *Proc) CanSend(now logp.Time) bool {
	return now >= p.lastSendStart+p.rt.m.G && now >= p.busyUntil
}

// Violate records a model violation observed at this processor. It is safe
// to call from the handler goroutine; the coordinator merges per-processor
// violations in processor order after each step, so runs stay deterministic.
func (p *Proc) Violate(kind, format string, args ...any) {
	p.pending = append(p.pending, schedule.Violation{
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Send queues a message for transmission beginning at the current step. At
// most one send may start per step per processor, and the gap/overhead rules
// apply. An illegal send records a violation, is dropped, and is reported to
// the caller as an error; the run continues either way.
func (p *Proc) Send(now logp.Time, to, item int, payload any) error {
	if to < 0 || to >= p.rt.m.P {
		err := fmt.Errorf("runtime: proc %d: destination %d out of range (P=%d)", p.ID, to, p.rt.m.P)
		p.Violate(schedule.VBadProc, "%v", err)
		return err
	}
	if to == p.ID {
		err := fmt.Errorf("runtime: proc %d: send of item %d to itself", p.ID, item)
		p.Violate(schedule.VSelfSend, "%v", err)
		return err
	}
	if !p.CanSend(now) {
		err := fmt.Errorf("runtime: proc %d: send port busy at %d", p.ID, now)
		p.Violate(schedule.VGap, "%v", err)
		return err
	}
	p.lastSendStart = now
	if end := now + p.rt.m.O; end > p.busyUntil {
		p.busyUntil = end
	}
	p.outbox = append(p.outbox, Message{
		From: p.ID, To: to, Item: item, Payload: payload,
		SentAt: now, Arrive: now + p.rt.m.O + p.rt.m.L,
	})
	return nil
}

// Received returns the messages received by this processor during the
// current step (after the port discipline has been applied).
func (p *Proc) Received() []Message { return p.inboxThisStep }

// Handler is the per-step program of one processor. It is called once per
// virtual time step, on a pool worker (handlers for distinct processors may
// run concurrently), after that step's receptions have been delivered.
type Handler func(p *Proc, now logp.Time)

// Runtime executes P handlers in barrier-synchronized virtual time.
type Runtime struct {
	// Tracer, when non-nil, records a flight recorder of the run on
	// per-processor tracks (send/recv overhead spans with port-wait
	// annotations, in-flight and queued counters). Timestamps are virtual
	// cycles. TracePID selects the trace process id (defaults to 2 so a
	// runtime overlays cleanly with a simulator engine in one file). Set
	// both before the first Step.
	Tracer   *obs.Tracer
	TracePID int

	// TS, when non-nil, receives a virtual-time series of the run: the
	// runtime registers probes for its clock, in-flight and queued message
	// counts, and the worker pool's phase-B occupancy (total dirty
	// processors, plus a per-chunk-shard series when the partition is small
	// enough to chart), sampled once per collector window at the end of each
	// step. Probes read coordinator-owned state and sampling happens in the
	// coordinator's section of Step, so no synchronization is needed. Set
	// before the first Step, like Tracer.
	TS *timeseries.Collector

	m          logp.Machine
	mode       Mode
	procs      []Proc // contiguous slab; Proc(i) hands out &procs[i]
	handlers   []Handler
	now        logp.Time
	inflight   []Message
	queued     int // total messages sitting in per-processor queues
	trace      *schedule.Schedule
	violations []schedule.Violation
	// chunks is the fixed partition of [0, P) that phase-B workers claim;
	// workers is the pool size (min(GOMAXPROCS, len(chunks)) at creation).
	chunks  []chunk
	workers int
	// Last step's phase-B occupancy, read by the TS probes: how many
	// processors produced work and how many chunk shards were touched.
	dirtyProcs, busyChunks int
	// In-network interval end times per processor for the capacity bound,
	// mirroring the simulator's bookkeeping (see sim.checkCapacity).
	outEnds [][]logp.Time
	inEnds  [][]logp.Time
}

// chunk is one contiguous range of processors owned by a single worker
// during phase B. dirty and dequeued are that worker's output for phase C:
// which processors produced something to collect, and how many queued
// messages the discipline consumed.
type chunk struct {
	lo, hi   int
	dirty    []int32
	dequeued int
}

// Mode mirrors sim: Strict receives arrivals immediately (recording a
// violation if the port is busy); Buffered queues them.
type Mode int

// Reception disciplines.
const (
	Strict Mode = iota
	Buffered
)

// New creates a runtime for machine m. handlers must have length m.P (nil
// entries mean "idle processor").
func New(m logp.Machine, mode Mode, handlers []Handler) (*Runtime, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(handlers) != m.P {
		return nil, fmt.Errorf("runtime: %d handlers for P=%d", len(handlers), m.P)
	}
	rt := &Runtime{m: m, mode: mode, handlers: handlers, trace: &schedule.Schedule{M: m}}
	rt.procs = make([]Proc, m.P)
	for i := range rt.procs {
		rt.procs[i] = Proc{ID: i, rt: rt, lastSendStart: minusInf, lastRecvStart: minusInf, busyUntil: minusInf}
	}
	// Partition processors into contiguous chunks: enough per worker for
	// load balancing (4x oversubscription), but no smaller than 64 so tiny
	// machines run on a single chunk without pool overhead.
	workers := goruntime.GOMAXPROCS(0)
	if workers > m.P {
		workers = m.P
	}
	chunkSize := (m.P + workers*4 - 1) / (workers * 4)
	if chunkSize < 64 {
		chunkSize = 64
	}
	for lo := 0; lo < m.P; lo += chunkSize {
		hi := lo + chunkSize
		if hi > m.P {
			hi = m.P
		}
		rt.chunks = append(rt.chunks, chunk{lo: lo, hi: hi})
	}
	if workers > len(rt.chunks) {
		workers = len(rt.chunks)
	}
	rt.workers = workers
	rt.outEnds = make([][]logp.Time, m.P)
	rt.inEnds = make([][]logp.Time, m.P)
	return rt, nil
}

// Proc returns the handle for processor id (for pre-run state injection).
// Handles stay valid for the runtime's lifetime: the processor slab is
// allocated once in New and never moves.
func (rt *Runtime) Proc(id int) *Proc { return &rt.procs[id] }

// Now returns the current virtual time.
func (rt *Runtime) Now() logp.Time { return rt.now }

// tracePID returns the pid used for this runtime's trace tracks.
func (rt *Runtime) tracePID() int {
	if rt.TracePID != 0 {
		return rt.TracePID
	}
	return 2
}

// Step advances one virtual time step: delivers arrivals (phase A), applies
// the reception discipline and runs all handlers on the worker pool (phase
// B), then collects outboxes, trace events, and recorded violations in
// processor order (phase C).
func (rt *Runtime) Step() {
	now := rt.now
	if rt.TS != nil && now == 0 {
		rt.registerProbes()
	}
	if rt.Tracer != nil && now == 0 {
		pid := rt.tracePID()
		mode := "strict"
		if rt.mode == Buffered {
			mode = "buffered"
		}
		rt.Tracer.NameProcess(pid, fmt.Sprintf("runtime-%s %v", mode, rt.m))
		for p := 0; p < rt.m.P; p++ {
			rt.Tracer.NameThread(pid, p, fmt.Sprintf("P%d", p))
		}
	}
	// Phase A: deliver arrivals due now into per-processor queues.
	rest := rt.inflight[:0]
	for _, msg := range rt.inflight {
		if msg.Arrive <= now {
			p := &rt.procs[msg.To]
			p.queue = append(p.queue, msg)
			if len(p.queue) > p.maxQueue {
				p.maxQueue = len(p.queue)
			}
			rt.queued++
		} else {
			rest = append(rest, msg)
		}
	}
	rt.inflight = rest
	// Phase B: discipline + handlers, parallel over processor chunks.
	rt.runChunks(now)
	// Phase C: collect from dirty processors in processor order
	// (determinism); idle processors cost nothing here.
	var nSends, nRecvs int64
	rt.dirtyProcs, rt.busyChunks = 0, 0
	for ci := range rt.chunks {
		c := &rt.chunks[ci]
		rt.queued -= c.dequeued
		if len(c.dirty) > 0 {
			rt.busyChunks++
			rt.dirtyProcs += len(c.dirty)
		}
		for _, id := range c.dirty {
			p := &rt.procs[id]
			for i := range p.inboxThisStep {
				msg := &p.inboxThisStep[i]
				rt.trace.Recv(p.ID, now, msg.Item, msg.From)
				nRecvs++
				mPortWait.Observe(int64(now - msg.Arrive))
				if rt.Tracer != nil {
					rt.Tracer.Span(rt.tracePID(), p.ID, "recv", int64(now), int64(rt.m.O),
						obs.A("item", msg.Item), obs.A("from", msg.From),
						obs.A("waited", int64(now-msg.Arrive)))
				}
			}
			for _, msg := range p.outbox {
				rt.checkCapacity(msg.From, msg.To, msg.SentAt)
				rt.inflight = append(rt.inflight, msg)
				rt.trace.Send(msg.From, msg.SentAt, msg.Item, msg.To)
				nSends++
				if rt.Tracer != nil {
					rt.Tracer.Span(rt.tracePID(), msg.From, "send", int64(msg.SentAt), int64(rt.m.O),
						obs.A("item", msg.Item), obs.A("to", msg.To))
				}
			}
			p.outbox = p.outbox[:0]
			rt.violations = append(rt.violations, p.pending...)
			p.pending = p.pending[:0]
		}
	}
	mSends.Add(nSends)
	mRecvs.Add(nRecvs)
	mSteps.Inc()
	pending := int64(len(rt.inflight) + rt.queued)
	gPendingHigh.Set(pending)
	if rt.Tracer != nil {
		pid := rt.tracePID()
		rt.Tracer.Counter(pid, "inflight", int64(now), int64(len(rt.inflight)))
		rt.Tracer.Counter(pid, "pending", int64(now), pending)
	}
	if rt.TS != nil {
		rt.TS.MaybeSample(int64(now))
	}
	rt.now++
}

// maxChunkSeries bounds how many per-chunk occupancy series the runtime
// registers: small partitions get one series per shard, huge ones only the
// aggregates, so a million-processor run never floods the collector.
const maxChunkSeries = 64

// registerProbes points the attached collector's runtime series at this
// runtime's coordinator-owned state.
func (rt *Runtime) registerProbes() {
	rt.TS.Probe("runtime.now", func() int64 { return int64(rt.now) })
	rt.TS.Probe("runtime.inflight", func() int64 { return int64(len(rt.inflight)) })
	rt.TS.Probe("runtime.queued", func() int64 { return int64(rt.queued) })
	rt.TS.Probe("runtime.procs.dirty", func() int64 { return int64(rt.dirtyProcs) })
	rt.TS.Probe("runtime.chunks.busy", func() int64 { return int64(rt.busyChunks) })
	if len(rt.chunks) <= maxChunkSeries {
		for i := range rt.chunks {
			c := &rt.chunks[i]
			rt.TS.Probe(fmt.Sprintf("runtime.chunk%02d.dirty", i),
				func() int64 { return int64(len(c.dirty)) })
		}
	}
}

// runChunks executes phase B: workers claim chunks off a shared counter and
// run runChunk on each. With a single chunk (small machines) it runs inline
// — no goroutines, no barrier.
func (rt *Runtime) runChunks(now logp.Time) {
	if rt.workers <= 1 || len(rt.chunks) <= 1 {
		for ci := range rt.chunks {
			rt.runChunk(&rt.chunks[ci], now)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < rt.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= len(rt.chunks) {
					return
				}
				rt.runChunk(&rt.chunks[ci], now)
			}
		}()
	}
	wg.Wait()
}

// runChunk processes one chunk of processors for the step: clears last
// step's inbox, applies the reception discipline to queued arrivals, runs
// the handler, and records which processors have output for phase C. It
// touches only state owned by processors in [c.lo, c.hi).
func (rt *Runtime) runChunk(c *chunk, now logp.Time) {
	c.dirty = c.dirty[:0]
	c.dequeued = 0
	for i := c.lo; i < c.hi; i++ {
		p := &rt.procs[i]
		p.inboxThisStep = p.inboxThisStep[:0]
		if len(p.queue) > 0 {
			c.dequeued += rt.discipline(p, now)
		}
		if h := rt.handlers[i]; h != nil {
			h(p, now)
		}
		if len(p.inboxThisStep) > 0 || len(p.outbox) > 0 || len(p.pending) > 0 {
			c.dirty = append(c.dirty, int32(i))
		}
	}
}

// discipline applies the reception rules to p's queued arrivals at time now
// and returns how many messages it consumed. Violations go to p.pending (the
// coordinator merges them in processor order), never to shared state.
func (rt *Runtime) discipline(p *Proc, now logp.Time) int {
	sort.Slice(p.queue, func(i, j int) bool {
		a, b := p.queue[i], p.queue[j]
		if a.Arrive != b.Arrive {
			return a.Arrive < b.Arrive
		}
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		return a.From < b.From
	})
	switch rt.mode {
	case Strict:
		// Everything that has arrived must be received now; a busy port is
		// a violation but the reception still happens, exactly as in the
		// simulator.
		for _, msg := range p.queue {
			if now < p.lastRecvStart+rt.m.G || now < p.busyUntil {
				p.Violate(schedule.VGap, "runtime: proc %d: receive port busy for item %d at %d",
					p.ID, msg.Item, now)
			}
			p.receive(msg, now)
		}
		n := len(p.queue)
		p.queue = p.queue[:0]
		return n
	case Buffered:
		if now >= p.lastRecvStart+rt.m.G && now >= p.busyUntil {
			msg := p.queue[0]
			copy(p.queue, p.queue[1:])
			p.queue = p.queue[:len(p.queue)-1]
			p.receive(msg, now)
			return 1
		}
	}
	return 0
}

// checkCapacity enforces the network capacity bound ceil(L/g) on the message
// sent at time at, recording a violation when exceeded. Sends are processed
// in nondecreasing time order, so per-processor end-time queues suffice.
func (rt *Runtime) checkCapacity(from, to int, at logp.Time) {
	capN := rt.m.Capacity()
	start := at + rt.m.O
	end := start + rt.m.L
	rt.outEnds[from] = pruneEnds(rt.outEnds[from], start)
	rt.inEnds[to] = pruneEnds(rt.inEnds[to], start)
	if len(rt.outEnds[from])+1 > capN {
		rt.violations = append(rt.violations, schedule.Violation{
			Kind: schedule.VCapacity,
			Msg: fmt.Sprintf("runtime: %d messages in transit from proc %d at time %d (capacity %d)",
				len(rt.outEnds[from])+1, from, start, capN),
		})
	}
	if len(rt.inEnds[to])+1 > capN {
		rt.violations = append(rt.violations, schedule.Violation{
			Kind: schedule.VCapacity,
			Msg: fmt.Sprintf("runtime: %d messages in transit to proc %d at time %d (capacity %d)",
				len(rt.inEnds[to])+1, to, start, capN),
		})
	}
	rt.outEnds[from] = append(rt.outEnds[from], end)
	rt.inEnds[to] = append(rt.inEnds[to], end)
}

func pruneEnds(ends []logp.Time, s logp.Time) []logp.Time {
	i := 0
	for i < len(ends) && ends[i] <= s {
		i++
	}
	if i > 0 {
		ends = append(ends[:0], ends[i:]...)
	}
	return ends
}

// receive commits one message to p's inbox at time now, updating only p's
// own port state — safe inside phase B. Trace events and metrics for the
// reception are emitted by the coordinator in phase C from inboxThisStep.
func (p *Proc) receive(msg Message, now logp.Time) {
	msg.RecvdAt = now
	p.lastRecvStart = now
	if end := now + p.rt.m.O; end > p.busyUntil {
		p.busyUntil = end
	}
	p.inboxThisStep = append(p.inboxThisStep, msg)
}

// Run executes steps until the virtual clock reaches until (exclusive).
func (rt *Runtime) Run(until logp.Time) {
	for rt.now < until {
		rt.Step()
	}
}

// Quiesce runs until communication has started (at least one message sent)
// and then fully drained (nothing in flight or queued, and a step passes
// without new sends), up to horizon. If the handlers never communicate,
// Quiesce runs to the horizon.
func (rt *Runtime) Quiesce(horizon logp.Time) {
	started := false
	for rt.now < horizon {
		rt.Step()
		if len(rt.inflight) > 0 {
			started = true
		}
		if started && !rt.Pending() {
			return
		}
	}
}

// Pending reports whether any message is still in flight or queued.
func (rt *Runtime) Pending() bool {
	return len(rt.inflight) > 0 || rt.queued > 0
}

// Trace returns the executed communication schedule.
func (rt *Runtime) Trace() *schedule.Schedule {
	s := &schedule.Schedule{M: rt.m, Events: append([]schedule.Event(nil), rt.trace.Events...)}
	s.Sort()
	return s
}

// Violations returns a copy of the model violations recorded so far, in the
// deterministic order the coordinator merged them.
func (rt *Runtime) Violations() []schedule.Violation {
	return append([]schedule.Violation(nil), rt.violations...)
}

// MaxQueue returns the largest receive-queue occupancy seen at any processor.
func (rt *Runtime) MaxQueue() int {
	mx := 0
	for i := range rt.procs {
		if rt.procs[i].maxQueue > mx {
			mx = rt.procs[i].maxQueue
		}
	}
	return mx
}

// ProcMaxQueues returns the receive-queue high-water mark per processor.
// Note that in Strict mode arrivals pass through the queue within the
// delivery step, so the high-water counts simultaneous arrivals (the
// simulator's Strict buffers are always 0 — compare queue marks only
// between buffered backends).
func (rt *Runtime) ProcMaxQueues() []int {
	mq := make([]int, len(rt.procs))
	for i := range rt.procs {
		mq[i] = rt.procs[i].maxQueue
	}
	return mq
}

// Stats computes port-activity statistics from the executed trace via the
// shared schedule.ComputeStats — the parity method to sim.Engine.Stats, so
// the conformance harness can diff the two field by field. The runtime has
// no origin table, so the caller supplies the span (finish time); pass the
// finish recomputed from Trace() and the case's origins.
func (rt *Runtime) Stats(span logp.Time) schedule.Stats {
	return schedule.ComputeStats(rt.trace, span, rt.ProcMaxQueues())
}
