// Package runtime is a goroutine-based message-passing runtime that executes
// LogP algorithms as real concurrent programs. One goroutine runs per
// processor; a coordinator advances a virtual clock in lockstep steps, and
// messages travel between goroutines with the machine's latency while the
// ports obey the overhead and gap rules.
//
// This is the repository's stand-in for the distributed-memory hardware the
// paper targets: the algorithms' communication schedules run unmodified as
// concurrent message-passing code, with payloads (not just item ids) so that
// combining and summation actually compute.
//
// Determinism: each processor goroutine touches only its own state during a
// step; the coordinator merges outboxes in processor order, so runs are
// reproducible despite real concurrency.
//
// Violation semantics match the simulator's: breaking a machine rule (busy
// port, gap, capacity, bad destination) records a schedule.Violation and the
// run continues — a busy receive port still receives, an illegal send is
// dropped. Inspect Violations() after the run; a run never aborts. This is
// the contract the conformance harness (internal/conform) relies on to diff
// the runtime against the discrete-event simulator and the validator.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/schedule"
)

// Package-level metric handles. All updates happen in the coordinator's
// single-threaded sections (delivery and outbox collection), a handful of
// atomic adds per step, never inside the handler goroutines' hot work.
var (
	mSends       = obs.Default.Counter("runtime.sends")
	mRecvs       = obs.Default.Counter("runtime.recvs")
	mSteps       = obs.Default.Counter("runtime.steps")
	mPortWait    = obs.Default.Histogram("runtime.portwait.cycles")
	gPendingHigh = obs.Default.Gauge("runtime.pending")
)

// Message is a payload-carrying message between processors.
type Message struct {
	From, To int
	Item     int
	Payload  any
	SentAt   logp.Time
	Arrive   logp.Time // SentAt + o + L
	RecvdAt  logp.Time // time reception began (set on delivery)
}

// Proc is the per-processor handle passed to handlers. Handlers must only
// use their own Proc; the runtime runs handlers for distinct processors
// concurrently.
type Proc struct {
	ID    int
	State any // handler-owned state

	rt            *Runtime
	outbox        []Message
	inboxThisStep []Message // messages received this step (post-discipline)
	queue         []Message // arrived but not yet received (buffered mode)
	lastSendStart logp.Time
	lastRecvStart logp.Time
	busyUntil     logp.Time
	maxQueue      int
	sentThisStep  bool
	pending       []schedule.Violation // recorded by the handler goroutine
}

const minusInf = logp.Time(-1) << 40

// CanSend reports whether this processor's send port is free this step.
func (p *Proc) CanSend(now logp.Time) bool {
	return now >= p.lastSendStart+p.rt.m.G && now >= p.busyUntil && !p.sentThisStep
}

// Violate records a model violation observed at this processor. It is safe
// to call from the handler goroutine; the coordinator merges per-processor
// violations in processor order after each step, so runs stay deterministic.
func (p *Proc) Violate(kind, format string, args ...any) {
	p.pending = append(p.pending, schedule.Violation{
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Send queues a message for transmission beginning at the current step. At
// most one send may start per step per processor, and the gap/overhead rules
// apply. An illegal send records a violation, is dropped, and is reported to
// the caller as an error; the run continues either way.
func (p *Proc) Send(now logp.Time, to, item int, payload any) error {
	if to < 0 || to >= p.rt.m.P {
		err := fmt.Errorf("runtime: proc %d: destination %d out of range (P=%d)", p.ID, to, p.rt.m.P)
		p.Violate(schedule.VBadProc, "%v", err)
		return err
	}
	if to == p.ID {
		err := fmt.Errorf("runtime: proc %d: send of item %d to itself", p.ID, item)
		p.Violate(schedule.VSelfSend, "%v", err)
		return err
	}
	if !p.CanSend(now) {
		err := fmt.Errorf("runtime: proc %d: send port busy at %d", p.ID, now)
		p.Violate(schedule.VGap, "%v", err)
		return err
	}
	p.sentThisStep = true
	p.lastSendStart = now
	if end := now + p.rt.m.O; end > p.busyUntil {
		p.busyUntil = end
	}
	p.outbox = append(p.outbox, Message{
		From: p.ID, To: to, Item: item, Payload: payload,
		SentAt: now, Arrive: now + p.rt.m.O + p.rt.m.L,
	})
	return nil
}

// Received returns the messages received by this processor during the
// current step (after the port discipline has been applied).
func (p *Proc) Received() []Message { return p.inboxThisStep }

// Handler is the per-step program of one processor. It is called once per
// virtual time step, on its own goroutine, after that step's receptions have
// been delivered.
type Handler func(p *Proc, now logp.Time)

// Runtime executes P handlers in barrier-synchronized virtual time.
type Runtime struct {
	// Tracer, when non-nil, records a flight recorder of the run on
	// per-processor tracks (send/recv overhead spans with port-wait
	// annotations, in-flight and queued counters). Timestamps are virtual
	// cycles. TracePID selects the trace process id (defaults to 2 so a
	// runtime overlays cleanly with a simulator engine in one file). Set
	// both before the first Step.
	Tracer   *obs.Tracer
	TracePID int

	m          logp.Machine
	mode       Mode
	procs      []*Proc
	handlers   []Handler
	now        logp.Time
	inflight   []Message
	trace      *schedule.Schedule
	violations []schedule.Violation
	// In-network interval end times per processor for the capacity bound,
	// mirroring the simulator's bookkeeping (see sim.checkCapacity).
	outEnds [][]logp.Time
	inEnds  [][]logp.Time
}

// Mode mirrors sim: Strict receives arrivals immediately (recording a
// violation if the port is busy); Buffered queues them.
type Mode int

// Reception disciplines.
const (
	Strict Mode = iota
	Buffered
)

// New creates a runtime for machine m. handlers must have length m.P (nil
// entries mean "idle processor").
func New(m logp.Machine, mode Mode, handlers []Handler) (*Runtime, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(handlers) != m.P {
		return nil, fmt.Errorf("runtime: %d handlers for P=%d", len(handlers), m.P)
	}
	rt := &Runtime{m: m, mode: mode, handlers: handlers, trace: &schedule.Schedule{M: m}}
	rt.procs = make([]*Proc, m.P)
	for i := range rt.procs {
		rt.procs[i] = &Proc{ID: i, rt: rt, lastSendStart: minusInf, lastRecvStart: minusInf, busyUntil: minusInf}
	}
	rt.outEnds = make([][]logp.Time, m.P)
	rt.inEnds = make([][]logp.Time, m.P)
	return rt, nil
}

// Proc returns the handle for processor id (for pre-run state injection).
func (rt *Runtime) Proc(id int) *Proc { return rt.procs[id] }

// Now returns the current virtual time.
func (rt *Runtime) Now() logp.Time { return rt.now }

// Step advances one virtual time step: delivers arrivals, runs all handlers
// concurrently, then collects outboxes and merges recorded violations in
// processor order.
// tracePID returns the pid used for this runtime's trace tracks.
func (rt *Runtime) tracePID() int {
	if rt.TracePID != 0 {
		return rt.TracePID
	}
	return 2
}

func (rt *Runtime) Step() {
	now := rt.now
	if rt.Tracer != nil && now == 0 {
		pid := rt.tracePID()
		mode := "strict"
		if rt.mode == Buffered {
			mode = "buffered"
		}
		rt.Tracer.NameProcess(pid, fmt.Sprintf("runtime-%s %v", mode, rt.m))
		for p := 0; p < rt.m.P; p++ {
			rt.Tracer.NameThread(pid, p, fmt.Sprintf("P%d", p))
		}
	}
	// Deliver arrivals due now.
	rest := rt.inflight[:0]
	for _, msg := range rt.inflight {
		if msg.Arrive <= now {
			p := rt.procs[msg.To]
			p.queue = append(p.queue, msg)
			if len(p.queue) > p.maxQueue {
				p.maxQueue = len(p.queue)
			}
		} else {
			rest = append(rest, msg)
		}
	}
	rt.inflight = rest
	// Apply the reception discipline.
	for _, p := range rt.procs {
		p.inboxThisStep = p.inboxThisStep[:0]
		p.sentThisStep = false
		if len(p.queue) == 0 {
			continue
		}
		sort.Slice(p.queue, func(i, j int) bool {
			a, b := p.queue[i], p.queue[j]
			if a.Arrive != b.Arrive {
				return a.Arrive < b.Arrive
			}
			if a.Item != b.Item {
				return a.Item < b.Item
			}
			return a.From < b.From
		})
		switch rt.mode {
		case Strict:
			// Everything that has arrived must be received now; a busy port
			// is a violation but the reception still happens, exactly as in
			// the simulator.
			for len(p.queue) > 0 {
				msg := p.queue[0]
				if now < p.lastRecvStart+rt.m.G || now < p.busyUntil {
					rt.violations = append(rt.violations, schedule.Violation{
						Kind: schedule.VGap,
						Msg: fmt.Sprintf("runtime: proc %d: receive port busy for item %d at %d",
							p.ID, msg.Item, now),
					})
				}
				p.queue = p.queue[1:]
				rt.deliver(p, msg, now)
			}
		case Buffered:
			if now >= p.lastRecvStart+rt.m.G && now >= p.busyUntil {
				msg := p.queue[0]
				p.queue = p.queue[1:]
				rt.deliver(p, msg, now)
			}
		}
	}
	// Run handlers concurrently.
	var wg sync.WaitGroup
	for i, h := range rt.handlers {
		if h == nil {
			continue
		}
		wg.Add(1)
		go func(p *Proc, h Handler) {
			defer wg.Done()
			h(p, now)
		}(rt.procs[i], h)
	}
	wg.Wait()
	// Collect outboxes and violations in processor order (determinism).
	var nSends int64
	for _, p := range rt.procs {
		for _, msg := range p.outbox {
			rt.checkCapacity(msg.From, msg.To, msg.SentAt)
			rt.inflight = append(rt.inflight, msg)
			rt.trace.Send(msg.From, msg.SentAt, msg.Item, msg.To)
			nSends++
			if rt.Tracer != nil {
				rt.Tracer.Span(rt.tracePID(), msg.From, "send", int64(msg.SentAt), int64(rt.m.O),
					obs.A("item", msg.Item), obs.A("to", msg.To))
			}
		}
		p.outbox = p.outbox[:0]
		rt.violations = append(rt.violations, p.pending...)
		p.pending = p.pending[:0]
	}
	mSends.Add(nSends)
	mSteps.Inc()
	pending := int64(len(rt.inflight))
	for _, p := range rt.procs {
		pending += int64(len(p.queue))
	}
	gPendingHigh.Set(pending)
	if rt.Tracer != nil {
		pid := rt.tracePID()
		rt.Tracer.Counter(pid, "inflight", int64(now), int64(len(rt.inflight)))
		rt.Tracer.Counter(pid, "pending", int64(now), pending)
	}
	rt.now++
}

// checkCapacity enforces the network capacity bound ceil(L/g) on the message
// sent at time at, recording a violation when exceeded. Sends are processed
// in nondecreasing time order, so per-processor end-time queues suffice.
func (rt *Runtime) checkCapacity(from, to int, at logp.Time) {
	capN := rt.m.Capacity()
	start := at + rt.m.O
	end := start + rt.m.L
	rt.outEnds[from] = pruneEnds(rt.outEnds[from], start)
	rt.inEnds[to] = pruneEnds(rt.inEnds[to], start)
	if len(rt.outEnds[from])+1 > capN {
		rt.violations = append(rt.violations, schedule.Violation{
			Kind: schedule.VCapacity,
			Msg: fmt.Sprintf("runtime: %d messages in transit from proc %d at time %d (capacity %d)",
				len(rt.outEnds[from])+1, from, start, capN),
		})
	}
	if len(rt.inEnds[to])+1 > capN {
		rt.violations = append(rt.violations, schedule.Violation{
			Kind: schedule.VCapacity,
			Msg: fmt.Sprintf("runtime: %d messages in transit to proc %d at time %d (capacity %d)",
				len(rt.inEnds[to])+1, to, start, capN),
		})
	}
	rt.outEnds[from] = append(rt.outEnds[from], end)
	rt.inEnds[to] = append(rt.inEnds[to], end)
}

func pruneEnds(ends []logp.Time, s logp.Time) []logp.Time {
	i := 0
	for i < len(ends) && ends[i] <= s {
		i++
	}
	if i > 0 {
		ends = append(ends[:0], ends[i:]...)
	}
	return ends
}

func (rt *Runtime) deliver(p *Proc, msg Message, now logp.Time) {
	msg.RecvdAt = now
	p.lastRecvStart = now
	if end := now + rt.m.O; end > p.busyUntil {
		p.busyUntil = end
	}
	p.inboxThisStep = append(p.inboxThisStep, msg)
	rt.trace.Recv(p.ID, now, msg.Item, msg.From)
	mRecvs.Inc()
	mPortWait.Observe(int64(now - msg.Arrive))
	if rt.Tracer != nil {
		rt.Tracer.Span(rt.tracePID(), p.ID, "recv", int64(now), int64(rt.m.O),
			obs.A("item", msg.Item), obs.A("from", msg.From),
			obs.A("waited", int64(now-msg.Arrive)))
	}
}

// Run executes steps until the virtual clock reaches until (exclusive).
func (rt *Runtime) Run(until logp.Time) {
	for rt.now < until {
		rt.Step()
	}
}

// Quiesce runs until communication has started (at least one message sent)
// and then fully drained (nothing in flight or queued, and a step passes
// without new sends), up to horizon. If the handlers never communicate,
// Quiesce runs to the horizon.
func (rt *Runtime) Quiesce(horizon logp.Time) {
	started := false
	for rt.now < horizon {
		rt.Step()
		if len(rt.inflight) > 0 {
			started = true
		}
		if started && !rt.Pending() {
			return
		}
	}
}

// Pending reports whether any message is still in flight or queued.
func (rt *Runtime) Pending() bool {
	return len(rt.inflight) > 0 || rt.anyQueued()
}

func (rt *Runtime) anyQueued() bool {
	for _, p := range rt.procs {
		if len(p.queue) > 0 {
			return true
		}
	}
	return false
}

// Trace returns the executed communication schedule.
func (rt *Runtime) Trace() *schedule.Schedule {
	s := &schedule.Schedule{M: rt.m, Events: append([]schedule.Event(nil), rt.trace.Events...)}
	s.Sort()
	return s
}

// Violations returns a copy of the model violations recorded so far, in the
// deterministic order the coordinator merged them.
func (rt *Runtime) Violations() []schedule.Violation {
	return append([]schedule.Violation(nil), rt.violations...)
}

// MaxQueue returns the largest receive-queue occupancy seen at any processor.
func (rt *Runtime) MaxQueue() int {
	mx := 0
	for _, p := range rt.procs {
		if p.maxQueue > mx {
			mx = p.maxQueue
		}
	}
	return mx
}

// ProcMaxQueues returns the receive-queue high-water mark per processor.
// Note that in Strict mode arrivals pass through the queue within the
// delivery step, so the high-water counts simultaneous arrivals (the
// simulator's Strict buffers are always 0 — compare queue marks only
// between buffered backends).
func (rt *Runtime) ProcMaxQueues() []int {
	mq := make([]int, len(rt.procs))
	for i, p := range rt.procs {
		mq[i] = p.maxQueue
	}
	return mq
}

// Stats computes port-activity statistics from the executed trace via the
// shared schedule.ComputeStats — the parity method to sim.Engine.Stats, so
// the conformance harness can diff the two field by field. The runtime has
// no origin table, so the caller supplies the span (finish time); pass the
// finish recomputed from Trace() and the case's origins.
func (rt *Runtime) Stats(span logp.Time) schedule.Stats {
	return schedule.ComputeStats(rt.trace, span, rt.ProcMaxQueues())
}
