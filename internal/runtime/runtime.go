// Package runtime is a goroutine-based message-passing runtime that executes
// LogP algorithms as real concurrent programs. One goroutine runs per
// processor; a coordinator advances a virtual clock in lockstep steps, and
// messages travel between goroutines with the machine's latency while the
// ports obey the overhead and gap rules.
//
// This is the repository's stand-in for the distributed-memory hardware the
// paper targets: the algorithms' communication schedules run unmodified as
// concurrent message-passing code, with payloads (not just item ids) so that
// combining and summation actually compute.
//
// Determinism: each processor goroutine touches only its own state during a
// step; the coordinator merges outboxes in processor order, so runs are
// reproducible despite real concurrency.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Message is a payload-carrying message between processors.
type Message struct {
	From, To int
	Item     int
	Payload  any
	SentAt   logp.Time
	Arrive   logp.Time // SentAt + o + L
	RecvdAt  logp.Time // time reception began (set on delivery)
}

// Proc is the per-processor handle passed to handlers. Handlers must only
// use their own Proc; the runtime runs handlers for distinct processors
// concurrently.
type Proc struct {
	ID    int
	State any // handler-owned state

	rt            *Runtime
	outbox        []Message
	inboxThisStep []Message // messages received this step (post-discipline)
	queue         []Message // arrived but not yet received (buffered mode)
	lastSendStart logp.Time
	lastRecvStart logp.Time
	busyUntil     logp.Time
	maxQueue      int
	sentThisStep  bool
	err           error
}

const minusInf = logp.Time(-1) << 40

// CanSend reports whether this processor's send port is free this step.
func (p *Proc) CanSend(now logp.Time) bool {
	return now >= p.lastSendStart+p.rt.m.G && now >= p.busyUntil && !p.sentThisStep
}

// Send queues a message for transmission beginning at the current step. At
// most one send may start per step per processor, and the gap/overhead rules
// apply; violations are recorded and fail the run.
func (p *Proc) Send(now logp.Time, to, item int, payload any) error {
	if to < 0 || to >= p.rt.m.P || to == p.ID {
		err := fmt.Errorf("runtime: proc %d: bad destination %d", p.ID, to)
		p.fail(err)
		return err
	}
	if !p.CanSend(now) {
		err := fmt.Errorf("runtime: proc %d: send port busy at %d", p.ID, now)
		p.fail(err)
		return err
	}
	p.sentThisStep = true
	p.lastSendStart = now
	if end := now + p.rt.m.O; end > p.busyUntil {
		p.busyUntil = end
	}
	p.outbox = append(p.outbox, Message{
		From: p.ID, To: to, Item: item, Payload: payload,
		SentAt: now, Arrive: now + p.rt.m.O + p.rt.m.L,
	})
	return nil
}

// Received returns the messages received by this processor during the
// current step (after the port discipline has been applied).
func (p *Proc) Received() []Message { return p.inboxThisStep }

func (p *Proc) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Handler is the per-step program of one processor. It is called once per
// virtual time step, on its own goroutine, after that step's receptions have
// been delivered.
type Handler func(p *Proc, now logp.Time)

// Runtime executes P handlers in barrier-synchronized virtual time.
type Runtime struct {
	m        logp.Machine
	mode     Mode
	procs    []*Proc
	handlers []Handler
	now      logp.Time
	inflight []Message
	trace    *schedule.Schedule
}

// Mode mirrors sim: Strict receives arrivals immediately (recording a
// violation if the port is busy); Buffered queues them.
type Mode int

// Reception disciplines.
const (
	Strict Mode = iota
	Buffered
)

// New creates a runtime for machine m. handlers must have length m.P (nil
// entries mean "idle processor").
func New(m logp.Machine, mode Mode, handlers []Handler) (*Runtime, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(handlers) != m.P {
		return nil, fmt.Errorf("runtime: %d handlers for P=%d", len(handlers), m.P)
	}
	rt := &Runtime{m: m, mode: mode, handlers: handlers, trace: &schedule.Schedule{M: m}}
	rt.procs = make([]*Proc, m.P)
	for i := range rt.procs {
		rt.procs[i] = &Proc{ID: i, rt: rt, lastSendStart: minusInf, lastRecvStart: minusInf, busyUntil: minusInf}
	}
	return rt, nil
}

// Proc returns the handle for processor id (for pre-run state injection).
func (rt *Runtime) Proc(id int) *Proc { return rt.procs[id] }

// Now returns the current virtual time.
func (rt *Runtime) Now() logp.Time { return rt.now }

// Step advances one virtual time step: delivers arrivals, runs all handlers
// concurrently, then collects outboxes. It returns the first handler error.
func (rt *Runtime) Step() error {
	now := rt.now
	// Deliver arrivals due now.
	rest := rt.inflight[:0]
	for _, msg := range rt.inflight {
		if msg.Arrive <= now {
			p := rt.procs[msg.To]
			p.queue = append(p.queue, msg)
			if len(p.queue) > p.maxQueue {
				p.maxQueue = len(p.queue)
			}
		} else {
			rest = append(rest, msg)
		}
	}
	rt.inflight = rest
	// Apply the reception discipline.
	for _, p := range rt.procs {
		p.inboxThisStep = p.inboxThisStep[:0]
		p.sentThisStep = false
		if len(p.queue) == 0 {
			continue
		}
		sort.Slice(p.queue, func(i, j int) bool {
			a, b := p.queue[i], p.queue[j]
			if a.Arrive != b.Arrive {
				return a.Arrive < b.Arrive
			}
			if a.Item != b.Item {
				return a.Item < b.Item
			}
			return a.From < b.From
		})
		switch rt.mode {
		case Strict:
			// Everything that has arrived must be received now; the port
			// admits one per gap.
			for len(p.queue) > 0 {
				msg := p.queue[0]
				if now < p.lastRecvStart+rt.m.G || now < p.busyUntil {
					p.fail(fmt.Errorf("runtime: proc %d: receive port busy for item %d at %d",
						p.ID, msg.Item, now))
				}
				p.queue = p.queue[1:]
				rt.deliver(p, msg, now)
			}
		case Buffered:
			if now >= p.lastRecvStart+rt.m.G && now >= p.busyUntil {
				msg := p.queue[0]
				p.queue = p.queue[1:]
				rt.deliver(p, msg, now)
			}
		}
	}
	// Run handlers concurrently.
	var wg sync.WaitGroup
	for i, h := range rt.handlers {
		if h == nil {
			continue
		}
		wg.Add(1)
		go func(p *Proc, h Handler) {
			defer wg.Done()
			h(p, now)
		}(rt.procs[i], h)
	}
	wg.Wait()
	// Collect outboxes in processor order (determinism).
	for _, p := range rt.procs {
		for _, msg := range p.outbox {
			rt.inflight = append(rt.inflight, msg)
			rt.trace.Send(msg.From, msg.SentAt, msg.Item, msg.To)
		}
		p.outbox = p.outbox[:0]
		if p.err != nil {
			return p.err
		}
	}
	rt.now++
	return nil
}

func (rt *Runtime) deliver(p *Proc, msg Message, now logp.Time) {
	msg.RecvdAt = now
	p.lastRecvStart = now
	if end := now + rt.m.O; end > p.busyUntil {
		p.busyUntil = end
	}
	p.inboxThisStep = append(p.inboxThisStep, msg)
	rt.trace.Recv(p.ID, now, msg.Item, msg.From)
}

// Run executes steps until the virtual clock reaches until (exclusive) or a
// handler fails.
func (rt *Runtime) Run(until logp.Time) error {
	for rt.now < until {
		if err := rt.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Quiesce runs until communication has started (at least one message sent)
// and then fully drained (nothing in flight or queued, and a step passes
// without new sends), up to horizon. If the handlers never communicate,
// Quiesce runs to the horizon.
func (rt *Runtime) Quiesce(horizon logp.Time) error {
	started := false
	for rt.now < horizon {
		if err := rt.Step(); err != nil {
			return err
		}
		if len(rt.inflight) > 0 {
			started = true
		}
		if started && len(rt.inflight) == 0 && !rt.anyQueued() {
			return nil
		}
	}
	return nil
}

func (rt *Runtime) anyQueued() bool {
	for _, p := range rt.procs {
		if len(p.queue) > 0 {
			return true
		}
	}
	return false
}

// Trace returns the executed communication schedule.
func (rt *Runtime) Trace() *schedule.Schedule {
	s := &schedule.Schedule{M: rt.m, Events: append([]schedule.Event(nil), rt.trace.Events...)}
	s.Sort()
	return s
}

// MaxQueue returns the largest receive-queue occupancy seen at any processor.
func (rt *Runtime) MaxQueue() int {
	mx := 0
	for _, p := range rt.procs {
		if p.maxQueue > mx {
			mx = p.maxQueue
		}
	}
	return mx
}
