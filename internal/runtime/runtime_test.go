package runtime

import (
	"reflect"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

func TestReplayOptimalBroadcast(t *testing.T) {
	machines := []logp.Machine{
		logp.MustNew(8, 6, 2, 4),
		logp.Postal(9, 3),
		logp.Postal(20, 2),
	}
	for _, m := range machines {
		s := core.BroadcastSchedule(m, 0)
		rt, err := New(m, Strict, ScheduleHandlers(s))
		if err != nil {
			t.Fatal(err)
		}
		rt.Run(Horizon(s))
		if vs := rt.Violations(); len(vs) != 0 {
			t.Fatalf("%v: runtime violations: %v", m, vs)
		}
		tr := rt.Trace()
		if vs := schedule.ValidateBroadcast(tr, core.Origins(0)); len(vs) != 0 {
			t.Fatalf("%v: trace violations: %v", m, vs)
		}
		if got, want := tr.LastRecv(), core.B(m, m.P); got != want {
			t.Fatalf("%v: completes at %d, want %d", m, got, want)
		}
	}
}

func TestRuntimeAgreesWithSim(t *testing.T) {
	// The goroutine runtime and the discrete-event simulator are
	// independent implementations of the same machine; their executed
	// schedules for the same input must be identical.
	m := logp.MustNew(12, 7, 1, 3)
	s := core.BroadcastSchedule(m, 0)

	e, rep := sim.Run(s, sim.Strict, core.Origins(0))
	if len(rep.Violations) != 0 {
		t.Fatalf("sim violations: %v", rep.Violations)
	}
	simTrace := e.Executed()

	rt, err := New(m, Strict, ScheduleHandlers(s))
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(Horizon(s))
	rtTrace := rt.Trace()

	if !reflect.DeepEqual(simTrace.Events, rtTrace.Events) {
		t.Fatalf("sim and runtime traces differ:\nsim: %v\nrt:  %v", simTrace.Events, rtTrace.Events)
	}
}

func TestPayloadsFlow(t *testing.T) {
	// Two processors: 0 sends the answer to 1; 1 stores it in State.
	m := logp.Postal(2, 3)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 1, 0, 42)
			}
		},
		func(p *Proc, now logp.Time) {
			for _, msg := range p.Received() {
				p.State = msg.Payload
			}
		},
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(6)
	if got := rt.Proc(1).State; got != 42 {
		t.Fatalf("payload = %v, want 42", got)
	}
}

func TestStrictPortContentionRecordsAndContinues(t *testing.T) {
	// Regression (conformance satellite): a busy receive port used to abort
	// the whole run with an error, while the simulator records a violation
	// and receives anyway. The unified semantics are the simulator's: the
	// run completes, both messages are delivered, and the contention is
	// visible through Violations().
	m := logp.Postal(3, 4)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 0, nil)
			}
		},
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 1, nil)
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(10)
	vs := rt.Violations()
	if len(vs) == 0 {
		t.Fatal("simultaneous arrivals recorded no violation")
	}
	if vs[0].Kind != schedule.VGap {
		t.Fatalf("violation kind %q, want %q", vs[0].Kind, schedule.VGap)
	}
	recvs := 0
	for _, ev := range rt.Trace().Events {
		if ev.Op == schedule.OpRecv {
			recvs++
		}
	}
	if recvs != 2 {
		t.Fatalf("%d receptions, want 2 (busy port must still receive)", recvs)
	}
}

func TestViolationsReturnsCopy(t *testing.T) {
	m := logp.Postal(2, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 0, 0, nil) // self-send: recorded violation
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(2)
	a := rt.Violations()
	if len(a) != 1 {
		t.Fatalf("%d violations, want 1", len(a))
	}
	a[0].Kind = "mutated"
	if b := rt.Violations(); b[0].Kind != schedule.VSelfSend {
		t.Fatal("Violations() exposed internal state to caller mutation")
	}
}

func TestBufferedQueues(t *testing.T) {
	m := logp.Postal(3, 4)
	var got []logp.Time
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 0, nil)
			}
		},
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 1, nil)
			}
		},
		func(p *Proc, now logp.Time) {
			for _, msg := range p.Received() {
				got = append(got, msg.RecvdAt)
			}
		},
	}
	rt, err := New(m, Buffered, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(10)
	want := []logp.Time{4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reception times %v, want %v", got, want)
	}
	if rt.MaxQueue() != 2 {
		t.Fatalf("max queue %d, want 2", rt.MaxQueue())
	}
}

func TestDoubleSendSameStepRecords(t *testing.T) {
	m := logp.Postal(3, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 1, 0, nil)
				if err := p.Send(now, 2, 1, nil); err == nil {
					t.Error("second send in one step returned no error")
				}
			}
		},
		nil, nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(5)
	if vs := rt.Violations(); len(vs) != 1 || vs[0].Kind != schedule.VGap {
		t.Fatalf("violations %v, want one %q", vs, schedule.VGap)
	}
	sends := 0
	for _, ev := range rt.Trace().Events {
		if ev.Op == schedule.OpSend {
			sends++
		}
	}
	if sends != 1 {
		t.Fatalf("%d sends in trace, want 1 (illegal send must be dropped)", sends)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(logp.Machine{P: 0, L: 1, G: 1}, Strict, nil); err == nil {
		t.Fatal("invalid machine accepted")
	}
	if _, err := New(logp.Postal(3, 2), Strict, make([]Handler, 2)); err == nil {
		t.Fatal("wrong handler count accepted")
	}
}

func TestQuiesce(t *testing.T) {
	m := logp.Postal(2, 5)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 3 {
				_ = p.Send(now, 1, 0, nil)
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Quiesce(100)
	if rt.Now() > 20 {
		t.Fatalf("quiesce overran: now=%d", rt.Now())
	}
	tr := rt.Trace()
	if len(tr.Events) != 2 {
		t.Fatalf("trace has %d events, want 2", len(tr.Events))
	}
}

func TestSendToSelfRecords(t *testing.T) {
	m := logp.Postal(3, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				if err := p.Send(now, 0, 0, nil); err == nil {
					t.Error("self-send returned no error")
				}
			}
		},
		nil, nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(3)
	if vs := rt.Violations(); len(vs) != 1 || vs[0].Kind != schedule.VSelfSend {
		t.Fatalf("violations %v, want one %q", vs, schedule.VSelfSend)
	}
	if len(rt.Trace().Events) != 0 {
		t.Fatal("self-send must not enter the trace")
	}
}

func TestSendOutOfRangeRecords(t *testing.T) {
	m := logp.Postal(2, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				if err := p.Send(now, 7, 0, nil); err == nil {
					t.Error("out-of-range send returned no error")
				}
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(3)
	if vs := rt.Violations(); len(vs) != 1 || vs[0].Kind != schedule.VBadProc {
		t.Fatalf("violations %v, want one %q", vs, schedule.VBadProc)
	}
	if len(rt.Trace().Events) != 0 {
		t.Fatal("out-of-range send must not enter the trace")
	}
}

func TestCapacityViolationRecorded(t *testing.T) {
	// Postal machine with L=4, g=1: capacity ceil(L/g)=4 toward any one
	// processor. Five senders hitting proc 5 in the same step exceed it.
	m := logp.Postal(6, 4)
	handlers := make([]Handler, 6)
	for i := 0; i < 5; i++ {
		handlers[i] = func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 5, 0, nil)
			}
		}
	}
	rt, err := New(m, Buffered, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(12)
	found := false
	for _, v := range rt.Violations() {
		if v.Kind == schedule.VCapacity {
			found = true
		}
	}
	if !found {
		t.Fatalf("no capacity violation recorded: %v", rt.Violations())
	}
}

func TestOverheadBlocksSend(t *testing.T) {
	// With o=2, a processor that received at step t is busy through t+2 and
	// must not be able to send at t+1.
	m := logp.MustNew(2, 4, 2, 4)
	gotErr := false
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 1, 0, nil) // arrives at 6
			}
		},
		func(p *Proc, now logp.Time) {
			if now == 7 { // inside the receive overhead [6, 8)
				if !p.CanSend(now) {
					gotErr = true
					return
				}
				_ = p.Send(now, 0, 1, nil)
			}
		},
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(10)
	if !gotErr {
		t.Fatal("send during receive overhead was allowed")
	}
}

func TestReplayHandlersChecksAvailability(t *testing.T) {
	// Proc 1 forwards item 0 before it could have received it; the replay
	// handler must drop the send and record an availability violation, like
	// sim.Replay does.
	m := logp.Postal(3, 3)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 0, 1) // arrives at 3, available at 3
	s.Send(1, 1, 0, 2) // too early: proc 1 holds item 0 only from t=3
	origins := map[int]schedule.Origin{0: {Proc: 0}}
	rt, err := New(m, Strict, ReplayHandlers(s, origins))
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(Horizon(s))
	vs := rt.Violations()
	if len(vs) != 1 || vs[0].Kind != schedule.VAvail {
		t.Fatalf("violations %v, want one %q", vs, schedule.VAvail)
	}
	sends := 0
	for _, ev := range rt.Trace().Events {
		if ev.Op == schedule.OpSend {
			sends++
		}
	}
	if sends != 1 {
		t.Fatalf("%d sends executed, want 1", sends)
	}
}

func TestDeterministicTraces(t *testing.T) {
	// Two runs of the same concurrent program must produce identical traces
	// (the runtime's determinism guarantee).
	m := logp.MustNew(16, 5, 1, 2)
	s := core.BroadcastSchedule(m, 0)
	run := func() []schedule.Event {
		rt, err := New(m, Strict, ScheduleHandlers(s))
		if err != nil {
			t.Fatal(err)
		}
		rt.Run(Horizon(s))
		return rt.Trace().Events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("concurrent runs produced different traces")
	}
}
