package runtime

import (
	"reflect"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
	"logpopt/internal/sim"
)

func TestReplayOptimalBroadcast(t *testing.T) {
	machines := []logp.Machine{
		logp.MustNew(8, 6, 2, 4),
		logp.Postal(9, 3),
		logp.Postal(20, 2),
	}
	for _, m := range machines {
		s := core.BroadcastSchedule(m, 0)
		rt, err := New(m, Strict, ScheduleHandlers(s))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(Horizon(s)); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		tr := rt.Trace()
		if vs := schedule.ValidateBroadcast(tr, core.Origins(0)); len(vs) != 0 {
			t.Fatalf("%v: trace violations: %v", m, vs)
		}
		if got, want := tr.LastRecv(), core.B(m, m.P); got != want {
			t.Fatalf("%v: completes at %d, want %d", m, got, want)
		}
	}
}

func TestRuntimeAgreesWithSim(t *testing.T) {
	// The goroutine runtime and the discrete-event simulator are
	// independent implementations of the same machine; their executed
	// schedules for the same input must be identical.
	m := logp.MustNew(12, 7, 1, 3)
	s := core.BroadcastSchedule(m, 0)

	e, rep := sim.Run(s, sim.Strict, core.Origins(0))
	if len(rep.Violations) != 0 {
		t.Fatalf("sim violations: %v", rep.Violations)
	}
	simTrace := e.Executed()

	rt, err := New(m, Strict, ScheduleHandlers(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(Horizon(s)); err != nil {
		t.Fatal(err)
	}
	rtTrace := rt.Trace()

	if !reflect.DeepEqual(simTrace.Events, rtTrace.Events) {
		t.Fatalf("sim and runtime traces differ:\nsim: %v\nrt:  %v", simTrace.Events, rtTrace.Events)
	}
}

func TestPayloadsFlow(t *testing.T) {
	// Two processors: 0 sends the answer to 1; 1 stores it in State.
	m := logp.Postal(2, 3)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 1, 0, 42)
			}
		},
		func(p *Proc, now logp.Time) {
			for _, msg := range p.Received() {
				p.State = msg.Payload
			}
		},
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(6); err != nil {
		t.Fatal(err)
	}
	if got := rt.Proc(1).State; got != 42 {
		t.Fatalf("payload = %v, want 42", got)
	}
}

func TestStrictPortContentionFails(t *testing.T) {
	m := logp.Postal(3, 4)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 0, nil)
			}
		},
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 1, nil)
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(10); err == nil {
		t.Fatal("simultaneous arrivals did not fail in strict mode")
	}
}

func TestBufferedQueues(t *testing.T) {
	m := logp.Postal(3, 4)
	var got []logp.Time
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 0, nil)
			}
		},
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 2, 1, nil)
			}
		},
		func(p *Proc, now logp.Time) {
			for _, msg := range p.Received() {
				got = append(got, msg.RecvdAt)
			}
		},
	}
	rt, err := New(m, Buffered, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(10); err != nil {
		t.Fatal(err)
	}
	want := []logp.Time{4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reception times %v, want %v", got, want)
	}
	if rt.MaxQueue() != 2 {
		t.Fatalf("max queue %d, want 2", rt.MaxQueue())
	}
}

func TestDoubleSendSameStepFails(t *testing.T) {
	m := logp.Postal(3, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 1, 0, nil)
				_ = p.Send(now, 2, 1, nil) // second send in same step: illegal
			}
		},
		nil, nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(5); err == nil {
		t.Fatal("two sends in one step did not fail")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(logp.Machine{P: 0, L: 1, G: 1}, Strict, nil); err == nil {
		t.Fatal("invalid machine accepted")
	}
	if _, err := New(logp.Postal(3, 2), Strict, make([]Handler, 2)); err == nil {
		t.Fatal("wrong handler count accepted")
	}
}

func TestQuiesce(t *testing.T) {
	m := logp.Postal(2, 5)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 3 {
				_ = p.Send(now, 1, 0, nil)
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Quiesce(100); err != nil {
		t.Fatal(err)
	}
	if rt.Now() > 20 {
		t.Fatalf("quiesce overran: now=%d", rt.Now())
	}
	tr := rt.Trace()
	if len(tr.Events) != 2 {
		t.Fatalf("trace has %d events, want 2", len(tr.Events))
	}
}

func TestSendToSelfFails(t *testing.T) {
	m := logp.Postal(3, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 0, 0, nil) // self-send
			}
		},
		nil, nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(3); err == nil {
		t.Fatal("self-send did not fail the run")
	}
}

func TestSendOutOfRangeFails(t *testing.T) {
	m := logp.Postal(2, 2)
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 7, 0, nil)
			}
		},
		nil,
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(3); err == nil {
		t.Fatal("out-of-range send did not fail the run")
	}
}

func TestOverheadBlocksSend(t *testing.T) {
	// With o=2, a processor that received at step t is busy through t+2 and
	// must not be able to send at t+1.
	m := logp.MustNew(2, 4, 2, 4)
	gotErr := false
	handlers := []Handler{
		func(p *Proc, now logp.Time) {
			if now == 0 {
				_ = p.Send(now, 1, 0, nil) // arrives at 6
			}
		},
		func(p *Proc, now logp.Time) {
			if now == 7 { // inside the receive overhead [6, 8)
				if !p.CanSend(now) {
					gotErr = true
					return
				}
				_ = p.Send(now, 0, 1, nil)
			}
		},
	}
	rt, err := New(m, Strict, handlers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(10); err != nil {
		t.Fatal(err)
	}
	if !gotErr {
		t.Fatal("send during receive overhead was allowed")
	}
}

func TestDeterministicTraces(t *testing.T) {
	// Two runs of the same concurrent program must produce identical traces
	// (the runtime's determinism guarantee).
	m := logp.MustNew(16, 5, 1, 2)
	s := core.BroadcastSchedule(m, 0)
	run := func() []schedule.Event {
		rt, err := New(m, Strict, ScheduleHandlers(s))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(Horizon(s)); err != nil {
			t.Fatal(err)
		}
		return rt.Trace().Events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("concurrent runs produced different traces")
	}
}
