package runtime

import (
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/sim"
)

// TestStatsParityWithSim replays the same broadcast schedule on the
// simulator and the runtime and demands the shared Stats shape agrees field
// for field — the parity contract the conformance harness diffs.
func TestStatsParityWithSim(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	origins := core.Origins(0)

	eng, rep := sim.Run(s, sim.Strict, origins)
	simStats := eng.Stats()

	rt, err := New(m, Strict, ReplayHandlers(s, origins))
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(Horizon(s))
	for rt.Pending() && rt.Now() < DrainHorizon(s) {
		rt.Step()
	}
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatal(vs)
	}
	rtStats := rt.Stats(rep.Finish)

	if simStats.Sends != rtStats.Sends || simStats.Recvs != rtStats.Recvs {
		t.Fatalf("event counts: sim (%d,%d) vs runtime (%d,%d)",
			simStats.Sends, simStats.Recvs, rtStats.Sends, rtStats.Recvs)
	}
	if simStats.BusyCycles != rtStats.BusyCycles {
		t.Fatalf("busy cycles: sim %d vs runtime %d", simStats.BusyCycles, rtStats.BusyCycles)
	}
	if simStats.Span != rtStats.Span || simStats.PortUtilFinish != rtStats.PortUtilFinish {
		t.Fatalf("span/util: sim (%d,%v) vs runtime (%d,%v)",
			simStats.Span, simStats.PortUtilFinish, rtStats.Span, rtStats.PortUtilFinish)
	}
	if len(simStats.PerProc) != len(rtStats.PerProc) {
		t.Fatalf("per-proc lengths differ: %d vs %d", len(simStats.PerProc), len(rtStats.PerProc))
	}
	for p := range simStats.PerProc {
		sp, rp := simStats.PerProc[p], rtStats.PerProc[p]
		if sp.Sends != rp.Sends || sp.Recvs != rp.Recvs || sp.BusyCycles != rp.BusyCycles || sp.IdleCycles != rp.IdleCycles {
			t.Errorf("P%d: sim %+v vs runtime %+v", p, sp, rp)
		}
	}
}

// TestRuntimeTracer checks the runtime's flight recorder emits spans for
// every send and reception.
func TestRuntimeTracer(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	rt, err := New(m, Strict, ReplayHandlers(s, core.Origins(0)))
	if err != nil {
		t.Fatal(err)
	}
	rt.Tracer = obs.NewTracer()
	rt.Run(Horizon(s))
	for rt.Pending() && rt.Now() < DrainHorizon(s) {
		rt.Step()
	}
	if rt.Tracer.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	tr := rt.Trace()
	if len(tr.Events) != 14 {
		t.Fatalf("trace has %d events, want 14", len(tr.Events))
	}
}
