package runtime

import (
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/timeseries"
)

// TestRuntimeTimeseries attaches a collector to a runtime replay and checks
// the virtual-time series cover the run: the clock advances, the pending
// work drains, and the worker-pool occupancy series (aggregate and
// per-chunk-shard on a machine this small) saw activity.
func TestRuntimeTimeseries(t *testing.T) {
	m := logp.MustNew(16, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)

	rt, err := New(m, Strict, ReplayHandlers(s, core.Origins(0)))
	if err != nil {
		t.Fatal(err)
	}
	ts := timeseries.New(0)
	rt.TS = ts
	rt.Quiesce(1000)

	for _, name := range []string{
		"runtime.now", "runtime.inflight", "runtime.queued",
		"runtime.procs.dirty", "runtime.chunks.busy",
	} {
		if _, ok := ts.Series(name); !ok {
			t.Errorf("series %s missing", name)
		}
	}
	var sawChunk bool
	var busyMax, dirtyMax int64
	for _, sum := range ts.Summary() {
		if strings.HasPrefix(sum.Name, "runtime.chunk") && strings.HasSuffix(sum.Name, ".dirty") {
			sawChunk = true
		}
		switch sum.Name {
		case "runtime.chunks.busy":
			busyMax = sum.Max
		case "runtime.procs.dirty":
			dirtyMax = sum.Max
		}
	}
	if !sawChunk {
		t.Errorf("no per-chunk occupancy series on a %d-chunk runtime", len(rt.chunks))
	}
	if busyMax < 1 || dirtyMax < 1 {
		t.Errorf("occupancy never rose: chunks.busy max %d, procs.dirty max %d", busyMax, dirtyMax)
	}
	inflight, _ := ts.Series("runtime.inflight")
	if last := inflight[len(inflight)-1].Val; last != 0 {
		t.Errorf("runtime.inflight did not drain: %d", last)
	}
	now, _ := ts.Series("runtime.now")
	if len(now) < 2 || now[len(now)-1].Val <= now[0].Val {
		t.Errorf("runtime.now did not advance: %v", now)
	}
}
