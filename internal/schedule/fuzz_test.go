package schedule

import (
	"testing"

	"logpopt/internal/logp"
)

// FuzzValidate feeds arbitrary event streams to the validator, which must
// never panic and never report success for schedules with unmatched
// messages. Bytes decode into a small machine and a sequence of events.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{3, 2, 1, 1, 0, 0, 0, 1, 5})
	f.Add([]byte{8, 6, 2, 4, 0, 0, 10, 1, 3, 1, 1, 18, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		m := logp.Machine{
			P: int(data[0]%8) + 1,
			L: logp.Time(data[1]%8) + 1,
			O: logp.Time(data[2] % 4),
			G: logp.Time(data[3]%4) + 1,
		}
		s := &Schedule{M: m}
		rest := data[4:]
		for len(rest) >= 5 {
			ev := Event{
				Proc: int(rest[0] % 10),
				Time: logp.Time(rest[1]) - 8,
				Op:   Op(rest[2] % 3),
				Item: int(rest[3] % 6),
				Peer: int(rest[4]%10) - 1,
				Dur:  logp.Time(rest[4] % 5),
			}
			s.Events = append(s.Events, ev)
			rest = rest[5:]
		}
		// None of these may panic.
		_ = Validate(s)
		_ = ValidateDeferred(s)
		origins := map[int]Origin{0: {Proc: 0}, 1: {Proc: 0, Time: 3}}
		_ = CheckAvailability(s, origins)
		_ = CheckBroadcastComplete(s, origins)
		s.Sort()
		_ = s.Makespan()
		_ = s.LastRecv()
		_ = s.ByProc()
	})
}

// FuzzValidatorConsistency checks a metamorphic property: a schedule that
// passes the strict validator must also pass the deferred validator (strict
// reception times are a special case of deferred ones).
func FuzzValidatorConsistency(f *testing.F) {
	f.Add([]byte{4, 3, 0, 1, 0, 3, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		m := logp.Machine{
			P: int(data[0]%6) + 2,
			L: logp.Time(data[1]%6) + 1,
			O: logp.Time(data[2] % 3),
			G: logp.Time(data[3]%3) + 1,
		}
		s := &Schedule{M: m}
		rest := data[4:]
		// Build matched send/recv pairs only, with bounded times.
		for len(rest) >= 4 {
			from := int(rest[0] % uint8(m.P))
			to := int(rest[1] % uint8(m.P))
			at := logp.Time(rest[2] % 50)
			item := int(rest[3] % 4)
			rest = rest[4:]
			if from == to {
				continue
			}
			s.Send(from, at, item, to)
			s.Recv(to, at+m.O+m.L, item, from)
		}
		if len(Validate(s)) == 0 {
			if vs := ValidateDeferred(s); len(vs) != 0 {
				t.Fatalf("strict-clean schedule fails deferred validation: %v", vs[0])
			}
		}
	})
}
