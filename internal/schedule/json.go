package schedule

import (
	"encoding/json"
	"fmt"
	"io"

	"logpopt/internal/logp"
)

// JSON interchange format, so schedules can be exported to (or imported
// from) external tooling — visualizers, other simulators, trace stores.
// The format is stable and versioned.

// jsonSchedule is the on-wire shape.
type jsonSchedule struct {
	Version int         `json:"version"`
	Machine jsonMachine `json:"machine"`
	Events  []jsonEvent `json:"events"`
}

type jsonMachine struct {
	P int       `json:"p"`
	L logp.Time `json:"l"`
	O logp.Time `json:"o"`
	G logp.Time `json:"g"`
}

type jsonEvent struct {
	Proc int       `json:"proc"`
	Time logp.Time `json:"time"`
	Op   string    `json:"op"` // "send" | "recv" | "comp"
	Item int       `json:"item"`
	Peer int       `json:"peer,omitempty"`
	Dur  logp.Time `json:"dur,omitempty"`
}

// WriteJSON serializes the schedule.
func (s *Schedule) WriteJSON(w io.Writer) error {
	js := jsonSchedule{
		Version: 1,
		Machine: jsonMachine{P: s.M.P, L: s.M.L, O: s.M.O, G: s.M.G},
		Events:  make([]jsonEvent, 0, len(s.Events)),
	}
	for _, e := range s.Events {
		js.Events = append(js.Events, jsonEvent{
			Proc: e.Proc, Time: e.Time, Op: e.Op.String(), Item: e.Item, Peer: e.Peer, Dur: e.Dur,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(js)
}

// ReadJSON deserializes a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var js jsonSchedule
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("schedule: decoding JSON: %w", err)
	}
	if js.Version != 1 {
		return nil, fmt.Errorf("schedule: unsupported version %d", js.Version)
	}
	m := logp.Machine{P: js.Machine.P, L: js.Machine.L, O: js.Machine.O, G: js.Machine.G}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{M: m, Events: make([]Event, 0, len(js.Events))}
	for i, e := range js.Events {
		var op Op
		switch e.Op {
		case "send":
			op = OpSend
		case "recv":
			op = OpRecv
		case "comp":
			op = OpCompute
		default:
			return nil, fmt.Errorf("schedule: event %d has unknown op %q", i, e.Op)
		}
		s.Events = append(s.Events, Event{
			Proc: e.Proc, Time: e.Time, Op: op, Item: e.Item, Peer: e.Peer, Dur: e.Dur,
		})
	}
	return s, nil
}
