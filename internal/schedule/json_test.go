package schedule

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"logpopt/internal/logp"
)

func TestJSONRoundTrip(t *testing.T) {
	s := &Schedule{M: logp.MustNew(4, 6, 2, 4)}
	wire(s, 0, 1, 0, 7)
	wire(s, 1, 2, 10, 7)
	s.Compute(2, 20, 3, 1)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != s.M {
		t.Fatalf("machine %v, want %v", got.M, s.M)
	}
	if !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("events differ:\ngot  %v\nwant %v", got.Events, s.Events)
	}
	// Round-tripped schedule must validate identically.
	if vs := Validate(got); len(vs) != len(Validate(s)) {
		t.Fatal("validation changed across round trip")
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"garbage", "not json"},
		{"bad version", `{"version":9,"machine":{"p":2,"l":1,"o":0,"g":1},"events":[]}`},
		{"bad machine", `{"version":1,"machine":{"p":0,"l":1,"o":0,"g":1},"events":[]}`},
		{"bad op", `{"version":1,"machine":{"p":2,"l":1,"o":0,"g":1},"events":[{"proc":0,"time":0,"op":"zap","item":0}]}`},
		{"unknown field", `{"version":1,"machine":{"p":2,"l":1,"o":0,"g":1},"events":[],"extra":1}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
