// Package schedule defines the concrete representation of LogP communication
// schedules — the artifacts every algorithm in the paper produces — and an
// independent validator that checks a schedule against the LogP model's
// rules: matched sends and receives separated by exactly the latency,
// per-port gap and overhead constraints, the network capacity bound, item
// availability (no processor forwards an item before it has it), and
// broadcast completeness.
//
// Keeping construction (the scheduler packages) separate from validation
// (this package) and execution (package sim) means each optimality claim in
// EXPERIMENTS.md is machine-checked by code that shares nothing with the code
// that produced the schedule.
package schedule

import (
	"fmt"
	"sort"

	"logpopt/internal/logp"
)

// Op is the kind of a schedule event.
type Op int

// Event kinds.
const (
	// OpSend is the start of a message transmission: the sending processor
	// is busy for o cycles from Time, the message is then in flight for L,
	// and arrives (Recv event) at Time + o + L.
	OpSend Op = iota
	// OpRecv is a message arrival: the receiving processor is busy for o
	// cycles from Time; the item becomes available at Time + o.
	OpRecv
	// OpCompute is local work (e.g. one addition in Section 5's summation
	// schedules) occupying the processor for Dur cycles from Time.
	OpCompute
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpCompute:
		return "comp"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is a single timed action at one processor.
type Event struct {
	Proc int       // processor performing the action
	Time logp.Time // start time
	Op   Op
	Item int       // item id (message payload identity); op tag for OpCompute
	Peer int       // destination (OpSend) / source (OpRecv); -1 for OpCompute
	Dur  logp.Time // duration for OpCompute; ignored otherwise
}

// Schedule is a complete communication schedule for one machine.
type Schedule struct {
	M      logp.Machine
	Events []Event
}

// Append adds an event.
func (s *Schedule) Append(e Event) { s.Events = append(s.Events, e) }

// Send appends a send event.
func (s *Schedule) Send(proc int, at logp.Time, item, to int) {
	s.Append(Event{Proc: proc, Time: at, Op: OpSend, Item: item, Peer: to})
}

// Recv appends a receive event.
func (s *Schedule) Recv(proc int, at logp.Time, item, from int) {
	s.Append(Event{Proc: proc, Time: at, Op: OpRecv, Item: item, Peer: from})
}

// Compute appends a compute event.
func (s *Schedule) Compute(proc int, at logp.Time, dur logp.Time, tag int) {
	s.Append(Event{Proc: proc, Time: at, Op: OpCompute, Item: tag, Peer: -1, Dur: dur})
}

// Sort orders events by (time, proc, op, item) for stable output.
func (s *Schedule) Sort() {
	sort.Slice(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Item < b.Item
	})
}

// Makespan returns the completion time of the schedule: the maximum over
// events of the time at which the event's effect is complete. A recv
// completes at Time + o (item available); a send at Time + o (port free;
// the matching recv carries the arrival); a compute at Time + Dur.
func (s *Schedule) Makespan() logp.Time {
	var mx logp.Time
	for _, e := range s.Events {
		var end logp.Time
		switch e.Op {
		case OpCompute:
			end = e.Time + e.Dur
		default:
			end = e.Time + s.M.O
		}
		if end > mx {
			mx = end
		}
	}
	return mx
}

// LastRecv returns the time of the latest receive event plus the receive
// overhead: the moment the last item becomes available anywhere. For
// broadcast schedules this is the broadcast's running time.
func (s *Schedule) LastRecv() logp.Time {
	var mx logp.Time
	for _, e := range s.Events {
		if e.Op == OpRecv && e.Time+s.M.O > mx {
			mx = e.Time + s.M.O
		}
	}
	return mx
}

// ByProc returns the events grouped by processor, each group sorted by time.
func (s *Schedule) ByProc() [][]Event {
	out := make([][]Event, s.M.P)
	for _, e := range s.Events {
		if e.Proc >= 0 && e.Proc < s.M.P {
			out[e.Proc] = append(out[e.Proc], e)
		}
	}
	for _, evs := range out {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	}
	return out
}

// Recvs returns all receive events of the given item, sorted by time.
func (s *Schedule) Recvs(item int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Op == OpRecv && e.Item == item {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
