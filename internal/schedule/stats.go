package schedule

import (
	"logpopt/internal/logp"
)

// ProcStats is one processor's port-activity breakdown for a run.
type ProcStats struct {
	Sends, Recvs int
	BusyCycles   int64 // overhead cycles spent at this processor's ports
	IdleCycles   int64 // span minus busy, clamped at 0
	MaxQueue     int   // input buffer/queue high-water mark (buffered modes)
}

// Stats summarizes port activity for one executed run. It is computed
// uniformly from an executed schedule by ComputeStats, so the simulator and
// the goroutine runtime report structurally identical statistics and the
// conformance harness can diff them field by field.
type Stats struct {
	Sends, Recvs   int       // total message events
	BusyCycles     int64     // sum over processors of overhead cycles spent
	Span           logp.Time // finish time of the run
	PortUtilFinish float64   // BusyCycles / (P * Span); 0 when Span == 0
	MaxQueue       int       // largest per-processor queue high-water mark
	PerProc        []ProcStats
}

// ComputeStats derives run statistics from an executed schedule: per-event
// port busy time (o per send/recv; in the postal model, where o == 0, one
// cycle per event so utilization stays meaningful), a per-processor
// breakdown with idle = span - busy, and the buffered-queue high-water marks
// supplied by the engine (maxQueue may be nil or shorter than P; missing
// entries are 0).
func ComputeStats(s *Schedule, span logp.Time, maxQueue []int) Stats {
	st := Stats{PerProc: make([]ProcStats, s.M.P)}
	perEvent := int64(s.M.O)
	if perEvent == 0 {
		perEvent = 1
	}
	for _, ev := range s.Events {
		if ev.Proc < 0 || ev.Proc >= s.M.P {
			continue
		}
		pp := &st.PerProc[ev.Proc]
		switch ev.Op {
		case OpSend:
			st.Sends++
			pp.Sends++
			pp.BusyCycles += perEvent
		case OpRecv:
			st.Recvs++
			pp.Recvs++
			pp.BusyCycles += perEvent
		}
	}
	st.Span = span
	for p := range st.PerProc {
		pp := &st.PerProc[p]
		st.BusyCycles += pp.BusyCycles
		if idle := int64(span) - pp.BusyCycles; idle > 0 {
			pp.IdleCycles = idle
		}
		if p < len(maxQueue) {
			pp.MaxQueue = maxQueue[p]
			if maxQueue[p] > st.MaxQueue {
				st.MaxQueue = maxQueue[p]
			}
		}
	}
	if span > 0 && s.M.P > 0 {
		st.PortUtilFinish = float64(st.BusyCycles) / (float64(s.M.P) * float64(span))
	}
	return st
}
