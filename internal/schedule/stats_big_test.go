package schedule

import (
	"testing"

	"logpopt/internal/logp"
)

// TestComputeStatsHugeTimes pins the statistics pipeline past 2^31: event
// times, spans, and idle-cycle differences on a huge-latency machine must
// come out exact, with no wrapped or negative cycle counts anywhere.
func TestComputeStatsHugeTimes(t *testing.T) {
	m := logp.MustNew(4, 1<<31, 2, 5)
	s := &Schedule{M: m}
	base := logp.Time(3) << 32 // ~1.3e10: far past int32
	s.Send(0, base, 0, 1)
	s.Recv(1, base+m.O+m.L, 0, 0)
	s.Send(1, base+2*(m.O+m.L), 0, 2)
	s.Recv(2, base+3*(m.O+m.L), 0, 1)
	span := base + 4*(m.O+m.L)

	st := ComputeStats(s, span, nil)
	if st.Sends != 2 || st.Recvs != 2 {
		t.Fatalf("sends/recvs = %d/%d, want 2/2", st.Sends, st.Recvs)
	}
	if want := 4 * int64(m.O); st.BusyCycles != want {
		t.Fatalf("BusyCycles = %d, want %d", st.BusyCycles, want)
	}
	if st.Span != span {
		t.Fatalf("Span = %d, want %d", st.Span, span)
	}
	for p, pp := range st.PerProc {
		if pp.BusyCycles < 0 || pp.IdleCycles < 0 {
			t.Fatalf("P%d: negative cycles: %+v", p, pp)
		}
		if want := int64(span) - pp.BusyCycles; pp.IdleCycles != want {
			t.Fatalf("P%d: IdleCycles = %d, want span-busy = %d", p, pp.IdleCycles, want)
		}
	}
	if st.PortUtilFinish <= 0 || st.PortUtilFinish >= 1 {
		t.Fatalf("PortUtilFinish = %v out of (0,1) for a nearly idle run", st.PortUtilFinish)
	}
	if got := s.Makespan(); got != base+3*(m.O+m.L)+m.O {
		t.Fatalf("Makespan = %d", got)
	}
}
