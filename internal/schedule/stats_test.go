package schedule_test

import (
	"math/rand"
	"testing"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

func TestComputeStatsEmpty(t *testing.T) {
	m := logp.MustNew(4, 6, 2, 4)
	s := &schedule.Schedule{M: m}
	st := schedule.ComputeStats(s, 0, nil)
	if st.Sends != 0 || st.Recvs != 0 || st.BusyCycles != 0 || st.Span != 0 {
		t.Fatalf("empty schedule: %+v", st)
	}
	if st.PortUtilFinish != 0 {
		t.Errorf("empty schedule utilization = %v, want 0 (no division by zero span)", st.PortUtilFinish)
	}
	if len(st.PerProc) != m.P {
		t.Fatalf("PerProc has %d entries, want P=%d", len(st.PerProc), m.P)
	}
	for p, pp := range st.PerProc {
		if pp != (schedule.ProcStats{}) {
			t.Errorf("P%d nonzero on empty schedule: %+v", p, pp)
		}
	}
	// Positive span with no events: everything is idle.
	st = schedule.ComputeStats(s, 10, nil)
	for p, pp := range st.PerProc {
		if pp.IdleCycles != 10 || pp.BusyCycles != 0 {
			t.Errorf("P%d: busy=%d idle=%d, want 0/10", p, pp.BusyCycles, pp.IdleCycles)
		}
	}
}

func TestComputeStatsSingleProcessor(t *testing.T) {
	m := logp.MustNew(1, 3, 2, 2)
	s := &schedule.Schedule{M: m}
	s.Compute(0, 0, 5, 0)
	st := schedule.ComputeStats(s, 5, nil)
	if st.Sends != 0 || st.Recvs != 0 {
		t.Fatalf("compute-only: %+v", st)
	}
	// Compute events carry no port overhead, so the port is idle all span.
	if st.PerProc[0].BusyCycles != 0 || st.PerProc[0].IdleCycles != 5 {
		t.Errorf("P0: %+v, want busy=0 idle=5", st.PerProc[0])
	}
}

// TestComputeStatsZeroDuration covers the postal model (o == 0): send and
// receive events are instantaneous, but ComputeStats charges one cycle per
// port event so utilization remains meaningful.
func TestComputeStatsZeroDuration(t *testing.T) {
	m := logp.Postal(2, 3)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 0, 1)
	s.Recv(1, m.L, 0, 0)
	st := schedule.ComputeStats(s, m.L, nil)
	if st.BusyCycles != 2 {
		t.Errorf("postal busy cycles = %d, want 1 per port event", st.BusyCycles)
	}
	if got := st.PerProc[0].IdleCycles; got != int64(m.L)-1 {
		t.Errorf("P0 idle = %d, want span-1 = %d", got, int64(m.L)-1)
	}
}

func TestComputeStatsOutOfRangeAndQueues(t *testing.T) {
	m := logp.MustNew(2, 3, 1, 2)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 0, 1)
	s.Events = append(s.Events, schedule.Event{Proc: 9, Op: schedule.OpSend}) // ignored
	s.Events = append(s.Events, schedule.Event{Proc: -1, Op: schedule.OpRecv})
	st := schedule.ComputeStats(s, 4, []int{3}) // maxQueue shorter than P
	if st.Sends != 1 || st.Recvs != 0 {
		t.Errorf("out-of-range events counted: %+v", st)
	}
	if st.MaxQueue != 3 || st.PerProc[0].MaxQueue != 3 || st.PerProc[1].MaxQueue != 0 {
		t.Errorf("queue marks: %+v", st)
	}
}

// TestComputeStatsBusyIdleProperty is the property test: for any event mix,
// busy + idle == span for every processor whose port work fits in the span
// (idle is clamped at zero when an overfull trace exceeds it).
func TestComputeStatsBusyIdleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(6)
		o := int64(rng.Intn(3))
		g := o + int64(rng.Intn(3))
		if g < 1 {
			g = 1
		}
		m := logp.MustNew(p, 1+int64(rng.Intn(5)), o, g)
		s := &schedule.Schedule{M: m}
		n := rng.Intn(40)
		var span logp.Time
		for i := 0; i < n; i++ {
			at := logp.Time(rng.Intn(30))
			proc := rng.Intn(p)
			switch rng.Intn(3) {
			case 0:
				s.Send(proc, at, i, rng.Intn(p))
			case 1:
				s.Recv(proc, at, i, rng.Intn(p))
			default:
				s.Compute(proc, at, logp.Time(rng.Intn(4)), i)
			}
			if at > span {
				span = at
			}
		}
		span += 10 // leave room so clamping is the exception, not the rule
		st := schedule.ComputeStats(s, span, nil)
		for pr, pp := range st.PerProc {
			if pp.BusyCycles <= int64(span) {
				if pp.BusyCycles+pp.IdleCycles != int64(span) {
					t.Fatalf("trial %d P%d: busy %d + idle %d != span %d",
						trial, pr, pp.BusyCycles, pp.IdleCycles, span)
				}
			} else if pp.IdleCycles != 0 {
				t.Fatalf("trial %d P%d: overfull port has idle %d, want clamp to 0",
					trial, pr, pp.IdleCycles)
			}
		}
	}
}
