package schedule

import (
	"fmt"
	"sort"

	"logpopt/internal/logp"
)

// A Violation describes one way a schedule breaks the LogP model's rules.
type Violation struct {
	Kind string
	Msg  string
}

func (v Violation) Error() string { return fmt.Sprintf("schedule: %s: %s", v.Kind, v.Msg) }

// Violation kinds produced by Validate.
const (
	VUnmatched  = "unmatched-message"   // send without matching recv or vice versa
	VLatency    = "latency"             // recv not exactly send + o + L
	VGap        = "gap"                 // two sends (or recvs) closer than g at one port
	VBusy       = "busy-overlap"        // overlapping busy intervals at one processor
	VCapacity   = "capacity"            // more than ceil(L/g) messages in transit to/from a proc
	VAvail      = "item-availability"   // item forwarded before it was available
	VComplete   = "incomplete"          // a processor missed an item it must receive
	VDuplicate  = "duplicate-reception" // a processor received the same item twice
	VNegTime    = "negative-time"       // event before time 0
	VBadProc    = "bad-processor"       // processor index out of range
	VSelfSend   = "self-send"           // message from a processor to itself
	VBadCompute = "bad-compute"         // compute event with non-positive duration
)

// Validate checks every structural LogP constraint on the schedule and
// returns all violations found (empty means the schedule is a legal LogP
// communication schedule). Receptions must begin exactly at arrival
// (send + o + L); for the deferred-reception discipline (NIC buffering, as
// in Section 3.5's modified model) use ValidateDeferred. Validate does not
// check item availability or broadcast completeness; see CheckAvailability
// and CheckBroadcastComplete.
func Validate(s *Schedule) []Violation {
	return validate(s, false)
}

// ValidateDeferred is Validate under the buffered-reception discipline:
// every reception must begin at or after its message's arrival, and each
// (sender, receiver, item) send is matched one-to-one with a later recv.
// This is the model of Section 3.5 (Theorem 3.8), in which arrivals wait in
// the receiver's input buffer until the processor receives them.
func ValidateDeferred(s *Schedule) []Violation {
	return validate(s, true)
}

func validate(s *Schedule, deferRecv bool) []Violation {
	var out []Violation
	add := func(kind, format string, args ...any) {
		out = append(out, Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
	m := s.M
	for _, e := range s.Events {
		if e.Time < 0 {
			add(VNegTime, "%s of item %d at proc %d at time %d", e.Op, e.Item, e.Proc, e.Time)
		}
		if e.Proc < 0 || e.Proc >= m.P {
			add(VBadProc, "%s event at proc %d (P=%d)", e.Op, e.Proc, m.P)
		}
		switch e.Op {
		case OpSend, OpRecv:
			if e.Peer < 0 || e.Peer >= m.P {
				add(VBadProc, "%s event at proc %d has peer %d (P=%d)", e.Op, e.Proc, e.Peer, m.P)
			}
			if e.Peer == e.Proc {
				add(VSelfSend, "proc %d %ss item %d to itself", e.Proc, e.Op, e.Item)
			}
		case OpCompute:
			if e.Dur <= 0 {
				add(VBadCompute, "proc %d compute at %d has duration %d", e.Proc, e.Time, e.Dur)
			}
		}
	}

	if deferRecv {
		out = append(out, matchMessagesDeferred(s)...)
	} else {
		out = append(out, matchMessages(s)...)
	}
	out = append(out, checkPorts(s)...)
	out = append(out, checkCapacity(s)...)
	return out
}

// msgKey identifies one directed message for send/recv matching.
type msgKey struct {
	from, to, item int
	arrive         logp.Time // send.Time + o + L == recv.Time
}

func matchMessages(s *Schedule) []Violation {
	var out []Violation
	m := s.M
	sends := make(map[msgKey]int)
	recvs := make(map[msgKey]int)
	for _, e := range s.Events {
		switch e.Op {
		case OpSend:
			sends[msgKey{e.Proc, e.Peer, e.Item, e.Time + m.O + m.L}]++
		case OpRecv:
			recvs[msgKey{e.Peer, e.Proc, e.Item, e.Time}]++
		}
	}
	for k, n := range sends {
		if r := recvs[k]; r != n {
			out = append(out, Violation{VUnmatched, fmt.Sprintf(
				"%d send(s) of item %d from %d to %d arriving at %d, but %d recv(s)",
				n, k.item, k.from, k.to, k.arrive, r)})
		}
	}
	for k, n := range recvs {
		if sd := sends[k]; sd == 0 && n > 0 {
			out = append(out, Violation{VUnmatched, fmt.Sprintf(
				"%d recv(s) of item %d at %d from %d at time %d with no matching send at %d",
				n, k.item, k.to, k.from, k.arrive, k.arrive-m.O-m.L)})
		}
	}
	return out
}

// matchMessagesDeferred matches sends to recvs per (from, to, item) channel,
// requiring each recv to start at or after its message's arrival. Sends and
// recvs on a channel are matched in time order (FIFO per channel).
func matchMessagesDeferred(s *Schedule) []Violation {
	var out []Violation
	m := s.M
	type chKey struct{ from, to, item int }
	sends := make(map[chKey][]logp.Time)
	recvs := make(map[chKey][]logp.Time)
	var keys []chKey
	for _, e := range s.Events {
		switch e.Op {
		case OpSend:
			k := chKey{e.Proc, e.Peer, e.Item}
			if len(sends[k]) == 0 && len(recvs[k]) == 0 {
				keys = append(keys, k)
			}
			sends[k] = append(sends[k], e.Time)
		case OpRecv:
			k := chKey{e.Peer, e.Proc, e.Item}
			if len(sends[k]) == 0 && len(recvs[k]) == 0 {
				keys = append(keys, k)
			}
			recvs[k] = append(recvs[k], e.Time)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.item < b.item
	})
	for _, k := range keys {
		ss := append([]logp.Time(nil), sends[k]...)
		rr := append([]logp.Time(nil), recvs[k]...)
		sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
		sort.Slice(rr, func(i, j int) bool { return rr[i] < rr[j] })
		if len(ss) != len(rr) {
			out = append(out, Violation{VUnmatched, fmt.Sprintf(
				"item %d from %d to %d: %d sends but %d recvs",
				k.item, k.from, k.to, len(ss), len(rr))})
			continue
		}
		for i := range ss {
			if rr[i] < ss[i]+m.O+m.L {
				out = append(out, Violation{VLatency, fmt.Sprintf(
					"item %d from %d to %d: recv at %d before arrival %d",
					k.item, k.from, k.to, rr[i], ss[i]+m.O+m.L)})
			}
		}
	}
	return out
}

// busyIval is a closed-open busy interval at a processor.
type busyIval struct {
	start, end logp.Time
	op         Op
	item       int
}

func checkPorts(s *Schedule) []Violation {
	var out []Violation
	m := s.M
	type portEvents struct {
		sends, recvs []logp.Time
		busy         []busyIval
	}
	ports := make(map[int]*portEvents)
	pe := func(p int) *portEvents {
		if ports[p] == nil {
			ports[p] = &portEvents{}
		}
		return ports[p]
	}
	for _, e := range s.Events {
		if e.Proc < 0 || e.Proc >= m.P {
			continue
		}
		p := pe(e.Proc)
		switch e.Op {
		case OpSend:
			p.sends = append(p.sends, e.Time)
			if m.O > 0 {
				p.busy = append(p.busy, busyIval{e.Time, e.Time + m.O, OpSend, e.Item})
			}
		case OpRecv:
			p.recvs = append(p.recvs, e.Time)
			if m.O > 0 {
				p.busy = append(p.busy, busyIval{e.Time, e.Time + m.O, OpRecv, e.Item})
			}
		case OpCompute:
			p.busy = append(p.busy, busyIval{e.Time, e.Time + e.Dur, OpCompute, e.Item})
		}
	}
	procs := make([]int, 0, len(ports))
	for p := range ports {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, proc := range procs {
		p := ports[proc]
		for _, kind := range []struct {
			name  string
			times []logp.Time
		}{{"send", p.sends}, {"recv", p.recvs}} {
			ts := append([]logp.Time(nil), kind.times...)
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			for i := 1; i < len(ts); i++ {
				if ts[i]-ts[i-1] < m.G {
					out = append(out, Violation{VGap, fmt.Sprintf(
						"proc %d: %ss at %d and %d violate gap g=%d",
						proc, kind.name, ts[i-1], ts[i], m.G)})
				}
			}
		}
		ivs := p.busy
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				out = append(out, Violation{VBusy, fmt.Sprintf(
					"proc %d: %s(item %d) [%d,%d) overlaps %s(item %d) [%d,%d)",
					proc,
					ivs[i-1].op, ivs[i-1].item, ivs[i-1].start, ivs[i-1].end,
					ivs[i].op, ivs[i].item, ivs[i].start, ivs[i].end)})
			}
		}
	}
	return out
}

func checkCapacity(s *Schedule) []Violation {
	var out []Violation
	m := s.M
	cap := m.Capacity()
	// Messages in transit from p occupy (send.Time+o, send.Time+o+L]; count
	// the maximum overlap per source and per destination with a sweep.
	type edge struct {
		start, end logp.Time
	}
	from := make(map[int][]edge)
	to := make(map[int][]edge)
	for _, e := range s.Events {
		if e.Op != OpSend {
			continue
		}
		ed := edge{e.Time + m.O, e.Time + m.O + m.L}
		from[e.Proc] = append(from[e.Proc], ed)
		to[e.Peer] = append(to[e.Peer], ed)
	}
	check := func(dir string, edges map[int][]edge) {
		procs := make([]int, 0, len(edges))
		for p := range edges {
			procs = append(procs, p)
		}
		sort.Ints(procs)
		for _, p := range procs {
			type pt struct {
				t logp.Time
				d int
			}
			var pts []pt
			for _, ed := range edges[p] {
				pts = append(pts, pt{ed.start, +1}, pt{ed.end, -1})
			}
			sort.Slice(pts, func(i, j int) bool {
				if pts[i].t != pts[j].t {
					return pts[i].t < pts[j].t
				}
				return pts[i].d < pts[j].d // process ends before starts at same instant
			})
			cur, mx := 0, 0
			for _, q := range pts {
				cur += q.d
				if cur > mx {
					mx = cur
				}
			}
			if mx > cap {
				out = append(out, Violation{VCapacity, fmt.Sprintf(
					"proc %d: %d messages in transit %s it (capacity ceil(L/g)=%d)",
					p, mx, dir, cap)})
			}
		}
	}
	check("from", from)
	check("to", to)
	return out
}

// CheckAvailability verifies that no processor sends an item before the item
// is available to it. origins maps item -> (proc, time at which the item is
// available at that proc, e.g. its generation time). Any item a processor
// receives becomes available o cycles after the recv event. Each send of an
// item at time s from proc p requires availability at p no later than s.
func CheckAvailability(s *Schedule, origins map[int]Origin) []Violation {
	var out []Violation
	m := s.M
	type pk struct{ proc, item int }
	avail := make(map[pk]logp.Time)
	for item, og := range origins {
		avail[pk{og.Proc, item}] = og.Time
	}
	for _, e := range s.Events {
		if e.Op != OpRecv {
			continue
		}
		k := pk{e.Proc, e.Item}
		t := e.Time + m.O
		if cur, ok := avail[k]; !ok || t < cur {
			avail[k] = t
		}
	}
	for _, e := range s.Events {
		if e.Op != OpSend {
			continue
		}
		t, ok := avail[pk{e.Proc, e.Item}]
		if !ok {
			out = append(out, Violation{VAvail, fmt.Sprintf(
				"proc %d sends item %d at %d but never has it", e.Proc, e.Item, e.Time)})
			continue
		}
		if e.Time < t {
			out = append(out, Violation{VAvail, fmt.Sprintf(
				"proc %d sends item %d at %d but it is available only at %d",
				e.Proc, e.Item, e.Time, t)})
		}
	}
	return out
}

// Origin records where and when an item enters the system.
type Origin struct {
	Proc int
	Time logp.Time
}

// CheckBroadcastComplete verifies that every processor other than an item's
// origin receives the item exactly once, for every item in origins.
func CheckBroadcastComplete(s *Schedule, origins map[int]Origin) []Violation {
	var out []Violation
	counts := make(map[int]map[int]int) // item -> proc -> recv count
	for _, e := range s.Events {
		if e.Op != OpRecv {
			continue
		}
		if counts[e.Item] == nil {
			counts[e.Item] = make(map[int]int)
		}
		counts[e.Item][e.Proc]++
	}
	items := make([]int, 0, len(origins))
	for item := range origins {
		items = append(items, item)
	}
	sort.Ints(items)
	for _, item := range items {
		og := origins[item]
		for p := 0; p < s.M.P; p++ {
			n := counts[item][p]
			switch {
			case p == og.Proc:
				if n != 0 {
					out = append(out, Violation{VDuplicate, fmt.Sprintf(
						"origin proc %d receives its own item %d", p, item)})
				}
			case n == 0:
				out = append(out, Violation{VComplete, fmt.Sprintf(
					"proc %d never receives item %d", p, item)})
			case n > 1:
				out = append(out, Violation{VDuplicate, fmt.Sprintf(
					"proc %d receives item %d %d times", p, item, n)})
			}
		}
	}
	return out
}

// ValidateBroadcast runs Validate, CheckAvailability and
// CheckBroadcastComplete and returns all violations.
func ValidateBroadcast(s *Schedule, origins map[int]Origin) []Violation {
	out := Validate(s)
	out = append(out, CheckAvailability(s, origins)...)
	out = append(out, CheckBroadcastComplete(s, origins)...)
	return out
}

// Kinds returns the distinct violation kinds present, sorted — a compact
// fingerprint of how a schedule is illegal, independent of message wording
// and multiplicity. Implementations that detect the same defect through
// different rules (e.g. a busy port reported as gap vs busy-overlap) still
// differ here, so cross-implementation comparisons should treat any
// non-empty kind set as "flagged" rather than diffing the sets themselves.
func Kinds(vs []Violation) []string {
	seen := make(map[string]bool, len(vs))
	var out []string
	for _, v := range vs {
		if !seen[v.Kind] {
			seen[v.Kind] = true
			out = append(out, v.Kind)
		}
	}
	sort.Strings(out)
	return out
}

// FirstError converts a violation list into a single error (nil when empty),
// for callers that only need pass/fail.
func FirstError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	if len(vs) == 1 {
		return vs[0]
	}
	return fmt.Errorf("%w (and %d more violations)", vs[0], len(vs)-1)
}
