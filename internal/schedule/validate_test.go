package schedule

import (
	"strings"
	"testing"

	"logpopt/internal/logp"
)

func mkPostal(p int, l logp.Time) logp.Machine { return logp.Postal(p, l) }

// wire appends a matched send/recv pair.
func wire(s *Schedule, from, to int, at logp.Time, item int) {
	s.Send(from, at, item, to)
	s.Recv(to, at+s.M.O+s.M.L, item, from)
}

func hasKind(vs []Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func TestValidateCleanPointToPoint(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	wire(s, 0, 1, 0, 42)
	if vs := Validate(s); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestUnmatchedSend(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	s.Send(0, 0, 1, 1)
	if vs := Validate(s); !hasKind(vs, VUnmatched) {
		t.Fatalf("want unmatched violation, got %v", vs)
	}
}

func TestUnmatchedRecv(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	s.Recv(1, 3, 1, 0)
	if vs := Validate(s); !hasKind(vs, VUnmatched) {
		t.Fatalf("want unmatched violation, got %v", vs)
	}
}

func TestWrongLatency(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	s.Send(0, 0, 1, 1)
	s.Recv(1, 2, 1, 0) // should be time 3
	vs := Validate(s)
	if !hasKind(vs, VUnmatched) {
		t.Fatalf("want unmatched violations for wrong latency, got %v", vs)
	}
}

func TestSendGapViolation(t *testing.T) {
	m := logp.MustNew(3, 6, 0, 4)
	s := &Schedule{M: m}
	wire(s, 0, 1, 0, 1)
	wire(s, 0, 2, 2, 1) // second send only 2 < g=4 after the first
	if vs := Validate(s); !hasKind(vs, VGap) {
		t.Fatalf("want gap violation, got %v", vs)
	}
}

func TestRecvGapViolation(t *testing.T) {
	m := logp.Postal(3, 4)
	s := &Schedule{M: m}
	wire(s, 0, 2, 0, 1)
	wire(s, 1, 2, 0, 2) // both arrive at proc 2 at time 4
	if vs := Validate(s); !hasKind(vs, VGap) {
		t.Fatalf("want recv gap violation, got %v", vs)
	}
}

func TestBusyOverlapSendRecv(t *testing.T) {
	// With o > 0 a processor cannot be inside send and receive overheads
	// simultaneously.
	m := logp.MustNew(3, 6, 2, 4)
	s := &Schedule{M: m}
	wire(s, 0, 1, 0, 1) // proc 1 busy receiving during [8,10)
	wire(s, 1, 2, 9, 2) // proc 1 starts a send at 9
	if vs := Validate(s); !hasKind(vs, VBusy) {
		t.Fatalf("want busy-overlap violation, got %v", vs)
	}
}

func TestPostalFullDuplexAllowed(t *testing.T) {
	// o=0: a processor may send and receive in the same step.
	m := logp.Postal(3, 3)
	s := &Schedule{M: m}
	wire(s, 0, 1, 0, 1) // proc 1 receives at 3
	wire(s, 1, 2, 3, 2) // proc 1 sends at 3 (item 2 is its own)
	vs := Validate(s)
	if len(vs) != 0 {
		t.Fatalf("full duplex flagged: %v", vs)
	}
}

func TestCapacityViolation(t *testing.T) {
	// L=4, g=1 => capacity 4 in transit. Six procs all send to proc 5
	// arriving at distinct times (satisfying the recv gap) is impossible
	// within capacity if arrivals bunch... instead exceed the *from*
	// capacity: one proc sends 6 messages 1 apart with L=4 — at most 4 can
	// be in flight, the 5th overlaps. With g=1, sends at 0..5 have flights
	// (0,4],(1,5],... at time 4.5 five are in flight.
	m := logp.MustNew(8, 4, 0, 1)
	s := &Schedule{M: m}
	for i := 0; i < 6; i++ {
		wire(s, 0, i+1, logp.Time(i), i)
	}
	// Flights: (i, i+4]; at time just above 3, flights 0..3 are live = 4 =
	// capacity; never 5 since sends are g apart. So this must be CLEAN.
	if vs := Validate(s); len(vs) != 0 {
		t.Fatalf("gap-respecting sends flagged for capacity: %v", vs)
	}
	// Now force a capacity violation on the receiving side by ignoring the
	// recv gap... recv gap would catch it first; instead check the counter
	// directly with a machine where g < L and recvs spaced g apart still
	// fit: capacity ceil(4/1)=4 is exactly the max, so no violation is
	// reachable without a gap violation first — which is the model's
	// consistency (capacity is implied by the gap rule). Assert that.
	s2 := &Schedule{M: m}
	for i := 0; i < 6; i++ {
		wire(s2, i+1, 0, 0, i) // six simultaneous arrivals at proc 0
	}
	vs := Validate(s2)
	if !hasKind(vs, VGap) || !hasKind(vs, VCapacity) {
		t.Fatalf("want gap+capacity violations, got %v", vs)
	}
}

func TestNegativeTimeAndBadProc(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	s.Send(0, -1, 1, 1)
	s.Recv(1, -1+3, 1, 0)
	vs := Validate(s)
	if !hasKind(vs, VNegTime) {
		t.Fatalf("want negative-time violation, got %v", vs)
	}
	s2 := &Schedule{M: mkPostal(2, 3)}
	s2.Send(5, 0, 1, 1)
	if vs := Validate(s2); !hasKind(vs, VBadProc) {
		t.Fatalf("want bad-proc violation, got %v", vs)
	}
}

func TestSelfSend(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	wire(s, 0, 0, 0, 1)
	if vs := Validate(s); !hasKind(vs, VSelfSend) {
		t.Fatalf("want self-send violation, got %v", vs)
	}
}

func TestBadCompute(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	s.Compute(0, 5, 0, 1)
	if vs := Validate(s); !hasKind(vs, VBadCompute) {
		t.Fatalf("want bad-compute violation, got %v", vs)
	}
}

func TestComputeOverlap(t *testing.T) {
	s := &Schedule{M: mkPostal(2, 3)}
	s.Compute(0, 5, 3, 1)
	s.Compute(0, 6, 3, 2)
	if vs := Validate(s); !hasKind(vs, VBusy) {
		t.Fatalf("want busy violation for overlapping computes, got %v", vs)
	}
}

func TestAvailability(t *testing.T) {
	m := mkPostal(3, 3)
	s := &Schedule{M: m}
	wire(s, 0, 1, 0, 9) // arrives at 3
	wire(s, 1, 2, 2, 9) // proc 1 forwards at 2 < 3: violation
	origins := map[int]Origin{9: {Proc: 0, Time: 0}}
	if vs := CheckAvailability(s, origins); !hasKind(vs, VAvail) {
		t.Fatalf("want availability violation, got %v", vs)
	}
	s2 := &Schedule{M: m}
	wire(s2, 0, 1, 0, 9)
	wire(s2, 1, 2, 3, 9) // forwards exactly at availability: fine
	if vs := CheckAvailability(s2, origins); len(vs) != 0 {
		t.Fatalf("legal forwarding flagged: %v", vs)
	}
	// Sending an item the processor never has.
	s3 := &Schedule{M: m}
	wire(s3, 1, 2, 0, 9)
	if vs := CheckAvailability(s3, origins); !hasKind(vs, VAvail) {
		t.Fatalf("want never-has violation, got %v", vs)
	}
}

func TestBroadcastComplete(t *testing.T) {
	m := mkPostal(3, 3)
	origins := map[int]Origin{0: {Proc: 0, Time: 0}}
	s := &Schedule{M: m}
	wire(s, 0, 1, 0, 0)
	vs := CheckBroadcastComplete(s, origins)
	if !hasKind(vs, VComplete) {
		t.Fatalf("want incomplete violation (proc 2 missing), got %v", vs)
	}
	wire(s, 0, 2, 1, 0)
	if vs := CheckBroadcastComplete(s, origins); len(vs) != 0 {
		t.Fatalf("complete broadcast flagged: %v", vs)
	}
	// Duplicate reception.
	wire(s, 1, 2, 4, 0)
	if vs := CheckBroadcastComplete(s, origins); !hasKind(vs, VDuplicate) {
		t.Fatalf("want duplicate violation, got %v", vs)
	}
	// Origin receiving its own item.
	s4 := &Schedule{M: m}
	wire(s4, 0, 1, 0, 0)
	wire(s4, 0, 2, 1, 0)
	wire(s4, 1, 0, 3, 0)
	if vs := CheckBroadcastComplete(s4, origins); !hasKind(vs, VDuplicate) {
		t.Fatalf("want origin-duplicate violation, got %v", vs)
	}
}

func TestMakespanAndLastRecv(t *testing.T) {
	m := logp.MustNew(3, 6, 2, 4)
	s := &Schedule{M: m}
	wire(s, 0, 1, 0, 1) // recv at 8, available at 10
	s.Compute(1, 10, 5, 0)
	if got := s.LastRecv(); got != 10 {
		t.Fatalf("LastRecv = %d, want 10", got)
	}
	if got := s.Makespan(); got != 15 {
		t.Fatalf("Makespan = %d, want 15", got)
	}
}

func TestSortAndByProc(t *testing.T) {
	s := &Schedule{M: mkPostal(3, 2)}
	wire(s, 0, 2, 5, 1)
	wire(s, 0, 1, 0, 1)
	s.Sort()
	if s.Events[0].Time != 0 {
		t.Fatalf("Sort: first event at %d", s.Events[0].Time)
	}
	bp := s.ByProc()
	if len(bp[0]) != 2 || len(bp[1]) != 1 || len(bp[2]) != 1 {
		t.Fatalf("ByProc counts wrong: %d %d %d", len(bp[0]), len(bp[1]), len(bp[2]))
	}
	if bp[0][0].Time != 0 || bp[0][1].Time != 5 {
		t.Fatal("ByProc not sorted by time")
	}
	rs := s.Recvs(1)
	if len(rs) != 2 || rs[0].Time != 2 || rs[1].Time != 7 {
		t.Fatalf("Recvs wrong: %v", rs)
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil); err != nil {
		t.Fatalf("FirstError(nil) = %v", err)
	}
	one := []Violation{{VGap, "x"}}
	if err := FirstError(one); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("FirstError(one) = %v", err)
	}
	two := []Violation{{VGap, "x"}, {VBusy, "y"}}
	if err := FirstError(two); err == nil || !strings.Contains(err.Error(), "1 more") {
		t.Fatalf("FirstError(two) = %v", err)
	}
}
