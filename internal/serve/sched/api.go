package sched

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/obs"
	"logpopt/internal/obs/causal"
	"logpopt/internal/par"
)

// maxBatch bounds one /v1/batch body (explicit requests plus the expanded
// sweep cross product), so a single request cannot fan out unboundedly.
const maxBatch = 4096

// Options configures an API.
type Options struct {
	// Cache answers /v1/schedule and /v1/batch; nil builds a default
	// 16-shard, 256 MiB cache over Registry.
	Cache *Cache
	// Constructor is the default tree-constructor mode ("auto", "search",
	// "logtime") for requests that do not name one. Empty means "auto".
	Constructor string
	// Registry receives the servd.* metrics; nil uses obs.Default.
	Registry *obs.Registry
	// Tracer, when non-nil, records one span per request on TracePID.
	Tracer *obs.Tracer
	// Log receives one structured record per request; nil discards.
	Log *slog.Logger
	// Slow escalates requests at or above this duration to a warning log
	// record; zero disables the slow-request log.
	Slow time.Duration
}

// API is the scheduling service: the handler set behind cmd/logpservd,
// mountable into an obs/serve.Server so the scheduling endpoints and the
// telemetry endpoints share one listener and one graceful shutdown.
type API struct {
	cache  *Cache
	ctor   string
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *slog.Logger
	slow   time.Duration

	ready      atomic.Bool
	started    time.Time
	nextID     atomic.Int64
	inflightMu sync.Mutex
	inflight   map[int64]*inflightInfo
	gInflight  *obs.Gauge
}

// NewAPI builds the service endpoints over opts.
func NewAPI(opts Options) *API {
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache(16, 256<<20, reg)
	}
	log := opts.Log
	if log == nil {
		log = discardLogger()
	}
	ctor := opts.Constructor
	if ctor == "" {
		ctor = "auto"
	}
	a := &API{
		cache:     cache,
		ctor:      ctor,
		reg:       reg,
		tracer:    opts.Tracer,
		log:       log,
		slow:      opts.Slow,
		started:   time.Now(),
		inflight:  map[int64]*inflightInfo{},
		gInflight: reg.Gauge("servd.http.inflight"),
	}
	if a.tracer != nil {
		a.tracer.NameProcess(TracePID, "logpservd requests (wall µs)")
	}
	return a
}

// SetReady flips the /readyz answer; cmd/logpservd sets it after the warmup
// solve so load balancers only route to a server whose solver paths are hot.
func (a *API) SetReady(ready bool) { a.ready.Store(ready) }

// Warm answers req through the cache outside any HTTP request — the
// daemon's pre-readiness warmup, exercising the same canonicalization and
// solve paths real requests take and seeding the cache with the answers.
func (a *API) Warm(req Request) (*Result, error) {
	res, _, err := a.resolve(req, nil)
	return res, err
}

// Route is one mountable endpoint with its index-page description.
type Route struct {
	Pattern string
	Desc    string
	Handler http.Handler
}

// Routes returns every endpoint the API serves, instrumented. The caller
// mounts them into a mux (cmd/logpservd mounts them into the obs/serve
// telemetry server so both surfaces share one listener).
func (a *API) Routes() []Route {
	return []Route{
		{"/v1/schedule", "optimal schedule for (op, P, L, o, g, k, t): JSON envelope, &format=schedule for raw schedule JSON", a.wrap("schedule", a.handleSchedule)},
		{"/v1/batch", "POST a batch or sweep of schedule requests, fanned out in parallel", a.wrap("batch", a.handleBatch)},
		{"/v1/explain", "causal critical-path report for a request: text, &format=json for fields", a.wrap("explain", a.handleExplain)},
		{"/healthz", "liveness: 200 while the process serves", a.wrap("healthz", a.handleHealthz)},
		{"/readyz", "readiness: 200 after warmup, 503 before", a.wrap("readyz", a.handleReadyz)},
		{"/debug/inflight", "in-flight requests with ages (JSON)", a.wrap("inflight", a.handleInflight)},
		{"/debug/cache", "schedule-cache shards: size, hit/miss/coalesce/eviction counts (JSON)", a.wrap("cache", a.handleCache)},
	}
}

// Handler builds a standalone mux of the API routes (tests and the load
// benchmark use it directly; the daemon mounts Routes into obs/serve).
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range a.Routes() {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// httpError writes a plain-text error with the API's uniform shape.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// machineJSON is the machine as it appears in response envelopes, matching
// the schedule interchange format's field names.
type machineJSON struct {
	P int       `json:"p"`
	L logp.Time `json:"l"`
	O logp.Time `json:"o"`
	G logp.Time `json:"g"`
}

// Envelope is the /v1/schedule response (and one /v1/batch result): the
// canonical key, the outcome numbers, how the cache answered, and — unless
// suppressed — the schedule itself in the interchange format.
type Envelope struct {
	Key         string          `json:"key"`
	Op          string          `json:"op"`
	Constructor string          `json:"constructor,omitempty"`
	Machine     machineJSON     `json:"machine"`
	K           int             `json:"k,omitempty"`
	Deadline    logp.Time       `json:"t,omitempty"`
	Finish      logp.Time       `json:"finish"`
	Bound       logp.Time       `json:"bound"`
	Gap         logp.Time       `json:"gap"`
	Events      int             `json:"events"`
	Cache       Outcome         `json:"cache"`
	SolveMicros int64           `json:"solve_us"`
	Error       string          `json:"error,omitempty"`
	Schedule    json.RawMessage `json:"schedule,omitempty"`
}

// envelope assembles the response metadata for one cache answer.
func envelope(res *Result, out Outcome, withSchedule bool) Envelope {
	k := res.Key
	gap := logp.Time(0)
	if res.C.Bound >= 0 {
		gap = res.Finish - res.C.Bound
	}
	e := Envelope{
		Key:         k.String(),
		Op:          k.Op,
		Constructor: k.Constructor,
		Machine:     machineJSON{P: k.P, L: k.L, O: k.O, G: k.G},
		K:           k.K,
		Deadline:    k.Deadline,
		Finish:      res.Finish,
		Bound:       res.C.Bound,
		Gap:         gap,
		Events:      len(res.C.S.Events),
		Cache:       out,
		SolveMicros: res.SolveMicros,
	}
	if withSchedule {
		e.Schedule = json.RawMessage(res.JSON)
	}
	return e
}

// parseRequest reads one Request from the query string (GET) or a JSON body
// (POST).
func (a *API) parseRequest(r *http.Request) (Request, error) {
	if r.Method == http.MethodPost {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return Request{}, fmt.Errorf("decoding request body: %w", err)
		}
		if req.L == 0 {
			req.L = 6
		}
		if req.G == 0 {
			req.G = 4
		}
		if req.K == 0 {
			req.K = 1
		}
		return req, nil
	}
	return ParseQuery(r.URL.Query().Get)
}

// resolve canonicalizes and answers one request through the cache,
// annotating ri along the way.
func (a *API) resolve(req Request, ri *reqInfo) (*Result, Outcome, error) {
	key, err := Canonicalize(req, a.ctor)
	if err != nil {
		if req.Op != "" && KnownOp(req.Op) && ri != nil {
			ri.setOp(req.Op)
		}
		return nil, "", err
	}
	if ri != nil {
		ri.setInFlightKey(key)
	}
	res, out, err := a.cache.Get(key)
	if ri != nil {
		ri.setKey(key, out)
	}
	return res, out, err
}

func (a *API) handleSchedule(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	req, err := a.parseRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, out, err := a.resolve(req, ri)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "schedule":
		// The exact bytes schedule.WriteJSON produced — what a local
		// `logpsched -render json` run prints, so the thin client and the
		// smoke test can diff CLI against service byte for byte.
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.JSON) //nolint:errcheck // client disconnects only
	case "", "envelope":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.Encode(envelope(res, out, r.URL.Query().Get("schedule") != "false")) //nolint:errcheck
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want envelope or schedule)", format)
	}
}

// Batch is the /v1/batch request body: explicit requests, an optional sweep
// whose axes cross-product into more requests, and whether the (potentially
// large) schedules ride along in the results.
type Batch struct {
	Requests         []Request `json:"requests,omitempty"`
	Sweep            *Sweep    `json:"sweep,omitempty"`
	IncludeSchedules bool      `json:"include_schedules,omitempty"`
}

// Sweep expands to the cross product of its axes. Empty axes take the
// single CLI default (L=6, o=2, g=4, k=1); P is required.
type Sweep struct {
	Op          string      `json:"op"`
	Constructor string      `json:"constructor,omitempty"`
	P           []int       `json:"p"`
	L           []logp.Time `json:"l,omitempty"`
	O           []logp.Time `json:"o,omitempty"`
	G           []logp.Time `json:"g,omitempty"`
	K           []int       `json:"k,omitempty"`
	Deadline    []logp.Time `json:"t,omitempty"`
}

// expand returns the sweep's cross product.
func (s *Sweep) expand() ([]Request, error) {
	if len(s.P) == 0 {
		return nil, fmt.Errorf("sweep: p axis is required")
	}
	ls, os, gs, ks, ts := s.L, s.O, s.G, s.K, s.Deadline
	if len(ls) == 0 {
		ls = []logp.Time{6}
	}
	if len(os) == 0 {
		os = []logp.Time{2}
	}
	if len(gs) == 0 {
		gs = []logp.Time{4}
	}
	if len(ks) == 0 {
		ks = []int{1}
	}
	if len(ts) == 0 {
		ts = []logp.Time{0}
	}
	var out []Request
	for _, p := range s.P {
		for _, l := range ls {
			for _, o := range os {
				for _, g := range gs {
					for _, k := range ks {
						for _, t := range ts {
							out = append(out, Request{
								Op: s.Op, Constructor: s.Constructor,
								P: p, L: l, O: o, G: g, K: k, Deadline: t,
							})
							if len(out) > maxBatch {
								return nil, fmt.Errorf("sweep expands past the %d-request batch limit", maxBatch)
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// BatchResponse is the /v1/batch reply.
type BatchResponse struct {
	Count   int        `json:"count"`
	Errors  int        `json:"errors"`
	Results []Envelope `json:"results"`
}

func (a *API) handleBatch(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON batch body to /v1/batch")
		return
	}
	var batch Batch
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		httpError(w, http.StatusBadRequest, "decoding batch body: %v", err)
		return
	}
	reqs := batch.Requests
	if batch.Sweep != nil {
		expanded, err := batch.Sweep.expand()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		reqs = append(reqs, expanded...)
	}
	if len(reqs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: give requests, a sweep, or both")
		return
	}
	if len(reqs) > maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds the %d-request limit", len(reqs), maxBatch)
		return
	}
	// One op labels the whole batch when the requests agree (the common
	// sweep shape); mixed batches are labeled as such.
	op := reqs[0].Op
	for _, rq := range reqs[1:] {
		if rq.Op != op {
			op = "mixed"
			break
		}
	}
	if op == "" {
		op = "broadcast"
	}
	ri.setOp(op)

	// Fan the batch out through the shared worker pool; the cache coalesces
	// duplicate keys inside the batch, so a sweep that repeats a machine
	// solves it once.
	results := par.Map(reqs, func(rq Request) Envelope {
		res, out, err := a.resolve(rq, nil)
		if err != nil {
			return Envelope{Op: rq.Op, Error: err.Error()}
		}
		return envelope(res, out, batch.IncludeSchedules)
	})
	resp := BatchResponse{Count: len(results), Results: results}
	for i := range results {
		if results[i].Error != "" {
			resp.Errors++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client disconnects only
}

// explainJSON is /v1/explain?format=json: the causal numbers without the
// rendered text.
type explainJSON struct {
	Key      string        `json:"key"`
	Op       string        `json:"op"`
	Machine  machineJSON   `json:"machine"`
	Finish   logp.Time     `json:"finish"`
	Bound    logp.Time     `json:"bound"`
	Gap      logp.Time     `json:"gap"`
	Steps    int           `json:"critical_path_steps"`
	Achieved breakdownJSON `json:"achieved"`
	Cache    Outcome       `json:"cache"`
}

type breakdownJSON struct {
	Latency  logp.Time `json:"latency"`
	Overhead logp.Time `json:"overhead"`
	Gap      logp.Time `json:"gap"`
	Compute  logp.Time `json:"compute"`
	Origin   logp.Time `json:"origin"`
	Wait     logp.Time `json:"wait"`
}

func toBreakdownJSON(b causal.Breakdown) breakdownJSON {
	return breakdownJSON{
		Latency: b.Latency, Overhead: b.Overhead, Gap: b.Gap,
		Compute: b.Compute, Origin: b.Origin, Wait: b.Wait,
	}
}

func (a *API) handleExplain(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	req, err := a.parseRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, out, err := a.resolve(req, ri)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The schedule came from the cache; the causal analysis itself is cheap
	// relative to solving and is recomputed per request, exactly as
	// `logpsched -explain` computes it.
	key := res.Key
	rep := causal.Analyze(res.C.S, DerivedOrigins(res.C.S))
	mode := key.Constructor
	if mode == "" {
		mode = "auto"
	}
	tb, _, err := logtime.Select(mode, key.P)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := ApplyBound(rep, res.C, key.Machine(), tb); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.String())
	case "json":
		gap := logp.Time(0)
		if res.C.Bound >= 0 {
			gap = res.Finish - res.C.Bound
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(explainJSON{ //nolint:errcheck // client disconnects only
			Key:      key.String(),
			Op:       key.Op,
			Machine:  machineJSON{P: key.P, L: key.L, O: key.O, G: key.G},
			Finish:   res.Finish,
			Bound:    res.C.Bound,
			Gap:      gap,
			Steps:    len(rep.Path),
			Achieved: toBreakdownJSON(rep.Achieved),
			Cache:    out,
		})
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want text or json)", format)
	}
}

func (a *API) handleHealthz(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *API) handleReadyz(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "warming")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (a *API) handleInflight(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client disconnects only
		Inflight []inflightInfo `json:"inflight"`
	}{a.Inflight()})
}

// cacheDebug is the /debug/cache document.
type cacheDebug struct {
	Shards        []ShardStats `json:"shards"`
	Totals        ShardStats   `json:"totals"`
	MaxBytes      int64        `json:"max_bytes"`
	UptimeSeconds float64      `json:"uptime_seconds"`
}

func (a *API) handleCache(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	stats := a.cache.Stats()
	var totals ShardStats
	for _, s := range stats {
		totals.Add(s)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(cacheDebug{ //nolint:errcheck // client disconnects only
		Shards:        stats,
		Totals:        totals,
		MaxBytes:      a.cache.maxBytes,
		UptimeSeconds: time.Since(a.started).Seconds(),
	})
}
