package sched

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logpopt/internal/logtime"
	"logpopt/internal/obs"
	"logpopt/internal/schedule"
)

func newTestAPI(t *testing.T) (*API, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	a := NewAPI(Options{
		Cache:    NewCache(4, 0, reg),
		Registry: reg,
	})
	a.SetReady(true)
	return a, reg
}

func get(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec, body
}

func post(t *testing.T, h http.Handler, url, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec, out
}

func TestScheduleEndpoint(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()

	rec, body := get(t, h, "/v1/schedule?op=broadcast&p=16&l=6&o=2&g=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if env.Op != "broadcast" || env.Machine.P != 16 || env.Cache != Miss {
		t.Fatalf("envelope = %+v", env)
	}
	if env.Finish != env.Bound || env.Gap != 0 {
		t.Fatalf("optimal broadcast should meet its bound: finish=%d bound=%d gap=%d", env.Finish, env.Bound, env.Gap)
	}
	if len(env.Schedule) == 0 {
		t.Fatal("envelope missing schedule")
	}
	s, err := schedule.ReadJSON(bytes.NewReader(env.Schedule))
	if err != nil {
		t.Fatalf("embedded schedule does not parse: %v", err)
	}
	if s.Makespan() != env.Finish {
		t.Fatalf("embedded schedule makespan %d != envelope finish %d", s.Makespan(), env.Finish)
	}

	// Second identical request is a hit.
	_, body = get(t, h, "/v1/schedule?op=broadcast&p=16&l=6&o=2&g=4")
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Cache != Hit {
		t.Fatalf("second request cache = %q, want hit", env.Cache)
	}

	// schedule=false suppresses the payload.
	_, body = get(t, h, "/v1/schedule?op=broadcast&p=16&l=6&o=2&g=4&schedule=false")
	var bare Envelope
	if err := json.Unmarshal(body, &bare); err != nil {
		t.Fatal(err)
	}
	if len(bare.Schedule) != 0 {
		t.Fatal("schedule=false still embedded the schedule")
	}
}

// TestScheduleFormatScheduleBytes: format=schedule must serve the exact
// bytes schedule.WriteJSON produced, for byte-for-byte CLI diffing.
func TestScheduleFormatScheduleBytes(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()
	rec, body := get(t, h, "/v1/schedule?op=broadcast&p=16&l=6&o=2&g=4&format=schedule")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	tb, _, err := logtime.Select("search", 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(testKey(t, Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1}).Machine(), "broadcast", 1, 0, tb)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := c.S.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatal("format=schedule bytes differ from a local WriteJSON")
	}
}

func TestScheduleErrors(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()
	cases := []struct {
		url  string
		want string
	}{
		{"/v1/schedule", "p is required"},
		{"/v1/schedule?p=16&op=sideways", "unknown op"},
		{"/v1/schedule?p=0", "p must be"},
		{"/v1/schedule?p=16&l=nope", `l="nope"`},
		{"/v1/schedule?p=16&format=yaml", "unknown format"},
		{"/v1/schedule?p=16&op=summation", "deadline"},
	}
	for _, tc := range cases {
		rec, body := get(t, h, tc.url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.url, rec.Code)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %q missing %q", tc.url, body, tc.want)
		}
	}
}

func TestSchedulePostBody(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()
	rec, body := post(t, h, "/v1/schedule", `{"op":"summation","p":8,"l":6,"o":2,"g":4,"t":28}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, body)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Op != "summation" || env.Deadline != 28 {
		t.Fatalf("envelope = %+v", env)
	}
	if env.Finish > env.Bound {
		t.Fatalf("summation finished at %d past its deadline %d", env.Finish, env.Bound)
	}
}

func TestBatchEndpoint(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()

	// Sweep 4 machines plus one explicit request plus one bad request.
	rec, body := post(t, h, "/v1/batch", `{
		"requests": [
			{"op":"broadcast","p":8,"l":6,"o":2,"g":4},
			{"op":"sideways","p":8,"l":6,"o":2,"g":4}
		],
		"sweep": {"op":"broadcast","p":[4,8],"l":[6,9]}
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 6 {
		t.Fatalf("count = %d, want 6 (2 explicit + 2×2 sweep)", resp.Count)
	}
	if resp.Errors != 1 {
		t.Fatalf("errors = %d, want 1", resp.Errors)
	}
	// Results preserve request order: the bad request is second.
	if resp.Results[1].Error == "" || !strings.Contains(resp.Results[1].Error, "unknown op") {
		t.Fatalf("result[1] = %+v, want unknown-op error", resp.Results[1])
	}
	// The explicit (p=8,l=6) and the sweep's (8,6) are the same key: one
	// must have been answered from cache.
	var outcomes []Outcome
	for _, r := range resp.Results {
		if r.Key == "broadcast/search/P8/L6/o2/g4" {
			outcomes = append(outcomes, r.Cache)
		}
	}
	if len(outcomes) != 2 {
		t.Fatalf("expected 2 results for the duplicated key, got %d", len(outcomes))
	}
	misses := 0
	for _, o := range outcomes {
		if o == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("duplicated key solved %d times in one batch, want 1 (outcomes %v)", misses, outcomes)
	}
	// Schedules stay out of batch results unless asked for.
	if len(resp.Results[0].Schedule) != 0 {
		t.Fatal("batch embedded schedules without include_schedules")
	}

	rec, body = post(t, h, "/v1/batch", `{}`)
	if rec.Code != http.StatusBadRequest || !strings.Contains(string(body), "empty batch") {
		t.Fatalf("empty batch: status=%d body=%s", rec.Code, body)
	}
	rec, _ = get(t, h, "/v1/batch")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch status = %d, want 405", rec.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()

	rec, body := get(t, h, "/v1/explain?op=binomial&p=16&l=6&o=2&g=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, "critical path") {
		t.Fatalf("explain text missing critical path section:\n%s", text)
	}

	rec, body = get(t, h, "/v1/explain?op=binomial&p=16&l=6&o=2&g=4&format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("json status = %d", rec.Code)
	}
	var ex explainJSON
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Op != "binomial" || ex.Steps == 0 || ex.Finish == 0 {
		t.Fatalf("explainJSON = %+v", ex)
	}
	if ex.Gap != ex.Finish-ex.Bound {
		t.Fatalf("gap %d != finish %d - bound %d", ex.Gap, ex.Finish, ex.Bound)
	}
	// The schedule itself came from the cache (the first explain solved it).
	if ex.Cache != Hit {
		t.Fatalf("second explain cache = %q, want hit", ex.Cache)
	}
}

func TestHealthAndReady(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAPI(Options{Cache: NewCache(1, 0, reg), Registry: reg})
	h := a.Handler()

	rec, _ := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	rec, body := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(string(body), "warming") {
		t.Fatalf("/readyz before warmup: %d %s", rec.Code, body)
	}
	a.SetReady(true)
	rec, body = get(t, h, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("/readyz after warmup: %d %s", rec.Code, body)
	}
}

func TestDebugCacheEndpoint(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()

	// 1 miss + 2 hits on one key, 1 miss on another.
	get(t, h, "/v1/schedule?p=16")
	get(t, h, "/v1/schedule?p=16")
	get(t, h, "/v1/schedule?p=16")
	get(t, h, "/v1/schedule?p=32")

	rec, body := get(t, h, "/debug/cache")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var dbg cacheDebug
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Shards) != a.cache.Shards() {
		t.Fatalf("%d shard rows, want %d", len(dbg.Shards), a.cache.Shards())
	}
	if dbg.Totals.Misses != 2 || dbg.Totals.Hits != 2 || dbg.Totals.Size != 2 {
		t.Fatalf("totals = %+v, want 2 misses, 2 hits, 2 entries", dbg.Totals)
	}
}

func TestDebugInflightEndpoint(t *testing.T) {
	a, _ := newTestAPI(t)
	h := a.Handler()

	// Hold one request in flight by blocking its solve: a cold key whose
	// entry we pre-insert and never complete, so the handler coalesces and
	// blocks until released.
	k := testKey(t, Request{Op: "broadcast", P: 77, L: 6, O: 2, G: 4, K: 1})
	sh := a.cache.shards[k.Shard(a.cache.Shards())]
	blocked := &entry{ready: make(chan struct{})}
	sh.mu.Lock()
	sh.entries[k] = blocked
	sh.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, h, "/v1/schedule?p=77")
	}()
	// Wait until the in-flight table shows the blocked request with its key.
	var listed inflightInfo
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		infl := a.Inflight()
		if len(infl) == 1 && infl[0].Key != "" {
			listed = infl[0]
			break
		}
		time.Sleep(time.Millisecond)
	}
	if listed.Endpoint != "schedule" || listed.Key != k.String() {
		t.Fatalf("inflight = %+v, want schedule/%s", listed, k)
	}

	rec, body := get(t, h, "/debug/inflight")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc struct {
		Inflight []inflightInfo `json:"inflight"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	// The /debug/inflight request itself is in flight while serving, so the
	// list holds it plus the blocked schedule request (oldest first).
	if len(doc.Inflight) != 2 || doc.Inflight[0].Key != k.String() || doc.Inflight[1].Endpoint != "inflight" {
		t.Fatalf("/debug/inflight = %s", body)
	}

	// Release the blocked request and let it finish.
	res, err := a.cache.solve(k)
	if err != nil {
		t.Fatal(err)
	}
	blocked.res = res
	close(blocked.ready)
	wg.Wait()

	if got := a.Inflight(); len(got) != 0 {
		t.Fatalf("inflight after completion = %+v", got)
	}
}

// TestREDMetrics: every endpoint hit must produce per-endpoint request
// counters and duration histograms, plus per-op series when the op is known,
// all visible through the Prometheus exposition.
func TestREDMetrics(t *testing.T) {
	a, reg := newTestAPI(t)
	h := a.Handler()

	get(t, h, "/v1/schedule?p=16")
	get(t, h, "/v1/schedule?p=16")
	get(t, h, "/v1/schedule?p=0") // error
	post(t, h, "/v1/batch", `{"sweep":{"op":"alltoall","p":[4,8],"k":[2]}}`)
	get(t, h, "/v1/explain?op=broadcast&p=16")
	get(t, h, "/healthz")

	if got := reg.Counter("servd.http.schedule.requests").Value(); got != 3 {
		t.Fatalf("schedule requests = %d, want 3", got)
	}
	if got := reg.Counter("servd.http.schedule.errors").Value(); got != 1 {
		t.Fatalf("schedule errors = %d, want 1", got)
	}
	if got := reg.Counter("servd.http.schedule.broadcast.requests").Value(); got != 2 {
		t.Fatalf("per-op schedule.broadcast requests = %d, want 2", got)
	}
	if got := reg.Counter("servd.http.batch.alltoall.requests").Value(); got != 1 {
		t.Fatalf("per-op batch.alltoall requests = %d, want 1", got)
	}
	if got := reg.Histogram("servd.http.schedule.duration.us").Count(); got != 3 {
		t.Fatalf("schedule duration observations = %d, want 3", got)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	exposition := buf.String()
	for _, series := range []string{
		"logpopt_servd_http_schedule_requests_total 3",
		"logpopt_servd_http_schedule_errors_total 1",
		`logpopt_servd_http_schedule_duration_us{quantile="0.99"}`,
		"logpopt_servd_cache_misses_total",
		"logpopt_servd_cache_entries",
	} {
		if !strings.Contains(exposition, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

func TestTraceSpansPerRequest(t *testing.T) {
	reg := obs.NewRegistry()
	var sink bytes.Buffer
	tr := obs.NewTracer()
	a := NewAPI(Options{Cache: NewCache(1, 0, reg), Registry: reg, Tracer: tr})
	a.SetReady(true)
	h := a.Handler()

	get(t, h, "/v1/schedule?p=16")
	get(t, h, "/healthz")

	if err := tr.WriteJSON(&sink); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(sink.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	spans := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == TracePID {
			spans[ev.Name] = ev.Args
		}
	}
	if len(spans) != 2 {
		t.Fatalf("request spans = %d, want 2 (got %v)", len(spans), spans)
	}
	args := spans["schedule"]
	if args == nil {
		t.Fatalf("no schedule span in %v", spans)
	}
	if args["op"] != "broadcast" || args["cache"] != "miss" {
		t.Fatalf("schedule span args = %v", args)
	}
	if args["key"] == nil || args["key"] == "" {
		t.Fatalf("schedule span missing key: %v", args)
	}
}
