package sched

import (
	"bytes"
	"container/list"
	"fmt"
	"sync"
	"time"

	"logpopt/internal/logp"
	"logpopt/internal/logtime"
	"logpopt/internal/obs"
)

// Outcome labels how the cache answered one request.
type Outcome string

// Cache outcomes, as reported in response envelopes and /debug/cache.
const (
	// Miss: this request ran the solver.
	Miss Outcome = "miss"
	// Hit: the answer was already cached.
	Hit Outcome = "hit"
	// Coalesced: another request was already computing the same key; this
	// one waited for it instead of solving again.
	Coalesced Outcome = "coalesced"
)

// Result is one cached answer: the compiled schedule, its serialized JSON
// (the exact bytes schedule.WriteJSON emits, so /v1/schedule?format=schedule
// is byte-identical to `logpsched -render json`), and the outcome metadata.
type Result struct {
	Key         Key
	C           *Compiled
	JSON        []byte
	Finish      logp.Time
	SolveMicros int64
}

// entry is one cache slot. Until ready is closed the entry is in flight:
// later requests for the key block on ready instead of solving (the
// singleflight). In-flight entries are absent from the LRU list and are
// never evicted.
type entry struct {
	ready chan struct{}
	res   *Result
	err   error
	elem  *list.Element // LRU position once ready; nil while in flight
	bytes int64
}

// shard is one lock domain of the cache: a map of entries plus an LRU list
// of the ready ones, newest at the front.
type shard struct {
	mu        sync.Mutex
	entries   map[Key]*entry
	lru       list.List // of Key
	bytes     int64
	hits      int64
	misses    int64
	coalesced int64
	evictions int64
}

// ShardStats is one shard's row of /debug/cache.
type ShardStats struct {
	Size      int   `json:"size"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// Add folds o into s (for the /debug/cache totals row).
func (s *ShardStats) Add(o ShardStats) {
	s.Size += o.Size
	s.Bytes += o.Bytes
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Evictions += o.Evictions
}

// Cache is the sharded, memory-bounded schedule cache. Each shard holds its
// own lock, entry map, and LRU list; a key's shard is fixed by its canonical
// hash, so a thundering herd on one key contends on exactly one shard and
// computes the answer exactly once.
type Cache struct {
	shards   []*shard
	maxBytes int64 // total budget, split evenly across shards; 0 = unbounded

	// Registry mirrors of the per-shard counters, so /metrics sees cache
	// behavior without /debug/cache's lock sweep.
	mHits, mMisses, mCoalesced, mEvictions, mSolveErrors *obs.Counter
	mBytes, mEntries                                     *obs.Gauge
	hSolve                                               *obs.Histogram
}

// NewCache builds a cache with n shards (n < 1 means 1) holding at most
// maxBytes of serialized schedules in total (0 = unbounded). reg receives
// the mirrored servd.cache.* metrics; nil uses obs.Default.
func NewCache(n int, maxBytes int64, reg *obs.Registry) *Cache {
	if n < 1 {
		n = 1
	}
	if reg == nil {
		reg = obs.Default
	}
	c := &Cache{
		shards:       make([]*shard, n),
		maxBytes:     maxBytes,
		mHits:        reg.Counter("servd.cache.hits"),
		mMisses:      reg.Counter("servd.cache.misses"),
		mCoalesced:   reg.Counter("servd.cache.coalesced"),
		mEvictions:   reg.Counter("servd.cache.evictions"),
		mSolveErrors: reg.Counter("servd.cache.solve.errors"),
		mBytes:       reg.Gauge("servd.cache.bytes"),
		mEntries:     reg.Gauge("servd.cache.entries"),
		hSolve:       reg.Histogram("servd.cache.solve.us"),
	}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make(map[Key]*entry)}
	}
	return c
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Get answers k, computing it with solve (exactly once per key however many
// requests race) and caching the result. The returned Outcome says whether
// this request hit, missed (and solved), or coalesced onto another
// request's solve. Failed solves are not cached: every waiter gets the
// error, and the next request retries.
func (c *Cache) Get(k Key) (*Result, Outcome, error) {
	sh := c.shards[k.Shard(len(c.shards))]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		select {
		case <-e.ready:
			// Ready: a plain hit.
			sh.hits++
			sh.lru.MoveToFront(e.elem)
			sh.mu.Unlock()
			c.mHits.Inc()
			if e.err != nil {
				return nil, Hit, e.err
			}
			return e.res, Hit, nil
		default:
			// In flight: coalesce onto the solver already running.
			sh.coalesced++
			sh.mu.Unlock()
			c.mCoalesced.Inc()
			<-e.ready
			if e.err != nil {
				return nil, Coalesced, e.err
			}
			return e.res, Coalesced, nil
		}
	}
	e := &entry{ready: make(chan struct{})}
	sh.entries[k] = e
	sh.misses++
	sh.mu.Unlock()
	c.mMisses.Inc()

	res, err := c.solve(k)
	sh.mu.Lock()
	if err != nil {
		// Do not cache failures: drop the slot so the next request retries,
		// then wake the coalesced waiters with the error.
		delete(sh.entries, k)
		e.err = err
		sh.mu.Unlock()
		c.mSolveErrors.Inc()
		close(e.ready)
		return nil, Miss, err
	}
	e.res = res
	e.bytes = int64(len(res.JSON)) + 64
	e.elem = sh.lru.PushFront(k)
	sh.bytes += e.bytes
	c.evictLocked(sh)
	sh.mu.Unlock()
	close(e.ready)
	c.publishGauges()
	return res, Miss, nil
}

// evictLocked drops least-recently-used ready entries until the shard fits
// its slice of the byte budget. Caller holds sh.mu. In-flight entries are
// not in the LRU list and therefore survive; the entry being inserted is at
// the front and is only dropped if it alone exceeds the whole budget.
func (c *Cache) evictLocked(sh *shard) {
	if c.maxBytes <= 0 {
		return
	}
	budget := c.maxBytes / int64(len(c.shards))
	for sh.bytes > budget && sh.lru.Len() > 1 {
		back := sh.lru.Back()
		k := back.Value.(Key)
		e := sh.entries[k]
		sh.lru.Remove(back)
		delete(sh.entries, k)
		sh.bytes -= e.bytes
		sh.evictions++
		c.mEvictions.Inc()
	}
}

// solve compiles the key's schedule and serializes it once.
func (c *Cache) solve(k Key) (*Result, error) {
	mode := k.Constructor
	if mode == "" {
		mode = "auto"
	}
	tb, _, err := logtime.Select(mode, k.P)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	comp, err := Compile(k.Machine(), k.Op, k.K, k.Deadline, tb)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	if err := comp.S.WriteJSON(&b); err != nil {
		return nil, fmt.Errorf("serializing schedule for %s: %w", k, err)
	}
	us := time.Since(start).Microseconds()
	c.hSolve.Observe(us)
	return &Result{
		Key:         k,
		C:           comp,
		JSON:        b.Bytes(),
		Finish:      comp.S.Makespan(),
		SolveMicros: us,
	}, nil
}

// publishGauges refreshes the registry's view of cache occupancy.
func (c *Cache) publishGauges() {
	var size int
	var bts int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		size += len(sh.entries)
		bts += sh.bytes
		sh.mu.Unlock()
	}
	c.mEntries.Set(int64(size))
	c.mBytes.Set(bts)
}

// Stats snapshots every shard for /debug/cache.
func (c *Cache) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Size:      len(sh.entries),
			Bytes:     sh.bytes,
			Hits:      sh.hits,
			Misses:    sh.misses,
			Coalesced: sh.coalesced,
			Evictions: sh.evictions,
		}
		sh.mu.Unlock()
	}
	return out
}
