package sched

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"logpopt/internal/obs"
)

func testKey(t *testing.T, req Request) Key {
	t.Helper()
	k, err := Canonicalize(req, "")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCacheCoalescing is the tentpole guarantee: N concurrent identical cold
// requests run the solver exactly once — one miss, N-1 coalesced (or, for
// stragglers arriving after the solve finished, hits).
func TestCacheCoalescing(t *testing.T) {
	const n = 32
	reg := obs.NewRegistry()
	c := NewCache(4, 0, reg)
	k := testKey(t, Request{Op: "broadcast", P: 512, L: 6, O: 2, G: 4, K: 1})

	// Gate every goroutine on a barrier so the requests are genuinely
	// concurrent, then count the outcomes.
	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		mu      sync.Mutex
		byKind  = map[Outcome]int{}
		results = map[string]int{}
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, out, err := c.Get(k)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			mu.Lock()
			byKind[out]++
			results[string(res.JSON)]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if byKind[Miss] != 1 {
		t.Fatalf("misses = %d, want exactly 1 (outcomes: %v)", byKind[Miss], byKind)
	}
	if byKind[Miss]+byKind[Hit]+byKind[Coalesced] != n {
		t.Fatalf("outcomes don't sum to %d: %v", n, byKind)
	}
	if len(results) != 1 {
		t.Fatalf("%d distinct JSON payloads for one key, want 1", len(results))
	}

	var total ShardStats
	for _, s := range c.Stats() {
		total.Add(s)
	}
	if total.Misses != 1 {
		t.Fatalf("shard stats misses = %d, want 1", total.Misses)
	}
	if total.Hits+total.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", total.Hits+total.Coalesced, n-1)
	}
	if got := reg.Counter("servd.cache.misses").Value(); got != 1 {
		t.Fatalf("registry misses = %d, want 1", got)
	}
}

func TestCacheHitServesSameBytes(t *testing.T) {
	c := NewCache(2, 0, obs.NewRegistry())
	k := testKey(t, Request{Op: "broadcast", P: 8, L: 6, O: 2, G: 4, K: 1})
	first, out, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if out != Miss {
		t.Fatalf("first Get outcome = %q, want miss", out)
	}
	second, out, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if out != Hit {
		t.Fatalf("second Get outcome = %q, want hit", out)
	}
	if !bytes.Equal(first.JSON, second.JSON) {
		t.Fatal("hit returned different bytes than the miss")
	}
	if second.Finish != first.Finish {
		t.Fatalf("finish changed across hit: %d vs %d", second.Finish, first.Finish)
	}
}

// TestCacheEviction fills a tiny cache past its byte budget and checks LRU
// order: the oldest untouched entries go first and recently-used ones stay.
func TestCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// One shard so LRU order is globally observable; a budget that holds
	// only a few small schedules.
	c := NewCache(1, 2048, reg)
	keys := make([]Key, 0, 12)
	for p := 2; p < 14; p++ {
		keys = append(keys, testKey(t, Request{Op: "broadcast", P: p, L: 6, O: 2, G: 4, K: 1}))
	}
	for _, k := range keys {
		if _, _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	var total ShardStats
	for _, s := range c.Stats() {
		total.Add(s)
	}
	if total.Evictions == 0 {
		t.Fatalf("no evictions after inserting %d entries into a 2 KiB cache (bytes=%d)", len(keys), total.Bytes)
	}
	if total.Bytes > 2048 {
		t.Fatalf("cache holds %d bytes, budget 2048", total.Bytes)
	}
	// The most recent key must have survived.
	if _, out, err := c.Get(keys[len(keys)-1]); err != nil || out != Hit {
		t.Fatalf("most recent key: outcome=%q err=%v, want hit", out, err)
	}
	// The oldest key was evicted, so refetching it is a miss.
	if _, out, err := c.Get(keys[0]); err != nil || out != Miss {
		t.Fatalf("oldest key: outcome=%q err=%v, want miss", out, err)
	}
}

// TestCacheErrorNotCached: a failed solve must not leave a poisoned entry —
// the next identical request retries (and fails again, freshly).
func TestCacheErrorNotCached(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(1, 0, reg)
	// kitem with k=2, P=1 in the postal model: capacity C(L)=1 < k, so the
	// solver reports infeasibility.
	k := Key{Op: "kitem", P: 1, L: 1, O: 0, G: 1, K: 5}
	_, out, err := c.Get(k)
	if err == nil {
		t.Fatal("expected solve error")
	}
	if out != Miss {
		t.Fatalf("outcome = %q, want miss", out)
	}
	_, out, err = c.Get(k)
	if err == nil {
		t.Fatal("expected second solve error")
	}
	if out != Miss {
		t.Fatalf("second failed request outcome = %q, want miss (errors must not cache)", out)
	}
	var total ShardStats
	for _, s := range c.Stats() {
		total.Add(s)
	}
	if total.Size != 0 {
		t.Fatalf("cache holds %d entries after only failed solves, want 0", total.Size)
	}
	if got := reg.Counter("servd.cache.solve.errors").Value(); got != 2 {
		t.Fatalf("solve error counter = %d, want 2", got)
	}
}

func TestCacheConstructorRespected(t *testing.T) {
	c := NewCache(1, 0, obs.NewRegistry())
	// The same machine through both constructors must yield the same
	// makespan (logtime is exact) but distinct cache entries.
	ks := testKey(t, Request{Op: "broadcast", P: 600, L: 6, O: 2, G: 4, K: 1, Constructor: "search"})
	kl := testKey(t, Request{Op: "broadcast", P: 600, L: 6, O: 2, G: 4, K: 1, Constructor: "logtime"})
	if ks == kl {
		t.Fatal("search and logtime canonicalized to the same key")
	}
	rs, _, err := c.Get(ks)
	if err != nil {
		t.Fatal(err)
	}
	rl, _, err := c.Get(kl)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Finish != rl.Finish {
		t.Fatalf("constructors disagree on makespan: search=%d logtime=%d", rs.Finish, rl.Finish)
	}
}

func TestSolveErrorMentionsOp(t *testing.T) {
	c := NewCache(1, 0, obs.NewRegistry())
	k := Key{Op: "nosuch", P: 4, L: 6, O: 2, G: 4}
	_, _, err := c.Get(k)
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v, want unknown-op error", err)
	}
}
