package sched

import (
	"fmt"
	"strconv"
	"strings"

	"logpopt/internal/logp"
	"logpopt/internal/logtime"
)

// Request is one schedule question as it arrives from a client, either as
// /v1/schedule query parameters or as an element of a /v1/batch body.
// Unset numeric fields take the same defaults as cmd/logpsched's flags
// (L=6, o=2, g=4, k=1); P is required.
type Request struct {
	Op          string    `json:"op"`
	Constructor string    `json:"constructor,omitempty"` // "", "auto", "search", "logtime"
	P           int       `json:"p"`
	L           logp.Time `json:"l"`
	O           logp.Time `json:"o"`
	G           logp.Time `json:"g"`
	K           int       `json:"k,omitempty"`
	Deadline    logp.Time `json:"t,omitempty"`
}

// Key is the canonical cache identity of a request: machine parameters the
// op actually reads, the resolved constructor for ops that build a tree,
// and k/t only where they matter. Two requests that are the same question
// canonicalize to the same Key; near-miss machines do not.
type Key struct {
	Op          string
	Constructor string // resolved: "search", "logtime", or "" for non-tree ops
	P           int
	L, O, G     logp.Time
	K           int
	Deadline    logp.Time
}

// String renders the key in its canonical, shard-hashable spelling.
func (k Key) String() string {
	var b strings.Builder
	b.WriteString(k.Op)
	if k.Constructor != "" {
		b.WriteByte('/')
		b.WriteString(k.Constructor)
	}
	fmt.Fprintf(&b, "/P%d/L%d/o%d/g%d", k.P, k.L, k.O, k.G)
	if k.K != 0 {
		fmt.Fprintf(&b, "/k%d", k.K)
	}
	if k.Deadline != 0 {
		fmt.Fprintf(&b, "/t%d", k.Deadline)
	}
	return b.String()
}

// Machine rebuilds the validated machine the key describes.
func (k Key) Machine() logp.Machine {
	return logp.Machine{P: k.P, L: k.L, O: k.O, G: k.G}
}

// Canonicalize validates req and folds every don't-care dimension away:
//
//   - postal-model ops (kitem, continuous) force o=0, g=1, so requests that
//     differ only there are one cache entry;
//   - k is kept only for ops that consume it (kitem, alltoall, continuous)
//     and zeroed elsewhere, so broadcast?k=7 is broadcast;
//   - the deadline is kept only for summation;
//   - the constructor is resolved ("auto" picks by P exactly as
//     cmd/logpsched does, via logtime.Select) for tree-building ops and
//     cleared for ops that never touch the tree.
//
// defaultCtor is the server's -constructor mode, used when the request
// leaves the constructor empty.
func Canonicalize(req Request, defaultCtor string) (Key, error) {
	if req.Op == "" {
		req.Op = "broadcast"
	}
	if !KnownOp(req.Op) {
		return Key{}, fmt.Errorf("unknown op %q (want one of %v)", req.Op, Ops)
	}
	if req.P < 1 {
		return Key{}, fmt.Errorf("p must be at least 1, got %d", req.P)
	}
	if req.L < 1 {
		return Key{}, fmt.Errorf("l must be at least 1, got %d", req.L)
	}
	var m logp.Machine
	if PostalOp(req.Op) {
		m = logp.Postal(req.P, req.L)
	} else {
		var err error
		if m, err = logp.New(req.P, req.L, req.O, req.G); err != nil {
			return Key{}, err
		}
	}
	k := Key{Op: req.Op, P: m.P, L: m.L, O: m.O, G: m.G}
	if KOp(req.Op) {
		if req.K < 1 {
			return Key{}, fmt.Errorf("op %s: k must be at least 1, got %d", req.Op, req.K)
		}
		k.K = req.K
	}
	if req.Op == "summation" {
		if req.Deadline <= 0 {
			return Key{}, fmt.Errorf("summation requires a deadline t > 0, got %d", req.Deadline)
		}
		k.Deadline = req.Deadline
	}
	if TreeOp(req.Op) {
		mode := req.Constructor
		if mode == "" {
			mode = defaultCtor
		}
		if mode == "" {
			mode = "auto"
		}
		_, name, err := logtime.Select(mode, m.P)
		if err != nil {
			return Key{}, err
		}
		k.Constructor = name
	}
	return k, nil
}

// fnv64a hashes s with the 64-bit FNV-1a function (inlined so the package
// needs no hash imports on the request hot path).
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Shard maps the key onto one of n cache shards. The canonical string is
// hashed, so equivalent requests (which canonicalize to equal keys) always
// land on the same shard.
func (k Key) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv64a(k.String()) % uint64(n))
}

// parseTime parses a query-string integer into a logp.Time.
func parseTime(s string) (logp.Time, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return logp.Time(v), nil
}

// ParseQuery builds a Request from /v1/schedule-style query parameters,
// applying the CLI defaults for machine parameters that are absent.
func ParseQuery(get func(string) string) (Request, error) {
	req := Request{
		Op:          get("op"),
		Constructor: get("constructor"),
		L:           6, O: 2, G: 4,
		K: 1,
	}
	fields := []struct {
		name string
		set  func(logp.Time)
	}{
		{"l", func(v logp.Time) { req.L = v }},
		{"o", func(v logp.Time) { req.O = v }},
		{"g", func(v logp.Time) { req.G = v }},
		{"t", func(v logp.Time) { req.Deadline = v }},
	}
	for _, f := range fields {
		if s := get(f.name); s != "" {
			v, err := parseTime(s)
			if err != nil {
				return Request{}, fmt.Errorf("parameter %s=%q is not an integer", f.name, s)
			}
			f.set(v)
		}
	}
	for _, f := range []struct {
		name string
		set  func(int)
	}{
		{"p", func(v int) { req.P = v }},
		{"k", func(v int) { req.K = v }},
	} {
		if s := get(f.name); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				return Request{}, fmt.Errorf("parameter %s=%q is not an integer", f.name, s)
			}
			f.set(v)
		}
	}
	if get("p") == "" {
		return Request{}, fmt.Errorf("parameter p is required (number of processors)")
	}
	return req, nil
}
