package sched

import (
	"strings"
	"testing"

	"logpopt/internal/logtime"
)

func TestCanonicalizeEquivalences(t *testing.T) {
	cases := []struct {
		name string
		a, b Request
		same bool
	}{
		{
			// Postal ops ignore o and g entirely.
			name: "kitem forces postal machine",
			a:    Request{Op: "kitem", P: 8, L: 5, O: 2, G: 4, K: 3},
			b:    Request{Op: "kitem", P: 8, L: 5, O: 9, G: 7, K: 3},
			same: true,
		},
		{
			// Broadcast never reads k; any value is the same question.
			name: "broadcast ignores k",
			a:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 7},
			b:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1},
			same: true,
		},
		{
			// Only summation consumes a deadline.
			name: "broadcast ignores t",
			a:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1, Deadline: 30},
			b:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1},
			same: true,
		},
		{
			// "auto" resolves to a concrete constructor, so naming that
			// constructor explicitly is the same cache entry.
			name: "auto resolves to search below threshold",
			a:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1, Constructor: "auto"},
			b:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1, Constructor: "search"},
			same: true,
		},
		{
			name: "near-miss L differs",
			a:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1},
			b:    Request{Op: "broadcast", P: 16, L: 7, O: 2, G: 4, K: 1},
			same: false,
		},
		{
			name: "near-miss P differs",
			a:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1},
			b:    Request{Op: "broadcast", P: 17, L: 6, O: 2, G: 4, K: 1},
			same: false,
		},
		{
			name: "kitem distinguishes k",
			a:    Request{Op: "kitem", P: 8, L: 5, K: 3},
			b:    Request{Op: "kitem", P: 8, L: 5, K: 4},
			same: false,
		},
		{
			name: "empty op defaults to broadcast",
			a:    Request{P: 16, L: 6, O: 2, G: 4, K: 1},
			b:    Request{Op: "broadcast", P: 16, L: 6, O: 2, G: 4, K: 1},
			same: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, err := Canonicalize(tc.a, "")
			if err != nil {
				t.Fatalf("Canonicalize(a): %v", err)
			}
			kb, err := Canonicalize(tc.b, "")
			if err != nil {
				t.Fatalf("Canonicalize(b): %v", err)
			}
			if (ka == kb) != tc.same {
				t.Fatalf("keys %q and %q: same=%v, want %v", ka, kb, ka == kb, tc.same)
			}
			if tc.same && ka.Shard(16) != kb.Shard(16) {
				t.Fatalf("equal keys landed on different shards: %d vs %d", ka.Shard(16), kb.Shard(16))
			}
		})
	}
}

func TestCanonicalizeAutoThreshold(t *testing.T) {
	big, err := Canonicalize(Request{Op: "broadcast", P: logtime.DefaultThreshold, L: 6, O: 2, G: 4, K: 1}, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if big.Constructor != "logtime" {
		t.Fatalf("auto at P=%d resolved to %q, want logtime", logtime.DefaultThreshold, big.Constructor)
	}
	small, err := Canonicalize(Request{Op: "broadcast", P: logtime.DefaultThreshold - 1, L: 6, O: 2, G: 4, K: 1}, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if small.Constructor != "search" {
		t.Fatalf("auto at P=%d resolved to %q, want search", logtime.DefaultThreshold-1, small.Constructor)
	}
}

func TestCanonicalizeClearsConstructorForNonTreeOps(t *testing.T) {
	k, err := Canonicalize(Request{Op: "alltoall", P: 8, L: 6, O: 2, G: 4, K: 2, Constructor: "logtime"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if k.Constructor != "" {
		t.Fatalf("alltoall kept constructor %q; non-tree ops must clear it", k.Constructor)
	}
}

func TestCanonicalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"unknown op", Request{Op: "sideways", P: 4, L: 6, O: 2, G: 4}, "unknown op"},
		{"bad P", Request{Op: "broadcast", P: 0, L: 6, O: 2, G: 4}, "p must be"},
		{"bad L", Request{Op: "broadcast", P: 4, L: 0, O: 2, G: 4}, "l must be"},
		{"bad k", Request{Op: "kitem", P: 4, L: 5, K: 0}, "k must be"},
		{"summation needs t", Request{Op: "summation", P: 4, L: 6, O: 2, G: 4}, "deadline"},
		{"bad constructor", Request{Op: "broadcast", P: 4, L: 6, O: 2, G: 4, Constructor: "quantum"}, "constructor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Canonicalize(tc.req, "")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestKeyString(t *testing.T) {
	k, err := Canonicalize(Request{Op: "summation", P: 8, L: 6, O: 2, G: 4, Deadline: 28}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := k.String(), "summation/search/P8/L6/o2/g4/t28"; got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
	k2, err := Canonicalize(Request{Op: "kitem", P: 8, L: 5, K: 3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := k2.String(), "kitem/P8/L5/o0/g1/k3"; got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}

func TestParseQuery(t *testing.T) {
	q := map[string]string{"op": "broadcast", "p": "16", "l": "9"}
	req, err := ParseQuery(func(k string) string { return q[k] })
	if err != nil {
		t.Fatal(err)
	}
	if req.P != 16 || req.L != 9 || req.O != 2 || req.G != 4 || req.K != 1 {
		t.Fatalf("defaults not applied: %+v", req)
	}

	if _, err := ParseQuery(func(k string) string { return map[string]string{"op": "broadcast"}[k] }); err == nil || !strings.Contains(err.Error(), "p is required") {
		t.Fatalf("missing p: err = %v", err)
	}
	if _, err := ParseQuery(func(k string) string { return map[string]string{"p": "16", "l": "soon"}[k] }); err == nil || !strings.Contains(err.Error(), `l="soon"`) {
		t.Fatalf("bad l: err = %v", err)
	}
}
