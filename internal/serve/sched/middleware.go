package sched

import (
	"io"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"logpopt/internal/obs"
)

// TracePID is the trace process id of the request track: every served
// request becomes a wall-clock span (tid = request id) under this pid, so a
// -tracesample'd Perfetto trace of production traffic sits beside the
// solver (pid 4) and simulator (pid 1) tracks without sharing their time
// bases.
const TracePID = 5

// inflightInfo is one live request, as listed by /debug/inflight.
type inflightInfo struct {
	ID        int64  `json:"id"`
	Endpoint  string `json:"endpoint"`
	Method    string `json:"method"`
	Query     string `json:"query,omitempty"`
	Op        string `json:"op,omitempty"`
	Key       string `json:"key,omitempty"`
	AgeMicros int64  `json:"age_us"`

	start time.Time
}

// reqInfo is the per-request annotation slot handlers fill in as they learn
// what the request is (op, canonical key, cache outcome). Annotations are
// written through to the in-flight table under the API's lock, so
// /debug/inflight can say what each live request is computing, and read
// back by the middleware to label metrics, spans, and logs.
type reqInfo struct {
	a       *API
	id      int64
	op      string
	key     string
	outcome Outcome
}

func (ri *reqInfo) setOp(op string) {
	ri.a.inflightMu.Lock()
	ri.op = op
	if info, ok := ri.a.inflight[ri.id]; ok {
		info.Op = op
	}
	ri.a.inflightMu.Unlock()
}

func (ri *reqInfo) setKey(k Key, o Outcome) {
	ri.a.inflightMu.Lock()
	ri.op, ri.key, ri.outcome = k.Op, k.String(), o
	if info, ok := ri.a.inflight[ri.id]; ok {
		info.Op, info.Key = k.Op, k.String()
	}
	ri.a.inflightMu.Unlock()
}

// setInFlightKey publishes the key before the (possibly long) solve starts,
// so /debug/inflight shows what a stuck request was computing.
func (ri *reqInfo) setInFlightKey(k Key) {
	ri.a.inflightMu.Lock()
	if info, ok := ri.a.inflight[ri.id]; ok {
		info.Op, info.Key = k.Op, k.String()
	}
	ri.a.inflightMu.Unlock()
}

func (ri *reqInfo) snapshot() (op, key string, outcome Outcome) {
	ri.a.inflightMu.Lock()
	defer ri.a.inflightMu.Unlock()
	return ri.op, ri.key, ri.outcome
}

// statusWriter records the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// handlerFunc is an API handler with its annotation slot.
type handlerFunc func(w http.ResponseWriter, r *http.Request, ri *reqInfo)

// wrap is the instrumentation stack every endpoint flows through, outermost
// first: request id assignment, in-flight registration, the handler, then
// RED metrics (per-endpoint and per-endpoint-per-op request/error counters
// and duration histograms), a request-scoped trace span, and structured
// logging with a slow-request escalation.
func (a *API) wrap(endpoint string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := a.nextID.Add(1)
		start := time.Now()
		startTS := a.tracer.Now()
		ri := &reqInfo{a: a, id: id}
		a.inflightMu.Lock()
		a.inflight[id] = &inflightInfo{
			ID: id, Endpoint: endpoint, Method: r.Method,
			Query: r.URL.RawQuery, start: start,
		}
		n := len(a.inflight)
		a.inflightMu.Unlock()
		a.gInflight.Set(int64(n))

		sw := &statusWriter{ResponseWriter: w}
		h(sw, r, ri)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		a.inflightMu.Lock()
		delete(a.inflight, id)
		n = len(a.inflight)
		a.inflightMu.Unlock()
		a.gInflight.Set(int64(n))

		dur := time.Since(start)
		us := dur.Microseconds()
		op, key, outcome := ri.snapshot()

		red := func(prefix string) {
			a.reg.Counter(prefix + ".requests").Inc()
			if sw.status >= 400 {
				a.reg.Counter(prefix + ".errors").Inc()
			}
			a.reg.Histogram(prefix + ".duration.us").Observe(us)
		}
		red("servd.http." + endpoint)
		if op != "" {
			red("servd.http." + endpoint + "." + op)
		}

		if a.tracer != nil {
			args := []obs.Arg{
				obs.A("endpoint", endpoint), obs.A("status", sw.status),
			}
			if op != "" {
				args = append(args, obs.A("op", op))
			}
			if key != "" {
				args = append(args, obs.A("key", key), obs.A("cache", string(outcome)))
			}
			a.tracer.Span(TracePID, int(id), endpoint, startTS, us, args...)
		}

		attrs := []any{
			"req", id, "endpoint", endpoint, "method", r.Method,
			"path", r.URL.Path, "status", sw.status, "bytes", sw.bytes,
			"dur", dur.Round(time.Microsecond).String(),
		}
		if r.URL.RawQuery != "" {
			attrs = append(attrs, "query", r.URL.RawQuery)
		}
		if op != "" {
			attrs = append(attrs, "op", op)
		}
		if key != "" {
			attrs = append(attrs, "key", key, "cache", string(outcome))
		}
		switch {
		case a.slow > 0 && dur >= a.slow:
			a.log.Warn("slow request", append(attrs, "slow_threshold", a.slow.String())...)
			a.reg.Counter("servd.http.slow").Inc()
		case sw.status >= 500:
			a.log.Error("request failed", attrs...)
		default:
			a.log.Info("request", attrs...)
		}
	}
}

// Inflight snapshots the live requests, oldest first.
func (a *API) Inflight() []inflightInfo {
	now := time.Now()
	a.inflightMu.Lock()
	out := make([]inflightInfo, 0, len(a.inflight))
	for _, ri := range a.inflight {
		info := *ri
		info.AgeMicros = now.Sub(ri.start).Microseconds()
		out = append(out, info)
	}
	a.inflightMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].AgeMicros != out[j].AgeMicros {
			return out[i].AgeMicros > out[j].AgeMicros
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// discardLogger is the default when no logger is configured: tests and
// embedded uses stay silent.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
