// Package sched is the scheduling service behind cmd/logpservd: the
// operation compiler shared with cmd/logpsched, a canonical cache key over
// (op, constructor, P, L, o, g, k, t), a sharded memory-bounded schedule
// cache with singleflight request coalescing, and an instrumented HTTP/JSON
// API (/v1/schedule, /v1/batch, /v1/explain) with RED metrics,
// request-scoped tracing, structured logging, and live introspection
// endpoints (/healthz, /readyz, /debug/inflight, /debug/cache).
//
// The compile layer here is the single source of truth for "what schedule
// answers (op, machine, k, t)": cmd/logpsched calls it for local solves and
// cmd/logpservd calls it behind the cache, so the thin-client -remote mode
// can diff service answers against local ones byte for byte.
package sched

import (
	"errors"
	"fmt"

	"logpopt/internal/alltoall"
	"logpopt/internal/baseline"
	"logpopt/internal/combine"
	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/obs/causal"
	"logpopt/internal/schedule"
	"logpopt/internal/summation"
)

// Ops lists every operation the compiler (and therefore the service and
// cmd/logpsched) accepts.
var Ops = []string{
	"broadcast", "linear", "flat", "binary", "binomial",
	"alltoall", "personalized", "scatter", "gather",
	"reduce", "scan", "kitem", "continuous", "summation",
}

// KnownOp reports whether op names a compilable operation.
func KnownOp(op string) bool {
	for _, o := range Ops {
		if o == op {
			return true
		}
	}
	return false
}

// PostalOp reports whether op is defined only in the postal model (o = 0,
// g = 1); for these the machine's o and g are forced, so requests that
// differ only there are the same question.
func PostalOp(op string) bool { return op == "kitem" || op == "continuous" }

// KOp reports whether op consumes the item count k.
func KOp(op string) bool {
	return op == "kitem" || op == "alltoall" || op == "continuous"
}

// TreeOp reports whether op's answer (schedule or bound) is built from the
// optimal broadcast tree, i.e. whether the constructor choice is part of the
// work. Non-tree ops canonicalize the constructor away.
func TreeOp(op string) bool {
	switch op {
	case "broadcast", "reduce", "scan", "summation",
		"linear", "flat", "binary", "binomial":
		return true
	}
	return false
}

// Compiled is one answered schedule question: the schedule, the operation's
// closed-form lower bound (-1 when none is known), and whether the bound
// came from the optimal broadcast tree rather than the op's own closed form
// (true for the broadcast baselines, whose -explain gap is attributed
// against the optimal tree's breakdown).
type Compiled struct {
	S        *schedule.Schedule
	Bound    logp.Time
	Baseline bool
}

// Compile builds op's schedule on m. k is the item count for kitem,
// alltoall, and continuous; deadline is the summation deadline; tb builds
// the optimal broadcast tree for the ops that need one. The arms mirror the
// paper's sections exactly — this is cmd/logpsched's former switch, factored
// out so the service computes the identical artifact.
func Compile(m logp.Machine, op string, k int, deadline logp.Time, tb core.TreeBuilder) (*Compiled, error) {
	if KOp(op) && k < 1 {
		return nil, fmt.Errorf("op %s: k must be at least 1, got %d", op, k)
	}
	c := &Compiled{Bound: -1}
	var err error
	switch op {
	case "broadcast":
		tr := tb(m, m.P)
		c.S, err = core.TreeSchedule(tr, 0, nil, 0)
		if err != nil {
			return nil, err
		}
		c.Bound = tr.MaxLabel()
	case "linear", "flat", "binary", "binomial":
		var tr *core.Tree
		switch op {
		case "linear":
			tr = baseline.LinearTree(m, m.P)
		case "flat":
			tr = baseline.FlatTree(m, m.P)
		case "binary":
			tr = baseline.BinaryTree(m, m.P)
		case "binomial":
			tr = baseline.BinomialTree(m, m.P)
		}
		c.S, err = baseline.Schedule(tr, 0)
		if err != nil {
			return nil, err
		}
		c.Bound = tb(m, m.P).MaxLabel()
		c.Baseline = true
	case "alltoall":
		c.S = alltoall.Schedule(m, k)
		c.Bound = alltoall.LowerBound(m, k)
	case "personalized":
		c.S = alltoall.Personalized(m)
		c.Bound = alltoall.LowerBound(m, 1)
	case "scatter":
		c.S = alltoall.Scatter(m)
		c.Bound = alltoall.ScatterLowerBound(m)
	case "gather":
		c.S = alltoall.Gather(m)
		c.Bound = alltoall.ScatterLowerBound(m)
	case "reduce":
		tr := tb(m, m.P)
		c.S = combine.ReduceScheduleWith(m, m.P, func(logp.Machine, int) *core.Tree { return tr })
		c.Bound = tr.MaxLabel()
	case "scan":
		tr := tb(m, m.P)
		c.S = combine.ScanScheduleWith(m, m.P, func(logp.Machine, int) *core.Tree { return tr })
		c.Bound = tr.MaxLabel() // one sweep is unavoidable
	case "kitem":
		_, c.S, err = kitem.OptimalGeneral(m.L, m.P, k)
		if err != nil {
			return nil, fmt.Errorf("%w (try the greedy scheduler in the library for this instance)", err)
		}
		c.Bound = logp.Time(kitem.BoundsFor(int(m.L), m.P, int64(k)).SingleSending)
	case "continuous":
		var inst *continuous.Instance
		inst, c.S, err = continuous.SolveGeneralAndSchedule(int(m.L), m.P-1, k)
		if err != nil {
			return nil, err
		}
		c.Bound = logp.Time(inst.Delay() + k - 1)
	case "summation":
		if deadline <= 0 {
			return nil, errors.New("summation requires a deadline t > 0 (e.g. t=28 for Figure 6)")
		}
		var pl *summation.Plan
		pl, err = summation.BuildWith(m, deadline, tb)
		if err != nil {
			return nil, err
		}
		c.S = pl.Schedule()
		c.Bound = deadline
	default:
		return nil, fmt.Errorf("unknown op %q (want one of %v)", op, Ops)
	}
	return c, nil
}

// DerivedOrigins injects every item at its earliest sender at time zero,
// mirroring conform.DerivedOrigins (the conformance harness is deliberately
// not imported so the serving stack's dependencies stay one-directional).
func DerivedOrigins(s *schedule.Schedule) map[int]schedule.Origin {
	og := make(map[int]schedule.Origin)
	first := make(map[int]logp.Time)
	for _, ev := range s.Events {
		if ev.Op != schedule.OpSend {
			continue
		}
		if t, ok := first[ev.Item]; !ok || ev.Time < t {
			first[ev.Item] = ev.Time
			og[ev.Item] = schedule.Origin{Proc: ev.Proc}
		}
	}
	return og
}

// OptimalBroadcastRef is the gap-attribution reference the broadcast
// baselines use: the causal breakdown of the *optimal* broadcast on the same
// machine, so -explain (and /v1/explain) attribute a baseline's gap against
// how the optimal tree spends its time. Returns nil if the optimal schedule
// cannot be built (it always can for a valid machine).
func OptimalBroadcastRef(m logp.Machine, tb core.TreeBuilder) *causal.Breakdown {
	opt, err := core.TreeSchedule(tb(m, m.P), 0, nil, 0)
	if err != nil {
		return nil
	}
	r := causal.Analyze(opt, core.Origins(0)).Achieved
	return &r
}

// ApplyBound attaches c's closed-form bound to rep the way cmd/logpsched
// -explain always has: the reference breakdown is the optimal broadcast's
// for baselines, and the achieved breakdown scaled to the bound otherwise.
// A Compiled with no known bound leaves rep untouched.
func ApplyBound(rep *causal.Report, c *Compiled, m logp.Machine, tb core.TreeBuilder) error {
	if c.Bound < 0 {
		return nil
	}
	ref := rep.Achieved.Scaled(c.Bound)
	if c.Baseline {
		if r := OptimalBroadcastRef(m, tb); r != nil {
			ref = *r
		}
	}
	return rep.SetBound(c.Bound, ref)
}
