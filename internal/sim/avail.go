package sim

import "logpopt/internal/logp"

// availStore maps (processor, item) -> earliest availability time without a
// per-processor map: per-processor singly-linked entry lists carved from one
// shared slab. At P ~ 10^6 the old map-per-processor layout cost a million
// map headers plus a bucket allocation per processor that ever held an item,
// and Reset had to clear each one; the slab is a single slice whose entries
// are recycled wholesale by truncation.
//
// Lookups walk the processor's list, which is as long as the number of
// distinct items that processor holds — one for broadcast, k for k-item
// schedules — so the walk is short exactly where P is large.
type availStore struct {
	heads   []int32 // per processor, index of the first entry; -1 = none
	entries []availEntry
}

type availEntry struct {
	next int32
	item int
	at   logp.Time
}

// reset prepares the store for p processors, reusing both the heads slice
// and the entry slab.
func (a *availStore) reset(p int) {
	if cap(a.heads) < p {
		a.heads = make([]int32, p)
	} else {
		a.heads = a.heads[:p]
	}
	for i := range a.heads {
		a.heads[i] = -1
	}
	a.entries = a.entries[:0]
}

// get returns the availability time of item at processor p, if known.
func (a *availStore) get(p, item int) (logp.Time, bool) {
	for i := a.heads[p]; i >= 0; i = a.entries[i].next {
		if a.entries[i].item == item {
			return a.entries[i].at, true
		}
	}
	return 0, false
}

// setMin records that item is available at processor p from time at,
// keeping the earliest time when the pair is already known.
func (a *availStore) setMin(p, item int, at logp.Time) {
	for i := a.heads[p]; i >= 0; i = a.entries[i].next {
		if a.entries[i].item == item {
			if at < a.entries[i].at {
				a.entries[i].at = at
			}
			return
		}
	}
	a.entries = append(a.entries, availEntry{next: a.heads[p], item: item, at: at})
	a.heads[p] = int32(len(a.entries) - 1)
}

// latest returns the maximum availability time over every (processor, item)
// pair in the store — the run's finish time.
func (a *availStore) latest() logp.Time {
	var mx logp.Time
	for i := range a.entries {
		if a.entries[i].at > mx {
			mx = a.entries[i].at
		}
	}
	return mx
}
