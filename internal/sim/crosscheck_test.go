package sim

import (
	"reflect"
	"testing"

	"logpopt/internal/alltoall"
	"logpopt/internal/combine"
	"logpopt/internal/continuous"
	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// recvsOf extracts the sorted receive events of a schedule.
func recvsOf(s *schedule.Schedule) []schedule.Event {
	out := &schedule.Schedule{M: s.M}
	for _, e := range s.Events {
		if e.Op == schedule.OpRecv {
			out.Append(e)
		}
	}
	out.Sort()
	return out.Events
}

// assertSimAgrees replays the schedule's sends on the simulator and checks
// that the derived receptions equal the constructor's claimed receptions —
// the constructor's arrival bookkeeping cross-checked by an independent
// machine implementation.
func assertSimAgrees(t *testing.T, name string, s *schedule.Schedule, origins map[int]schedule.Origin) {
	t.Helper()
	e, rep := Run(s, Strict, origins)
	if len(rep.Violations) != 0 {
		t.Fatalf("%s: sim violations: %v", name, rep.Violations[0])
	}
	got := recvsOf(e.Executed())
	want := recvsOf(s)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: simulated receptions differ from constructed ones (%d vs %d events)",
			name, len(got), len(want))
	}
}

func TestSimAgreesWithConstructors(t *testing.T) {
	// Optimal single-item broadcast, assorted machines.
	for _, m := range []logp.Machine{logp.MustNew(8, 6, 2, 4), logp.Postal(41, 3), logp.MustNew(12, 7, 1, 3)} {
		assertSimAgrees(t, "broadcast "+m.String(), core.BroadcastSchedule(m, 0), core.Origins(0))
	}
	// All-to-all on postal machines (strict receptions).
	for _, p := range []int{5, 9, 17} {
		m := logp.Postal(p, 3)
		assertSimAgrees(t, "alltoall", alltoall.Schedule(m, 2), alltoall.Origins(m, 2))
	}
	// Scatter and gather.
	m := logp.MustNew(9, 6, 2, 4)
	og := make(map[int]schedule.Origin)
	for j := 1; j < m.P; j++ {
		og[j] = schedule.Origin{Proc: 0}
	}
	assertSimAgrees(t, "scatter", alltoall.Scatter(m), og)
	og2 := make(map[int]schedule.Origin)
	for j := 1; j < m.P; j++ {
		og2[j] = schedule.Origin{Proc: j}
	}
	assertSimAgrees(t, "gather", alltoall.Gather(m), og2)
	// Optimal k-item broadcast via block-cyclic schedules (grid and general).
	if _, s, err := kitem.ViaContinuous(3, 8, 10); err == nil {
		assertSimAgrees(t, "kitem grid", s, kitem.Origins(10))
	} else {
		t.Fatal(err)
	}
	if _, s, err := kitem.OptimalGeneral(3, 12, 6); err == nil {
		assertSimAgrees(t, "kitem general", s, kitem.Origins(6))
	} else {
		t.Fatal(err)
	}
	// Continuous broadcast.
	if _, s, err := continuous.SolveAndSchedule(4, 10, 7); err == nil {
		assertSimAgrees(t, "continuous", s, continuous.Origins(7))
	} else {
		t.Fatal(err)
	}
}

func TestSimAgreesWithValueFreeSchedules(t *testing.T) {
	// Value-carrying schedules (reduce, scan) move *computed* values, so the
	// availability origin map does not apply; replay them by injecting every
	// item id at its sender. The reception pattern must still match.
	m := logp.Postal(13, 3)
	red := combine.ReduceSchedule(m, m.P)
	og := make(map[int]schedule.Origin)
	for _, e := range red.Events {
		if e.Op == schedule.OpSend {
			og[e.Item] = schedule.Origin{Proc: e.Proc}
		}
	}
	assertSimAgrees(t, "reduce", red, og)

	scan := combine.ScanSchedule(m, m.P)
	og2 := make(map[int]schedule.Origin)
	for _, e := range scan.Events {
		if e.Op == schedule.OpSend {
			og2[e.Item] = schedule.Origin{Proc: e.Proc}
		}
	}
	assertSimAgrees(t, "scan", scan, og2)
}
