package sim

// flightQueue is the engine's in-flight message store, sharded by destination
// processor for large P: messages land in per-shard binary min-heaps (shard =
// To & mask), and a small top-level heap over the shard minima yields the
// global minimum. Pop order is exactly the single-heap flightBefore order —
// the comparator is total and the destination pins each message to one shard,
// so cross-shard minima never tie on the full key with different shards
// winning (two messages in different shards necessarily differ in To).
//
// The point of sharding is the heap depth: with P ~ 10^6 a broadcast keeps a
// constant fraction of P messages in flight, and every push/pop of a single
// 2^20-element heap walks ~20 cache-missing levels. Sharded, each operation
// walks log(n/shards) levels in a heap small enough to stay cache-resident,
// plus a log(shards) fix-up of the tiny top-level heap.
type flightQueue struct {
	shards []flightHeap
	mask   int
	// top is a binary min-heap of shard indices ordered by flightBefore of
	// the shards' minimum messages; pos[s] is shard s's position in top, -1
	// when the shard is empty (absent from top).
	top  []int32
	pos  []int32
	size int
	peak int // high-water total size since the last reset (watermark input)
}

// shardCountFor picks a power-of-two shard count for a machine with p
// processors: 1 below the sharding threshold (a single heap is already
// cache-resident and the top-level indirection would be pure overhead), then
// roughly one shard per 4096 processors, capped at 256.
func shardCountFor(p int) int {
	if p <= 4096 {
		return 1
	}
	n := 1
	for n < p/4096 && n < 256 {
		n <<= 1
	}
	return n
}

// reset prepares the queue for a machine with p processors, reusing shard
// storage when the shard count is unchanged.
func (q *flightQueue) reset(p int) {
	n := shardCountFor(p)
	if len(q.shards) != n {
		q.shards = make([]flightHeap, n)
		q.top = make([]int32, 0, n)
		q.pos = make([]int32, n)
	} else {
		for i := range q.shards {
			q.shards[i] = q.shards[i][:0]
		}
		q.top = q.top[:0]
	}
	for i := range q.pos {
		q.pos[i] = -1
	}
	q.mask = n - 1
	q.size = 0
	q.peak = 0
}

func (q *flightQueue) len() int { return q.size }

// peek returns the globally minimal in-flight message. It must only be
// called when len() > 0.
func (q *flightQueue) peek() Msg {
	s := q.top[0]
	return q.shards[s][0]
}

func (q *flightQueue) push(m Msg) {
	s := m.To & q.mask
	h := &q.shards[s]
	wasEmpty := len(*h) == 0
	oldMin := Msg{}
	if !wasEmpty {
		oldMin = (*h)[0]
	}
	h.push(m)
	q.size++
	if q.size > q.peak {
		q.peak = q.size
	}
	if wasEmpty {
		q.topInsert(int32(s))
	} else if flightBefore((*h)[0], oldMin) {
		q.topUp(q.pos[s])
	}
}

// pop removes and returns the globally minimal message.
func (q *flightQueue) pop() Msg {
	s := q.top[0]
	h := &q.shards[s]
	m := h.pop()
	q.size--
	if len(*h) == 0 {
		q.topRemoveRoot()
	} else {
		q.topDown(0)
	}
	return m
}

// topBefore orders two shards by their minimum messages.
func (q *flightQueue) topBefore(a, b int32) bool {
	return flightBefore(q.shards[a][0], q.shards[b][0])
}

func (q *flightQueue) topInsert(s int32) {
	q.top = append(q.top, s)
	i := int32(len(q.top) - 1)
	q.pos[s] = i
	q.topUp(i)
}

func (q *flightQueue) topRemoveRoot() {
	root := q.top[0]
	q.pos[root] = -1
	n := len(q.top) - 1
	if n > 0 {
		q.top[0] = q.top[n]
		q.pos[q.top[0]] = 0
	}
	q.top = q.top[:n]
	if n > 1 {
		q.topDown(0)
	}
}

func (q *flightQueue) topUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.topBefore(q.top[i], q.top[parent]) {
			break
		}
		q.topSwap(i, parent)
		i = parent
	}
}

func (q *flightQueue) topDown(i int32) {
	n := int32(len(q.top))
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.topBefore(q.top[l], q.top[min]) {
			min = l
		}
		if r < n && q.topBefore(q.top[r], q.top[min]) {
			min = r
		}
		if min == i {
			return
		}
		q.topSwap(i, min)
		i = min
	}
}

func (q *flightQueue) topSwap(i, j int32) {
	q.top[i], q.top[j] = q.top[j], q.top[i]
	q.pos[q.top[i]] = i
	q.pos[q.top[j]] = j
}

// shrink releases shard storage whose capacity exceeds keep messages total,
// proportionally per shard (the Reset watermark decay calls this so one huge
// run does not pin heap memory for a whole sweep).
func (q *flightQueue) shrink(keep int) {
	if len(q.shards) == 0 {
		return
	}
	per := keep/len(q.shards) + 1
	for i := range q.shards {
		if cap(q.shards[i]) > 4*per {
			q.shards[i] = nil
		}
	}
}
