package sim

import (
	"math/rand"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
)

// TestFlightQueueMatchesSingleHeap is the sharding correctness property: a
// flightQueue over many shards must pop messages in exactly the order a
// single flightHeap would — flightBefore is total and To pins each message
// to one shard, so the merge over shard minima cannot reorder anything.
func TestFlightQueueMatchesSingleHeap(t *testing.T) {
	const p = 1 << 16 // forces 16 shards (shardCountFor threshold is 4096)
	var q flightQueue
	q.reset(p)
	if len(q.shards) < 2 {
		t.Fatalf("P=%d produced %d shards; property test needs a real shard merge", p, len(q.shards))
	}
	var ref flightHeap

	rng := rand.New(rand.NewSource(42))
	randMsg := func() Msg {
		return Msg{
			From:   rng.Intn(p),
			To:     rng.Intn(p),
			Item:   rng.Intn(4),
			Arrive: logp.Time(rng.Intn(64)), // dense range to force ties
			SendAt: logp.Time(rng.Intn(64)),
		}
	}

	// Interleave pushes and pops so the top-level heap exercises insert,
	// remove-root, sift-up and sift-down against partially drained shards.
	const ops = 20000
	for i := 0; i < ops; i++ {
		if q.len() == 0 || rng.Intn(3) != 0 {
			m := randMsg()
			q.push(m)
			ref.push(m)
		} else {
			got, want := q.pop(), ref.pop()
			if got != want {
				t.Fatalf("op %d: sharded pop %+v, single-heap pop %+v", i, got, want)
			}
		}
		if q.len() != len(ref) {
			t.Fatalf("op %d: sharded len %d, single-heap len %d", i, q.len(), len(ref))
		}
		if q.len() > 0 && q.peek() != ref[0] {
			t.Fatalf("op %d: sharded peek %+v, single-heap min %+v", i, q.peek(), ref[0])
		}
	}
	for q.len() > 0 {
		got, want := q.pop(), ref.pop()
		if got != want {
			t.Fatalf("drain: sharded pop %+v, single-heap pop %+v", got, want)
		}
	}
	if len(ref) != 0 {
		t.Fatalf("single heap retained %d messages after sharded queue drained", len(ref))
	}
}

// TestLargePReplayAllocationStability checks the engine's steady state at
// P=1e5: after one warm-up Reset+Replay of an optimal broadcast, further
// replays must not allocate proportionally to P or to the event count.
func TestLargePReplayAllocationStability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 100k-processor schedule")
	}
	const p = 100_000
	m := logp.MustNew(p, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	og := core.Origins(0)
	e := New(m, Strict)
	warm := e.Replay(s, og)
	if len(warm.Violations) != 0 {
		t.Fatalf("broadcast replay not clean: %v", warm.Violations[0])
	}
	if warm.Finish == 0 {
		t.Fatal("replay did nothing")
	}
	allocs := testing.AllocsPerRun(3, func() {
		e.Reset(m, Strict)
		rep := e.Replay(s, og)
		if rep.Finish != warm.Finish {
			t.Fatalf("recycled finish %d, fresh finish %d", rep.Finish, warm.Finish)
		}
	})
	// The 2P-2 events of the replay must reuse the engine's storage; a
	// small constant of bookkeeping allocations is fine, O(P) is not.
	if allocs > 64 {
		t.Fatalf("warm Reset+Replay at P=%d allocates %.0f times per run; storage is not being recycled", p, allocs)
	}
}

// TestResetShrinksAfterHugeRun checks the retain-watermark decay: one huge
// case must not pin its capacity across a subsequent sweep of small cases.
func TestResetShrinksAfterHugeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 50k-processor schedule")
	}
	big := logp.MustNew(50_000, 6, 2, 4)
	bigSched := core.BroadcastSchedule(big, 0)
	small := logp.MustNew(8, 6, 2, 4)
	smallSched := core.BroadcastSchedule(small, 0)
	og := core.Origins(0)

	e := New(big, Strict)
	if rep := e.Replay(bigSched, og); rep.Finish == 0 {
		t.Fatal("big replay did nothing")
	}
	grown := cap(e.executed.Events)
	if grown < len(bigSched.Events) {
		t.Fatalf("executed capacity %d did not grow to the big case's %d events", grown, len(bigSched.Events))
	}

	// The watermark decays by a quarter per Reset; a dozen small cases is
	// far past the point where every big-run capacity is oversized.
	for i := 0; i < 16; i++ {
		e.Reset(small, Strict)
		if rep := e.Replay(smallSched, og); len(rep.Violations) != 0 {
			t.Fatalf("small replay %d not clean: %v", i, rep.Violations[0])
		}
	}
	e.Reset(small, Strict)
	if c := cap(e.executed.Events); c >= grown {
		t.Errorf("executed capacity still %d after the sweep (big run grew it to %d)", c, grown)
	}
	if c := cap(e.procs); c >= big.P {
		t.Errorf("proc slab capacity still %d after the sweep (big run had P=%d)", c, big.P)
	}
	if c := cap(e.avail.entries); c > 4096 {
		t.Errorf("availability slab capacity still %d after the sweep", c)
	}
	total := 0
	for i := range e.inflight.shards {
		total += cap(e.inflight.shards[i])
	}
	if total > 4096 {
		t.Errorf("flight shards retain %d total capacity after the sweep", total)
	}
	// And the shrunken engine still works.
	if rep := e.Replay(smallSched, og); len(rep.Violations) != 0 || rep.Finish == 0 {
		t.Fatalf("engine broken after shrink: %+v", rep)
	}
}
