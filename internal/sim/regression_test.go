package sim

import (
	"testing"

	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// The buffered drain used to pick among same-instant arrivals with a
// comparator keyed only on (Arrive, Item), so two copies of one item from
// different senders drained in buffer-insertion order instead of by sender.
// The drain must use the flight heap's full comparator: ties on arrival time
// and item resolve by the lower sender id.
func TestBufferedDrainTieBreakBySender(t *testing.T) {
	m := logp.Postal(3, 2)
	e := New(m, Buffered)
	// Two same-instant arrivals of the same item, queued out of sender
	// order, exactly as a flight-heap pop pattern could leave them.
	e.procs[0].buffer = []Msg{
		{From: 2, To: 0, Item: 5, SendAt: 0, Arrive: 2},
		{From: 1, To: 0, Item: 5, SendAt: 0, Arrive: 2},
	}
	e.now = 2
	e.processArrivals()
	evs := e.executed.Events
	if len(evs) != 1 || evs[0].Op != schedule.OpRecv {
		t.Fatalf("one drain step produced %v", evs)
	}
	if evs[0].Peer != 1 {
		t.Fatalf("drained sender %d first, want 1 (lower sender id wins ties)", evs[0].Peer)
	}
}

// Report.Violations and the Violations() accessor used to alias the
// engine-internal slice, which Reset truncates and Replay reuses — so a
// report taken before a Reset was silently rewritten by the next replay.
func TestReportViolationsSurviveReset(t *testing.T) {
	m := logp.Postal(2, 2)
	bad1 := &schedule.Schedule{M: m}
	bad1.Send(0, 0, 0, 0) // self-send
	bad2 := &schedule.Schedule{M: m}
	bad2.Send(0, 0, 0, 7) // out of range: a different violation message
	og := map[int]schedule.Origin{0: {Proc: 0}}

	e := New(m, Strict)
	rep1 := e.Replay(bad1, og)
	if len(rep1.Violations) != 1 {
		t.Fatalf("replay of bad1: %v", rep1.Violations)
	}
	msg := rep1.Violations[0].Msg
	vs := e.Violations()

	e.Reset(m, Strict)
	e.Replay(bad2, og)

	if rep1.Violations[0].Msg != msg {
		t.Fatalf("earlier Report rewritten by engine reuse: %q", rep1.Violations[0].Msg)
	}
	if vs[0].Msg != msg {
		t.Fatalf("Violations() copy rewritten by engine reuse: %q", vs[0].Msg)
	}
}

// The buffered-drain safety net used to cap the clock at a per-machine
// constant past the last arrival, truncating long drains: a queue that
// builds up at one receiver needs time proportional to the number of queued
// messages, not to P*g. All 60 receptions must execute.
func TestBufferedDrainNotTruncated(t *testing.T) {
	m := logp.Postal(3, 9)
	s := &schedule.Schedule{M: m}
	for i := 0; i < 30; i++ {
		s.Send(0, logp.Time(i), 0, 2)
		s.Send(1, logp.Time(i), 1, 2)
	}
	og := map[int]schedule.Origin{0: {Proc: 0}, 1: {Proc: 1}}
	e, rep := Run(s, Buffered, og)
	recvs := 0
	for _, ev := range e.Executed().Events {
		if ev.Op == schedule.OpRecv {
			recvs++
		}
	}
	if recvs != 60 {
		t.Fatalf("%d receptions executed, want 60 (drain truncated)", recvs)
	}
	// Two arrivals per step at one receiver necessarily oversubscribes the
	// inbound capacity — that is what makes the queue grow — but nothing
	// else may be flagged.
	for _, v := range rep.Violations {
		if v.Kind != schedule.VCapacity {
			t.Fatalf("unexpected violation: %v", v)
		}
	}
}

// Sends scheduled before time zero can never execute; they used to be
// silently skipped, now they are recorded.
func TestNegativeTimeSendRecorded(t *testing.T) {
	m := logp.Postal(2, 3)
	s := &schedule.Schedule{M: m}
	s.Send(0, -2, 0, 1)
	e, rep := Run(s, Strict, map[int]schedule.Origin{0: {Proc: 0}})
	if len(rep.Violations) != 1 {
		t.Fatalf("violations %v, want exactly one", rep.Violations)
	}
	if len(e.Executed().Events) != 0 {
		t.Fatal("a negative-time send must not execute")
	}
}

// The simulator enforces the LogP capacity bound ceil(L/g) like the
// validator does: more than Capacity() messages in transit toward one
// processor records a violation (the messages still flow).
func TestCapacityViolationRecorded(t *testing.T) {
	m := logp.Postal(6, 4) // capacity ceil(4/1) = 4
	s := &schedule.Schedule{M: m}
	og := make(map[int]schedule.Origin)
	for i := 0; i < 5; i++ {
		s.Send(i, 0, i, 5)
		og[i] = schedule.Origin{Proc: i}
	}
	_, rep := Run(s, Buffered, og)
	found := false
	for _, v := range rep.Violations {
		if v.Kind == schedule.VCapacity {
			found = true
		} else {
			t.Errorf("unexpected violation: %v", v)
		}
	}
	if !found {
		t.Fatalf("5 concurrent messages to one proc on capacity-4 machine recorded no violation: %v", rep.Violations)
	}
}
