package sim

import (
	"reflect"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/kitem"
	"logpopt/internal/logp"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/schedule"
)

// TestResetReplayEquivalence replays a batch of schedules twice — fresh
// engines via Run, and one recycled engine via Reset + Replay — and requires
// identical reports and executed schedules, in both reception modes.
func TestResetReplayEquivalence(t *testing.T) {
	type job struct {
		name    string
		mode    Mode
		build   func() (*scheduleWithOrigins, error)
		nonzero bool
	}
	broadcast := func(m logp.Machine) func() (*scheduleWithOrigins, error) {
		return func() (*scheduleWithOrigins, error) {
			return &scheduleWithOrigins{core.BroadcastSchedule(m, 0), core.Origins(0)}, nil
		}
	}
	greedy := func(l logp.Time, p, k int, mode kitem.Mode) func() (*scheduleWithOrigins, error) {
		return func() (*scheduleWithOrigins, error) {
			res, err := kitem.Greedy(l, p, k, mode)
			if err != nil {
				return nil, err
			}
			return &scheduleWithOrigins{res.Schedule, kitem.Origins(k)}, nil
		}
	}
	jobs := []job{
		{"broadcast-logp", Strict, broadcast(logp.MustNew(8, 6, 2, 4)), true},
		{"broadcast-postal", Strict, broadcast(logp.Postal(41, 3)), true},
		{"kitem-strict", Strict, greedy(3, 10, 6, kitem.Strict), true},
		{"kitem-buffered", Buffered, greedy(3, 10, 6, kitem.Buffered), true},
	}
	var recycled *Engine
	for _, j := range jobs {
		sw, err := j.build()
		if err != nil {
			t.Fatalf("%s: %v", j.name, err)
		}
		eFresh, repFresh := Run(sw.s, j.mode, sw.origins)
		if recycled == nil {
			recycled = New(sw.s.M, j.mode)
		} else {
			recycled.Reset(sw.s.M, j.mode)
		}
		repRe := recycled.Replay(sw.s, sw.origins)
		if repFresh.Finish != repRe.Finish || repFresh.MaxBuffer != repRe.MaxBuffer ||
			len(repFresh.Violations) != len(repRe.Violations) {
			t.Errorf("%s: fresh report %+v, recycled report %+v", j.name, repFresh, repRe)
		}
		if j.nonzero && repFresh.Finish == 0 {
			t.Errorf("%s: finish 0, schedule did nothing", j.name)
		}
		exFresh, exRe := eFresh.Executed(), recycled.Executed()
		if !reflect.DeepEqual(exFresh.Events, exRe.Events) {
			t.Errorf("%s: executed schedules differ (fresh %d events, recycled %d events)",
				j.name, len(exFresh.Events), len(exRe.Events))
		}
	}
}

type scheduleWithOrigins struct {
	s       *schedule.Schedule
	origins map[int]schedule.Origin
}

// BenchmarkSimReplayFresh replays an optimal broadcast schedule on a fresh
// engine every iteration (the old Run path).
func BenchmarkSimReplayFresh(b *testing.B) {
	m := logp.MustNew(32, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	og := core.Origins(0)
	events0 := mEvents.Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep := Run(s, Strict, og)
		if len(rep.Violations) != 0 {
			b.Fatal(rep.Violations)
		}
	}
	b.ReportMetric(float64(mEvents.Value()-events0)/float64(b.N), "events/op")
}

// BenchmarkSimReplayReuse replays the same schedule on one recycled engine
// (Reset + Replay), the allocation-free steady state.
func BenchmarkSimReplayReuse(b *testing.B) {
	m := logp.MustNew(32, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	og := core.Origins(0)
	e := New(m, Strict)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(m, Strict)
		rep := e.Replay(s, og)
		if len(rep.Violations) != 0 {
			b.Fatal(rep.Violations)
		}
	}
}

// BenchmarkSimReplayTimeseriesOff is the disabled-collector overhead gate:
// the engine with TS == nil must run within noise of an uninstrumented
// replay (the budget is < 2% — the hot loop pays one nil check per cycle).
// Compare against BenchmarkSimReplayReuse in BENCH_3.json.
func BenchmarkSimReplayTimeseriesOff(b *testing.B) {
	m := logp.MustNew(256, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	og := core.Origins(0)
	e := New(m, Strict)
	e.TS = nil
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(m, Strict)
		rep := e.Replay(s, og)
		if len(rep.Violations) != 0 {
			b.Fatal(rep.Violations)
		}
	}
}

// BenchmarkSimReplayTimeseriesOn measures the collector's enabled cost with
// per-cycle sampling — the worst case; windowed sampling is strictly
// cheaper.
func BenchmarkSimReplayTimeseriesOn(b *testing.B) {
	m := logp.MustNew(256, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	og := core.Origins(0)
	e := New(m, Strict)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TS = timeseries.New(64)
		e.Reset(m, Strict)
		rep := e.Replay(s, og)
		if len(rep.Violations) != 0 {
			b.Fatal(rep.Violations)
		}
	}
}
