package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs"
)

// replayTrace replays the P-processor broadcast with smp attached (nil: no
// sampling) and returns the tracer plus its serialized JSON.
func replayTrace(t *testing.T, p int, smp *obs.Sampler) (*obs.Tracer, []byte) {
	t.Helper()
	m := logp.MustNew(p, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	tr := obs.NewTracer()
	if smp != nil {
		tr.SetSampler(DefaultTracePID, smp)
	}
	e := New(m, Strict)
	e.Tracer = tr
	e.Replay(s, core.Origins(0))
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return tr, b.Bytes()
}

// spanSet extracts the (name, tid, ts) triples of complete events on tid
// from a trace document.
func spanSet(t *testing.T, doc []byte, tid int) map[string]bool {
	t.Helper()
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool)
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" && e.Tid == tid {
			set[e.Name+"@"+string(rune(e.TS))] = true
		}
	}
	return set
}

// TestReplaySampledRateOneIdentical: a rate-1 sampler through a full
// simulated replay is byte-identical to no sampler at all.
func TestReplaySampledRateOneIdentical(t *testing.T) {
	_, plain := replayTrace(t, 128, nil)
	_, sampled := replayTrace(t, 128, obs.NewSampler(1, 1))
	if !bytes.Equal(plain, sampled) {
		t.Fatalf("rate-1 sampled replay differs from unsampled (%d vs %d bytes)", len(sampled), len(plain))
	}
}

// TestReplaySampledBounded: at a large P, an aggressive sampler keeps at
// most a few percent of the events while preserving rank 0's complete span
// set, and the same configuration reproduces the identical trace.
func TestReplaySampledBounded(t *testing.T) {
	const p = 8192
	plainTr, plain := replayTrace(t, p, nil)
	smp := func() *obs.Sampler { return obs.NewSampler(256, 1, p) }
	sampledTr, sampled := replayTrace(t, p, smp())

	total := plainTr.Len()
	kept := sampledTr.Len()
	if kept+int(sampledTr.Dropped()) != total {
		t.Fatalf("kept %d + dropped %d != total %d", kept, sampledTr.Dropped(), total)
	}
	if ratio := float64(kept) / float64(total); ratio > 0.02 {
		t.Fatalf("sampling kept %.1f%% of %d events, want <= 2%%", 100*ratio, total)
	}
	want := spanSet(t, plain, 0)
	got := spanSet(t, sampled, 0)
	if len(want) == 0 {
		t.Fatal("rank 0 emitted no spans in the unsampled trace")
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("sampled trace lost a rank-0 span %q", k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("rank-0 span set changed: %d vs %d", len(got), len(want))
	}

	_, again := replayTrace(t, p, smp())
	if !bytes.Equal(sampled, again) {
		t.Fatal("sampled replay is not deterministic")
	}
}
