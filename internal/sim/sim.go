// Package sim provides a deterministic discrete-event simulator of a LogP
// machine. It executes communication schedules (or is driven step-by-step by
// an online scheduler), routing every message with latency L, charging the
// overhead o at both ports, enforcing the gap g between consecutive port
// operations, and enforcing the network capacity bound.
//
// The simulator supports two reception disciplines:
//
//   - Strict: a message must be received the instant it arrives; an arrival
//     at a busy port is a violation. This is the plain LogP/postal model in
//     which the paper's optimal schedules are stated.
//   - Buffered: arrivals enter a bounded input buffer and the processor
//     receives at most one buffered item per free receive slot. This is the
//     modified model of Section 3.5 (Theorem 3.8), under which the
//     single-sending lower bound for k-item broadcast becomes achievable.
//     The paper notes a buffer of size 2 suffices; the simulator reports the
//     high-water mark so that claim can be checked.
package sim

import (
	"fmt"
	"sort"

	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/obs/timeseries"
	"logpopt/internal/schedule"
)

// Package-level metric handles (looked up once; see the obs overhead
// discipline). Hot paths accumulate into plain Engine fields and Replay
// flushes one atomic add per counter per run.
var (
	mReplays    = obs.Default.Counter("sim.replays")
	mEvents     = obs.Default.Counter("sim.events.processed")
	mSends      = obs.Default.Counter("sim.sends")
	mRecvs      = obs.Default.Counter("sim.recvs")
	mCapChecks  = obs.Default.Counter("sim.capacity.checks")
	mViolations = obs.Default.Counter("sim.violations")
	// Port-wait distribution: cycles a message sat in a Buffered-mode input
	// buffer between arrival and reception. Observed only for positive waits
	// — strict-mode receptions and immediate drains stay off the histogram's
	// mutex, keeping the hot path to plain counter tallies.
	mRecvWait = obs.Default.Histogram("sim.recv.wait.cycles")
	// Live in-flight heap size, refreshed on the amortized event flush so a
	// scraper polling /metrics mid-replay sees the drain progressing.
	gInflight = obs.Default.Gauge("sim.inflight")
)

// liveFlushEvery is the amortized flush threshold: every this many drained
// events, the run-local tallies are pushed into the process-wide counters so
// live observers (the /metrics and /timeseries endpoints) see a long replay
// progress instead of one end-of-run step. Power of two; the hot path pays
// one compare per event.
const liveFlushEvery = 8192

// Mode selects the reception discipline.
type Mode int

// Reception disciplines.
const (
	Strict Mode = iota
	Buffered
)

// Msg is a message in flight or in a buffer.
type Msg struct {
	From, To, Item int
	SendAt         logp.Time // time the send began
	Arrive         logp.Time // SendAt + o + L
}

// procState tracks one processor's ports and holdings. Item availability
// lives outside the struct, in the engine's slab-backed availStore, so a
// million-processor engine allocates no per-processor maps.
type procState struct {
	lastSendStart logp.Time // start of most recent send; -inf if none
	lastRecvStart logp.Time
	busyUntil     logp.Time // end of current overhead/compute interval
	buffer        []Msg     // arrived, not yet received (Buffered mode)
	maxBuffer     int
	// In-network interval end times (sendAt+o+L) of messages currently in
	// transit from / to this processor, for the capacity bound ceil(L/g).
	// Sends happen in nondecreasing time order, so both are sorted queues.
	outEnds []logp.Time
	inEnds  []logp.Time
}

// flightHeap is a binary min-heap of in-flight messages ordered by arrival
// time, then deterministic tie-break. It is hand-rolled rather than built on
// container/heap so pushes do not box every Msg into an interface value —
// Send is on the per-message hot path of every replay.
type flightHeap []Msg

func flightBefore(a, b Msg) bool {
	if a.Arrive != b.Arrive {
		return a.Arrive < b.Arrive
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.Item != b.Item {
		return a.Item < b.Item
	}
	return a.From < b.From
}

func (h *flightHeap) push(m Msg) {
	*h = append(*h, m)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !flightBefore(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *flightHeap) pop() Msg {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && flightBefore(s[l], s[min]) {
			min = l
		}
		if r < n && flightBefore(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Engine is a running LogP machine. Create one with New, inject origin items,
// then either replay a schedule with Run or drive it interactively:
// repeatedly TickTo / Send. A finished engine can be recycled for another
// run with Reset, which reuses every internal allocation (the sharded
// flight queue, the availability slab, per-processor buffers, and
// executed-event storage), bounded by decayed retain watermarks so a
// one-off huge case does not pin memory for the rest of a sweep.
type Engine struct {
	M         logp.Machine
	Mode      Mode
	BufferCap int // max buffered arrivals per proc in Buffered mode; 0 = unlimited

	// Tracer, when non-nil, receives a flight recorder of the run: one span
	// per port overhead (per-processor busy tracks), instants for
	// violations, and counters for the flight-heap size and total buffered
	// queue depth. Timestamps are LogP cycles. TracePID selects the trace
	// process id (defaults to 1); set distinct pids to overlay several
	// engines in one trace. Both survive Reset, like BufferCap.
	Tracer   *obs.Tracer
	TracePID int

	// TS, when non-nil, receives a simulated-time series of the run: the
	// engine registers probes for its clock, in-flight heap size, drained
	// events, buffered depth, and violation count, and samples them once per
	// configured window of virtual cycles (Collector.SetWindow; every cycle
	// when unset). Probes read engine state without synchronization, which is
	// safe because the engine itself drives the sampling from its tick loop.
	// Like Tracer, TS survives Reset.
	TS *timeseries.Collector

	now        logp.Time
	procs      []procState
	inflight   flightQueue
	avail      availStore
	executed   schedule.Schedule
	violations []schedule.Violation
	sendBuf    []schedule.Event // Replay scratch, reused across runs

	// Decayed high-water marks feeding the Reset shrink policy (see Reset).
	hwProcs, hwInflight, hwAvail, hwExecuted, hwSendBuf, hwViol watermark

	// Run-local metric tallies, flushed to obs.Default by Replay (with an
	// amortized live flush every liveFlushEvery drained events; flushedEvents
	// tracks how much of nEvents has already been pushed).
	nEvents, nCapChecks int64
	flushedEvents       int64
	bufferedNow         int // total buffered messages across procs (Buffered)
}

// watermark is a decayed high-water mark: each Reset folds in the finished
// run's usage and decays the retained value by a quarter, so a one-off huge
// case stops dominating after a few resets and its memory can be released.
type watermark int

// update notes the finished run's usage and applies one decay step,
// returning the retained watermark.
func (w *watermark) update(used int) int {
	*w -= *w / 4
	if watermark(used) > *w {
		*w = watermark(used)
	}
	return int(*w)
}

// oversized reports whether a capacity has grown pathologically past what
// the watermark says future runs need: beyond a floor (small slices are
// never worth freeing) and more than 4x the retained need.
func oversized(capacity, keep, floor int) bool {
	return capacity > floor && capacity > 4*keep
}

const minusInf = logp.Time(-1) << 40

// New returns an engine at time 0 with no items anywhere.
func New(m logp.Machine, mode Mode) *Engine {
	e := &Engine{}
	e.Reset(m, mode)
	return e
}

// Reset reinitializes the engine for machine m in the given mode, reusing
// the allocations of any previous run: the per-processor states (including
// their buffers), the sharded in-flight queue, the availability slab, and
// the executed-event slice all keep their capacity. BufferCap is preserved.
//
// Reuse is bounded by decayed retain watermarks: each Reset folds the
// finished run's usage into a per-resource high-water mark, decays it, and
// frees any allocation that has grown to more than 4x the retained need —
// so a single P=10^6 case in the middle of a small-P sweep does not pin
// hundreds of megabytes for the rest of the process.
func (e *Engine) Reset(m logp.Machine, mode Mode) {
	hwExec := e.hwExecuted.update(len(e.executed.Events))
	hwSend := e.hwSendBuf.update(len(e.sendBuf))
	hwViol := e.hwViol.update(len(e.violations))
	hwFlight := e.hwInflight.update(e.inflight.peak)
	hwAvail := e.hwAvail.update(len(e.avail.entries))
	hwProcs := e.hwProcs.update(m.P)

	e.M, e.Mode = m, mode
	e.now = 0
	e.executed.M = m
	if oversized(cap(e.executed.Events), hwExec, 1024) {
		e.executed.Events = nil
	} else {
		e.executed.Events = e.executed.Events[:0]
	}
	if oversized(cap(e.sendBuf), hwSend, 1024) {
		e.sendBuf = nil
	} else {
		e.sendBuf = e.sendBuf[:0]
	}
	if oversized(cap(e.violations), hwViol, 64) {
		e.violations = nil
	} else {
		e.violations = e.violations[:0]
	}
	e.inflight.reset(m.P)
	e.inflight.shrink(hwFlight)
	if oversized(cap(e.avail.entries), hwAvail, 1024) {
		e.avail.entries = nil
	}
	e.avail.reset(m.P)
	e.nEvents, e.nCapChecks, e.bufferedNow = 0, 0, 0
	e.flushedEvents = 0
	if cap(e.procs) < m.P || oversized(cap(e.procs), max(m.P, hwProcs), 1024) {
		e.procs = make([]procState, m.P)
	} else {
		e.procs = e.procs[:m.P]
	}
	for i := range e.procs {
		ps := &e.procs[i]
		ps.lastSendStart = minusInf
		ps.lastRecvStart = minusInf
		ps.busyUntil = minusInf
		if oversized(cap(ps.buffer), ps.maxBuffer, 64) {
			ps.buffer = nil
		} else {
			ps.buffer = ps.buffer[:0]
		}
		ps.maxBuffer = 0
		ps.outEnds = shrinkEnds(ps.outEnds)
		ps.inEnds = shrinkEnds(ps.inEnds)
	}
}

// shrinkEnds truncates a capacity-tracking queue for reuse, releasing it
// when it has grown far past the handful of in-transit ends ceil(L/g)
// usually bounds it to.
func shrinkEnds(ends []logp.Time) []logp.Time {
	if oversized(cap(ends), len(ends), 128) {
		return nil
	}
	return ends[:0]
}

// Now returns the current simulation time.
func (e *Engine) Now() logp.Time { return e.now }

// DefaultTracePID is the trace process id an engine uses when TracePID is
// unset. Exported so callers can address the engine's tracks — e.g. to
// attach an obs.Sampler — without setting an explicit pid first.
const DefaultTracePID = 1

// tracePID returns the pid used for this engine's trace tracks.
func (e *Engine) tracePID() int {
	if e.TracePID != 0 {
		return e.TracePID
	}
	return DefaultTracePID
}

// violate records a violation and, when tracing, marks it as an instant on
// the offending processor's track (or the engine track P when proc < 0).
func (e *Engine) violate(proc int, v schedule.Violation) {
	e.violations = append(e.violations, v)
	if e.Tracer != nil {
		tid := proc
		if tid < 0 || tid >= e.M.P {
			tid = e.M.P
		}
		e.Tracer.Instant(e.tracePID(), tid, "violation", int64(e.now),
			obs.A("kind", string(v.Kind)), obs.A("msg", v.Msg))
	}
}

// Inject makes item available at processor p at time at (an origin, e.g. the
// broadcast source's datum, or a continuously generated stream item).
func (e *Engine) Inject(p, item int, at logp.Time) {
	e.avail.setMin(p, item, at)
}

// Has reports whether item is available at p at the current time.
func (e *Engine) Has(p, item int) bool {
	t, ok := e.avail.get(p, item)
	return ok && t <= e.now
}

// AvailableAt returns the time item became (or becomes) available at p, and
// whether it is known at all.
func (e *Engine) AvailableAt(p, item int) (logp.Time, bool) {
	return e.avail.get(p, item)
}

// CanSend reports whether p's send port is free at the current time: the gap
// since the previous send has elapsed and the processor is not inside an
// overhead interval.
func (e *Engine) CanSend(p int) bool {
	ps := &e.procs[p]
	return e.now >= ps.lastSendStart+e.M.G && e.now >= ps.busyUntil
}

// canRecvAt reports whether p can begin a reception at time t.
func (e *Engine) canRecvAt(p int, t logp.Time) bool {
	ps := &e.procs[p]
	return t >= ps.lastRecvStart+e.M.G && t >= ps.busyUntil
}

// Send transmits item from -> to starting at the current time. It returns an
// error (and does nothing) if the sender does not hold the item, the port is
// not free, or the destination is out of range.
func (e *Engine) Send(from, item, to int) error {
	if to < 0 || to >= e.M.P || from < 0 || from >= e.M.P {
		return fmt.Errorf("sim: send %d->%d out of range (P=%d)", from, to, e.M.P)
	}
	if from == to {
		return fmt.Errorf("sim: proc %d sending item %d to itself", from, item)
	}
	if !e.Has(from, item) {
		return fmt.Errorf("sim: proc %d does not hold item %d at time %d", from, item, e.now)
	}
	if !e.CanSend(from) {
		return fmt.Errorf("sim: proc %d send port busy at time %d", from, e.now)
	}
	ps := &e.procs[from]
	ps.lastSendStart = e.now
	if end := e.now + e.M.O; end > ps.busyUntil {
		ps.busyUntil = end
	}
	e.checkCapacity(from, to)
	msg := Msg{From: from, To: to, Item: item, SendAt: e.now, Arrive: e.now + e.M.O + e.M.L}
	e.inflight.push(msg)
	e.executed.Send(from, e.now, item, to)
	if e.Tracer != nil {
		pid := e.tracePID()
		e.Tracer.Span(pid, from, "send", int64(e.now), int64(e.M.O),
			obs.A("item", item), obs.A("to", to))
		e.Tracer.Counter(pid, "inflight", int64(e.now), int64(e.inflight.len()))
	}
	return nil
}

// checkCapacity enforces the network capacity bound ceil(L/g): a message sent
// now occupies the network during (now+o, now+o+L]; no more than Capacity()
// messages may be in transit from one processor, or to one processor, at any
// instant. Violations are recorded (the message still flows) so the run stays
// comparable with the schedule validator's post-hoc sweep.
func (e *Engine) checkCapacity(from, to int) {
	capN := e.M.Capacity()
	start := e.now + e.M.O
	end := start + e.M.L
	ps, qs := &e.procs[from], &e.procs[to]
	ps.outEnds = pruneEnds(ps.outEnds, start)
	qs.inEnds = pruneEnds(qs.inEnds, start)
	e.nCapChecks++
	if len(ps.outEnds)+1 > capN {
		e.violate(from, schedule.Violation{
			Kind: schedule.VCapacity,
			Msg: fmt.Sprintf("sim: %d messages in transit from proc %d at time %d (capacity %d)",
				len(ps.outEnds)+1, from, start, capN),
		})
	}
	if len(qs.inEnds)+1 > capN {
		e.violate(to, schedule.Violation{
			Kind: schedule.VCapacity,
			Msg: fmt.Sprintf("sim: %d messages in transit to proc %d at time %d (capacity %d)",
				len(qs.inEnds)+1, to, start, capN),
		})
	}
	ps.outEnds = append(ps.outEnds, end)
	qs.inEnds = append(qs.inEnds, end)
}

// pruneEnds drops leading interval ends that are at or before s. Ends are
// appended in nondecreasing order, so the expired prefix is contiguous.
func pruneEnds(ends []logp.Time, s logp.Time) []logp.Time {
	i := 0
	for i < len(ends) && ends[i] <= s {
		i++
	}
	if i > 0 {
		ends = append(ends[:0], ends[i:]...)
	}
	return ends
}

// TickTo advances simulation time to t, processing all arrivals and (in
// Buffered mode) buffer drains with arrival/availability bookkeeping.
func (e *Engine) TickTo(t logp.Time) {
	for e.now < t {
		e.now++
		e.processArrivals()
		if e.TS != nil {
			e.TS.MaybeSample(int64(e.now))
		}
	}
}

// Tick advances one time step.
func (e *Engine) Tick() { e.TickTo(e.now + 1) }

// processArrivals handles every message arriving at the current instant and,
// in Buffered mode, lets each processor receive one buffered message if its
// receive port is free.
func (e *Engine) processArrivals() {
	for e.inflight.len() > 0 && e.inflight.peek().Arrive <= e.now {
		msg := e.inflight.pop()
		e.nEvents++
		if e.nEvents-e.flushedEvents >= liveFlushEvery {
			mEvents.Add(e.nEvents - e.flushedEvents)
			e.flushedEvents = e.nEvents
			gInflight.Set(int64(e.inflight.len()))
		}
		ps := &e.procs[msg.To]
		switch e.Mode {
		case Strict:
			if !e.canRecvAt(msg.To, msg.Arrive) {
				e.violate(msg.To, schedule.Violation{
					Kind: schedule.VGap,
					Msg: fmt.Sprintf("sim: proc %d receive port busy for item %d arriving at %d",
						msg.To, msg.Item, msg.Arrive),
				})
				// Receive anyway so the run can continue and report more.
			}
			e.receive(msg, msg.Arrive)
		case Buffered:
			ps.buffer = append(ps.buffer, msg)
			if len(ps.buffer) > ps.maxBuffer {
				ps.maxBuffer = len(ps.buffer)
			}
			e.bufferedNow++
			if e.Tracer != nil {
				pid := e.tracePID()
				e.Tracer.Counter(pid, "inflight", int64(e.now), int64(e.inflight.len()))
				e.Tracer.Counter(pid, "buffered", int64(e.now), int64(e.bufferedNow))
			}
			if e.BufferCap > 0 && len(ps.buffer) > e.BufferCap {
				e.violate(msg.To, schedule.Violation{
					Kind: schedule.VCapacity,
					Msg: fmt.Sprintf("sim: proc %d buffer exceeds cap %d at time %d",
						msg.To, e.BufferCap, e.now),
				})
			}
		}
	}
	if e.Mode == Buffered {
		for p := range e.procs {
			ps := &e.procs[p]
			if len(ps.buffer) == 0 || !e.canRecvAt(p, e.now) {
				continue
			}
			// Receive the earliest-arrived message not yet held; duplicates
			// (already-held items) are received too — schedules decide what
			// they send; the engine just models the machine. The drain order
			// uses the same total comparator as the flight heap (flightBefore)
			// so ties on (Arrive, Item) resolve by sender, never by buffer
			// position.
			best := 0
			for i := 1; i < len(ps.buffer); i++ {
				if flightBefore(ps.buffer[i], ps.buffer[best]) {
					best = i
				}
			}
			msg := ps.buffer[best]
			ps.buffer = append(ps.buffer[:best], ps.buffer[best+1:]...)
			e.bufferedNow--
			if e.Tracer != nil {
				e.Tracer.Counter(e.tracePID(), "buffered", int64(e.now), int64(e.bufferedNow))
			}
			e.receive(msg, e.now)
		}
	}
}

// receive performs the reception of msg beginning at time t.
func (e *Engine) receive(msg Msg, t logp.Time) {
	ps := &e.procs[msg.To]
	ps.lastRecvStart = t
	if end := t + e.M.O; end > ps.busyUntil {
		ps.busyUntil = end
	}
	e.avail.setMin(msg.To, msg.Item, t+e.M.O)
	e.executed.Recv(msg.To, t, msg.Item, msg.From)
	if wait := t - msg.Arrive; wait > 0 {
		mRecvWait.Observe(int64(wait))
	}
	if e.Tracer != nil {
		pid := e.tracePID()
		e.Tracer.Span(pid, msg.To, "recv", int64(t), int64(e.M.O),
			obs.A("item", msg.Item), obs.A("from", msg.From),
			obs.A("waited", int64(t-msg.Arrive)))
		e.Tracer.Counter(pid, "inflight", int64(t), int64(e.inflight.len()))
	}
}

// Drain advances time until no messages are in flight or buffered, up to the
// given horizon; it returns the time of quiescence (or the horizon).
func (e *Engine) Drain(horizon logp.Time) logp.Time {
	for e.now < horizon {
		if e.inflight.len() == 0 && !e.anyBuffered() {
			return e.now
		}
		e.Tick()
	}
	return e.now
}

func (e *Engine) anyBuffered() bool {
	for i := range e.procs {
		if len(e.procs[i].buffer) > 0 {
			return true
		}
	}
	return false
}

// Violations returns a copy of the violations recorded so far. The copy is
// the caller's: recycling the engine with Reset (which truncates and reuses
// the internal slice) cannot corrupt it.
func (e *Engine) Violations() []schedule.Violation {
	return append([]schedule.Violation(nil), e.violations...)
}

// Executed returns a copy of the executed schedule (all sends and the recvs
// as they actually happened).
func (e *Engine) Executed() *schedule.Schedule {
	s := &schedule.Schedule{M: e.M, Events: append([]schedule.Event(nil), e.executed.Events...)}
	s.Sort()
	return s
}

// MaxBuffer returns the largest input-buffer occupancy observed at any
// processor (0 in Strict mode).
func (e *Engine) MaxBuffer() int {
	mx := 0
	for i := range e.procs {
		if e.procs[i].maxBuffer > mx {
			mx = e.procs[i].maxBuffer
		}
	}
	return mx
}

// ItemCompletion returns, for the given item, the latest availability time
// across all processors in procs (or all processors if procs is nil), and
// whether every one of them has the item.
func (e *Engine) ItemCompletion(item int, procs []int) (logp.Time, bool) {
	if procs == nil {
		procs = make([]int, e.M.P)
		for i := range procs {
			procs[i] = i
		}
	}
	var mx logp.Time
	for _, p := range procs {
		t, ok := e.avail.get(p, item)
		if !ok {
			return 0, false
		}
		if t > mx {
			mx = t
		}
	}
	return mx, true
}

// Report summarizes a completed run.
type Report struct {
	Finish     logp.Time // time the last reception's availability lands
	MaxBuffer  int
	Violations []schedule.Violation
}

// Run replays the send events of a schedule on a fresh engine in the given
// mode. Origin items must be supplied (item -> origin). The recv events of
// the input schedule are ignored — the engine derives receptions from the
// machine's rules — so comparing the executed schedule against the input's
// recv events is a way to check a scheduler's own arrival bookkeeping.
//
// Callers replaying many schedules should allocate one Engine and use
// Reset + Replay, which reuses every internal allocation.
func Run(s *schedule.Schedule, mode Mode, origins map[int]schedule.Origin) (*Engine, Report) {
	e := New(s.M, mode)
	return e, e.Replay(s, origins)
}

// Replay replays the send events of s on the engine, which must have been
// freshly created (New) or recycled (Reset) for s.M. See Run for semantics.
// Sends are ordered by a full deterministic key — time, then sender, then
// item, then destination — so the replay never depends on the input event
// ordering.
func (e *Engine) Replay(s *schedule.Schedule, origins map[int]schedule.Origin) Report {
	if e.TS != nil {
		e.registerProbes()
	}
	if e.Tracer != nil {
		pid := e.tracePID()
		mode := "strict"
		if e.Mode == Buffered {
			mode = "buffered"
		}
		e.Tracer.NameProcess(pid, fmt.Sprintf("sim-%s %v", mode, e.M))
		for p := 0; p < e.M.P; p++ {
			e.Tracer.NameThread(pid, p, fmt.Sprintf("P%d", p))
		}
		e.Tracer.NameThread(pid, e.M.P, "engine")
	}
	for item, og := range origins {
		e.Inject(og.Proc, item, og.Time)
	}
	sends := e.sendBuf[:0]
	var horizon logp.Time
	for _, ev := range s.Events {
		if ev.Op != schedule.OpSend {
			continue
		}
		if ev.Time < 0 {
			// The clock starts at 0; a send before then can never execute.
			// Record it instead of silently spinning past it.
			e.violate(ev.Proc, schedule.Violation{
				Kind: "replay",
				Msg: fmt.Sprintf("sim: proc %d send of item %d at negative time %d",
					ev.Proc, ev.Item, ev.Time),
			})
			continue
		}
		sends = append(sends, ev)
		if ev.Time > horizon {
			horizon = ev.Time
		}
	}
	sort.Slice(sends, func(i, j int) bool {
		a, b := sends[i], sends[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		return a.Peer < b.Peer
	})
	e.sendBuf = sends
	horizon += s.M.O + s.M.L + 1
	// Safety net against a stuck clock. Buffered drains need up to
	// max(g, o) cycles per queued message after the last arrival, so the
	// bound must scale with the number of sends — a per-machine constant
	// would silently truncate long single-destination drains.
	step := s.M.G
	if s.M.O > step {
		step = s.M.O
	}
	limit := horizon + logp.Time(len(sends)+1)*step + s.M.G + s.M.O + 2
	i := 0
	for {
		for i < len(sends) && sends[i].Time == e.Now() {
			ev := sends[i]
			if err := e.Send(ev.Proc, ev.Item, ev.Peer); err != nil {
				e.violate(ev.Proc, schedule.Violation{
					Kind: "replay", Msg: err.Error(),
				})
			}
			i++
		}
		if i >= len(sends) && e.inflight.len() == 0 && !e.anyBuffered() {
			break
		}
		if e.Now() > limit {
			break // safety net: the clock should never get this far
		}
		if e.Mode == Strict {
			// Strict-mode receptions are timestamped with the message's own
			// arrival time, never the engine clock, so idle stretches can be
			// skipped: jump straight to the next send or arrival instant.
			next := limit + 1
			if i < len(sends) {
				next = sends[i].Time
			}
			if e.inflight.len() > 0 {
				if at := e.inflight.peek().Arrive; at < next {
					next = at
				}
			}
			if next > e.now+1 {
				e.now = next - 1 // Tick advances the final step
			}
		}
		e.Tick()
	}
	// Flush the run's metric tallies: one atomic add per counter per replay
	// (minus what the amortized live flush already pushed).
	mReplays.Inc()
	mEvents.Add(e.nEvents - e.flushedEvents)
	e.flushedEvents = e.nEvents
	gInflight.Set(int64(e.inflight.len()))
	mCapChecks.Add(e.nCapChecks)
	var nSends, nRecvs int64
	for _, ev := range e.executed.Events {
		switch ev.Op {
		case schedule.OpSend:
			nSends++
		case schedule.OpRecv:
			nRecvs++
		}
	}
	mSends.Add(nSends)
	mRecvs.Add(nRecvs)
	mViolations.Add(int64(len(e.violations)))
	return Report{
		Finish:     e.finishTime(),
		MaxBuffer:  e.MaxBuffer(),
		Violations: append([]schedule.Violation(nil), e.violations...),
	}
}

func (e *Engine) finishTime() logp.Time {
	return e.avail.latest()
}

// registerProbes points the attached collector's sim series at this engine's
// state. Registration is idempotent (Probe replaces the function, keeping
// recorded points), so Reset + Replay reuse keeps one continuous series per
// name across runs.
func (e *Engine) registerProbes() {
	e.TS.Probe("sim.now", func() int64 { return int64(e.now) })
	e.TS.Probe("sim.inflight", func() int64 { return int64(e.inflight.len()) })
	e.TS.Probe("sim.events", func() int64 { return e.nEvents })
	e.TS.Probe("sim.buffered", func() int64 { return int64(e.bufferedNow) })
	e.TS.Probe("sim.violations", func() int64 { return int64(len(e.violations)) })
}

// Stats is the port-activity summary for one run. It is the shared
// schedule.Stats shape (also produced by the goroutine runtime), extended
// since the run-global-only version with a per-processor busy/idle
// breakdown and per-processor buffered-queue high-water marks.
type Stats = schedule.Stats

// ProcMaxBuffers returns the input-buffer high-water mark per processor
// (all zeros in Strict mode).
func (e *Engine) ProcMaxBuffers() []int {
	mb := make([]int, len(e.procs))
	for i := range e.procs {
		mb[i] = e.procs[i].maxBuffer
	}
	return mb
}

// Stats computes port-activity statistics from the executed schedule via
// the shared schedule.ComputeStats, so the result is field-for-field
// comparable with runtime.Runtime.Stats in the conformance harness.
func (e *Engine) Stats() Stats {
	return schedule.ComputeStats(&e.executed, e.finishTime(), e.ProcMaxBuffers())
}
