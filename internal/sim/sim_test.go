package sim

import (
	"testing"
	"testing/quick"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

func TestRunOptimalBroadcastStrict(t *testing.T) {
	machines := []logp.Machine{
		logp.MustNew(8, 6, 2, 4),
		logp.Postal(9, 3),
		logp.Postal(41, 3),
		logp.MustNew(16, 5, 1, 2),
	}
	for _, m := range machines {
		s := core.BroadcastSchedule(m, 0)
		_, rep := Run(s, Strict, core.Origins(0))
		if len(rep.Violations) != 0 {
			t.Fatalf("%v: violations %v", m, rep.Violations)
		}
		if want := core.B(m, m.P); rep.Finish != want {
			t.Fatalf("%v: finish %d, want B=%d", m, rep.Finish, want)
		}
	}
}

func TestRunProperty(t *testing.T) {
	f := func(l, o, g, p uint8) bool {
		m := logp.Machine{
			P: int(p%25) + 2,
			L: logp.Time(l%8) + 1,
			O: logp.Time(o % 4),
			G: logp.Time(g%4) + 1,
		}
		s := core.BroadcastSchedule(m, 0)
		_, rep := Run(s, Strict, core.Origins(0))
		return len(rep.Violations) == 0 && rep.Finish == core.B(m, m.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutedMatchesValidator(t *testing.T) {
	// The engine's executed schedule (sends + derived recvs) must pass the
	// independent validator exactly.
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	e, _ := Run(s, Strict, core.Origins(0))
	ex := e.Executed()
	if vs := schedule.ValidateBroadcast(ex, core.Origins(0)); len(vs) != 0 {
		t.Fatalf("executed schedule violations: %v", vs)
	}
}

func TestStrictContentionFlagged(t *testing.T) {
	// Two messages arriving at the same proc at the same step.
	m := logp.Postal(3, 4)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 0, 2)
	s.Send(1, 0, 1, 2)
	origins := map[int]schedule.Origin{0: {Proc: 0}, 1: {Proc: 1}}
	_, rep := Run(s, Strict, origins)
	if len(rep.Violations) == 0 {
		t.Fatal("simultaneous arrivals not flagged in strict mode")
	}
}

func TestBufferedModeDefers(t *testing.T) {
	// Same contention in buffered mode: second message is received one
	// step later, no violation, max buffer 2.
	m := logp.Postal(3, 4)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 0, 2)
	s.Send(1, 0, 1, 2)
	origins := map[int]schedule.Origin{0: {Proc: 0}, 1: {Proc: 1}}
	e, rep := Run(s, Buffered, origins)
	if len(rep.Violations) != 0 {
		t.Fatalf("buffered run violations: %v", rep.Violations)
	}
	if rep.MaxBuffer != 2 {
		t.Fatalf("max buffer = %d, want 2", rep.MaxBuffer)
	}
	t0, ok0 := e.AvailableAt(2, 0)
	t1, ok1 := e.AvailableAt(2, 1)
	if !ok0 || !ok1 {
		t.Fatal("items not delivered")
	}
	got := []logp.Time{t0, t1}
	if !(got[0] == 4 && got[1] == 5 || got[0] == 5 && got[1] == 4) {
		t.Fatalf("availabilities %v, want {4,5}", got)
	}
}

func TestBufferCapViolation(t *testing.T) {
	m := logp.Postal(5, 4)
	s := &schedule.Schedule{M: m}
	for i := 0; i < 3; i++ {
		s.Send(i, 0, i, 4)
	}
	origins := map[int]schedule.Origin{0: {Proc: 0}, 1: {Proc: 1}, 2: {Proc: 2}}
	e := New(m, Buffered)
	e.BufferCap = 2
	for item, og := range origins {
		e.Inject(og.Proc, item, og.Time)
	}
	for i := 0; i < 3; i++ {
		if err := e.Send(i, i, 4); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain(100)
	found := false
	for _, v := range e.Violations() {
		if v.Kind == schedule.VCapacity {
			found = true
		}
	}
	if !found {
		t.Fatalf("buffer cap 2 with 3 simultaneous arrivals not flagged: %v", e.Violations())
	}
}

func TestSendChecks(t *testing.T) {
	m := logp.Postal(3, 2)
	e := New(m, Strict)
	if err := e.Send(0, 7, 1); err == nil {
		t.Fatal("send of unheld item succeeded")
	}
	e.Inject(0, 7, 0)
	if err := e.Send(0, 7, 0); err == nil {
		t.Fatal("self-send succeeded")
	}
	if err := e.Send(0, 7, 5); err == nil {
		t.Fatal("out-of-range send succeeded")
	}
	if err := e.Send(0, 7, 1); err != nil {
		t.Fatalf("legal send failed: %v", err)
	}
	// Gap: immediate second send must fail (g=1, same step).
	if err := e.Send(0, 7, 2); err == nil {
		t.Fatal("second send in same step succeeded")
	}
	e.Tick()
	if err := e.Send(0, 7, 2); err != nil {
		t.Fatalf("send after gap failed: %v", err)
	}
}

func TestInjectFutureAvailability(t *testing.T) {
	m := logp.Postal(2, 2)
	e := New(m, Strict)
	e.Inject(0, 3, 5) // item generated at time 5
	if e.Has(0, 3) {
		t.Fatal("item available before its generation time")
	}
	if err := e.Send(0, 3, 1); err == nil {
		t.Fatal("sent an item before it was generated")
	}
	e.TickTo(5)
	if !e.Has(0, 3) {
		t.Fatal("item not available at its generation time")
	}
	if err := e.Send(0, 3, 1); err != nil {
		t.Fatalf("send at generation time failed: %v", err)
	}
}

func TestItemCompletion(t *testing.T) {
	m := logp.Postal(3, 2)
	s := core.BroadcastSchedule(m, 0)
	e, _ := Run(s, Strict, core.Origins(0))
	ct, ok := e.ItemCompletion(0, []int{1, 2})
	if !ok {
		t.Fatal("item 0 incomplete")
	}
	if want := core.B(m, 3); ct != want {
		t.Fatalf("completion %d, want %d", ct, want)
	}
	if _, ok := e.ItemCompletion(9, nil); ok {
		t.Fatal("unknown item reported complete")
	}
}

func TestGeneralMachineOverheadBusy(t *testing.T) {
	// o=2: after receiving (busy 2 cycles), a send in the overhead window
	// must fail.
	m := logp.MustNew(3, 6, 2, 4)
	e := New(m, Strict)
	e.Inject(0, 1, 0)
	if err := e.Send(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Arrival at 0+2+6 = 8; availability at 10.
	e.TickTo(8)
	if e.Has(1, 1) {
		t.Fatal("item available during receive overhead")
	}
	e.TickTo(9)
	if err := e.Send(1, 1, 2); err == nil {
		t.Fatal("send during receive overhead succeeded")
	}
	e.TickTo(10)
	if !e.Has(1, 1) {
		t.Fatal("item not available after receive overhead")
	}
	if err := e.Send(1, 1, 2); err != nil {
		t.Fatalf("send after overhead failed: %v", err)
	}
}

func TestStats(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	e, rep := Run(s, Strict, core.Origins(0))
	st := e.Stats()
	if st.Sends != 7 || st.Recvs != 7 {
		t.Fatalf("stats %+v, want 7 sends and recvs", st)
	}
	if st.BusyCycles != 14*2 {
		t.Fatalf("busy cycles %d, want 28", st.BusyCycles)
	}
	if st.Span != rep.Finish {
		t.Fatalf("span %d != finish %d", st.Span, rep.Finish)
	}
	if st.PortUtilFinish <= 0 || st.PortUtilFinish > 1 {
		t.Fatalf("utilization %v out of range", st.PortUtilFinish)
	}
	// Postal: busy cycles = event count.
	pm := logp.Postal(9, 3)
	ps := core.BroadcastSchedule(pm, 0)
	pe, _ := Run(ps, Strict, core.Origins(0))
	if got := pe.Stats().BusyCycles; got != 16 {
		t.Fatalf("postal busy cycles %d, want 16", got)
	}
}
