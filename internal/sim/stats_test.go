package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs"
	"logpopt/internal/schedule"
)

// TestStatsPerProc checks the per-processor busy/idle breakdown sums to the
// run-global figures and that idle + busy covers the span for every
// processor.
func TestStatsPerProc(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	e, rep := Run(s, Strict, core.Origins(0))
	st := e.Stats()
	if len(st.PerProc) != m.P {
		t.Fatalf("PerProc has %d entries, want %d", len(st.PerProc), m.P)
	}
	var sends, recvs int
	var busy int64
	for p, pp := range st.PerProc {
		sends += pp.Sends
		recvs += pp.Recvs
		busy += pp.BusyCycles
		if pp.BusyCycles+pp.IdleCycles < int64(st.Span) {
			t.Errorf("P%d: busy %d + idle %d < span %d", p, pp.BusyCycles, pp.IdleCycles, st.Span)
		}
		if pp.MaxQueue != 0 {
			t.Errorf("P%d: strict-mode MaxQueue %d, want 0", p, pp.MaxQueue)
		}
	}
	if sends != st.Sends || recvs != st.Recvs || busy != st.BusyCycles {
		t.Fatalf("per-proc sums (%d,%d,%d) != totals (%d,%d,%d)",
			sends, recvs, busy, st.Sends, st.Recvs, st.BusyCycles)
	}
	// Every non-root processor receives exactly once in a broadcast.
	for p := 1; p < m.P; p++ {
		if st.PerProc[p].Recvs != 1 {
			t.Errorf("P%d received %d times, want 1", p, st.PerProc[p].Recvs)
		}
	}
	if st.Span != rep.Finish {
		t.Fatalf("span %d != finish %d", st.Span, rep.Finish)
	}
}

// TestStatsBufferedHighWater drives two simultaneous arrivals at one
// processor in Buffered mode and checks the queue high-water lands on the
// right processor in the per-proc breakdown.
func TestStatsBufferedHighWater(t *testing.T) {
	m := logp.MustNew(3, 4, 1, 2)
	s := &schedule.Schedule{M: m}
	s.Send(0, 0, 0, 2)
	s.Send(1, 0, 1, 2)
	origins := map[int]schedule.Origin{
		0: {Proc: 0, Time: 0},
		1: {Proc: 1, Time: 0},
	}
	e, _ := Run(s, Buffered, origins)
	st := e.Stats()
	if st.MaxQueue != 2 {
		t.Fatalf("MaxQueue %d, want 2 (two simultaneous arrivals)", st.MaxQueue)
	}
	if st.PerProc[2].MaxQueue != 2 || st.PerProc[0].MaxQueue != 0 || st.PerProc[1].MaxQueue != 0 {
		t.Fatalf("per-proc queue marks %v, want them all at P2",
			[]int{st.PerProc[0].MaxQueue, st.PerProc[1].MaxQueue, st.PerProc[2].MaxQueue})
	}
}

// TestReplayTracer attaches a tracer to a replay and checks the emitted
// flight recorder is valid Chrome trace JSON with send and recv spans on
// per-processor tracks.
func TestReplayTracer(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	e := New(m, Strict)
	e.Tracer = obs.NewTracer()
	rep := e.Replay(s, core.Origins(0))
	if len(rep.Violations) != 0 {
		t.Fatal(rep.Violations)
	}
	if e.Tracer.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	var sb strings.Builder
	if err := e.Tracer.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			spans++
		}
	}
	// 7 sends + 7 recvs in an 8-processor broadcast.
	if spans != 14 {
		t.Fatalf("%d spans, want 14", spans)
	}
}

// TestTracerDisabledIsInert checks the executed schedule and report are
// identical with and without a tracer attached (the tracer observes, never
// perturbs).
func TestTracerDisabledIsInert(t *testing.T) {
	m := logp.MustNew(8, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)
	plain, repPlain := Run(s, Strict, core.Origins(0))
	traced := New(m, Strict)
	traced.Tracer = obs.NewTracer()
	repTraced := traced.Replay(s, core.Origins(0))
	if repPlain.Finish != repTraced.Finish {
		t.Fatalf("finish differs: %d vs %d", repPlain.Finish, repTraced.Finish)
	}
	a, b := plain.Executed(), traced.Executed()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
