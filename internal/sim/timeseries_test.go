package sim

import (
	"testing"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/obs/timeseries"
)

// TestReplayTimeseries attaches a collector to an engine and checks the
// replay produces coherent simulated-time series: the clock series ends at
// or after the finish time, the in-flight series drains to zero, and the
// events series is monotone up to the drained total.
func TestReplayTimeseries(t *testing.T) {
	m := logp.MustNew(16, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)

	ts := timeseries.New(0)
	e := New(m, Strict)
	e.TS = ts
	rep := e.Replay(s, core.Origins(0))
	// Take one final sample so end-of-run state is always recorded even when
	// the window would have skipped the last tick.
	ts.Sample(int64(e.Now()))

	if rep.Finish == 0 {
		t.Fatalf("degenerate run: finish 0")
	}
	for _, name := range []string{"sim.now", "sim.inflight", "sim.events", "sim.buffered", "sim.violations"} {
		if _, ok := ts.Series(name); !ok {
			t.Errorf("series %s missing", name)
		}
	}
	now, _ := ts.Series("sim.now")
	if last := now[len(now)-1].Val; last < int64(rep.Finish)-int64(m.O) {
		t.Errorf("sim.now ends at %d, finish %d", last, rep.Finish)
	}
	inflight, _ := ts.Series("sim.inflight")
	if last := inflight[len(inflight)-1].Val; last != 0 {
		t.Errorf("sim.inflight did not drain: %d", last)
	}
	events, _ := ts.Series("sim.events")
	prev := int64(-1)
	for _, pt := range events {
		if pt.Val < prev {
			t.Fatalf("sim.events not monotone: %v", events)
		}
		prev = pt.Val
	}
	if prev != int64(m.P-1) { // one reception per non-root processor
		t.Errorf("sim.events final %d, want %d", prev, m.P-1)
	}
}

// TestReplayTimeseriesWindow checks the windowed sampling takes far fewer
// samples than one per cycle while still covering the run.
func TestReplayTimeseriesWindow(t *testing.T) {
	m := logp.MustNew(64, 6, 2, 4)
	s := core.BroadcastSchedule(m, 0)

	dense := timeseries.New(0)
	e := New(m, Strict)
	e.TS = dense
	repDense := e.Replay(s, core.Origins(0))

	sparse := timeseries.New(0)
	sparse.SetWindow(int64(repDense.Finish) / 4)
	e2 := New(m, Strict)
	e2.TS = sparse
	repSparse := e2.Replay(s, core.Origins(0))

	if repDense.Finish != repSparse.Finish {
		t.Fatalf("collection changed the run: %d vs %d", repDense.Finish, repSparse.Finish)
	}
	if sparse.Samples() >= dense.Samples() {
		t.Fatalf("window did not reduce samples: %d vs %d", sparse.Samples(), dense.Samples())
	}
	if sparse.Samples() == 0 {
		t.Fatalf("windowed collector took no samples")
	}
}
