// Package summation implements Section 5 of the paper: optimal summation of
// n operands on a LogP machine, where "addition" is any associative binary
// operation costing one cycle.
//
// The key structural result is that the communication pattern of an optimal
// summation algorithm is the time reversal of an optimal single-item
// broadcast pattern for a machine with latency L+1: a processor assigned to
// a broadcast-tree node with delay d sends its (single) partial-sum message
// at time t-d. Between its obligations, every processor greedily folds local
// input operands into its accumulator, one per free cycle ("lazy"
// schedules). Lemma 5.1 then gives the capacity
//
//	n(t) = (o+1) + sum over nodes (t - d_i - o),
//
// maximized precisely when the sum of tree labels is minimized — i.e. by the
// universal optimal broadcast tree of Section 2.
//
// Timing per reception: a message sent at S_c arrives at S_c+o+L, occupies
// the receiver for o cycles, and is folded into the accumulator by one
// further add cycle, completing at S_c+2o+L+1. With child labels
// d_c = d_p + (L+1) + 2o + i*stride this lands exactly at S_p - i*stride, so
// the i-th-from-last reception is folded just in time for the parent's own
// send at S_p (and the chain of g-o-1 local adds between receptions matches
// the paper's Figure 6).
//
// The construction requires g >= o+1 (the paper's implicit assumption: the
// reception-plus-add busy period o+1 must fit in one gap window).
package summation

import (
	"fmt"

	"logpopt/internal/core"
	"logpopt/internal/logp"
	"logpopt/internal/schedule"
)

// Lazy returns the (L+1, o, g) machine whose broadcast trees correspond to
// lazy summation schedules on m.
func Lazy(m logp.Machine) logp.Machine {
	return logp.Machine{P: m.P, L: m.L + 1, O: m.O, G: m.G}
}

// Validate reports whether summation schedules can be built for m.
func Validate(m logp.Machine) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.G < m.O+1 {
		return fmt.Errorf("summation: requires g >= o+1 (got g=%d, o=%d)", m.G, m.O)
	}
	return nil
}

// Capacity returns n(t): the maximum number of operands a P-processor LogP
// machine can sum in t cycles (Lemma 5.1), together with the summation tree
// realizing it. Nodes are admitted while their marginal contribution
// t - d - o is positive, up to m.P nodes. For t < 0 capacity is 0.
func Capacity(m logp.Machine, t logp.Time) (int64, *core.Tree) {
	return CapacityWith(m, t, core.OptimalTree)
}

// CapacityWith is Capacity with the broadcast-tree constructor injected: tb
// must produce ß(p) on the lazy machine exactly as core.OptimalTree does
// (the internal/logtime builder qualifies), so plans built through either
// constructor are identical.
func CapacityWith(m logp.Machine, t logp.Time, tb core.TreeBuilder) (int64, *core.Tree) {
	if err := Validate(m); err != nil {
		panic(err)
	}
	if t < 0 {
		return 0, nil
	}
	lm := Lazy(m)
	// Grow the universal tree one node at a time while labels stay useful.
	// Build the largest admissible tree by counting admissible labels first.
	maxLabel := t - m.O - 1
	var p int
	if maxLabel < 0 {
		p = 1 // the root alone (label 0 may exceed maxLabel; root always works)
	} else {
		cnt := core.Pt(lm, maxLabel, int64(m.P))
		p = int(cnt)
		if p > m.P {
			p = m.P
		}
		if p < 1 {
			p = 1
		}
	}
	tr := tb(lm, p)
	n := int64(m.O) + 1
	for _, nd := range tr.Nodes {
		c := t - nd.Label - m.O
		if c > 0 {
			n += c
		} else if nd.Parent == -1 {
			// Root with t <= o: it still holds its first operand at time 0
			// and can fold t further... no: with t <= o the formula's root
			// term t-o is non-positive; the machine still sums t+1 operands
			// locally. Handled below.
			n = t + 1
		}
	}
	if n < t+1 && p == 1 {
		n = t + 1
	}
	return n, tr
}

// TimeFor returns the minimum t such that Capacity(m, t) >= n (the optimal
// summation time for n operands), found by binary search; n >= 1.
func TimeFor(m logp.Machine, n int64) logp.Time {
	if n < 1 {
		panic(fmt.Sprintf("summation: TimeFor requires n >= 1, got %d", n))
	}
	lo, hi := logp.Time(0), logp.Time(n-1) // one processor alone sums n in n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c, _ := Capacity(m, mid); c >= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// OpKind distinguishes the two accumulator operations of a processor.
type OpKind int

// Accumulator operations.
const (
	// OpLocal folds the processor's next local input operand.
	OpLocal OpKind = iota
	// OpRecvFold folds a partial sum received from a child processor.
	OpRecvFold
)

// FoldOp is one accumulator update in a processor's timeline. For OpLocal,
// At is the cycle during which the unit-time add runs ([At, At+1)). For
// OpRecvFold, the message arrives at At, reception overhead runs [At, At+o)
// and the fold add runs [At+o, At+o+1); Child is the tree node whose partial
// sum arrives.
type FoldOp struct {
	Kind  OpKind
	At    logp.Time
	Child int
}

// Plan is a complete optimal summation schedule.
type Plan struct {
	M      logp.Machine
	T      logp.Time  // deadline: the total is in the root's accumulator at T
	Tree   *core.Tree // broadcast tree on Lazy(m); node i -> processor i
	N      int64      // total operands summed
	SendAt []logp.Time
	Locals []int64    // local operand count per node (including the free first operand)
	Ops    [][]FoldOp // time-ordered accumulator updates per node
}

// Build constructs the optimal summation plan for deadline t.
func Build(m logp.Machine, t logp.Time) (*Plan, error) {
	return BuildWith(m, t, core.OptimalTree)
}

// BuildWith is Build with the broadcast-tree constructor injected (see
// CapacityWith); any constructor producing the universal tree node for node
// yields the identical plan.
func BuildWith(m logp.Machine, t logp.Time, tb core.TreeBuilder) (*Plan, error) {
	if err := Validate(m); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("summation: negative deadline %d", t)
	}
	n, tr := CapacityWith(m, t, tb)
	pl := &Plan{M: m, T: t, Tree: tr, N: n}
	pl.SendAt = make([]logp.Time, tr.P())
	pl.Locals = make([]int64, tr.P())
	pl.Ops = make([][]FoldOp, tr.P())
	stride := core.SendStride(Lazy(m))
	for ni, nd := range tr.Nodes {
		sp := t - nd.Label
		pl.SendAt[ni] = sp // root's send is fictitious (at T)
		// Receptions: the i-th child (0-based, in child order) has label
		// nd.Label + (L+1) + 2o + i*stride and sends at t - that; its fold
		// completes at sp - i*stride. Arrival = sendTime + o + L =
		// sp - i*stride - o - 1.
		busy := make(map[logp.Time]bool) // cycles occupied by recv overhead + fold adds
		var ops []FoldOp
		for i, ci := range nd.Children {
			arrive := sp - logp.Time(i)*stride - m.O - 1
			ops = append(ops, FoldOp{Kind: OpRecvFold, At: arrive, Child: ci})
			for c := arrive; c < arrive+m.O+1; c++ {
				busy[c] = true
			}
		}
		// Local adds fill every remaining cycle of [0, sp).
		locals := int64(1) // the first operand is loaded free at time 0
		for c := logp.Time(0); c < sp; c++ {
			if !busy[c] {
				ops = append(ops, FoldOp{Kind: OpLocal, At: c})
				locals++
			}
		}
		sortOps(ops)
		pl.Ops[ni] = ops
		pl.Locals[ni] = locals
	}
	// Cross-check Lemma 5.1 against the constructed plan.
	var total int64
	for _, l := range pl.Locals {
		total += l
	}
	if total != n {
		return nil, fmt.Errorf("summation: plan sums %d operands, capacity says %d", total, n)
	}
	return pl, nil
}

func sortOps(ops []FoldOp) {
	// Insertion sort by At (k and locals are nearly sorted already).
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].At < ops[j-1].At; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

// Schedule expands the plan into a schedule.Schedule with send, recv and
// compute events, suitable for the independent LogP validator. Compute
// events carry tag 0 for local adds and 1 for receive-folds.
func (pl *Plan) Schedule() *schedule.Schedule {
	s := &schedule.Schedule{M: pl.M}
	for ni, nd := range pl.Tree.Nodes {
		if nd.Parent >= 0 {
			s.Send(ni, pl.SendAt[ni], ni, nd.Parent)
		}
		for _, op := range pl.Ops[ni] {
			switch op.Kind {
			case OpLocal:
				s.Compute(ni, op.At, 1, 0)
			case OpRecvFold:
				s.Recv(ni, op.At, op.Child, op.Child)
				s.Compute(ni, op.At+pl.M.O, 1, 1)
			}
		}
	}
	return s
}

// OperandOrder returns the global in-order numbering of operands: the
// sequence in which the n operands appear as leaves of the induced binary
// addition tree. Feeding operands in this order makes the schedule compute
// the exact left-to-right product even for a non-commutative operation
// (the paper's footnote 2: renumber the operands). The result maps each
// node to the (start, count) range it consumes... more precisely it returns
// order[node] = the list of global operand indices that node folds locally,
// in its fold order.
func (pl *Plan) OperandOrder() [][]int64 {
	order := make([][]int64, pl.Tree.P())
	var next int64
	var rec func(ni int)
	rec = func(ni int) {
		// The node's own sequence: first operand, then its ops in time
		// order; a recv-fold splices the entire child's sequence after the
		// accumulator's current coverage.
		order[ni] = append(order[ni], next)
		next++
		for _, op := range pl.Ops[ni] {
			switch op.Kind {
			case OpLocal:
				order[ni] = append(order[ni], next)
				next++
			case OpRecvFold:
				rec(op.Child)
			}
		}
	}
	rec(0)
	return order
}

// Execute runs the plan with concrete operands and a binary operation,
// returning the root's final value. len(operands) must equal pl.N. Operands
// are distributed according to OperandOrder, so for associative op the
// result equals the sequential left fold of a permutation of the input — and
// with OperandOrder the permutation is the in-order one, i.e. the result is
// exactly operands[0] op operands[1] op ... even for non-commutative op.
func Execute[V any](pl *Plan, operands []V, op func(V, V) V) (V, error) {
	var zero V
	if int64(len(operands)) != pl.N {
		return zero, fmt.Errorf("summation: %d operands for plan capacity %d", len(operands), pl.N)
	}
	order := pl.OperandOrder()
	var eval func(ni int) V
	eval = func(ni int) V {
		idx := order[ni]
		acc := operands[idx[0]]
		pos := 1
		for _, o := range pl.Ops[ni] {
			switch o.Kind {
			case OpLocal:
				acc = op(acc, operands[idx[pos]])
				pos++
			case OpRecvFold:
				acc = op(acc, eval(o.Child))
			}
		}
		return acc
	}
	return eval(0), nil
}

// BroadcastDual returns the single-item broadcast schedule that is the time
// reversal of this summation plan — Section 5's structural correspondence
// made concrete. The dual runs on the lazy machine (L+1, o, g): the plan's
// message from child c (sent at T - label(c)) becomes the parent's
// transmission that makes the datum available at c exactly at label(c).
// Validating the dual against the independent checker verifies that the
// plan's communication pattern really is a legal broadcast pattern reversed.
func (pl *Plan) BroadcastDual() (*schedule.Schedule, error) {
	lm := Lazy(pl.M)
	lm.P = pl.Tree.P()
	dual := &core.Tree{M: lm, Nodes: pl.Tree.Nodes}
	return core.TreeSchedule(dual, 0, nil, 0)
}
